// Capacity planning: how much node-local DRAM can this center shed if it
// deploys rack-scale memory pools?
//
// Sweeps local-memory size × pool size for a chosen workload model and
// reports the cheapest configuration whose mean bounded slowdown stays
// within a tolerance of the full-memory baseline — the procurement question
// disaggregation studies exist to answer.
//
// With --scenario, sweeps the *machine scale* of a library scenario instead
// (ScenarioParams::{node_scale, pool_scale}): the same regime on machines
// 1–4× the published node count with 0.5–2× the pool capacity, workload
// re-derived per machine. All runs share the persistent executor, so the
// grid costs no per-sweep thread startup.
//
// With --scenario --rack-grid, sweeps the machine's *topology* instead
// (ScenarioParams::{racks, rack_pool_frac}): the same capacity carved into
// more/fewer racks with more/less of it rack-local — the rack-scale vs
// system-wide provisioning question.
#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "cluster/system_config.hpp"
#include "common/cli.hpp"
#include "common/str.hpp"
#include "common/table.hpp"
#include "core/sweep.hpp"

namespace {

using namespace dmsched;

/// Guard for scenario-driven grids: infrastructure scenarios default to
/// scale-sized workloads (large-replay: 100k jobs) — a 9-point grid over
/// one is throughput work, not capacity planning. Callers must opt in by
/// overriding the job count.
bool refuse_infrastructure(const std::string& name, std::size_t jobs) {
  if (scenario_info(name).infrastructure && jobs == 0) {
    std::fprintf(stderr,
                 "error: \"%s\" is an infrastructure scenario (its default "
                 "workload is scale-sized); pass an explicit --jobs to "
                 "sweep it anyway\n",
                 name.c_str());
    return true;
  }
  return false;
}

/// The --scenario mode: a node_scale × pool_scale grid over one library
/// scenario. Each grid point rebuilds the scenario (its workload adapts to
/// the scaled machine) and runs one scheduler; the grid itself runs through
/// parallel_for_chunked on the shared pool, each point writing only its own
/// result slot.
struct GridPoint {
  ScenarioParams params;
  Scenario scenario;
  RunMetrics metrics;
};

int run_scale_grid(const std::string& name, std::size_t jobs) {
  const std::vector<double> node_scales = {1.0, 2.0, 4.0};
  const std::vector<double> pool_scales = {0.5, 1.0, 2.0};
  std::vector<GridPoint> grid;
  for (const double ns : node_scales) {
    for (const double ps : pool_scales) {
      GridPoint p;
      p.params.jobs = jobs;
      p.params.node_scale = ns;
      p.params.pool_scale = ps;
      grid.push_back(std::move(p));
    }
  }
  try {
    parallel_for_chunked(grid.size(), SweepOptions{}, [&](std::size_t i) {
      grid[i].scenario = make_scenario(name, grid[i].params);
      grid[i].metrics = run_scenario(grid[i].scenario,
                                     SchedulerKind::kMemAwareEasy);
    });
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  ConsoleTable table("machine-scale grid — " + name + " (mem-easy)");
  table.columns({"node x", "pool x", "nodes", "pool total", "bsld",
                 "wait (h)", "util %", "far-jobs %"});
  for (const GridPoint& p : grid) {
    const auto& m = p.metrics;
    table.row({strformat("%.1f", p.params.node_scale),
               strformat("%.1f", p.params.pool_scale),
               strformat("%d", p.scenario.cluster.total_nodes),
               format_bytes(p.scenario.cluster.total_pool()),
               strformat("%.2f", m.mean_bsld),
               strformat("%.2f", m.mean_wait_hours),
               strformat("%.1f", 100.0 * m.node_utilization),
               strformat("%.1f", 100.0 * m.frac_jobs_far)});
  }
  table.print();
  return 0;
}

/// The --rack-grid mode: racks × rack_pool_frac over one scenario's
/// machine. Same capacity everywhere — only *where* the pool bytes sit
/// changes — so the grid isolates the topology question: how much does
/// rack-scale provisioning cost (or save) versus a system-wide pool?
int run_rack_grid(const std::string& name, std::size_t jobs) {
  const Scenario published = make_scenario(
      name, jobs == 0 ? ScenarioParams{} : ScenarioParams{.jobs = jobs});
  // Feasible rack counts: divisors of the node count around the published
  // racking (at most four, published first for the baseline row).
  std::vector<std::int32_t> rack_counts{published.cluster.racks()};
  for (const std::int32_t candidate :
       {published.cluster.racks() / 2, published.cluster.racks() * 2, 1}) {
    const bool seen = std::find(rack_counts.begin(), rack_counts.end(),
                                candidate) != rack_counts.end();
    if (candidate >= 1 && !seen &&
        published.cluster.total_nodes % candidate == 0 &&
        candidate <= published.cluster.total_nodes) {
      rack_counts.push_back(candidate);
    }
  }
  const std::vector<double> fracs = {0.0, 0.5, 1.0};
  std::vector<GridPoint> grid;
  for (const std::int32_t racks : rack_counts) {
    for (const double frac : fracs) {
      GridPoint p;
      p.params.jobs = jobs;
      p.params.racks = racks;
      p.params.rack_pool_frac = frac;
      grid.push_back(std::move(p));
    }
  }
  try {
    parallel_for_chunked(grid.size(), SweepOptions{}, [&](std::size_t i) {
      grid[i].scenario = make_scenario(name, grid[i].params);
      grid[i].metrics = run_scenario(grid[i].scenario,
                                     SchedulerKind::kMemAwareEasy);
    });
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  ConsoleTable table("rack-topology grid — " + name + " (mem-easy)");
  table.columns({"racks", "rack frac", "pool/rack", "global", "bsld",
                 "wait (h)", "remote %", "global %", "rejected"});
  for (const GridPoint& p : grid) {
    const auto& m = p.metrics;
    table.row({strformat("%d", p.scenario.cluster.racks()),
               strformat("%.2f", p.params.rack_pool_frac),
               format_bytes(p.scenario.cluster.pool_per_rack),
               format_bytes(p.scenario.cluster.global_pool),
               strformat("%.2f", m.mean_bsld),
               strformat("%.2f", m.mean_wait_hours),
               strformat("%.1f", 100.0 * m.remote_access_fraction),
               strformat("%.1f", 100.0 * m.global_access_fraction),
               strformat("%zu", m.rejected)});
  }
  table.print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmsched;
  Cli cli("capacity_planning", "find the smallest memory config that holds");
  cli.add_string("model", "mixed", "workload: capability|capacity|mixed");
  cli.add_string("scenario", "",
                 "sweep a library scenario's machine scale instead "
                 "(node_scale x pool_scale grid)");
  cli.add_flag("rack-grid",
               "with --scenario: sweep the topology (racks x rack_pool_frac "
               "grid, capacity held constant) instead of the machine scale");
  cli.add_int("jobs", 2500, "jobs per simulation");
  cli.add_double("tolerance", 0.10,
                 "acceptable bsld regression vs baseline (fraction)");
  if (!cli.parse(argc, argv)) return 1;

  if (const std::string name = cli.get_string("scenario"); !name.empty()) {
    if (!scenario_exists(name)) {
      std::fprintf(stderr, "error: unknown scenario \"%s\"\n", name.c_str());
      return 1;
    }
    // Scenario grids use the scenario's own job count unless --jobs was
    // given explicitly (the flag's default is sized for the model mode).
    const std::size_t jobs =
        cli.provided("jobs") ? static_cast<std::size_t>(cli.get_int("jobs"))
                             : 0;
    if (refuse_infrastructure(name, jobs)) return 1;
    return cli.get_flag("rack-grid") ? run_rack_grid(name, jobs)
                                     : run_scale_grid(name, jobs);
  }
  if (cli.get_flag("rack-grid")) {
    std::fprintf(stderr, "error: --rack-grid requires --scenario\n");
    return 1;
  }

  const WorkloadModel model =
      workload_model_from_string(cli.get_string("model"));
  const auto jobs = static_cast<std::size_t>(cli.get_int("jobs"));

  auto make = [&](ClusterConfig cluster) {
    ExperimentConfig config;
    config.cluster = std::move(cluster);
    config.scheduler = SchedulerKind::kMemAwareEasy;
    config.model = model;
    config.jobs = jobs;
    config.seed = 1234;
    config.target_load = 0.9;
    config.label = config.cluster.name;
    return config;
  };

  std::vector<ExperimentConfig> sweep;
  sweep.push_back(make(reference_config()));
  const std::vector<std::int64_t> locals = {192, 160, 128, 96, 64};
  const std::vector<std::int64_t> pools = {1024, 2048, 4096};
  for (const auto local : locals) {
    for (const auto pool : pools) {
      sweep.push_back(make(disaggregated_config(local, pool)));
    }
  }

  // The same workload for every config: differences are config-only.
  const Trace trace = make_workload(sweep.front());
  const auto results = run_sweep_on_trace(sweep, trace);
  const double baseline_bsld = results.front().mean_bsld;
  const std::size_t baseline_rejected = results.front().rejected;
  const double budget =
      baseline_bsld * (1.0 + cli.get_double("tolerance"));

  ConsoleTable table("capacity planning, model=" +
                     std::string(to_string(model)));
  table.columns({"config", "total mem", "bsld", "vs base", "util %",
                 "rejected", "verdict"});
  std::size_t best = 0;
  Bytes best_mem = sweep.front().cluster.total_memory();
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& m = results[i];
    const Bytes total = sweep[i].cluster.total_memory();
    // Acceptable = holds the slowdown budget AND serves at least as much of
    // the workload as the full-memory reference (which itself rejects the
    // above-local-memory population).
    const bool ok = m.mean_bsld <= budget && m.rejected <= baseline_rejected;
    if (ok && total < best_mem) {
      best = i;
      best_mem = total;
    }
    table.row({sweep[i].cluster.name, format_bytes(total),
               strformat("%.2f", m.mean_bsld),
               strformat("%+.1f%%",
                         100.0 * (m.mean_bsld / baseline_bsld - 1.0)),
               strformat("%.1f", 100.0 * m.node_utilization),
               strformat("%zu", m.rejected), ok ? "OK" : "over budget"});
  }
  table.print();
  std::printf("\ncheapest acceptable config: %s (%s total memory, "
              "%.1f%% less than reference)\n",
              sweep[best].cluster.name.c_str(),
              format_bytes(best_mem).c_str(),
              100.0 * (1.0 - ratio(best_mem,
                                   sweep.front().cluster.total_memory())));
  return 0;
}
