// Capacity planning: how much node-local DRAM can this center shed if it
// deploys rack-scale memory pools?
//
// Sweeps local-memory size × pool size for a chosen workload model and
// reports the cheapest configuration whose mean bounded slowdown stays
// within a tolerance of the full-memory baseline — the procurement question
// disaggregation studies exist to answer.
#include <cstdio>
#include <vector>

#include "cluster/system_config.hpp"
#include "common/cli.hpp"
#include "common/str.hpp"
#include "common/table.hpp"
#include "core/sweep.hpp"

int main(int argc, char** argv) {
  using namespace dmsched;
  Cli cli("capacity_planning", "find the smallest memory config that holds");
  cli.add_string("model", "mixed", "workload: capability|capacity|mixed");
  cli.add_int("jobs", 2500, "jobs per simulation");
  cli.add_double("tolerance", 0.10,
                 "acceptable bsld regression vs baseline (fraction)");
  if (!cli.parse(argc, argv)) return 1;

  const WorkloadModel model =
      workload_model_from_string(cli.get_string("model"));
  const auto jobs = static_cast<std::size_t>(cli.get_int("jobs"));

  auto make = [&](ClusterConfig cluster) {
    ExperimentConfig config;
    config.cluster = std::move(cluster);
    config.scheduler = SchedulerKind::kMemAwareEasy;
    config.model = model;
    config.jobs = jobs;
    config.seed = 1234;
    config.target_load = 0.9;
    config.label = config.cluster.name;
    return config;
  };

  std::vector<ExperimentConfig> sweep;
  sweep.push_back(make(reference_config()));
  const std::vector<std::int64_t> locals = {192, 160, 128, 96, 64};
  const std::vector<std::int64_t> pools = {1024, 2048, 4096};
  for (const auto local : locals) {
    for (const auto pool : pools) {
      sweep.push_back(make(disaggregated_config(local, pool)));
    }
  }

  // The same workload for every config: differences are config-only.
  const Trace trace = make_workload(sweep.front());
  const auto results = run_sweep_on_trace(sweep, trace);
  const double baseline_bsld = results.front().mean_bsld;
  const std::size_t baseline_rejected = results.front().rejected;
  const double budget =
      baseline_bsld * (1.0 + cli.get_double("tolerance"));

  ConsoleTable table("capacity planning, model=" +
                     std::string(to_string(model)));
  table.columns({"config", "total mem", "bsld", "vs base", "util %",
                 "rejected", "verdict"});
  std::size_t best = 0;
  Bytes best_mem = sweep.front().cluster.total_memory();
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& m = results[i];
    const Bytes total = sweep[i].cluster.total_memory();
    // Acceptable = holds the slowdown budget AND serves at least as much of
    // the workload as the full-memory reference (which itself rejects the
    // above-local-memory population).
    const bool ok = m.mean_bsld <= budget && m.rejected <= baseline_rejected;
    if (ok && total < best_mem) {
      best = i;
      best_mem = total;
    }
    table.row({sweep[i].cluster.name, format_bytes(total),
               strformat("%.2f", m.mean_bsld),
               strformat("%+.1f%%",
                         100.0 * (m.mean_bsld / baseline_bsld - 1.0)),
               strformat("%.1f", 100.0 * m.node_utilization),
               strformat("%zu", m.rejected), ok ? "OK" : "over budget"});
  }
  table.print();
  std::printf("\ncheapest acceptable config: %s (%s total memory, "
              "%.1f%% less than reference)\n",
              sweep[best].cluster.name.c_str(),
              format_bytes(best_mem).c_str(),
              100.0 * (1.0 - ratio(best_mem,
                                   sweep.front().cluster.total_memory())));
  return 0;
}
