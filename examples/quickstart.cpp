// Quickstart: simulate one week of a mixed workload on a disaggregated
// machine and print the headline metrics.
//
//   ./quickstart [--jobs N] [--scheduler mem-easy] [--local-gib 128]
//                [--pool-gib 2048] [--seed 42]
//
// This is the 20-line tour of the public API: build a machine, pick a
// scheduler, generate (or load) a workload, run, read RunMetrics.
#include <cstdio>

#include "cluster/system_config.hpp"
#include "common/cli.hpp"
#include "core/experiment.hpp"

int main(int argc, char** argv) {
  using namespace dmsched;
  Cli cli("quickstart", "minimal DMSched simulation");
  cli.add_int("jobs", 2000, "number of jobs to simulate");
  cli.add_int("local-gib", 128, "local memory per node (GiB)");
  cli.add_int("pool-gib", 2048, "disaggregated pool per rack (GiB)");
  cli.add_string("scheduler", "mem-easy",
                 "fcfs|easy|conservative|mem-easy|adaptive");
  cli.add_int("seed", 42, "workload RNG seed");
  if (!cli.parse(argc, argv)) return 1;

  ExperimentConfig config;
  config.cluster = disaggregated_config(cli.get_int("local-gib"),
                                        cli.get_int("pool-gib"));
  config.scheduler = scheduler_kind_from_string(cli.get_string("scheduler"));
  config.model = WorkloadModel::kMixed;
  config.jobs = static_cast<std::size_t>(cli.get_int("jobs"));
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  config.target_load = 0.9;

  const RunMetrics m = run_experiment(config);

  std::printf("machine           : %s (%d nodes, %d racks)\n",
              config.cluster.name.c_str(), config.cluster.total_nodes,
              config.cluster.racks());
  std::printf("scheduler         : %s\n", to_string(config.scheduler));
  std::printf("jobs completed    : %zu (rejected: %zu)\n", m.completed,
              m.rejected);
  std::printf("makespan          : %.1f h\n", m.makespan.hours());
  std::printf("mean wait         : %.2f h   (p95 %.2f h)\n",
              m.mean_wait_hours, m.p95_wait_hours);
  std::printf("mean bounded sld  : %.2f\n", m.mean_bsld);
  std::printf("node utilization  : %.1f %%\n", 100.0 * m.node_utilization);
  std::printf("jobs using pool   : %.1f %%\n", 100.0 * m.frac_jobs_far);
  std::printf("mean dilation     : %.3f\n", m.mean_dilation);
  std::printf("rack-pool util    : %.1f %% (peak %.1f %%)\n",
              100.0 * m.rack_pool_utilization, 100.0 * m.rack_pool_peak);
  return 0;
}
