// Side-by-side comparison of every scheduling policy on one library
// scenario — the fastest way to see what memory-awareness buys. Defaults to
// the memory-stressed scenario, where the policies genuinely separate.
//
//   ./policy_compare                         # memory-stressed
//   ./policy_compare --scenario pool-contended --jobs 300
#include <cstdio>
#include <stdexcept>

#include "common/cli.hpp"
#include "common/str.hpp"
#include "common/table.hpp"
#include "core/sweep.hpp"

int main(int argc, char** argv) {
  using namespace dmsched;
  Cli cli("policy_compare", "all schedulers, one scenario");
  cli.add_string("scenario", "memory-stressed",
                 "library scenario (see dmsched-sim --list-scenarios)");
  cli.add_int("jobs", 0, "job count override (0 = scenario default)");
  cli.add_int("seed", 0, "seed override (0 = scenario default)");
  if (!cli.parse(argc, argv)) return 1;

  if (cli.get_int("jobs") < 0 || cli.get_int("seed") < 0) {
    std::fprintf(stderr, "error: --jobs/--seed must be >= 0\n");
    return 1;
  }
  Scenario scenario;
  try {
    ScenarioParams params;
    params.jobs = static_cast<std::size_t>(cli.get_int("jobs"));
    params.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    const std::string name = cli.get_string("scenario");
    // Infrastructure scenarios default to scale-sized workloads
    // (large-replay: 100k jobs); a five-policy sweep over one is throughput
    // work, not a comparison table. Opt in with an explicit --jobs.
    if (scenario_exists(name) && scenario_info(name).infrastructure &&
        params.jobs == 0) {
      std::fprintf(stderr,
                   "error: \"%s\" is an infrastructure scenario (its default "
                   "workload is scale-sized); pass an explicit --jobs to "
                   "compare policies on it anyway\n",
                   name.c_str());
      return 1;
    }
    scenario = make_scenario(name, params);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("%s — %s\nexpected: %s\n\n", scenario.info.name.c_str(),
              scenario.info.summary.c_str(),
              scenario.info.expected_ordering.c_str());

  std::vector<ExperimentConfig> sweep;
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    sweep.push_back(scenario_experiment(scenario, kind));
  }
  const auto results = run_sweep_on_trace(sweep, scenario.trace);

  ConsoleTable table(strformat("policy comparison — %s, %zu jobs",
                               scenario.info.name.c_str(),
                               scenario.trace.size()));
  table.columns({"scheduler", "makespan (h)", "wait (h)", "p95 wait", "bsld",
                 "p95 bsld", "util %", "dilation", "far-jobs %"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& m = results[i];
    table.row({to_string(all_scheduler_kinds()[i]),
               strformat("%.1f", m.makespan.hours()),
               strformat("%.2f", m.mean_wait_hours),
               strformat("%.2f", m.p95_wait_hours),
               strformat("%.2f", m.mean_bsld),
               strformat("%.2f", m.p95_bsld),
               strformat("%.1f", 100.0 * m.node_utilization),
               strformat("%.3f", m.mean_dilation),
               strformat("%.1f", 100.0 * m.frac_jobs_far)});
  }
  table.print();
  return 0;
}
