// Side-by-side comparison of every scheduling policy on one workload —
// the fastest way to see what memory-awareness buys.
#include <cstdio>

#include "cluster/system_config.hpp"
#include "common/cli.hpp"
#include "common/str.hpp"
#include "common/table.hpp"
#include "core/sweep.hpp"

int main(int argc, char** argv) {
  using namespace dmsched;
  Cli cli("policy_compare", "all schedulers, one workload, one machine");
  cli.add_string("model", "capacity", "workload: capability|capacity|mixed");
  cli.add_int("jobs", 2000, "jobs per simulation");
  cli.add_int("local-gib", 128, "local memory per node (GiB)");
  cli.add_int("pool-gib", 2048, "rack pool size (GiB)");
  cli.add_double("beta", 0.3, "far-memory slowdown coefficient");
  if (!cli.parse(argc, argv)) return 1;

  std::vector<ExperimentConfig> sweep;
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    ExperimentConfig config;
    config.cluster = disaggregated_config(cli.get_int("local-gib"),
                                          cli.get_int("pool-gib"));
    config.scheduler = kind;
    config.model = workload_model_from_string(cli.get_string("model"));
    config.jobs = static_cast<std::size_t>(cli.get_int("jobs"));
    config.seed = 99;
    config.target_load = 0.9;
    config.engine.slowdown.beta_rack = cli.get_double("beta");
    config.engine.slowdown.beta_global = 1.5 * cli.get_double("beta");
    sweep.push_back(std::move(config));
  }
  const Trace trace = make_workload(sweep.front());
  const auto results = run_sweep_on_trace(sweep, trace);

  ConsoleTable table(strformat("policy comparison — %s, %lld jobs, beta=%.2f",
                               cli.get_string("model").c_str(),
                               static_cast<long long>(cli.get_int("jobs")),
                               cli.get_double("beta")));
  table.columns({"scheduler", "wait (h)", "p95 wait", "bsld", "p95 bsld",
                 "util %", "dilation", "far-jobs %"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& m = results[i];
    table.row({to_string(all_scheduler_kinds()[i]),
               strformat("%.2f", m.mean_wait_hours),
               strformat("%.2f", m.p95_wait_hours),
               strformat("%.2f", m.mean_bsld),
               strformat("%.2f", m.p95_bsld),
               strformat("%.1f", 100.0 * m.node_utilization),
               strformat("%.3f", m.mean_dilation),
               strformat("%.1f", 100.0 * m.frac_jobs_far)});
  }
  table.print();
  return 0;
}
