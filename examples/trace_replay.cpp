// Replay a Standard Workload Format (SWF) trace — e.g. any trace from the
// Parallel Workloads Archive — through the simulator and compare the
// memory-unaware baseline against memory-aware scheduling.
//
//   ./trace_replay --swf /path/to/trace.swf [--procs-per-node 16]
//
// Without --swf the example replays the library's `mixed-swf` scenario (the
// bundled SWF fixture replicated onto a memory-tight 12-node machine), so it
// runs out of the box with no downloads.
#include <cstdio>
#include <utility>

#include "cluster/system_config.hpp"
#include "common/cli.hpp"
#include "common/str.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "workload/characterize.hpp"
#include "workload/swf.hpp"

int main(int argc, char** argv) {
  using namespace dmsched;
  Cli cli("trace_replay", "replay an SWF trace under several schedulers");
  cli.add_string("swf", "", "path to an SWF trace (empty: mixed-swf scenario)");
  cli.add_int("procs-per-node", 16, "processors per node for SWF conversion");
  cli.add_int("max-jobs", 0,
              "with --swf: cap on replayed jobs (0 = no cap); without: "
              "mixed-swf job-count target (0 = scenario default of 240)");
  if (!cli.parse(argc, argv)) return 1;
  if (cli.get_int("max-jobs") < 0) {
    std::fprintf(stderr, "error: --max-jobs must be >= 0\n");
    return 1;
  }

  Trace trace;
  ClusterConfig machine;
  Bytes reference_mem = gib(std::int64_t{256});
  if (const std::string path = cli.get_string("swf"); !path.empty()) {
    SwfOptions swf_options;
    swf_options.procs_per_node =
        static_cast<std::int32_t>(cli.get_int("procs-per-node"));
    auto result = read_swf_file(path, swf_options);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n", result.error.c_str());
      return 1;
    }
    std::printf("loaded %zu jobs (%zu skipped, %zu malformed lines)\n",
                result.jobs_accepted, result.jobs_skipped,
                result.lines_malformed);
    trace = std::move(result.trace);
    if (const auto cap = cli.get_int("max-jobs"); cap > 0) {
      trace = trace.prefix(static_cast<std::size_t>(cap));
    }
    machine = disaggregated_config(128, 2048);
  } else {
    const Scenario scenario = make_scenario(
        "mixed-swf",
        {.jobs = static_cast<std::size_t>(cli.get_int("max-jobs"))});
    std::printf("scenario: %s — %s\n", scenario.info.name.c_str(),
                scenario.info.summary.c_str());
    trace = scenario.trace;
    machine = scenario.cluster;
    reference_mem = scenario.workload_reference_mem;
  }

  const TraceStats stats =
      characterize(trace, reference_mem, machine.total_nodes);
  std::printf("trace: %zu jobs, %.1f h span, load %.2f, "
              "mem/node p50 %.1f GiB (p95 %.1f GiB)\n\n",
              stats.job_count, stats.span_hours, stats.offered_load,
              stats.mem_per_node_p50_gib, stats.mem_per_node_p95_gib);

  ConsoleTable table("SWF replay on " + machine.name);
  table.columns({"scheduler", "wait (h)", "p95 wait", "bsld", "util %",
                 "far-jobs %", "rejected"});
  for (const SchedulerKind kind :
       {SchedulerKind::kEasy, SchedulerKind::kMemAwareEasy,
        SchedulerKind::kAdaptive}) {
    ExperimentConfig config;
    config.cluster = machine;
    config.scheduler = kind;
    config.workload_reference_mem = reference_mem;
    const RunMetrics m = run_experiment(config, trace);
    table.row({to_string(kind), strformat("%.2f", m.mean_wait_hours),
               strformat("%.2f", m.p95_wait_hours),
               strformat("%.2f", m.mean_bsld),
               strformat("%.1f", 100.0 * m.node_utilization),
               strformat("%.1f", 100.0 * m.frac_jobs_far),
               strformat("%zu", m.rejected)});
  }
  table.print();
  return 0;
}
