// Replay a Standard Workload Format (SWF) trace — e.g. any trace from the
// Parallel Workloads Archive — through the simulator and compare the
// memory-unaware baseline against memory-aware scheduling.
//
//   ./trace_replay --swf /path/to/trace.swf [--procs-per-node 16]
//
// Without --swf the example generates a capacity-model trace, exports it to
// SWF, re-imports it, and replays that — demonstrating the full round trip
// so the example runs out of the box with no downloads.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "cluster/system_config.hpp"
#include "common/cli.hpp"
#include "common/str.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "workload/characterize.hpp"
#include "workload/swf.hpp"

int main(int argc, char** argv) {
  using namespace dmsched;
  Cli cli("trace_replay", "replay an SWF trace under several schedulers");
  cli.add_string("swf", "", "path to an SWF trace (empty: self-generated)");
  cli.add_int("procs-per-node", 16, "processors per node for SWF conversion");
  cli.add_int("max-jobs", 3000, "cap on replayed jobs");
  if (!cli.parse(argc, argv)) return 1;

  SwfOptions swf_options;
  swf_options.procs_per_node =
      static_cast<std::int32_t>(cli.get_int("procs-per-node"));

  Trace trace;
  if (const std::string path = cli.get_string("swf"); !path.empty()) {
    auto result = read_swf_file(path, swf_options);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n", result.error.c_str());
      return 1;
    }
    std::printf("loaded %zu jobs (%zu skipped, %zu malformed lines)\n",
                result.jobs_accepted, result.jobs_skipped,
                result.lines_malformed);
    trace = std::move(result.trace);
  } else {
    // Round trip: generate -> write SWF -> read SWF.
    const ClusterConfig machine = reference_config();
    const Trace generated = make_model_trace(
        WorkloadModel::kCapacity, static_cast<std::size_t>(cli.get_int("max-jobs")),
        /*seed=*/7, machine.total_nodes, machine.local_mem_per_node,
        /*target_load=*/0.85);
    std::stringstream buffer;
    swf_options.procs_per_node = 1;
    write_swf(buffer, generated, swf_options);
    auto result = read_swf(buffer, swf_options, "roundtrip.swf");
    std::printf("round-tripped %zu jobs through SWF\n", result.jobs_accepted);
    trace = std::move(result.trace);
  }
  trace = trace.prefix(static_cast<std::size_t>(cli.get_int("max-jobs")));

  const ClusterConfig machine = disaggregated_config(128, 2048);
  const TraceStats stats =
      characterize(trace, gib(std::int64_t{256}), machine.total_nodes);
  std::printf("trace: %zu jobs, %.1f h span, load %.2f, "
              "mem/node p50 %.1f GiB (p95 %.1f GiB)\n\n",
              stats.job_count, stats.span_hours, stats.offered_load,
              stats.mem_per_node_p50_gib, stats.mem_per_node_p95_gib);

  ConsoleTable table("SWF replay on " + machine.name);
  table.columns({"scheduler", "wait (h)", "p95 wait", "bsld", "util %",
                 "far-jobs %", "rejected"});
  for (const SchedulerKind kind :
       {SchedulerKind::kEasy, SchedulerKind::kMemAwareEasy,
        SchedulerKind::kAdaptive}) {
    ExperimentConfig config;
    config.cluster = machine;
    config.scheduler = kind;
    const RunMetrics m = run_experiment(config, trace);
    table.row({to_string(kind), strformat("%.2f", m.mean_wait_hours),
               strformat("%.2f", m.p95_wait_hours),
               strformat("%.2f", m.mean_bsld),
               strformat("%.1f", 100.0 * m.node_utilization),
               strformat("%.1f", 100.0 * m.frac_jobs_far),
               strformat("%zu", m.rejected)});
  }
  table.print();
  return 0;
}
