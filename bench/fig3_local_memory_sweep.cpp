// Figure 3 — shrinking node-local memory, with and without rack pools.
//
// The paper's headline figure. X axis: local memory per node
// {256, 192, 128, 96, 64} GiB. Two curves per workload: no pool vs a 2 TiB
// rack pool (mem-aware EASY). Without pools, shrinking local memory strands
// the memory-heavy tail (rejections) and the survivors' wait explodes; with
// pools the curves stay near the 256 GiB baseline until deep reductions.
#include "bench_util.hpp"

int main() {
  using namespace dmsched;
  using namespace dmsched::bench;

  const std::vector<std::int64_t> locals = {256, 192, 128, 96, 64};
  ConsoleTable table(
      "Figure 3 — local-memory sweep (scheduler: mem-easy, pool: 0 vs 2 TiB "
      "per rack)");
  table.columns({"workload", "local (GiB)", "pool", "mean wait (h)",
                 "p95 wait", "mean bsld", "util", "rejected", "far-jobs"});
  auto csv = csv_for("fig3_local_memory_sweep");
  csv.header({"workload", "local_gib", "pool_gib", "mean_wait_h",
              "p95_wait_h", "mean_bsld", "utilization", "rejected",
              "frac_far"});

  for (const WorkloadModel model : all_workload_models()) {
    const Trace trace = eval_trace(model);
    std::vector<ExperimentConfig> configs;
    std::vector<std::pair<std::int64_t, std::int64_t>> shapes;
    for (const std::int64_t local : locals) {
      for (const std::int64_t pool : {std::int64_t{0}, std::int64_t{2048}}) {
        configs.push_back(eval_config(disaggregated_config(local, pool),
                                      SchedulerKind::kMemAwareEasy, model));
        shapes.emplace_back(local, pool);
      }
    }
    const auto results = run_sweep_on_trace(configs, trace);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const RunMetrics& m = results[i];
      const auto [local, pool] = shapes[i];
      table.row({to_string(model), num(static_cast<std::size_t>(local)),
                 pool == 0 ? "none" : "2 TiB/rack", f2(m.mean_wait_hours),
                 f2(m.p95_wait_hours), f2(m.mean_bsld),
                 pct(m.node_utilization), num(m.rejected),
                 pct(m.frac_jobs_far)});
      csv.add(to_string(model))
          .add(local)
          .add(pool)
          .add(m.mean_wait_hours)
          .add(m.p95_wait_hours)
          .add(m.mean_bsld)
          .add(m.node_utilization)
          .add(m.rejected)
          .add(m.frac_jobs_far);
      csv.end_row();
    }
    table.separator();
  }
  table.print();
  return 0;
}
