// Migration sensitivity — the three-tier extension of Figure 5.
//
// Two knobs the neighbor tier introduces, swept against each other on the
// standard disaggregated machine under shared-neighbors placement:
//
//   β_neighbor   where the one-hop-further tier prices between β_rack
//                (0.30) and β_global (0.45) — the distance grade itself;
//   check_interval   how often the migration engine rebalances running
//                jobs' bytes between the tiers (0 = migration off, the
//                published-machine sentinel).
//
// Expected shape: pricing the neighbor tier near β_rack makes borrowing
// nearly free and migration barely matters; near β_global the grade
// collapses to two-tier pricing and demotion traffic rises. Faster scan
// periods trade migration work for lower steady-state dilation.
#include "bench_util.hpp"

#include "topology/placement_policy.hpp"

int main() {
  using namespace dmsched;
  using namespace dmsched::bench;

  // β_neighbor from "priced like the own rack" to "priced like global".
  const std::vector<double> neighbor_betas = {0.30, 0.3375, 0.375, 0.4125,
                                              0.45};
  const std::vector<double> intervals_min = {0.0, 60.0, 30.0, 15.0};
  const ClusterConfig machine = disaggregated_config(128, 1024, 8192);
  const Trace trace = eval_trace(WorkloadModel::kMixed);

  ConsoleTable table(
      "Migration sensitivity — three-tier beta grid (mixed workload, " +
      machine.name + ")");
  table.columns({"beta_nbr", "interval (min)", "mean bsld", "mean wait (h)",
                 "mean dilation", "nbr access", "demote", "promote",
                 "moves/h"});
  auto csv = csv_for("migration_sensitivity");
  csv.header({"beta_neighbor", "migrate_interval_min", "mean_bsld",
              "p95_bsld", "mean_wait_h", "mean_dilation", "neighbor_access",
              "global_access", "demotions", "promotions",
              "migrations_per_hour"});

  std::vector<ExperimentConfig> configs;
  for (const double beta : neighbor_betas) {
    for (const double interval : intervals_min) {
      ExperimentConfig c = eval_config(machine, SchedulerKind::kMemAwareEasy,
                                       WorkloadModel::kMixed);
      c.engine.placement = make_placement(PlacementStrategy::kSharedNeighbors);
      c.engine.slowdown.beta_neighbor = beta;
      if (interval > 0.0) {
        c.engine.migration.check_interval = minutes(interval);
        c.engine.migration.bandwidth_gibps = 4.0;
      }
      configs.push_back(std::move(c));
    }
  }
  const auto results = run_sweep_on_trace(configs, trace);

  std::size_t i = 0;
  for (const double beta : neighbor_betas) {
    for (const double interval : intervals_min) {
      const RunMetrics& m = results[i++];
      table.row({f3(beta), interval > 0.0 ? f1(interval) : "off",
                 f2(m.mean_bsld), f2(m.mean_wait_hours), f3(m.mean_dilation),
                 pct(m.neighbor_access_fraction), num(m.demotions),
                 num(m.promotions), f2(m.migrations_per_hour)});
      csv.add(beta)
          .add(interval)
          .add(m.mean_bsld)
          .add(m.p95_bsld)
          .add(m.mean_wait_hours)
          .add(m.mean_dilation)
          .add(m.neighbor_access_fraction)
          .add(m.global_access_fraction)
          .add(static_cast<std::size_t>(m.demotions))
          .add(static_cast<std::size_t>(m.promotions))
          .add(m.migrations_per_hour);
      csv.end_row();
    }
    table.separator();
  }
  table.print();
  return 0;
}
