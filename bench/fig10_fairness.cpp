// Figure 10 (extension) — fairness across scheduling policies.
//
// Backfilling aggressiveness redistributes wait between users: policies
// that chase aggregate wait can starve users whose jobs are wide or
// memory-heavy. This figure reports Jain's fairness index over per-user
// mean bounded slowdown/wait and the worst/best served-user ratio, per
// policy, on the headline disaggregated machine.
#include "bench_util.hpp"

#include "core/fairness.hpp"

int main() {
  using namespace dmsched;
  using namespace dmsched::bench;

  constexpr std::size_t kJobs = 3000;  // conservative participates
  const ClusterConfig machine = disaggregated_config(128, 2048);

  ConsoleTable table("Figure 10 — per-user fairness on " + machine.name);
  table.columns({"workload", "scheduler", "users", "Jain(bsld)",
                 "Jain(wait)", "max/min bsld", "top-decile share",
                 "mean bsld"});
  auto csv = csv_for("fig10_fairness");
  csv.header({"workload", "scheduler", "users", "jain_bsld", "jain_wait",
              "max_min_bsld", "top_decile_node_share", "mean_bsld"});

  for (const WorkloadModel model :
       {WorkloadModel::kCapacity, WorkloadModel::kMixed}) {
    const Trace trace = eval_trace(model, kJobs);
    std::vector<ExperimentConfig> configs;
    for (const SchedulerKind kind : all_scheduler_kinds()) {
      auto c = eval_config(machine, kind, model);
      c.jobs = kJobs;
      configs.push_back(std::move(c));
    }
    const auto results = run_sweep_on_trace(configs, trace);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const FairnessReport r = fairness_report(results[i]);
      const SchedulerKind kind = all_scheduler_kinds()[i];
      table.row({to_string(model), to_string(kind), num(r.users.size()),
                 f3(r.jain_bsld), f3(r.jain_wait),
                 f1(r.max_min_bsld_ratio), pct(r.top_decile_node_share),
                 f2(results[i].mean_bsld)});
      csv.add(to_string(model))
          .add(to_string(kind))
          .add(r.users.size())
          .add(r.jain_bsld)
          .add(r.jain_wait)
          .add(r.max_min_bsld_ratio)
          .add(r.top_decile_node_share)
          .add(results[i].mean_bsld);
      csv.end_row();
    }
    table.separator();
  }
  table.print();
  std::puts("(Jain index: 1.0 = identical mean service per user)");
  return 0;
}
