// Figure 9 — ablations over the design choices DESIGN.md calls out.
//
//  (a) node-selection policy       — does rack-compact placement matter?
//  (b) pool routing                — strict rack locality vs global overflow
//  (c) pool topology               — 16 rack pools vs one global pool of the
//                                    same total capacity
//  (d) backfill candidate ordering — queue order vs shortest vs best-mem-fit
#include "bench_util.hpp"

namespace {

using namespace dmsched;
using namespace dmsched::bench;

void emit(ConsoleTable& table, CsvWriter& csv, const std::string& axis,
          const std::string& variant, const RunMetrics& m) {
  table.row({axis, variant, f2(m.mean_wait_hours), f2(m.mean_bsld),
             pct(m.node_utilization), pct(m.frac_jobs_far),
             f3(m.mean_dilation), num(m.rejected)});
  csv.add(axis)
      .add(variant)
      .add(m.mean_wait_hours)
      .add(m.mean_bsld)
      .add(m.node_utilization)
      .add(m.frac_jobs_far)
      .add(m.mean_dilation)
      .add(m.rejected);
  csv.end_row();
}

}  // namespace

int main() {
  const ClusterConfig rack_machine = disaggregated_config(128, 2048);
  const Trace trace = eval_trace(WorkloadModel::kMixed);

  ConsoleTable table("Figure 9 — ablations (mixed workload, mem-easy, " +
                     rack_machine.name + ")");
  table.columns({"axis", "variant", "mean wait (h)", "mean bsld", "util",
                 "far-jobs", "dilation", "rejected"});
  auto csv = csv_for("fig9_ablations");
  csv.header({"axis", "variant", "mean_wait_h", "mean_bsld", "utilization",
              "frac_far", "mean_dilation", "rejected"});

  // (a) node selection
  {
    std::vector<ExperimentConfig> configs;
    const std::vector<NodeSelection> selections = {
        NodeSelection::kFirstFit, NodeSelection::kPackRacks,
        NodeSelection::kSpreadRacks, NodeSelection::kPoolAware};
    for (const NodeSelection sel : selections) {
      auto c = eval_config(rack_machine, SchedulerKind::kMemAwareEasy,
                           WorkloadModel::kMixed);
      c.engine.placement.selection = sel;
      configs.push_back(std::move(c));
    }
    const auto results = run_sweep_on_trace(configs, trace);
    for (std::size_t i = 0; i < results.size(); ++i) {
      emit(table, csv, "node-selection", to_string(selections[i]),
           results[i]);
    }
    table.separator();
  }

  // (b) pool routing (on a machine with both tiers so routing matters)
  {
    const ClusterConfig two_tier = disaggregated_config(128, 1024, 8192);
    std::vector<ExperimentConfig> configs;
    const std::vector<PoolRouting> routings = {PoolRouting::kRackOnly,
                                               PoolRouting::kRackThenGlobal};
    for (const PoolRouting routing : routings) {
      auto c = eval_config(two_tier, SchedulerKind::kMemAwareEasy,
                           WorkloadModel::kMixed);
      c.engine.placement.routing = routing;
      configs.push_back(std::move(c));
    }
    const auto results = run_sweep_on_trace(configs, trace);
    for (std::size_t i = 0; i < results.size(); ++i) {
      emit(table, csv, "pool-routing (" + two_tier.name + ")",
           to_string(routings[i]), results[i]);
    }
    table.separator();
  }

  // (c) pool topology: same disaggregated bytes, rack-scoped vs global
  {
    const std::vector<ClusterConfig> machines = {
        disaggregated_config(128, 2048),      // 16 × 2 TiB rack pools
        disaggregated_config(128, 0, 32768),  // one 32 TiB global pool
    };
    std::vector<ExperimentConfig> configs;
    for (const ClusterConfig& machine : machines) {
      configs.push_back(eval_config(machine, SchedulerKind::kMemAwareEasy,
                                    WorkloadModel::kMixed));
    }
    const auto results = run_sweep_on_trace(configs, trace);
    emit(table, csv, "pool-topology", "rack pools (16×2 TiB)", results[0]);
    emit(table, csv, "pool-topology", "global pool (1×32 TiB)", results[1]);
    table.separator();
  }

  // (d) backfill candidate ordering
  {
    std::vector<ExperimentConfig> configs;
    const std::vector<BackfillOrder> orders = {BackfillOrder::kQueueOrder,
                                               BackfillOrder::kShortestFirst,
                                               BackfillOrder::kBestMemFit};
    for (const BackfillOrder order : orders) {
      auto c = eval_config(rack_machine, SchedulerKind::kMemAwareEasy,
                           WorkloadModel::kMixed);
      c.mem_options.order = order;
      configs.push_back(std::move(c));
    }
    const auto results = run_sweep_on_trace(configs, trace);
    for (std::size_t i = 0; i < results.size(); ++i) {
      emit(table, csv, "backfill-order", to_string(orders[i]), results[i]);
    }
    table.separator();
  }

  // (e) EASY-K reservation depth: 1 = classic EASY head protection;
  // larger K interpolates toward conservative backfilling.
  {
    std::vector<ExperimentConfig> configs;
    const std::vector<std::size_t> depths = {1, 2, 4, 8};
    for (const std::size_t depth : depths) {
      auto c = eval_config(rack_machine, SchedulerKind::kMemAwareEasy,
                           WorkloadModel::kMixed);
      c.mem_options.reservation_depth = depth;
      configs.push_back(std::move(c));
    }
    const auto results = run_sweep_on_trace(configs, trace);
    for (std::size_t i = 0; i < results.size(); ++i) {
      emit(table, csv, "reservation-depth",
           strformat("K=%zu", depths[i]), results[i]);
    }
    table.separator();
  }

  // (f) walltime enforcement: production systems kill jobs at their
  // (dilated) limit; the default experiments let them finish to measure
  // dilation in full.
  {
    std::vector<ExperimentConfig> configs;
    for (const bool kill : {false, true}) {
      auto c = eval_config(rack_machine, SchedulerKind::kMemAwareEasy,
                           WorkloadModel::kMixed);
      c.engine.kill_on_walltime = kill;
      configs.push_back(std::move(c));
    }
    const auto results = run_sweep_on_trace(configs, trace);
    emit(table, csv, "walltime-kill", "off (default)", results[0]);
    emit(table, csv, "walltime-kill", "on", results[1]);
  }

  table.print();
  return 0;
}
