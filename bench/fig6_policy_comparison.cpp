// Figure 6 — scheduling policy comparison on the headline machine.
//
// All five policies × all three workloads on dis-L128-P2048 under a single
// shared trace per workload. Expected ordering on wait/bsld:
// FCFS ≫ conservative ≳ EASY ≳ mem-easy ≈ adaptive, with the memory-aware
// policies pulling ahead as pool pressure rises (capacity workload).
#include "bench_util.hpp"

int main() {
  using namespace dmsched;
  using namespace dmsched::bench;

  // Conservative's full-profile rebuild is O(window·breakpoints·racks) per
  // event; trim the trace so the whole figure regenerates in seconds.
  constexpr std::size_t kJobs = 3000;
  const ClusterConfig machine = disaggregated_config(128, 2048);

  ConsoleTable table("Figure 6 — policy comparison on " + machine.name);
  table.columns({"workload", "scheduler", "mean wait (h)", "p95 wait",
                 "mean bsld", "p95 bsld", "util", "far-jobs", "dilation"});
  auto csv = csv_for("fig6_policy_comparison");
  csv.header({"workload", "scheduler", "mean_wait_h", "p95_wait_h",
              "mean_bsld", "p95_bsld", "utilization", "frac_far",
              "mean_dilation"});

  for (const WorkloadModel model : all_workload_models()) {
    const Trace trace = eval_trace(model, kJobs);
    std::vector<ExperimentConfig> configs;
    for (const SchedulerKind kind : all_scheduler_kinds()) {
      auto c = eval_config(machine, kind, model);
      c.jobs = kJobs;
      configs.push_back(std::move(c));
    }
    const auto results = run_sweep_on_trace(configs, trace);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const RunMetrics& m = results[i];
      const SchedulerKind kind = all_scheduler_kinds()[i];
      table.row({to_string(model), to_string(kind), f2(m.mean_wait_hours),
                 f2(m.p95_wait_hours), f2(m.mean_bsld), f2(m.p95_bsld),
                 pct(m.node_utilization), pct(m.frac_jobs_far),
                 f3(m.mean_dilation)});
      csv.add(to_string(model))
          .add(to_string(kind))
          .add(m.mean_wait_hours)
          .add(m.p95_wait_hours)
          .add(m.mean_bsld)
          .add(m.p95_bsld)
          .add(m.node_utilization)
          .add(m.frac_jobs_far)
          .add(m.mean_dilation);
      csv.end_row();
    }
    table.separator();
  }
  table.print();
  return 0;
}
