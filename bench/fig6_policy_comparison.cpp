// Figure 6 — scheduling policy comparison across the scenario library.
//
// All five policies on every library scenario, each scenario under a single
// shared trace, through the chunked sweep. Expected ordering on wait/bsld:
// FCFS ≫ conservative ≳ EASY ≳ mem-easy ≈ adaptive on the easy scenarios,
// with the memory-aware policies pulling decisively ahead where local
// memory is scarce (memory-stressed, pool-contended) — the paper's core
// claim. tests/golden/policy_discrimination_test.cpp enforces the
// memory-stressed rows in CI.
#include "bench_util.hpp"

int main() {
  using namespace dmsched;
  using namespace dmsched::bench;

  ConsoleTable table("Figure 6 — policy comparison across scenarios");
  table.columns({"scenario", "scheduler", "makespan (h)", "mean wait (h)",
                 "p95 wait", "mean bsld", "p95 bsld", "util", "far-jobs",
                 "dilation"});
  auto csv = csv_for("fig6_policy_comparison");
  csv.header({"scenario", "scheduler", "memory_aware", "makespan_h",
              "mean_wait_h", "p95_wait_h", "mean_bsld", "p95_bsld",
              "utilization", "frac_far", "mean_dilation"});

  for (const std::string& name : scenario_names()) {
    // Infrastructure scenarios (large-replay: 100k jobs by default) measure
    // throughput, not policy orderings — five policies over them belongs to
    // bench/sim_throughput, not the fig. 6 table.
    if (scenario_info(name).infrastructure) continue;
    const Scenario scenario = make_scenario(name);
    std::vector<ExperimentConfig> configs;
    for (const SchedulerKind kind : all_scheduler_kinds()) {
      configs.push_back(scenario_experiment(scenario, kind));
    }
    const auto results = run_sweep_on_trace(configs, scenario.trace);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const RunMetrics& m = results[i];
      const SchedulerKind kind = all_scheduler_kinds()[i];
      table.row({scenario.info.name, to_string(kind), f1(m.makespan.hours()),
                 f2(m.mean_wait_hours), f2(m.p95_wait_hours), f2(m.mean_bsld),
                 f2(m.p95_bsld), pct(m.node_utilization),
                 pct(m.frac_jobs_far), f3(m.mean_dilation)});
      csv.add(scenario.info.name)
          .add(to_string(kind))
          .add(std::int64_t{make_scheduler(kind)->memory_aware() ? 1 : 0})
          .add(m.makespan.hours())
          .add(m.mean_wait_hours)
          .add(m.p95_wait_hours)
          .add(m.mean_bsld)
          .add(m.p95_bsld)
          .add(m.node_utilization)
          .add(m.frac_jobs_far)
          .add(m.mean_dilation);
      csv.end_row();
    }
    table.separator();
  }
  table.print();
  return 0;
}
