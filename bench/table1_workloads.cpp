// Table I — workload characteristics.
//
// One row per evaluation workload: scale, shape, runtime, walltime accuracy
// and the per-node memory statistics that drive everything else (fraction
// above half / above full local memory = the disaggregation-relevant mass).
#include "bench_util.hpp"

int main() {
  using namespace dmsched;
  using namespace dmsched::bench;

  const ClusterConfig machine = reference_config();
  ConsoleTable table("Table I — workload characteristics (per 4000-job trace)");
  table.columns({"workload", "jobs", "span (h)", "load", "nodes mean/p50",
                 "runtime p50 (h)", "estimate acc.", "mem/node p50 (GiB)",
                 "mem p95", ">50% local", ">100% local", "users"});
  auto csv = csv_for("table1_workloads");
  csv.header({"workload", "jobs", "span_hours", "offered_load", "nodes_mean",
              "nodes_p50", "runtime_p50_h", "estimate_accuracy",
              "mem_p50_gib", "mem_p95_gib", "frac_above_half",
              "frac_above_full", "users"});

  for (const WorkloadModel model : all_workload_models()) {
    const Trace trace = eval_trace(model);
    const TraceStats s =
        characterize(trace, machine.local_mem_per_node, machine.total_nodes);
    table.row({to_string(model), num(s.job_count), f1(s.span_hours),
               f2(s.offered_load),
               strformat("%.1f / %.0f", s.nodes_mean, s.nodes_p50),
               f2(s.runtime_p50_hours), f2(s.estimate_accuracy_mean),
               f1(s.mem_per_node_p50_gib), f1(s.mem_per_node_p95_gib),
               pct(s.frac_mem_above_half), pct(s.frac_mem_above_full),
               num(static_cast<std::size_t>(s.distinct_users))});
    csv.add(to_string(model))
        .add(s.job_count)
        .add(s.span_hours)
        .add(s.offered_load)
        .add(s.nodes_mean)
        .add(s.nodes_p50)
        .add(s.runtime_p50_hours)
        .add(s.estimate_accuracy_mean)
        .add(s.mem_per_node_p50_gib)
        .add(s.mem_per_node_p95_gib)
        .add(s.frac_mem_above_half)
        .add(s.frac_mem_above_full)
        .add(static_cast<std::int64_t>(s.distinct_users));
    csv.end_row();
  }
  table.print();
  std::puts("(reference node memory: 256 GiB; machine: 1024 nodes)");
  return 0;
}
