// Shared setup for the experiment harnesses: the evaluation's standard
// machine, workloads, and formatting helpers. Every bench binary uses these
// so the numbers across tables/figures describe the same system.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "cluster/system_config.hpp"
#include "common/csv.hpp"
#include "common/str.hpp"
#include "common/table.hpp"
#include "core/sweep.hpp"
#include "workload/characterize.hpp"

namespace dmsched::bench {

/// Evaluation constants (Table II): all experiments run against the
/// 1024-node reference machine and its disaggregated variants.
constexpr std::size_t kEvalJobs = 4000;
constexpr double kEvalLoad = 0.85;
constexpr std::uint64_t kEvalSeed = 20240901;
inline Bytes eval_reference_mem() { return gib(std::int64_t{256}); }

/// The evaluation workload for one model at standard scale.
inline Trace eval_trace(WorkloadModel model, std::size_t jobs = kEvalJobs,
                        std::uint64_t seed = kEvalSeed) {
  return make_model_trace(model, jobs, seed,
                          reference_config().total_nodes,
                          eval_reference_mem(), kEvalLoad);
}

/// A standard experiment: mem-aware defaults, evaluation slowdown model.
inline ExperimentConfig eval_config(ClusterConfig cluster,
                                    SchedulerKind scheduler,
                                    WorkloadModel model) {
  ExperimentConfig c;
  c.cluster = std::move(cluster);
  c.scheduler = scheduler;
  c.model = model;
  c.jobs = kEvalJobs;
  c.seed = kEvalSeed;
  c.target_load = kEvalLoad;
  c.workload_reference_mem = eval_reference_mem();
  c.label = strformat("%s/%s/%s", to_string(scheduler), c.cluster.name.c_str(),
                      to_string(model));
  return c;
}

/// Formatting helpers for table cells.
inline std::string f1(double x) { return strformat("%.1f", x); }
inline std::string f2(double x) { return strformat("%.2f", x); }
inline std::string f3(double x) { return strformat("%.3f", x); }
inline std::string pct(double x) { return strformat("%.1f%%", 100.0 * x); }
inline std::string num(std::size_t n) {
  return strformat("%zu", n);
}

/// CSV mirror of a bench's table: written beside the binary as
/// `<name>.csv` so plots can be regenerated without re-running.
inline CsvWriter csv_for(const std::string& bench_name) {
  return CsvWriter(bench_name + ".csv");
}

/// Peak resident set size of this process in KiB (VmHWM from
/// /proc/self/status), or -1 where procfs is unavailable (non-Linux).
inline std::int64_t peak_rss_kib() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  std::int64_t kib = -1;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    long long v = 0;
    if (std::sscanf(line, "VmHWM: %lld kB", &v) == 1) {
      kib = v;
      break;
    }
  }
  std::fclose(f);
  return kib;
}

/// Reset the kernel's peak-RSS watermark so per-phase peaks are measurable
/// (writes "5" to /proc/self/clear_refs). Best-effort: returns false where
/// the control file is unavailable, in which case VmHWM stays cumulative
/// over the process lifetime — report it as such, don't fail the bench.
inline bool reset_peak_rss() {
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return false;
  const bool ok = std::fputs("5", f) >= 0;
  return (std::fclose(f) == 0) && ok;
}

}  // namespace dmsched::bench
