// Many-small-sweeps throughput: cold fork/join vs. the warm persistent pool.
//
// Every paper figure is a parameter sweep, and benches issue many *small*
// sweeps back to back (one per scenario, per beta, per pool size...). Until
// the runtime/ layer existed, each run_sweep call spawned and joined a fresh
// jthread team, paying thread-startup cost per call. This bench quantifies
// what the persistent work-stealing Executor buys by racing the two
// implementations on identical workloads:
//
//   cold  — a faithful local copy of the old per-call fork/join loop
//           (spawn jthreads, atomic chunk counter, join);
//   warm  — parallel_for on the process-wide Executor::global().
//
// Two workload shapes, both representative:
//   startup-bound  — trivial task bodies, so per-call thread startup is the
//                    entire cost (the upper bound on the win);
//   small-sweeps   — real run_experiment sweeps (5 schedulers on a 60-job
//                    golden-baseline trace), the shape fig benches issue.
//
// Results go to the console and sweep_throughput.csv; bench/README.md
// records representative numbers. Determinism of sweep *output* is
// golden-enforced elsewhere; this bench only measures wall time.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "workload/scenarios.hpp"

namespace {

using namespace dmsched;
using namespace dmsched::bench;

using Clock = std::chrono::steady_clock;

/// The pre-runtime/ sweep engine, preserved verbatim in spirit: one fresh
/// jthread team per call, chunk claims from one atomic counter, join on
/// scope exit. This is the baseline the persistent pool replaces.
void cold_fork_join_for(std::size_t count, unsigned threads,
                        std::size_t chunk,
                        const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (threads <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  chunk = std::min(count, chunk == 0 ? std::size_t{1} : chunk);
  const std::size_t num_chunks = (count + chunk - 1) / chunk;
  std::atomic<std::size_t> next_chunk{0};
  {
    std::vector<std::jthread> workers;
    const unsigned n =
        static_cast<unsigned>(std::min<std::size_t>(threads, num_chunks));
    workers.reserve(n);
    for (unsigned w = 0; w < n; ++w) {
      workers.emplace_back([&next_chunk, num_chunks, chunk, count, &fn] {
        for (;;) {
          const std::size_t c =
              next_chunk.fetch_add(1, std::memory_order_relaxed);
          if (c >= num_chunks) return;
          const std::size_t begin = c * chunk;
          const std::size_t end = std::min(count, begin + chunk);
          for (std::size_t i = begin; i < end; ++i) fn(i);
        }
      });
    }
  }  // jthread joins here
}

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct Comparison {
  std::string workload;
  std::size_t sweeps;
  double cold_ms;
  double warm_ms;
};

/// Time `sweeps` repetitions of `one_sweep(use_warm_pool)` per engine.
Comparison compare(std::string workload, std::size_t sweeps,
                   const std::function<void(bool)>& one_sweep) {
  // Start the global pool first so "warm" measures reuse, not first-call
  // construction (real processes pay that once, not per sweep).
  (void)Executor::global();
  Comparison c{std::move(workload), sweeps, 0.0, 0.0};
  const auto cold_start = Clock::now();
  for (std::size_t s = 0; s < sweeps; ++s) one_sweep(false);
  c.cold_ms = ms_since(cold_start);
  const auto warm_start = Clock::now();
  for (std::size_t s = 0; s < sweeps; ++s) one_sweep(true);
  c.warm_ms = ms_since(warm_start);
  return c;
}

}  // namespace

int main() {
  // Floor the team size at 4 so the cold path's per-call thread spawns are
  // visible even on small CI machines; the warm path never spawns per call,
  // and parallelism above the pool's worker count is harmless
  // oversubscription by contract.
  const unsigned threads = std::max(4u, std::thread::hardware_concurrency());

  // Shape 1: startup-bound. 512 sweeps of 64 near-empty tasks — the cost is
  // almost entirely "get 64 indices onto threads and join".
  std::atomic<std::uint64_t> sink{0};
  const auto trivial = [&](bool warm) {
    constexpr std::size_t kCount = 64;
    const auto fn = [&sink](std::size_t i) {
      sink.fetch_add(i + 1, std::memory_order_relaxed);
    };
    if (warm) {
      ParallelForOptions options;
      options.parallelism = threads;  // same lane count as the cold team
      options.chunk = 1;
      parallel_for(kCount, options, fn);
    } else {
      cold_fork_join_for(kCount, threads, 1, fn);
    }
  };

  // Shape 2: real small sweeps — 5 schedulers on one shared 60-job
  // golden-baseline trace, the exact shape fig benches and golden suites
  // issue many times back to back.
  const Scenario scenario =
      make_scenario("golden-baseline", ScenarioParams{.jobs = 60});
  std::vector<ExperimentConfig> configs;
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    configs.push_back(scenario_experiment(scenario, kind));
  }
  std::vector<RunMetrics> results(configs.size());
  const auto small_sweep = [&](bool warm) {
    const auto fn = [&](std::size_t i) {
      results[i] = run_experiment(configs[i], scenario.trace);
    };
    if (warm) {
      ParallelForOptions options;
      options.parallelism = threads;
      options.chunk = 1;
      parallel_for(configs.size(), options, fn);
    } else {
      cold_fork_join_for(configs.size(), threads, 1, fn);
    }
  };

  ConsoleTable table("sweep throughput — cold fork/join vs. warm pool");
  table.columns({"workload", "sweeps", "cold (ms)", "warm (ms)",
                 "cold µs/sweep", "warm µs/sweep", "speedup"});
  auto csv = csv_for("sweep_throughput");
  csv.header({"workload", "sweeps", "cold_ms", "warm_ms", "cold_us_per_sweep",
              "warm_us_per_sweep", "speedup"});

  for (const Comparison& c :
       {compare("startup-bound (64 empty tasks)", 512, trivial),
        compare("small sweeps (5 scheds x 60 jobs)", 64, small_sweep)}) {
    const double cold_us = 1000.0 * c.cold_ms / static_cast<double>(c.sweeps);
    const double warm_us = 1000.0 * c.warm_ms / static_cast<double>(c.sweeps);
    const double speedup = c.warm_ms > 0.0 ? c.cold_ms / c.warm_ms : 0.0;
    table.row({c.workload, num(c.sweeps), f1(c.cold_ms), f1(c.warm_ms),
               f1(cold_us), f1(warm_us), strformat("%.2fx", speedup)});
    csv.add(c.workload)
        .add(c.sweeps)
        .add(c.cold_ms)
        .add(c.warm_ms)
        .add(cold_us)
        .add(warm_us)
        .add(speedup);
    csv.end_row();
  }
  table.print();
  std::printf("(threads: %u; sink %llu — keeps the empty tasks honest)\n",
              threads,
              static_cast<unsigned long long>(sink.load()));
  return 0;
}
