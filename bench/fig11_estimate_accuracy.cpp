// Figure 11 (extension) — sensitivity to walltime-estimate quality.
//
// Backfilling plans with user-provided walltime upper bounds; production
// estimates are notoriously loose (accuracy < 0.5). This figure replays the
// SAME mixed workload with rewritten walltimes — exact, the generator's
// default, and degraded 4–8× overestimates — under node-only EASY and
// memory-aware EASY. Expected: all backfillers benefit from better
// estimates; the 2-D (memory-aware) reservations benefit *more* because
// pool-byte reservations compound the node-dimension slack.
#include "bench_util.hpp"

#include "workload/transform.hpp"

int main() {
  using namespace dmsched;
  using namespace dmsched::bench;

  const ClusterConfig machine = disaggregated_config(128, 2048);
  const Trace base = eval_trace(WorkloadModel::kMixed);

  struct Variant {
    const char* name;
    Trace trace;
  };
  const std::vector<Variant> variants = {
      {"exact (acc 1.0)", with_exact_walltimes(base)},
      {"default", base},
      {"degraded 4-8x", with_walltime_factor(base, 4.0, 8.0, 7)},
  };

  ConsoleTable table("Figure 11 — walltime-estimate sensitivity (" +
                     machine.name + ", mixed workload)");
  table.columns({"estimates", "mean accuracy", "scheduler", "mean wait (h)",
                 "p95 wait", "mean bsld", "util"});
  auto csv = csv_for("fig11_estimate_accuracy");
  csv.header({"estimates", "mean_accuracy", "scheduler", "mean_wait_h",
              "p95_wait_h", "mean_bsld", "utilization"});

  for (const Variant& variant : variants) {
    const double accuracy = mean_estimate_accuracy(variant.trace);
    std::vector<ExperimentConfig> configs;
    const std::vector<SchedulerKind> kinds = {SchedulerKind::kEasy,
                                              SchedulerKind::kMemAwareEasy};
    for (const SchedulerKind kind : kinds) {
      configs.push_back(eval_config(machine, kind, WorkloadModel::kMixed));
    }
    const auto results = run_sweep_on_trace(configs, variant.trace);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const RunMetrics& m = results[i];
      table.row({variant.name, f2(accuracy), to_string(kinds[i]),
                 f2(m.mean_wait_hours), f2(m.p95_wait_hours),
                 f2(m.mean_bsld), pct(m.node_utilization)});
      csv.add(variant.name)
          .add(accuracy)
          .add(to_string(kinds[i]))
          .add(m.mean_wait_hours)
          .add(m.p95_wait_hours)
          .add(m.mean_bsld)
          .add(m.node_utilization);
      csv.end_row();
    }
    table.separator();
  }
  table.print();
  return 0;
}
