// Table III — the headline comparison.
//
// For every workload: the full-memory reference machine vs the shrunk
// machine without pools vs the shrunk machine with rack pools (mem-aware
// EASY). The claim this table carries: half the node-local DRAM plus a
// 2 TiB rack pool preserves (or improves) scheduling quality while cutting
// total provisioned memory — and unlocks the above-local-memory jobs the
// reference machine rejects outright.
#include "bench_util.hpp"

int main() {
  using namespace dmsched;
  using namespace dmsched::bench;

  const std::vector<ClusterConfig> machines = {
      reference_config(),                  // 256 GiB local, no pool
      disaggregated_config(128, 0),        // shrunk, no pool (strawman)
      disaggregated_config(128, 2048),     // shrunk + rack pools (proposed)
  };
  const Bytes ref_total = machines.front().total_memory();

  ConsoleTable table("Table III — headline comparison (scheduler: mem-easy)");
  table.columns({"workload", "machine", "total mem", "completed", "rejected",
                 "mean wait (h)", "p95 wait", "mean bsld", "util",
                 "mean dilation"});
  auto csv = csv_for("table3_headline");
  csv.header({"workload", "machine", "total_mem_ratio", "completed",
              "rejected", "mean_wait_h", "p95_wait_h", "mean_bsld",
              "utilization", "mean_dilation"});

  for (const WorkloadModel model : all_workload_models()) {
    const Trace trace = eval_trace(model);
    std::vector<ExperimentConfig> configs;
    for (const ClusterConfig& machine : machines) {
      configs.push_back(
          eval_config(machine, SchedulerKind::kMemAwareEasy, model));
    }
    const auto results = run_sweep_on_trace(configs, trace);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const RunMetrics& m = results[i];
      table.row({to_string(model), machines[i].name,
                 pct(ratio(machines[i].total_memory(), ref_total)),
                 num(m.completed), num(m.rejected), f2(m.mean_wait_hours),
                 f2(m.p95_wait_hours), f2(m.mean_bsld),
                 pct(m.node_utilization), f3(m.mean_dilation)});
      csv.add(to_string(model))
          .add(machines[i].name)
          .add(ratio(machines[i].total_memory(), ref_total))
          .add(m.completed)
          .add(m.rejected)
          .add(m.mean_wait_hours)
          .add(m.p95_wait_hours)
          .add(m.mean_bsld)
          .add(m.node_utilization)
          .add(m.mean_dilation);
      csv.end_row();
    }
    table.separator();
  }
  table.print();
  std::puts("(dis-L128-P2048 provisions 62.5% of the reference machine's "
            "memory)");
  return 0;
}
