// Figure 2 — CDF of per-node memory footprint, one series per workload.
//
// The figure that motivates the whole design: how much of each workload
// exceeds half / all of a node's local memory. Printed as (GiB, F(x))
// series; the CSV regenerates the plot.
#include "bench_util.hpp"

#include "common/histogram.hpp"

int main() {
  using namespace dmsched;
  using namespace dmsched::bench;
  constexpr std::size_t kPoints = 17;

  ConsoleTable table("Figure 2 — per-node memory footprint CDF");
  std::vector<std::string> headers{"quantile"};
  for (const WorkloadModel model : all_workload_models()) {
    headers.push_back(std::string(to_string(model)) + " (GiB)");
  }
  table.columns(headers);
  auto csv = csv_for("fig2_memory_cdf");
  csv.header({"workload", "mem_gib", "cumulative_fraction"});

  std::vector<std::vector<CdfPoint>> series;
  for (const WorkloadModel model : all_workload_models()) {
    auto cdf = empirical_cdf(memory_footprints_gib(eval_trace(model)),
                             kPoints);
    for (const auto& p : cdf) {
      csv.add(to_string(model)).add(p.x).add(p.cumulative_fraction);
      csv.end_row();
    }
    series.push_back(std::move(cdf));
  }

  for (std::size_t i = 0; i < kPoints; ++i) {
    std::vector<std::string> row{pct(series[0][i].cumulative_fraction)};
    for (const auto& s : series) row.push_back(f1(s[i].x));
    table.row(std::move(row));
  }
  table.print();
  std::puts("(vertical reference lines for the paper figure: 128 GiB = half "
            "local, 256 GiB = full local memory)");
  return 0;
}
