// Figure 5 — sensitivity to the far-memory penalty coefficient β.
//
// The hardware-facing sensitivity study: how do the schedulers degrade as
// far memory gets slower? β_rack sweeps 0 → 1.0 (β_global = 1.5·β_rack).
// Expected shape: at β=0 far memory is free and everyone is happy; as β
// grows, dilated runtimes feed back into queueing. The adaptive policy
// degrades most gracefully because it stops spilling when dilation costs
// more than waiting.
#include "bench_util.hpp"

int main() {
  using namespace dmsched;
  using namespace dmsched::bench;

  const std::vector<double> betas = {0.0, 0.15, 0.30, 0.50, 0.75, 1.00};
  const std::vector<SchedulerKind> kinds = {SchedulerKind::kEasy,
                                            SchedulerKind::kMemAwareEasy,
                                            SchedulerKind::kAdaptive};
  // A global pool in addition to rack pools so adaptive routing has a real
  // choice between tiers.
  const ClusterConfig machine = disaggregated_config(128, 1024, 8192);
  const Trace trace = eval_trace(WorkloadModel::kMixed);

  ConsoleTable table(
      "Figure 5 — beta sensitivity (mixed workload, " + machine.name + ")");
  table.columns({"beta_rack", "scheduler", "mean bsld", "p95 bsld",
                 "mean wait (h)", "mean dilation", "far-jobs", "global-pool "
                 "util"});
  auto csv = csv_for("fig5_beta_sensitivity");
  csv.header({"beta_rack", "scheduler", "mean_bsld", "p95_bsld",
              "mean_wait_h", "mean_dilation", "frac_far", "global_util"});

  std::vector<ExperimentConfig> configs;
  for (const double beta : betas) {
    for (const SchedulerKind kind : kinds) {
      ExperimentConfig c = eval_config(machine, kind, WorkloadModel::kMixed);
      c.engine.slowdown.beta_rack = beta;
      c.engine.slowdown.beta_global = 1.5 * beta;
      configs.push_back(std::move(c));
    }
  }
  const auto results = run_sweep_on_trace(configs, trace);

  std::size_t i = 0;
  for (const double beta : betas) {
    for (const SchedulerKind kind : kinds) {
      const RunMetrics& m = results[i++];
      table.row({f2(beta), to_string(kind), f2(m.mean_bsld), f2(m.p95_bsld),
                 f2(m.mean_wait_hours), f3(m.mean_dilation),
                 pct(m.frac_jobs_far), pct(m.global_pool_utilization)});
      csv.add(beta)
          .add(to_string(kind))
          .add(m.mean_bsld)
          .add(m.p95_bsld)
          .add(m.mean_wait_hours)
          .add(m.mean_dilation)
          .add(m.frac_jobs_far)
          .add(m.global_pool_utilization);
      csv.end_row();
    }
    table.separator();
  }
  table.print();
  return 0;
}
