// Figure 4 — how much pool is enough?
//
// Local memory fixed at the headline 128 GiB point; rack-pool capacity
// swept from 0 to 8 TiB. Expected shape: steep recovery at small pools
// (rejections vanish, wait collapses) then diminishing returns past the
// workload's aggregate deficit — the knee procurement cares about.
#include "bench_util.hpp"

int main() {
  using namespace dmsched;
  using namespace dmsched::bench;

  const std::vector<std::int64_t> pools = {0, 512, 1024, 2048, 4096, 8192};
  ConsoleTable table(
      "Figure 4 — rack-pool size sweep (local = 128 GiB, scheduler: "
      "mem-easy)");
  table.columns({"workload", "pool/rack (GiB)", "mean wait (h)", "mean bsld",
                 "util", "rejected", "far-jobs", "pool util", "pool peak"});
  auto csv = csv_for("fig4_pool_size_sweep");
  csv.header({"workload", "pool_gib", "mean_wait_h", "mean_bsld",
              "utilization", "rejected", "frac_far", "pool_util",
              "pool_peak"});

  for (const WorkloadModel model : all_workload_models()) {
    const Trace trace = eval_trace(model);
    std::vector<ExperimentConfig> configs;
    for (const std::int64_t pool : pools) {
      configs.push_back(eval_config(disaggregated_config(128, pool),
                                    SchedulerKind::kMemAwareEasy, model));
    }
    const auto results = run_sweep_on_trace(configs, trace);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const RunMetrics& m = results[i];
      table.row({to_string(model), num(static_cast<std::size_t>(pools[i])),
                 f2(m.mean_wait_hours), f2(m.mean_bsld),
                 pct(m.node_utilization), num(m.rejected),
                 pct(m.frac_jobs_far), pct(m.rack_pool_utilization),
                 pct(m.rack_pool_peak)});
      csv.add(to_string(model))
          .add(pools[i])
          .add(m.mean_wait_hours)
          .add(m.mean_bsld)
          .add(m.node_utilization)
          .add(m.rejected)
          .add(m.frac_jobs_far)
          .add(m.rack_pool_utilization)
          .add(m.rack_pool_peak);
      csv.end_row();
    }
    table.separator();
  }
  table.print();
  return 0;
}
