// Topology placement study — rack-scale provisioning under the named
// placement strategies.
//
// Two axes on the topology scenarios (rack-local, tiered-contended):
//
//  1. Placement strategy (local-first | balanced | global-fallback), every
//     scheduler-relevant metric side by side — the discrimination claim
//     pinned by tests/golden/topology_placement_test.cpp, at bench width.
//  2. The rack-scale-vs-system-wide ablation: the same machine flattened to
//     one global pool (topology/flatten_to_global), quantifying what the
//     rack tier's shorter distance buys at identical capacity.
//
// Writes topology_placement.csv beside the binary (one row per scenario ×
// machine-shape × strategy) in the fig-style schema the golden suite's CI
// artifact uses.
#include "bench_util.hpp"
#include "topology/placement_policy.hpp"
#include "topology/topology.hpp"

int main() {
  using namespace dmsched;
  using namespace dmsched::bench;

  ConsoleTable table(
      "Topology placement — strategies × rack-scale vs system-wide");
  table.columns({"scenario", "machine", "placement", "makespan (h)",
                 "wait (h)", "bsld", "dilation", "remote", "global",
                 "rack peak", "rejected"});
  auto csv = csv_for("topology_placement");
  csv.header({"scenario", "machine", "placement", "makespan_h", "mean_wait_h",
              "mean_bsld", "mean_dilation", "remote_access", "global_access",
              "rack_pool_busiest_peak", "completed", "rejected"});

  for (const std::string& name : {std::string("rack-local"),
                                  std::string("tiered-contended")}) {
    const Scenario scenario = make_scenario(name);
    // The published rack-scale machine, plus the system-wide ablation: all
    // disaggregated bytes in one global pool, capacity identical.
    struct Shape {
      const char* label;
      ClusterConfig cluster;
    };
    const std::vector<Shape> shapes = {
        {"rack-scale", scenario.cluster},
        {"system-wide", flatten_to_global(scenario.cluster)},
    };
    for (const Shape& shape : shapes) {
      std::vector<ExperimentConfig> configs;
      for (const PlacementStrategy strategy : all_placement_strategies()) {
        ExperimentConfig c =
            scenario_experiment(scenario, SchedulerKind::kMemAwareEasy);
        c.cluster = shape.cluster;
        c.engine.placement = make_placement(strategy);
        c.label = name + "/" + shape.label + "/" + to_string(strategy);
        configs.push_back(std::move(c));
      }
      const auto results = run_sweep_on_trace(configs, scenario.trace);
      for (std::size_t i = 0; i < results.size(); ++i) {
        const RunMetrics& m = results[i];
        const char* strategy = to_string(all_placement_strategies()[i]);
        table.row({scenario.info.name, shape.label, strategy,
                   f1(m.makespan.hours()), f2(m.mean_wait_hours),
                   f2(m.mean_bsld), f3(m.mean_dilation),
                   pct(m.remote_access_fraction),
                   pct(m.global_access_fraction),
                   pct(m.rack_pool_busiest_peak), num(m.rejected)});
        csv.add(scenario.info.name)
            .add(shape.label)
            .add(strategy)
            .add(m.makespan.hours())
            .add(m.mean_wait_hours)
            .add(m.mean_bsld)
            .add(m.mean_dilation)
            .add(m.remote_access_fraction)
            .add(m.global_access_fraction)
            .add(m.rack_pool_busiest_peak)
            .add(m.completed)
            .add(m.rejected);
        csv.end_row();
      }
      table.separator();
    }
  }
  table.print();
  return 0;
}
