// Simulation-core throughput: the indexed d-ary event queue vs. the old
// lazy-tombstone binary heap, at large-trace scale.
//
// The paper's tables replay full SWF traces, and related work evaluates
// disaggregation on month-scale production traces, so the event core must
// sustain 10^5–10^6-job replays. Until this bench's PR the core was
// quadratic under cancellation: EventQueue::cancel probed the whole heap
// (std::any_of) to answer "already fired?", and next_time() rescanned
// tombstoned fronts. This bench quantifies the rewrite two ways:
//
//   queue replay  — the two queue implementations (legacy = a faithful
//                   local copy of the tombstone heap, indexed = the live
//                   sim/ EventQueue) drive identical event scripts derived
//                   from the large-replay scenario: all submissions pushed
//                   up front (exactly what SchedulingSimulation::run does),
//                   then one cancel per job in two shapes —
//                     walltime-kill: the completion cancels a kill scheduled
//                       just after it. The kill is among the *earliest*
//                       pending events, so the legacy any_of probe finds it
//                       within a few entries: legacy's best case.
//                     reservation churn: the completion cancels a
//                       far-future reservation (the job's planned start
//                       under a month-deep backlog, conservative-backfill
//                       style). Far-future entries live in the leaf half of
//                       the legacy heap vector, so every cancel scans ~n/2
//                       of a 10^5-entry heap — the quadratic regime the
//                       indexed heap removes.
//                   Reported as events/sec with a cross-checked drain
//                   checksum, so a semantic drift between the two
//                   implementations fails loudly instead of benchmarking
//                   different work.
//   end-to-end    — full SchedulingSimulation replays (EASY) of large-replay
//                   prefixes, reported as jobs/sec: what a user of sweeps
//                   and benches actually experiences.
//   scheduler-pass — the incremental-profile rewrite, measured the same
//                   honest way as the queue replay: a faithful bench-local
//                   copy of the pre-incremental EASY pass (full queue walk
//                   every pass, shadow recomputed from scratch) against the
//                   live cached-pass scheduler, both driving complete
//                   simulations of large-replay at load 1.5 — above
//                   saturation, where the queue is deep and scheduler passes
//                   dominate the run. RunMetrics are cross-checked field by
//                   field, so a behavioural drift between the two passes
//                   fails the bench instead of benchmarking different
//                   schedules.
//
//   streaming ingestion — the million-replay scenario pulled through the
//                   TraceSource path at a bounded submission look-ahead vs.
//                   the eager materialize-then-push path, with peak RSS
//                   (VmHWM) and the event queue's peak live id window as the
//                   memory gauges and jobs/sec as the throughput gauge. The
//                   two arms are cross-checked job-for-job and by the
//                   engine's semantic event digest — FATAL on any drift —
//                   and the bench *enforces* the bounded-memory claim: the
//                   eager arm's peak id window must be ≥10× the streaming
//                   arm's. Results go to million_replay.csv (uploaded by
//                   CI, which runs `sim_throughput --smoke` for this
//                   section only at a CI-sized job count).
//
// Results go to the console and sim_throughput.csv; bench/README.md records
// representative numbers.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench_util.hpp"
#include "common/assert.hpp"
#include "core/experiment.hpp"
#include "obs/counters.hpp"
#include "obs/perfetto.hpp"
#include "obs/recording_sink.hpp"
#include "sim/event_queue.hpp"
#include "workload/scenarios.hpp"

namespace {

using namespace dmsched;
using namespace dmsched::bench;
using sim::EventClass;
using sim::EventFn;
using sim::EventId;

using Clock = std::chrono::steady_clock;

double sec_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The pre-rewrite event queue, preserved verbatim: a binary heap with lazy
/// cancellation. cancel() answers "pending?" with a full-heap std::any_of
/// probe and next_time() linearly rescans when the front is a tombstone —
/// the O(n)-per-operation behaviour the indexed heap replaces. This is the
/// baseline; the live implementation is sim/event_queue.{hpp,cpp}.
class LegacyTombstoneQueue {
 public:
  EventId push(SimTime time, EventClass cls, EventFn fn) {
    const EventId id = next_id_++;
    heap_.push_back({time, cls, next_seq_++, id, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), later);
    ++live_;
    return id;
  }

  bool cancel(EventId id) {
    if (id >= next_id_) return false;
    if (cancelled_.contains(id)) return false;
    const bool pending = std::any_of(
        heap_.begin(), heap_.end(),
        [&](const Entry& e) { return e.id == id; });
    if (!pending) return false;
    cancelled_.insert(id);
    --live_;
    return true;
  }

  [[nodiscard]] bool empty() const { return live_ == 0; }

  struct Fired {
    EventId id;
    SimTime time;
    EventClass cls;
    EventFn fn;
  };
  Fired pop() {
    while (!heap_.empty() && cancelled_.contains(heap_.front().id)) {
      cancelled_.erase(heap_.front().id);
      std::pop_heap(heap_.begin(), heap_.end(), later);
      heap_.pop_back();
    }
    std::pop_heap(heap_.begin(), heap_.end(), later);
    Entry e = std::move(heap_.back());
    heap_.pop_back();
    --live_;
    return {e.id, e.time, e.cls, std::move(e.fn)};
  }

 private:
  struct Entry {
    SimTime time;
    EventClass cls;
    std::uint64_t seq;
    EventId id;
    EventFn fn;
  };
  static bool later(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time > b.time;
    if (a.cls != b.cls) return a.cls > b.cls;
    return a.seq > b.seq;
  }

  std::vector<Entry> heap_;
  std::unordered_set<EventId> cancelled_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
};

struct ReplayResult {
  std::size_t events = 0;    // events drained (fired, not cancelled)
  std::size_t cancels = 0;   // successful cancellations
  std::uint64_t checksum = 0;  // order-sensitive digest of the drain
  double elapsed_s = 0.0;
};

/// How far ahead of its submission a job's cancelled event is scheduled.
enum class CancelShape {
  /// Walltime kill: just after the completion — among the earliest pending
  /// events, so even a linear probe finds it near the heap front.
  kWalltimeKill,
  /// Backfill-style reservation at the job's planned start under a deep
  /// backlog: far beyond every near-term event, i.e. in the leaf half of a
  /// binary heap's backing vector, where a linear probe scans ~n/2 entries.
  kReservation,
};

constexpr std::int64_t kReservationHorizonUsec =
    std::int64_t{30} * 24 * 3600 * 1'000'000;  // a month-deep backlog

/// Drive one queue implementation through the trace-derived script: push
/// every submission up front, let each submission schedule its completion
/// plus one future event (per the shape), let each completion cancel that
/// event. Identical for both queues; the checksum folds (id, time) of every
/// fired event in drain order, so the two implementations must agree
/// event-for-event.
template <class Queue>
ReplayResult replay(const Trace& trace, CancelShape shape) {
  ReplayResult r;
  Queue q;
  const auto start = Clock::now();
  for (const Job& j : trace.jobs()) {
    q.push(j.submit, EventClass::kSubmission,
           [&q, &j, &r, shape](SimTime now) {
             const SimTime at =
                 shape == CancelShape::kWalltimeKill
                     ? j.submit + max(j.walltime, j.runtime)
                     : j.submit + usec(kReservationHorizonUsec);
             const EventId target = q.push(at, EventClass::kTimer,
                                           [](SimTime) {});
             q.push(now + j.runtime, EventClass::kCompletion,
                    [&q, &r, target](SimTime) {
                      if (q.cancel(target)) ++r.cancels;
                    });
           });
  }
  while (!q.empty()) {
    auto f = q.pop();
    ++r.events;
    r.checksum = r.checksum * 1099511628211ULL ^
                 (static_cast<std::uint64_t>(f.time.usec()) + f.id);
    f.fn(f.time);
  }
  r.elapsed_s = sec_since(start);
  return r;
}

/// The pre-incremental EASY pass, preserved verbatim: every pass re-walks
/// the whole queue, re-plans every rejected candidate, and recomputes the
/// head's shadow from a fresh sort of the running set — O(queue) plans per
/// pass even when nothing changed. This is the baseline; the live
/// implementation (sched/easy.{hpp,cpp}) caches the converged shadow/extra
/// state against the engine's availability-timeline version and judges only
/// new arrivals.
class LegacyEasyScheduler final : public Scheduler {
 public:
  [[nodiscard]] const char* name() const override { return "easy"; }
  void schedule(SchedContext& ctx) override {
    const auto queue = ctx.queued_jobs();
    std::size_t qi = 0;
    while (qi < queue.size()) {
      auto alloc =
          plan_start(ctx.cluster(), ctx.job(queue[qi]), ctx.placement());
      if (!alloc) break;
      ctx.start_job(queue[qi], *alloc);
      ++qi;
    }
    if (qi >= queue.size()) return;

    const Job& head = ctx.job(queue[qi]);
    auto running = ctx.running_jobs();
    std::sort(running.begin(), running.end(),
              [](const RunningJob& a, const RunningJob& b) {
                if (a.expected_end != b.expected_end) {
                  return a.expected_end < b.expected_end;
                }
                return a.id < b.id;
              });
    std::int32_t avail = ctx.cluster().free_nodes_total();
    SimTime shadow = kTimeInfinity;
    std::int32_t extra = 0;
    if (avail >= head.nodes) {
      shadow = ctx.now();
      extra = avail - head.nodes;
    } else {
      for (const RunningJob& r : running) {
        avail += r.take.node_total();
        if (avail >= head.nodes) {
          shadow = r.expected_end;
          extra = avail - head.nodes;
          break;
        }
      }
    }
    DMSCHED_ASSERT(shadow < kTimeInfinity,
                   "EASY: head job wider than the machine was not rejected");

    for (std::size_t i = qi + 1; i < queue.size(); ++i) {
      const Job& cand = ctx.job(queue[i]);
      auto alloc = plan_start(ctx.cluster(), cand, ctx.placement());
      if (!alloc) continue;
      const bool ends_before_shadow = ctx.now() + cand.walltime <= shadow;
      const bool within_extra = cand.nodes <= extra;
      if (!ends_before_shadow && !within_extra) continue;
      ctx.start_job(queue[i], *alloc);
      if (!ends_before_shadow) extra -= cand.nodes;
    }
  }
};

/// One full EASY simulation of `scenario`, with either the legacy bench
/// copy or the live incremental scheduler.
RunMetrics run_easy(const Scenario& scenario, bool legacy) {
  const ExperimentConfig cfg =
      scenario_experiment(scenario, SchedulerKind::kEasy);
  std::unique_ptr<Scheduler> sched;
  if (legacy) {
    sched = std::make_unique<LegacyEasyScheduler>();
  } else {
    sched = make_scheduler(SchedulerKind::kEasy);
  }
  SchedulingSimulation sim(cfg.cluster, scenario.trace, std::move(sched),
                           cfg.engine);
  return sim.run();
}

/// The pass rewrite must be a pure optimisation: identical decisions,
/// identical metrics, down to the last double.
bool same_schedule(const RunMetrics& a, const RunMetrics& b) {
  return a.makespan == b.makespan && a.completed == b.completed &&
         a.killed == b.killed && a.rejected == b.rejected &&
         a.mean_wait_hours == b.mean_wait_hours &&
         a.p95_wait_hours == b.p95_wait_hours &&
         a.mean_bsld == b.mean_bsld && a.mean_dilation == b.mean_dilation;
}

// --- streaming ingestion (million-replay) -----------------------------------

struct IngestArm {
  RunMetrics metrics;
  std::uint64_t digest = 0;
  std::size_t peak_id_window = 0;
  double elapsed_s = 0.0;
  std::int64_t peak_rss_kib = -1;
};

/// One streamed replay: jobs pulled on demand, bounded look-ahead. Memory
/// per in-flight job is O(live): the event queue's id window and the live
/// job records both stay bounded. (Per-job *outcomes* are still collected —
/// RunMetrics::jobs is O(trace) in both arms — so the enforced criterion is
/// the event-queue id window, and RSS is reported as observed.)
IngestArm run_streaming_arm(std::size_t jobs, std::size_t lookahead) {
  reset_peak_rss();
  ScenarioStream stream = make_scenario_stream("million-replay",
                                               {.jobs = jobs});
  ExperimentConfig cfg = scenario_experiment(stream, SchedulerKind::kEasy);
  cfg.engine.submit_lookahead = lookahead;
  IngestArm a;
  const auto start = Clock::now();
  SchedulingSimulation sim(cfg.cluster, *stream.source,
                           make_scheduler(cfg.scheduler, cfg.mem_options),
                           cfg.engine);
  a.metrics = sim.run();
  a.elapsed_s = sec_since(start);
  a.digest = sim.event_digest();
  a.peak_id_window = sim.peak_event_id_window();
  a.peak_rss_kib = peak_rss_kib();
  return a;
}

/// The historical path: the whole trace materialized, every submission
/// pushed up front (look-ahead 0).
IngestArm run_eager_arm(std::size_t jobs) {
  reset_peak_rss();
  const Scenario scenario = make_scenario("million-replay", {.jobs = jobs});
  const ExperimentConfig cfg =
      scenario_experiment(scenario, SchedulerKind::kEasy);
  IngestArm a;
  const auto start = Clock::now();
  SchedulingSimulation sim(cfg.cluster, scenario.trace,
                           make_scheduler(cfg.scheduler, cfg.mem_options),
                           cfg.engine);
  a.metrics = sim.run();
  a.elapsed_s = sec_since(start);
  a.digest = sim.event_digest();
  a.peak_id_window = sim.peak_event_id_window();
  a.peak_rss_kib = peak_rss_kib();
  return a;
}

/// Cross-check the two arms job-for-job and by digest. Returns false (after
/// printing a diagnostic) on any drift.
bool arms_agree(std::size_t jobs, const IngestArm& stream,
                const IngestArm& eager) {
  if (stream.digest != eager.digest) {
    std::fprintf(stderr,
                 "FATAL: event digest drift at %zu jobs "
                 "(stream %llx vs eager %llx)\n",
                 jobs, static_cast<unsigned long long>(stream.digest),
                 static_cast<unsigned long long>(eager.digest));
    return false;
  }
  if (!same_schedule(stream.metrics, eager.metrics) ||
      stream.metrics.jobs.size() != eager.metrics.jobs.size()) {
    std::fprintf(stderr, "FATAL: metrics drift at %zu jobs\n", jobs);
    return false;
  }
  for (std::size_t i = 0; i < stream.metrics.jobs.size(); ++i) {
    const JobOutcome& s = stream.metrics.jobs[i];
    const JobOutcome& e = eager.metrics.jobs[i];
    if (s.fate != e.fate || s.submit != e.submit || s.start != e.start ||
        s.end != e.end || s.dilation != e.dilation) {
      std::fprintf(stderr, "FATAL: outcome drift at %zu jobs (job %zu)\n",
                   jobs, i);
      return false;
    }
  }
  return true;
}

std::string rss_mib(std::int64_t kib) {
  return kib < 0 ? std::string("n/a") : f1(static_cast<double>(kib) / 1024.0);
}

// --- tracing overhead -------------------------------------------------------

/// RunMetrics must be *byte-identical* with a sink attached: same outcomes,
/// same order, down to the last double. Anything else means the observer
/// perturbed the run.
bool identical_metrics(const RunMetrics& a, const RunMetrics& b) {
  if (!same_schedule(a, b) || a.jobs.size() != b.jobs.size()) return false;
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    const JobOutcome& x = a.jobs[i];
    const JobOutcome& y = b.jobs[i];
    if (x.fate != y.fate || x.submit != y.submit || x.start != y.start ||
        x.end != y.end || x.dilation != y.dilation) {
      return false;
    }
  }
  return true;
}

struct TracedArm {
  RunMetrics metrics;
  std::uint64_t digest = 0;
  double elapsed_s = 0.0;
};

/// One EASY replay of `scenario` with the given observers attached (either
/// may be null — both null is the untraced baseline).
TracedArm run_traced(const Scenario& scenario, obs::TraceSink* sink,
                     obs::CounterRegistry* counters,
                     obs::TraceDetail detail = obs::TraceDetail::kFull) {
  ExperimentConfig cfg = scenario_experiment(scenario, SchedulerKind::kEasy);
  cfg.engine.sink = sink;
  cfg.engine.trace_detail = detail;
  cfg.engine.counters = counters;
  TracedArm a;
  const auto start = Clock::now();
  SchedulingSimulation sim(cfg.cluster, scenario.trace,
                           make_scheduler(cfg.scheduler, cfg.mem_options),
                           cfg.engine);
  a.metrics = sim.run();
  a.elapsed_s = sec_since(start);
  a.digest = sim.event_digest();
  return a;
}

/// Tracing-overhead section: the same large-replay prefix untraced (the
/// disabled arm — one never-taken branch per emission site, 0% by
/// construction), then with sinks attached at each detail level, then with
/// the PerfettoTraceWriter streaming JSON to disk. Enforced:
///  - RunMetrics and the semantic event digest are identical across every
///    arm — tracing observes, never perturbs;
///  - an attached in-memory sink at lifecycle detail costs <5% over the
///    untraced baseline (min of kReps reps per arm, so machine noise does
///    not fail the build). Lifecycle is the budgeted always-on level; the
///    deeper levels are diagnostics and are priced in the table: kFull
///    reads the wall clock twice per pass, which alone is ~8% of a replay
///    that runs at ~1.4 us/job.
/// The JSON writer is reported, not enforced — its cost is dominated by
/// serialization and disk I/O, which CI machines vary on wildly.
bool run_tracing_overhead_section(std::size_t jobs) {
  constexpr int kReps = 5;
  const Scenario scenario = make_scenario("large-replay", {.jobs = jobs});

  obs::RecordingSink recorder;
  obs::CounterRegistry registry;
  const std::string trace_path = "tracing_overhead_sample.json";

  // A do-nothing sink (every TraceSink callback defaults to empty):
  // isolates what the *engine* adds at full detail — argument marshalling,
  // virtual dispatch, per-pass clock reads and gauge sampling — from what a
  // particular sink does with the data.
  obs::TraceSink null_sink;

  double base_s = 1e300, null_s = 1e300, life_s = 1e300, sched_s = 1e300,
         rec_s = 1e300, json_s = 1e300;
  std::size_t json_events = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    const TracedArm base = run_traced(scenario, nullptr, nullptr);
    const TracedArm null_arm = run_traced(scenario, &null_sink, nullptr);
    recorder.clear();
    const TracedArm life =
        run_traced(scenario, &recorder, nullptr, obs::TraceDetail::kLifecycle);
    recorder.clear();
    const TracedArm schd =
        run_traced(scenario, &recorder, nullptr, obs::TraceDetail::kSched);
    recorder.clear();
    const TracedArm rec = run_traced(scenario, &recorder, &registry);
    obs::PerfettoTraceWriter writer(trace_path);
    const TracedArm json = run_traced(scenario, &writer, nullptr);
    writer.close();
    json_events = writer.events_written();

    if (!identical_metrics(base.metrics, null_arm.metrics) ||
        !identical_metrics(base.metrics, rec.metrics) ||
        !identical_metrics(base.metrics, life.metrics) ||
        !identical_metrics(base.metrics, schd.metrics) ||
        !identical_metrics(base.metrics, json.metrics) ||
        base.digest != null_arm.digest || base.digest != rec.digest ||
        base.digest != life.digest || base.digest != schd.digest ||
        base.digest != json.digest) {
      std::fprintf(stderr,
                   "FATAL: tracing perturbed the run at %zu jobs "
                   "(digests base %llx rec %llx json %llx)\n",
                   jobs, static_cast<unsigned long long>(base.digest),
                   static_cast<unsigned long long>(rec.digest),
                   static_cast<unsigned long long>(json.digest));
      return false;
    }
    base_s = std::min(base_s, base.elapsed_s);
    null_s = std::min(null_s, null_arm.elapsed_s);
    life_s = std::min(life_s, life.elapsed_s);
    sched_s = std::min(sched_s, schd.elapsed_s);
    rec_s = std::min(rec_s, rec.elapsed_s);
    json_s = std::min(json_s, json.elapsed_s);
  }

  const std::size_t recorded =
      recorder.queued.size() + recorder.rejected.size() +
      recorder.started.size() + recorder.finished.size() +
      recorder.passes.size() + recorder.gauges.size();
  const double null_pct = 100.0 * (null_s - base_s) / base_s;
  const double life_pct = 100.0 * (life_s - base_s) / base_s;
  const double sched_pct = 100.0 * (sched_s - base_s) / base_s;
  const double rec_pct = 100.0 * (rec_s - base_s) / base_s;
  const double json_pct = 100.0 * (json_s - base_s) / base_s;

  ConsoleTable table(
      "tracing overhead — large-replay (EASY, recording sink, min of reps)");
  table.columns({"arm", "jobs", "elapsed (s)", "jobs/s", "overhead",
                 "events"});
  table.row({"no sink", num(jobs), f3(base_s),
             f1(static_cast<double>(jobs) / base_s), "-", "-"});
  table.row({"null sink (full)", num(jobs), f3(null_s),
             f1(static_cast<double>(jobs) / null_s),
             strformat("%+.1f%%", null_pct), "-"});
  table.row({"lifecycle (enforced <5%)", num(jobs), f3(life_s),
             f1(static_cast<double>(jobs) / life_s),
             strformat("%+.1f%%", life_pct), "-"});
  table.row({"+ pass spans (sched)", num(jobs), f3(sched_s),
             f1(static_cast<double>(jobs) / sched_s),
             strformat("%+.1f%%", sched_pct), "-"});
  table.row({"+ gauges + counters (full)", num(jobs), f3(rec_s),
             f1(static_cast<double>(jobs) / rec_s),
             strformat("%+.1f%%", rec_pct), num(recorded)});
  table.row({"perfetto json writer (full)", num(jobs), f3(json_s),
             f1(static_cast<double>(jobs) / json_s),
             strformat("%+.1f%%", json_pct), num(json_events)});
  table.print();

  auto csv = csv_for("tracing_overhead");
  csv.header({"arm", "jobs", "elapsed_s", "jobs_per_s", "overhead_pct",
              "events"});
  csv.add("none").add(jobs).add(base_s)
      .add(static_cast<double>(jobs) / base_s).add(0.0)
      .add(std::int64_t{-1});
  csv.end_row();
  csv.add("null-full").add(jobs).add(null_s)
      .add(static_cast<double>(jobs) / null_s).add(null_pct)
      .add(std::int64_t{-1});
  csv.end_row();
  csv.add("lifecycle").add(jobs).add(life_s)
      .add(static_cast<double>(jobs) / life_s).add(life_pct)
      .add(std::int64_t{-1});
  csv.end_row();
  csv.add("sched").add(jobs).add(sched_s)
      .add(static_cast<double>(jobs) / sched_s).add(sched_pct)
      .add(std::int64_t{-1});
  csv.end_row();
  csv.add("full").add(jobs).add(rec_s)
      .add(static_cast<double>(jobs) / rec_s).add(rec_pct).add(recorded);
  csv.end_row();
  csv.add("perfetto").add(jobs).add(json_s)
      .add(static_cast<double>(jobs) / json_s).add(json_pct)
      .add(json_events);
  csv.end_row();

  if (life_s > base_s * 1.05) {
    std::fprintf(stderr,
                 "FATAL: attached-sink overhead %.1f%% at lifecycle detail "
                 "exceeds the 5%% budget (base %.3fs, traced %.3fs at %zu "
                 "jobs)\n",
                 life_pct, base_s, life_s, jobs);
    return false;
  }
  return true;
}

/// Run the streaming-ingestion section. Returns false on a cross-check or
/// bounded-memory-criterion failure.
bool run_streaming_section(const std::vector<std::size_t>& sizes) {
  constexpr std::size_t kLookahead = 256;
  ConsoleTable table(
      "streaming ingestion — million-replay, pull-based source "
      "(lookahead 256) vs. eager materialize-and-push");
  table.columns({"jobs", "stream (s)", "eager (s)", "stream jobs/s",
                 "eager jobs/s", "stream idwin", "eager idwin", "win ratio",
                 "stream RSS (MiB)", "eager RSS (MiB)"});
  auto csv = csv_for("million_replay");
  csv.header({"arm", "jobs", "lookahead", "elapsed_s", "jobs_per_s",
              "peak_event_id_window", "peak_rss_kib", "id_window_ratio"});

  for (const std::size_t jobs : sizes) {
    // Streaming first: it runs against a fresh watermark, so its RSS figure
    // cannot inherit the eager arm's materialized trace.
    const IngestArm stream = run_streaming_arm(jobs, kLookahead);
    const IngestArm eager = run_eager_arm(jobs);
    if (!arms_agree(jobs, stream, eager)) return false;
    if (stream.peak_id_window == 0 ||
        eager.peak_id_window / stream.peak_id_window < 10) {
      std::fprintf(stderr,
                   "FATAL: bounded-memory criterion failed at %zu jobs: "
                   "eager peak id window %zu is not >= 10x streaming "
                   "peak %zu\n",
                   jobs, eager.peak_id_window, stream.peak_id_window);
      return false;
    }
    const double ratio = static_cast<double>(eager.peak_id_window) /
                         static_cast<double>(stream.peak_id_window);
    table.row({num(jobs), f3(stream.elapsed_s), f3(eager.elapsed_s),
               f1(static_cast<double>(jobs) / stream.elapsed_s),
               f1(static_cast<double>(jobs) / eager.elapsed_s),
               num(stream.peak_id_window), num(eager.peak_id_window),
               strformat("%.0fx", ratio), rss_mib(stream.peak_rss_kib),
               rss_mib(eager.peak_rss_kib)});
    csv.add("stream")
        .add(jobs)
        .add(kLookahead)
        .add(stream.elapsed_s)
        .add(static_cast<double>(jobs) / stream.elapsed_s)
        .add(stream.peak_id_window)
        .add(stream.peak_rss_kib)
        .add(ratio);
    csv.end_row();
    csv.add("eager")
        .add(jobs)
        .add(std::size_t{0})
        .add(eager.elapsed_s)
        .add(static_cast<double>(jobs) / eager.elapsed_s)
        .add(eager.peak_id_window)
        .add(eager.peak_rss_kib)
        .add(ratio);
    csv.end_row();
  }
  table.print();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // --smoke: CI mode — only the streaming-ingestion section, at a job count
  // sized for a CI runner. The full default run covers all sections and
  // takes the streaming comparison to a million jobs.
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }

  // Streaming ingestion runs first so its RSS watermarks are clean.
  const std::vector<std::size_t> ingest_sizes =
      smoke ? std::vector<std::size_t>{20000}
            : std::vector<std::size_t>{100000, 1000000};
  if (!run_streaming_section(ingest_sizes)) return 1;

  // Tracing overhead runs in --smoke too: the <5% attached-sink budget and
  // the byte-identical-metrics cross-check are CI-enforced claims.
  if (!run_tracing_overhead_section(smoke ? 20000 : 100000)) return 1;
  if (smoke) return 0;

  const std::size_t kSizes[] = {1000, 10000, 100000};

  ConsoleTable table(
      "sim core throughput — tombstone heap vs. indexed d-ary heap");
  table.columns({"shape", "jobs", "events", "cancels", "legacy (s)",
                 "indexed (s)", "legacy ev/s", "indexed ev/s", "speedup"});
  auto csv = csv_for("sim_throughput");
  // One schema for both sections: queue-replay rows leave jobs_per_s at -1,
  // end-to-end rows leave the legacy/cancel columns at -1 (there is no
  // legacy arm for a full simulation — the live core is the only one).
  csv.header({"workload", "jobs", "events", "cancels", "legacy_s",
              "indexed_s", "legacy_events_per_s", "indexed_events_per_s",
              "speedup", "jobs_per_s"});

  const struct {
    CancelShape shape;
    const char* name;
  } kShapes[] = {
      {CancelShape::kWalltimeKill, "walltime-kill (near-front)"},
      {CancelShape::kReservation, "reservation churn (deep)"},
  };
  for (const auto& [shape, shape_name] : kShapes) {
    for (const std::size_t jobs : kSizes) {
      const Scenario scenario = make_scenario("large-replay", {.jobs = jobs});
      const ReplayResult legacy =
          replay<LegacyTombstoneQueue>(scenario.trace, shape);
      const ReplayResult indexed =
          replay<sim::EventQueue>(scenario.trace, shape);
      if (legacy.checksum != indexed.checksum ||
          legacy.events != indexed.events ||
          legacy.cancels != indexed.cancels) {
        std::fprintf(stderr,
                     "FATAL: drain mismatch (%s, %zu jobs; "
                     "events %zu/%zu, cancels %zu/%zu)\n",
                     shape_name, jobs, legacy.events, indexed.events,
                     legacy.cancels, indexed.cancels);
        return 1;
      }
      const double legacy_eps =
          static_cast<double>(legacy.events) / legacy.elapsed_s;
      const double indexed_eps =
          static_cast<double>(indexed.events) / indexed.elapsed_s;
      const double speedup = legacy.elapsed_s / indexed.elapsed_s;
      table.row({shape_name, num(jobs), num(legacy.events),
                 num(legacy.cancels), f3(legacy.elapsed_s),
                 f3(indexed.elapsed_s), f1(legacy_eps), f1(indexed_eps),
                 strformat("%.1fx", speedup)});
      csv.add(shape_name)
          .add(jobs)
          .add(legacy.events)
          .add(legacy.cancels)
          .add(legacy.elapsed_s)
          .add(indexed.elapsed_s)
          .add(legacy_eps)
          .add(indexed_eps)
          .add(speedup)
          .add(std::int64_t{-1});
      csv.end_row();
    }
  }
  table.print();

  // End-to-end: full EASY replays of the same prefixes on the live core
  // (scheduler + cluster + metrics included), the number sweep users feel.
  ConsoleTable e2e("end-to-end replay (EASY on large-replay prefixes)");
  e2e.columns({"jobs", "elapsed (s)", "jobs/s", "makespan (h)", "completed"});
  for (const std::size_t jobs : kSizes) {
    const Scenario scenario = make_scenario("large-replay", {.jobs = jobs});
    const auto start = Clock::now();
    const RunMetrics m = run_scenario(scenario, SchedulerKind::kEasy);
    const double elapsed = sec_since(start);
    e2e.row({num(jobs), f3(elapsed),
             f1(static_cast<double>(jobs) / elapsed), f1(m.makespan.hours()),
             num(m.completed)});
    csv.add("end-to-end-easy")
        .add(jobs)
        .add(std::int64_t{-1})
        .add(std::int64_t{-1})
        .add(std::int64_t{-1})
        .add(elapsed)
        .add(std::int64_t{-1})
        .add(std::int64_t{-1})
        .add(std::int64_t{-1})
        .add(static_cast<double>(jobs) / elapsed);
    csv.end_row();
  }
  e2e.print();

  // Scheduler-pass: legacy full-queue-walk EASY vs. the live incremental
  // scheduler, complete simulations at load 1.5 — above saturation, so the
  // queue stays deep and pass cost dominates. Metrics must agree exactly;
  // the rewrite is only allowed to be faster, never different.
  ConsoleTable sched(
      "scheduler passes — legacy full-walk EASY vs. incremental "
      "(large-replay, load 1.5)");
  sched.columns({"jobs", "legacy (s)", "incremental (s)", "legacy jobs/s",
                 "incremental jobs/s", "speedup"});
  for (const std::size_t jobs : {std::size_t{1000}, std::size_t{3000},
                                 std::size_t{10000}}) {
    const Scenario scenario =
        make_scenario("large-replay", {.jobs = jobs, .load = 1.5});
    const auto lstart = Clock::now();
    const RunMetrics lm = run_easy(scenario, /*legacy=*/true);
    const double legacy_s = sec_since(lstart);
    const auto istart = Clock::now();
    const RunMetrics im = run_easy(scenario, /*legacy=*/false);
    const double incr_s = sec_since(istart);
    if (!same_schedule(lm, im)) {
      std::fprintf(stderr,
                   "FATAL: schedule drift at %zu jobs (legacy vs. "
                   "incremental): makespan %lld/%lld usec, completed "
                   "%zu/%zu, mean wait %.9f/%.9f h\n",
                   jobs, static_cast<long long>(lm.makespan.usec()),
                   static_cast<long long>(im.makespan.usec()), lm.completed,
                   im.completed, lm.mean_wait_hours, im.mean_wait_hours);
      return 1;
    }
    const double speedup = legacy_s / incr_s;
    sched.row({num(jobs), f3(legacy_s), f3(incr_s),
               f1(static_cast<double>(jobs) / legacy_s),
               f1(static_cast<double>(jobs) / incr_s),
               strformat("%.1fx", speedup)});
    csv.add("sched-pass-easy")
        .add(jobs)
        .add(std::int64_t{-1})
        .add(std::int64_t{-1})
        .add(legacy_s)
        .add(incr_s)
        .add(std::int64_t{-1})
        .add(std::int64_t{-1})
        .add(speedup)
        .add(static_cast<double>(jobs) / incr_s);
    csv.end_row();
  }
  // The incremental pass alone at the scale the legacy walk cannot reach in
  // reasonable time.
  {
    const std::size_t jobs = 100000;
    const Scenario scenario =
        make_scenario("large-replay", {.jobs = jobs, .load = 1.5});
    const auto start = Clock::now();
    const RunMetrics m = run_easy(scenario, /*legacy=*/false);
    const double elapsed = sec_since(start);
    sched.row({num(jobs), "-", f3(elapsed), "-",
               f1(static_cast<double>(jobs) / elapsed), "-"});
    csv.add("sched-pass-easy-incremental-only")
        .add(jobs)
        .add(std::int64_t{-1})
        .add(std::int64_t{-1})
        .add(std::int64_t{-1})
        .add(elapsed)
        .add(std::int64_t{-1})
        .add(std::int64_t{-1})
        .add(std::int64_t{-1})
        .add(static_cast<double>(jobs) / elapsed);
    csv.end_row();
    (void)m;
  }
  sched.print();
  return 0;
}
