// Figure 8 — who pays for disaggregation?
//
// Per-job-class breakdown (width × memory intensity) of bounded slowdown
// and dilation on the reference machine vs the headline disaggregated
// machine. Expected shape: memory-light classes are unaffected; the
// memory-heavy classes trade modest dilation for dramatically better
// access (they were unrunnable or queue-stuck before).
#include "bench_util.hpp"

#include <array>

namespace {

using namespace dmsched;

struct ClassDef {
  const char* name;
  std::int32_t nodes_lo;
  std::int32_t nodes_hi;
  bool mem_heavy;  // per-node footprint > 50% of reference (128 GiB)
};

constexpr std::array<ClassDef, 6> kClasses = {{
    {"narrow/light", 1, 8, false},
    {"narrow/heavy", 1, 8, true},
    {"mid/light", 9, 128, false},
    {"mid/heavy", 9, 128, true},
    {"wide/light", 129, 4096, false},
    {"wide/heavy", 129, 4096, true},
}};

bool in_class(const JobOutcome& o, const ClassDef& c) {
  const bool heavy = o.mem_per_node > gib(std::int64_t{128});
  return o.nodes >= c.nodes_lo && o.nodes <= c.nodes_hi &&
         heavy == c.mem_heavy;
}

}  // namespace

int main() {
  using namespace dmsched;
  using namespace dmsched::bench;

  const Trace trace = eval_trace(WorkloadModel::kMixed);
  const std::vector<ClusterConfig> machines = {
      reference_config(), disaggregated_config(128, 2048)};

  ConsoleTable table(
      "Figure 8 — per-class outcomes (mixed workload, mem-easy)");
  table.columns({"machine", "class", "jobs", "rejected", "mean wait (h)",
                 "mean bsld", "mean dilation", "far-jobs"});
  auto csv = csv_for("fig8_class_breakdown");
  csv.header({"machine", "class", "jobs", "rejected", "mean_wait_h",
              "mean_bsld", "mean_dilation", "frac_far"});

  for (const ClusterConfig& machine : machines) {
    const RunMetrics m = run_experiment(
        eval_config(machine, SchedulerKind::kMemAwareEasy,
                    WorkloadModel::kMixed),
        trace);
    for (const ClassDef& cls : kClasses) {
      std::size_t jobs = 0;
      std::size_t rejected = 0;
      std::size_t far_jobs = 0;
      double wait_sum = 0.0;
      double bsld_sum = 0.0;
      double dil_sum = 0.0;
      std::size_t started = 0;
      for (const JobOutcome& o : m.jobs) {
        if (!in_class(o, cls)) continue;
        ++jobs;
        if (o.fate == JobFate::kRejected) {
          ++rejected;
          continue;
        }
        ++started;
        wait_sum += o.wait().hours();
        bsld_sum += o.bounded_slowdown();
        dil_sum += o.dilation;
        if (o.used_far_memory()) ++far_jobs;
      }
      const double n = started > 0 ? static_cast<double>(started) : 1.0;
      table.row({machine.name, cls.name, num(jobs), num(rejected),
                 f2(wait_sum / n), f2(bsld_sum / n),
                 f3(started > 0 ? dil_sum / n : 1.0),
                 pct(started > 0 ? static_cast<double>(far_jobs) / n : 0.0)});
      csv.add(machine.name)
          .add(cls.name)
          .add(jobs)
          .add(rejected)
          .add(wait_sum / n)
          .add(bsld_sum / n)
          .add(started > 0 ? dil_sum / n : 1.0)
          .add(started > 0 ? static_cast<double>(far_jobs) / n : 0.0);
      csv.end_row();
    }
    table.separator();
  }
  table.print();
  std::puts("(heavy = per-node footprint above 128 GiB, half the reference "
            "node's memory)");
  return 0;
}
