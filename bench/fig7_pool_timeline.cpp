// Figure 7 — pool usage over time.
//
// Time series of the mixed workload on the headline machine: busy nodes,
// rack-pool occupancy, queue depth, sampled every 2 simulated hours. The
// paper's version shows pools saturating during arrival bursts while nodes
// still have headroom — the signature of memory-bound scheduling.
#include "bench_util.hpp"

int main() {
  using namespace dmsched;
  using namespace dmsched::bench;

  ExperimentConfig config =
      eval_config(disaggregated_config(128, 1024),
                  SchedulerKind::kMemAwareEasy, WorkloadModel::kMixed);
  config.engine.sample_interval = hours(2);
  const RunMetrics m = run_experiment(config);

  ConsoleTable table("Figure 7 — system timeline (" + config.cluster.name +
                     ", mixed workload, 2 h sampling)");
  table.columns({"t (h)", "busy nodes", "node util", "rack-pool used",
                 "pool util", "queued", "running"});
  auto csv = csv_for("fig7_pool_timeline");
  csv.header({"time_h", "busy_nodes", "node_util", "pool_used_gib",
              "pool_util", "queued", "running"});

  const double node_total = static_cast<double>(config.cluster.total_nodes);
  const Bytes pool_total =
      config.cluster.pool_per_rack * config.cluster.racks();
  // Print every 4th sample to keep the console table readable; the CSV
  // carries the full series.
  std::size_t printed = 0;
  for (std::size_t i = 0; i < m.series.size(); ++i) {
    const TimeSample& s = m.series[i];
    const double node_util = static_cast<double>(s.busy_nodes) / node_total;
    const double pool_util = ratio(s.rack_pool_used, pool_total);
    csv.add(s.time.hours())
        .add(static_cast<std::int64_t>(s.busy_nodes))
        .add(node_util)
        .add(s.rack_pool_used.gib())
        .add(pool_util)
        .add(static_cast<std::int64_t>(s.queued_jobs))
        .add(static_cast<std::int64_t>(s.running_jobs));
    csv.end_row();
    if (i % 4 == 0 && printed < 40) {
      ++printed;
      table.row({f1(s.time.hours()),
                 num(static_cast<std::size_t>(s.busy_nodes)), pct(node_util),
                 format_bytes(s.rack_pool_used), pct(pool_util),
                 num(static_cast<std::size_t>(s.queued_jobs)),
                 num(static_cast<std::size_t>(s.running_jobs))});
    }
  }
  table.print();
  std::printf("series: %zu samples over %.0f h; full data in "
              "fig7_pool_timeline.csv\n",
              m.series.size(), m.makespan.hours());
  std::printf("run summary: wait %.2f h, bsld %.2f, node util %.1f%%, "
              "pool util %.1f%% (peak %.1f%%)\n",
              m.mean_wait_hours, m.mean_bsld, 100.0 * m.node_utilization,
              100.0 * m.rack_pool_utilization, 100.0 * m.rack_pool_peak);
  return 0;
}
