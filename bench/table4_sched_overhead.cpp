// Table IV — scheduler decision overhead (google-benchmark).
//
// Two views:
//  1. whole-trace simulation throughput per policy (events/sec, jobs/sec) —
//     shows the simulator itself is not the bottleneck of any experiment;
//  2. single scheduling-pass latency at a controlled queue depth — the
//     figure a production RJMS integration would care about (passes run on
//     every submission/completion, so microseconds matter at scale).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "sched/profile.hpp"

namespace {

using namespace dmsched;
using namespace dmsched::bench;

// ---------------------------------------------------------------------------
// View 1: end-to-end simulation throughput.
// ---------------------------------------------------------------------------
void BM_FullSimulation(benchmark::State& state) {
  const auto kind = static_cast<SchedulerKind>(state.range(0));
  const auto jobs = static_cast<std::size_t>(state.range(1));
  const Trace trace = eval_trace(WorkloadModel::kMixed, jobs);
  const ExperimentConfig config = eval_config(
      disaggregated_config(128, 2048), kind, WorkloadModel::kMixed);
  std::size_t completed = 0;
  for (auto _ : state) {
    const RunMetrics m = run_experiment(config, trace);
    completed = m.completed;
    benchmark::DoNotOptimize(completed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs));
  state.SetLabel(std::string(to_string(kind)) + ", " +
                 std::to_string(completed) + " completed");
}

// ---------------------------------------------------------------------------
// View 2: one scheduling pass at a controlled queue depth.
// ---------------------------------------------------------------------------

/// Minimal SchedContext over a half-busy machine with `depth` queued jobs,
/// every one wider than the free machine so no pass can start anything.
/// start_job is a no-op counter, so one pass can be timed repeatedly
/// without the machine moving between passes.
///
/// With `incremental`, the context also exposes an AvailabilityTimeline and
/// a stable queue (the push-based invalidation contract the engine offers) —
/// the stuck queue then is exactly the steady state the schedulers' warm
/// fast paths are built for.
class PassContext final : public SchedContext {
 public:
  PassContext(const ClusterConfig& config, std::size_t depth,
              bool incremental = false)
      : config_(config), cluster_(config), timeline_(config_),
        incremental_(incremental) {
    Rng rng(99);
    // Fill half the machine with running jobs of varied shapes.
    JobId next_id = 0;
    while (cluster_.free_nodes_total() > config_.total_nodes / 2) {
      Job j;
      j.id = next_id++;
      j.nodes = static_cast<std::int32_t>(rng.uniform_int(1, 32));
      j.mem_per_node = gib(rng.uniform(8.0, 200.0));
      j.runtime = j.walltime = seconds(rng.uniform(600.0, 6 * 3600.0));
      auto alloc = plan_start(cluster_, j, placement_);
      if (!alloc) break;
      cluster_.commit(*alloc);
      jobs_.push_back(j);
      RunningJob r;
      r.id = j.id;
      r.expected_end = now_ + j.walltime;
      r.take = SchedulingSimulation::take_from_allocation(*alloc, config_);
      running_.push_back(r);
      timeline_.on_start(r.id, r.expected_end, r.take);
    }
    // Queue `depth` more jobs, every one wider than the free half so the
    // queue is provably stuck and a timed pass never starts anything. That
    // is not just convenient for repeatability — it is required: start_job
    // here never commits to the ledger, and schedulers price the holds of
    // started jobs off the real cluster, so a context that "starts" without
    // committing would double-book nodes. Mirror the engine's admission
    // rule: only jobs that fit an empty machine may be queued (schedulers
    // rely on that contract).
    const std::int64_t min_nodes = cluster_.free_nodes_total() + 1;
    const std::int64_t max_nodes =
        incremental_ ? config_.total_nodes : 512;
    while (queue_.size() < depth) {
      Job j;
      j.id = next_id;
      j.nodes = static_cast<std::int32_t>(
          rng.uniform_int(min_nodes, max_nodes));
      j.mem_per_node = gib(rng.uniform(8.0, 300.0));
      j.runtime = j.walltime = seconds(rng.uniform(600.0, 6 * 3600.0));
      if (!feasible_on_empty(config_, j, placement_)) continue;
      ++next_id;
      jobs_.push_back(j);
      queue_.push_back(j.id);
    }
  }

  [[nodiscard]] SimTime now() const override { return now_; }
  [[nodiscard]] const Cluster& cluster() const override { return cluster_; }
  [[nodiscard]] const Job& job(JobId id) const override {
    return jobs_[id];
  }
  [[nodiscard]] std::vector<JobId> queued_jobs() const override {
    return queue_;
  }
  [[nodiscard]] std::vector<RunningJob> running_jobs() const override {
    return running_;
  }
  [[nodiscard]] PlacementPolicy placement() const override {
    return placement_;
  }
  [[nodiscard]] const SlowdownModel& slowdown() const override {
    return slowdown_;
  }
  [[nodiscard]] const Topology& topology() const override {
    return topology_;
  }
  void start_job(JobId, const Allocation&) override { ++starts_; }

  [[nodiscard]] const AvailabilityTimeline* timeline() const override {
    return incremental_ ? &timeline_ : nullptr;
  }
  [[nodiscard]] bool queue_order_stable() const override {
    return incremental_;
  }
  [[nodiscard]] std::uint64_t queue_tail_epoch() const override {
    return queue_.size();
  }
  [[nodiscard]] std::vector<JobId> queued_jobs_after(
      std::uint64_t epoch) const override {
    return {queue_.begin() + static_cast<std::ptrdiff_t>(epoch),
            queue_.end()};
  }

  [[nodiscard]] std::size_t starts() const { return starts_; }

 private:
  ClusterConfig config_;
  Cluster cluster_;
  Topology topology_{config_};
  AvailabilityTimeline timeline_;
  bool incremental_;
  SimTime now_{};
  PlacementPolicy placement_{};
  SlowdownModel slowdown_{};
  std::vector<Job> jobs_;
  std::vector<JobId> queue_;
  std::vector<RunningJob> running_;
  std::size_t starts_ = 0;
};

void BM_SchedulingPass(benchmark::State& state) {
  const auto kind = static_cast<SchedulerKind>(state.range(0));
  const auto depth = static_cast<std::size_t>(state.range(1));
  PassContext ctx(disaggregated_config(128, 2048), depth);
  const auto scheduler = make_scheduler(kind);
  for (auto _ : state) {
    scheduler->schedule(ctx);
    benchmark::DoNotOptimize(ctx.starts());
  }
  state.SetLabel(strformat("%s, queue=%zu", to_string(kind), depth));
}

/// The pass cost when nothing has moved since the last one: a stuck queue
/// on a context that exposes the availability timeline. cold re-creates the
/// scheduler each pass (a from-scratch recompute, the pre-incremental
/// cost); warm reuses it, so every measured pass rides the version-check
/// fast path. The gap is what push-based invalidation buys the engine on
/// the (overwhelmingly common) passes where the system state is unchanged.
void BM_SchedulingPassWarm(benchmark::State& state) {
  const auto kind = static_cast<SchedulerKind>(state.range(0));
  const auto depth = static_cast<std::size_t>(state.range(1));
  const bool warm = state.range(2) != 0;
  PassContext ctx(disaggregated_config(128, 2048), depth,
                  /*incremental=*/true);
  auto scheduler = make_scheduler(kind);
  scheduler->schedule(ctx);  // prime the caches
  for (auto _ : state) {
    if (!warm) scheduler = make_scheduler(kind);
    scheduler->schedule(ctx);
    benchmark::DoNotOptimize(ctx.starts());
  }
  state.SetLabel(strformat("%s, queue=%zu, %s", to_string(kind), depth,
                           warm ? "warm" : "cold"));
}

void register_benchmarks() {
  // Short minimum times: each measurement is a full deterministic run (or
  // pass), so a handful of iterations already gives stable numbers.
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    benchmark::RegisterBenchmark("Table IV.1/full_simulation",
                                 BM_FullSimulation)
        ->Args({static_cast<std::int64_t>(kind), 2000})
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.2);
  }
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    for (const std::int64_t depth : {16, 64, 256}) {
      benchmark::RegisterBenchmark("Table IV.2/scheduling_pass",
                                   BM_SchedulingPass)
          ->Args({static_cast<std::int64_t>(kind), depth})
          ->Unit(benchmark::kMicrosecond)
          ->MinTime(0.1);
    }
  }
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    for (const std::int64_t depth : {64, 256}) {
      for (const std::int64_t warm : {0, 1}) {
        benchmark::RegisterBenchmark("Table IV.3/scheduling_pass_steady",
                                     BM_SchedulingPassWarm)
            ->Args({static_cast<std::int64_t>(kind), depth, warm})
            ->Unit(benchmark::kMicrosecond)
            ->MinTime(0.1);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
