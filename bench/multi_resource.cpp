// Multi-resource backfill study — the paper's single-resource memory policy
// vs the generalized resource-aware planner on machines with a third axis.
//
// Two axes:
//
//  1. Policy (mem-easy, planning blind to devices and revalidating starts,
//     vs resource-easy, planning on every provisioned axis), on the two
//     resource scenarios — the divergence claim pinned by
//     tests/golden/multi_resource_test.cpp, at bench width.
//  2. Provisioning depth: gpu-contended re-run with the --gpus-per-node
//     knob at 2/4/8 devices, quantifying how the blind policy's penalty
//     grows as the device pool tightens (8 = ample, 2 = scarce).
//
// Writes multi_resource.csv beside the binary (one row per scenario ×
// provisioning × policy) in the fig-style schema the golden suite's CI
// artifact uses.
#include "bench_util.hpp"
#include "workload/scenarios.hpp"

int main() {
  using namespace dmsched;
  using namespace dmsched::bench;

  constexpr SchedulerKind kPolicies[] = {SchedulerKind::kMemAwareEasy,
                                         SchedulerKind::kResourceAwareEasy};

  ConsoleTable table(
      "Multi-resource backfill — memory-only vs resource-aware planning");
  table.columns({"scenario", "machine", "policy", "makespan (h)", "wait (h)",
                 "bsld", "util", "gpu util", "gpu peak", "bb peak",
                 "rejected"});
  auto csv = csv_for("multi_resource");
  csv.header({"scenario", "machine", "policy", "makespan_h", "mean_wait_h",
              "p95_wait_h", "mean_bsld", "node_utilization",
              "gpu_utilization", "gpu_peak", "bb_utilization", "bb_peak",
              "completed", "rejected"});

  struct Case {
    std::string scenario;
    std::string machine;  // provisioning label for the table/CSV
    ScenarioParams params;
  };
  const std::vector<Case> cases = {
      // Published provisioning of both resource scenarios...
      {"gpu-contended", "4 gpus/node", {}},
      {"bb-staging", "256 GiB bb", {}},
      // ...plus the provisioning-depth sweep on the device axis.
      {"gpu-contended", "2 gpus/node", {.gpus_per_node = 2}},
      {"gpu-contended", "8 gpus/node", {.gpus_per_node = 8}},
  };

  for (const Case& c : cases) {
    const Scenario scenario = make_scenario(c.scenario, c.params);
    std::vector<ExperimentConfig> configs;
    for (const SchedulerKind kind : kPolicies) {
      ExperimentConfig cfg = scenario_experiment(scenario, kind);
      cfg.label = c.scenario + "/" + c.machine + "/" + to_string(kind);
      configs.push_back(std::move(cfg));
    }
    const auto results = run_sweep_on_trace(configs, scenario.trace);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const RunMetrics& m = results[i];
      const char* policy = to_string(kPolicies[i]);
      table.row({scenario.info.name, c.machine, policy,
                 f1(m.makespan.hours()), f2(m.mean_wait_hours),
                 f2(m.mean_bsld), pct(m.node_utilization),
                 pct(m.gpu_utilization), pct(m.gpu_peak), pct(m.bb_peak),
                 num(m.rejected)});
      csv.add(scenario.info.name)
          .add(c.machine)
          .add(policy)
          .add(m.makespan.hours())
          .add(m.mean_wait_hours)
          .add(m.p95_wait_hours)
          .add(m.mean_bsld)
          .add(m.node_utilization)
          .add(m.gpu_utilization)
          .add(m.gpu_peak)
          .add(m.bb_utilization)
          .add(m.bb_peak)
          .add(m.completed)
          .add(m.rejected);
      csv.end_row();
    }
    table.separator();
  }
  table.print();
  return 0;
}
