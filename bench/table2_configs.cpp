// Table II — simulated system configurations.
//
// The reference machine plus every disaggregated variant used by the other
// experiments, with total-memory accounting (what procurement would pay).
#include "bench_util.hpp"

int main() {
  using namespace dmsched;
  using namespace dmsched::bench;

  ConsoleTable table("Table II — system configurations");
  table.columns({"name", "nodes", "racks", "local/node", "pool/rack",
                 "global pool", "total local", "total pool", "total memory",
                 "vs reference"});
  auto csv = csv_for("table2_configs");
  csv.header({"name", "nodes", "racks", "local_gib", "pool_per_rack_gib",
              "global_pool_gib", "total_memory_gib", "ratio_vs_reference"});

  const Bytes ref_total = reference_config().total_memory();
  for (const ClusterConfig& c : evaluation_configs()) {
    const Bytes local_total = c.local_mem_per_node * c.total_nodes;
    table.row({c.name, num(static_cast<std::size_t>(c.total_nodes)),
               num(static_cast<std::size_t>(c.racks())),
               format_bytes(c.local_mem_per_node),
               format_bytes(c.pool_per_rack), format_bytes(c.global_pool),
               format_bytes(local_total), format_bytes(c.total_pool()),
               format_bytes(c.total_memory()),
               pct(ratio(c.total_memory(), ref_total))});
    csv.add(c.name)
        .add(static_cast<std::int64_t>(c.total_nodes))
        .add(static_cast<std::int64_t>(c.racks()))
        .add(c.local_mem_per_node.gib())
        .add(c.pool_per_rack.gib())
        .add(c.global_pool.gib())
        .add(c.total_memory().gib())
        .add(ratio(c.total_memory(), ref_total));
    csv.end_row();
  }
  table.print();
  std::puts("(slowdown model: linear, beta_rack=0.30, beta_global=0.45;\n"
            " sensitivity multipliers 0.4 / 1.0 / 1.6)");
  return 0;
}
