// Property tests: invariants that must hold for EVERY (scheduler, workload,
// machine) combination. Parameterized sweep across the full matrix.
#include <gtest/gtest.h>

#include <tuple>

#include "cluster/system_config.hpp"
#include "core/experiment.hpp"
#include "testing/builders.hpp"

namespace dmsched {
namespace {

struct Matrix {
  SchedulerKind scheduler;
  WorkloadModel model;
  bool with_pool;
};

class InvariantTest : public ::testing::TestWithParam<Matrix> {
 protected:
  RunMetrics run_case(std::uint64_t seed = 11) const {
    const Matrix& p = GetParam();
    ExperimentConfig c;
    c.cluster = p.with_pool
                    ? testing::tiny_cluster(gib(std::int64_t{48}),
                                            gib(std::int64_t{32}))
                    : testing::tiny_cluster();
    c.workload_reference_mem = gib(std::int64_t{64});
    c.scheduler = p.scheduler;
    c.model = p.model;
    c.jobs = 200;
    c.seed = seed;
    c.target_load = 0.9;
    c.engine.audit_cluster = true;  // full ledger audit at every completion
    return run_experiment(c);
  }
};

TEST_P(InvariantTest, EveryJobReachesATerminalState) {
  const RunMetrics m = run_case();
  EXPECT_EQ(m.completed + m.killed + m.rejected, m.jobs.size());
}

TEST_P(InvariantTest, NoJobStartsBeforeSubmission) {
  const RunMetrics m = run_case();
  for (const JobOutcome& o : m.jobs) {
    if (o.fate == JobFate::kRejected) continue;
    EXPECT_GE(o.start, o.submit) << "job " << o.id;
    EXPECT_GT(o.end, o.start) << "job " << o.id;
  }
}

TEST_P(InvariantTest, DilationBoundsRespected) {
  const RunMetrics m = run_case();
  for (const JobOutcome& o : m.jobs) {
    if (o.fate == JobFate::kRejected) continue;
    EXPECT_GE(o.dilation, 1.0) << "job " << o.id;
    // linear model ceiling: 1 + max_sens × max_beta (defaults 1.6, 0.45)
    EXPECT_LE(o.dilation, 1.0 + 1.6 * 0.45 + 1e-9) << "job " << o.id;
    if (!o.used_far_memory()) {
      EXPECT_DOUBLE_EQ(o.dilation, 1.0) << "job " << o.id;
    }
  }
}

TEST_P(InvariantTest, RuntimeMatchesDilation) {
  const RunMetrics m = run_case();
  for (const JobOutcome& o : m.jobs) {
    if (o.fate != JobFate::kCompleted) continue;
    const double expected = o.runtime.seconds() * o.dilation;
    EXPECT_NEAR((o.end - o.start).seconds(), expected, 1e-3)
        << "job " << o.id;
  }
}

TEST_P(InvariantTest, NoFarMemoryWithoutPools) {
  const Matrix& p = GetParam();
  if (p.with_pool) GTEST_SKIP() << "pool case";
  const RunMetrics m = run_case();
  for (const JobOutcome& o : m.jobs) {
    EXPECT_FALSE(o.used_far_memory()) << "job " << o.id;
  }
  EXPECT_DOUBLE_EQ(m.frac_jobs_far, 0.0);
}

TEST_P(InvariantTest, RejectionOnlyWhenTrulyUnrunnable) {
  const RunMetrics m = run_case();
  const Matrix& p = GetParam();
  const Bytes local = p.with_pool ? gib(std::int64_t{48})
                                  : gib(std::int64_t{64});
  for (const JobOutcome& o : m.jobs) {
    if (o.fate != JobFate::kRejected) continue;
    // a rejected job must genuinely exceed what the machine can serve
    EXPECT_GT(o.mem_per_node, local) << "job " << o.id;
  }
}

TEST_P(InvariantTest, UtilizationWithinPhysicalBounds) {
  const RunMetrics m = run_case();
  EXPECT_GE(m.node_utilization, 0.0);
  EXPECT_LE(m.node_utilization, 1.0 + 1e-9);
  EXPECT_GE(m.rack_pool_utilization, 0.0);
  EXPECT_LE(m.rack_pool_peak, 1.0 + 1e-9);
  EXPECT_LE(m.global_pool_peak, 1.0 + 1e-9);
}

TEST_P(InvariantTest, MakespanCoversEveryCompletion) {
  const RunMetrics m = run_case();
  for (const JobOutcome& o : m.jobs) {
    if (o.fate == JobFate::kRejected) continue;
    EXPECT_LE(o.end, m.makespan) << "job " << o.id;
  }
}

TEST_P(InvariantTest, WaitTimesAreFiniteUnderFeasibleLoad) {
  // 0.9 offered load must drain: no job waits longer than the whole span
  // of the simulation.
  const RunMetrics m = run_case();
  for (const JobOutcome& o : m.jobs) {
    if (o.fate == JobFate::kRejected) continue;
    EXPECT_LE(o.wait(), m.makespan) << "job " << o.id;
  }
}

TEST_P(InvariantTest, HoldsAcrossSeeds) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const RunMetrics m = run_case(seed);
    EXPECT_EQ(m.completed + m.killed + m.rejected, m.jobs.size())
        << "seed " << seed;
  }
}

std::string matrix_name(const ::testing::TestParamInfo<Matrix>& info) {
  std::string name = std::string(to_string(info.param.scheduler)) + "_" +
                     to_string(info.param.model) +
                     (info.param.with_pool ? "_pool" : "_nopool");
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    FullMatrix, InvariantTest,
    ::testing::Values(
        Matrix{SchedulerKind::kFcfs, WorkloadModel::kMixed, true},
        Matrix{SchedulerKind::kFcfs, WorkloadModel::kCapacity, false},
        Matrix{SchedulerKind::kEasy, WorkloadModel::kMixed, true},
        Matrix{SchedulerKind::kEasy, WorkloadModel::kCapability, false},
        Matrix{SchedulerKind::kConservative, WorkloadModel::kMixed, true},
        Matrix{SchedulerKind::kConservative, WorkloadModel::kCapacity, true},
        Matrix{SchedulerKind::kMemAwareEasy, WorkloadModel::kMixed, true},
        Matrix{SchedulerKind::kMemAwareEasy, WorkloadModel::kCapacity, true},
        Matrix{SchedulerKind::kMemAwareEasy, WorkloadModel::kCapability,
               false},
        Matrix{SchedulerKind::kAdaptive, WorkloadModel::kMixed, true},
        Matrix{SchedulerKind::kAdaptive, WorkloadModel::kCapacity, true}),
    matrix_name);

}  // namespace
}  // namespace dmsched
