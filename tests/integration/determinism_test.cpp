// Bit-reproducibility: identical configs must give identical runs — the
// foundation of every comparison in the evaluation.
#include <gtest/gtest.h>

#include "cluster/system_config.hpp"
#include "core/experiment.hpp"
#include "testing/builders.hpp"

namespace dmsched {
namespace {

ExperimentConfig base_config(SchedulerKind kind) {
  ExperimentConfig c;
  c.cluster = testing::tiny_cluster(gib(std::int64_t{32}));
  c.workload_reference_mem = gib(std::int64_t{64});
  c.scheduler = kind;
  c.model = WorkloadModel::kCapacity;
  c.jobs = 250;
  c.seed = 77;
  c.target_load = 0.9;
  return c;
}

void expect_identical(const RunMetrics& a, const RunMetrics& b) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].start.usec(), b.jobs[i].start.usec()) << "job " << i;
    EXPECT_EQ(a.jobs[i].end.usec(), b.jobs[i].end.usec()) << "job " << i;
    EXPECT_EQ(a.jobs[i].fate, b.jobs[i].fate) << "job " << i;
    EXPECT_EQ(a.jobs[i].far_rack, b.jobs[i].far_rack) << "job " << i;
    EXPECT_EQ(a.jobs[i].far_global, b.jobs[i].far_global) << "job " << i;
  }
  EXPECT_EQ(a.makespan.usec(), b.makespan.usec());
  EXPECT_DOUBLE_EQ(a.node_utilization, b.node_utilization);
  EXPECT_DOUBLE_EQ(a.mean_bsld, b.mean_bsld);
}

class DeterminismTest : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(DeterminismTest, SameSeedSameSchedule) {
  const ExperimentConfig config = base_config(GetParam());
  expect_identical(run_experiment(config), run_experiment(config));
}

TEST_P(DeterminismTest, SharedTraceMatchesRegeneratedTrace) {
  const ExperimentConfig config = base_config(GetParam());
  const Trace trace = make_workload(config);
  expect_identical(run_experiment(config), run_experiment(config, trace));
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, DeterminismTest,
    ::testing::Values(SchedulerKind::kFcfs, SchedulerKind::kEasy,
                      SchedulerKind::kConservative,
                      SchedulerKind::kMemAwareEasy, SchedulerKind::kAdaptive),
    [](const ::testing::TestParamInfo<SchedulerKind>& param_info) {
      std::string name = to_string(param_info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Determinism, DifferentSeedsProduceDifferentSchedules) {
  ExperimentConfig a = base_config(SchedulerKind::kEasy);
  ExperimentConfig b = a;
  b.seed = 78;
  const RunMetrics ma = run_experiment(a);
  const RunMetrics mb = run_experiment(b);
  EXPECT_NE(ma.makespan.usec(), mb.makespan.usec());
}

TEST(Determinism, PlacementPolicyChangesScheduleDeterministically) {
  ExperimentConfig a = base_config(SchedulerKind::kMemAwareEasy);
  a.engine.placement.selection = NodeSelection::kFirstFit;
  ExperimentConfig b = a;
  b.engine.placement.selection = NodeSelection::kPackRacks;
  // each policy is internally reproducible
  expect_identical(run_experiment(a), run_experiment(a));
  expect_identical(run_experiment(b), run_experiment(b));
}

}  // namespace
}  // namespace dmsched
