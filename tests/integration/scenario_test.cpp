// Golden-schedule scenarios: small hand-built traces with exact expected
// start times per scheduler, end-to-end through the real engine.
#include <gtest/gtest.h>

#include "cluster/system_config.hpp"
#include "core/engine.hpp"
#include "core/factory.hpp"
#include "testing/builders.hpp"

namespace dmsched {
namespace {

using testing::job;
using testing::tiny_cluster;
using testing::trace_of;

RunMetrics run(const ClusterConfig& cfg, const Trace& trace,
               SchedulerKind kind) {
  EngineOptions options;
  options.audit_cluster = true;
  SchedulingSimulation sim(cfg, trace, make_scheduler(kind), options);
  return sim.run();
}

double start_h(const RunMetrics& m, JobId id) {
  return m.jobs[id].start.hours();
}

// Scenario A (nodes only):
//   t=0: J0 12 nodes, 4 h (exact estimate)
//   t=0: J1 12 nodes, 2 h  — must wait for J0 (only 4 free)
//   t=0: J2 4 nodes, 2 h   — backfill candidate, ends at 2 h < 4 h
//   t=0: J3 4 nodes, 8 h   — would overlap J1's reservation on 12 nodes?
//                            no: extra = (4+12)-12 = 4 -> fits extra.
Trace scenario_a() {
  return trace_of({job(0).at_h(0.0).nodes(12).runtime_h(4.0).walltime_h(4.0),
                   job(1).at_h(0.0).nodes(12).runtime_h(2.0).walltime_h(2.0),
                   job(2).at_h(0.0).nodes(4).runtime_h(2.0).walltime_h(2.0),
                   job(3).at_h(0.0).nodes(4).runtime_h(8.0).walltime_h(8.0)});
}

TEST(ScenarioA, FcfsNeverBackfills) {
  const RunMetrics m = run(tiny_cluster(), scenario_a(), SchedulerKind::kFcfs);
  EXPECT_DOUBLE_EQ(start_h(m, 0), 0.0);
  EXPECT_DOUBLE_EQ(start_h(m, 1), 4.0);  // waits for J0
  EXPECT_DOUBLE_EQ(start_h(m, 2), 4.0);  // in-order start beside J1 (4 free)
  EXPECT_DOUBLE_EQ(start_h(m, 3), 6.0);  // machine full until J1/J2 finish
}

TEST(ScenarioA, EasyBackfillsBothSmallJobs) {
  const RunMetrics m = run(tiny_cluster(), scenario_a(), SchedulerKind::kEasy);
  EXPECT_DOUBLE_EQ(start_h(m, 0), 0.0);
  EXPECT_DOUBLE_EQ(start_h(m, 1), 4.0);  // reservation intact
  EXPECT_DOUBLE_EQ(start_h(m, 2), 0.0);  // ends before shadow
  // J3 cannot start at 0 (J2 holds the last 4 nodes) but backfills into the
  // extra-node budget as soon as J2 completes at 2 h.
  EXPECT_DOUBLE_EQ(start_h(m, 3), 2.0);
}

TEST(ScenarioA, MemAwareEasyMatchesEasyWithoutMemoryPressure) {
  const RunMetrics easy =
      run(tiny_cluster(), scenario_a(), SchedulerKind::kEasy);
  const RunMetrics mem =
      run(tiny_cluster(), scenario_a(), SchedulerKind::kMemAwareEasy);
  for (JobId i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(start_h(easy, i), start_h(mem, i)) << "job " << i;
  }
}

TEST(ScenarioA, ConservativeProtectsJ1) {
  const RunMetrics m =
      run(tiny_cluster(), scenario_a(), SchedulerKind::kConservative);
  EXPECT_DOUBLE_EQ(start_h(m, 0), 0.0);
  EXPECT_DOUBLE_EQ(start_h(m, 1), 4.0);
  EXPECT_DOUBLE_EQ(start_h(m, 2), 0.0);  // [0,2h) on the 4 free nodes
  // J2 claimed the only free nodes at t=0, so J3's window-fit lands at 2 h;
  // from there it coexists with J1's 12-node reservation (4 + 12 = 16).
  EXPECT_DOUBLE_EQ(start_h(m, 3), 2.0);
}

// Scenario B (memory pressure): single rack of 4 nodes, 64 GiB local,
// 32 GiB pool.
//   t=0: J0 1 node, mem 80 (16 pool), 2 h
//   t=0: J1 1 node, mem 96 (32 pool) — blocked on pool until J0 ends
//   t=0: J2 1 node, mem 80 (16 pool), 10 h — the pool-stealing candidate
ClusterConfig one_rack() {
  return custom_config(4, 4, gib(std::int64_t{64}), gib(std::int64_t{32}),
                       Bytes{0});
}

Trace scenario_b() {
  return trace_of(
      {job(0).at_h(0.0).nodes(1).mem_gib(80).runtime_h(2.0).walltime_h(2.0),
       job(1).at_h(0.0).nodes(1).mem_gib(96).runtime_h(1.0).walltime_h(1.0),
       job(2).at_h(0.0).nodes(1).mem_gib(80).runtime_h(10.0)
           .walltime_h(10.0)});
}

TEST(ScenarioB, EasyStarvesThePoolBlockedHead) {
  const RunMetrics m = run(one_rack(), scenario_b(), SchedulerKind::kEasy);
  // J2 backfills at t=0 (node-only shadow sees free nodes), draining the
  // pool; J1 cannot start until J2 finishes at 10h × 1.06.
  EXPECT_DOUBLE_EQ(start_h(m, 2), 0.0);
  EXPECT_GT(start_h(m, 1), 10.0);
}

TEST(ScenarioB, MemAwareEasyProtectsTheHead) {
  const RunMetrics m =
      run(one_rack(), scenario_b(), SchedulerKind::kMemAwareEasy);
  // J0's walltime bound: 2 h × 1.06 = 2.12 h; the head starts when the
  // pool actually frees (J0's true end, same value here).
  EXPECT_NEAR(start_h(m, 1), 2.12, 1e-6);
  // J2 is NOT backfilled at 0 (it would delay the head); it starts when
  // the head no longer needs its bytes — i.e. right after the head starts
  // and the pool has 16 GiB free again? The head takes all 32 GiB, so J2
  // waits for the head's completion bound.
  EXPECT_GT(start_h(m, 2), 2.0);
}

TEST(ScenarioB, DilationAppearsInMetrics) {
  const RunMetrics m =
      run(one_rack(), scenario_b(), SchedulerKind::kMemAwareEasy);
  EXPECT_NEAR(m.jobs[0].dilation, 1.0 + 0.3 * (16.0 / 80.0), 1e-9);
  EXPECT_NEAR(m.jobs[1].dilation, 1.0 + 0.3 * (32.0 / 96.0), 1e-9);
  EXPECT_DOUBLE_EQ(m.frac_jobs_far, 1.0);
}

// Scenario C: walltime overestimates enable earlier-than-reserved starts.
Trace scenario_c() {
  return trace_of(
      {job(0).at_h(0.0).nodes(16).runtime_h(1.0).walltime_h(4.0),
       job(1).at_h(0.0).nodes(16).runtime_h(1.0).walltime_h(1.0)});
}

TEST(ScenarioC, CompletionTriggersImmediateReschedule) {
  for (const auto kind :
       {SchedulerKind::kFcfs, SchedulerKind::kEasy,
        SchedulerKind::kConservative, SchedulerKind::kMemAwareEasy}) {
    const RunMetrics m = run(tiny_cluster(), scenario_c(), kind);
    EXPECT_DOUBLE_EQ(start_h(m, 1), 1.0) << to_string(kind);
  }
}

// Scenario D: rejected wide job must not wedge the queue behind it.
TEST(ScenarioD, UnrunnableJobDoesNotBlockQueue) {
  const Trace t = trace_of(
      {job(0).at_h(0.0).nodes(32).runtime_h(1.0),   // wider than machine
       job(1).at_h(0.0).nodes(4).runtime_h(1.0)});
  for (const auto kind : {SchedulerKind::kFcfs, SchedulerKind::kEasy,
                          SchedulerKind::kMemAwareEasy}) {
    const RunMetrics m = run(tiny_cluster(), t, kind);
    EXPECT_EQ(m.jobs[0].fate, JobFate::kRejected) << to_string(kind);
    EXPECT_DOUBLE_EQ(start_h(m, 1), 0.0) << to_string(kind);
  }
}

}  // namespace
}  // namespace dmsched
