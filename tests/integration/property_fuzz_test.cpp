// Randomized property tests with independent oracles:
//  - the placement kernel against a closed-form max-startable-nodes formula
//    and apply/release round-trip identities;
//  - profile fitting against brute-force probing of state_at().
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sched/profile.hpp"
#include "testing/builders.hpp"

namespace dmsched {
namespace {

using testing::job;

constexpr int kRounds = 300;

ClusterConfig fuzz_config(Rng& rng) {
  ClusterConfig c;
  c.name = "fuzz";
  c.nodes_per_rack = static_cast<std::int32_t>(rng.uniform_int(2, 8));
  c.total_nodes =
      c.nodes_per_rack * static_cast<std::int32_t>(rng.uniform_int(1, 6));
  c.local_mem_per_node = gib(rng.uniform_int(16, 128));
  c.pool_per_rack = rng.bernoulli(0.7) ? gib(rng.uniform_int(0, 256))
                                       : Bytes{0};
  c.global_pool = rng.bernoulli(0.4) ? gib(rng.uniform_int(0, 512))
                                     : Bytes{0};
  return c;
}

ResourceState fuzz_state(Rng& rng, const ClusterConfig& c) {
  ResourceState s = empty_state(c);
  for (std::size_t r = 0; r < s.free_nodes.size(); ++r) {
    s.free_nodes[r] =
        static_cast<std::int32_t>(rng.uniform_int(0, s.free_nodes[r]));
    if (!s.pool_free[r].is_zero()) {
      s.pool_free[r] = gib(rng.uniform_int(
          0, s.pool_free[r].count() / kGiB.count()));
    }
  }
  if (!s.global_free.is_zero()) {
    s.global_free =
        gib(rng.uniform_int(0, s.global_free.count() / kGiB.count()));
  }
  return s;
}

Job fuzz_job(Rng& rng, const ClusterConfig& c) {
  Job j = job(0)
              .nodes(static_cast<std::int32_t>(
                  rng.uniform_int(1, c.total_nodes + 2)))
              .mem_gib(static_cast<double>(rng.uniform_int(
                  1, 2 * c.local_mem_per_node.count() / kGiB.count())))
              .runtime_h(rng.uniform(0.1, 5.0));
  return j;
}

/// Independent oracle: the maximum startable nodes for a deficit-d job
/// under rack-then-global routing.
std::int64_t max_startable(const ResourceState& s, Bytes d) {
  if (d.is_zero()) {
    std::int64_t total = 0;
    for (const auto f : s.free_nodes) total += f;
    return total;
  }
  std::int64_t via_rack = 0;
  std::int64_t spare = 0;
  for (std::size_t r = 0; r < s.free_nodes.size(); ++r) {
    const std::int64_t funded =
        std::min<std::int64_t>(s.free_nodes[r], s.pool_free[r].count() / d.count());
    via_rack += funded;
    spare += s.free_nodes[r] - funded;
  }
  const std::int64_t via_global =
      std::min(spare, s.global_free.count() / d.count());
  return via_rack + via_global;
}

TEST(PlacementFuzz, ComputeTakeMatchesClosedFormFeasibility) {
  Rng rng(2024);
  const PlacementPolicy policy{NodeSelection::kFirstFit,
                               PoolRouting::kRackThenGlobal};
  for (int round = 0; round < kRounds; ++round) {
    const ClusterConfig c = fuzz_config(rng);
    const ResourceState s = fuzz_state(rng, c);
    const Job j = fuzz_job(rng, c);
    const Bytes d =
        j.mem_per_node - min(j.mem_per_node, c.local_mem_per_node);
    const bool expect_fit = max_startable(s, d) >= j.nodes;
    const auto plan = compute_take(s, c, j, policy);
    EXPECT_EQ(plan.has_value(), expect_fit)
        << "round " << round << ": nodes=" << j.nodes
        << " deficit=" << d.count();
  }
}

TEST(PlacementFuzz, PlansAreInternallyConsistent) {
  Rng rng(77);
  for (int round = 0; round < kRounds; ++round) {
    const ClusterConfig c = fuzz_config(rng);
    const ResourceState s = fuzz_state(rng, c);
    const Job j = fuzz_job(rng, c);
    for (const NodeSelection sel :
         {NodeSelection::kFirstFit, NodeSelection::kPackRacks,
          NodeSelection::kSpreadRacks, NodeSelection::kPoolAware}) {
      for (const PoolRouting route :
           {PoolRouting::kRackOnly, PoolRouting::kRackThenGlobal,
            PoolRouting::kGlobalOnly}) {
        const auto plan = compute_take(s, c, j, {sel, route});
        if (!plan) continue;
        EXPECT_EQ(plan->node_total(), j.nodes);
        EXPECT_EQ(plan->local_per_node + plan->far_per_node, j.mem_per_node);
        EXPECT_LE(plan->local_per_node, c.local_mem_per_node);
        const Bytes far_needed =
            plan->far_per_node * static_cast<std::int64_t>(j.nodes);
        EXPECT_EQ(plan->rack_pool_total() + plan->global_total(), far_needed);
        if (route == PoolRouting::kRackOnly) {
          EXPECT_TRUE(plan->global_total().is_zero());
        }
        if (route == PoolRouting::kGlobalOnly) {
          EXPECT_TRUE(plan->rack_pool_total().is_zero());
        }
        EXPECT_TRUE(can_apply(s, *plan));
        // apply/release round trip restores the state exactly
        ResourceState mutated = s;
        apply_take(mutated, *plan);
        release_take(mutated, *plan);
        EXPECT_EQ(mutated.free_nodes, s.free_nodes);
        EXPECT_EQ(mutated.pool_free, s.pool_free);
        EXPECT_EQ(mutated.global_free, s.global_free);
      }
    }
  }
}

TEST(PlacementFuzz, MoreResourcesNeverBreakFeasibility) {
  Rng rng(13);
  const PlacementPolicy policy{NodeSelection::kPoolAware,
                               PoolRouting::kRackThenGlobal};
  for (int round = 0; round < kRounds; ++round) {
    const ClusterConfig c = fuzz_config(rng);
    const ResourceState s = fuzz_state(rng, c);
    const Job j = fuzz_job(rng, c);
    if (!compute_take(s, c, j, policy)) continue;
    // grow every resource: the job must still fit
    ClusterConfig bigger = c;
    bigger.pool_per_rack += gib(std::int64_t{64});
    bigger.global_pool += gib(std::int64_t{64});
    ResourceState grown = s;
    for (std::size_t r = 0; r < grown.free_nodes.size(); ++r) {
      grown.pool_free[r] += gib(std::int64_t{64});
    }
    grown.global_free += gib(std::int64_t{64});
    EXPECT_TRUE(compute_take(grown, bigger, j, policy).has_value());
  }
}

TEST(ProfileFuzz, EarliestFitAgreesWithStateProbing) {
  Rng rng(555);
  const PlacementPolicy policy{NodeSelection::kFirstFit,
                               PoolRouting::kRackThenGlobal};
  for (int round = 0; round < 120; ++round) {
    const ClusterConfig c = fuzz_config(rng);
    ResourceState state = empty_state(c);
    FreeProfile profile(state, SimTime{}, &c);

    // Fill with a random running set (consistent: takes applied to state).
    ResourceState live = state;
    for (int k = 0; k < 6; ++k) {
      const Job r = fuzz_job(rng, c);
      const auto take = compute_take(live, c, r, policy);
      if (!take) continue;
      apply_take(live, *take);
    }
    // Profile over the final live state; the diff between empty and live is
    // what is held, released in one go at a random time.
    profile = FreeProfile(live, SimTime{}, &c);
    TakePlan held;
    const ResourceState empty = empty_state(c);
    for (std::size_t r = 0; r < live.free_nodes.size(); ++r) {
      RackTake t;
      t.rack = static_cast<RackId>(r);
      t.nodes = empty.free_nodes[r] - live.free_nodes[r];
      t.rack_pool_bytes = empty.pool_free[r] - live.pool_free[r];
      if (t.nodes > 0 || t.rack_pool_bytes > Bytes{0}) held.takes.push_back(t);
    }
    if (empty.global_free > live.global_free) {
      if (held.takes.empty()) held.takes.push_back({0, 0, Bytes{0}, Bytes{0}});
      held.takes.front().global_pool_bytes =
          empty.global_free - live.global_free;
    }
    const SimTime release_at = hours(rng.uniform_int(1, 10));
    if (!held.takes.empty()) profile.add_release(release_at, held);

    const Job q = fuzz_job(rng, c);
    const auto fit = profile.earliest_fit(q, policy);
    // Oracle: probe state_at at every breakpoint.
    std::optional<SimTime> expected;
    for (const SimTime t : profile.breakpoints()) {
      if (compute_take(profile.state_at(t), c, q, policy)) {
        expected = t;
        break;
      }
    }
    ASSERT_EQ(fit.has_value(), expected.has_value()) << "round " << round;
    if (fit) {
      EXPECT_EQ(fit->time, *expected) << "round " << round;
      ResourceState at = profile.state_at(fit->time);
      EXPECT_TRUE(can_apply(at, fit->plan)) << "round " << round;
    }
  }
}

TEST(ProfileFuzz, WindowFitSatisfiesWindowProperty) {
  Rng rng(808);
  const PlacementPolicy policy{NodeSelection::kFirstFit,
                               PoolRouting::kRackThenGlobal};
  for (int round = 0; round < 120; ++round) {
    const ClusterConfig c = fuzz_config(rng);
    FreeProfile profile(empty_state(c), SimTime{}, &c);
    // Random future holds, each placed with earliest_fit_window so the
    // accumulated set stays mutually consistent (as conservative does).
    for (int k = 0; k < 4; ++k) {
      const Job h = fuzz_job(rng, c);
      const SimTime len = hours(rng.uniform_int(1, 5));
      const auto hold_fit = profile.earliest_fit_window(
          h, policy, [&](const TakePlan&) { return len; });
      if (!hold_fit) continue;
      profile.add_hold(hold_fit->time, hold_fit->time + len, hold_fit->plan);
    }
    const Job q = fuzz_job(rng, c);
    const SimTime duration = hours(rng.uniform_int(1, 8));
    const auto duration_of = [&](const TakePlan&) { return duration; };
    const auto fit = profile.earliest_fit_window(q, policy, duration_of);
    if (!fit) continue;
    // the plan must be subtractable at every breakpoint in the window
    for (const SimTime t : profile.breakpoints()) {
      if (t < fit->time || t >= fit->time + duration) continue;
      EXPECT_TRUE(can_apply(profile.state_at(t), fit->plan))
          << "round " << round << " at t=" << t.seconds();
    }
  }
}

}  // namespace
}  // namespace dmsched
