// End-to-end behavioural checks: the qualitative results the paper's
// evaluation depends on must emerge from the full pipeline.
#include <gtest/gtest.h>

#include <sstream>

#include "cluster/system_config.hpp"
#include "core/sweep.hpp"
#include "testing/builders.hpp"
#include "workload/swf.hpp"

namespace dmsched {
namespace {

ExperimentConfig medium(SchedulerKind kind, ClusterConfig cluster,
                        WorkloadModel model = WorkloadModel::kCapacity) {
  ExperimentConfig c;
  c.cluster = std::move(cluster);
  c.workload_reference_mem = gib(std::int64_t{64});
  c.scheduler = kind;
  c.model = model;
  c.jobs = 400;
  c.seed = 21;
  c.target_load = 0.9;
  return c;
}

// A machine whose local memory is HALF the workload's reference size, with
// and without pools — the paper's core comparison, shrunk to test scale.
ClusterConfig shrunk_with_pool() {
  return custom_config(16, 4, gib(std::int64_t{32}), gib(std::int64_t{96}),
                       Bytes{0});
}
ClusterConfig shrunk_no_pool() {
  return custom_config(16, 4, gib(std::int64_t{32}), Bytes{0}, Bytes{0});
}
ClusterConfig full_memory() {
  return custom_config(16, 4, gib(std::int64_t{64}), Bytes{0}, Bytes{0});
}

TEST(EndToEnd, PoolsRescueJobsStrandedByShrunkLocalMemory) {
  const auto config = medium(SchedulerKind::kMemAwareEasy, shrunk_no_pool());
  const Trace trace = make_workload(config);
  const RunMetrics no_pool = run_experiment(config, trace);
  auto pool_config = medium(SchedulerKind::kMemAwareEasy, shrunk_with_pool());
  const RunMetrics with_pool = run_experiment(pool_config, trace);

  EXPECT_GT(no_pool.rejected, 0u)
      << "capacity workload must have jobs above 32 GiB/node";
  // The pool rescues most stranded jobs; a few wide, extremely memory-heavy
  // ones exceed even the pooled capacity and stay rejected.
  EXPECT_LT(with_pool.rejected * 2, no_pool.rejected);
  EXPECT_GT(with_pool.frac_jobs_far, 0.0);
}

TEST(EndToEnd, BackfillingBeatsFcfs) {
  const auto fcfs_config = medium(SchedulerKind::kFcfs, shrunk_with_pool());
  const Trace trace = make_workload(fcfs_config);
  const RunMetrics fcfs = run_experiment(fcfs_config, trace);
  const RunMetrics easy = run_experiment(
      medium(SchedulerKind::kEasy, shrunk_with_pool()), trace);
  EXPECT_LT(easy.mean_wait_hours, fcfs.mean_wait_hours);
}

TEST(EndToEnd, MemoryAwareBeatsMemoryUnawareUnderPoolPressure) {
  // Tight pools: 48 GiB per rack on a memory-heavy workload.
  const ClusterConfig tight =
      custom_config(16, 4, gib(std::int64_t{32}), gib(std::int64_t{48}),
                    Bytes{0});
  const auto easy_config = medium(SchedulerKind::kEasy, tight);
  const Trace trace = make_workload(easy_config);
  const RunMetrics easy = run_experiment(easy_config, trace);
  const RunMetrics mem = run_experiment(
      medium(SchedulerKind::kMemAwareEasy, tight), trace);
  // The paper's headline: memory-aware reservations cut slowdown when the
  // pool is the bottleneck.
  EXPECT_LT(mem.mean_bsld, easy.mean_bsld * 1.05)
      << "mem-easy must be at least comparable";
  EXPECT_LT(mem.p95_wait_hours, easy.p95_wait_hours * 1.10);
}

TEST(EndToEnd, LargerPoolsNeverIncreaseRejections) {
  std::size_t last_rejected = SIZE_MAX;
  const auto base = medium(SchedulerKind::kMemAwareEasy, shrunk_no_pool());
  const Trace trace = make_workload(base);
  for (const std::int64_t pool_gib : {0, 32, 64, 128}) {
    auto config = base;
    config.cluster =
        custom_config(16, 4, gib(std::int64_t{32}), gib(pool_gib), Bytes{0});
    const RunMetrics m = run_experiment(config, trace);
    EXPECT_LE(m.rejected, last_rejected) << "pool " << pool_gib;
    last_rejected = m.rejected;
  }
}

TEST(EndToEnd, HigherBetaMeansMoreDilation) {
  const auto base = medium(SchedulerKind::kMemAwareEasy, shrunk_with_pool());
  const Trace trace = make_workload(base);
  double last_dilation = 0.0;
  for (const double beta : {0.0, 0.3, 0.8}) {
    auto config = base;
    config.engine.slowdown.beta_rack = beta;
    config.engine.slowdown.beta_global = beta * 1.5;
    const RunMetrics m = run_experiment(config, trace);
    EXPECT_GE(m.mean_dilation, last_dilation) << "beta " << beta;
    last_dilation = m.mean_dilation;
  }
}

TEST(EndToEnd, ZeroBetaMeansFreeFarMemory) {
  auto config = medium(SchedulerKind::kMemAwareEasy, shrunk_with_pool());
  config.engine.slowdown.beta_rack = 0.0;
  config.engine.slowdown.beta_global = 0.0;
  const RunMetrics m = run_experiment(config);
  EXPECT_DOUBLE_EQ(m.mean_dilation, 1.0);
}

TEST(EndToEnd, FullMemoryBaselineHasNoFarTraffic) {
  const auto config = medium(SchedulerKind::kEasy, full_memory());
  const Trace trace = make_workload(config);
  const RunMetrics m = run_experiment(config, trace);
  EXPECT_DOUBLE_EQ(m.frac_jobs_far, 0.0);
  // Without pools, exactly the above-local-memory population is rejected —
  // the jobs whose existence motivates disaggregation.
  std::size_t above_local = 0;
  for (const Job& j : trace.jobs()) {
    if (j.mem_per_node > gib(std::int64_t{64})) ++above_local;
  }
  EXPECT_EQ(m.rejected, above_local);
  EXPECT_GT(above_local, 0u);
}

TEST(EndToEnd, CapabilityWorkloadRunsOnAllSchedulers) {
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    const RunMetrics m = run_experiment(
        medium(kind, shrunk_with_pool(), WorkloadModel::kCapability));
    EXPECT_GT(m.completed, 0u) << to_string(kind);
    EXPECT_EQ(m.completed + m.killed + m.rejected, m.jobs.size())
        << to_string(kind);
  }
}

TEST(EndToEnd, SwfRoundTripThroughFullPipeline) {
  // generate -> SWF -> parse -> simulate must equal generate -> simulate.
  // Betas are zeroed because SWF does not carry sensitivity classes, so
  // dilation would otherwise differ between the two paths.
  auto config = medium(SchedulerKind::kEasy, shrunk_with_pool());
  config.engine.slowdown.beta_rack = 0.0;
  config.engine.slowdown.beta_global = 0.0;
  const Trace original = make_workload(config);
  std::stringstream buffer;
  SwfOptions opts;
  write_swf(buffer, original, opts);
  auto parsed = read_swf(buffer, opts, "rt");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.trace.size(), original.size());
  const RunMetrics a = run_experiment(config, original);
  const RunMetrics b = run_experiment(config, parsed.trace);
  // SWF stores seconds; the generator uses microseconds. Starts may differ
  // by sub-second rounding, so compare aggregate structure.
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_NEAR(a.node_utilization, b.node_utilization, 0.02);
}

}  // namespace
}  // namespace dmsched
