// Shared test fixtures: tiny machines and hand-built jobs with readable
// construction syntax.
#pragma once

#include <vector>

#include "cluster/config.hpp"
#include "workload/job.hpp"
#include "workload/trace.hpp"

namespace dmsched::testing {

/// Fluent job builder: `job(0).nodes(4).mem_gib(64).runtime_h(2).at_h(1)`.
class JobBuilder {
 public:
  explicit JobBuilder(JobId id) { job_.id = id; }

  JobBuilder& at(SimTime t) {
    job_.submit = t;
    return *this;
  }
  JobBuilder& at_h(double h) { return at(seconds(h * 3600.0)); }
  JobBuilder& nodes(std::int32_t n) {
    job_.nodes = n;
    return *this;
  }
  JobBuilder& mem_gib(double g) {
    job_.mem_per_node = gib(g);
    return *this;
  }
  JobBuilder& runtime(SimTime t) {
    job_.runtime = t;
    if (job_.walltime < t) job_.walltime = t;
    return *this;
  }
  JobBuilder& runtime_h(double h) { return runtime(seconds(h * 3600.0)); }
  JobBuilder& walltime(SimTime t) {
    job_.walltime = t;
    return *this;
  }
  JobBuilder& walltime_h(double h) { return walltime(seconds(h * 3600.0)); }
  JobBuilder& sensitivity(MemSensitivity s) {
    job_.sensitivity = s;
    return *this;
  }
  JobBuilder& user(std::int32_t u) {
    job_.user = u;
    return *this;
  }
  JobBuilder& gpus(std::int32_t per_node) {
    job_.gpus_per_node = per_node;
    return *this;
  }
  JobBuilder& bb_gib(double g) {
    job_.bb_bytes = gib(g);
    return *this;
  }

  /// Finalize (defaults: 1 node, 1 GiB, 1 h runtime == walltime, t=0).
  [[nodiscard]] Job build() const {
    Job j = job_;
    if (j.nodes <= 0) j.nodes = 1;
    if (j.mem_per_node.is_zero()) j.mem_per_node = gib(std::int64_t{1});
    if (j.runtime <= SimTime{0}) j.runtime = hours(1);
    if (j.walltime < j.runtime) j.walltime = j.runtime;
    return j;
  }
  // NOLINTNEXTLINE(google-explicit-constructor): test sugar
  operator Job() const { return build(); }

 private:
  Job job_;
};

inline JobBuilder job(JobId id) { return JobBuilder(id); }

/// A trace from builders, already sorted/re-id'd.
inline Trace trace_of(std::vector<Job> jobs, std::string name = "test") {
  return Trace::make(std::move(jobs), std::move(name));
}

/// One-line machine builder: "N nodes, M GiB local, pool P (per rack),
/// G global". Racks of 4 nodes (the last may be partial) so placement paths
/// see multiple racks even on small machines.
inline ClusterConfig machine(std::int32_t nodes, double local_gib,
                             double rack_pool_gib = 0.0,
                             double global_pool_gib = 0.0) {
  ClusterConfig c;
  c.name = "test";
  c.total_nodes = nodes;
  c.nodes_per_rack = 4;
  c.local_mem_per_node = gib(local_gib);
  c.pool_per_rack = gib(rack_pool_gib);
  c.global_pool = gib(global_pool_gib);
  return c;
}

/// A small machine: 4 racks × 4 nodes, 64 GiB local, with optional pools.
inline ClusterConfig tiny_cluster(Bytes pool_per_rack = Bytes{0},
                                  Bytes global_pool = Bytes{0}) {
  ClusterConfig c = machine(16, 64.0);
  c.name = "tiny";
  c.pool_per_rack = pool_per_rack;
  c.global_pool = global_pool;
  return c;
}

}  // namespace dmsched::testing
