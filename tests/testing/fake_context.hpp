// A hand-driven SchedContext for scheduler unit tests: set up the machine,
// queue, and running set explicitly, call schedule(), inspect what started.
#pragma once

#include <algorithm>
#include <vector>

#include "common/assert.hpp"
#include "core/engine.hpp"
#include "sched/profile.hpp"
#include "sched/queue_policy.hpp"
#include "sched/scheduler.hpp"

namespace dmsched::testing {

class FakeContext final : public SchedContext {
 public:
  FakeContext(ClusterConfig config, std::vector<Job> jobs)
      : config_(std::move(config)),
        jobs_(std::move(jobs)),
        cluster_(config_),
        topology_(config_) {}

  // --- test setup -----------------------------------------------------------
  void set_now(SimTime t) { now_ = t; }
  void set_placement(PlacementPolicy p) { placement_ = p; }
  void set_slowdown(SlowdownModel m) { slowdown_ = m; }
  void set_queue_order(QueueOrder order) { order_ = order; }

  /// Opt in to the incremental-pass contract: expose the maintained
  /// availability timeline and the append-stable queue view, like the engine
  /// does. Tests that enable this must not hand-mutate the cluster through
  /// mutable_cluster() — the timeline only tracks admit()/finish().
  void enable_timeline() { use_timeline_ = true; }

  /// Put a job in the waiting queue.
  void enqueue(JobId id) {
    queue_.push_back(id);
    append_log_.push_back(id);
  }

  /// Start a job directly (bypassing any scheduler) so tests can set up a
  /// running set. Uses the context's placement policy.
  void force_run(JobId id) {
    const auto alloc = plan_start(cluster_, job(id), placement_);
    DMSCHED_ASSERT(alloc.has_value(), "force_run: job does not fit");
    admit(id, *alloc);
  }

  // --- observations ----------------------------------------------------------
  /// Jobs started through start_job, in start order.
  [[nodiscard]] const std::vector<JobId>& started() const { return started_; }
  [[nodiscard]] bool was_started(JobId id) const {
    return std::find(started_.begin(), started_.end(), id) != started_.end();
  }
  [[nodiscard]] Cluster& mutable_cluster() { return cluster_; }
  [[nodiscard]] const RunningJob* running_record(JobId id) const {
    for (const auto& r : running_) {
      if (r.id == id) return &r;
    }
    return nullptr;
  }

  /// Finish a running job: release resources, drop from the running set.
  void finish(JobId id) {
    cluster_.release(id);
    const auto it =
        std::find_if(running_.begin(), running_.end(),
                     [&](const RunningJob& r) { return r.id == id; });
    timeline_.on_finish(id, it->expected_end);
    running_.erase(it);
  }

  // --- SchedContext ----------------------------------------------------------
  [[nodiscard]] SimTime now() const override { return now_; }
  [[nodiscard]] const Cluster& cluster() const override { return cluster_; }
  [[nodiscard]] const Job& job(JobId id) const override {
    // FakeContext is an *eager* context: it holds the whole job vector and
    // equates JobId with position, like the engine's Trace mode (and unlike
    // its TraceSource mode, which only retains live jobs). Fail loudly if a
    // test hands us an id outside the materialized vector instead of reading
    // a stranger's memory.
    DMSCHED_ASSERT(id < jobs_.size(),
                   "FakeContext::job: id out of range — this context is "
                   "eager-only and indexes jobs by position");
    return jobs_[id];
  }
  [[nodiscard]] std::vector<JobId> queued_jobs() const override {
    std::vector<JobId> ids = queue_;
    order_queue(ids, jobs_, order_, now_);
    return ids;
  }
  [[nodiscard]] std::vector<RunningJob> running_jobs() const override {
    return running_;
  }
  [[nodiscard]] PlacementPolicy placement() const override {
    return placement_;
  }
  [[nodiscard]] const SlowdownModel& slowdown() const override {
    return slowdown_;
  }
  [[nodiscard]] const Topology& topology() const override {
    return topology_;
  }
  void start_job(JobId id, const Allocation& alloc) override {
    const auto it = std::find(queue_.begin(), queue_.end(), id);
    DMSCHED_ASSERT(it != queue_.end(), "start_job: not queued");
    queue_.erase(it);
    admit(id, alloc);
    started_.push_back(id);
  }

  [[nodiscard]] const AvailabilityTimeline* timeline() const override {
    return use_timeline_ ? &timeline_ : nullptr;
  }
  [[nodiscard]] bool queue_order_stable() const override {
    return use_timeline_ && order_ == QueueOrder::kFcfs;
  }
  [[nodiscard]] std::uint64_t queue_tail_epoch() const override {
    return append_log_.size();
  }
  [[nodiscard]] std::vector<JobId> queued_jobs_after(
      std::uint64_t epoch) const override {
    std::vector<JobId> out;
    for (std::size_t i = static_cast<std::size_t>(epoch);
         i < append_log_.size(); ++i) {
      const JobId id = append_log_[i];
      if (std::find(queue_.begin(), queue_.end(), id) != queue_.end()) {
        out.push_back(id);
      }
    }
    return out;
  }

 private:
  void admit(JobId id, const Allocation& alloc) {
    cluster_.commit(alloc);
    const Job& j = job(id);
    const double dilation = slowdown_.dilation_for(alloc, j);
    RunningJob r;
    r.id = id;
    r.expected_end = now_ + j.walltime.scaled(dilation);
    r.take = SchedulingSimulation::take_from_allocation(alloc, config_);
    running_.push_back(r);
    timeline_.on_start(id, r.expected_end, r.take);
  }

  ClusterConfig config_;
  std::vector<Job> jobs_;
  Cluster cluster_;
  Topology topology_;
  SimTime now_{};
  PlacementPolicy placement_{NodeSelection::kFirstFit,
                             PoolRouting::kRackThenGlobal};
  SlowdownModel slowdown_{};
  QueueOrder order_ = QueueOrder::kFcfs;
  AvailabilityTimeline timeline_{config_};
  bool use_timeline_ = false;
  std::vector<JobId> queue_;
  std::vector<JobId> append_log_;
  std::vector<RunningJob> running_;
  std::vector<JobId> started_;
};

/// Scoped simulated-time session around a FakeContext (à la a factory-context
/// fixture): owns the context, advances now() monotonically, and re-runs
/// Cluster::audit() after every advance *and* on teardown, so incremental
/// bookkeeping that drifts from the occupancy map fails fast. (The audit
/// checks ledger *consistency*, not emptiness — a test that must end drained
/// still asserts free_nodes_total()/pool usage explicitly, as
/// run_lifecycle_scenario does.)
///
///   SimSession s(machine(16, 64, /*rack_pool=*/32), {job(0), job(1)});
///   s->enqueue(0);
///   s.run_pass(*scheduler);
///   s.advance_h(1.0);        // audit happens here
///   s->finish(0);
///                             // ...and again when s goes out of scope
class SimSession {
 public:
  SimSession(ClusterConfig config, std::vector<Job> jobs)
      : ctx_(std::move(config), std::move(jobs)) {}

  SimSession(const SimSession&) = delete;
  SimSession& operator=(const SimSession&) = delete;

  ~SimSession() { ctx_.cluster().audit(); }

  /// Move simulated time forward by `dt` (must be non-negative) and audit.
  void advance(SimTime dt) {
    DMSCHED_ASSERT(dt >= SimTime{0}, "SimSession: time must move forward");
    ctx_.set_now(ctx_.now() + dt);
    ctx_.cluster().audit();
  }
  void advance_h(double h) { advance(seconds(h * 3600.0)); }
  void advance_s(double s) { advance(seconds(s)); }

  /// Run one scheduling pass at the current time.
  void run_pass(Scheduler& scheduler) { scheduler.schedule(ctx_); }

  [[nodiscard]] FakeContext& ctx() { return ctx_; }
  FakeContext* operator->() { return &ctx_; }

 private:
  FakeContext ctx_;
};

}  // namespace dmsched::testing
