// Shared full-lifecycle scenario for per-scheduler session tests: start two
// jobs (one overflowing into a rack pool), hold them across audited time
// advances, finish both, and verify the ledger drains to empty. One body,
// every scheduler — a policy that leaks resources fails here identically.
#pragma once

#include <gtest/gtest.h>

#include "testing/builders.hpp"
#include "testing/fake_context.hpp"

namespace dmsched::testing {

inline void run_lifecycle_scenario(Scheduler& sched) {
  // 8 nodes in 2 racks, 64 GiB local, 32 GiB pool per rack. Job 0's four
  // nodes overflow by 8 GiB each: exactly one rack pool, fully drawn.
  SimSession s(machine(8, 64.0, /*rack_pool_gib=*/32.0),
               {job(0).nodes(4).mem_gib(72).runtime_h(1),
                job(1).nodes(4).mem_gib(16).runtime_h(2)});
  s->enqueue(0);
  s->enqueue(1);
  s.run_pass(sched);
  EXPECT_TRUE(s->was_started(0));
  EXPECT_TRUE(s->was_started(1));
  EXPECT_EQ(s->cluster().free_nodes_total(), 0);
  EXPECT_FALSE(s->cluster().rack_pools_used().is_zero());
  s.advance_h(1.0);
  s->finish(0);
  s.advance_h(1.0);
  s->finish(1);
  EXPECT_EQ(s->cluster().free_nodes_total(), 8);
  EXPECT_TRUE(s->cluster().rack_pools_used().is_zero());
  // the session audits the empty cluster once more at scope exit
}

}  // namespace dmsched::testing
