// The test harness deserves tests too: SimSession's time/audit semantics and
// the one-line machine() builder are load-bearing for every scheduler test.
#include "testing/fake_context.hpp"

#include <gtest/gtest.h>

#include "core/factory.hpp"
#include "testing/builders.hpp"

namespace dmsched::testing {
namespace {

TEST(Machine, BuilderFillsEveryField) {
  const ClusterConfig c = machine(16, 64.0, 32.0, 128.0);
  EXPECT_EQ(c.total_nodes, 16);
  EXPECT_EQ(c.nodes_per_rack, 4);
  EXPECT_EQ(c.racks(), 4);
  EXPECT_EQ(c.local_mem_per_node, gib(std::int64_t{64}));
  EXPECT_EQ(c.pool_per_rack, gib(std::int64_t{32}));
  EXPECT_EQ(c.global_pool, gib(std::int64_t{128}));
}

TEST(Machine, PoolsDefaultToZero) {
  const ClusterConfig c = machine(8, 32.0);
  EXPECT_TRUE(c.pool_per_rack.is_zero());
  EXPECT_TRUE(c.global_pool.is_zero());
}

TEST(SimSession, AdvancesNowMonotonically) {
  SimSession s(machine(4, 64.0), {job(0)});
  EXPECT_EQ(s->now(), SimTime{});
  s.advance_h(1.0);
  EXPECT_EQ(s->now(), hours(1));
  s.advance_s(30.0);
  EXPECT_EQ(s->now(), hours(1) + seconds(std::int64_t{30}));
  s.advance(SimTime{0});  // zero advance is allowed (same-timestamp passes)
  EXPECT_EQ(s->now(), hours(1) + seconds(std::int64_t{30}));
}

TEST(SimSession, DrivesASchedulerThroughAFullJobLifecycle) {
  SimSession s(machine(4, 64.0),
               {job(0).nodes(2).mem_gib(32).runtime_h(1),
                job(1).nodes(2).mem_gib(32).runtime_h(2)});
  const auto sched = make_scheduler(SchedulerKind::kEasy);

  s->enqueue(0);
  s->enqueue(1);
  s.run_pass(*sched);
  EXPECT_TRUE(s->was_started(0));
  EXPECT_TRUE(s->was_started(1));

  s.advance_h(1.0);  // audits with both jobs holding resources
  s->finish(0);
  s.advance_h(1.0);
  s->finish(1);
  // teardown audits the now-empty cluster
}

TEST(FakeContext, JobLookupOutsideTheEagerVectorDiesLoudly) {
  // FakeContext equates JobId with position in its materialized vector (the
  // engine's eager mode). An id from outside that vector — e.g. one minted
  // by a streaming run — must fail the eager-only assert, not read garbage.
  FakeContext ctx(machine(4, 64.0), {job(0), job(1)});
  EXPECT_DEATH((void)ctx.job(2), "eager-only");
}

TEST(SimSession, AuditsPooledAllocationsOnAdvance) {
  // A job larger than local memory draws from the rack pool; the advance()
  // audit validates the pooled bookkeeping while the job runs.
  SimSession s(machine(4, 64.0, /*rack_pool_gib=*/64.0),
               {job(0).nodes(1).mem_gib(96).runtime_h(1)});
  s->force_run(0);
  const RunningJob* r = s->running_record(0);
  ASSERT_NE(r, nullptr);
  s.advance_h(0.5);
  s->finish(0);
}

}  // namespace
}  // namespace dmsched::testing
