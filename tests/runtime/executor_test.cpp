// The persistent work-stealing executor: everything run_sweep's correctness
// rests on. Exception propagation (deterministic, first-by-index), nested
// and recursive submission, reuse across hundreds of sequential loops,
// oversubscription beyond the pool's worker count, and caller participation
// when every pool worker is busy.
#include "runtime/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runtime/parallel_for.hpp"

namespace dmsched {
namespace {

unsigned hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

TEST(Executor, StartsRequestedWorkerCount) {
  Executor two(ExecutorOptions{2});
  EXPECT_EQ(two.worker_count(), 2u);
  Executor defaulted;
  EXPECT_EQ(defaulted.worker_count(), hardware_threads());
}

TEST(Executor, GlobalIsAProcessWideSingleton) {
  Executor& a = Executor::global();
  Executor& b = Executor::global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.worker_count(), 1u);
}

TEST(Executor, WorkerStatsAccountForSubmittedTasks) {
  Executor executor(ExecutorOptions{3});
  ASSERT_EQ(executor.worker_stats().size(), 3u);

  constexpr std::uint64_t kTasks = 200;
  std::atomic<std::uint64_t> ran{0};
  TaskGroup group(executor);
  for (std::uint64_t i = 0; i < kTasks; ++i) {
    group.run([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  group.wait();
  ASSERT_EQ(ran.load(), kTasks);

  // Every task ran either on a pool worker (counted in its stats) or inline
  // by the blocked waiter; together the telemetry must account for all of
  // them. ">=" because the executor's counters are cumulative and other
  // tests in this process may share nothing here — the pool is private.
  const std::vector<ExecutorWorkerStats> stats = executor.worker_stats();
  ASSERT_EQ(stats.size(), 3u);
  std::uint64_t pool_runs = 0;
  std::uint64_t steals = 0;
  for (const ExecutorWorkerStats& w : stats) {
    pool_runs += w.tasks_run;
    steals += w.tasks_stolen;
  }
  EXPECT_EQ(pool_runs + executor.inline_runs(), kTasks);
  // Steals are a subset of pool runs (a stolen task is still run).
  EXPECT_LE(steals, pool_runs);
}

TEST(Executor, WorkerStatsAreMonotone) {
  Executor executor(ExecutorOptions{2});
  auto total_runs = [&executor] {
    std::uint64_t sum = executor.inline_runs();
    for (const ExecutorWorkerStats& w : executor.worker_stats())
      sum += w.tasks_run;
    return sum;
  };
  std::uint64_t previous = total_runs();
  for (int batch = 0; batch < 4; ++batch) {
    TaskGroup group(executor);
    for (int i = 0; i < 25; ++i) group.run([] {});
    group.wait();
    const std::uint64_t now = total_runs();
    EXPECT_GE(now, previous + 25) << "batch " << batch;
    previous = now;
  }
}

TEST(TaskGroupTest, RunsEverySubmittedTask) {
  Executor executor(ExecutorOptions{4});
  std::atomic<int> sum{0};
  TaskGroup group(executor);
  for (int i = 1; i <= 100; ++i) {
    group.run([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
  }
  group.wait();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(TaskGroupTest, IsReusableAfterWait) {
  Executor executor(ExecutorOptions{2});
  TaskGroup group(executor);
  std::atomic<int> runs{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 10; ++i) group.run([&runs] { ++runs; });
    group.wait();
    EXPECT_EQ(runs.load(), (batch + 1) * 10);
  }
}

TEST(TaskGroupTest, DestructorWaitsWithoutRethrowing) {
  Executor executor(ExecutorOptions{2});
  std::atomic<bool> ran{false};
  {
    TaskGroup group(executor);
    group.run([&ran] {
      ran = true;
      throw std::runtime_error("swallowed by the destructor");
    });
    // No wait(): the destructor must still join the task and absorb the
    // exception instead of terminating.
  }
  EXPECT_TRUE(ran.load());
}

TEST(TaskGroupTest, WaitRethrowsTheLowestSubmissionIndex) {
  // Every task runs (nothing is cancelled), so the winner is the lowest
  // submission index that threw — deterministic, not first-in-time. Repeat
  // to give races a chance to surface.
  Executor executor(ExecutorOptions{4});
  for (int repeat = 0; repeat < 25; ++repeat) {
    TaskGroup group(executor);
    std::atomic<int> ran{0};
    for (int i = 0; i < 16; ++i) {
      group.run([&ran, i] {
        ++ran;
        if (i % 2 == 1) {  // 1 is the lowest thrower
          throw std::runtime_error("task " + std::to_string(i));
        }
      });
    }
    try {
      group.wait();
      FAIL() << "wait() must rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 1");
    }
    EXPECT_EQ(ran.load(), 16) << "a task was cancelled";
  }
}

TEST(TaskGroupTest, NestedGroupsOnTheSamePoolDoNotDeadlock) {
  // Each outer task runs an inner group on the same executor and waits on
  // it from inside a worker. With only 2 workers this deadlocks unless
  // blocked waiters execute queued tasks inline.
  Executor executor(ExecutorOptions{2});
  std::atomic<int> inner_runs{0};
  TaskGroup outer(executor);
  for (int i = 0; i < 8; ++i) {
    outer.run([&executor, &inner_runs] {
      TaskGroup inner(executor);
      for (int j = 0; j < 8; ++j) {
        inner.run([&inner_runs] { ++inner_runs; });
      }
      inner.wait();
    });
  }
  outer.wait();
  EXPECT_EQ(inner_runs.load(), 64);
}

TEST(ParallelForRuntime, RecursiveParallelForCompletes) {
  // parallel_for inside parallel_for inside parallel_for, all on one small
  // pool: caller participation has to carry the nesting.
  Executor executor(ExecutorOptions{2});
  ParallelForOptions options;
  options.parallelism = 4;
  options.executor = &executor;
  std::atomic<int> leaf{0};
  parallel_for(4, options, [&](std::size_t) {
    parallel_for(4, options, [&](std::size_t) {
      parallel_for(4, options,
                   [&](std::size_t) { leaf.fetch_add(1); });
    });
  });
  EXPECT_EQ(leaf.load(), 64);
}

TEST(ParallelForRuntime, ReuseAcrossHundredsOfSequentialLoops) {
  // The whole point of the persistent pool: back-to-back small loops reuse
  // the same workers. 150 sequential "sweeps" over the shared global pool
  // must each produce exact results.
  for (int sweep = 0; sweep < 150; ++sweep) {
    constexpr std::size_t kCount = 64;
    std::vector<std::size_t> out(kCount, SIZE_MAX);
    parallel_for(kCount, ParallelForOptions{},
                 [&](std::size_t i) { out[i] = i * i; });
    for (std::size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(out[i], i * i) << "sweep " << sweep << " slot " << i;
    }
  }
}

TEST(ParallelForRuntime, OversubscriptionBeyondPoolWorkersIsHarmless) {
  // parallelism far above the executor's worker count: surplus drain tasks
  // queue, run late, and find the chunk counter exhausted.
  Executor executor(ExecutorOptions{2});
  ParallelForOptions options;
  options.parallelism = 64;
  options.chunk = 1;
  options.executor = &executor;
  constexpr std::size_t kCount = 257;
  std::vector<std::atomic<int>> visits(kCount);
  parallel_for(kCount, options,
               [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForRuntime, CallerMakesProgressWhileAllWorkersAreBusy) {
  // Block the pool's only worker; a parallel_for issued meanwhile must
  // still complete, because the calling thread is itself a drain lane.
  Executor executor(ExecutorOptions{1});
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  TaskGroup blocker(executor);
  blocker.run([&] {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return release; });
  });

  ParallelForOptions options;
  options.parallelism = 4;
  options.executor = &executor;
  std::atomic<int> visited{0};
  parallel_for(100, options, [&](std::size_t) { visited.fetch_add(1); });
  EXPECT_EQ(visited.load(), 100);

  {
    const std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  blocker.wait();
}

TEST(ParallelForRuntime, LowestIndexExceptionWinsDeterministically) {
  // All indices throw: chunk 0 is always claimed before any wind-down, so
  // index 0's exception must win on every repeat, on any thread timing.
  Executor executor(ExecutorOptions{4});
  ParallelForOptions options;
  options.parallelism = 4;
  options.chunk = 4;
  options.executor = &executor;
  for (int repeat = 0; repeat < 50; ++repeat) {
    try {
      parallel_for(64, options, [](std::size_t i) {
        throw std::runtime_error("index " + std::to_string(i));
      });
      FAIL() << "parallel_for must rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "index 0") << "repeat " << repeat;
    }
  }
}

TEST(ParallelForRuntime, LowerIndexWinsWithinOneChunk) {
  // Two throwers in the same chunk: the worker scans the chunk in index
  // order and abandons it at the first throw, so the lower index always
  // surfaces even though both are "first" in their own right.
  Executor executor(ExecutorOptions{4});
  ParallelForOptions options;
  options.parallelism = 4;
  options.chunk = 50;  // indices 10 and 30 share chunk 0
  options.executor = &executor;
  for (int repeat = 0; repeat < 25; ++repeat) {
    try {
      parallel_for(100, options, [](std::size_t i) {
        if (i == 10 || i == 30) {
          throw std::runtime_error("index " + std::to_string(i));
        }
      });
      FAIL() << "parallel_for must rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "index 10") << "repeat " << repeat;
    }
  }
}

TEST(ParallelForRuntime, SerialPathMatchesSerialSemantics) {
  // parallelism 1 never touches the pool and stops at the first throwing
  // index, exactly like a plain for loop.
  std::vector<std::size_t> visited;
  try {
    parallel_for(10, ParallelForOptions{.parallelism = 1},
                 [&](std::size_t i) {
                   visited.push_back(i);
                   if (i == 3) throw std::runtime_error("stop");
                 });
    FAIL() << "must rethrow";
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(visited, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(ParallelForRuntime, ManySmallLoopsFromConcurrentThreads) {
  // Several client threads each issue loops against the shared global pool
  // at once — the cross-session shape benches create. Results must stay
  // exact per client.
  constexpr int kClients = 4;
  std::vector<std::jthread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&failures] {
      for (int sweep = 0; sweep < 25; ++sweep) {
        constexpr std::size_t kCount = 97;
        std::vector<std::size_t> out(kCount, 0);
        parallel_for(kCount, ParallelForOptions{},
                     [&](std::size_t i) { out[i] = i + 1; });
        for (std::size_t i = 0; i < kCount; ++i) {
          if (out[i] != i + 1) failures.fetch_add(1);
        }
      }
    });
  }
  clients.clear();  // join
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace dmsched
