#include "workload/characterize.hpp"

#include <gtest/gtest.h>

#include "testing/builders.hpp"

namespace dmsched {
namespace {

using testing::job;
using testing::trace_of;

const Bytes kRef = gib(std::int64_t{100});

TEST(Characterize, EmptyTrace) {
  const TraceStats s = characterize(Trace{}, kRef, 64);
  EXPECT_EQ(s.job_count, 0u);
  EXPECT_DOUBLE_EQ(s.offered_load, 0.0);
}

TEST(Characterize, BasicCounts) {
  const Trace t = trace_of({job(0).at_h(0.0).nodes(2).mem_gib(10).user(1),
                            job(1).at_h(4.0).nodes(6).mem_gib(60).user(2),
                            job(2).at_h(8.0).nodes(4).mem_gib(120).user(1)});
  const TraceStats s = characterize(t, kRef, 64);
  EXPECT_EQ(s.job_count, 3u);
  EXPECT_DOUBLE_EQ(s.span_hours, 8.0);
  EXPECT_DOUBLE_EQ(s.nodes_mean, 4.0);
  EXPECT_DOUBLE_EQ(s.nodes_max, 6.0);
  EXPECT_EQ(s.distinct_users, 2);
}

TEST(Characterize, MemoryThresholdFractions) {
  const Trace t = trace_of({job(0).mem_gib(10), job(1).at_h(0.5).mem_gib(60),
                            job(2).at_h(1.0).mem_gib(120),
                            job(3).at_h(2.0).mem_gib(40)});
  const TraceStats s = characterize(t, kRef, 64);
  // above half (50 GiB): 60 and 120 -> 2/4
  EXPECT_DOUBLE_EQ(s.frac_mem_above_half, 0.5);
  // above full (100 GiB): 120 -> 1/4
  EXPECT_DOUBLE_EQ(s.frac_mem_above_full, 0.25);
}

TEST(Characterize, ExactlyHalfIsNotAboveHalf) {
  const Trace t = trace_of({job(0).mem_gib(50), job(1).at_h(1.0).mem_gib(51)});
  const TraceStats s = characterize(t, kRef, 64);
  EXPECT_DOUBLE_EQ(s.frac_mem_above_half, 0.5);  // only the 51 GiB job
}

TEST(Characterize, EstimateAccuracy) {
  const Trace t = trace_of({job(0).runtime_h(1.0).walltime_h(2.0),
                            job(1).at_h(1.0).runtime_h(1.0).walltime_h(1.0)});
  const TraceStats s = characterize(t, kRef, 64);
  EXPECT_DOUBLE_EQ(s.estimate_accuracy_mean, 0.75);  // (0.5 + 1.0)/2
}

TEST(Characterize, MemoryFootprintsExtraction) {
  const Trace t = trace_of({job(0).mem_gib(10), job(1).at_h(1.0).mem_gib(20)});
  const auto v = memory_footprints_gib(t);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0], 10.0);
  EXPECT_DOUBLE_EQ(v[1], 20.0);
}

TEST(Characterize, OfferedLoadMatchesTraceMethod) {
  const Trace t = trace_of({job(0).nodes(8).runtime_h(2.0),
                            job(1).at_h(4.0).nodes(8).runtime_h(2.0)});
  const TraceStats s = characterize(t, kRef, 16);
  EXPECT_DOUBLE_EQ(s.offered_load, t.offered_load(16));
}

}  // namespace
}  // namespace dmsched
