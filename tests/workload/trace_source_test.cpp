// Differential harness for streaming trace ingestion: the same workload
// driven through the eager Trace path and the pull-based TraceSource path
// must produce byte-identical RunMetrics — at every look-ahead window size,
// under every scheduler — plus identical semantic event digests. This is
// the proof obligation behind EngineOptions::submit_lookahead (see
// src/README.md for the event-order argument the tests pin down).
#include "workload/trace_source.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/factory.hpp"
#include "testing/builders.hpp"
#include "workload/scenarios.hpp"
#include "workload/swf.hpp"

namespace dmsched {
namespace {

// --- byte-identical comparison ---------------------------------------------

// EXPECT_EQ on doubles is deliberate: the contract is bit-reproducibility,
// not tolerance.
void expect_outcomes_equal(const std::vector<JobOutcome>& a,
                           const std::vector<JobOutcome>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(i));
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].fate, b[i].fate);
    EXPECT_EQ(a[i].submit.usec(), b[i].submit.usec());
    EXPECT_EQ(a[i].start.usec(), b[i].start.usec());
    EXPECT_EQ(a[i].end.usec(), b[i].end.usec());
    EXPECT_EQ(a[i].dilation, b[i].dilation);
    EXPECT_EQ(a[i].far_rack.count(), b[i].far_rack.count());
    EXPECT_EQ(a[i].far_global.count(), b[i].far_global.count());
    EXPECT_EQ(a[i].nodes, b[i].nodes);
    EXPECT_EQ(a[i].mem_per_node.count(), b[i].mem_per_node.count());
    EXPECT_EQ(a[i].runtime.usec(), b[i].runtime.usec());
    EXPECT_EQ(a[i].sensitivity, b[i].sensitivity);
    EXPECT_EQ(a[i].user, b[i].user);
  }
}

void expect_windows_equal(const std::vector<MetricsWindow>& a,
                          const std::vector<MetricsWindow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("window " + std::to_string(i));
    EXPECT_EQ(a[i].start.usec(), b[i].start.usec());
    EXPECT_EQ(a[i].end.usec(), b[i].end.usec());
    EXPECT_EQ(a[i].busy_node_seconds, b[i].busy_node_seconds);
    EXPECT_EQ(a[i].queued_job_seconds, b[i].queued_job_seconds);
    EXPECT_EQ(a[i].running_job_seconds, b[i].running_job_seconds);
    EXPECT_EQ(a[i].rack_pool_gib_seconds, b[i].rack_pool_gib_seconds);
    EXPECT_EQ(a[i].global_pool_gib_seconds, b[i].global_pool_gib_seconds);
    EXPECT_EQ(a[i].jobs_submitted, b[i].jobs_submitted);
    EXPECT_EQ(a[i].jobs_started, b[i].jobs_started);
    EXPECT_EQ(a[i].jobs_finished, b[i].jobs_finished);
    EXPECT_EQ(a[i].jobs_rejected, b[i].jobs_rejected);
  }
}

void expect_metrics_equal(const RunMetrics& a, const RunMetrics& b) {
  expect_outcomes_equal(a.jobs, b.jobs);
  expect_windows_equal(a.windows, b.windows);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    SCOPED_TRACE("sample " + std::to_string(i));
    EXPECT_EQ(a.series[i].time.usec(), b.series[i].time.usec());
    EXPECT_EQ(a.series[i].busy_nodes, b.series[i].busy_nodes);
    EXPECT_EQ(a.series[i].queued_jobs, b.series[i].queued_jobs);
    EXPECT_EQ(a.series[i].running_jobs, b.series[i].running_jobs);
    EXPECT_EQ(a.series[i].rack_pool_used.count(),
              b.series[i].rack_pool_used.count());
    EXPECT_EQ(a.series[i].global_pool_used.count(),
              b.series[i].global_pool_used.count());
  }
  EXPECT_EQ(a.makespan.usec(), b.makespan.usec());
  EXPECT_EQ(a.node_utilization, b.node_utilization);
  EXPECT_EQ(a.rack_pool_utilization, b.rack_pool_utilization);
  EXPECT_EQ(a.rack_pool_peak, b.rack_pool_peak);
  EXPECT_EQ(a.global_pool_utilization, b.global_pool_utilization);
  EXPECT_EQ(a.global_pool_peak, b.global_pool_peak);
  EXPECT_EQ(a.rack_pool_busiest_peak, b.rack_pool_busiest_peak);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.killed, b.killed);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.mean_wait_hours, b.mean_wait_hours);
  EXPECT_EQ(a.p95_wait_hours, b.p95_wait_hours);
  EXPECT_EQ(a.max_wait_hours, b.max_wait_hours);
  EXPECT_EQ(a.mean_bsld, b.mean_bsld);
  EXPECT_EQ(a.p95_bsld, b.p95_bsld);
  EXPECT_EQ(a.mean_dilation, b.mean_dilation);
  EXPECT_EQ(a.frac_jobs_far, b.frac_jobs_far);
  EXPECT_EQ(a.frac_jobs_global, b.frac_jobs_global);
  EXPECT_EQ(a.remote_access_fraction, b.remote_access_fraction);
  EXPECT_EQ(a.global_access_fraction, b.global_access_fraction);
  EXPECT_EQ(a.far_gib_hours, b.far_gib_hours);
  EXPECT_EQ(a.jobs_per_hour, b.jobs_per_hour);
}

void expect_jobs_field_equal(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.size(), b.size());
  for (JobId i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(i));
    const Job& x = a.job(i);
    const Job& y = b.job(i);
    EXPECT_EQ(x.id, y.id);
    EXPECT_EQ(x.submit.usec(), y.submit.usec());
    EXPECT_EQ(x.nodes, y.nodes);
    EXPECT_EQ(x.mem_per_node.count(), y.mem_per_node.count());
    EXPECT_EQ(x.runtime.usec(), y.runtime.usec());
    EXPECT_EQ(x.walltime.usec(), y.walltime.usec());
    EXPECT_EQ(x.sensitivity, y.sensitivity);
    EXPECT_EQ(x.user, y.user);
    EXPECT_EQ(x.gpus_per_node, y.gpus_per_node);
    EXPECT_EQ(x.bb_bytes.count(), y.bb_bytes.count());
  }
}

// --- run drivers ------------------------------------------------------------

struct RunResult {
  RunMetrics metrics;
  std::uint64_t digest = 0;
  std::size_t peak_id_window = 0;
};

EngineOptions harness_options(std::size_t lookahead) {
  EngineOptions opts;
  opts.submit_lookahead = lookahead;
  // Exercise the passive observers too: the differential claim covers the
  // time series and the checkpointed windows, not just per-job outcomes.
  opts.sample_interval = minutes(30);
  opts.checkpoint_interval = hours(2);
  return opts;
}

RunResult run_eager(const Scenario& s, SchedulerKind kind,
                    std::size_t lookahead) {
  SchedulingSimulation sim(s.cluster, s.trace, make_scheduler(kind, {}),
                           harness_options(lookahead));
  RunResult r;
  r.metrics = sim.run();
  r.digest = sim.event_digest();
  r.peak_id_window = sim.peak_event_id_window();
  return r;
}

RunResult run_streamed(const Scenario& s, SchedulerKind kind,
                       std::size_t lookahead) {
  EagerTraceSource source(s.trace);  // sources are single-use: fresh per run
  SchedulingSimulation sim(s.cluster, source, make_scheduler(kind, {}),
                           harness_options(lookahead));
  RunResult r;
  r.metrics = sim.run();
  r.digest = sim.event_digest();
  r.peak_id_window = sim.peak_event_id_window();
  return r;
}

/// Look-ahead windows to drive each differential pair through: the
/// degenerate window (1), small primes, and a window larger than the whole
/// trace (≡ unbounded), plus deterministic "random" windows.
std::vector<std::size_t> lookahead_windows(std::size_t trace_size,
                                           std::uint64_t seed) {
  std::vector<std::size_t> windows = {1, 2, 7, trace_size + 10};
  std::minstd_rand rng(static_cast<std::minstd_rand::result_type>(seed));
  for (int i = 0; i < 2; ++i) {
    windows.push_back(1 + rng() % (trace_size > 1 ? trace_size : 1));
  }
  return windows;
}

ScenarioParams small_params(const std::string& name) {
  ScenarioParams p;
  p.jobs = scenario_info(name).infrastructure ? 1500 : 250;
  return p;
}

// --- the differential harness ----------------------------------------------

TEST(TraceSourceDifferential, StreamMatchesEagerForEveryScheduler) {
  const Scenario s = make_scenario("golden-baseline", small_params("golden-baseline"));
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    SCOPED_TRACE(to_string(kind));
    const RunResult eager = run_eager(s, kind, /*lookahead=*/0);
    for (const std::size_t w : lookahead_windows(s.trace.size(), 17)) {
      SCOPED_TRACE("lookahead " + std::to_string(w));
      const RunResult streamed = run_streamed(s, kind, w);
      expect_metrics_equal(eager.metrics, streamed.metrics);
      EXPECT_EQ(eager.digest, streamed.digest);
    }
  }
}

TEST(TraceSourceDifferential, StreamMatchesEagerOnTheSwfReplay) {
  const Scenario s = make_scenario("mixed-swf", small_params("mixed-swf"));
  for (const SchedulerKind kind :
       {SchedulerKind::kEasy, SchedulerKind::kMemAwareEasy}) {
    SCOPED_TRACE(to_string(kind));
    const RunResult eager = run_eager(s, kind, /*lookahead=*/0);
    for (const std::size_t w : lookahead_windows(s.trace.size(), 23)) {
      SCOPED_TRACE("lookahead " + std::to_string(w));
      const RunResult streamed = run_streamed(s, kind, w);
      expect_metrics_equal(eager.metrics, streamed.metrics);
      EXPECT_EQ(eager.digest, streamed.digest);
    }
  }
}

TEST(TraceSourceDifferential, TraceModeLookaheadIsAlsoByteIdentical) {
  // The lazy pull applies to the eager Trace ctor too (trace mode just
  // pulls by index): a bounded window must not perturb it either.
  const Scenario s = make_scenario("memory-stressed", small_params("memory-stressed"));
  const RunResult unbounded = run_eager(s, SchedulerKind::kMemAwareEasy, 0);
  for (const std::size_t w : {std::size_t{1}, std::size_t{5}}) {
    SCOPED_TRACE("lookahead " + std::to_string(w));
    const RunResult bounded = run_eager(s, SchedulerKind::kMemAwareEasy, w);
    expect_metrics_equal(unbounded.metrics, bounded.metrics);
    EXPECT_EQ(unbounded.digest, bounded.digest);
  }
}

TEST(TraceSourceDifferential, RejectionsAgreeAcrossModes) {
  using testing::job;
  // One job that can never fit (17 nodes on a 16-node machine) among
  // runnable ones: the rejection path erases live records in source mode.
  const Trace t = testing::trace_of(
      {job(0).at_h(0.0).nodes(4).mem_gib(8).runtime_h(1.0),
       job(1).at_h(0.5).nodes(17).mem_gib(8).runtime_h(1.0),
       job(2).at_h(1.0).nodes(2).mem_gib(8).runtime_h(0.5)});
  const ClusterConfig cluster = testing::machine(16, 64.0);
  EngineOptions opts = harness_options(1);
  SchedulingSimulation eager(cluster, t, make_scheduler(SchedulerKind::kEasy, {}),
                             opts);
  const RunMetrics em = eager.run();
  EagerTraceSource src(t);
  SchedulingSimulation streamed(cluster, src,
                                make_scheduler(SchedulerKind::kEasy, {}), opts);
  const RunMetrics sm = streamed.run();
  EXPECT_EQ(em.rejected, 1u);
  expect_metrics_equal(em, sm);
  EXPECT_EQ(eager.event_digest(), streamed.event_digest());
}

TEST(TraceSourceDifferential, BoundedLookaheadShrinksThePeakIdWindow) {
  // The memory claim the bench demonstrates at a million jobs, pinned here
  // at test scale: a bounded window keeps the event queue's live id span
  // at O(lookahead + running) instead of O(trace).
  const Scenario s = make_scenario("million-replay", small_params("million-replay"));
  const RunResult eager = run_eager(s, SchedulerKind::kEasy, 0);
  const RunResult streamed = run_streamed(s, SchedulerKind::kEasy, 32);
  expect_metrics_equal(eager.metrics, streamed.metrics);
  EXPECT_EQ(eager.digest, streamed.digest);
  EXPECT_GE(eager.peak_id_window, s.trace.size());
  ASSERT_GT(streamed.peak_id_window, 0u);
  EXPECT_GE(eager.peak_id_window / streamed.peak_id_window, 10u)
      << "eager peak " << eager.peak_id_window << " vs streamed peak "
      << streamed.peak_id_window;
}

// --- scenario streams == scenario traces ------------------------------------

TEST(ScenarioStreams, EveryRegisteredStreamDrainsToTheEagerTrace) {
  for (const std::string& name : scenario_names()) {
    SCOPED_TRACE(name);
    const ScenarioParams p = small_params(name);
    const Scenario eager = make_scenario(name, p);
    ScenarioStream stream = make_scenario_stream(name, p);
    ASSERT_NE(stream.source, nullptr);
    EXPECT_EQ(stream.info.name, eager.info.name);
    EXPECT_EQ(stream.cluster.total_nodes, eager.cluster.total_nodes);
    EXPECT_EQ(stream.workload_reference_mem.count(),
              eager.workload_reference_mem.count());
    EXPECT_EQ(stream.remote_penalty, eager.remote_penalty);
    const Trace drained = drain_to_trace(*stream.source, eager.trace.name());
    expect_jobs_field_equal(eager.trace, drained);
  }
}

TEST(ScenarioStreams, SizeHintsMatchTheEagerJobCount) {
  for (const std::string& name : scenario_names()) {
    SCOPED_TRACE(name);
    const ScenarioParams p = small_params(name);
    const Scenario eager = make_scenario(name, p);
    const ScenarioStream stream = make_scenario_stream(name, p);
    const auto hint = stream.source->size_hint();
    if (hint.has_value()) {
      EXPECT_EQ(*hint, eager.trace.size());
    }
  }
}

// --- streaming SWF reader ----------------------------------------------------

TEST(StreamingSwf, MatchesEagerReaderOnTheBundledSample) {
  const std::string path = std::string(DMSCHED_TEST_DATA_DIR) + "/sample.swf";
  SwfOptions opts;
  opts.procs_per_node = 4;
  const SwfResult eager = read_swf_file(path, opts);
  ASSERT_TRUE(eager.ok()) << eager.error;
  auto source = open_swf_source(path, opts);
  const Trace drained = drain_to_trace(*source, eager.trace.name());
  ASSERT_TRUE(source->ok()) << source->error();
  expect_jobs_field_equal(eager.trace, drained);
  EXPECT_EQ(source->lines_total(), eager.lines_total);
  EXPECT_EQ(source->jobs_accepted(), eager.jobs_accepted);
  EXPECT_EQ(source->jobs_skipped(), eager.jobs_skipped);
  EXPECT_EQ(source->lines_malformed(), eager.lines_malformed);
}

TEST(StreamingSwf, MissingFileThrows) {
  EXPECT_THROW(open_swf_source("/no/such/file.swf", SwfOptions{}),
               std::runtime_error);
}

TEST(StreamingSwf, OutOfOrderArchiveThrows) {
  auto in = std::make_unique<std::istringstream>(
      "1 100 -1 100 4 -1 -1 4 200 -1 1 1 1 1 1 -1 -1 -1\n"
      "2 50 -1 100 4 -1 -1 4 200 -1 1 1 1 1 1 -1 -1 -1\n");
  StreamingSwfSource source(std::move(in), SwfOptions{}, "t");
  EXPECT_TRUE(source.next().has_value());
  EXPECT_THROW(source.next(), std::runtime_error);
}

// --- source adapters ---------------------------------------------------------

TEST(GeneratorSource, YieldsUntilTheCallbackRunsDry) {
  std::size_t i = 0;
  GeneratorTraceSource source(
      "gen",
      [&]() -> std::optional<Job> {
        if (i >= 3) return std::nullopt;
        Job j;
        j.id = 0;  // advisory: drain re-ids
        j.submit = seconds(static_cast<std::int64_t>(100 * i));
        j.nodes = 1;
        j.mem_per_node = gib(std::int64_t{1});
        j.runtime = j.walltime = seconds(std::int64_t{60});
        ++i;
        return j;
      },
      3);
  ASSERT_EQ(source.size_hint(), std::optional<std::size_t>{3});
  const Trace t = drain_to_trace(source, "gen");
  ASSERT_EQ(t.size(), 3u);
  for (JobId id = 0; id < t.size(); ++id) {
    EXPECT_EQ(t.job(id).id, id);  // sequential ids in pull order
    EXPECT_EQ(t.job(id).submit.usec(),
              seconds(static_cast<std::int64_t>(100 * id)).usec());
  }
  EXPECT_FALSE(source.next().has_value());  // exhausted stays exhausted
}

TEST(GeneratorSource, DecreasingSubmitIsALogicError) {
  std::size_t i = 0;
  GeneratorTraceSource source("bad", [&]() -> std::optional<Job> {
    Job j;
    j.submit = seconds(std::int64_t{i == 0 ? 100 : 50});
    j.nodes = 1;
    j.mem_per_node = gib(std::int64_t{1});
    j.runtime = j.walltime = seconds(std::int64_t{60});
    ++i;
    return j;
  });
  EXPECT_TRUE(source.next().has_value());
  EXPECT_THROW(source.next(), std::logic_error);
}

TEST(MappedSource, AppliesTheRewriteInStreamOrder) {
  using testing::job;
  const Trace t = testing::trace_of(
      {job(0).at_h(0.0).nodes(2).runtime_h(1.0),
       job(1).at_h(1.0).nodes(4).runtime_h(1.0)});
  MappedTraceSource mapped(std::make_unique<EagerTraceSource>(t), [](Job j) {
    j.nodes += 1;
    return j;
  });
  const Trace out = drain_to_trace(mapped, "mapped");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.job(0).nodes, 3);
  EXPECT_EQ(out.job(1).nodes, 5);
}

TEST(MappedSource, ReorderingRewriteThrows) {
  using testing::job;
  const Trace t = testing::trace_of(
      {job(0).at_h(0.0).runtime_h(1.0), job(1).at_h(2.0).runtime_h(1.0)});
  MappedTraceSource mapped(std::make_unique<EagerTraceSource>(t), [](Job j) {
    // Non-monotone: pushes the first job after the second.
    if (j.submit == SimTime{}) j.submit = hours(5);
    return j;
  });
  EXPECT_TRUE(mapped.next().has_value());
  EXPECT_THROW(mapped.next(), std::logic_error);
}

TEST(OwningSource, ServesItsTraceOnce) {
  using testing::job;
  OwningTraceSource source(testing::trace_of(
      {job(0).at_h(0.0).runtime_h(1.0), job(1).at_h(1.0).runtime_h(1.0)},
      "owned"));
  EXPECT_EQ(source.name(), "owned");
  EXPECT_EQ(source.size_hint(), std::optional<std::size_t>{2});
  EXPECT_TRUE(source.next().has_value());
  EXPECT_TRUE(source.next().has_value());
  EXPECT_FALSE(source.next().has_value());
}

}  // namespace
}  // namespace dmsched
