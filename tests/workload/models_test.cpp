#include "workload/models.hpp"

#include <gtest/gtest.h>

#include "workload/characterize.hpp"

namespace dmsched {
namespace {

constexpr std::int32_t kNodes = 1024;
const Bytes kRef = gib(std::int64_t{256});

TEST(Models, NamesRoundTrip) {
  for (const WorkloadModel m : all_workload_models()) {
    EXPECT_EQ(workload_model_from_string(to_string(m)), m);
  }
}

TEST(Models, UnknownNameAborts) {
  EXPECT_DEATH((void)workload_model_from_string("nope"), "unknown");
}

TEST(Models, AllModelsGenerate) {
  for (const WorkloadModel m : all_workload_models()) {
    const Trace t = make_model_trace(m, 500, 1, kNodes, kRef, 0.8);
    EXPECT_EQ(t.size(), 500u) << to_string(m);
    EXPECT_NEAR(t.offered_load(kNodes), 0.8, 0.05) << to_string(m);
  }
}

TEST(Models, CapacityIsMemoryHeavierThanCapability) {
  const Trace cap = make_model_trace(WorkloadModel::kCapability, 2000, 5,
                                     kNodes, kRef, 0.8);
  const Trace dat = make_model_trace(WorkloadModel::kCapacity, 2000, 5,
                                     kNodes, kRef, 0.8);
  const TraceStats s_cap = characterize(cap, kRef, kNodes);
  const TraceStats s_dat = characterize(dat, kRef, kNodes);
  EXPECT_GT(s_dat.frac_mem_above_half, s_cap.frac_mem_above_half);
  EXPECT_GT(s_dat.frac_mem_above_full, s_cap.frac_mem_above_full);
}

TEST(Models, CapabilityJobsAreWider) {
  const Trace cap = make_model_trace(WorkloadModel::kCapability, 2000, 6,
                                     kNodes, kRef, 0.8);
  const Trace dat = make_model_trace(WorkloadModel::kCapacity, 2000, 6,
                                     kNodes, kRef, 0.8);
  EXPECT_GT(characterize(cap, kRef, kNodes).nodes_mean,
            characterize(dat, kRef, kNodes).nodes_mean);
}

TEST(Models, EveryModelHasDisaggregationCandidates) {
  // Each archetype must contain jobs that exceed full local memory —
  // the population the paper's system exists for.
  for (const WorkloadModel m : all_workload_models()) {
    const Trace t = make_model_trace(m, 3000, 7, kNodes, kRef, 0.8);
    const TraceStats s = characterize(t, kRef, kNodes);
    EXPECT_GT(s.frac_mem_above_full, 0.0) << to_string(m);
    EXPECT_LT(s.frac_mem_above_full, 0.3) << to_string(m);
  }
}

TEST(Models, SpecScalesWithMachine) {
  const SyntheticSpec spec =
      model_spec(WorkloadModel::kCapability, 128, gib(std::int64_t{64}));
  for (const auto& bucket : spec.node_buckets) {
    EXPECT_LE(bucket.hi, 128);
  }
  EXPECT_EQ(spec.reference_node_mem, gib(std::int64_t{64}));
}

TEST(Models, DeterministicAcrossCalls) {
  const Trace a =
      make_model_trace(WorkloadModel::kMixed, 300, 9, kNodes, kRef, 0.9);
  const Trace b =
      make_model_trace(WorkloadModel::kMixed, 300, 9, kNodes, kRef, 0.9);
  ASSERT_EQ(a.size(), b.size());
  for (JobId i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.job(i).submit, b.job(i).submit);
    EXPECT_EQ(a.job(i).mem_per_node, b.job(i).mem_per_node);
  }
}

}  // namespace
}  // namespace dmsched
