// SWF round-trip fuzz: randomized traces written by write_swf and read back
// through the *streaming* reader must reproduce every job field exactly, at
// multiple procs-per-node conversions. Plus the error-handling contract of
// the incremental reader: malformed lines, truncation, and mid-line EOF are
// counted (lines_malformed / jobs_skipped), never fatal, and the accounting
// agrees with the eager read_swf on identical input.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "workload/swf.hpp"
#include "workload/trace.hpp"
#include "workload/trace_source.hpp"

namespace dmsched {
namespace {

// SWF serializes whole seconds and whole KB-per-proc, so an exactly
// round-trippable job has: integral-second times, memory a multiple of
// 1024 * procs_per_node bytes, the default sensitivity (SWF has no such
// field), and a non-negative user. The first submit must be 0 because the
// reader rebases onto the first accepted job.
Trace fuzz_trace(std::uint64_t seed, std::size_t jobs,
                 std::int32_t procs_per_node) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::int64_t> gap_s(0, 3600);
  std::uniform_int_distribution<std::int32_t> nodes_d(1, 32);
  std::uniform_int_distribution<std::int64_t> mem_kb_per_proc(1, 4 * 1024 * 1024);
  std::uniform_int_distribution<std::int64_t> runtime_s(1, 86400);
  std::uniform_int_distribution<std::int64_t> slack_s(0, 7200);
  std::uniform_int_distribution<std::int32_t> user_d(0, 9);

  std::vector<Job> out;
  out.reserve(jobs);
  std::int64_t submit_s = 0;
  for (std::size_t i = 0; i < jobs; ++i) {
    if (i > 0) submit_s += gap_s(rng);
    Job j;
    j.id = static_cast<JobId>(i);
    j.submit = seconds(submit_s);
    j.nodes = nodes_d(rng);
    j.mem_per_node =
        Bytes{mem_kb_per_proc(rng) * 1024 * procs_per_node};
    j.runtime = seconds(runtime_s(rng));
    j.walltime = j.runtime + seconds(slack_s(rng));
    j.user = user_d(rng);
    out.push_back(j);
  }
  return Trace::make(std::move(out), "fuzz");
}

void expect_job_equal(const Job& a, const Job& b, std::size_t i) {
  SCOPED_TRACE("job " + std::to_string(i));
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.submit.usec(), b.submit.usec());
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.mem_per_node.count(), b.mem_per_node.count());
  EXPECT_EQ(a.runtime.usec(), b.runtime.usec());
  EXPECT_EQ(a.walltime.usec(), b.walltime.usec());
  EXPECT_EQ(a.sensitivity, b.sensitivity);
  EXPECT_EQ(a.user, b.user);
}

TEST(SwfRoundTripFuzz, StreamingReaderReproducesEveryField) {
  for (const std::int32_t ppn : {1, 4}) {
    SwfOptions opts;
    opts.procs_per_node = ppn;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      SCOPED_TRACE("ppn " + std::to_string(ppn) + " seed " +
                   std::to_string(seed));
      const Trace original = fuzz_trace(seed, 50, ppn);
      auto buffer = std::make_unique<std::stringstream>();
      write_swf(*buffer, original, opts);
      StreamingSwfSource source(std::move(buffer), opts, "fuzz");
      const Trace round = drain_to_trace(source, "fuzz");
      ASSERT_TRUE(source.ok()) << source.error();
      EXPECT_EQ(source.jobs_accepted(), original.size());
      EXPECT_EQ(source.lines_malformed(), 0u);
      EXPECT_EQ(source.jobs_skipped(), 0u);
      ASSERT_EQ(round.size(), original.size());
      for (JobId i = 0; i < original.size(); ++i) {
        expect_job_equal(original.job(i), round.job(i), i);
      }
    }
  }
}

TEST(SwfRoundTripFuzz, EagerAndStreamingReadersAgreeOnTheSameBytes) {
  const Trace original = fuzz_trace(7, 40, 2);
  SwfOptions opts;
  opts.procs_per_node = 2;
  std::stringstream eager_buf;
  write_swf(eager_buf, original, opts);
  const std::string bytes = eager_buf.str();

  std::istringstream eager_in(bytes);
  const SwfResult eager = read_swf(eager_in, opts, "fuzz");
  ASSERT_TRUE(eager.ok());

  StreamingSwfSource source(std::make_unique<std::istringstream>(bytes), opts,
                            "fuzz");
  const Trace streamed = drain_to_trace(source, "fuzz");
  ASSERT_EQ(streamed.size(), eager.trace.size());
  for (JobId i = 0; i < streamed.size(); ++i) {
    expect_job_equal(eager.trace.job(i), streamed.job(i), i);
  }
  EXPECT_EQ(source.lines_total(), eager.lines_total);
  EXPECT_EQ(source.jobs_accepted(), eager.jobs_accepted);
  EXPECT_EQ(source.jobs_skipped(), eager.jobs_skipped);
  EXPECT_EQ(source.lines_malformed(), eager.lines_malformed);
}

// --- error-handling contract -------------------------------------------------

constexpr const char* kGoodLine =
    "1 0 -1 100 4 -1 -1 4 200 -1 1 1 1 1 1 -1 -1 -1\n";
constexpr const char* kLaterGoodLine =
    "2 60 -1 100 4 -1 -1 4 200 -1 1 1 1 1 1 -1 -1 -1\n";

TEST(StreamingSwfErrors, MalformedLinesAreCountedAndSkipped) {
  const std::string input = std::string("garbage here\n") + kGoodLine +
                            "1 2 3\n" + kLaterGoodLine;
  StreamingSwfSource source(std::make_unique<std::istringstream>(input),
                            SwfOptions{}, "t");
  std::size_t accepted = 0;
  while (source.next().has_value()) ++accepted;
  EXPECT_TRUE(source.ok()) << source.error();  // malformed is never fatal
  EXPECT_EQ(accepted, 2u);
  EXPECT_EQ(source.jobs_accepted(), 2u);
  EXPECT_EQ(source.lines_malformed(), 2u);
  EXPECT_EQ(source.jobs_skipped(), 0u);
  EXPECT_EQ(source.lines_total(), 4u);
}

TEST(StreamingSwfErrors, FilteredJobsCountAsSkippedNotMalformed) {
  const std::string input =
      std::string(kGoodLine) +
      "2 60 -1 100 4 -1 -1 4 200 -1 0 1 1 1 1 -1 -1 -1\n"   // failed status
      "3 90 -1 0 4 -1 -1 4 200 -1 1 1 1 1 1 -1 -1 -1\n";    // zero runtime
  StreamingSwfSource source(std::make_unique<std::istringstream>(input),
                            SwfOptions{}, "t");
  std::size_t accepted = 0;
  while (source.next().has_value()) ++accepted;
  EXPECT_EQ(accepted, 1u);
  EXPECT_EQ(source.jobs_skipped(), 2u);
  EXPECT_EQ(source.lines_malformed(), 0u);
}

TEST(StreamingSwfErrors, TruncatedFinalLineIsMalformedNotFatal) {
  // A file cut mid-record: the last line has only 5 of 18 fields and no
  // trailing newline. Jobs before the cut still stream; the fragment is
  // accounted as malformed; the stream ends cleanly.
  const std::string input =
      std::string(kGoodLine) + kLaterGoodLine + "3 120 -1 100 4";
  StreamingSwfSource source(std::make_unique<std::istringstream>(input),
                            SwfOptions{}, "t");
  std::size_t accepted = 0;
  while (source.next().has_value()) ++accepted;
  EXPECT_EQ(accepted, 2u);
  EXPECT_EQ(source.lines_malformed(), 1u);
  EXPECT_TRUE(source.ok());
  EXPECT_FALSE(source.next().has_value());  // exhausted stays exhausted
}

TEST(StreamingSwfErrors, CompleteFinalLineWithoutNewlineParses) {
  // Mid-line EOF after a *complete* record: all 18 fields present, no '\n'.
  const std::string input = std::string(kGoodLine) +
                            "2 60 -1 100 4 -1 -1 4 200 -1 1 1 1 1 1 -1 -1 -1";
  StreamingSwfSource source(std::make_unique<std::istringstream>(input),
                            SwfOptions{}, "t");
  std::size_t accepted = 0;
  while (source.next().has_value()) ++accepted;
  EXPECT_EQ(accepted, 2u);
  EXPECT_EQ(source.lines_malformed(), 0u);
}

TEST(StreamingSwfErrors, AccountingMatchesEagerReaderOnMessyInput) {
  const std::string input = std::string(";; header\n") + "not a job\n" +
                            kGoodLine + "\n" +
                            "2 60 -1 100 0 -1 -1 0 200 -1 1 1 1 1 1 -1 -1 -1\n" +
                            kLaterGoodLine + "junk";
  std::istringstream eager_in(input);
  const SwfResult eager = read_swf(eager_in, SwfOptions{}, "t");
  StreamingSwfSource source(std::make_unique<std::istringstream>(input),
                            SwfOptions{}, "t");
  while (source.next().has_value()) {
  }
  EXPECT_EQ(source.lines_total(), eager.lines_total);
  EXPECT_EQ(source.jobs_accepted(), eager.jobs_accepted);
  EXPECT_EQ(source.jobs_skipped(), eager.jobs_skipped);
  EXPECT_EQ(source.lines_malformed(), eager.lines_malformed);
  EXPECT_EQ(source.ok(), eager.ok());
}

}  // namespace
}  // namespace dmsched
