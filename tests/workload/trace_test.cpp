#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include "testing/builders.hpp"

namespace dmsched {
namespace {

using testing::job;
using testing::trace_of;

TEST(Trace, MakeSortsBySubmitAndReassignsIds) {
  Trace t = trace_of({job(0).at_h(5.0), job(1).at_h(1.0), job(2).at_h(3.0)});
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.job(0).submit, seconds(3600.0));
  EXPECT_EQ(t.job(1).submit, seconds(3.0 * 3600));
  EXPECT_EQ(t.job(2).submit, seconds(5.0 * 3600));
  for (JobId i = 0; i < 3; ++i) EXPECT_EQ(t.job(i).id, i);
}

TEST(Trace, StableSortPreservesEqualSubmitOrder) {
  Trace t = trace_of({job(0).at_h(1.0).nodes(1), job(1).at_h(1.0).nodes(2)});
  EXPECT_EQ(t.job(0).nodes, 1);
  EXPECT_EQ(t.job(1).nodes, 2);
}

TEST(Trace, SpanMeasuresSubmitWindow) {
  Trace t = trace_of({job(0).at_h(2.0), job(1).at_h(8.0)});
  EXPECT_DOUBLE_EQ(t.span().hours(), 6.0);
}

TEST(Trace, SpanOfSingleJobIsZero) {
  Trace t = trace_of({job(0).at_h(2.0)});
  EXPECT_EQ(t.span(), SimTime{});
}

TEST(Trace, RebasedShiftsEpochToZero) {
  Trace t = trace_of({job(0).at_h(10.0), job(1).at_h(12.0)}).rebased();
  EXPECT_EQ(t.job(0).submit, SimTime{});
  EXPECT_DOUBLE_EQ(t.job(1).submit.hours(), 2.0);
}

TEST(Trace, PrefixTakesFirstN) {
  Trace t = trace_of({job(0).at_h(1.0), job(1).at_h(2.0), job(2).at_h(3.0)});
  const Trace p = t.prefix(2);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_DOUBLE_EQ(p.jobs().back().submit.hours(), 2.0);
}

TEST(Trace, PrefixBeyondSizeIsWholeTrace) {
  Trace t = trace_of({job(0)});
  EXPECT_EQ(t.prefix(100).size(), 1u);
}

TEST(Trace, ScaledArrivalsCompressesGaps) {
  Trace t = trace_of({job(0).at_h(0.0), job(1).at_h(10.0)});
  const Trace s = t.scaled_arrivals(0.5);
  EXPECT_DOUBLE_EQ(s.span().hours(), 5.0);
  // runtimes untouched
  EXPECT_EQ(s.job(0).runtime, t.job(0).runtime);
}

TEST(Trace, ScaledArrivalsKeepsEpoch) {
  Trace t = trace_of({job(0).at_h(4.0), job(1).at_h(8.0)});
  const Trace s = t.scaled_arrivals(2.0);
  EXPECT_DOUBLE_EQ(s.job(0).submit.hours(), 4.0);
  EXPECT_DOUBLE_EQ(s.job(1).submit.hours(), 12.0);
}

TEST(Trace, OfferedLoadFormula) {
  // two jobs × 4 nodes × 1 h over a 2 h span on 8 nodes: load = 8/(8*2)=0.5
  Trace t = trace_of({job(0).at_h(0.0).nodes(4).runtime_h(1.0),
                      job(1).at_h(2.0).nodes(4).runtime_h(1.0)});
  EXPECT_DOUBLE_EQ(t.offered_load(8), 0.5);
}

TEST(Trace, OfferedLoadZeroSpan) {
  Trace t = trace_of({job(0).at_h(1.0)});
  EXPECT_DOUBLE_EQ(t.offered_load(8), 0.0);
}

TEST(Trace, JobAccessorOutOfRangeAborts) {
  Trace t = trace_of({job(0)});
  EXPECT_DEATH((void)t.job(5), "out of range");
}

TEST(Trace, RejectsNonPositiveNodes) {
  Job bad = job(0);
  bad.nodes = 0;
  EXPECT_DEATH((void)trace_of({bad}), "nodes");
}

TEST(Trace, RejectsWalltimeBelowRuntime) {
  Job bad = job(0).runtime_h(2.0);
  bad.walltime = hours(1);
  EXPECT_DEATH((void)trace_of({bad}), "walltime");
}

TEST(Trace, TotalMemAggregates) {
  const Job j = job(0).nodes(4).mem_gib(32);
  EXPECT_EQ(j.total_mem(), gib(std::int64_t{128}));
}

TEST(Trace, NodeSecondsHelpers) {
  const Job j =
      job(0).nodes(2).runtime_h(1.0).walltime_h(2.0);
  EXPECT_DOUBLE_EQ(j.used_node_seconds(), 2 * 3600.0);
  EXPECT_DOUBLE_EQ(j.requested_node_seconds(), 2 * 7200.0);
}

}  // namespace
}  // namespace dmsched
