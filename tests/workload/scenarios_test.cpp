// The scenario registry: name resolution, the unknown-name error path,
// determinism of every scenario across constructions, and parameter
// overrides. Engine-level properties (policy discrimination, golden pins)
// live in tests/golden/.
#include "workload/scenarios.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "workload/swf.hpp"

namespace dmsched {
namespace {

/// Params for registry-wide loops: infrastructure scenarios default to
/// scale-sized workloads (large-replay 100k, million-replay 10^6 jobs), so
/// loops that only probe determinism or machine shape cap them small.
ScenarioParams loop_params(const std::string& name) {
  ScenarioParams p;
  if (scenario_info(name).infrastructure) p.jobs = 2000;
  return p;
}

void expect_same_trace(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "job " << i);
    EXPECT_EQ(a.jobs()[i].submit.usec(), b.jobs()[i].submit.usec());
    EXPECT_EQ(a.jobs()[i].nodes, b.jobs()[i].nodes);
    EXPECT_EQ(a.jobs()[i].mem_per_node, b.jobs()[i].mem_per_node);
    EXPECT_EQ(a.jobs()[i].runtime.usec(), b.jobs()[i].runtime.usec());
    EXPECT_EQ(a.jobs()[i].walltime.usec(), b.jobs()[i].walltime.usec());
    EXPECT_EQ(a.jobs()[i].sensitivity, b.jobs()[i].sensitivity);
    EXPECT_EQ(a.jobs()[i].user, b.jobs()[i].user);
  }
}

TEST(ScenarioRegistry, ListsTheStandardLibrary) {
  const auto names = scenario_names();
  const std::vector<std::string> expected = {
      "golden-baseline",  "memory-stressed",  "pool-contended",
      "bursty-arrivals",  "wide-jobs",        "rack-local",
      "shared-neighbors", "tiered-contended", "gpu-contended",
      "bb-staging",       "mixed-swf",        "large-replay",
      "million-replay"};
  EXPECT_EQ(names, expected);
  for (const std::string& name : names) {
    EXPECT_TRUE(scenario_exists(name)) << name;
    const ScenarioInfo& info = scenario_info(name);
    EXPECT_EQ(info.name, name);
    EXPECT_FALSE(info.summary.empty()) << name;
    EXPECT_FALSE(info.paper_figure.empty()) << name;
    EXPECT_FALSE(info.expected_ordering.empty()) << name;
  }
}

TEST(ScenarioRegistry, UnknownNameThrowsListingKnownNames) {
  EXPECT_FALSE(scenario_exists("no-such-scenario"));
  EXPECT_THROW((void)scenario_info("no-such-scenario"), std::invalid_argument);
  try {
    (void)make_scenario("no-such-scenario");
    FAIL() << "make_scenario must throw for unknown names";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-scenario"), std::string::npos);
    // The message must teach the caller the valid names.
    EXPECT_NE(what.find("memory-stressed"), std::string::npos);
    EXPECT_NE(what.find("golden-baseline"), std::string::npos);
  }
}

TEST(ScenarioRegistry, EveryScenarioIsDeterministic) {
  for (const std::string& name : scenario_names()) {
    SCOPED_TRACE(name);
    const ScenarioParams p = loop_params(name);
    const Scenario a = make_scenario(name, p);
    const Scenario b = make_scenario(name, p);
    EXPECT_FALSE(a.trace.empty());
    EXPECT_EQ(a.cluster.total_nodes, b.cluster.total_nodes);
    EXPECT_EQ(a.cluster.nodes_per_rack, b.cluster.nodes_per_rack);
    EXPECT_EQ(a.cluster.local_mem_per_node, b.cluster.local_mem_per_node);
    EXPECT_EQ(a.cluster.pool_per_rack, b.cluster.pool_per_rack);
    EXPECT_EQ(a.cluster.global_pool, b.cluster.global_pool);
    EXPECT_EQ(a.workload_reference_mem, b.workload_reference_mem);
    expect_same_trace(a.trace, b.trace);
  }
}

TEST(ScenarioRegistry, EveryScenarioShapeIsValid) {
  for (const std::string& name : scenario_names()) {
    SCOPED_TRACE(name);
    const Scenario s = make_scenario(name, loop_params(name));
    s.cluster.validate();  // aborts on degenerate shapes
    EXPECT_GT(s.trace.size(), 0u);
    EXPECT_FALSE(s.workload_reference_mem.is_zero());
  }
}

TEST(ScenarioParamsTest, JobCountOverrideApplies) {
  const Scenario s = make_scenario("memory-stressed", {.jobs = 50});
  EXPECT_EQ(s.trace.size(), 50u);
  const Scenario swf = make_scenario("mixed-swf", {.jobs = 30});
  EXPECT_EQ(swf.trace.size(), 30u);
  // Replication rounds up to whole copies, then truncates.
  const Scenario swf2 = make_scenario("mixed-swf", {.jobs = 45});
  EXPECT_EQ(swf2.trace.size(), 45u);
}

TEST(ScenarioParamsTest, SeedOverrideChangesSyntheticWorkloads) {
  const Scenario a = make_scenario("memory-stressed");
  const Scenario b = make_scenario("memory-stressed", {.seed = 999});
  ASSERT_EQ(a.trace.size(), b.trace.size());
  bool any_difference = false;
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    if (a.trace.jobs()[i].runtime != b.trace.jobs()[i].runtime ||
        a.trace.jobs()[i].nodes != b.trace.jobs()[i].nodes) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(ScenarioParamsTest, DefaultParamsAreTheDocumentedDefaults) {
  // Zero-valued params must reproduce the published scenario exactly.
  const Scenario a = make_scenario("golden-baseline");
  const Scenario b = make_scenario("golden-baseline", ScenarioParams{});
  expect_same_trace(a.trace, b.trace);
}

TEST(ScenarioParamsTest, UnitScaleReproducesThePublishedScenario) {
  // 0 is the sentinel and 1.0 the explicit default; both must be
  // byte-identical to the published machine and workload (golden safety).
  for (const std::string& name : scenario_names()) {
    SCOPED_TRACE(name);
    ScenarioParams unit = loop_params(name);
    unit.node_scale = 1.0;
    unit.pool_scale = 1.0;
    const Scenario a = make_scenario(name, loop_params(name));
    const Scenario b = make_scenario(name, unit);
    EXPECT_EQ(a.cluster.total_nodes, b.cluster.total_nodes);
    EXPECT_EQ(a.cluster.pool_per_rack, b.cluster.pool_per_rack);
    EXPECT_EQ(a.cluster.global_pool, b.cluster.global_pool);
    expect_same_trace(a.trace, b.trace);
  }
}

TEST(ScenarioParamsTest, NodeScaleSnapsToWholeRacks) {
  const Scenario base = make_scenario("memory-stressed");          // 32 nodes
  const Scenario doubled =
      make_scenario("memory-stressed", {.node_scale = 2.0});       // 64
  EXPECT_EQ(doubled.cluster.total_nodes, base.cluster.total_nodes * 2);
  EXPECT_EQ(doubled.cluster.nodes_per_rack, base.cluster.nodes_per_rack);
  doubled.cluster.validate();
  // A fractional scale snaps to whole racks: 32 × 1.3 = 41.6 → 5 racks × 8.
  const Scenario odd = make_scenario("memory-stressed", {.node_scale = 1.3});
  EXPECT_EQ(odd.cluster.total_nodes % odd.cluster.nodes_per_rack, 0);
  EXPECT_EQ(odd.cluster.total_nodes, 40);
  // Scaling down never drops below one rack.
  const Scenario tiny = make_scenario("memory-stressed", {.node_scale = 0.01});
  EXPECT_EQ(tiny.cluster.total_nodes, tiny.cluster.nodes_per_rack);
}

TEST(ScenarioParamsTest, NodeScaleAdaptsTheWorkloadToTheMachine) {
  // The knob exists for capacity planning: the workload must be re-derived
  // against the scaled machine, not replayed verbatim from the published
  // one. Offered load is normalized by machine size, so it should be in
  // the same regime at both scales while the traces differ.
  const Scenario base = make_scenario("memory-stressed");
  const Scenario big = make_scenario("memory-stressed", {.node_scale = 4.0});
  ASSERT_EQ(base.trace.size(), big.trace.size());
  EXPECT_NEAR(big.trace.offered_load(big.cluster.total_nodes),
              base.trace.offered_load(base.cluster.total_nodes), 0.25);
  bool any_difference = false;
  for (std::size_t i = 0; i < base.trace.size(); ++i) {
    if (base.trace.jobs()[i].nodes != big.trace.jobs()[i].nodes ||
        base.trace.jobs()[i].submit.usec() != big.trace.jobs()[i].submit.usec()) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference) << "workload ignored the scaled machine";
}

TEST(ScenarioParamsTest, PoolScaleScalesBothPoolTiers) {
  const Scenario base = make_scenario("memory-stressed");
  const Scenario half =
      make_scenario("memory-stressed", {.pool_scale = 0.5});
  EXPECT_EQ(half.cluster.pool_per_rack, base.cluster.pool_per_rack / 2);
  EXPECT_EQ(half.cluster.global_pool, base.cluster.global_pool / 2);
  EXPECT_EQ(half.cluster.total_nodes, base.cluster.total_nodes);
  EXPECT_EQ(half.cluster.local_mem_per_node, base.cluster.local_mem_per_node);
  // A poolless scenario stays poolless at any scale.
  const Scenario contended =
      make_scenario("pool-contended", {.pool_scale = 3.0});
  EXPECT_TRUE(contended.cluster.global_pool.is_zero());
}

TEST(ScenarioParamsTest, ScaleFactorsAreDeterministic) {
  const ScenarioParams params{.node_scale = 2.0, .pool_scale = 1.5};
  const Scenario a = make_scenario("bursty-arrivals", params);
  const Scenario b = make_scenario("bursty-arrivals", params);
  EXPECT_EQ(a.cluster.total_nodes, b.cluster.total_nodes);
  EXPECT_EQ(a.cluster.pool_per_rack, b.cluster.pool_per_rack);
  expect_same_trace(a.trace, b.trace);
}

TEST(ScenarioParamsTest, NegativeScaleFactorsThrow) {
  EXPECT_THROW(
      (void)make_scenario("memory-stressed", {.node_scale = -1.0}),
      std::invalid_argument);
  EXPECT_THROW(
      (void)make_scenario("memory-stressed", {.pool_scale = -0.5}),
      std::invalid_argument);
}

TEST(TopologyKnobs, RacksReRacksPreservingRackTierBytes) {
  const Scenario base = make_scenario("tiered-contended");  // 8 racks × 8
  const Scenario wide = make_scenario("tiered-contended", {.racks = 4});
  EXPECT_EQ(wide.cluster.racks(), 4);
  EXPECT_EQ(wide.cluster.total_nodes, base.cluster.total_nodes);
  // Total rack-tier bytes and the global tier are preserved.
  EXPECT_EQ(wide.cluster.pool_per_rack * wide.cluster.racks(),
            base.cluster.pool_per_rack * base.cluster.racks());
  EXPECT_EQ(wide.cluster.global_pool, base.cluster.global_pool);
  // The workload re-derives against the same node count — identical trace.
  expect_same_trace(base.trace, wide.trace);
}

TEST(TopologyKnobs, RacksMustDivideTheNodeCount) {
  // 64 nodes cannot form 7 equal racks.
  EXPECT_THROW((void)make_scenario("tiered-contended", {.racks = 7}),
               std::invalid_argument);
  EXPECT_THROW((void)make_scenario("tiered-contended", {.racks = -2}),
               std::invalid_argument);
}

TEST(TopologyKnobs, RackPoolFracResplitsTotalDisaggregatedCapacity) {
  const Scenario base = make_scenario("tiered-contended");
  const Bytes total = base.cluster.pool_per_rack * base.cluster.racks() +
                      base.cluster.global_pool;
  // All capacity to the global tier.
  const Scenario flat =
      make_scenario("tiered-contended", {.rack_pool_frac = 0.0});
  EXPECT_TRUE(flat.cluster.pool_per_rack.is_zero());
  EXPECT_EQ(flat.cluster.global_pool, total);
  // All capacity to the rack tier.
  const Scenario local =
      make_scenario("tiered-contended", {.rack_pool_frac = 1.0});
  EXPECT_TRUE(local.cluster.global_pool.is_zero());
  EXPECT_EQ(local.cluster.pool_per_rack * local.cluster.racks(), total);
  // A half split conserves total capacity.
  const Scenario half =
      make_scenario("tiered-contended", {.rack_pool_frac = 0.5});
  EXPECT_EQ(half.cluster.pool_per_rack * half.cluster.racks() +
                half.cluster.global_pool,
            total);
  // The negative sentinel keeps the published split byte-identical.
  const Scenario kept =
      make_scenario("tiered-contended", {.rack_pool_frac = -1.0});
  EXPECT_EQ(kept.cluster.pool_per_rack, base.cluster.pool_per_rack);
  EXPECT_EQ(kept.cluster.global_pool, base.cluster.global_pool);
}

TEST(TopologyKnobs, InvalidRackPoolFracThrows) {
  EXPECT_THROW(
      (void)make_scenario("tiered-contended", {.rack_pool_frac = 1.5}),
      std::invalid_argument);
}

TEST(TopologyKnobs, ZeroCapacityTierCombinationsThrow) {
  // A pool_scale that rounds a published tier to zero bytes must be loud:
  // the machine-scale validation satellite. (1e-12 of 96 GiB is 0 bytes.)
  EXPECT_THROW(
      (void)make_scenario("tiered-contended", {.pool_scale = 1e-12}),
      std::invalid_argument);
  // rack_pool_frac small enough to round per-rack pools to zero while still
  // requesting a rack tier.
  EXPECT_THROW(
      (void)make_scenario("tiered-contended", {.rack_pool_frac = 1e-13}),
      std::invalid_argument);
  // (A machine with no disaggregated capacity at all rejects any split —
  // covered against topology/apply directly in tests/topology/.)
}

TEST(TopologyKnobs, RemotePenaltyResolvesIntoTheScenario) {
  const Scenario base = make_scenario("tiered-contended");
  EXPECT_EQ(base.remote_penalty, 1.0);
  const Scenario harsh =
      make_scenario("tiered-contended", {.remote_penalty = 2.5});
  EXPECT_EQ(harsh.remote_penalty, 2.5);
  // The machine and workload are untouched — the penalty acts on the
  // slowdown model, not the trace.
  expect_same_trace(base.trace, harsh.trace);
  EXPECT_THROW(
      (void)make_scenario("tiered-contended", {.remote_penalty = -1.0}),
      std::invalid_argument);
}

TEST(TopologyKnobs, KnobsAreDeterministic) {
  const ScenarioParams params{
      .racks = 4, .rack_pool_frac = 0.25, .remote_penalty = 1.5};
  const Scenario a = make_scenario("tiered-contended", params);
  const Scenario b = make_scenario("tiered-contended", params);
  EXPECT_EQ(a.cluster.nodes_per_rack, b.cluster.nodes_per_rack);
  EXPECT_EQ(a.cluster.pool_per_rack, b.cluster.pool_per_rack);
  EXPECT_EQ(a.cluster.global_pool, b.cluster.global_pool);
  EXPECT_EQ(a.remote_penalty, b.remote_penalty);
  expect_same_trace(a.trace, b.trace);
}

TEST(TieredContendedScenario, BothTiersPresentAndStressed) {
  const Scenario s = make_scenario("tiered-contended");
  EXPECT_FALSE(s.cluster.pool_per_rack.is_zero());
  EXPECT_FALSE(s.cluster.global_pool.is_zero());
  // Local memory scarce relative to the reference: a large population
  // overflows into the tiers (the regime where placement strategies
  // diverge).
  EXPECT_GT(s.workload_reference_mem, s.cluster.local_mem_per_node);
  std::size_t above_local = 0;
  for (const Job& j : s.trace.jobs()) {
    if (j.mem_per_node > s.cluster.local_mem_per_node) ++above_local;
  }
  EXPECT_GT(above_local, s.trace.size() / 4);
}

TEST(RackLocalScenario, HasNoGlobalTier) {
  const Scenario s = make_scenario("rack-local");
  EXPECT_FALSE(s.cluster.pool_per_rack.is_zero());
  EXPECT_TRUE(s.cluster.global_pool.is_zero());
  std::size_t above_local = 0;
  for (const Job& j : s.trace.jobs()) {
    if (j.mem_per_node > s.cluster.local_mem_per_node) ++above_local;
  }
  EXPECT_GT(above_local, 0u) << "rack pools are never exercised";
}

TEST(MixedSwfScenario, StressesLocalMemory) {
  const Scenario s = make_scenario("mixed-swf");
  std::size_t above_local = 0;
  for (const Job& j : s.trace.jobs()) {
    if (j.mem_per_node > s.cluster.local_mem_per_node) ++above_local;
  }
  EXPECT_GT(above_local, 0u) << "replay no longer needs the pools";
}

TEST(MixedSwfScenario, EmbeddedFixtureMatchesTheBundledSwfFile) {
  // The scenario embeds a copy of tests/data/sample.swf so it needs no file
  // path at runtime; this pins the copy to the on-disk fixture. Arrival
  // times are load-scaled by the scenario, so compare the shape fields.
  SwfOptions options;
  options.procs_per_node = 4;
  const SwfResult file =
      read_swf_file(std::string(DMSCHED_TEST_DATA_DIR) + "/sample.swf",
                    options);
  ASSERT_TRUE(file.ok()) << file.error;
  const Scenario s = make_scenario("mixed-swf", {.jobs = 30});
  ASSERT_EQ(s.trace.size(), file.trace.size());
  for (std::size_t i = 0; i < s.trace.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "job " << i);
    EXPECT_EQ(s.trace.jobs()[i].nodes, file.trace.jobs()[i].nodes);
    EXPECT_EQ(s.trace.jobs()[i].mem_per_node,
              file.trace.jobs()[i].mem_per_node);
    EXPECT_EQ(s.trace.jobs()[i].runtime.usec(),
              file.trace.jobs()[i].runtime.usec());
    EXPECT_EQ(s.trace.jobs()[i].walltime.usec(),
              file.trace.jobs()[i].walltime.usec());
    EXPECT_EQ(s.trace.jobs()[i].user, file.trace.jobs()[i].user);
  }
}

TEST(LargeReplayScenario, DefaultsToProductionScale) {
  // The scenario exists to replay 10^5-job traces; the default must stay at
  // that scale or bench/sim_throughput quietly stops measuring anything.
  const Scenario s = make_scenario("large-replay");
  EXPECT_GE(s.trace.size(), 100000u);
  // Below saturation by design: throughput measures the event core, not a
  // scheduler walking an unbounded backlog.
  EXPECT_LT(s.trace.offered_load(s.cluster.total_nodes), 1.0);
}

TEST(LargeReplayScenario, SharesTheMixedSwfMachineAndDay) {
  // Same machine shape and the same bundled day as mixed-swf — only the
  // replication depth and the load target differ. Submit times are
  // load-scaled, so compare the shape fields of the first base period.
  const Scenario large = make_scenario("large-replay", {.jobs = 30});
  const Scenario swf = make_scenario("mixed-swf", {.jobs = 30});
  EXPECT_EQ(large.cluster.total_nodes, swf.cluster.total_nodes);
  EXPECT_EQ(large.cluster.nodes_per_rack, swf.cluster.nodes_per_rack);
  EXPECT_EQ(large.cluster.local_mem_per_node, swf.cluster.local_mem_per_node);
  EXPECT_EQ(large.cluster.pool_per_rack, swf.cluster.pool_per_rack);
  EXPECT_EQ(large.cluster.global_pool, swf.cluster.global_pool);
  ASSERT_EQ(large.trace.size(), swf.trace.size());
  for (std::size_t i = 0; i < large.trace.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "job " << i);
    EXPECT_EQ(large.trace.jobs()[i].nodes, swf.trace.jobs()[i].nodes);
    EXPECT_EQ(large.trace.jobs()[i].mem_per_node,
              swf.trace.jobs()[i].mem_per_node);
    EXPECT_EQ(large.trace.jobs()[i].runtime.usec(),
              swf.trace.jobs()[i].runtime.usec());
    EXPECT_EQ(large.trace.jobs()[i].walltime.usec(),
              swf.trace.jobs()[i].walltime.usec());
  }
}

TEST(LargeReplayScenario, CappedBuildsAreCheapAndExact) {
  // bench/sim_throughput and the golden smoke test replay capped prefixes;
  // the cap must hit the requested size exactly at any value.
  for (const std::size_t jobs : {1000u, 2500u, 10000u}) {
    SCOPED_TRACE(::testing::Message() << "jobs " << jobs);
    const Scenario s = make_scenario(
        "large-replay", {.jobs = jobs});
    EXPECT_EQ(s.trace.size(), jobs);
  }
}

TEST(MemoryStressedScenario, LocalMemoryIsScarce) {
  const Scenario s = make_scenario("memory-stressed");
  // The scenario's whole point: reference memory well above the machine's
  // local memory, so a large population needs the pools.
  EXPECT_GT(s.workload_reference_mem, s.cluster.local_mem_per_node * 2);
  std::size_t above_local = 0;
  for (const Job& j : s.trace.jobs()) {
    if (j.mem_per_node > s.cluster.local_mem_per_node) ++above_local;
  }
  EXPECT_GT(above_local, s.trace.size() / 4);
}

TEST(BurstyArrivalsScenario, ArrivalsLandOnBurstBoundaries) {
  const Scenario s = make_scenario("bursty-arrivals");
  constexpr std::int64_t kBurstUsec = std::int64_t{2} * 3600 * 1'000'000;
  for (const Job& j : s.trace.jobs()) {
    EXPECT_EQ(j.submit.usec() % kBurstUsec, 0)
        << "job " << j.id << " submits off-boundary";
  }
  // More than one burst, or the scenario degenerated into a single spike.
  EXPECT_GT(s.trace.span().usec(), 0);
}

TEST(ResourceKnobs, GpuAndBbOverridesReshapeOnlyTheMachine) {
  const Scenario base = make_scenario("tiered-contended");
  EXPECT_EQ(base.cluster.gpus_per_node, 0);
  EXPECT_TRUE(base.cluster.bb_capacity.is_zero());
  const Scenario modded = make_scenario(
      "tiered-contended",
      {.gpus_per_node = 2, .bb_capacity = gib(std::int64_t{64})});
  EXPECT_EQ(modded.cluster.gpus_per_node, 2);
  EXPECT_EQ(modded.cluster.bb_capacity, gib(std::int64_t{64}));
  EXPECT_TRUE(modded.cluster.has_gpus());
  EXPECT_TRUE(modded.cluster.has_burst_buffer());
  // The workload is untouched: provisioning knobs act on the machine, not
  // the trace (no legacy job grows a GPU or BB demand).
  expect_same_trace(base.trace, modded.trace);
  for (const Job& j : modded.trace.jobs()) {
    EXPECT_EQ(j.gpus_per_node, 0);
    EXPECT_TRUE(j.bb_bytes.is_zero());
  }
}

TEST(ResourceKnobs, NegativeValuesThrow) {
  EXPECT_THROW(
      (void)make_scenario("tiered-contended", {.gpus_per_node = -1}),
      std::invalid_argument);
  EXPECT_THROW((void)make_scenario("tiered-contended",
                                   {.bb_capacity = Bytes{-1}}),
               std::invalid_argument);
}

TEST(GpuContendedScenario, ProvisionsRackPooledGpusAndDecoratesJobs) {
  const Scenario s = make_scenario("gpu-contended");
  EXPECT_EQ(s.cluster.gpus_per_node, 4);
  EXPECT_TRUE(s.cluster.has_gpus());
  EXPECT_FALSE(s.cluster.has_burst_buffer());
  std::size_t gpu_jobs = 0;
  std::size_t over_provisioned = 0;
  for (const Job& j : s.trace.jobs()) {
    EXPECT_TRUE(j.gpus_per_node == 0 || j.gpus_per_node == 4 ||
                j.gpus_per_node == 8)
        << "job " << j.id << " has unexpected demand " << j.gpus_per_node;
    EXPECT_TRUE(j.bb_bytes.is_zero());
    if (j.gpus_per_node > 0) ++gpu_jobs;
    if (j.gpus_per_node > s.cluster.gpus_per_node) {
      ++over_provisioned;
      // The over-provisioned class is width-capped so it stays feasible on
      // the empty machine (8 nodes × 8 GPUs = 64 < 128 devices).
      EXPECT_LE(j.nodes, 8);
      EXPECT_LE(j.total_gpus(), s.cluster.total_gpus());
    }
  }
  // The decoration must actually bite: a large accelerator population, some
  // of it demanding beyond per-node provisioning (the contention source).
  EXPECT_GT(gpu_jobs, s.trace.size() / 3);
  EXPECT_GT(over_provisioned, 0u);
  EXPECT_LT(gpu_jobs, s.trace.size());  // CPU-only jobs remain
}

TEST(BbStagingScenario, ReservesBoundedBurstBuffer) {
  const Scenario s = make_scenario("bb-staging");
  EXPECT_EQ(s.cluster.bb_capacity, gib(std::int64_t{256}));
  EXPECT_TRUE(s.cluster.has_burst_buffer());
  EXPECT_FALSE(s.cluster.has_gpus());
  std::size_t staging = 0;
  for (const Job& j : s.trace.jobs()) {
    EXPECT_EQ(j.gpus_per_node, 0);
    // Per-job reservations are capped below capacity so no job is rejected
    // outright — contention, not infeasibility, is the scenario's point.
    EXPECT_LE(j.bb_bytes, gib(std::int64_t{128}));
    EXPECT_LT(j.bb_bytes, s.cluster.bb_capacity);
    if (!j.bb_bytes.is_zero()) ++staging;
  }
  EXPECT_GT(staging, s.trace.size() / 6);
  EXPECT_LT(staging, s.trace.size());  // non-staging jobs remain
}

}  // namespace
}  // namespace dmsched
