#include "workload/transform.hpp"

#include <gtest/gtest.h>

#include "testing/builders.hpp"

namespace dmsched {
namespace {

using testing::job;
using testing::trace_of;

Trace sample() {
  return trace_of({job(0).at_h(0.0).nodes(2).runtime_h(1.0).walltime_h(3.0),
                   job(1).at_h(1.0).nodes(8).runtime_h(2.0).walltime_h(2.0),
                   job(2).at_h(2.0).nodes(1).runtime_h(0.5).walltime_h(2.0)});
}

TEST(Transform, FilterKeepsMatchesAndReIds) {
  const Trace t = filter_trace(sample(), [](const Job& j) {
    return j.nodes <= 2;
  });
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.job(0).id, 0u);
  EXPECT_EQ(t.job(0).nodes, 2);
  EXPECT_EQ(t.job(1).nodes, 1);
}

TEST(Transform, FilterAllOutIsEmpty) {
  const Trace t = filter_trace(sample(), [](const Job&) { return false; });
  EXPECT_TRUE(t.empty());
}

TEST(Transform, MapRewritesJobs) {
  const Trace t = map_trace(sample(), [](Job j) {
    j.nodes *= 2;
    return j;
  });
  EXPECT_EQ(t.job(0).nodes, 4);
  EXPECT_EQ(t.job(1).nodes, 16);
}

TEST(Transform, MapPreservesName) {
  EXPECT_EQ(map_trace(sample(), [](Job j) { return j; }).name(), "test");
}

TEST(Transform, TimeWindowHalfOpen) {
  const Trace t = time_window(sample(), hours(1), hours(2));
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.job(0).nodes, 8);  // the 1 h submission
}

TEST(Transform, ExactWalltimesHitAccuracyOne) {
  const Trace t = with_exact_walltimes(sample(), minutes(60));
  for (const Job& j : t.jobs()) {
    EXPECT_GE(j.walltime, j.runtime);
    // rounded to the hour, runtimes are whole/half hours here
    EXPECT_LE((j.walltime - j.runtime).seconds(), 3600.0);
  }
  EXPECT_GT(mean_estimate_accuracy(t), mean_estimate_accuracy(sample()));
}

TEST(Transform, ExactWalltimesRoundingFloorsAtRuntime) {
  const Trace base = trace_of({job(0).runtime(seconds(std::int64_t{301}))});
  const Trace t = with_exact_walltimes(base, minutes(5));
  // 301 s rounds up to 600 s, never below the runtime
  EXPECT_EQ(t.job(0).walltime, seconds(std::int64_t{600}));
}

TEST(Transform, WalltimeFactorBounds) {
  const Trace t = with_walltime_factor(sample(), 2.0, 4.0, 9, minutes(1));
  for (const Job& j : t.jobs()) {
    const double factor = j.walltime.seconds() / j.runtime.seconds();
    EXPECT_GE(factor, 2.0 - 1e-9);
    EXPECT_LE(factor, 4.0 + 61.0 / j.runtime.seconds());  // + rounding slack
  }
}

TEST(Transform, WalltimeFactorDeterministic) {
  const Trace a = with_walltime_factor(sample(), 1.0, 5.0, 42);
  const Trace b = with_walltime_factor(sample(), 1.0, 5.0, 42);
  for (JobId i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.job(i).walltime, b.job(i).walltime);
  }
}

TEST(Transform, WalltimeFactorBelowOneAborts) {
  EXPECT_DEATH((void)with_walltime_factor(sample(), 0.5, 2.0, 1),
               "upper bound");
}

TEST(Transform, MeanEstimateAccuracy) {
  // accuracies: 1/3, 1, 1/4 -> mean ≈ 0.5278
  EXPECT_NEAR(mean_estimate_accuracy(sample()),
              (1.0 / 3.0 + 1.0 + 0.25) / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(mean_estimate_accuracy(Trace{}), 1.0);
}

}  // namespace
}  // namespace dmsched
