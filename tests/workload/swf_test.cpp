#include "workload/swf.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "testing/builders.hpp"

namespace dmsched {
namespace {

// job_id submit wait runtime alloc_procs avg_cpu used_mem_kb req_procs
// req_time req_mem_kb status user group app queue partition prev think
constexpr const char* kTwoJobTrace =
    "; Comment header\n"
    "; UnixStartTime: 0\n"
    "1 0 10 3600 64 -1 2097152 64 7200 2097152 1 3 1 1 1 -1 -1 -1\n"
    "2 600 -1 1800 -1 -1 -1 32 3600 1048576 1 4 1 1 1 -1 -1 -1\n";

TEST(Swf, ParsesWellFormedTrace) {
  std::istringstream in(kTwoJobTrace);
  const auto result = read_swf(in, SwfOptions{}, "t");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.jobs_accepted, 2u);
  EXPECT_EQ(result.lines_malformed, 0u);
  ASSERT_EQ(result.trace.size(), 2u);

  const Job& j0 = result.trace.job(0);
  EXPECT_EQ(j0.submit, SimTime{});  // rebased
  EXPECT_EQ(j0.nodes, 64);          // procs_per_node = 1
  EXPECT_EQ(j0.runtime, seconds(std::int64_t{3600}));
  EXPECT_EQ(j0.walltime, seconds(std::int64_t{7200}));
  // 2 GiB per proc in KB
  EXPECT_EQ(j0.mem_per_node, gib(std::int64_t{2}));
  EXPECT_EQ(j0.user, 3);
}

TEST(Swf, ProcsPerNodeConversionRoundsUp) {
  std::istringstream in(
      "1 0 -1 100 -1 -1 -1 33 200 1048576 1 1 1 1 1 -1 -1 -1\n");
  SwfOptions opts;
  opts.procs_per_node = 16;
  const auto result = read_swf(in, opts, "t");
  ASSERT_EQ(result.trace.size(), 1u);
  EXPECT_EQ(result.trace.job(0).nodes, 3);  // ceil(33/16)
  // per-node memory = per-proc × procs_per_node
  EXPECT_EQ(result.trace.job(0).mem_per_node, gib(std::int64_t{16}));
}

TEST(Swf, MissingMemoryUsesDefault) {
  std::istringstream in("1 0 -1 100 4 -1 -1 4 200 -1 1 1 1 1 1 -1 -1 -1\n");
  SwfOptions opts;
  opts.default_mem_per_node = gib(std::int64_t{8});
  const auto result = read_swf(in, opts, "t");
  ASSERT_EQ(result.trace.size(), 1u);
  EXPECT_EQ(result.trace.job(0).mem_per_node, gib(std::int64_t{8}));
}

TEST(Swf, UsedMemoryFallsBackWhenRequestMissing) {
  std::istringstream in(
      "1 0 -1 100 4 -1 1048576 4 200 -1 1 1 1 1 1 -1 -1 -1\n");
  const auto result = read_swf(in, SwfOptions{}, "t");
  EXPECT_EQ(result.trace.job(0).mem_per_node, gib(std::int64_t{1}));
}

TEST(Swf, MissingRequestTimeUsesFallbackFactor) {
  std::istringstream in("1 0 -1 1000 4 -1 -1 4 -1 -1 1 1 1 1 1 -1 -1 -1\n");
  SwfOptions opts;
  opts.walltime_fallback_factor = 2.0;
  const auto result = read_swf(in, opts, "t");
  EXPECT_EQ(result.trace.job(0).walltime, seconds(std::int64_t{2000}));
}

TEST(Swf, RuntimeOverrunClampsWalltimeUp) {
  // runtime 500 > requested 100: importer clamps walltime to runtime
  std::istringstream in("1 0 -1 500 4 -1 -1 4 100 -1 1 1 1 1 1 -1 -1 -1\n");
  const auto result = read_swf(in, SwfOptions{}, "t");
  ASSERT_EQ(result.trace.size(), 1u);
  EXPECT_EQ(result.trace.job(0).walltime, result.trace.job(0).runtime);
}

TEST(Swf, FiltersNonCompletedJobs) {
  std::istringstream in(
      "1 0 -1 100 4 -1 -1 4 200 -1 0 1 1 1 1 -1 -1 -1\n"   // failed
      "2 0 -1 100 4 -1 -1 4 200 -1 5 1 1 1 1 -1 -1 -1\n"   // cancelled
      "3 0 -1 100 4 -1 -1 4 200 -1 1 1 1 1 1 -1 -1 -1\n"); // completed
  const auto result = read_swf(in, SwfOptions{}, "t");
  EXPECT_EQ(result.jobs_accepted, 1u);
  EXPECT_EQ(result.jobs_skipped, 2u);
}

TEST(Swf, KeepsAllStatusesWhenFilterDisabled) {
  std::istringstream in(
      "1 0 -1 100 4 -1 -1 4 200 -1 0 1 1 1 1 -1 -1 -1\n"
      "2 0 -1 100 4 -1 -1 4 200 -1 1 1 1 1 1 -1 -1 -1\n");
  SwfOptions opts;
  opts.completed_only = false;
  const auto result = read_swf(in, opts, "t");
  EXPECT_EQ(result.jobs_accepted, 2u);
}

TEST(Swf, SkipsZeroRuntimeAndZeroProcs) {
  std::istringstream in(
      "1 0 -1 0 4 -1 -1 4 200 -1 1 1 1 1 1 -1 -1 -1\n"
      "2 0 -1 100 0 -1 -1 0 200 -1 1 1 1 1 1 -1 -1 -1\n");
  const auto result = read_swf(in, SwfOptions{}, "t");
  EXPECT_EQ(result.jobs_accepted, 0u);
  EXPECT_EQ(result.jobs_skipped, 2u);
}

TEST(Swf, CountsMalformedLines) {
  std::istringstream in(
      "garbage line\n"
      "1 2 3\n"  // too few fields
      "1 0 -1 100 4 -1 -1 4 200 -1 1 1 1 1 1 -1 -1 -1\n");
  const auto result = read_swf(in, SwfOptions{}, "t");
  EXPECT_EQ(result.lines_malformed, 2u);
  EXPECT_EQ(result.jobs_accepted, 1u);
}

TEST(Swf, IgnoresCommentsAndBlankLines) {
  std::istringstream in(
      ";;; header\n"
      "\n"
      "   \n"
      "1 0 -1 100 4 -1 -1 4 200 -1 1 1 1 1 1 -1 -1 -1\n");
  const auto result = read_swf(in, SwfOptions{}, "t");
  EXPECT_EQ(result.lines_malformed, 0u);
  EXPECT_EQ(result.jobs_accepted, 1u);
}

TEST(Swf, BundledSampleTraceLoads) {
  SwfOptions opts;
  opts.procs_per_node = 4;  // the sample machine has 4-core nodes
  const auto result =
      read_swf_file(std::string(DMSCHED_TEST_DATA_DIR) + "/sample.swf", opts);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.jobs_accepted, 30u);
  EXPECT_EQ(result.lines_malformed, 0u);
  const Trace& t = result.trace;
  ASSERT_EQ(t.size(), 30u);
  // job 1: 8 procs -> 2 nodes; 4 GiB/proc -> 16 GiB/node
  EXPECT_EQ(t.job(0).nodes, 2);
  EXPECT_EQ(t.job(0).mem_per_node, gib(std::int64_t{16}));
  EXPECT_EQ(t.job(0).runtime, seconds(std::int64_t{3600}));
  // the widest job (48 procs) becomes 12 nodes
  std::int32_t max_nodes = 0;
  for (const Job& j : t.jobs()) max_nodes = std::max(max_nodes, j.nodes);
  EXPECT_EQ(max_nodes, 12);
  // span: submissions 0..6300 s
  EXPECT_DOUBLE_EQ(t.span().seconds(), 6300.0);
}

TEST(Swf, BundledSampleIsSimulatable) {
  const auto result = read_swf_file(
      std::string(DMSCHED_TEST_DATA_DIR) + "/sample.swf", SwfOptions{});
  ASSERT_TRUE(result.ok());
  // every job has the invariants the engine relies on
  for (const Job& j : result.trace.jobs()) {
    EXPECT_GT(j.nodes, 0);
    EXPECT_GE(j.walltime, j.runtime);
    EXPECT_GT(j.mem_per_node, Bytes{0});
  }
}

TEST(Swf, MissingFileIsHardError) {
  const auto result = read_swf_file("/no/such/file.swf", SwfOptions{});
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("cannot open"), std::string::npos);
}

TEST(Swf, RoundTripPreservesJobs) {
  using testing::job;
  const Trace original = testing::trace_of(
      {job(0).at_h(0.0).nodes(4).mem_gib(32).runtime_h(1.0).walltime_h(2.0),
       job(1).at_h(1.0).nodes(1).mem_gib(100).runtime_h(0.5).walltime_h(1.0)});
  std::stringstream buffer;
  const SwfOptions opts;
  write_swf(buffer, original, opts);
  const auto result = read_swf(buffer, opts, "roundtrip");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.trace.size(), original.size());
  for (JobId i = 0; i < original.size(); ++i) {
    const Job& a = original.job(i);
    const Job& b = result.trace.job(i);
    EXPECT_EQ(a.submit.usec(), b.submit.usec());
    EXPECT_EQ(a.nodes, b.nodes);
    EXPECT_EQ(a.runtime.usec(), b.runtime.usec());
    EXPECT_EQ(a.walltime.usec(), b.walltime.usec());
    // memory rounds to whole KiB in SWF; these are exact GiB
    EXPECT_EQ(a.mem_per_node, b.mem_per_node);
  }
}

}  // namespace
}  // namespace dmsched
