#include "workload/synthetic.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace dmsched {
namespace {

SyntheticSpec small_spec() {
  SyntheticSpec spec;
  spec.job_count = 500;
  return spec;
}

TEST(Synthetic, DeterministicInSeed) {
  const Trace a = generate_trace(small_spec(), 42);
  const Trace b = generate_trace(small_spec(), 42);
  ASSERT_EQ(a.size(), b.size());
  for (JobId i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.job(i).submit, b.job(i).submit);
    EXPECT_EQ(a.job(i).nodes, b.job(i).nodes);
    EXPECT_EQ(a.job(i).runtime, b.job(i).runtime);
    EXPECT_EQ(a.job(i).mem_per_node, b.job(i).mem_per_node);
    EXPECT_EQ(a.job(i).sensitivity, b.job(i).sensitivity);
  }
}

TEST(Synthetic, DifferentSeedsDiffer) {
  const Trace a = generate_trace(small_spec(), 1);
  const Trace b = generate_trace(small_spec(), 2);
  bool any_diff = false;
  for (JobId i = 0; i < a.size() && !any_diff; ++i) {
    any_diff = a.job(i).submit != b.job(i).submit ||
               a.job(i).nodes != b.job(i).nodes;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Synthetic, ProducesRequestedJobCount) {
  EXPECT_EQ(generate_trace(small_spec(), 3).size(), 500u);
}

TEST(Synthetic, AllInvariantsHold) {
  const Trace t = generate_trace(small_spec(), 7);
  for (const Job& j : t.jobs()) {
    EXPECT_GT(j.nodes, 0);
    EXPECT_GT(j.runtime, SimTime{});
    EXPECT_GE(j.walltime, j.runtime);
    EXPECT_GT(j.mem_per_node, Bytes{0});
  }
}

TEST(Synthetic, RuntimeRespectsClip) {
  SyntheticSpec spec = small_spec();
  spec.runtime_min_sec = 300.0;
  spec.runtime_max_sec = 7200.0;
  const Trace t = generate_trace(spec, 11);
  for (const Job& j : t.jobs()) {
    EXPECT_GE(j.runtime.seconds(), 300.0);
    EXPECT_LE(j.runtime.seconds(), 7200.0);
  }
}

TEST(Synthetic, NodesRespectBucketBounds) {
  SyntheticSpec spec = small_spec();
  spec.node_buckets = {{4, 32, 1.0}};
  const Trace t = generate_trace(spec, 13);
  for (const Job& j : t.jobs()) {
    EXPECT_GE(j.nodes, 4);
    EXPECT_LE(j.nodes, 32);
  }
}

TEST(Synthetic, MemoryBandsRespectBounds) {
  SyntheticSpec spec = small_spec();
  spec.reference_node_mem = gib(std::int64_t{100});
  spec.mem_bands = {{0.5, 0.8, 1.0}};
  const Trace t = generate_trace(spec, 17);
  for (const Job& j : t.jobs()) {
    EXPECT_GE(j.mem_per_node.gib(), 50.0 - 1e-6);
    EXPECT_LE(j.mem_per_node.gib(), 80.0 + 1e-6);
  }
}

TEST(Synthetic, WalltimeRoundingApplies) {
  SyntheticSpec spec = small_spec();
  spec.walltime_rounding_sec = 900.0;
  spec.walltime_exact_fraction = 0.0;
  const Trace t = generate_trace(spec, 19);
  std::size_t rounded = 0;
  for (const Job& j : t.jobs()) {
    const auto sec = static_cast<std::int64_t>(j.walltime.seconds());
    if (sec % 900 == 0) ++rounded;
  }
  // All non-clamped walltimes are multiples of 15 min; clamping to runtime
  // (rare) may break it, so require an overwhelming majority.
  EXPECT_GE(rounded, t.size() * 9 / 10);
}

TEST(Synthetic, SubmissionsAreOrdered) {
  const Trace t = generate_trace(small_spec(), 23);
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_GE(t.jobs()[i].submit, t.jobs()[i - 1].submit);
  }
}

TEST(Synthetic, SensitivityWeightsRespected) {
  SyntheticSpec spec = small_spec();
  spec.job_count = 3000;
  spec.sensitivity_weights = {1.0, 0.0, 0.0};
  const Trace t = generate_trace(spec, 29);
  for (const Job& j : t.jobs()) {
    EXPECT_EQ(j.sensitivity, MemSensitivity::kComputeBound);
  }
}

TEST(Synthetic, TargetLoadIsHit) {
  SyntheticSpec spec = small_spec();
  spec.job_count = 2000;
  const Trace t = generate_trace_with_load(spec, 31, 1024, 0.85);
  EXPECT_NEAR(t.offered_load(1024), 0.85, 0.02);
}

TEST(Synthetic, TargetLoadWorksAcrossTargets) {
  SyntheticSpec spec = small_spec();
  spec.job_count = 2000;
  for (const double load : {0.5, 1.0, 1.3}) {
    const Trace t = generate_trace_with_load(spec, 37, 1024, load);
    EXPECT_NEAR(t.offered_load(1024), load, 0.03) << "target " << load;
  }
}

TEST(Synthetic, PoissonArrivalGapsLookExponential) {
  SyntheticSpec spec = small_spec();
  spec.job_count = 5000;
  spec.diurnal_amplitude = 0.0;  // homogeneous
  spec.arrival_rate_per_hour = 60.0;
  const Trace t = generate_trace(spec, 41);
  double sum_gap = 0.0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    sum_gap += (t.jobs()[i].submit - t.jobs()[i - 1].submit).seconds();
  }
  const double mean_gap = sum_gap / static_cast<double>(t.size() - 1);
  EXPECT_NEAR(mean_gap, 60.0, 3.0);  // 60 jobs/h -> 60 s mean gap
}

}  // namespace
}  // namespace dmsched
