#include "memory/placement.hpp"

#include <gtest/gtest.h>

#include "testing/builders.hpp"

namespace dmsched {
namespace {

using testing::job;
using testing::tiny_cluster;

// tiny_cluster: 4 racks × 4 nodes, 64 GiB local per node.

PlacementPolicy policy(NodeSelection sel = NodeSelection::kFirstFit,
                       PoolRouting route = PoolRouting::kRackThenGlobal) {
  return {sel, route};
}

TEST(Placement, SnapshotMatchesCluster) {
  Cluster c(tiny_cluster(gib(std::int64_t{100}), gib(std::int64_t{10})));
  const ResourceState s = snapshot(c);
  ASSERT_EQ(s.free_nodes.size(), 4u);
  EXPECT_EQ(s.total_free_nodes(), 16);
  EXPECT_EQ(s.pool_free[0], gib(std::int64_t{100}));
  EXPECT_EQ(s.global_free, gib(std::int64_t{10}));
}

TEST(Placement, LocalJobTakesNodesOnly) {
  const ClusterConfig cfg = tiny_cluster();
  const auto plan = compute_take(empty_state(cfg), cfg,
                                 job(0).nodes(3).mem_gib(32), policy());
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->node_total(), 3);
  EXPECT_EQ(plan->local_per_node, gib(std::int64_t{32}));
  EXPECT_TRUE(plan->far_per_node.is_zero());
  EXPECT_TRUE(plan->rack_pool_total().is_zero());
  EXPECT_TRUE(plan->global_total().is_zero());
}

TEST(Placement, DeficitComesFromRackPool) {
  const ClusterConfig cfg = tiny_cluster(gib(std::int64_t{100}));
  const auto plan = compute_take(empty_state(cfg), cfg,
                                 job(0).nodes(2).mem_gib(80), policy());
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->local_per_node, gib(std::int64_t{64}));
  EXPECT_EQ(plan->far_per_node, gib(std::int64_t{16}));
  EXPECT_EQ(plan->rack_pool_total(), gib(std::int64_t{32}));
  EXPECT_TRUE(plan->global_total().is_zero());
}

TEST(Placement, NoPoolMeansDeficitJobCannotStart) {
  const ClusterConfig cfg = tiny_cluster();  // no pools
  EXPECT_FALSE(compute_take(empty_state(cfg), cfg, job(0).mem_gib(80),
                            policy())
                   .has_value());
  EXPECT_FALSE(feasible_on_empty(cfg, job(0).mem_gib(80), policy()));
}

TEST(Placement, InsufficientNodesFails) {
  const ClusterConfig cfg = tiny_cluster();
  EXPECT_FALSE(compute_take(empty_state(cfg), cfg,
                            job(0).nodes(17).mem_gib(8), policy())
                   .has_value());
}

TEST(Placement, RackPoolTooSmallSpillsToGlobal) {
  // 20 GiB deficit per node; rack pool funds 1 node (25 GiB), global the rest.
  const ClusterConfig cfg =
      tiny_cluster(gib(std::int64_t{25}), gib(std::int64_t{1000}));
  const auto plan = compute_take(empty_state(cfg), cfg,
                                 job(0).nodes(4).mem_gib(84), policy());
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->far_per_node, gib(std::int64_t{20}));
  // 4 nodes in one rack: 1 funded by rack pool (20 of 25), 3 by global
  EXPECT_EQ(plan->rack_pool_total(), gib(std::int64_t{20}));
  EXPECT_EQ(plan->global_total(), gib(std::int64_t{60}));
}

TEST(Placement, RackOnlyRoutingRefusesGlobal) {
  const ClusterConfig cfg =
      tiny_cluster(gib(std::int64_t{25}), gib(std::int64_t{1000}));
  const auto plan =
      compute_take(empty_state(cfg), cfg, job(0).nodes(4).mem_gib(84),
                   policy(NodeSelection::kFirstFit, PoolRouting::kRackOnly));
  // each rack funds one node; 4 racks × 1 node = enough nodes
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->global_total().is_zero());
  EXPECT_EQ(plan->takes.size(), 4u);  // spread across all racks
}

TEST(Placement, GlobalOnlyRoutingIgnoresRackPools) {
  const ClusterConfig cfg =
      tiny_cluster(gib(std::int64_t{1000}), gib(std::int64_t{100}));
  const auto plan =
      compute_take(empty_state(cfg), cfg, job(0).nodes(2).mem_gib(80),
                   policy(NodeSelection::kFirstFit, PoolRouting::kGlobalOnly));
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->rack_pool_total().is_zero());
  EXPECT_EQ(plan->global_total(), gib(std::int64_t{32}));
}

TEST(Placement, ApplyAndReleaseRoundTrip) {
  const ClusterConfig cfg = tiny_cluster(gib(std::int64_t{100}));
  ResourceState state = empty_state(cfg);
  const ResourceState before = state;
  const auto plan = compute_take(state, cfg, job(0).nodes(4).mem_gib(80),
                                 policy());
  ASSERT_TRUE(plan.has_value());
  apply_take(state, *plan);
  EXPECT_EQ(state.total_free_nodes(), 12);
  release_take(state, *plan);
  EXPECT_EQ(state.free_nodes, before.free_nodes);
  EXPECT_EQ(state.pool_free, before.pool_free);
  EXPECT_EQ(state.global_free, before.global_free);
}

TEST(Placement, ApplyOvercommitAborts) {
  const ClusterConfig cfg = tiny_cluster();
  ResourceState state = empty_state(cfg);
  const auto plan = compute_take(state, cfg, job(0).nodes(16).mem_gib(8),
                                 policy());
  ASSERT_TRUE(plan.has_value());
  apply_take(state, *plan);
  EXPECT_DEATH(apply_take(state, *plan), "overcommit");
}

TEST(Placement, PackRacksMinimizesRackCount) {
  const ClusterConfig cfg = tiny_cluster();
  ResourceState state = empty_state(cfg);
  state.free_nodes = {1, 4, 2, 3};  // rack 1 is emptiest
  const auto plan = compute_take(state, cfg, job(0).nodes(4).mem_gib(8),
                                 policy(NodeSelection::kPackRacks));
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->takes.size(), 1u);
  EXPECT_EQ(plan->takes[0].rack, 1);
}

TEST(Placement, FirstFitWalksRackIndexOrder) {
  const ClusterConfig cfg = tiny_cluster();
  ResourceState state = empty_state(cfg);
  state.free_nodes = {1, 4, 2, 3};
  const auto plan = compute_take(state, cfg, job(0).nodes(4).mem_gib(8),
                                 policy(NodeSelection::kFirstFit));
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->takes.size(), 2u);
  EXPECT_EQ(plan->takes[0].rack, 0);
  EXPECT_EQ(plan->takes[0].nodes, 1);
  EXPECT_EQ(plan->takes[1].rack, 1);
  EXPECT_EQ(plan->takes[1].nodes, 3);
}

TEST(Placement, PoolAwareDeficitJobChasesPoolRichRacks) {
  const ClusterConfig cfg = tiny_cluster(gib(std::int64_t{100}));
  ResourceState state = empty_state(cfg);
  state.pool_free = {gib(std::int64_t{5}), gib(std::int64_t{100}),
                     gib(std::int64_t{50}), gib(std::int64_t{5})};
  const auto plan = compute_take(state, cfg, job(0).nodes(2).mem_gib(80),
                                 policy(NodeSelection::kPoolAware));
  ASSERT_TRUE(plan.has_value());
  ASSERT_GE(plan->takes.size(), 1u);
  EXPECT_EQ(plan->takes[0].rack, 1);  // richest pool first
}

TEST(Placement, PoolAwareLocalJobAvoidsPoolRichRacks) {
  const ClusterConfig cfg = tiny_cluster(gib(std::int64_t{100}));
  ResourceState state = empty_state(cfg);
  state.pool_free = {gib(std::int64_t{100}), gib(std::int64_t{0}),
                     gib(std::int64_t{50}), gib(std::int64_t{100})};
  const auto plan = compute_take(state, cfg, job(0).nodes(2).mem_gib(8),
                                 policy(NodeSelection::kPoolAware));
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->takes[0].rack, 1);  // poorest pool first for local jobs
}

TEST(Placement, MaterializeAssignsLowestFreeNodes) {
  Cluster c(tiny_cluster(gib(std::int64_t{100})));
  const Job j = job(7).nodes(3).mem_gib(80);
  const auto alloc = plan_start(c, j, policy());
  ASSERT_TRUE(alloc.has_value());
  EXPECT_EQ(alloc->job, 7u);
  EXPECT_EQ(alloc->nodes, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(alloc->far_per_node, gib(std::int64_t{16}));
  // commit must accept the materialized plan verbatim
  c.commit(*alloc);
  c.audit();
}

TEST(Placement, MaterializedGlobalDrawIsSingleEntry) {
  Cluster c(tiny_cluster(Bytes{0}, gib(std::int64_t{1000})));
  const Job j = job(3).nodes(4).mem_gib(80);
  const auto alloc = plan_start(c, j, policy());
  ASSERT_TRUE(alloc.has_value());
  std::size_t global_draws = 0;
  for (const auto& d : alloc->draws) {
    if (d.rack == kGlobalPoolRack) ++global_draws;
  }
  EXPECT_EQ(global_draws, 1u);
  c.commit(*alloc);
  c.audit();
}

TEST(Placement, PlanStartFailsCleanlyWhenFull) {
  Cluster c(tiny_cluster());
  const auto big = plan_start(c, job(0).nodes(16).mem_gib(8), policy());
  ASSERT_TRUE(big.has_value());
  c.commit(*big);
  EXPECT_FALSE(plan_start(c, job(1).nodes(1).mem_gib(8), policy()).has_value());
}

TEST(Placement, FeasibleOnEmptyMatchesComputeTake) {
  const ClusterConfig cfg = tiny_cluster(gib(std::int64_t{30}));
  const Job fits = job(0).nodes(4).mem_gib(70);     // deficit 6 × 4 = 24 < 30
  const Job too_big = job(1).nodes(4).mem_gib(200); // deficit 136 × 4
  EXPECT_TRUE(feasible_on_empty(cfg, fits, policy()));
  EXPECT_FALSE(feasible_on_empty(cfg, too_big, policy()));
}

TEST(Placement, ToStringCoverage) {
  EXPECT_STREQ(to_string(NodeSelection::kFirstFit), "first-fit");
  EXPECT_STREQ(to_string(NodeSelection::kPackRacks), "pack-racks");
  EXPECT_STREQ(to_string(NodeSelection::kSpreadRacks), "spread-racks");
  EXPECT_STREQ(to_string(NodeSelection::kPoolAware), "pool-aware");
  EXPECT_STREQ(to_string(PoolRouting::kRackOnly), "rack-only");
  EXPECT_STREQ(to_string(PoolRouting::kRackThenGlobal), "rack-then-global");
  EXPECT_STREQ(to_string(PoolRouting::kGlobalOnly), "global-only");
}

}  // namespace
}  // namespace dmsched
