#include "memory/slowdown.hpp"

#include <gtest/gtest.h>

#include "testing/builders.hpp"

namespace dmsched {
namespace {

using testing::job;

TEST(Slowdown, NoFarMemoryNoDilation) {
  const SlowdownModel m;
  EXPECT_DOUBLE_EQ(m.dilation(0.0, 0.0, MemSensitivity::kBalanced), 1.0);
}

TEST(Slowdown, LinearFormula) {
  SlowdownModel m;
  m.beta_rack = 0.3;
  m.beta_global = 0.5;
  EXPECT_DOUBLE_EQ(m.dilation(0.5, 0.0, MemSensitivity::kBalanced), 1.15);
  EXPECT_DOUBLE_EQ(m.dilation(0.0, 0.5, MemSensitivity::kBalanced), 1.25);
  EXPECT_DOUBLE_EQ(m.dilation(0.2, 0.2, MemSensitivity::kBalanced),
                   1.0 + 0.2 * 0.3 + 0.2 * 0.5);
}

TEST(Slowdown, SensitivityScalesPenalty) {
  SlowdownModel m;
  m.beta_rack = 0.4;
  const double bal = m.dilation(0.5, 0.0, MemSensitivity::kBalanced);
  const double cpu = m.dilation(0.5, 0.0, MemSensitivity::kComputeBound);
  const double bw = m.dilation(0.5, 0.0, MemSensitivity::kBandwidthBound);
  EXPECT_DOUBLE_EQ(bal, 1.2);
  EXPECT_DOUBLE_EQ(cpu, 1.0 + 0.2 * m.sens_compute);
  EXPECT_DOUBLE_EQ(bw, 1.0 + 0.2 * m.sens_bandwidth);
  EXPECT_LT(cpu, bal);
  EXPECT_GT(bw, bal);
}

TEST(Slowdown, SaturatingIsConcave) {
  SlowdownModel m;
  m.kind = SlowdownModel::Kind::kSaturating;
  m.beta_rack = 0.4;
  m.gamma = 0.5;
  const double at_quarter = m.dilation(0.25, 0.0, MemSensitivity::kBalanced);
  const double at_full = m.dilation(1.0, 0.0, MemSensitivity::kBalanced);
  // concave: quarter of the fraction gives half the full penalty
  EXPECT_DOUBLE_EQ(at_quarter - 1.0, (at_full - 1.0) / 2.0);
  EXPECT_GT(at_quarter - 1.0, 0.25 * (at_full - 1.0));
}

TEST(Slowdown, MonotoneInFraction) {
  const SlowdownModel m;
  double prev = 0.0;
  for (double phi = 0.0; phi <= 1.0; phi += 0.1) {
    const double d = m.dilation(phi, 0.0, MemSensitivity::kBalanced);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST(Slowdown, InvalidFractionAborts) {
  const SlowdownModel m;
  EXPECT_DEATH((void)m.dilation(0.8, 0.3, MemSensitivity::kBalanced),
               "fractions");
  EXPECT_DEATH((void)m.dilation(-0.1, 0.0, MemSensitivity::kBalanced),
               "fractions");
}

TEST(Slowdown, DilationForAllocation) {
  SlowdownModel m;
  m.beta_rack = 0.3;
  m.beta_global = 0.6;
  Allocation a;
  a.job = 0;
  a.nodes = {0, 1};
  a.local_per_node = gib(std::int64_t{60});
  a.far_per_node = gib(std::int64_t{40});
  a.draws = {{0, gib(std::int64_t{50})},
             {kGlobalPoolRack, gib(std::int64_t{30})}};
  const Job j = job(0).nodes(2).mem_gib(100);
  // phi_rack = 50/200, phi_global = 30/200
  EXPECT_DOUBLE_EQ(m.dilation_for(a, j), 1.0 + 0.25 * 0.3 + 0.15 * 0.6);
}

TEST(Slowdown, DilationBytesMatchesDilation) {
  const SlowdownModel m;
  const double via_bytes =
      m.dilation_bytes(gib(std::int64_t{25}), gib(std::int64_t{25}),
                       gib(std::int64_t{100}), MemSensitivity::kBalanced);
  EXPECT_DOUBLE_EQ(via_bytes,
                   m.dilation(0.25, 0.25, MemSensitivity::kBalanced));
}

TEST(Slowdown, DilationBytesZeroTotal) {
  const SlowdownModel m;
  EXPECT_DOUBLE_EQ(m.dilation_bytes(Bytes{0}, Bytes{0}, Bytes{0},
                                    MemSensitivity::kBalanced),
                   1.0);
}

TEST(Slowdown, WorstCaseCoversBothRoutes) {
  SlowdownModel m;
  m.beta_rack = 0.3;
  m.beta_global = 0.6;
  const Job j = job(0).mem_gib(100);
  // deficit 40/100 with local 60: worst case via global
  const double wc = m.worst_case_dilation(j, gib(std::int64_t{60}));
  EXPECT_DOUBLE_EQ(wc, 1.0 + 0.4 * 0.6);
  EXPECT_GE(wc, m.dilation(0.4, 0.0, j.sensitivity));
}

TEST(Slowdown, WorstCaseIsOneWhenJobFitsLocally) {
  const SlowdownModel m;
  const Job j = job(0).mem_gib(10);
  EXPECT_DOUBLE_EQ(m.worst_case_dilation(j, gib(std::int64_t{64})), 1.0);
}

TEST(Slowdown, SensitivityMultiplierAccessors) {
  SlowdownModel m;
  EXPECT_DOUBLE_EQ(m.sensitivity_multiplier(MemSensitivity::kComputeBound),
                   m.sens_compute);
  EXPECT_DOUBLE_EQ(m.sensitivity_multiplier(MemSensitivity::kBalanced),
                   m.sens_balanced);
  EXPECT_DOUBLE_EQ(m.sensitivity_multiplier(MemSensitivity::kBandwidthBound),
                   m.sens_bandwidth);
}

}  // namespace
}  // namespace dmsched
