#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dmsched::sim {
namespace {

EventFn noop() {
  return [](SimTime) {};
}

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_time(), kTimeInfinity);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.push(seconds(std::int64_t{3}), EventClass::kTimer, noop());
  q.push(seconds(std::int64_t{1}), EventClass::kTimer, noop());
  q.push(seconds(std::int64_t{2}), EventClass::kTimer, noop());
  EXPECT_EQ(q.pop().time, seconds(std::int64_t{1}));
  EXPECT_EQ(q.pop().time, seconds(std::int64_t{2}));
  EXPECT_EQ(q.pop().time, seconds(std::int64_t{3}));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ClassBreaksTimestampTies) {
  EventQueue q;
  const SimTime t = seconds(std::int64_t{5});
  q.push(t, EventClass::kSchedule, noop());
  q.push(t, EventClass::kSubmission, noop());
  q.push(t, EventClass::kCompletion, noop());
  EXPECT_EQ(q.pop().cls, EventClass::kCompletion);
  EXPECT_EQ(q.pop().cls, EventClass::kSubmission);
  EXPECT_EQ(q.pop().cls, EventClass::kSchedule);
}

TEST(EventQueue, InsertionOrderBreaksFullTies) {
  EventQueue q;
  const SimTime t = seconds(std::int64_t{5});
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.push(t, EventClass::kTimer, [&order, i](SimTime) { order.push_back(i); });
  }
  while (!q.empty()) {
    auto f = q.pop();
    f.fn(f.time);
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, NextTimeSeesEarliestLive) {
  EventQueue q;
  q.push(seconds(std::int64_t{9}), EventClass::kTimer, noop());
  const EventId early =
      q.push(seconds(std::int64_t{2}), EventClass::kTimer, noop());
  EXPECT_EQ(q.next_time(), seconds(std::int64_t{2}));
  EXPECT_TRUE(q.cancel(early));
  EXPECT_EQ(q.next_time(), seconds(std::int64_t{9}));
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue q;
  const EventId id = q.push(seconds(std::int64_t{1}), EventClass::kTimer, noop());
  q.push(seconds(std::int64_t{2}), EventClass::kTimer, noop());
  EXPECT_EQ(q.size(), 2u);
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.pop().time, seconds(std::int64_t{2}));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.push(seconds(std::int64_t{1}), EventClass::kTimer, noop());
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterFireFails) {
  EventQueue q;
  const EventId id = q.push(seconds(std::int64_t{1}), EventClass::kTimer, noop());
  (void)q.pop();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(999));
}

TEST(EventQueue, PopSkipsCancelledFront) {
  EventQueue q;
  const EventId a = q.push(seconds(std::int64_t{1}), EventClass::kTimer, noop());
  const EventId b = q.push(seconds(std::int64_t{1}), EventClass::kTimer, noop());
  q.push(seconds(std::int64_t{2}), EventClass::kTimer, noop());
  EXPECT_TRUE(q.cancel(a));
  EXPECT_TRUE(q.cancel(b));
  EXPECT_EQ(q.pop().time, seconds(std::int64_t{2}));
}

// The cancel() semantics matrix, pinned so a queue rewrite cannot drift:
// cancel-of-pending → true (exactly once), cancel-of-fired → false,
// double-cancel → false, never-issued id → false. Ids are never reused, so
// every answer is permanent.
TEST(EventQueue, CancelSemanticsMatrix) {
  EventQueue q;
  const EventId fired =
      q.push(seconds(std::int64_t{1}), EventClass::kTimer, noop());
  const EventId pending =
      q.push(seconds(std::int64_t{2}), EventClass::kTimer, noop());
  const EventId cancelled =
      q.push(seconds(std::int64_t{3}), EventClass::kTimer, noop());

  EXPECT_EQ(q.pop().id, fired);

  EXPECT_FALSE(q.cancel(fired)) << "cancel of a fired id";
  EXPECT_TRUE(q.cancel(cancelled)) << "cancel of a pending id";
  EXPECT_FALSE(q.cancel(cancelled)) << "double cancel";
  EXPECT_FALSE(q.cancel(fired + 1000)) << "never-issued id";
  EXPECT_TRUE(q.cancel(pending)) << "remaining pending id";
  EXPECT_FALSE(q.cancel(pending)) << "double cancel after drain";
  EXPECT_TRUE(q.empty());
  // Answers stay permanent even after new pushes (no id reuse).
  q.push(seconds(std::int64_t{4}), EventClass::kTimer, noop());
  EXPECT_FALSE(q.cancel(fired));
  EXPECT_FALSE(q.cancel(cancelled));
}

TEST(EventQueue, SizeTracksCancellationsImmediately) {
  // No tombstones: a cancelled event leaves size() and next_time() at once,
  // not lazily at pop time.
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 16; ++i) {
    ids.push_back(
        q.push(seconds(std::int64_t{i + 1}), EventClass::kTimer, noop()));
  }
  for (int i = 0; i < 16; i += 2) EXPECT_TRUE(q.cancel(ids[i]));
  EXPECT_EQ(q.size(), 8u);
  EXPECT_EQ(q.next_time(), seconds(std::int64_t{2}));
  int popped = 0;
  while (!q.empty()) {
    const auto f = q.pop();
    EXPECT_EQ(f.time.usec() / 1'000'000 % 2, 0) << "cancelled event fired";
    ++popped;
  }
  EXPECT_EQ(popped, 8);
}

TEST(EventQueue, CancelEverythingLeavesAnEmptyQueue) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(
        q.push(seconds(std::int64_t{100 - i}), EventClass::kTimer, noop()));
  }
  for (const EventId id : ids) EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_time(), kTimeInfinity);
  // The queue is still usable afterwards.
  q.push(seconds(std::int64_t{1}), EventClass::kTimer, noop());
  EXPECT_EQ(q.pop().time, seconds(std::int64_t{1}));
}

TEST(EventQueue, ManyEventsStressOrder) {
  EventQueue q;
  // pseudo-random times, verify nondecreasing pop order
  std::uint64_t x = 88172645463325252ULL;
  for (int i = 0; i < 2000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    q.push(usec(static_cast<std::int64_t>(x % 100000)), EventClass::kTimer,
           noop());
  }
  SimTime last{};
  while (!q.empty()) {
    const auto f = q.pop();
    EXPECT_GE(f.time, last);
    last = f.time;
  }
}

}  // namespace
}  // namespace dmsched::sim
