#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dmsched::sim {
namespace {

EventFn noop() {
  return [](SimTime) {};
}

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_time(), kTimeInfinity);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.push(seconds(std::int64_t{3}), EventClass::kTimer, noop());
  q.push(seconds(std::int64_t{1}), EventClass::kTimer, noop());
  q.push(seconds(std::int64_t{2}), EventClass::kTimer, noop());
  EXPECT_EQ(q.pop().time, seconds(std::int64_t{1}));
  EXPECT_EQ(q.pop().time, seconds(std::int64_t{2}));
  EXPECT_EQ(q.pop().time, seconds(std::int64_t{3}));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ClassBreaksTimestampTies) {
  EventQueue q;
  const SimTime t = seconds(std::int64_t{5});
  q.push(t, EventClass::kSchedule, noop());
  q.push(t, EventClass::kSubmission, noop());
  q.push(t, EventClass::kCompletion, noop());
  EXPECT_EQ(q.pop().cls, EventClass::kCompletion);
  EXPECT_EQ(q.pop().cls, EventClass::kSubmission);
  EXPECT_EQ(q.pop().cls, EventClass::kSchedule);
}

TEST(EventQueue, InsertionOrderBreaksFullTies) {
  EventQueue q;
  const SimTime t = seconds(std::int64_t{5});
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.push(t, EventClass::kTimer, [&order, i](SimTime) { order.push_back(i); });
  }
  while (!q.empty()) {
    auto f = q.pop();
    f.fn(f.time);
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, NextTimeSeesEarliestLive) {
  EventQueue q;
  q.push(seconds(std::int64_t{9}), EventClass::kTimer, noop());
  const EventId early =
      q.push(seconds(std::int64_t{2}), EventClass::kTimer, noop());
  EXPECT_EQ(q.next_time(), seconds(std::int64_t{2}));
  EXPECT_TRUE(q.cancel(early));
  EXPECT_EQ(q.next_time(), seconds(std::int64_t{9}));
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue q;
  const EventId id = q.push(seconds(std::int64_t{1}), EventClass::kTimer, noop());
  q.push(seconds(std::int64_t{2}), EventClass::kTimer, noop());
  EXPECT_EQ(q.size(), 2u);
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.pop().time, seconds(std::int64_t{2}));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.push(seconds(std::int64_t{1}), EventClass::kTimer, noop());
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterFireFails) {
  EventQueue q;
  const EventId id = q.push(seconds(std::int64_t{1}), EventClass::kTimer, noop());
  (void)q.pop();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(999));
}

TEST(EventQueue, PopSkipsCancelledFront) {
  EventQueue q;
  const EventId a = q.push(seconds(std::int64_t{1}), EventClass::kTimer, noop());
  const EventId b = q.push(seconds(std::int64_t{1}), EventClass::kTimer, noop());
  q.push(seconds(std::int64_t{2}), EventClass::kTimer, noop());
  EXPECT_TRUE(q.cancel(a));
  EXPECT_TRUE(q.cancel(b));
  EXPECT_EQ(q.pop().time, seconds(std::int64_t{2}));
}

TEST(EventQueue, ManyEventsStressOrder) {
  EventQueue q;
  // pseudo-random times, verify nondecreasing pop order
  std::uint64_t x = 88172645463325252ULL;
  for (int i = 0; i < 2000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    q.push(usec(static_cast<std::int64_t>(x % 100000)), EventClass::kTimer,
           noop());
  }
  SimTime last{};
  while (!q.empty()) {
    const auto f = q.pop();
    EXPECT_GE(f.time, last);
    last = f.time;
  }
}

}  // namespace
}  // namespace dmsched::sim
