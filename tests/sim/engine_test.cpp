#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dmsched::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.now(), SimTime{});
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, RunAdvancesClock) {
  Engine e;
  e.schedule_at(seconds(std::int64_t{10}), EventClass::kTimer, [](SimTime) {});
  EXPECT_EQ(e.run(), 1u);
  EXPECT_EQ(e.now(), seconds(std::int64_t{10}));
}

TEST(Engine, HandlerSeesFiringTime) {
  Engine e;
  SimTime seen{};
  e.schedule_at(seconds(std::int64_t{7}), EventClass::kTimer,
                [&](SimTime t) { seen = t; });
  e.run();
  EXPECT_EQ(seen, seconds(std::int64_t{7}));
}

TEST(Engine, ScheduleInIsRelative) {
  Engine e;
  std::vector<double> fire_times;
  e.schedule_at(seconds(std::int64_t{5}), EventClass::kTimer, [&](SimTime) {
    e.schedule_in(seconds(std::int64_t{3}), EventClass::kTimer,
                  [&](SimTime t2) { fire_times.push_back(t2.seconds()); });
  });
  e.run();
  ASSERT_EQ(fire_times.size(), 1u);
  EXPECT_DOUBLE_EQ(fire_times[0], 8.0);
}

TEST(Engine, HandlersMayScheduleAtCurrentTime) {
  Engine e;
  int fired = 0;
  e.schedule_at(seconds(std::int64_t{1}), EventClass::kSubmission, [&](SimTime) {
    e.schedule_at(e.now(), EventClass::kSchedule, [&](SimTime) { ++fired; });
  });
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), seconds(std::int64_t{1}));
}

TEST(Engine, SchedulingInThePastAborts) {
  Engine e;
  e.schedule_at(seconds(std::int64_t{5}), EventClass::kTimer, [&](SimTime) {
    EXPECT_DEATH(e.schedule_at(seconds(std::int64_t{1}), EventClass::kTimer,
                               [](SimTime) {}),
                 "time travel");
  });
  e.run();
}

TEST(Engine, CancelPreventsFiring) {
  Engine e;
  int fired = 0;
  const EventId id = e.schedule_at(seconds(std::int64_t{3}), EventClass::kTimer,
                                   [&](SimTime) { ++fired; });
  EXPECT_TRUE(e.cancel(id));
  e.run();
  EXPECT_EQ(fired, 0);
}

TEST(Engine, RunUntilStopsAtHorizon) {
  Engine e;
  std::vector<int> fired;
  for (int i = 1; i <= 5; ++i) {
    e.schedule_at(seconds(std::int64_t{i}), EventClass::kTimer,
                  [&fired, i](SimTime) { fired.push_back(i); });
  }
  e.run_until(seconds(std::int64_t{3}));
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));  // inclusive horizon
  EXPECT_EQ(e.now(), seconds(std::int64_t{3}));
  e.run();
  EXPECT_EQ(fired.size(), 5u);
}

TEST(Engine, RunUntilAdvancesClockEvenWhenIdle) {
  Engine e;
  e.run_until(seconds(std::int64_t{42}));
  EXPECT_EQ(e.now(), seconds(std::int64_t{42}));
}

TEST(Engine, StepProcessesExactlyOne) {
  Engine e;
  int fired = 0;
  e.schedule_at(seconds(std::int64_t{1}), EventClass::kTimer,
                [&](SimTime) { ++fired; });
  e.schedule_at(seconds(std::int64_t{2}), EventClass::kTimer,
                [&](SimTime) { ++fired; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(e.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(e.step());
}

TEST(Engine, EventsProcessedCounter) {
  Engine e;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(seconds(std::int64_t{i + 1}), EventClass::kTimer,
                  [](SimTime) {});
  }
  e.run();
  EXPECT_EQ(e.events_processed(), 10u);
}

TEST(Engine, CascadingEventsAllRun) {
  // Each event schedules the next: a 100-deep chain must drain fully.
  Engine e;
  int count = 0;
  std::function<void(SimTime)> chain = [&](SimTime) {
    if (++count < 100) {
      e.schedule_in(seconds(std::int64_t{1}), EventClass::kTimer, chain);
    }
  };
  e.schedule_at(seconds(std::int64_t{0}), EventClass::kTimer, chain);
  e.run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(e.now(), seconds(std::int64_t{99}));
}

TEST(Engine, SameTimeRespectsEventClassOrder) {
  Engine e;
  std::vector<EventClass> order;
  const SimTime t = seconds(std::int64_t{4});
  e.schedule_at(t, EventClass::kSchedule,
                [&](SimTime) { order.push_back(EventClass::kSchedule); });
  e.schedule_at(t, EventClass::kCompletion,
                [&](SimTime) { order.push_back(EventClass::kCompletion); });
  e.schedule_at(t, EventClass::kSubmission,
                [&](SimTime) { order.push_back(EventClass::kSubmission); });
  e.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], EventClass::kCompletion);
  EXPECT_EQ(order[1], EventClass::kSubmission);
  EXPECT_EQ(order[2], EventClass::kSchedule);
}

}  // namespace
}  // namespace dmsched::sim
