// Heavy-cancellation regression net for the event core.
//
// The indexed heap replaced the lazy-tombstone heap (see
// src/sim/event_queue.cpp); these tests pin the *observable* contract the
// rewrite must preserve under cancellation pressure:
//  - drained event order is exactly the (time, class, seq) total order over
//    the surviving events, checked against an independently computed
//    reference model;
//  - run_until() interleaved with cancellation fires the same events at the
//    same clock readings, horizon by horizon, even when the earliest
//    pending event is repeatedly the one cancelled (the old front-tombstone
//    worst case that made next_time() a linear scan).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include "sim/engine.hpp"

namespace dmsched::sim {
namespace {

/// Deterministic xorshift so the "random" schedule is identical in every
/// build (the simulation paths themselves must never use randomness).
struct XorShift {
  std::uint64_t x = 88172645463325252ULL;
  std::uint64_t next() {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  }
};

struct PlannedEvent {
  std::int64_t time_usec;
  EventClass cls;
  std::uint64_t seq;  // insertion order — the final tie-break
  int tag;
  bool cancelled = false;
};

constexpr EventClass kClasses[] = {EventClass::kCompletion,
                                   EventClass::kSubmission, EventClass::kTimer,
                                   EventClass::kSchedule};

/// The reference model: the (time, class, seq) total order over survivors.
std::vector<int> expected_order(std::vector<PlannedEvent> plan) {
  std::erase_if(plan, [](const PlannedEvent& e) { return e.cancelled; });
  std::sort(plan.begin(), plan.end(),
            [](const PlannedEvent& a, const PlannedEvent& b) {
              return std::tuple(a.time_usec, a.cls, a.seq) <
                     std::tuple(b.time_usec, b.cls, b.seq);
            });
  std::vector<int> tags;
  tags.reserve(plan.size());
  for (const PlannedEvent& e : plan) tags.push_back(e.tag);
  return tags;
}

TEST(Cancellation, DrainOrderMatchesTheTotalOrderModel) {
  // 2000 events at clustered timestamps (heavy ties), ~40% cancelled in a
  // deterministic pattern, including long runs of cancelled heap fronts.
  constexpr int kEvents = 2000;
  XorShift rng;
  Engine engine;
  std::vector<PlannedEvent> plan;
  std::vector<EventId> ids;
  std::vector<int> fired;
  plan.reserve(kEvents);
  for (int i = 0; i < kEvents; ++i) {
    // Only 50 distinct timestamps, so class and seq tie-breaks carry real
    // weight in the drain order.
    const auto t = static_cast<std::int64_t>(rng.next() % 50) * 1'000'000;
    const EventClass cls = kClasses[rng.next() % 4];
    plan.push_back({t, cls, static_cast<std::uint64_t>(i), i});
    ids.push_back(engine.schedule_at(usec(t), cls,
                                     [&fired, i](SimTime) {
                                       fired.push_back(i);
                                     }));
  }
  XorShift cancel_rng;
  cancel_rng.x = 1234567891234567ULL;
  for (int i = 0; i < kEvents; ++i) {
    if (cancel_rng.next() % 5 < 2) {
      EXPECT_TRUE(engine.cancel(ids[static_cast<std::size_t>(i)]));
      plan[static_cast<std::size_t>(i)].cancelled = true;
    }
  }
  engine.run();
  EXPECT_EQ(fired, expected_order(plan));
}

TEST(Cancellation, RunUntilInterleavedWithCancellationKeepsOrder) {
  // Satellite regression: run_until() consults next_time() every iteration;
  // with the tombstone heap that was O(n) whenever the front was cancelled.
  // Cancel the earliest pending event before *every* horizon step and check
  // the drained order against the model.
  constexpr int kEvents = 600;
  Engine engine;
  std::vector<PlannedEvent> plan;
  std::vector<EventId> ids;
  std::vector<int> fired;
  std::vector<std::int64_t> fired_clock;
  XorShift rng;
  for (int i = 0; i < kEvents; ++i) {
    const auto t =
        static_cast<std::int64_t>(rng.next() % 120 + 1) * 1'000'000;
    const EventClass cls = kClasses[rng.next() % 4];
    plan.push_back({t, cls, static_cast<std::uint64_t>(i), i});
    ids.push_back(engine.schedule_at(usec(t), cls, [&, i](SimTime now) {
      fired.push_back(i);
      fired_clock.push_back(now.usec());
    }));
  }
  // Walk the horizon forward in 10-second steps; before each step, cancel
  // the earliest *live* planned events (the heap front, repeatedly).
  auto earliest_live = [&]() -> int {
    int best = -1;
    for (int i = 0; i < kEvents; ++i) {
      const auto& e = plan[static_cast<std::size_t>(i)];
      if (e.cancelled) continue;
      if (std::find(fired.begin(), fired.end(), i) != fired.end()) continue;
      if (best < 0 ||
          std::tuple(e.time_usec, e.cls, e.seq) <
              std::tuple(plan[static_cast<std::size_t>(best)].time_usec,
                         plan[static_cast<std::size_t>(best)].cls,
                         plan[static_cast<std::size_t>(best)].seq)) {
        best = i;
      }
    }
    return best;
  };
  for (std::int64_t horizon = 10; horizon <= 130; horizon += 10) {
    for (int k = 0; k < 3; ++k) {
      const int front = earliest_live();
      if (front < 0) break;
      EXPECT_TRUE(engine.cancel(ids[static_cast<std::size_t>(front)]));
      plan[static_cast<std::size_t>(front)].cancelled = true;
    }
    engine.run_until(seconds(horizon));
    EXPECT_EQ(engine.now(), seconds(horizon));
  }
  EXPECT_EQ(fired, expected_order(plan));
  // Every event fired at its scheduled time, in nondecreasing clock order.
  for (std::size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired_clock[i],
              plan[static_cast<std::size_t>(fired[i])].time_usec);
    if (i > 0) {
      EXPECT_GE(fired_clock[i], fired_clock[i - 1]);
    }
  }
}

TEST(Cancellation, HandlersMayCancelPendingEventsMidDrain) {
  // Cancellation from inside a handler (the walltime-kill pattern: a
  // completion cancels the pending kill) must take effect immediately.
  Engine engine;
  int kills_fired = 0;
  int completions = 0;
  constexpr int kJobs = 200;
  for (int j = 0; j < kJobs; ++j) {
    const std::int64_t start = j * 10;
    const EventId kill = engine.schedule_at(
        seconds(start + 100), EventClass::kTimer,
        [&kills_fired](SimTime) { ++kills_fired; });
    engine.schedule_at(seconds(start + 50), EventClass::kCompletion,
                       [&engine, &completions, kill](SimTime) {
                         ++completions;
                         EXPECT_TRUE(engine.cancel(kill));
                       });
  }
  engine.run();
  EXPECT_EQ(completions, kJobs);
  EXPECT_EQ(kills_fired, 0) << "a cancelled walltime kill still fired";
}

TEST(Cancellation, CancelOfFiredIdsStaysFalseUnderChurn) {
  // 5000 push/step/cancel rounds: every event gets exactly one `true`
  // answer lifetime-wide — it either fires or is cancelled once, never
  // both — and cancel() on fired or cancelled ids stays false forever.
  Engine engine;
  XorShift rng;
  std::vector<EventId> id_of;       // tag (index) → event id
  std::vector<int> live_tags;       // scheduled, not fired, not cancelled
  std::vector<EventId> dead;        // successfully cancelled ids
  std::vector<int> newly_fired;     // filled by handlers
  int fired = 0;
  for (int round = 0; round < 5000; ++round) {
    const std::uint64_t r = rng.next() % 3;
    if (r == 0 || live_tags.empty()) {
      const int tag = static_cast<int>(id_of.size());
      const SimTime at =
          engine.now() +
          seconds(static_cast<std::int64_t>(rng.next() % 5 + 1));
      id_of.push_back(engine.schedule_at(at, EventClass::kTimer,
                                         [&, tag](SimTime) {
                                           ++fired;
                                           newly_fired.push_back(tag);
                                         }));
      live_tags.push_back(tag);
    } else if (r == 1) {
      const std::size_t k = rng.next() % live_tags.size();
      const int tag = live_tags[k];
      EXPECT_TRUE(engine.cancel(id_of[static_cast<std::size_t>(tag)]));
      dead.push_back(id_of[static_cast<std::size_t>(tag)]);
      live_tags.erase(live_tags.begin() + static_cast<std::ptrdiff_t>(k));
    } else {
      (void)engine.step();
      for (const int tag : newly_fired) {
        std::erase(live_tags, tag);
        // A fired id answers false from then on.
        EXPECT_FALSE(engine.cancel(id_of[static_cast<std::size_t>(tag)]));
      }
      newly_fired.clear();
    }
    if (!dead.empty() && round % 7 == 0) {
      EXPECT_FALSE(engine.cancel(dead[rng.next() % dead.size()]));
    }
  }
  const int fired_before = fired;
  for (const EventId id : dead) EXPECT_FALSE(engine.cancel(id));
  engine.run();
  EXPECT_EQ(fired, fired_before + static_cast<int>(live_tags.size()));
}

}  // namespace
}  // namespace dmsched::sim
