// The Topology model: tier capacities and distances, headroom against
// counted states, TopologySpec reshaping (including every zero-capacity
// failure mode), and the flatten-to-global ablation.
#include "topology/topology.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "cluster/cluster.hpp"
#include "testing/builders.hpp"

namespace dmsched {
namespace {

using testing::machine;

TEST(TopologyModel, DefaultIsTheFlatSingleGlobalPoolShape) {
  // The degenerate default: one rack spanning the whole machine, no rack
  // tier — the shape every pre-topology config had.
  const Topology t;
  EXPECT_FALSE(t.has_rack_tier());
  EXPECT_TRUE(t.single_pool());
  EXPECT_TRUE(t.rack_tier_capacity().is_zero());
}

TEST(TopologyModel, TierCapacitiesComeFromTheConfig) {
  // 16 nodes in racks of 4, 64 GiB local, 32 GiB pool/rack, 128 GiB global.
  const Topology t(machine(16, 64.0, 32.0, 128.0));
  EXPECT_EQ(t.racks(), 4);
  EXPECT_EQ(t.nodes(), 16);
  EXPECT_EQ(t.rack_nodes(0), 4);
  EXPECT_EQ(t.rack_pool_capacity(2), gib(std::int64_t{32}));
  EXPECT_EQ(t.rack_tier_capacity(), gib(std::int64_t{128}));
  EXPECT_EQ(t.global_tier_capacity(), gib(std::int64_t{128}));
  EXPECT_EQ(t.tier_capacity(MemoryTier::kLocal), gib(std::int64_t{64 * 16}));
  EXPECT_EQ(t.tier_capacity(MemoryTier::kRackPool), gib(std::int64_t{128}));
  // The neighbor tier is a distance grade over the same physical pools, so
  // its capacity is the rack tier's.
  EXPECT_EQ(t.tier_capacity(MemoryTier::kNeighborPool),
            gib(std::int64_t{128}));
  EXPECT_EQ(t.tier_capacity(MemoryTier::kGlobalPool), gib(std::int64_t{128}));
  EXPECT_TRUE(t.has_rack_tier());
  EXPECT_TRUE(t.has_global_tier());
  EXPECT_FALSE(t.single_pool());
}

TEST(TopologyModel, DistancesAreMonotoneInHops) {
  const Topology t(machine(16, 64.0, 32.0, 128.0));
  EXPECT_EQ(tier_distance(MemoryTier::kLocal), 0);
  EXPECT_EQ(tier_distance(MemoryTier::kRackPool), 1);
  EXPECT_EQ(tier_distance(MemoryTier::kNeighborPool), 2);
  EXPECT_EQ(tier_distance(MemoryTier::kGlobalPool), 3);
  EXPECT_EQ(t.rack_distance(1, 1), 0);
  EXPECT_EQ(t.rack_distance(0, 3), 1);
  EXPECT_EQ(t.rack_of(0), 0);
  EXPECT_EQ(t.rack_of(15), 3);
}

TEST(TopologyModel, HeadroomSumsTiersAcrossRacks) {
  const ClusterConfig config = machine(16, 64.0, 32.0, 128.0);
  const Topology t(config);
  ResourceState s = empty_state(config);
  TierHeadroom h = t.headroom(s);
  EXPECT_EQ(h.free_nodes, 16);
  EXPECT_EQ(h.rack_pool_free, gib(std::int64_t{128}));
  EXPECT_EQ(h.rack_pool_free_max, gib(std::int64_t{32}));
  EXPECT_EQ(h.global_free, gib(std::int64_t{128}));
  EXPECT_EQ(h.pool_free_total(), gib(std::int64_t{256}));

  // Uneven depletion: the max tracks the best-provisioned rack.
  s.pool_free[0] = gib(std::int64_t{4});
  s.pool_free[1] = gib(std::int64_t{20});
  s.free_nodes[2] = 0;
  h = t.headroom(s);
  EXPECT_EQ(h.free_nodes, 12);
  EXPECT_EQ(h.rack_pool_free, gib(std::int64_t{4 + 20 + 32 + 32}));
  EXPECT_EQ(h.rack_pool_free_max, gib(std::int64_t{32}));
}

TEST(TopologyModel, LegacyMachinesGetNoResourceAxes) {
  // The no-regen contract at the state layer: on a machine provisioning no
  // GPUs/burst buffer, snapshots carry an *empty* free_gpus vector and zero
  // bb_free — byte-identical to the pre-resource-vector shape.
  const ClusterConfig config = machine(16, 64.0, 32.0, 128.0);
  const ResourceState s = empty_state(config);
  EXPECT_TRUE(s.free_gpus.empty());
  EXPECT_TRUE(s.bb_free.is_zero());
  EXPECT_EQ(s.free_gpus_in(0), 0);  // safe accessor off the end
  const Topology t(config);
  const TierHeadroom h = t.headroom(s);
  EXPECT_EQ(h.free_gpus, 0);
  EXPECT_TRUE(h.bb_free.is_zero());
}

TEST(TopologyModel, ResourceAxesFlowIntoStateAndHeadroom) {
  ClusterConfig config = machine(16, 64.0, 32.0, 128.0);
  config.gpus_per_node = 2;
  config.bb_capacity = gib(std::int64_t{50});
  ResourceState s = empty_state(config);
  ASSERT_EQ(s.free_gpus.size(), 4u);
  EXPECT_EQ(s.free_gpus_in(0), 8);  // 4 nodes × 2 devices, rack-pooled
  EXPECT_EQ(s.bb_free, gib(std::int64_t{50}));

  const Topology t(config);
  EXPECT_EQ(t.rack_gpu_capacity(0), 8);
  EXPECT_EQ(t.total_gpus(), 32);
  EXPECT_EQ(t.bb_capacity(), gib(std::int64_t{50}));

  // Depletion shows up in the summed headroom.
  s.free_gpus[0] = 1;
  s.free_gpus[3] = 0;
  s.bb_free = gib(std::int64_t{20});
  const TierHeadroom h = t.headroom(s);
  EXPECT_EQ(h.free_gpus, 1 + 8 + 8 + 0);
  EXPECT_EQ(h.bb_free, gib(std::int64_t{20}));
}

TEST(TopologyModel, SnapshotMirrorsTheClusterGpuLedger) {
  ClusterConfig config = machine(8, 64.0);
  config.gpus_per_node = 2;
  config.bb_capacity = gib(std::int64_t{40});
  Cluster cluster(config);
  Allocation a;
  a.job = 1;
  a.nodes = {0};
  a.local_per_node = gib(std::int64_t{1});
  a.gpus_per_node = 3;
  a.bb_bytes = gib(std::int64_t{15});
  cluster.commit(a);
  const ResourceState s = snapshot(cluster);
  EXPECT_EQ(s.free_gpus_in(0), 5);  // 8 pooled minus the 3 taken
  EXPECT_EQ(s.free_gpus_in(1), 8);
  EXPECT_EQ(s.bb_free, gib(std::int64_t{25}));
}

TEST(TopologySpec, DefaultSpecIsAnExactNoOp) {
  const ClusterConfig base = machine(16, 64.0, 32.0, 128.0);
  EXPECT_TRUE(TopologySpec{}.is_default());
  const ClusterConfig same = apply(TopologySpec{}, base);
  EXPECT_EQ(same.nodes_per_rack, base.nodes_per_rack);
  EXPECT_EQ(same.pool_per_rack, base.pool_per_rack);
  EXPECT_EQ(same.global_pool, base.global_pool);
}

TEST(TopologySpec, ReRackingPreservesRackTierBytes) {
  const ClusterConfig base = machine(16, 64.0, 32.0, 128.0);  // 4 racks
  const ClusterConfig two = apply({.racks = 2}, base);
  EXPECT_EQ(two.racks(), 2);
  EXPECT_EQ(two.nodes_per_rack, 8);
  EXPECT_EQ(two.pool_per_rack, gib(std::int64_t{64}));
  EXPECT_EQ(two.global_pool, base.global_pool);
  const ClusterConfig sixteen = apply({.racks = 16}, base);
  EXPECT_EQ(sixteen.nodes_per_rack, 1);
  EXPECT_EQ(sixteen.pool_per_rack, gib(std::int64_t{8}));
}

TEST(TopologySpec, NonDividingRackCountThrows) {
  const ClusterConfig base = machine(16, 64.0, 32.0, 128.0);
  EXPECT_THROW((void)apply({.racks = 3}, base), std::invalid_argument);
  EXPECT_THROW((void)apply({.racks = 32}, base), std::invalid_argument);
  EXPECT_THROW((void)apply({.racks = -1}, base), std::invalid_argument);
}

TEST(TopologySpec, RackPoolFracSplitsTotalCapacity) {
  const ClusterConfig base = machine(16, 64.0, 32.0, 128.0);
  const Bytes total = gib(std::int64_t{256});
  const ClusterConfig all_rack = apply({.rack_pool_frac = 1.0}, base);
  EXPECT_EQ(all_rack.pool_per_rack, gib(std::int64_t{64}));
  EXPECT_TRUE(all_rack.global_pool.is_zero());
  const ClusterConfig all_global = apply({.rack_pool_frac = 0.0}, base);
  EXPECT_TRUE(all_global.pool_per_rack.is_zero());
  EXPECT_EQ(all_global.global_pool, total);
  const ClusterConfig half = apply({.rack_pool_frac = 0.5}, base);
  EXPECT_EQ(half.pool_per_rack * half.racks() + half.global_pool, total);
}

TEST(TopologySpec, FullRackFracIsStrictlyRackScaleEvenWithResidue) {
  // 12 nodes = 3 racks; 3 × 32 GiB + 128 GiB = 224 GiB total, which does
  // not divide by 3. frac = 1.0 must still yield a machine with *no*
  // global tier: the sub-rack-count residue is dropped, not left behind as
  // a degenerate global pool that would flip has_global_tier().
  const ClusterConfig base = machine(12, 64.0, 32.0, 128.0);
  const Bytes total = gib(std::int64_t{224});
  ASSERT_NE(total.count() % 3, 0);
  const ClusterConfig strict = apply({.rack_pool_frac = 1.0}, base);
  EXPECT_TRUE(strict.global_pool.is_zero());
  EXPECT_FALSE(Topology(strict).has_global_tier());
  const Bytes residue = total - strict.pool_per_rack * 3;
  EXPECT_LT(residue.count(), 3);
}

TEST(TopologySpec, ZeroCapacityTiersThrow) {
  const ClusterConfig base = machine(16, 64.0, 32.0, 128.0);
  // A fraction that rounds the per-rack pool to zero bytes.
  EXPECT_THROW((void)apply({.rack_pool_frac = 1e-13}, base),
               std::invalid_argument);
  // Out-of-range fractions.
  EXPECT_THROW((void)apply({.rack_pool_frac = 1.01}, base),
               std::invalid_argument);
  // Splitting a machine with no disaggregated capacity at all.
  EXPECT_THROW((void)apply({.rack_pool_frac = 0.5}, machine(16, 64.0)),
               std::invalid_argument);
  // Re-racking cannot zero a rack tier here (bytes are preserved), but the
  // scale-validation helper must catch a scaled-away tier.
  ClusterConfig scaled = base;
  scaled.pool_per_rack = Bytes{0};
  EXPECT_THROW(ensure_tiers_survive(scaled, base, "test"),
               std::invalid_argument);
  scaled = base;
  scaled.global_pool = Bytes{0};
  EXPECT_THROW(ensure_tiers_survive(scaled, base, "test"),
               std::invalid_argument);
  // Identical shapes pass.
  ensure_tiers_survive(base, base, "test");
}

TEST(TopologySpec, ComposesWithReRacking) {
  // Re-rack then re-split in one spec: both axes apply, capacity conserved.
  const ClusterConfig base = machine(16, 64.0, 32.0, 128.0);
  const ClusterConfig shaped = apply({.racks = 2, .rack_pool_frac = 0.25},
                                     base);
  EXPECT_EQ(shaped.racks(), 2);
  EXPECT_EQ(shaped.pool_per_rack * 2 + shaped.global_pool,
            gib(std::int64_t{256}));
  EXPECT_EQ(shaped.pool_per_rack, gib(std::int64_t{32}));
  EXPECT_EQ(shaped.global_pool, gib(std::int64_t{192}));
}

TEST(FlattenToGlobal, MovesAllCapacityToTheGlobalTier) {
  const ClusterConfig base = machine(16, 64.0, 32.0, 128.0);
  const ClusterConfig flat = flatten_to_global(base);
  EXPECT_EQ(flat.racks(), 1);
  EXPECT_TRUE(flat.pool_per_rack.is_zero());
  EXPECT_EQ(flat.global_pool, gib(std::int64_t{256}));
  EXPECT_EQ(flat.total_nodes, base.total_nodes);
  EXPECT_EQ(flat.local_mem_per_node, base.local_mem_per_node);
  EXPECT_TRUE(Topology(flat).single_pool());
}

TEST(MemoryTierNames, RoundTrip) {
  EXPECT_STREQ(to_string(MemoryTier::kLocal), "local");
  EXPECT_STREQ(to_string(MemoryTier::kRackPool), "rack-pool");
  EXPECT_STREQ(to_string(MemoryTier::kNeighborPool), "neighbor-pool");
  EXPECT_STREQ(to_string(MemoryTier::kGlobalPool), "global-pool");
}

}  // namespace
}  // namespace dmsched
