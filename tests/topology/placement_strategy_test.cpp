// The named placement strategies and the edge cases the topology studies
// lean on: rack-exhaustion fallback to the global tier, strict locality
// refusing it, deterministic tie-breaking across equal-headroom racks, and
// allocation/release accounting invariants under churn.
#include "topology/placement_policy.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "memory/placement.hpp"
#include "testing/builders.hpp"

namespace dmsched {
namespace {

using testing::job;
using testing::machine;

TEST(PlacementStrategy, NamesRoundTrip) {
  for (const PlacementStrategy s : all_placement_strategies()) {
    const auto parsed = placement_strategy_from_string(to_string(s));
    ASSERT_TRUE(parsed.has_value()) << to_string(s);
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(placement_strategy_from_string("nearest-first").has_value());
  EXPECT_FALSE(placement_strategy_from_string("").has_value());
}

TEST(PlacementStrategy, ResolvesToDocumentedPolicies) {
  const PlacementPolicy local = make_placement(PlacementStrategy::kLocalFirst);
  EXPECT_EQ(local.selection, NodeSelection::kPoolAware);
  EXPECT_EQ(local.routing, PoolRouting::kRackOnly);
  const PlacementPolicy balanced = make_placement(PlacementStrategy::kBalanced);
  EXPECT_EQ(balanced.selection, NodeSelection::kSpreadRacks);
  EXPECT_EQ(balanced.routing, PoolRouting::kRackThenGlobal);
  const PlacementPolicy fallback =
      make_placement(PlacementStrategy::kGlobalFallback);
  EXPECT_EQ(fallback.selection, NodeSelection::kPoolAware);
  EXPECT_EQ(fallback.routing, PoolRouting::kRackThenGlobal);
  // global-fallback IS the engine default, named.
  EXPECT_EQ(fallback.selection, PlacementPolicy{}.selection);
  EXPECT_EQ(fallback.routing, PlacementPolicy{}.routing);
}

// 8 nodes in 2 racks of 4; 16 GiB local, 32 GiB pool per rack, 64 GiB
// global. A job at 24 GiB/node carries an 8 GiB/node deficit.
ClusterConfig tiered_machine() { return machine(8, 16.0, 32.0, 64.0); }

TEST(PlacementEdgeCases, RackExhaustionFallsBackToTheGlobalTier) {
  const ClusterConfig config = tiered_machine();
  ResourceState state = empty_state(config);
  // Drain both rack pools to 8 GiB each: a 4-node deficit job (32 GiB of
  // far memory) cannot be funded by rack pools alone.
  state.pool_free[0] = gib(std::int64_t{8});
  state.pool_free[1] = gib(std::int64_t{8});
  const Job j = job(0).nodes(4).mem_gib(24.0);

  // global-fallback: the rack pool funds what it can (one node), the
  // global tier funds the rest — the job starts.
  const auto fallback =
      compute_take(state, config, j,
                   make_placement(PlacementStrategy::kGlobalFallback));
  ASSERT_TRUE(fallback.has_value());
  EXPECT_EQ(fallback->node_total(), 4);
  EXPECT_EQ(fallback->rack_pool_total(), gib(std::int64_t{8}));
  EXPECT_EQ(fallback->global_total(), gib(std::int64_t{24}));

  // local-first: strict locality refuses the global tier — no start.
  const auto local = compute_take(
      state, config, j, make_placement(PlacementStrategy::kLocalFirst));
  EXPECT_FALSE(local.has_value());

  // With refilled rack pools local-first starts without global bytes.
  ResourceState refilled = empty_state(config);
  const auto local_ok = compute_take(
      refilled, config, j, make_placement(PlacementStrategy::kLocalFirst));
  ASSERT_TRUE(local_ok.has_value());
  EXPECT_TRUE(local_ok->global_total().is_zero());
  EXPECT_EQ(local_ok->rack_pool_total(), gib(std::int64_t{32}));
}

TEST(PlacementEdgeCases, EqualHeadroomRacksBreakTiesByIndex) {
  // Four racks, byte-identical headroom everywhere: every selection policy
  // must pick the lowest-index racks, and repeated evaluation must agree.
  const ClusterConfig config = machine(16, 16.0, 32.0, 64.0);
  const ResourceState state = empty_state(config);
  const Job narrow = job(0).nodes(4).mem_gib(24.0);
  for (const PlacementStrategy s : all_placement_strategies()) {
    SCOPED_TRACE(to_string(s));
    const auto plan = compute_take(state, config, narrow, make_placement(s));
    ASSERT_TRUE(plan.has_value());
    ASSERT_FALSE(plan->takes.empty());
    EXPECT_EQ(plan->takes.front().rack, 0) << "tie must break to rack 0";
    // Determinism: the same inputs give the same plan, take for take.
    const auto again = compute_take(state, config, narrow, make_placement(s));
    ASSERT_TRUE(again.has_value());
    ASSERT_EQ(again->takes.size(), plan->takes.size());
    for (std::size_t i = 0; i < plan->takes.size(); ++i) {
      EXPECT_EQ(again->takes[i].rack, plan->takes[i].rack);
      EXPECT_EQ(again->takes[i].nodes, plan->takes[i].nodes);
      EXPECT_EQ(again->takes[i].rack_pool_bytes,
                plan->takes[i].rack_pool_bytes);
      EXPECT_EQ(again->takes[i].global_pool_bytes,
                plan->takes[i].global_pool_bytes);
    }
  }
}

TEST(PlacementEdgeCases, UnequalHeadroomBeatsIndexOrderForDeficitJobs) {
  // Pool-aware deficit placement chases the pool-rich rack even when it has
  // a higher index; equal-headroom determinism (above) is the tie case.
  const ClusterConfig config = machine(8, 16.0, 32.0, 0.0);
  ResourceState state = empty_state(config);
  state.pool_free[0] = gib(std::int64_t{8});
  const Job j = job(0).nodes(2).mem_gib(24.0);
  const auto plan = compute_take(
      state, config, j, make_placement(PlacementStrategy::kGlobalFallback));
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->takes.front().rack, 1);
}

TEST(PlacementEdgeCases, AllocationReleaseAccountingSurvivesChurn) {
  // Deterministic churn: plan/apply a few hundred jobs against a live
  // state, releasing half of them as we go, then release everything and
  // require the state to return to empty *exactly*. Catches asymmetric
  // apply/release bookkeeping and any negative-capacity transient (Bytes
  // asserts on underflow).
  const ClusterConfig config = machine(16, 16.0, 32.0, 64.0);
  const ResourceState empty = empty_state(config);
  ResourceState state = empty;
  Rng rng(4242);
  std::vector<TakePlan> live;
  const std::vector<PlacementStrategy> strategies = all_placement_strategies();
  for (int step = 0; step < 400; ++step) {
    const Job j = job(static_cast<JobId>(step))
                      .nodes(static_cast<std::int32_t>(rng.uniform_int(1, 6)))
                      .mem_gib(rng.uniform(4.0, 40.0));
    const PlacementStrategy s =
        strategies[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(strategies.size()) - 1))];
    const auto plan = compute_take(state, config, j, make_placement(s));
    if (plan) {
      ASSERT_TRUE(can_apply(state, *plan));
      apply_take(state, *plan);
      live.push_back(*plan);
    }
    // Churn: release a random live plan half the time.
    if (!live.empty() && rng.uniform(0.0, 1.0) < 0.5) {
      const auto idx = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(live.size()) - 1));
      release_take(state, live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    // Invariants: nothing exceeds capacity, nothing goes negative.
    ASSERT_LE(state.total_free_nodes(), config.total_nodes);
    for (std::size_t r = 0; r < state.pool_free.size(); ++r) {
      ASSERT_LE(state.pool_free[r], config.pool_per_rack) << "rack " << r;
    }
    ASSERT_LE(state.global_free, config.global_pool);
  }
  for (const TakePlan& plan : live) release_take(state, plan);
  EXPECT_EQ(state.free_nodes, empty.free_nodes);
  EXPECT_EQ(state.pool_free, empty.pool_free);
  EXPECT_EQ(state.global_free, empty.global_free);
}

}  // namespace
}  // namespace dmsched
