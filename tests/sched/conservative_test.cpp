#include "sched/conservative.hpp"

#include <gtest/gtest.h>

#include "cluster/system_config.hpp"
#include "testing/builders.hpp"
#include "testing/fake_context.hpp"
#include "testing/lifecycle.hpp"

namespace dmsched {
namespace {

using testing::FakeContext;
using testing::job;
using testing::tiny_cluster;

TEST(Conservative, StartsJobsThatFitNow) {
  FakeContext ctx(tiny_cluster(), {job(0).nodes(8), job(1).nodes(8)});
  ctx.enqueue(0);
  ctx.enqueue(1);
  ConservativeScheduler sched;
  sched.schedule(ctx);
  EXPECT_EQ(ctx.started(), (std::vector<JobId>{0, 1}));
}

TEST(Conservative, BackfillsJobThatDelaysNobody) {
  // Running: 8 nodes until 4h. Queue: [12-node head, 4-node 2h candidate].
  // The candidate finishes before the head's reservation: start it.
  FakeContext ctx(tiny_cluster(),
                  {job(0).nodes(8).walltime_h(4.0).runtime_h(4.0),
                   job(1).nodes(12).walltime_h(1.0).runtime_h(1.0),
                   job(2).nodes(4).walltime_h(2.0).runtime_h(2.0)});
  ctx.force_run(0);
  ctx.enqueue(1);
  ctx.enqueue(2);
  ConservativeScheduler sched;
  sched.schedule(ctx);
  EXPECT_EQ(ctx.started(), (std::vector<JobId>{2}));
}

TEST(Conservative, RejectsBackfillThatDelaysAnyReservation) {
  // Unlike EASY's extra-node rule, conservative must protect EVERY queued
  // job's reservation. Candidate 3 would fit EASY's spare-node rule but
  // delays job 2's reservation (which starts when job 0's nodes free).
  FakeContext ctx(
      tiny_cluster(),
      {job(0).nodes(12).walltime_h(4.0).runtime_h(4.0),
       job(1).nodes(16).walltime_h(2.0).runtime_h(2.0),   // head: at 4h
       job(2).nodes(16).walltime_h(2.0).runtime_h(2.0),   // next: at 6h
       job(3).nodes(4).walltime_h(3.0).runtime_h(3.0)});  // would end 3h->ok
  ctx.force_run(0);
  for (JobId i = 1; i <= 3; ++i) ctx.enqueue(i);
  ConservativeScheduler sched;
  sched.schedule(ctx);
  // job 3 ends at 3h, before the head's 4h reservation AND before job 2's
  // 6h reservation -> it may start on the 4 free nodes.
  EXPECT_EQ(ctx.started(), (std::vector<JobId>{3}));
}

TEST(Conservative, LongCandidateBlockedByLaterReservation) {
  FakeContext ctx(
      tiny_cluster(),
      {job(0).nodes(12).walltime_h(4.0).runtime_h(4.0),
       job(1).nodes(16).walltime_h(2.0).runtime_h(2.0),  // reserved at 4h
       job(2).nodes(4).walltime_h(10.0).runtime_h(9.0)});
  ctx.force_run(0);
  ctx.enqueue(1);
  ctx.enqueue(2);
  ConservativeScheduler sched;
  sched.schedule(ctx);
  // job 2 on the 4 free nodes would run until 10h, overlapping job 1's
  // 16-node reservation at 4h: conservative refuses what EASY would too,
  // but critically it refuses even with a *later* overlapping reservation.
  EXPECT_TRUE(ctx.started().empty());
}

TEST(Conservative, PoolReservationsAreProtected) {
  // Head waits on pool bytes; a pool-draining candidate must be rejected
  // (contrast with EasyScheduler's memory-unaware behaviour).
  const ClusterConfig cfg =
      custom_config(4, 4, gib(std::int64_t{64}), gib(std::int64_t{32}),
                    Bytes{0});
  FakeContext ctx(cfg,
                  {job(0).nodes(1).mem_gib(80).walltime_h(2.0).runtime_h(2.0),
                   job(1).nodes(1).mem_gib(96).walltime_h(1.0).runtime_h(1.0),
                   job(2).nodes(1).mem_gib(80).walltime_h(10.0).runtime_h(9.0)});
  ctx.force_run(0);
  ctx.enqueue(1);
  ctx.enqueue(2);
  ConservativeScheduler sched;
  sched.schedule(ctx);
  EXPECT_TRUE(ctx.started().empty())
      << "candidate would drain the pool the head's reservation needs";
}

TEST(Conservative, WindowCapsWorkPerPass) {
  FakeContext ctx(tiny_cluster(),
                  {job(0).nodes(16).walltime_h(4.0).runtime_h(4.0),
                   job(1).nodes(1), job(2).nodes(1), job(3).nodes(1)});
  ctx.force_run(0);
  for (JobId i = 1; i <= 3; ++i) ctx.enqueue(i);
  ConservativeScheduler narrow(/*window=*/1);
  narrow.schedule(ctx);
  // only the first queued job is even examined; machine is full anyway
  EXPECT_TRUE(ctx.started().empty());
  ctx.finish(0);
  narrow.schedule(ctx);
  EXPECT_EQ(ctx.started(), (std::vector<JobId>{1}));
}

TEST(Conservative, ZeroWindowAborts) {
  EXPECT_DEATH(ConservativeScheduler sched(0), "window");
}

TEST(Conservative, EmptyQueueNoOp) {
  FakeContext ctx(tiny_cluster(), {});
  ConservativeScheduler sched;
  sched.schedule(ctx);
  EXPECT_TRUE(ctx.started().empty());
}


TEST(Conservative, SessionLifecycleReleasesEverything) {
  ConservativeScheduler sched;
  testing::run_lifecycle_scenario(sched);
}

}  // namespace
}  // namespace dmsched
