#include "sched/queue_policy.hpp"

#include <gtest/gtest.h>

#include "testing/builders.hpp"

namespace dmsched {
namespace {

using testing::job;

std::vector<Job> sample_jobs() {
  // id: submit_h, walltime_h, nodes
  return {job(0).at_h(0.0).walltime_h(10.0).nodes(4).runtime_h(1.0),
          job(1).at_h(1.0).walltime_h(1.0).nodes(64).runtime_h(0.5),
          job(2).at_h(2.0).walltime_h(5.0).nodes(16).runtime_h(2.0),
          job(3).at_h(0.5).walltime_h(1.0).nodes(1).runtime_h(0.5)};
}

TEST(QueuePolicy, FcfsOrdersBySubmission) {
  auto jobs = sample_jobs();
  std::vector<JobId> ids{2, 0, 3, 1};
  order_queue(ids, jobs, QueueOrder::kFcfs, hours(10));
  EXPECT_EQ(ids, (std::vector<JobId>{0, 3, 1, 2}));
}

TEST(QueuePolicy, FcfsTieBreaksOnId) {
  auto jobs = std::vector<Job>{job(0).at_h(1.0), job(1).at_h(1.0)};
  std::vector<JobId> ids{1, 0};
  order_queue(ids, jobs, QueueOrder::kFcfs, hours(10));
  EXPECT_EQ(ids, (std::vector<JobId>{0, 1}));
}

TEST(QueuePolicy, ShortestFirstOrdersByWalltime) {
  auto jobs = sample_jobs();
  std::vector<JobId> ids{0, 1, 2, 3};
  order_queue(ids, jobs, QueueOrder::kShortestFirst, hours(10));
  // walltimes: 10, 1, 5, 1 -> {1,3} (1h, tie by submit: 3 at 0.5h first), 2, 0
  EXPECT_EQ(ids, (std::vector<JobId>{3, 1, 2, 0}));
}

TEST(QueuePolicy, LargestFirstOrdersByNodes) {
  auto jobs = sample_jobs();
  std::vector<JobId> ids{0, 1, 2, 3};
  order_queue(ids, jobs, QueueOrder::kLargestFirst, hours(10));
  EXPECT_EQ(ids, (std::vector<JobId>{1, 2, 0, 3}));
}

TEST(QueuePolicy, WfpFavorsOldAndLarge) {
  auto jobs = sample_jobs();
  std::vector<JobId> ids{0, 1, 2, 3};
  order_queue(ids, jobs, QueueOrder::kWfp, hours(100));
  // score = (wait/walltime)^3 * nodes at t=100h:
  // 0: (100/10)^3*4 = 4e3;  1: (99/1)^3*64 ≈ 6.2e7;
  // 2: (98/5)^3*16 ≈ 1.2e5; 3: (99.5/1)^3*1 ≈ 9.85e5
  EXPECT_EQ(ids, (std::vector<JobId>{1, 3, 2, 0}));
}

TEST(QueuePolicy, WfpChangesWithTime) {
  auto jobs = std::vector<Job>{
      job(0).at_h(0.0).walltime_h(10.0).nodes(1).runtime_h(1.0),
      job(1).at_h(4.9).walltime_h(1.0).nodes(1).runtime_h(0.5)};
  std::vector<JobId> early{0, 1};
  order_queue(early, jobs, QueueOrder::kWfp, hours(5));
  // at 5h: 0: (5/10)^3 = 0.125; 1: (0.1/1)^3 = 0.001 -> 0 first
  EXPECT_EQ(early, (std::vector<JobId>{0, 1}));
  std::vector<JobId> late{0, 1};
  order_queue(late, jobs, QueueOrder::kWfp, hours(50));
  // at 50h: 0: 125; 1: (45.1)^3 ≈ 9.2e4 -> 1 first
  EXPECT_EQ(late, (std::vector<JobId>{1, 0}));
}

TEST(QueuePolicy, EmptyQueueIsFine) {
  auto jobs = sample_jobs();
  std::vector<JobId> ids;
  order_queue(ids, jobs, QueueOrder::kFcfs, SimTime{});
  EXPECT_TRUE(ids.empty());
}

TEST(QueuePolicy, LookupOverloadAgreesWithTheVectorOverload) {
  // The engine's streaming mode orders its queue through a JobLookup (it has
  // no dense job vector); both overloads share one comparator implementation
  // and must sort identically under every policy and at several times.
  const auto jobs = sample_jobs();
  const JobLookup lookup = [&](JobId id) -> const Job& { return jobs[id]; };
  for (const QueueOrder order :
       {QueueOrder::kFcfs, QueueOrder::kShortestFirst,
        QueueOrder::kLargestFirst, QueueOrder::kWfp}) {
    for (const SimTime now : {hours(3), hours(5), hours(100)}) {
      std::vector<JobId> by_vector{0, 1, 2, 3};
      std::vector<JobId> by_lookup{0, 1, 2, 3};
      order_queue(by_vector, jobs, order, now);
      order_queue(by_lookup, lookup, order, now);
      EXPECT_EQ(by_vector, by_lookup)
          << to_string(order) << " at " << now.hours() << "h";
    }
  }
}

TEST(QueuePolicy, ToStringCoverage) {
  EXPECT_STREQ(to_string(QueueOrder::kFcfs), "fcfs");
  EXPECT_STREQ(to_string(QueueOrder::kShortestFirst), "sjf");
  EXPECT_STREQ(to_string(QueueOrder::kLargestFirst), "largest");
  EXPECT_STREQ(to_string(QueueOrder::kWfp), "wfp");
}

}  // namespace
}  // namespace dmsched
