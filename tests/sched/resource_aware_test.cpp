// Differential harness for the resource-vector generalization.
//
// Two proof obligations:
//  1. EQUIVALENCE — resource-aware EASY (planning on every axis) must be
//     byte-identical to memory-aware EASY (the paper's memory-only policy)
//     on every machine that provisions no GPU/burst-buffer axis: the
//     generalized predicate collapses to the 2-D one when the extra axes
//     are absent. Checked on every non-infrastructure library scenario,
//     eager and streamed, across look-ahead windows — metrics AND the
//     semantic event digest.
//  2. DIVERGENCE — on machines that do provision the extra axes, the
//     memory-only policy plans blind: its take-plans over-commit devices
//     the cluster does not have. Pinned at the plan level (blind
//     compute_take accepts what the full predicate rejects, and the
//     materialized allocation demands devices no rack has free, which the
//     ledger refuses loudly), and at the schedule level (the two policies
//     produce genuinely different runs on gpu-contended / bb-staging).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/resources.hpp"
#include "core/engine.hpp"
#include "core/factory.hpp"
#include "memory/placement.hpp"
#include "testing/builders.hpp"
#include "topology/topology.hpp"
#include "workload/scenarios.hpp"

namespace dmsched {
namespace {

// EXPECT_EQ on doubles is deliberate: the contract is bit-reproducibility,
// not tolerance. (The labels differ by design — "mem-easy" vs
// "resource-easy" — so label is the one field not compared.)
void expect_metrics_equal(const RunMetrics& a, const RunMetrics& b) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(i));
    EXPECT_EQ(a.jobs[i].id, b.jobs[i].id);
    EXPECT_EQ(a.jobs[i].fate, b.jobs[i].fate);
    EXPECT_EQ(a.jobs[i].submit.usec(), b.jobs[i].submit.usec());
    EXPECT_EQ(a.jobs[i].start.usec(), b.jobs[i].start.usec());
    EXPECT_EQ(a.jobs[i].end.usec(), b.jobs[i].end.usec());
    EXPECT_EQ(a.jobs[i].dilation, b.jobs[i].dilation);
    EXPECT_EQ(a.jobs[i].far_rack.count(), b.jobs[i].far_rack.count());
    EXPECT_EQ(a.jobs[i].far_global.count(), b.jobs[i].far_global.count());
  }
  EXPECT_EQ(a.makespan.usec(), b.makespan.usec());
  EXPECT_EQ(a.node_utilization, b.node_utilization);
  EXPECT_EQ(a.rack_pool_utilization, b.rack_pool_utilization);
  EXPECT_EQ(a.rack_pool_peak, b.rack_pool_peak);
  EXPECT_EQ(a.global_pool_utilization, b.global_pool_utilization);
  EXPECT_EQ(a.global_pool_peak, b.global_pool_peak);
  EXPECT_EQ(a.rack_pool_busiest_peak, b.rack_pool_busiest_peak);
  EXPECT_EQ(a.gpu_utilization, b.gpu_utilization);
  EXPECT_EQ(a.gpu_peak, b.gpu_peak);
  EXPECT_EQ(a.bb_utilization, b.bb_utilization);
  EXPECT_EQ(a.bb_peak, b.bb_peak);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.killed, b.killed);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.mean_wait_hours, b.mean_wait_hours);
  EXPECT_EQ(a.p95_wait_hours, b.p95_wait_hours);
  EXPECT_EQ(a.mean_bsld, b.mean_bsld);
  EXPECT_EQ(a.p95_bsld, b.p95_bsld);
  EXPECT_EQ(a.mean_dilation, b.mean_dilation);
  EXPECT_EQ(a.frac_jobs_far, b.frac_jobs_far);
  EXPECT_EQ(a.remote_access_fraction, b.remote_access_fraction);
  EXPECT_EQ(a.far_gib_hours, b.far_gib_hours);
  EXPECT_EQ(a.jobs_per_hour, b.jobs_per_hour);
}

struct RunResult {
  RunMetrics metrics;
  std::uint64_t digest = 0;
};

RunResult run_eager(const Scenario& s, SchedulerKind kind) {
  SchedulingSimulation sim(s.cluster, s.trace, make_scheduler(kind, {}), {});
  RunResult r;
  r.metrics = sim.run();
  r.digest = sim.event_digest();
  return r;
}

RunResult run_streamed(const Scenario& s, SchedulerKind kind,
                       std::size_t lookahead) {
  EagerTraceSource source(s.trace);
  EngineOptions opts;
  opts.submit_lookahead = lookahead;
  SchedulingSimulation sim(s.cluster, source, make_scheduler(kind, {}), opts);
  RunResult r;
  r.metrics = sim.run();
  r.digest = sim.event_digest();
  return r;
}

// --- 1. equivalence on every axis-free machine ------------------------------

TEST(ResourceAwareEquivalence, ByteIdenticalToMemEasyOnEveryLegacyScenario) {
  for (const std::string& name : scenario_names()) {
    const ScenarioInfo& info = scenario_info(name);
    if (info.infrastructure) continue;  // scale workloads, covered elsewhere
    SCOPED_TRACE(name);
    const Scenario s = make_scenario(name, {.jobs = 250});
    if (s.cluster.has_gpus() || s.cluster.has_burst_buffer()) {
      continue;  // the divergence regime, pinned below
    }
    const RunResult mem = run_eager(s, SchedulerKind::kMemAwareEasy);
    const RunResult full = run_eager(s, SchedulerKind::kResourceAwareEasy);
    expect_metrics_equal(mem.metrics, full.metrics);
    EXPECT_EQ(mem.digest, full.digest);
    // Absent axes never move the new metric fields off zero.
    EXPECT_EQ(full.metrics.gpu_utilization, 0.0);
    EXPECT_EQ(full.metrics.gpu_peak, 0.0);
    EXPECT_EQ(full.metrics.bb_utilization, 0.0);
    EXPECT_EQ(full.metrics.bb_peak, 0.0);
  }
}

TEST(ResourceAwareEquivalence, HoldsAcrossStreamingAndLookaheadWindows) {
  // The equivalence must survive ingestion mode: streamed resource-easy at
  // any look-ahead window == eager mem-easy, digest and all.
  const Scenario s = make_scenario("memory-stressed", {.jobs = 250});
  const RunResult mem = run_eager(s, SchedulerKind::kMemAwareEasy);
  for (const std::size_t w : {std::size_t{1}, std::size_t{7},
                              std::size_t{300}}) {
    SCOPED_TRACE("lookahead " + std::to_string(w));
    const RunResult full =
        run_streamed(s, SchedulerKind::kResourceAwareEasy, w);
    expect_metrics_equal(mem.metrics, full.metrics);
    EXPECT_EQ(mem.digest, full.digest);
  }
}

// --- 2. the memory-only policy over-commits blind axes ----------------------

TEST(ResourceAwarePlanning, MemoryOnlyPlanOvercommitsAnExhaustedGpuPool) {
  // 2 racks x 4 nodes, 2 rack-pooled GPUs per node (8 devices per rack).
  ClusterConfig config = testing::machine(8, 64.0);
  config.gpus_per_node = 2;
  Cluster cluster(config);

  // A device hog: 4 nodes at 4 GPUs/node (within each rack's pooled 8)
  // drains every device in the machine while leaving 4 nodes and nearly all
  // memory free.
  const Job hog = testing::job(0).nodes(4).mem_gib(1).gpus(4);
  const auto hog_alloc = plan_start(cluster, hog, PlacementPolicy{});
  ASSERT_TRUE(hog_alloc.has_value());
  cluster.commit(*hog_alloc);
  for (RackId r = 0; r < config.racks(); ++r) {
    ASSERT_EQ(cluster.free_gpus_in_rack(r), 0);
  }
  ASSERT_GT(cluster.free_nodes_total(), 0);

  const Job wants = testing::job(1).nodes(2).mem_gib(1).gpus(2);
  // Idle-machine feasibility holds: this is contention, not rejection.
  EXPECT_TRUE(feasible_on_empty(config, wants, PlacementPolicy{}));

  const ResourceState state = snapshot(cluster);
  // The full predicate refuses: no rack has a device left.
  PlacementPolicy full;
  EXPECT_FALSE(compute_take(state, config, wants, full).has_value());
  // The memory-only predicate — the paper's policy, blind to devices —
  // happily plans the start...
  PlacementPolicy blind;
  blind.axes = ResourceAxes::memory_only();
  const auto plan = compute_take(state, config, wants, blind);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->gpu_total(), 0);  // the plan holds no devices at all
  // ...but the job's physical demand rides on the materialized allocation
  // regardless of what the planner looked at, and no rack can fund it.
  const Allocation alloc = materialize(cluster, wants, *plan);
  EXPECT_EQ(alloc.gpus_per_node, 2);
  EXPECT_EQ(alloc.gpu_total(), 4);
  // The ledger is the backstop: committing the blind plan dies loudly
  // instead of over-committing devices (which is why the scheduler must
  // revalidate blind-axis starts — see mem_aware_easy).
  EXPECT_DEATH(cluster.commit(alloc), "GPU pool overcommitted");
}

TEST(ResourceAwarePlanning, MemoryOnlyPlanOvercommitsAFullBurstBuffer) {
  ClusterConfig config = testing::machine(8, 64.0);
  config.bb_capacity = gib(100.0);
  Cluster cluster(config);

  const Job hog = testing::job(0).nodes(1).mem_gib(1).bb_gib(80.0);
  const auto hog_alloc = plan_start(cluster, hog, PlacementPolicy{});
  ASSERT_TRUE(hog_alloc.has_value());
  cluster.commit(*hog_alloc);
  ASSERT_EQ(cluster.bb_free(), gib(20.0));

  const Job wants = testing::job(1).nodes(1).mem_gib(1).bb_gib(50.0);
  EXPECT_TRUE(feasible_on_empty(config, wants, PlacementPolicy{}));

  const ResourceState state = snapshot(cluster);
  PlacementPolicy full;
  EXPECT_FALSE(compute_take(state, config, wants, full).has_value());
  PlacementPolicy blind;
  blind.axes = ResourceAxes::memory_only();
  const auto plan = compute_take(state, config, wants, blind);
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->bb_bytes.is_zero());
  const Allocation alloc = materialize(cluster, wants, *plan);
  EXPECT_EQ(alloc.bb_bytes, gib(50.0));
  EXPECT_DEATH(cluster.commit(alloc), "burst buffer overcommitted");
}

// --- 3. the policies genuinely diverge where the axes bind ------------------

TEST(ResourceAwareDivergence, SchedulesDifferOnGpuContended) {
  const Scenario s = make_scenario("gpu-contended", {.jobs = 400});
  ASSERT_TRUE(s.cluster.has_gpus());
  const RunResult mem = run_eager(s, SchedulerKind::kMemAwareEasy);
  const RunResult full = run_eager(s, SchedulerKind::kResourceAwareEasy);
  // Both runs are *valid* — mem-easy revalidates its blind starts against
  // the ledger, so neither run over-commits — but the plans differ, so the
  // schedules do too.
  EXPECT_NE(mem.digest, full.digest);
  std::size_t differing_starts = 0;
  ASSERT_EQ(mem.metrics.jobs.size(), full.metrics.jobs.size());
  for (std::size_t i = 0; i < mem.metrics.jobs.size(); ++i) {
    if (mem.metrics.jobs[i].start.usec() !=
        full.metrics.jobs[i].start.usec()) {
      ++differing_starts;
    }
  }
  EXPECT_GT(differing_starts, 0u);
  // The device axis is genuinely exercised on both runs. Rejections are a
  // submission-time property of the workload (a few mixed-model footprints
  // exceed what any pool can fund — nothing to do with GPUs), so the two
  // policies must agree on them exactly.
  EXPECT_GT(mem.metrics.gpu_peak, 0.0);
  EXPECT_GT(full.metrics.gpu_peak, 0.0);
  EXPECT_EQ(mem.metrics.rejected, full.metrics.rejected);
}

TEST(ResourceAwareDivergence, SchedulesDifferOnBbStaging) {
  const Scenario s = make_scenario("bb-staging", {.jobs = 400});
  ASSERT_TRUE(s.cluster.has_burst_buffer());
  const RunResult mem = run_eager(s, SchedulerKind::kMemAwareEasy);
  const RunResult full = run_eager(s, SchedulerKind::kResourceAwareEasy);
  EXPECT_NE(mem.digest, full.digest);
  EXPECT_GT(mem.metrics.bb_peak, 0.0);
  EXPECT_GT(full.metrics.bb_peak, 0.0);
  // No job's BB request exceeds capacity (pinned in scenarios_test), so
  // rejections — if any — are memory-axis submissions both policies agree on.
  EXPECT_EQ(mem.metrics.rejected, full.metrics.rejected);
}

}  // namespace
}  // namespace dmsched
