#include "sched/easy.hpp"

#include <gtest/gtest.h>

#include "cluster/system_config.hpp"
#include "testing/builders.hpp"
#include "testing/fake_context.hpp"
#include "testing/lifecycle.hpp"

namespace dmsched {
namespace {

using testing::FakeContext;
using testing::job;
using testing::tiny_cluster;

TEST(Easy, StartsHeadRunWhenEverythingFits) {
  FakeContext ctx(tiny_cluster(), {job(0).nodes(8), job(1).nodes(8)});
  ctx.enqueue(0);
  ctx.enqueue(1);
  EasyScheduler sched;
  sched.schedule(ctx);
  EXPECT_EQ(ctx.started(), (std::vector<JobId>{0, 1}));
}

TEST(Easy, BackfillsShortJobThatEndsBeforeShadow) {
  // Running: 8 nodes until t=4h. Head wants 12 -> shadow at 4h.
  // A 4-node 2h candidate ends before the shadow: backfill it.
  FakeContext ctx(tiny_cluster(),
                  {job(0).nodes(8).walltime_h(4.0).runtime_h(4.0),
                   job(1).nodes(12).walltime_h(1.0).runtime_h(1.0),
                   job(2).nodes(4).walltime_h(2.0).runtime_h(2.0)});
  ctx.force_run(0);
  ctx.enqueue(1);
  ctx.enqueue(2);
  EasyScheduler sched;
  sched.schedule(ctx);
  EXPECT_EQ(ctx.started(), (std::vector<JobId>{2}));
}

TEST(Easy, RejectsBackfillThatWouldDelayHead) {
  // Candidate runs 6h > shadow(4h) and needs 6 nodes > extra(= 12-12+8-8...)
  FakeContext ctx(tiny_cluster(),
                  {job(0).nodes(8).walltime_h(4.0).runtime_h(4.0),
                   job(1).nodes(12).walltime_h(1.0).runtime_h(1.0),
                   job(2).nodes(6).walltime_h(6.0).runtime_h(6.0)});
  ctx.force_run(0);
  ctx.enqueue(1);
  ctx.enqueue(2);
  EasyScheduler sched;
  sched.schedule(ctx);
  // shadow = 4h, extra = (8 free + 8 released) - 12 = 4; candidate needs 6
  // nodes and outlives the shadow: reject.
  EXPECT_TRUE(ctx.started().empty());
}

TEST(Easy, BackfillsLongJobWithinExtraNodes) {
  FakeContext ctx(tiny_cluster(),
                  {job(0).nodes(8).walltime_h(4.0).runtime_h(4.0),
                   job(1).nodes(12).walltime_h(1.0).runtime_h(1.0),
                   job(2).nodes(4).walltime_h(24.0).runtime_h(20.0)});
  ctx.force_run(0);
  ctx.enqueue(1);
  ctx.enqueue(2);
  EasyScheduler sched;
  sched.schedule(ctx);
  // candidate outlives the shadow but uses only the 4 extra nodes
  EXPECT_EQ(ctx.started(), (std::vector<JobId>{2}));
}

TEST(Easy, ExtraBudgetDecreasesAcrossBackfills) {
  FakeContext ctx(tiny_cluster(),
                  {job(0).nodes(8).walltime_h(4.0).runtime_h(4.0),
                   job(1).nodes(12).walltime_h(1.0).runtime_h(1.0),
                   job(2).nodes(3).walltime_h(24.0).runtime_h(20.0),
                   job(3).nodes(3).walltime_h(24.0).runtime_h(20.0)});
  ctx.force_run(0);
  for (JobId i = 1; i <= 3; ++i) ctx.enqueue(i);
  EasyScheduler sched;
  sched.schedule(ctx);
  // extra = 4: job 2 (3 nodes) consumes it; job 3 (3 nodes) must not fit
  EXPECT_EQ(ctx.started(), (std::vector<JobId>{2}));
}

TEST(Easy, MultipleShortBackfills) {
  FakeContext ctx(tiny_cluster(),
                  {job(0).nodes(10).walltime_h(4.0).runtime_h(4.0),
                   job(1).nodes(12).walltime_h(1.0).runtime_h(1.0),
                   job(2).nodes(3).walltime_h(1.0).runtime_h(1.0),
                   job(3).nodes(3).walltime_h(2.0).runtime_h(2.0)});
  ctx.force_run(0);
  for (JobId i = 1; i <= 3; ++i) ctx.enqueue(i);
  EasyScheduler sched;
  sched.schedule(ctx);
  // both candidates end before the 4h shadow and fit the 6 free nodes
  EXPECT_EQ(ctx.started(), (std::vector<JobId>{2, 3}));
}

TEST(Easy, MemoryUnawareShadowIgnoresPoolPressure) {
  // THE baseline pathology this paper targets: the head is blocked on pool
  // bytes, nodes are free, so the node-only shadow is "now" and EASY lets a
  // pool-hungry candidate drain the memory the head is waiting for.
  const ClusterConfig cfg =
      custom_config(4, 4, gib(std::int64_t{64}), gib(std::int64_t{32}),
                    Bytes{0});
  FakeContext ctx(cfg,
                  {/*0: pins 16 GiB of pool*/
                   job(0).nodes(1).mem_gib(80).walltime_h(2.0).runtime_h(2.0),
                   /*1 (head): needs 32 GiB of pool, only 16 free*/
                   job(1).nodes(1).mem_gib(96).walltime_h(1.0).runtime_h(1.0),
                   /*2: needs 16 GiB of pool, 10h long*/
                   job(2).nodes(1).mem_gib(80).walltime_h(10.0).runtime_h(9.0)});
  ctx.force_run(0);
  ctx.enqueue(1);
  ctx.enqueue(2);
  EasyScheduler sched;
  sched.schedule(ctx);
  // memory-unaware EASY happily backfills job 2, starving the head
  EXPECT_EQ(ctx.started(), (std::vector<JobId>{2}));
  EXPECT_EQ(ctx.cluster().pool_free(0), Bytes{0});
}

TEST(Easy, HeadStartsViaPoolWhenAvailable) {
  FakeContext ctx(tiny_cluster(gib(std::int64_t{64})),
                  {job(0).nodes(2).mem_gib(90)});
  ctx.enqueue(0);
  EasyScheduler sched;
  sched.schedule(ctx);
  ASSERT_EQ(ctx.started().size(), 1u);
  EXPECT_LT(ctx.cluster().pool_free(0), gib(std::int64_t{64}));
}

TEST(Easy, EmptyQueueNoOp) {
  FakeContext ctx(tiny_cluster(), {});
  EasyScheduler sched;
  sched.schedule(ctx);
  EXPECT_TRUE(ctx.started().empty());
}


TEST(Easy, SessionLifecycleReleasesEverything) {
  EasyScheduler sched;
  testing::run_lifecycle_scenario(sched);
}

}  // namespace
}  // namespace dmsched
