// The incremental availability contract (sched/profile.hpp):
//  - AvailabilityTimeline unit behavior (push updates, version dirty flag);
//  - a randomized property test pinning the incremental FreeProfile (lazy
//    prefix-state cache, insert/rollback in arbitrary order) to a
//    from-scratch rebuild at every breakpoint;
//  - the scheduler-level fast passes (EASY, conservative) against a fresh
//    full recompute on identical state;
//  - the conservative hold-pricing drift regression (hold the plan that
//    started, not the profile's plan).
#include <gtest/gtest.h>

#include <numeric>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "memory/placement.hpp"
#include "sched/conservative.hpp"
#include "sched/easy.hpp"
#include "sched/profile.hpp"
#include "testing/builders.hpp"
#include "testing/fake_context.hpp"
#include "topology/topology.hpp"

namespace dmsched {
namespace {

using testing::FakeContext;
using testing::job;
using testing::machine;

std::int32_t total_free_nodes(const ResourceState& s) {
  return std::accumulate(s.free_nodes.begin(), s.free_nodes.end(),
                         std::int32_t{0});
}

void expect_states_equal(const ResourceState& a, const ResourceState& b) {
  EXPECT_EQ(a.free_nodes, b.free_nodes);
  EXPECT_EQ(a.pool_free, b.pool_free);
  EXPECT_EQ(a.global_free, b.global_free);
}

// ---------------------------------------------------------------------------
// AvailabilityTimeline: the engine-owned persistent structure.
// ---------------------------------------------------------------------------

TEST(AvailabilityTimeline, TracksStartsFinishesAndVersion) {
  const ClusterConfig config = machine(8, 64, /*rack_pool_gib=*/32,
                                       /*global_pool_gib=*/64);
  AvailabilityTimeline tl(config);
  const ResourceState empty = empty_state(config);
  expect_states_equal(tl.free_now(), empty);
  EXPECT_TRUE(tl.entries().empty());

  TakePlan first;
  first.takes.push_back({0, 2, gib(std::int64_t{8}), gib(std::int64_t{4})});
  const std::uint64_t v0 = tl.version();
  tl.on_start(7, seconds(std::int64_t{100}), first);
  EXPECT_GT(tl.version(), v0);
  EXPECT_EQ(tl.free_now().free_nodes[0], empty.free_nodes[0] - 2);
  EXPECT_EQ(tl.free_now().pool_free[0],
            empty.pool_free[0] - gib(std::int64_t{8}));
  EXPECT_EQ(tl.free_now().global_free,
            empty.global_free - gib(std::int64_t{4}));
  ASSERT_EQ(tl.entries().size(), 1u);
  EXPECT_EQ(tl.entries()[0].job, 7u);

  // An earlier release inserts *before* the existing entry.
  TakePlan second;
  second.takes.push_back({1, 1, Bytes{0}, Bytes{0}});
  tl.on_start(8, seconds(std::int64_t{50}), second);
  ASSERT_EQ(tl.entries().size(), 2u);
  EXPECT_EQ(tl.entries()[0].job, 8u);
  EXPECT_EQ(tl.entries()[1].job, 7u);

  tl.on_finish(7, seconds(std::int64_t{100}));
  ASSERT_EQ(tl.entries().size(), 1u);
  EXPECT_EQ(tl.entries()[0].job, 8u);
  tl.on_finish(8, seconds(std::int64_t{50}));
  expect_states_equal(tl.free_now(), empty);
  EXPECT_TRUE(tl.entries().empty());
}

TEST(AvailabilityTimeline, EqualTimeEntriesKeepStartOrder) {
  const ClusterConfig config = machine(16, 64);
  AvailabilityTimeline tl(config);
  TakePlan one;
  one.takes.push_back({0, 1, Bytes{0}, Bytes{0}});
  const SimTime t = seconds(std::int64_t{500});
  tl.on_start(3, t, one);
  tl.on_start(1, t, one);
  tl.on_start(2, t, one);
  // A rebuild over the running list sorts by (time, start order); pushes at
  // an equal time must land after the existing run, preserving it.
  ASSERT_EQ(tl.entries().size(), 3u);
  EXPECT_EQ(tl.entries()[0].job, 3u);
  EXPECT_EQ(tl.entries()[1].job, 1u);
  EXPECT_EQ(tl.entries()[2].job, 2u);
  tl.on_finish(1, t);
  ASSERT_EQ(tl.entries().size(), 2u);
  EXPECT_EQ(tl.entries()[0].job, 3u);
  EXPECT_EQ(tl.entries()[1].job, 2u);
}

TEST(AvailabilityTimeline, HasReleaseInProbesHalfOpenWindow) {
  const ClusterConfig config = machine(8, 64);
  AvailabilityTimeline tl(config);
  TakePlan one;
  one.takes.push_back({0, 1, Bytes{0}, Bytes{0}});
  tl.on_start(1, seconds(std::int64_t{50}), one);
  tl.on_start(2, seconds(std::int64_t{100}), one);
  EXPECT_FALSE(tl.has_release_in(seconds(std::int64_t{0}),
                                 seconds(std::int64_t{49})));
  EXPECT_TRUE(tl.has_release_in(seconds(std::int64_t{0}),
                                seconds(std::int64_t{50})));
  EXPECT_TRUE(tl.has_release_in(seconds(std::int64_t{50}),
                                seconds(std::int64_t{100})));
  EXPECT_FALSE(tl.has_release_in(seconds(std::int64_t{100}),
                                 seconds(std::int64_t{200})));
}

TEST(AvailabilityTimeline, IdentityIsProcessUnique) {
  const ClusterConfig config = machine(8, 64);
  const AvailabilityTimeline a(config);
  const AvailabilityTimeline b(config);
  EXPECT_NE(a.id(), b.id());
}

// ---------------------------------------------------------------------------
// FreeProfile: randomized incremental-vs-rebuild equivalence.
// ---------------------------------------------------------------------------

TEST(FreeProfileProperty, RandomOpsMatchFromScratchRebuild) {
  const ClusterConfig config = machine(32, 64, /*rack_pool_gib=*/128,
                                       /*global_pool_gib=*/512);
  const PlacementPolicy policy{NodeSelection::kPoolAware,
                               PoolRouting::kRackThenGlobal};
  Rng rng(20260807);
  const SimTime t0 = seconds(std::int64_t{1000});

  const auto random_job = [&]() {
    Job j;
    j.id = 0;
    j.nodes = static_cast<std::int32_t>(rng.uniform_int(1, 5));
    j.mem_per_node = gib(rng.uniform(16.0, 96.0));
    return j;
  };

  // A partially busy machine: the committed plans come back as releases.
  ResourceState busy = empty_state(config);
  std::vector<std::pair<SimTime, TakePlan>> initial;
  for (int i = 0; i < 8; ++i) {
    const Job j = random_job();
    const auto plan = compute_take(busy, config, j, policy);
    if (!plan) continue;
    apply_take(busy, *plan);
    initial.emplace_back(t0 + seconds(rng.uniform(0.0, 150000.0)), *plan);
  }
  ASSERT_GE(initial.size(), 4u);

  // The op log both profiles must agree on. Rollbacks truncate it exactly
  // like FreeProfile::rollback truncates the delta vector.
  struct Op {
    bool hold;
    SimTime a;
    SimTime b;
    TakePlan take;
  };
  std::vector<Op> ops;
  FreeProfile live(busy, t0, &config);
  for (const auto& [t, take] : initial) {
    live.add_release(t, take);
    ops.push_back({false, t, SimTime{}, take});
  }

  const auto verify = [&]() {
    FreeProfile fresh(busy, t0, &config);
    for (const Op& op : ops) {
      if (op.hold) {
        fresh.add_hold(op.a, op.b, op.take);
      } else {
        fresh.add_release(op.a, op.take);
      }
    }
    const auto points = live.breakpoints();
    ASSERT_EQ(points, fresh.breakpoints());
    for (std::size_t i = 0; i < points.size(); ++i) {
      expect_states_equal(live.state_at(points[i]),
                          fresh.state_at(points[i]));
      // Also probe strictly between breakpoints (piecewise-constant spans).
      const SimTime mid =
          points[i] + (i + 1 < points.size()
                           ? usec((points[i + 1] - points[i]).usec() / 2)
                           : seconds(std::int64_t{1}));
      expect_states_equal(live.state_at(mid), fresh.state_at(mid));
    }
  };

  std::vector<std::pair<FreeProfile::Mark, std::size_t>> marks;
  int holds_added = 0;
  int releases_added = 0;
  int rollbacks = 0;
  for (int step = 0; step < 1500; ++step) {
    const double r = rng.uniform();
    if (r < 0.40) {
      // Query at an arbitrary time: warms the lazy prefix-state cache in a
      // random order, so later inserts must invalidate mid-cache rows.
      const SimTime t = t0 + seconds(rng.uniform(0.0, 250000.0));
      const ResourceState s = live.state_at(t);
      ASSERT_GE(total_free_nodes(s), 0);
    } else if (r < 0.58) {
      // A release (always feasible: planned against the empty machine);
      // sometimes in the past, exercising the fold-into-base clamp.
      const auto plan =
          compute_take(empty_state(config), config, random_job(), policy);
      ASSERT_TRUE(plan.has_value());
      const SimTime t = t0 + seconds(rng.uniform(-900.0, 200000.0));
      live.add_release(t, *plan);
      ops.push_back({false, t, SimTime{}, *plan});
      ++releases_added;
    } else if (r < 0.90) {
      // A hold over a window where its plan stays subtractable — the same
      // feasibility sweep the schedulers run before reserving.
      const SimTime start = t0 + seconds(rng.uniform(0.0, 150000.0));
      const SimTime end = start + seconds(rng.uniform(100.0, 40000.0));
      const auto plan =
          compute_take(live.state_at(start), config, random_job(), policy);
      if (!plan) continue;
      bool feasible = true;
      for (SimTime u = live.next_change_after(start); u < end;
           u = live.next_change_after(u)) {
        if (!can_apply(live.state_at(u), *plan)) {
          feasible = false;
          break;
        }
      }
      if (!feasible) continue;
      live.add_hold(start, end, *plan);
      ops.push_back({true, start, end, *plan});
      ++holds_added;
    } else if (r < 0.96 || marks.empty()) {
      marks.emplace_back(live.mark(), ops.size());
    } else {
      const auto [m, n] = marks.back();
      marks.pop_back();
      live.rollback(m);
      ops.resize(n);
      ++rollbacks;
    }
    if (step % 150 == 149) verify();
  }
  verify();
  // The sequence must actually have exercised every op kind.
  EXPECT_GT(holds_added, 100);
  EXPECT_GT(releases_added, 100);
  EXPECT_GT(rollbacks, 5);
}

// ---------------------------------------------------------------------------
// FreeProfile::sync: the push-based invalidation contract.
// ---------------------------------------------------------------------------

TEST(FreeProfileSync, CleanSyncCarriesHoldsAndRebuildDropsThem) {
  FakeContext ctx(machine(8, 64),
                  {job(0).nodes(4).walltime_h(2.0), job(1)});
  ctx.enable_timeline();
  ctx.force_run(0);

  FreeProfile profile;
  EXPECT_FALSE(profile.sync(ctx));  // first sync always rebuilds
  TakePlan hold;  // one node in rack 1 (job 0 fills rack 0)
  hold.takes.push_back({1, 1, Bytes{0}, Bytes{0}});
  profile.add_hold(seconds(std::int64_t{100}), seconds(std::int64_t{200}),
                   hold);

  // Nothing moved: the clean path keeps the tentative hold.
  EXPECT_TRUE(profile.sync(ctx));
  EXPECT_EQ(total_free_nodes(profile.state_at(seconds(std::int64_t{150}))),
            8 - 4 - 1);

  // Advancing now without crossing a delta stays clean too.
  ctx.set_now(seconds(std::int64_t{10}));
  EXPECT_TRUE(profile.sync(ctx));
  EXPECT_EQ(profile.now(), seconds(std::int64_t{10}));

  // A finish bumps the timeline version: full rebuild, holds dropped.
  ctx.finish(0);
  EXPECT_FALSE(profile.sync(ctx));
  EXPECT_EQ(total_free_nodes(profile.state_at(seconds(std::int64_t{150}))),
            8);
}

// ---------------------------------------------------------------------------
// Scheduler fast passes vs. a fresh full recompute on identical state.
// ---------------------------------------------------------------------------

TEST(EasyIncremental, FastPassMatchesFreshScheduler) {
  const std::vector<Job> jobs = {
      job(0).nodes(6).walltime_h(4.0),  // running: fills 6 of 8 nodes
      job(1).nodes(4).walltime_h(2.0),  // head: blocked on nodes
      job(2).nodes(3).walltime_h(1.0),  // would end before the shadow, but
                                        // the machine lacks 3 free nodes
      job(3).nodes(2).walltime_h(5.0),  // late arrival: fits the extra budget
  };
  FakeContext ctx(machine(8, 64), jobs);
  ctx.enable_timeline();
  ctx.force_run(0);
  ctx.enqueue(1);
  ctx.enqueue(2);

  EasyScheduler sched;
  sched.schedule(ctx);
  EXPECT_TRUE(ctx.started().empty());  // converged pass arms the cache

  // Nothing moved, time advanced: the cached pass must not re-decide.
  ctx.set_now(seconds(std::int64_t{600}));
  sched.schedule(ctx);
  EXPECT_TRUE(ctx.started().empty());

  // A new arrival is judged incrementally off the cached shadow budget.
  ctx.enqueue(3);
  sched.schedule(ctx);
  EXPECT_EQ(ctx.started(), (std::vector<JobId>{3}));

  // A fresh scheduler recomputing the same state from scratch agrees.
  FakeContext ref(machine(8, 64), jobs);
  ref.force_run(0);
  ref.set_now(seconds(std::int64_t{600}));
  ref.enqueue(1);
  ref.enqueue(2);
  ref.enqueue(3);
  EasyScheduler fresh;
  fresh.schedule(ref);
  EXPECT_EQ(ref.started(), ctx.started());

  // A finish invalidates the cache: the freed nodes start the head.
  ctx.finish(0);
  sched.schedule(ctx);
  EXPECT_EQ(ctx.started(), (std::vector<JobId>{3, 1}));
}

TEST(ConservativeIncremental, FastPassFitsOnlyNewArrivals) {
  const std::vector<Job> jobs = {
      job(0).nodes(6).walltime_h(4.0),  // running
      job(1).nodes(8).walltime_h(2.0),  // head: reserved at the 4 h drain
      job(2).nodes(2).walltime_h(3.0),  // arrival: fits before the hold
      job(3).nodes(2).walltime_h(6.0),  // arrival: does not fit now
  };
  FakeContext ctx(machine(8, 64), jobs);
  ctx.enable_timeline();
  ctx.force_run(0);
  ctx.enqueue(1);

  ConservativeScheduler sched;
  sched.schedule(ctx);
  EXPECT_TRUE(ctx.started().empty());

  // Fast pass: only the new arrival is fitted, behind the retained hold.
  ctx.enqueue(2);
  sched.schedule(ctx);
  EXPECT_EQ(ctx.started(), (std::vector<JobId>{2}));

  // The start moved resources, so this pass resyncs from scratch.
  ctx.enqueue(3);
  sched.schedule(ctx);
  EXPECT_EQ(ctx.started(), (std::vector<JobId>{2}));

  // Replaying the same sequence against a non-incremental context (no
  // timeline => every pass recomputes) must decide identically.
  FakeContext ref(machine(8, 64), jobs);
  ref.force_run(0);
  ref.enqueue(1);
  ConservativeScheduler full;
  full.schedule(ref);
  ref.enqueue(2);
  full.schedule(ref);
  ref.enqueue(3);
  full.schedule(ref);
  EXPECT_EQ(ref.started(), ctx.started());
}

// ---------------------------------------------------------------------------
// Conservative hold-pricing drift regression.
// ---------------------------------------------------------------------------

// An overdue release (a job running past its walltime bound) makes the
// profile more optimistic than the ledger: here the profile plans job A's
// memory deficit out of rack 1's pool (which the ledger knows is still
// busy), while the live planner routes it through the global pool at a
// higher dilation. The hold recorded for A must price the plan that
// actually started — global bytes, 1.09 dilation, release at 3.09 h — or
// every later reservation in the pass is computed against a fiction. Job C
// (1.075 h) backfills only under the corrected bound; holding the profile's
// rack-pool plan (1.06 dilation, release at 3.06 h) would push the head's
// reservation earlier and reject C.
TEST(ConservativeIncremental, HoldsPriceTheStartedPlanNotTheProfilePlan) {
  const std::vector<Job> jobs = {
      job(0).nodes(2).mem_gib(80.0).walltime_h(10.0),  // drains rack 0 pool
      job(1).nodes(2).mem_gib(80.0).walltime_h(1.0),   // overruns its bound
      job(2).nodes(2).mem_gib(80.0).walltime_h(1.0),   // A: starts now
      job(3).nodes(6).walltime_h(5.0),                 // B: head reservation
      job(4).nodes(2).walltime_h(1.075),               // C: marginal backfill
  };
  FakeContext ctx(machine(8, 64, /*rack_pool_gib=*/32, /*global_pool_gib=*/64),
                  jobs);
  ctx.set_placement({NodeSelection::kPoolAware, PoolRouting::kRackThenGlobal});
  ctx.force_run(0);  // rack 0: 2 nodes + its whole 32 GiB pool
  ctx.force_run(1);  // rack 1: 2 nodes + its whole 32 GiB pool
  // Past job 1's dilated bound (1.06 h) with the job still running: its
  // release is overdue, so the synced profile folds rack 1's nodes and pool
  // back in while the ledger still holds them.
  ctx.set_now(seconds(2.0 * 3600.0));
  ctx.enqueue(2);
  ctx.enqueue(3);
  ctx.enqueue(4);

  ConservativeScheduler sched;
  sched.schedule(ctx);
  EXPECT_EQ(ctx.started(), (std::vector<JobId>{2, 4}));
  // A's deficit really came from the global pool, not a rack pool.
  const RunningJob* a = ctx.running_record(2);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->take.rack_pool_total(), Bytes{0});
  EXPECT_EQ(a->take.global_total(), gib(std::int64_t{32}));
}

// ---------------------------------------------------------------------------
// EASY shadow walk: equal expected ends break ties by job id.
// ---------------------------------------------------------------------------

// Two running jobs release at exactly the same instant. The shadow walk
// accumulates releases in (expected_end, id) order, so which job crosses
// the head's node threshold — and therefore how much extra budget is left
// for backfill — depends on the id tie-break alone.
TEST(EasyShadow, EqualEndTieBreaksTowardSmallerId) {
  const std::vector<Job> jobs = {
      job(0).nodes(2).walltime_h(4.0),
      job(1).nodes(4).walltime_h(4.0),
      job(2).nodes(4).walltime_h(1.0),  // head
      job(3).nodes(2).walltime_h(5.0),  // outlives the shadow
  };
  FakeContext ctx(machine(8, 64), jobs);
  ctx.force_run(0);
  ctx.force_run(1);
  ctx.enqueue(2);
  ctx.enqueue(3);
  EasyScheduler sched;
  sched.schedule(ctx);
  // Walk: 2 free + job 0's 2 nodes == head's 4 ⇒ shadow at 4 h, extra 0.
  // Job 3 outlives the shadow and there is no extra: it must wait. (Visiting
  // job 1 first would leave extra 2 and wrongly start it.)
  EXPECT_TRUE(ctx.started().empty());

  // The same machine with the running list built in the opposite order must
  // decide identically: the walk sorts by (expected_end, id), not by
  // whatever order the context happens to iterate the running set in.
  FakeContext rev(machine(8, 64), jobs);
  rev.force_run(1);
  rev.force_run(0);
  rev.enqueue(2);
  rev.enqueue(3);
  EasyScheduler sched2;
  sched2.schedule(rev);
  EXPECT_TRUE(rev.started().empty());
}

TEST(EasyShadow, SwappedWidthsFlipTheExtraBudget) {
  const std::vector<Job> jobs = {
      job(0).nodes(4).walltime_h(4.0),
      job(1).nodes(2).walltime_h(4.0),
      job(2).nodes(4).walltime_h(1.0),  // head
      job(3).nodes(2).walltime_h(5.0),  // fits the extra budget
  };
  FakeContext ctx(machine(8, 64), jobs);
  ctx.force_run(0);
  ctx.force_run(1);
  ctx.enqueue(2);
  ctx.enqueue(3);
  EasyScheduler sched;
  sched.schedule(ctx);
  // Same machine, node counts swapped: job 0's 4 nodes cross the threshold
  // with 2 to spare, so job 3 backfills against the extra budget.
  EXPECT_EQ(ctx.started(), (std::vector<JobId>{3}));
}

}  // namespace
}  // namespace dmsched
