#include "sched/profile.hpp"

#include <gtest/gtest.h>

#include "cluster/system_config.hpp"
#include "testing/builders.hpp"

namespace dmsched {
namespace {

using testing::job;
using testing::tiny_cluster;

const PlacementPolicy kPolicy{NodeSelection::kFirstFit,
                              PoolRouting::kRackThenGlobal};

TakePlan take_for(const ClusterConfig& cfg, const Job& j,
                  ResourceState state) {
  const auto plan = compute_take(state, cfg, j, kPolicy);
  DMSCHED_ASSERT(plan.has_value(), "test take must fit");
  return *plan;
}

TEST(FreeProfile, FitsNowOnEmptyMachine) {
  const ClusterConfig cfg = tiny_cluster();
  FreeProfile p(empty_state(cfg), hours(1), &cfg);
  const auto fit = p.earliest_fit(job(0).nodes(4).mem_gib(8), kPolicy);
  ASSERT_TRUE(fit.has_value());
  EXPECT_EQ(fit->time, hours(1));
}

TEST(FreeProfile, WaitsForNodeRelease) {
  const ClusterConfig cfg = tiny_cluster();
  ResourceState state = empty_state(cfg);
  // 14 of 16 nodes busy
  const TakePlan busy = take_for(cfg, job(0).nodes(14).mem_gib(8),
                                 empty_state(cfg));
  apply_take(state, busy);
  FreeProfile p(state, SimTime{}, &cfg);
  p.add_release(hours(3), busy);
  const auto fit = p.earliest_fit(job(1).nodes(6).mem_gib(8), kPolicy);
  ASSERT_TRUE(fit.has_value());
  EXPECT_EQ(fit->time, hours(3));
}

TEST(FreeProfile, WaitsForPoolReleaseEvenWithFreeNodes) {
  // The disaggregation-specific case: nodes idle but pool bytes pinned.
  // Single rack of 4 nodes so there is exactly one pool to pin.
  ClusterConfig cfg = tiny_cluster(gib(std::int64_t{32}));
  cfg.total_nodes = 4;
  cfg.nodes_per_rack = 4;
  ResourceState state = empty_state(cfg);
  const Job pinner = job(0).nodes(1).mem_gib(96);  // deficit 32: whole pool
  const TakePlan pin = take_for(cfg, pinner, empty_state(cfg));
  apply_take(state, pin);
  FreeProfile p(state, SimTime{}, &cfg);
  p.add_release(hours(5), pin);

  // 3 nodes are free, but this job needs 8 GiB of the pinned pool.
  const auto fit = p.earliest_fit(job(1).nodes(1).mem_gib(72), kPolicy);
  ASSERT_TRUE(fit.has_value());
  EXPECT_EQ(fit->time, hours(5)) << "must wait for the pool, not the nodes";

  // A local-memory job of the same width starts immediately.
  const auto local_fit = p.earliest_fit(job(2).nodes(1).mem_gib(32), kPolicy);
  ASSERT_TRUE(local_fit.has_value());
  EXPECT_EQ(local_fit->time, SimTime{});
}

TEST(FreeProfile, PicksEarliestSufficientBreakpoint) {
  const ClusterConfig cfg = tiny_cluster();
  ResourceState state = empty_state(cfg);
  const TakePlan a = take_for(cfg, job(0).nodes(8).mem_gib(8), state);
  apply_take(state, a);
  const TakePlan b = take_for(cfg, job(1).nodes(8).mem_gib(8), state);
  apply_take(state, b);
  FreeProfile p(state, SimTime{}, &cfg);
  p.add_release(hours(2), a);  // 8 nodes back at t=2h
  p.add_release(hours(4), b);  // all back at t=4h
  EXPECT_EQ(p.earliest_fit(job(2).nodes(8).mem_gib(8), kPolicy)->time,
            hours(2));
  EXPECT_EQ(p.earliest_fit(job(3).nodes(12).mem_gib(8), kPolicy)->time,
            hours(4));
}

TEST(FreeProfile, HoldDelaysFit) {
  const ClusterConfig cfg = tiny_cluster();
  FreeProfile p(empty_state(cfg), SimTime{}, &cfg);
  // reservation holds 12 nodes during [1h, 3h)
  const TakePlan hold = take_for(cfg, job(0).nodes(12).mem_gib(8),
                                 empty_state(cfg));
  p.add_hold(hours(1), hours(3), hold);
  // Instantaneous fitting: an 8-node job fits at t=0 (the hold has not
  // started); so does a 16-node job — earliest_fit only tests instants.
  EXPECT_EQ(p.earliest_fit(job(1).nodes(8).mem_gib(8), kPolicy)->time,
            SimTime{});
  EXPECT_EQ(p.earliest_fit(job(2).nodes(16).mem_gib(8), kPolicy)->time,
            SimTime{});
  // Window fitting: a 16-node 4 h job collides with the hold at 1h, and
  // must wait until the hold expires at 3h.
  const auto duration = [](const TakePlan&) { return hours(4); };
  const auto windowed =
      p.earliest_fit_window(job(2).nodes(16).mem_gib(8), kPolicy, duration);
  ASSERT_TRUE(windowed.has_value());
  EXPECT_EQ(windowed->time, hours(3));
  // A 4-node 4 h job can coexist with the 12-node hold, but only on the
  // rack the hold leaves free. The greedy first-fit plan at t=0 picks rack
  // 0 (which the hold also wants at 1h), so the window fit is found at the
  // hold's start, where the planner sees exactly the leftover rack. This
  // pins the documented rack-assignment conservatism of window fitting.
  const auto narrow =
      p.earliest_fit_window(job(1).nodes(4).mem_gib(8), kPolicy, duration);
  ASSERT_TRUE(narrow.has_value());
  EXPECT_EQ(narrow->time, hours(1));
}

TEST(FreeProfile, RollbackDropsTentativeHolds) {
  const ClusterConfig cfg = tiny_cluster();
  FreeProfile p(empty_state(cfg), SimTime{}, &cfg);
  const auto mark = p.mark();
  const TakePlan hold = take_for(cfg, job(0).nodes(16).mem_gib(8),
                                 empty_state(cfg));
  p.add_hold(SimTime{}, hours(2), hold);
  EXPECT_EQ(p.earliest_fit(job(1).nodes(1).mem_gib(8), kPolicy)->time,
            hours(2));
  p.rollback(mark);
  EXPECT_EQ(p.earliest_fit(job(1).nodes(1).mem_gib(8), kPolicy)->time,
            SimTime{});
}

TEST(FreeProfile, PastReleaseClampsToNow) {
  const ClusterConfig cfg = tiny_cluster();
  ResourceState state = empty_state(cfg);
  const TakePlan busy = take_for(cfg, job(0).nodes(16).mem_gib(8), state);
  apply_take(state, busy);
  FreeProfile p(state, hours(10), &cfg);
  // the running job overran its walltime bound: expected end is in the past
  p.add_release(hours(8), busy);
  const auto fit = p.earliest_fit(job(1).nodes(1).mem_gib(8), kPolicy);
  ASSERT_TRUE(fit.has_value());
  EXPECT_EQ(fit->time, hours(10));  // treated as "releases any moment"
}

TEST(FreeProfile, NeverFitsReturnsNullopt) {
  const ClusterConfig cfg = tiny_cluster();
  FreeProfile p(empty_state(cfg), SimTime{}, &cfg);
  EXPECT_FALSE(p.earliest_fit(job(0).nodes(17).mem_gib(8), kPolicy)
                   .has_value());
}

TEST(FreeProfile, StateAtAppliesDeltasUpToTime) {
  const ClusterConfig cfg = tiny_cluster();
  ResourceState state = empty_state(cfg);
  const TakePlan busy = take_for(cfg, job(0).nodes(4).mem_gib(8), state);
  apply_take(state, busy);
  FreeProfile p(state, SimTime{}, &cfg);
  p.add_release(hours(2), busy);
  EXPECT_EQ(p.state_at(SimTime{}).total_free_nodes(), 12);
  EXPECT_EQ(p.state_at(hours(1)).total_free_nodes(), 12);
  EXPECT_EQ(p.state_at(hours(2)).total_free_nodes(), 16);
}

TEST(FreeProfile, BreakpointsSortedUnique) {
  const ClusterConfig cfg = tiny_cluster();
  FreeProfile p(empty_state(cfg), SimTime{}, &cfg);
  const TakePlan t1 = take_for(cfg, job(0).nodes(2).mem_gib(8),
                               empty_state(cfg));
  p.add_hold(hours(1), hours(2), t1);
  p.add_hold(hours(1), hours(3), t1);
  const auto bp = p.breakpoints();
  ASSERT_EQ(bp.size(), 4u);  // 0, 1h, 2h, 3h
  EXPECT_EQ(bp[0], SimTime{});
  EXPECT_EQ(bp[1], hours(1));
  EXPECT_EQ(bp[2], hours(2));
  EXPECT_EQ(bp[3], hours(3));
}

TEST(FreeProfile, FromContextMirrorsClusterAndRunningSet) {
  // Build via the real simulation context path.
  const ClusterConfig cfg = tiny_cluster();
  FreeProfile p(empty_state(cfg), SimTime{}, &cfg);
  EXPECT_EQ(p.state_at(SimTime{}).total_free_nodes(), 16);
}

TEST(FreeProfile, FitPlanIsUsableAtThatTime) {
  const ClusterConfig cfg = tiny_cluster(gib(std::int64_t{32}));
  ResourceState state = empty_state(cfg);
  const TakePlan pin = take_for(cfg, job(0).nodes(2).mem_gib(80), state);
  apply_take(state, pin);
  FreeProfile p(state, SimTime{}, &cfg);
  p.add_release(hours(1), pin);
  const Job j = job(1).nodes(4).mem_gib(70);
  const auto fit = p.earliest_fit(j, kPolicy);
  ASSERT_TRUE(fit.has_value());
  // applying the returned plan to the state at that time must not abort
  ResourceState at = p.state_at(fit->time);
  apply_take(at, fit->plan);
}

}  // namespace
}  // namespace dmsched
