#include "sched/fcfs.hpp"

#include <gtest/gtest.h>

#include "testing/builders.hpp"
#include "testing/fake_context.hpp"
#include "testing/lifecycle.hpp"

namespace dmsched {
namespace {

using testing::FakeContext;
using testing::job;
using testing::tiny_cluster;

TEST(Fcfs, StartsEverythingThatFits) {
  FakeContext ctx(tiny_cluster(), {job(0).nodes(4), job(1).nodes(4),
                                   job(2).nodes(8)});
  for (JobId i = 0; i < 3; ++i) ctx.enqueue(i);
  FcfsScheduler sched;
  sched.schedule(ctx);
  EXPECT_EQ(ctx.started(), (std::vector<JobId>{0, 1, 2}));
  EXPECT_EQ(ctx.cluster().free_nodes_total(), 0);
}

TEST(Fcfs, HeadBlocksTail) {
  // head needs 12 nodes, only 8 free: nothing behind it may start
  FakeContext ctx(tiny_cluster(), {job(0).nodes(8), job(1).nodes(12),
                                   job(2).nodes(1)});
  ctx.force_run(0);
  ctx.enqueue(1);
  ctx.enqueue(2);
  FcfsScheduler sched;
  sched.schedule(ctx);
  EXPECT_TRUE(ctx.started().empty()) << "FCFS must not skip the head";
}

TEST(Fcfs, MemoryBlockedHeadAlsoBlocks) {
  // pool = 32 GiB; head's deficit needs 40 -> blocked even with free nodes
  FakeContext ctx(tiny_cluster(gib(std::int64_t{32})),
                  {job(0).nodes(1).mem_gib(104),  // deficit 40 > pool
                   job(1).nodes(1).mem_gib(8)});
  ctx.enqueue(0);
  ctx.enqueue(1);
  FcfsScheduler sched;
  sched.schedule(ctx);
  EXPECT_TRUE(ctx.started().empty());
}

TEST(Fcfs, ProcessesQueueInPolicyOrder) {
  FakeContext ctx(tiny_cluster(), {job(0).at_h(2.0).nodes(2),
                                   job(1).at_h(1.0).nodes(2)});
  ctx.set_now(hours(3));
  ctx.enqueue(0);
  ctx.enqueue(1);
  FcfsScheduler sched;
  sched.schedule(ctx);
  // job 1 submitted earlier: starts first
  EXPECT_EQ(ctx.started(), (std::vector<JobId>{1, 0}));
}

TEST(Fcfs, ResumesAfterCompletion) {
  FakeContext ctx(tiny_cluster(), {job(0).nodes(16), job(1).nodes(16)});
  ctx.force_run(0);
  ctx.enqueue(1);
  FcfsScheduler sched;
  sched.schedule(ctx);
  EXPECT_TRUE(ctx.started().empty());
  ctx.finish(0);
  sched.schedule(ctx);
  EXPECT_EQ(ctx.started(), (std::vector<JobId>{1}));
}

TEST(Fcfs, DeficitJobStartsWhenPoolAvailable) {
  FakeContext ctx(tiny_cluster(gib(std::int64_t{64})),
                  {job(0).nodes(2).mem_gib(80)});
  ctx.enqueue(0);
  FcfsScheduler sched;
  sched.schedule(ctx);
  ASSERT_EQ(ctx.started().size(), 1u);
  // 2 nodes × 16 GiB deficit drawn from rack 0's pool
  EXPECT_EQ(ctx.cluster().pool_free(0), gib(std::int64_t{32}));
}

TEST(Fcfs, EmptyQueueNoOp) {
  FakeContext ctx(tiny_cluster(), {});
  FcfsScheduler sched;
  sched.schedule(ctx);
  EXPECT_TRUE(ctx.started().empty());
}


TEST(Fcfs, SessionLifecycleReleasesEverything) {
  FcfsScheduler sched;
  testing::run_lifecycle_scenario(sched);
}

}  // namespace
}  // namespace dmsched
