#include "common/log.hpp"

#include <gtest/gtest.h>

namespace dmsched {
namespace {

TEST(Log, LevelRoundTrips) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(original);
}

TEST(Log, EmittingBelowThresholdIsSafeNoOp) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  // must not crash and must not evaluate into anything visible
  DMSCHED_LOG_DEBUG("dropped %d", 1);
  DMSCHED_LOG_INFO("dropped %s", "too");
  set_log_level(original);
}

TEST(Log, EmittingAboveThresholdIsSafe) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kDebug);
  DMSCHED_LOG_DEBUG("visible debug %d", 42);
  DMSCHED_LOG_ERROR("visible error");
  set_log_level(original);
}

TEST(Log, LongMessagesAreTruncatedNotCrashing) {
  const std::string big(5000, 'x');
  DMSCHED_LOG_ERROR("%s", big.c_str());
}

}  // namespace
}  // namespace dmsched
