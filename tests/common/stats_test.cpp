#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dmsched {
namespace {

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(StreamingStats, SingleValue) {
  StreamingStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(StreamingStats, KnownMoments) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStats, MergeMatchesSequential) {
  StreamingStats all, left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i < 37 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(StreamingStats, MergeWithEmpty) {
  StreamingStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // copy
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(SampleStats, PercentilesExact) {
  SampleStats s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(95), 95.05, 1e-9);
}

TEST(SampleStats, PercentileOfEmptyIsZero) {
  SampleStats s;
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(SampleStats, SingleSample) {
  SampleStats s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 7.0);
}

TEST(SampleStats, CacheInvalidatedByAdd) {
  SampleStats s;
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 1.0);  // builds the sorted cache
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);  // cache must refresh
}

TEST(SampleStats, UnsortedInput) {
  SampleStats s;
  for (double x : {9.0, 1.0, 5.0, 3.0, 7.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
}

TEST(TimeWeightedMean, ConstantSignal) {
  TimeWeightedMean tw;
  tw.record(0.0, 4.0);
  EXPECT_DOUBLE_EQ(tw.finish(10.0), 4.0);
  EXPECT_DOUBLE_EQ(tw.peak(), 4.0);
}

TEST(TimeWeightedMean, StepSignal) {
  TimeWeightedMean tw;
  tw.record(0.0, 0.0);
  tw.record(5.0, 10.0);  // 0 for [0,5), 10 for [5,10)
  EXPECT_DOUBLE_EQ(tw.finish(10.0), 5.0);
  EXPECT_DOUBLE_EQ(tw.peak(), 10.0);
}

TEST(TimeWeightedMean, MultipleSteps) {
  TimeWeightedMean tw;
  tw.record(0.0, 2.0);
  tw.record(2.0, 6.0);
  tw.record(6.0, 0.0);
  // 2*2 + 6*4 + 0*4 = 28 over 10
  EXPECT_DOUBLE_EQ(tw.finish(10.0), 2.8);
}

TEST(TimeWeightedMean, EmptyIsZero) {
  TimeWeightedMean tw;
  EXPECT_DOUBLE_EQ(tw.finish(10.0), 0.0);
  EXPECT_DOUBLE_EQ(tw.peak(), 0.0);
}

TEST(TimeWeightedMean, RepeatedTimestamp) {
  TimeWeightedMean tw;
  tw.record(0.0, 1.0);
  tw.record(5.0, 2.0);
  tw.record(5.0, 3.0);  // zero-width segment is fine
  EXPECT_DOUBLE_EQ(tw.finish(10.0), (1.0 * 5 + 3.0 * 5) / 10.0);
}

}  // namespace
}  // namespace dmsched
