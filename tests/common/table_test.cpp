#include "common/table.hpp"

#include <gtest/gtest.h>

namespace dmsched {
namespace {

TEST(ConsoleTable, RendersTitleHeaderAndRows) {
  ConsoleTable t("demo");
  t.columns({"name", "value"});
  t.row({"alpha", "1"});
  t.row({"b", "22"});
  const std::string s = t.str();
  EXPECT_NE(s.find("=== demo ==="), std::string::npos);
  EXPECT_NE(s.find("| name "), std::string::npos);
  EXPECT_NE(s.find("| alpha "), std::string::npos);
  EXPECT_NE(s.find("| 22"), std::string::npos);
}

TEST(ConsoleTable, ColumnsAlignToWidestCell) {
  ConsoleTable t("w");
  t.columns({"x"});
  t.row({"longest-cell"});
  t.row({"s"});
  const std::string s = t.str();
  // the short row must be padded to the long cell's width
  EXPECT_NE(s.find("| s            |"), std::string::npos);
}

TEST(ConsoleTable, SeparatorProducesRule) {
  ConsoleTable t("sep");
  t.columns({"a"});
  t.row({"1"});
  t.separator();
  t.row({"2"});
  const std::string s = t.str();
  // top + post-header + separator + bottom = 4 horizontal rules
  std::size_t rules = 0;
  for (std::size_t pos = 0; (pos = s.find("+---", pos)) != std::string::npos;
       ++pos) {
    ++rules;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(ConsoleTable, MismatchedRowWidthAborts) {
  ConsoleTable t("bad");
  t.columns({"a", "b"});
  EXPECT_DEATH(t.row({"only-one"}), "width");
}

TEST(ConsoleTable, EmptyTableStillRenders) {
  ConsoleTable t("empty");
  t.columns({"col"});
  const std::string s = t.str();
  EXPECT_NE(s.find("col"), std::string::npos);
}

}  // namespace
}  // namespace dmsched
