#include "common/time.hpp"

#include <gtest/gtest.h>

namespace dmsched {
namespace {

TEST(SimTime, Constructors) {
  EXPECT_EQ(SimTime{}.usec(), 0);
  EXPECT_EQ(seconds(std::int64_t{3}).usec(), 3'000'000);
  EXPECT_EQ(minutes(2).usec(), 120'000'000);
  EXPECT_EQ(hours(1).usec(), 3'600'000'000LL);
  EXPECT_EQ(days(1).usec(), 86'400'000'000LL);
}

TEST(SimTime, FractionalSecondsRound) {
  EXPECT_EQ(seconds(0.5).usec(), 500'000);
  EXPECT_EQ(seconds(1e-6).usec(), 1);
}

TEST(SimTime, Conversions) {
  EXPECT_DOUBLE_EQ(seconds(std::int64_t{90}).seconds(), 90.0);
  EXPECT_DOUBLE_EQ(hours(3).hours(), 3.0);
}

TEST(SimTime, Arithmetic) {
  EXPECT_EQ((hours(1) + minutes(30)).usec(), minutes(90).usec());
  EXPECT_EQ((hours(1) - minutes(15)).usec(), minutes(45).usec());
}

TEST(SimTime, ScaledAppliesDilation) {
  EXPECT_EQ(seconds(std::int64_t{100}).scaled(1.5).usec(),
            seconds(std::int64_t{150}).usec());
  // rounding to nearest microsecond
  EXPECT_EQ(usec(3).scaled(0.5).usec(), 2);  // 1.5 rounds to 2
  EXPECT_EQ(seconds(std::int64_t{10}).scaled(1.0).usec(),
            seconds(std::int64_t{10}).usec());
}

TEST(SimTime, MinMax) {
  EXPECT_EQ(min(hours(1), hours(2)), hours(1));
  EXPECT_EQ(max(hours(1), hours(2)), hours(2));
}

TEST(SimTime, InfinityIsLargest) {
  EXPECT_LT(days(10000), kTimeInfinity);
}

TEST(SimTime, FormatShort) {
  EXPECT_EQ(format_duration(seconds(std::int64_t{0})), "00:00:00");
  EXPECT_EQ(format_duration(minutes(61) + seconds(std::int64_t{5})),
            "01:01:05");
}

TEST(SimTime, FormatWithDays) {
  EXPECT_EQ(format_duration(days(1) + hours(2) + minutes(33) +
                            seconds(std::int64_t{7})),
            "1-02:33:07");
}

TEST(SimTime, FormatNegative) {
  EXPECT_EQ(format_duration(SimTime{} - minutes(5)), "-00:05:00");
}

}  // namespace
}  // namespace dmsched
