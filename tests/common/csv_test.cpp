#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace dmsched {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/csv_test.csv";

  std::string read_back() {
    std::ifstream in(path_);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, HeaderAndRows) {
  {
    CsvWriter w(path_);
    ASSERT_TRUE(w.ok());
    w.header({"a", "b", "c"});
    w.add("x").add(std::int64_t{7}).add(1.5);
    w.end_row();
  }
  EXPECT_EQ(read_back(), "a,b,c\nx,7,1.5\n");
}

TEST_F(CsvTest, QuotesFieldsWithCommas) {
  {
    CsvWriter w(path_);
    w.header({"v"});
    w.add("hello, world").end_row();
  }
  EXPECT_EQ(read_back(), "v\n\"hello, world\"\n");
}

TEST_F(CsvTest, EscapesEmbeddedQuotes) {
  {
    CsvWriter w(path_);
    w.header({"v"});
    w.add("say \"hi\"").end_row();
  }
  EXPECT_EQ(read_back(), "v\n\"say \"\"hi\"\"\"\n");
}

TEST_F(CsvTest, QuotesNewlines) {
  {
    CsvWriter w(path_);
    w.header({"v"});
    w.add("two\nlines").end_row();
  }
  EXPECT_EQ(read_back(), "v\n\"two\nlines\"\n");
}

TEST_F(CsvTest, SizeTOverload) {
  {
    CsvWriter w(path_);
    w.header({"n"});
    w.add(std::size_t{123}).end_row();
  }
  EXPECT_EQ(read_back(), "n\n123\n");
}

TEST_F(CsvTest, UnwritablePathReportsNotOk) {
  CsvWriter w("/nonexistent-dir/x.csv");
  EXPECT_FALSE(w.ok());
}

TEST_F(CsvTest, DoubleHeaderAborts) {
  CsvWriter w(path_);
  w.header({"a"});
  EXPECT_DEATH(w.header({"b"}), "header");
}

}  // namespace
}  // namespace dmsched
