#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>

namespace dmsched {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64()) ? 1 : 0;
  EXPECT_LE(same, 1);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanConverges) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(3);
  std::array<int, 7> counts{};
  for (int i = 0; i < 14'000; ++i) {
    const auto v = rng.uniform_int(2, 8);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 8);
    ++counts[static_cast<std::size_t>(v - 2)];
  }
  // every value appears roughly 1/7 of the time
  for (int c : counts) EXPECT_NEAR(c, 2000, 300);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(17);
  int hits = 0;
  constexpr int kN = 50'000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(29);
  double sum = 0.0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(0.25);
  EXPECT_NEAR(sum / kN, 4.0, 0.1);
}

TEST(Rng, LognormalMedian) {
  Rng rng(31);
  std::vector<double> xs(20'001);
  for (auto& x : xs) x = rng.lognormal(2.0, 0.8);
  std::nth_element(xs.begin(), xs.begin() + 10'000, xs.end());
  EXPECT_NEAR(xs[10'000], std::exp(2.0), 0.3);
}

TEST(Rng, BoundedParetoStaysInRange) {
  Rng rng(37);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.bounded_pareto(1.2, 1.0, 1000.0);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 1000.0);
  }
}

TEST(Rng, WeightedIndexDistribution) {
  Rng rng(41);
  const std::array<double, 3> weights{1.0, 2.0, 7.0};
  std::array<int, 3> counts{};
  constexpr int kN = 50'000;
  for (int i = 0; i < kN; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kN), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kN), 0.2, 0.015);
  EXPECT_NEAR(counts[2] / static_cast<double>(kN), 0.7, 0.02);
}

TEST(Rng, WeightedIndexZeroWeightNeverPicked) {
  Rng rng(43);
  const std::array<double, 3> weights{0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(rng.weighted_index(weights), 1u);
}

TEST(Rng, ForkIndependence) {
  Rng parent(55);
  Rng child1 = parent.fork(1);
  Rng child2 = parent.fork(2);
  // different tags give different streams
  EXPECT_NE(child1.next_u64(), child2.next_u64());
  // forking does not disturb the parent (const)
  Rng parent2(55);
  [[maybe_unused]] Rng c = parent2.fork(1);
  Rng parent3(55);
  EXPECT_EQ(parent2.next_u64(), parent3.next_u64());
}

TEST(Rng, ShufflePermutes) {
  Rng rng(61);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

}  // namespace
}  // namespace dmsched
