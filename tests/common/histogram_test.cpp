#include "common/histogram.hpp"

#include <gtest/gtest.h>

namespace dmsched {
namespace {

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bin_count(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, CountsLandInRightBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(1.9);   // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(-3.0);
  h.add(42.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 2u);  // nothing dropped
}

TEST(Histogram, Fractions) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  h.add(3.5);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.25);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction(3), 0.25);
}

TEST(Histogram, EmptyFractionIsZero) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
}

TEST(Cdf, EmptyInput) {
  EXPECT_TRUE(empirical_cdf({}, 10).empty());
}

TEST(Cdf, MonotoneNondecreasing) {
  std::vector<double> xs;
  for (int i = 0; i < 997; ++i) xs.push_back((i * 7919) % 1000 / 10.0);
  const auto cdf = empirical_cdf(xs, 50);
  ASSERT_EQ(cdf.size(), 50u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].x, cdf[i - 1].x);
    EXPECT_GE(cdf[i].cumulative_fraction, cdf[i - 1].cumulative_fraction);
  }
  EXPECT_DOUBLE_EQ(cdf.back().cumulative_fraction, 1.0);
}

TEST(Cdf, EndpointsCoverRange) {
  const auto cdf = empirical_cdf({5.0, 1.0, 3.0}, 3);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf.front().x, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().x, 5.0);
}

TEST(Cdf, UniformSamplesGiveLinearCdf) {
  std::vector<double> xs;
  for (int i = 0; i <= 1000; ++i) xs.push_back(static_cast<double>(i));
  const auto cdf = empirical_cdf(xs, 11);
  // F(x) ≈ x/1000
  for (const auto& p : cdf) {
    EXPECT_NEAR(p.cumulative_fraction, p.x / 1000.0, 0.01);
  }
}

}  // namespace
}  // namespace dmsched
