#include "common/cli.hpp"

#include <gtest/gtest.h>

#include <array>

namespace dmsched {
namespace {

Cli make_cli() {
  Cli cli("prog", "test program");
  cli.add_string("name", "default", "a string");
  cli.add_int("count", 5, "an int");
  cli.add_double("rate", 1.5, "a double");
  cli.add_flag("verbose", "a flag");
  return cli;
}

TEST(Cli, DefaultsApplyWithoutArgs) {
  Cli cli = make_cli();
  const std::array argv{"prog"};
  ASSERT_TRUE(cli.parse(1, argv.data()));
  EXPECT_EQ(cli.get_string("name"), "default");
  EXPECT_EQ(cli.get_int("count"), 5);
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 1.5);
  EXPECT_FALSE(cli.get_flag("verbose"));
}

TEST(Cli, EqualsSyntax) {
  Cli cli = make_cli();
  const std::array argv{"prog", "--name=x", "--count=9", "--rate=0.25"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_string("name"), "x");
  EXPECT_EQ(cli.get_int("count"), 9);
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 0.25);
}

TEST(Cli, SpaceSyntax) {
  Cli cli = make_cli();
  const std::array argv{"prog", "--count", "11", "--name", "spaced"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_int("count"), 11);
  EXPECT_EQ(cli.get_string("name"), "spaced");
}

TEST(Cli, BareFlagSetsTrue) {
  Cli cli = make_cli();
  const std::array argv{"prog", "--verbose"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(Cli, FlagExplicitFalse) {
  Cli cli = make_cli();
  const std::array argv{"prog", "--verbose=false"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_FALSE(cli.get_flag("verbose"));
}

TEST(Cli, DuplicateOptionFails) {
  // Repeating an option used to let the last occurrence win silently — a
  // sweep script editing the wrong copy of a flag never noticed. Now every
  // duplicate is rejected, in all three spellings.
  {
    Cli cli = make_cli();
    const std::array argv{"prog", "--count=1", "--count=2"};
    EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  }
  {
    Cli cli = make_cli();
    const std::array argv{"prog", "--count", "1", "--count=2"};
    EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  }
  {
    Cli cli = make_cli();
    const std::array argv{"prog", "--verbose", "--verbose"};
    EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  }
  // Even repeating the identical value is rejected: the second occurrence
  // is still an editing accident, just a lucky one.
  {
    Cli cli = make_cli();
    const std::array argv{"prog", "--name=x", "--name=x"};
    EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  }
  // A bare flag followed by an explicit =false is also a duplicate.
  {
    Cli cli = make_cli();
    const std::array argv{"prog", "--verbose", "--verbose=false"};
    EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  }
}

TEST(Cli, DistinctOptionsDoNotCollide) {
  Cli cli = make_cli();
  const std::array argv{"prog", "--count=1", "--rate=2.5", "--verbose"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_int("count"), 1);
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 2.5);
  EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(Cli, UnknownOptionFails) {
  Cli cli = make_cli();
  const std::array argv{"prog", "--bogus=1"};
  EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(Cli, NonIntegerValueFails) {
  Cli cli = make_cli();
  const std::array argv{"prog", "--count=abc"};
  EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(Cli, MissingValueFails) {
  Cli cli = make_cli();
  const std::array argv{"prog", "--count"};
  EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(Cli, PositionalArgumentFails) {
  Cli cli = make_cli();
  const std::array argv{"prog", "stray"};
  EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(Cli, HelpReturnsFalse) {
  Cli cli = make_cli();
  const std::array argv{"prog", "--help"};
  EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(Cli, UsageListsOptionsAndDefaults) {
  Cli cli = make_cli();
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("default: 5"), std::string::npos);
  EXPECT_NE(usage.find("test program"), std::string::npos);
}

TEST(Cli, ProvidedDistinguishesDefaultsFromExplicitValues) {
  Cli cli = make_cli();
  // Explicitly passing the default value still counts as provided — the
  // user said it, even if it changes nothing.
  const std::array argv{"prog", "--count", "5", "--verbose"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(cli.provided("count"));
  EXPECT_TRUE(cli.provided("verbose"));
  EXPECT_FALSE(cli.provided("name"));
  EXPECT_FALSE(cli.provided("rate"));
}

TEST(Cli, ProvidedUnregisteredAborts) {
  Cli cli = make_cli();
  const std::array argv{"prog"};
  ASSERT_TRUE(cli.parse(1, argv.data()));
  EXPECT_DEATH((void)cli.provided("nope"), "never registered");
}

TEST(Cli, UnregisteredGetAborts) {
  Cli cli = make_cli();
  const std::array argv{"prog"};
  ASSERT_TRUE(cli.parse(1, argv.data()));
  EXPECT_DEATH((void)cli.get_int("nope"), "never registered");
}

TEST(Cli, WrongKindGetAborts) {
  Cli cli = make_cli();
  const std::array argv{"prog"};
  ASSERT_TRUE(cli.parse(1, argv.data()));
  EXPECT_DEATH((void)cli.get_int("name"), "kind mismatch");
}

}  // namespace
}  // namespace dmsched
