#include "common/str.hpp"

#include <gtest/gtest.h>

namespace dmsched {
namespace {

TEST(Str, Strformat) {
  EXPECT_EQ(strformat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strformat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(strformat("empty"), "empty");
}

TEST(Str, StrformatLongOutput) {
  const std::string long_arg(500, 'a');
  EXPECT_EQ(strformat("[%s]", long_arg.c_str()).size(), 502u);
}

TEST(Str, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Str, SplitSingleField) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Str, SplitWsDropsEmpty) {
  const auto parts = split_ws("  1   2\t3\n 4  ");
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "1");
  EXPECT_EQ(parts[3], "4");
}

TEST(Str, SplitWsAllWhitespace) {
  EXPECT_TRUE(split_ws(" \t\n ").empty());
  EXPECT_TRUE(split_ws("").empty());
}

TEST(Str, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Str, ParseI64Valid) {
  std::int64_t v = 0;
  EXPECT_TRUE(parse_i64("123", v));
  EXPECT_EQ(v, 123);
  EXPECT_TRUE(parse_i64("-5", v));
  EXPECT_EQ(v, -5);
  EXPECT_TRUE(parse_i64("  42  ", v));  // trims
  EXPECT_EQ(v, 42);
}

TEST(Str, ParseI64Invalid) {
  std::int64_t v = 0;
  EXPECT_FALSE(parse_i64("", v));
  EXPECT_FALSE(parse_i64("abc", v));
  EXPECT_FALSE(parse_i64("12x", v));
  EXPECT_FALSE(parse_i64("1.5", v));
}

TEST(Str, ParseDoubleValid) {
  double v = 0;
  EXPECT_TRUE(parse_double("1.5", v));
  EXPECT_DOUBLE_EQ(v, 1.5);
  EXPECT_TRUE(parse_double("-2e3", v));
  EXPECT_DOUBLE_EQ(v, -2000.0);
  EXPECT_TRUE(parse_double("7", v));
  EXPECT_DOUBLE_EQ(v, 7.0);
}

TEST(Str, ParseDoubleInvalid) {
  double v = 0;
  EXPECT_FALSE(parse_double("", v));
  EXPECT_FALSE(parse_double("x", v));
  EXPECT_FALSE(parse_double("1.5z", v));
}

TEST(Str, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({"solo"}, ","), "solo");
  EXPECT_EQ(join({}, ","), "");
}

}  // namespace
}  // namespace dmsched
