#include "common/units.hpp"

#include <gtest/gtest.h>

namespace dmsched {
namespace {

TEST(Bytes, DefaultIsZero) {
  EXPECT_EQ(Bytes{}.count(), 0);
  EXPECT_TRUE(Bytes{}.is_zero());
}

TEST(Bytes, UnitConstants) {
  EXPECT_EQ(kKiB.count(), 1024);
  EXPECT_EQ(kMiB.count(), 1024 * 1024);
  EXPECT_EQ(kGiB.count(), std::int64_t{1} << 30);
  EXPECT_EQ(kTiB.count(), std::int64_t{1} << 40);
}

TEST(Bytes, GibHelperIntegral) {
  EXPECT_EQ(gib(std::int64_t{256}).count(), 256 * kGiB.count());
}

TEST(Bytes, GibHelperFractional) {
  EXPECT_EQ(gib(0.5).count(), kGiB.count() / 2);
  EXPECT_DOUBLE_EQ(gib(1.25).gib(), 1.25);
}

TEST(Bytes, Arithmetic) {
  const Bytes a = gib(std::int64_t{3});
  const Bytes b = gib(std::int64_t{1});
  EXPECT_EQ((a + b).count(), gib(std::int64_t{4}).count());
  EXPECT_EQ((a - b).count(), gib(std::int64_t{2}).count());
  EXPECT_EQ((b * 7).count(), gib(std::int64_t{7}).count());
  EXPECT_EQ((7 * b).count(), gib(std::int64_t{7}).count());
}

TEST(Bytes, SubtractionUnderflowAborts) {
  EXPECT_DEATH(
      { [[maybe_unused]] auto r = gib(std::int64_t{1}) - gib(std::int64_t{2}); },
      "negative");
}

TEST(Bytes, Ordering) {
  EXPECT_LT(kMiB, kGiB);
  EXPECT_EQ(min(kMiB, kGiB), kMiB);
  EXPECT_EQ(max(kMiB, kGiB), kGiB);
}

TEST(Bytes, RatioHandlesZeroDenominator) {
  EXPECT_DOUBLE_EQ(ratio(kGiB, Bytes{0}), 0.0);
  EXPECT_DOUBLE_EQ(ratio(kGiB, kGiB * 2), 0.5);
}

TEST(Bytes, FormatSmall) {
  EXPECT_EQ(format_bytes(Bytes{512}), "512 B");
}

TEST(Bytes, FormatScalesUnits) {
  EXPECT_EQ(format_bytes(gib(std::int64_t{128})), "128.0 GiB");
  EXPECT_EQ(format_bytes(kTiB * 2), "2.0 TiB");
  EXPECT_EQ(format_bytes(kMiB + kMiB / 2), "1.5 MiB");
}

}  // namespace
}  // namespace dmsched
