#include "common/resources.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace dmsched {
namespace {

constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();

TEST(CheckedArithmetic, AddAndMulPassThroughInRange) {
  EXPECT_EQ(checked_add_i64(2, 3), 5);
  EXPECT_EQ(checked_add_i64(kMax - 1, 1), kMax);
  EXPECT_EQ(checked_mul_i64(1 << 20, 1 << 20), std::int64_t{1} << 40);
  EXPECT_EQ(checked_mul_i64(kMax, 1), kMax);
  EXPECT_EQ(checked_mul_i64(0, kMax), 0);
  // Negative operands are fine as long as the result fits; only wrap and
  // (for the Bytes forms) negative results are errors.
  EXPECT_EQ(checked_add_i64(-5, 3), -2);
  EXPECT_EQ(checked_mul_i64(-4, 2), -8);
}

TEST(CheckedArithmeticDeathTest, AddOverflowAborts) {
  EXPECT_DEATH((void)checked_add_i64(kMax, 1), "overflowed");
  EXPECT_DEATH((void)checked_add_i64(kMin, -1), "overflowed");
}

TEST(CheckedArithmeticDeathTest, MulOverflowAborts) {
  EXPECT_DEATH((void)checked_mul_i64(kMax, 2), "overflowed");
  EXPECT_DEATH((void)checked_mul_i64(kMin, -1), "overflowed");
  // The Bytes-scale case the header warns about: footprint × width × jobs
  // approaching 2^63. 16 EiB-ish per-node times a wide machine must die,
  // not wrap into a negative capacity.
  EXPECT_DEATH((void)checked_mul(Bytes{kMax / 2}, 3), "overflowed");
}

TEST(CheckedArithmetic, BytesFormsRejectNegativeResults) {
  EXPECT_EQ(checked_add(gib(std::int64_t{1}), gib(std::int64_t{2})),
            gib(std::int64_t{3}));
  EXPECT_EQ(checked_mul(gib(std::int64_t{4}), 8), gib(std::int64_t{32}));
  EXPECT_EQ(checked_mul(Bytes{0}, kMax), Bytes{0});
}

TEST(CheckedArithmeticDeathTest, NegativeByteResultsAbort) {
  // In range for i64 but negative: a byte quantity (capacity, footprint)
  // can never be negative, so the Bytes forms add that check on top.
  EXPECT_DEATH((void)checked_add(Bytes{-10}, Bytes{3}), "negative");
  EXPECT_DEATH((void)checked_mul(gib(std::int64_t{1}), -2), "negative");
}

TEST(ResourceVector, DefaultIsTheEmptyLegacyRequest) {
  const ResourceVector v;
  EXPECT_TRUE(v.is_zero());
  EXPECT_EQ(v.nodes, 0);
  EXPECT_TRUE(v.mem_per_node.is_zero());
  EXPECT_EQ(v.gpus_per_node, 0);
  EXPECT_TRUE(v.bb_bytes.is_zero());
  EXPECT_EQ(v.total_mem(), Bytes{0});
  EXPECT_EQ(v.total_gpus(), 0);
  v.validate();  // the empty request is valid
}

TEST(ResourceVector, AggregatesScaleWithNodes) {
  const ResourceVector v{.nodes = 8,
                         .mem_per_node = gib(std::int64_t{64}),
                         .gpus_per_node = 4,
                         .bb_bytes = gib(std::int64_t{100})};
  EXPECT_FALSE(v.is_zero());
  EXPECT_EQ(v.total_mem(), gib(std::int64_t{512}));
  EXPECT_EQ(v.total_gpus(), 32);
  v.validate();
}

TEST(ResourceVector, AnySingleAxisMakesItNonZero) {
  EXPECT_FALSE((ResourceVector{.nodes = 1}).is_zero());
  EXPECT_FALSE((ResourceVector{.mem_per_node = Bytes{1}}).is_zero());
  EXPECT_FALSE((ResourceVector{.gpus_per_node = 1}).is_zero());
  EXPECT_FALSE((ResourceVector{.bb_bytes = Bytes{1}}).is_zero());
}

TEST(ResourceVectorDeathTest, ValidateRejectsEveryNegativeAxis) {
  EXPECT_DEATH((ResourceVector{.nodes = -1}).validate(), "negative");
  EXPECT_DEATH((ResourceVector{.mem_per_node = Bytes{-1}}).validate(),
               "negative");
  EXPECT_DEATH((ResourceVector{.gpus_per_node = -1}).validate(), "negative");
  EXPECT_DEATH((ResourceVector{.bb_bytes = Bytes{-1}}).validate(), "negative");
}

TEST(ResourceVectorDeathTest, AggregateOverflowAbortsInsteadOfWrapping) {
  const ResourceVector v{.nodes = 3, .mem_per_node = Bytes{kMax / 2}};
  EXPECT_DEATH((void)v.total_mem(), "overflowed");
}

TEST(ResourceVector, EqualityComparesAllAxes) {
  const ResourceVector a{.nodes = 4, .gpus_per_node = 2};
  ResourceVector b = a;
  EXPECT_EQ(a, b);
  b.bb_bytes = Bytes{1};
  EXPECT_NE(a, b);
}

TEST(ResourceAxes, PresetsAndAllOn) {
  EXPECT_TRUE(ResourceAxes::all().all_on());
  EXPECT_TRUE(ResourceAxes{}.all_on());  // default enforces everything
  const ResourceAxes mem = ResourceAxes::memory_only();
  EXPECT_FALSE(mem.all_on());
  EXPECT_FALSE(mem.gpus);
  EXPECT_FALSE(mem.burst_buffer);
  EXPECT_NE(mem, ResourceAxes::all());
  // A partially blind policy is neither preset.
  EXPECT_FALSE((ResourceAxes{.gpus = true, .burst_buffer = false}).all_on());
}

}  // namespace
}  // namespace dmsched
