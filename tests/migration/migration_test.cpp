// Unit coverage for the migration layer: the no-op sentinel, the bandwidth
// model, the scanner's demote/promote proposals, and the draw rewrite that
// turns a decision into a Cluster::retier argument.
#include "migration/migration.hpp"

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "testing/builders.hpp"

namespace dmsched {
namespace {

using testing::tiny_cluster;

Allocation alloc_of(JobId id, std::vector<NodeId> nodes, Bytes local,
                    Bytes far = Bytes{0}, std::vector<PoolDraw> draws = {}) {
  Allocation a;
  a.job = id;
  a.nodes = std::move(nodes);
  a.local_per_node = local;
  a.far_per_node = far;
  a.draws = std::move(draws);
  return a;
}

// --- policy -----------------------------------------------------------------

TEST(MigrationPolicy, DefaultIsTheNoOpSentinel) {
  const MigrationPolicy p;
  EXPECT_FALSE(p.enabled());
  EXPECT_EQ(p.latency_for(gib(std::int64_t{512})), SimTime{});
}

TEST(MigrationPolicy, EnabledByNonZeroInterval) {
  MigrationPolicy p;
  p.check_interval = minutes(10);
  EXPECT_TRUE(p.enabled());
}

TEST(MigrationPolicy, LatencyScalesWithBytesOverBandwidth) {
  MigrationPolicy p;
  p.bandwidth_gibps = 2.0;
  EXPECT_EQ(p.latency_for(gib(std::int64_t{4})).usec(), seconds(2.0).usec());
  EXPECT_EQ(p.latency_for(Bytes{0}), SimTime{});
}

// --- the scanner ------------------------------------------------------------

MigrationPolicy active_policy() {
  MigrationPolicy p;
  p.check_interval = minutes(10);
  return p;
}

TEST(MigrationPlan, DisabledPolicyPlansNothing) {
  Cluster c(tiny_cluster(gib(std::int64_t{100}), gib(std::int64_t{200})));
  c.commit(alloc_of(0, {0}, gib(std::int64_t{64}), gib(std::int64_t{90}),
                    {{0, gib(std::int64_t{90})}}));
  const MigrationEngine engine{MigrationPolicy{}};
  EXPECT_TRUE(engine.plan(c, {0}).empty());
}

TEST(MigrationPlan, SingleTierMachinesPlanNothing) {
  // No rack tier (or no global tier): there is nowhere to grade bytes to.
  Cluster rackless(tiny_cluster(Bytes{0}, gib(std::int64_t{200})));
  Cluster globaless(tiny_cluster(gib(std::int64_t{100})));
  const MigrationEngine engine{active_policy()};
  EXPECT_TRUE(engine.plan(rackless, {}).empty());
  EXPECT_TRUE(engine.plan(globaless, {}).empty());
}

TEST(MigrationPlan, DemotesDrawsFromContendedPools) {
  Cluster c(tiny_cluster(gib(std::int64_t{100}), gib(std::int64_t{200})));
  // Rack 0's pool at 90% — above the 0.85 default threshold.
  c.commit(alloc_of(0, {0}, gib(std::int64_t{64}), gib(std::int64_t{90}),
                    {{0, gib(std::int64_t{90})}}));
  const MigrationEngine engine{active_policy()};
  const auto moves = engine.plan(c, {0});
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].job, 0u);
  EXPECT_EQ(moves[0].kind, MigrationKind::kDemote);
  EXPECT_EQ(moves[0].rack, 0);
  EXPECT_FALSE(moves[0].neighbor);
  EXPECT_EQ(moves[0].bytes, gib(std::int64_t{90}));
}

TEST(MigrationPlan, UncontendedPoolsAreLeftAlone) {
  Cluster c(tiny_cluster(gib(std::int64_t{100}), gib(std::int64_t{200})));
  // 80% < threshold: no demotion; and 0.80 >= band (0.60) blocks promotion
  // into the same rack, so the scan proposes nothing at all.
  c.commit(alloc_of(0, {0}, gib(std::int64_t{64}), gib(std::int64_t{80}),
                    {{0, gib(std::int64_t{80})}}));
  const MigrationEngine engine{active_policy()};
  EXPECT_TRUE(engine.plan(c, {0}).empty());
}

TEST(MigrationPlan, DemotionRequiresGlobalHeadroom) {
  // Global pool too small to absorb the draw: the move is not proposed.
  Cluster c(tiny_cluster(gib(std::int64_t{100}), gib(std::int64_t{50})));
  c.commit(alloc_of(0, {0}, gib(std::int64_t{64}), gib(std::int64_t{90}),
                    {{0, gib(std::int64_t{90})}}));
  const MigrationEngine engine{active_policy()};
  EXPECT_TRUE(engine.plan(c, {0}).empty());
}

TEST(MigrationPlan, AtMostOneMovePerJobPerScan) {
  Cluster c(tiny_cluster(gib(std::int64_t{100}), gib(std::int64_t{400})));
  // Job 0 draws from two pools, both pushed over the threshold.
  c.commit(alloc_of(0, {0, 4}, gib(std::int64_t{64}), gib(std::int64_t{90}),
                    {{0, gib(std::int64_t{90})}, {1, gib(std::int64_t{90})}}));
  const MigrationEngine engine{active_policy()};
  const auto moves = engine.plan(c, {0});
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].rack, 0);  // first draw wins; one move per scan
}

TEST(MigrationPlan, InScanDecisionsSeeEachOther) {
  // Two jobs share rack 0's pool (45 + 45 = 90%). Demoting the first
  // relieves the pool below the threshold, so the second stays put —
  // without the working copies both would demote and overshoot.
  Cluster c(tiny_cluster(gib(std::int64_t{100}), gib(std::int64_t{400})));
  c.commit(alloc_of(0, {0}, gib(std::int64_t{64}), gib(std::int64_t{45}),
                    {{0, gib(std::int64_t{45})}}));
  c.commit(alloc_of(1, {4}, gib(std::int64_t{64}), gib(std::int64_t{45}),
                    {{0, gib(std::int64_t{45}), true}}));
  const MigrationEngine engine{active_policy()};
  const auto moves = engine.plan(c, {0, 1});
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].job, 0u);
  EXPECT_EQ(moves[0].kind, MigrationKind::kDemote);
}

TEST(MigrationPlan, NeighborDrawsDemoteWithTheFlagPreserved) {
  Cluster c(tiny_cluster(gib(std::int64_t{100}), gib(std::int64_t{200})));
  c.commit(alloc_of(0, {0}, gib(std::int64_t{64}), gib(std::int64_t{90}),
                    {{1, gib(std::int64_t{90}), true}}));
  const MigrationEngine engine{active_policy()};
  const auto moves = engine.plan(c, {0});
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].kind, MigrationKind::kDemote);
  EXPECT_EQ(moves[0].rack, 1);
  EXPECT_TRUE(moves[0].neighbor);
}

TEST(MigrationPlan, PromotesGlobalBytesIntoAHostingRackWithHeadroom) {
  Cluster c(tiny_cluster(gib(std::int64_t{100}), gib(std::int64_t{200})));
  c.commit(alloc_of(0, {0}, gib(std::int64_t{64}), gib(std::int64_t{30}),
                    {{kGlobalPoolRack, gib(std::int64_t{30})}}));
  const MigrationEngine engine{active_policy()};
  const auto moves = engine.plan(c, {0});
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].kind, MigrationKind::kPromote);
  EXPECT_EQ(moves[0].rack, 0);  // the hosting rack
  EXPECT_FALSE(moves[0].neighbor);
  EXPECT_EQ(moves[0].bytes, gib(std::int64_t{30}));
}

TEST(MigrationPlan, PromotionIsClampedToTheHysteresisCeiling) {
  // band = 0.85 - 0.25 = 0.60 of a 100 GiB pool: a 90 GiB global draw only
  // promotes 60 GiB, so the landing never re-triggers a demotion.
  Cluster c(tiny_cluster(gib(std::int64_t{100}), gib(std::int64_t{200})));
  c.commit(alloc_of(0, {0}, gib(std::int64_t{64}), gib(std::int64_t{90}),
                    {{kGlobalPoolRack, gib(std::int64_t{90})}}));
  const MigrationEngine engine{active_policy()};
  const auto moves = engine.plan(c, {0});
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].kind, MigrationKind::kPromote);
  EXPECT_EQ(moves[0].bytes, gib(std::int64_t{60}));
}

TEST(MigrationPlan, NonPositiveBandDisablesPromotions) {
  MigrationPolicy p = active_policy();
  p.demote_threshold = 0.2;
  p.promote_headroom = 0.25;  // band < 0: promotion can never stabilise
  Cluster c(tiny_cluster(gib(std::int64_t{100}), gib(std::int64_t{200})));
  c.commit(alloc_of(0, {0}, gib(std::int64_t{64}), gib(std::int64_t{30}),
                    {{kGlobalPoolRack, gib(std::int64_t{30})}}));
  const MigrationEngine engine{p};
  EXPECT_TRUE(engine.plan(c, {0}).empty());
}

TEST(MigrationPlan, DemotionsComeBeforePromotionsInOneScan) {
  Cluster c(tiny_cluster(gib(std::int64_t{100}), gib(std::int64_t{400})));
  // Job 0: promote candidate (global bytes, hosting rack 0 idle).
  c.commit(alloc_of(0, {0}, gib(std::int64_t{64}), gib(std::int64_t{20}),
                    {{kGlobalPoolRack, gib(std::int64_t{20})}}));
  // Job 1: demote candidate (rack 1 at 90%).
  c.commit(alloc_of(1, {4}, gib(std::int64_t{64}), gib(std::int64_t{90}),
                    {{1, gib(std::int64_t{90})}}));
  const MigrationEngine engine{active_policy()};
  const auto moves = engine.plan(c, {0, 1});
  ASSERT_EQ(moves.size(), 2u);
  EXPECT_EQ(moves[0].kind, MigrationKind::kDemote);
  EXPECT_EQ(moves[0].job, 1u);
  EXPECT_EQ(moves[1].kind, MigrationKind::kPromote);
  EXPECT_EQ(moves[1].job, 0u);
}

TEST(MigrationPlan, InFlightJobsAreSkipped) {
  Cluster c(tiny_cluster(gib(std::int64_t{100}), gib(std::int64_t{200})));
  c.commit(alloc_of(0, {0}, gib(std::int64_t{64}), gib(std::int64_t{90}),
                    {{0, gib(std::int64_t{90})}}));
  MigrationEngine engine{active_policy()};
  engine.on_dispatch(0);
  EXPECT_TRUE(engine.in_flight(0));
  EXPECT_TRUE(engine.plan(c, {0}).empty());
  engine.on_applied(0);
  EXPECT_FALSE(engine.in_flight(0));
  EXPECT_EQ(engine.plan(c, {0}).size(), 1u);
  // A finish also clears the slot (the delayed move finds the job gone).
  engine.on_dispatch(0);
  engine.on_job_finished(0);
  EXPECT_FALSE(engine.in_flight(0));
}

// --- rewrite_draws ----------------------------------------------------------

TEST(RewriteDraws, DemotionMovesBytesToTheGlobalDraw) {
  const Allocation a =
      alloc_of(0, {0}, gib(std::int64_t{64}), gib(std::int64_t{30}),
               {{0, gib(std::int64_t{20})}, {kGlobalPoolRack, gib(std::int64_t{10})}});
  const auto out = rewrite_draws(
      a, {0, MigrationKind::kDemote, 0, false, gib(std::int64_t{5})});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].rack, 0);
  EXPECT_EQ(out[0].bytes, gib(std::int64_t{15}));
  EXPECT_FALSE(out[0].neighbor);
  EXPECT_EQ(out[1].rack, kGlobalPoolRack);
  EXPECT_EQ(out[1].bytes, gib(std::int64_t{15}));
}

TEST(RewriteDraws, FullDemotionDropsTheSourceDraw) {
  const Allocation a = alloc_of(0, {0}, gib(std::int64_t{64}),
                                gib(std::int64_t{20}),
                                {{1, gib(std::int64_t{20}), true}});
  const auto out = rewrite_draws(
      a, {0, MigrationKind::kDemote, 1, true, gib(std::int64_t{20})});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rack, kGlobalPoolRack);
  EXPECT_EQ(out[0].bytes, gib(std::int64_t{20}));
}

TEST(RewriteDraws, PromotionCreatesOrTopsUpTheRackDraw) {
  const Allocation a =
      alloc_of(0, {0}, gib(std::int64_t{64}), gib(std::int64_t{30}),
               {{kGlobalPoolRack, gib(std::int64_t{30})}});
  const auto out = rewrite_draws(
      a, {0, MigrationKind::kPromote, 0, false, gib(std::int64_t{12})});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].rack, 0);
  EXPECT_EQ(out[0].bytes, gib(std::int64_t{12}));
  EXPECT_EQ(out[1].rack, kGlobalPoolRack);
  EXPECT_EQ(out[1].bytes, gib(std::int64_t{18}));
}

TEST(RewriteDraws, CanonicalOrderIsOwnNeighborGlobal) {
  // Input deliberately scrambled; far total 50.
  const Allocation a = alloc_of(
      0, {0}, gib(std::int64_t{64}), gib(std::int64_t{50}),
      {{kGlobalPoolRack, gib(std::int64_t{10})},
       {3, gib(std::int64_t{10}), true},
       {0, gib(std::int64_t{10})},
       {1, gib(std::int64_t{10}), true},
       {0, gib(std::int64_t{10})}});  // duplicate own-rack draw: coalesced
  const auto out = rewrite_draws(
      a, {0, MigrationKind::kDemote, 3, true, gib(std::int64_t{4})});
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].rack, 0);  // own-rack draws first, coalesced
  EXPECT_FALSE(out[0].neighbor);
  EXPECT_EQ(out[0].bytes, gib(std::int64_t{20}));
  EXPECT_EQ(out[1].rack, 1);  // then neighbor draws, rack ascending
  EXPECT_TRUE(out[1].neighbor);
  EXPECT_EQ(out[2].rack, 3);
  EXPECT_TRUE(out[2].neighbor);
  EXPECT_EQ(out[2].bytes, gib(std::int64_t{6}));
  EXPECT_EQ(out[3].rack, kGlobalPoolRack);  // the global draw last
  EXPECT_EQ(out[3].bytes, gib(std::int64_t{14}));
  // The rewrite conserves the far total.
  Bytes total{};
  for (const auto& d : out) total += d.bytes;
  EXPECT_EQ(total, gib(std::int64_t{50}));
}

TEST(RewriteDrawsDeath, DemotionBeyondTheSourceDrawAborts) {
  const Allocation a = alloc_of(0, {0}, gib(std::int64_t{64}),
                                gib(std::int64_t{10}),
                                {{0, gib(std::int64_t{10})}});
  EXPECT_DEATH(
      (void)rewrite_draws(
          a, {0, MigrationKind::kDemote, 0, false, gib(std::int64_t{11})}),
      "exceeds the source draw");
}

TEST(RewriteDrawsDeath, PromotionBeyondTheGlobalDrawAborts) {
  const Allocation a =
      alloc_of(0, {0}, gib(std::int64_t{64}), gib(std::int64_t{10}),
               {{kGlobalPoolRack, gib(std::int64_t{10})}});
  EXPECT_DEATH(
      (void)rewrite_draws(
          a, {0, MigrationKind::kPromote, 0, false, gib(std::int64_t{11})}),
      "exceeds the global draw");
}

TEST(MigrationKindNames, RoundTrip) {
  EXPECT_STREQ(to_string(MigrationKind::kDemote), "demote");
  EXPECT_STREQ(to_string(MigrationKind::kPromote), "promote");
}

}  // namespace
}  // namespace dmsched
