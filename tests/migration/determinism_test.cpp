// Migration determinism: live tier migration must preserve every
// reproducibility contract the engine already pins — same seed → same
// schedule, eager ≡ streamed ingestion at every look-ahead window, sweep
// thread-count invariance — and the default 0-sentinel policy must be a
// *byte-identical* no-op, not merely a quiet one. Migration events carry
// their own class (kMigration, after kCompletion at the same timestamp), so
// the (time, class, seq) order — and with it the semantic digest — is a
// pure function of the inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/experiment.hpp"
#include "core/factory.hpp"
#include "core/sweep.hpp"
#include "obs/recording_sink.hpp"
#include "topology/placement_policy.hpp"
#include "workload/scenarios.hpp"
#include "workload/trace_source.hpp"

namespace dmsched {
namespace {

ScenarioParams small_params() {
  ScenarioParams p;
  p.jobs = 250;
  return p;
}

/// Aggressive-but-plausible knobs so the small test trace actually migrates:
/// a short scan period, a lowered contention threshold, and a finite copy
/// bandwidth so the delayed-apply path (dispatch → in-flight → land) is
/// exercised, not just the instantaneous one.
EngineOptions migration_options() {
  EngineOptions o;
  o.placement = make_placement(PlacementStrategy::kSharedNeighbors);
  o.migration.check_interval = minutes(15);
  o.migration.demote_threshold = 0.5;
  o.migration.promote_headroom = 0.2;
  o.migration.bandwidth_gibps = 4.0;
  return o;
}

struct RunResult {
  RunMetrics metrics;
  std::uint64_t digest = 0;
};

RunResult run_eager(const Scenario& s, EngineOptions opts,
                    std::size_t lookahead = 0) {
  opts.submit_lookahead = lookahead;
  SchedulingSimulation sim(s.cluster, s.trace,
                           make_scheduler(SchedulerKind::kMemAwareEasy, {}),
                           opts);
  RunResult r;
  r.metrics = sim.run();
  r.digest = sim.event_digest();
  return r;
}

RunResult run_streamed(const Scenario& s, EngineOptions opts,
                       std::size_t lookahead) {
  opts.submit_lookahead = lookahead;
  EagerTraceSource source(s.trace);  // sources are single-use: fresh per run
  SchedulingSimulation sim(s.cluster, source,
                           make_scheduler(SchedulerKind::kMemAwareEasy, {}),
                           opts);
  RunResult r;
  r.metrics = sim.run();
  r.digest = sim.event_digest();
  return r;
}

void expect_identical(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.makespan.usec(), b.makespan.usec());
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.mean_bsld, b.mean_bsld);          // EXPECT_EQ on doubles is
  EXPECT_EQ(a.mean_dilation, b.mean_dilation);  // deliberate: the contract
  EXPECT_EQ(a.demotions, b.demotions);          // is bit-reproducibility
  EXPECT_EQ(a.promotions, b.promotions);
  EXPECT_EQ(a.demoted_gib, b.demoted_gib);
  EXPECT_EQ(a.promoted_gib, b.promoted_gib);
  EXPECT_EQ(a.neighbor_access_fraction, b.neighbor_access_fraction);
}

TEST(MigrationDeterminism, SameSeedSameScheduleWithMigrationOn) {
  const Scenario s = make_scenario("shared-neighbors", small_params());
  const RunResult a = run_eager(s, migration_options());
  const RunResult b = run_eager(s, migration_options());
  // Non-vacuous: the knobs above must actually move bytes on this trace.
  ASSERT_GT(a.metrics.demotions + a.metrics.promotions, 0u);
  expect_identical(a.metrics, b.metrics);
  EXPECT_EQ(a.digest, b.digest);
}

TEST(MigrationDeterminism, EagerMatchesStreamedAtEveryLookahead) {
  const Scenario s = make_scenario("shared-neighbors", small_params());
  const RunResult eager = run_eager(s, migration_options());
  ASSERT_GT(eager.metrics.demotions + eager.metrics.promotions, 0u);
  for (const std::size_t w : {std::size_t{1}, std::size_t{7},
                              s.trace.size() + 10}) {
    SCOPED_TRACE("lookahead " + std::to_string(w));
    const RunResult streamed = run_streamed(s, migration_options(), w);
    expect_identical(eager.metrics, streamed.metrics);
    EXPECT_EQ(eager.digest, streamed.digest);
  }
}

TEST(MigrationDeterminism, SweepIsThreadCountInvariant) {
  const Scenario s = make_scenario("shared-neighbors", small_params());
  ExperimentConfig base =
      scenario_experiment(s, SchedulerKind::kMemAwareEasy);
  base.engine = migration_options();
  // Two arms (instantaneous and bandwidth-delayed applies) so the sweep has
  // real parallelism to mis-order if it could.
  ExperimentConfig instant = base;
  instant.engine.migration.bandwidth_gibps = 0.0;
  const std::vector<ExperimentConfig> configs = {base, instant};
  const auto serial = run_sweep_on_trace(configs, s.trace, /*threads=*/1);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const auto parallel = run_sweep_on_trace(configs, s.trace, hw);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("config " + std::to_string(i));
    expect_identical(serial[i], parallel[i]);
  }
}

TEST(MigrationDeterminism, DefaultPolicyIsAByteIdenticalNoOp) {
  // The 0-sentinel contract behind every published golden: a zero
  // check_interval disables migration *entirely*, even with every other
  // knob cranked — no events, no digest drift, no metric motion.
  const Scenario s = make_scenario("shared-neighbors", small_params());
  EngineOptions plain;
  plain.placement = make_placement(PlacementStrategy::kSharedNeighbors);
  EngineOptions sentinel = plain;
  sentinel.migration.check_interval = SimTime{};  // the sentinel
  sentinel.migration.demote_threshold = 0.1;
  sentinel.migration.promote_headroom = 0.0;
  sentinel.migration.bandwidth_gibps = 100.0;
  const RunResult a = run_eager(s, plain);
  const RunResult b = run_eager(s, sentinel);
  EXPECT_EQ(a.metrics.demotions, 0u);
  EXPECT_EQ(b.metrics.promotions, 0u);
  expect_identical(a.metrics, b.metrics);
  EXPECT_EQ(a.digest, b.digest);
}

TEST(MigrationDeterminism, MigrationEventsAreOrderedAndPassive) {
  // The recorded move stream is time-ordered (the (time, class, seq) queue
  // order), every move re-prices the job, and *observing* the moves is
  // passive: attaching the sink changes no bit of the run.
  const Scenario s = make_scenario("shared-neighbors", small_params());
  const RunResult plain = run_eager(s, migration_options());

  obs::RecordingSink sink;
  EngineOptions opts = migration_options();
  opts.sink = &sink;
  const RunResult observed = run_eager(s, opts);
  expect_identical(plain.metrics, observed.metrics);
  EXPECT_EQ(plain.digest, observed.digest);

  ASSERT_EQ(sink.migrated.size(),
            plain.metrics.demotions + plain.metrics.promotions);
  SimTime prev{};
  for (const auto& m : sink.migrated) {
    EXPECT_GE(m.at.usec(), prev.usec());
    prev = m.at;
    EXPECT_GT(m.gib, 0.0);
    EXPECT_GT(m.dilation_before, 0.0);
    EXPECT_GT(m.dilation_after, 0.0);
    EXPECT_LE(m.at.usec(), plain.metrics.makespan.usec());
  }
  const auto demotes = static_cast<std::size_t>(
      std::count_if(sink.migrated.begin(), sink.migrated.end(),
                    [](const auto& m) { return m.demote; }));
  EXPECT_EQ(demotes, plain.metrics.demotions);
  EXPECT_EQ(sink.migrated.size() - demotes, plain.metrics.promotions);
}

TEST(MigrationDeterminism, AuditStaysGreenThroughEveryMove) {
  // Belt-and-braces for the ledger: run with the full O(nodes) audit after
  // every transition, migration on. Any retier that left a pool or the
  // neighbor ledger inconsistent aborts the test.
  const Scenario s = make_scenario("shared-neighbors", small_params());
  EngineOptions opts = migration_options();
  opts.audit_cluster = true;
  const RunResult audited = run_eager(s, opts);
  ASSERT_GT(audited.metrics.demotions + audited.metrics.promotions, 0u);
  expect_identical(run_eager(s, migration_options()).metrics,
                   audited.metrics);
}

}  // namespace
}  // namespace dmsched
