#include "core/factory.hpp"

#include <gtest/gtest.h>

namespace dmsched {
namespace {

TEST(Factory, NamesRoundTrip) {
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    EXPECT_EQ(scheduler_kind_from_string(to_string(kind)), kind);
  }
}

TEST(Factory, UnknownNameAborts) {
  EXPECT_DEATH((void)scheduler_kind_from_string("slurm"), "unknown");
}

TEST(Factory, AllKindsListedOnce) {
  const auto kinds = all_scheduler_kinds();
  EXPECT_EQ(kinds.size(), 5u);
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    for (std::size_t k = i + 1; k < kinds.size(); ++k) {
      EXPECT_NE(kinds[i], kinds[k]);
    }
  }
}

TEST(Factory, InstantiatesEveryKindWithMatchingName) {
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    const auto scheduler = make_scheduler(kind);
    ASSERT_NE(scheduler, nullptr);
    EXPECT_STREQ(scheduler->name(), to_string(kind));
  }
}

TEST(Factory, MemOptionsReachMemAwareVariants) {
  MemAwareOptions options;
  options.adaptive = true;  // must be overridden per kind
  EXPECT_STREQ(make_scheduler(SchedulerKind::kMemAwareEasy, options)->name(),
               "mem-easy");
  options.adaptive = false;
  EXPECT_STREQ(make_scheduler(SchedulerKind::kAdaptive, options)->name(),
               "adaptive");
}

}  // namespace
}  // namespace dmsched
