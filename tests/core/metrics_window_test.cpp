// Checkpointed metrics windows: alignment to sim-time multiples of the
// interval, half-open boundary attribution, the trailing partial window,
// and conservation — summing the windows reproduces the end-of-run
// aggregates for every additive metric. Windowing is passive: turning it
// on must not perturb anything else.
#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/engine.hpp"
#include "core/experiment.hpp"
#include "core/factory.hpp"
#include "testing/builders.hpp"
#include "workload/scenarios.hpp"

namespace dmsched {
namespace {

using testing::job;
using testing::machine;
using testing::trace_of;

RunMetrics run_windowed(const ClusterConfig& cluster, const Trace& trace,
                        SimTime interval) {
  EngineOptions opts;
  opts.checkpoint_interval = interval;
  SchedulingSimulation sim(cluster, trace,
                           make_scheduler(SchedulerKind::kEasy, {}), opts);
  return sim.run();
}

TEST(MetricsWindows, BoundariesAlignToIntervalMultiples) {
  // Three jobs spanning 3.5 h on 4 nodes; hourly windows.
  const Trace t = trace_of({job(0).at_h(0.0).nodes(2).runtime_h(1.0),
                            job(1).at_h(0.5).nodes(2).runtime_h(1.0),
                            job(2).at_h(3.0).nodes(4).runtime_h(0.5)});
  const RunMetrics m = run_windowed(machine(4, 64.0), t, hours(1));
  ASSERT_EQ(m.windows.size(), 4u);  // [0,1) [1,2) [2,3) and the partial
  for (std::size_t i = 0; i < m.windows.size(); ++i) {
    SCOPED_TRACE("window " + std::to_string(i));
    EXPECT_EQ(m.windows[i].start.usec(),
              hours(static_cast<std::int64_t>(i)).usec());
    if (i + 1 < m.windows.size()) {
      // Contiguous: each window ends where the next begins.
      EXPECT_EQ(m.windows[i].end.usec(), m.windows[i + 1].start.usec());
      EXPECT_EQ(m.windows[i].width_seconds(), 3600.0);
    }
  }
  // The trailing partial window ends at the last completion, not at the
  // next interval boundary.
  const MetricsWindow& last = m.windows.back();
  EXPECT_EQ(last.end.usec(), hours(3).usec() + minutes(30).usec());
  EXPECT_EQ(last.width_seconds(), 1800.0);
}

TEST(MetricsWindows, BoundaryEventsAttributeToTheLaterWindow) {
  // Windows are half-open [k·w, (k+1)·w): a submission at exactly t = 1 h
  // belongs to window 1, not window 0.
  const Trace t = trace_of({job(0).at_h(0.0).nodes(1).runtime_h(0.25),
                            job(1).at_h(1.0).nodes(1).runtime_h(0.25)});
  const RunMetrics m = run_windowed(machine(4, 64.0), t, hours(1));
  ASSERT_GE(m.windows.size(), 2u);
  EXPECT_EQ(m.windows[0].jobs_submitted, 1u);
  EXPECT_EQ(m.windows[1].jobs_submitted, 1u);
  EXPECT_EQ(m.windows[1].start.usec(), hours(1).usec());
}

TEST(MetricsWindows, AdditiveMetricsSumToTheRunAggregates) {
  const Trace t = trace_of({job(0).at_h(0.0).nodes(2).runtime_h(1.0),
                            job(1).at_h(0.5).nodes(2).runtime_h(1.0),
                            job(2).at_h(3.0).nodes(4).runtime_h(0.5)});
  const ClusterConfig cluster = machine(4, 64.0);
  const RunMetrics m = run_windowed(cluster, t, hours(1));

  std::size_t submitted = 0, started = 0, finished = 0, rejected = 0;
  double busy_node_seconds = 0.0;
  for (const MetricsWindow& w : m.windows) {
    submitted += w.jobs_submitted;
    started += w.jobs_started;
    finished += w.jobs_finished;
    rejected += w.jobs_rejected;
    busy_node_seconds += w.busy_node_seconds;
  }
  EXPECT_EQ(submitted, t.size());
  EXPECT_EQ(started, 3u);
  EXPECT_EQ(finished, m.completed + m.killed);
  EXPECT_EQ(rejected, m.rejected);
  // Σ busy node-seconds across windows == utilization × nodes × makespan.
  const double expected = m.node_utilization *
                          static_cast<double>(cluster.total_nodes) *
                          m.makespan.seconds();
  EXPECT_NEAR(busy_node_seconds, expected, 1e-6 * expected + 1e-9);
  // And it equals the direct sum of (nodes × runtime): 2+2 node-hours for
  // the first two jobs, 2 for the wide one.
  EXPECT_NEAR(busy_node_seconds, 6.0 * 3600.0, 1e-6);
}

TEST(MetricsWindows, ConservationHoldsOnALibraryScenario) {
  ScenarioParams p;
  p.jobs = 200;
  const Scenario s = make_scenario("memory-stressed", p);
  ExperimentConfig cfg = scenario_experiment(s, SchedulerKind::kMemAwareEasy);
  cfg.engine.checkpoint_interval = hours(2);
  const RunMetrics m = run_experiment(cfg, s.trace);
  ASSERT_FALSE(m.windows.empty());

  std::size_t submitted = 0, finished = 0, rejected = 0;
  double busy_node_seconds = 0.0;
  for (const MetricsWindow& w : m.windows) {
    submitted += w.jobs_submitted;
    finished += w.jobs_finished;
    rejected += w.jobs_rejected;
    busy_node_seconds += w.busy_node_seconds;
  }
  EXPECT_EQ(submitted, s.trace.size());
  EXPECT_EQ(finished, m.completed + m.killed);
  EXPECT_EQ(rejected, m.rejected);
  const double expected = m.node_utilization *
                          static_cast<double>(s.cluster.total_nodes) *
                          m.makespan.seconds();
  EXPECT_NEAR(busy_node_seconds, expected, 1e-6 * expected);
  // Windows tile the run: contiguous, aligned starts, no overlap.
  for (std::size_t i = 0; i + 1 < m.windows.size(); ++i) {
    EXPECT_EQ(m.windows[i].end.usec(), m.windows[i + 1].start.usec());
  }
}

TEST(MetricsWindows, DisabledIntervalEmitsNoWindows) {
  const Trace t = trace_of({job(0).at_h(0.0).nodes(1).runtime_h(1.0)});
  const RunMetrics m = run_windowed(machine(4, 64.0), t, SimTime{});
  EXPECT_TRUE(m.windows.empty());
}

TEST(MetricsWindows, WindowingIsPassive) {
  // Enabling checkpoints injects no events: every other metric is
  // byte-identical to the un-windowed run.
  ScenarioParams p;
  p.jobs = 150;
  const Scenario s = make_scenario("golden-baseline", p);
  ExperimentConfig cfg = scenario_experiment(s, SchedulerKind::kEasy);
  const RunMetrics plain = run_experiment(cfg, s.trace);
  cfg.engine.checkpoint_interval = minutes(45);
  const RunMetrics windowed = run_experiment(cfg, s.trace);
  ASSERT_EQ(plain.jobs.size(), windowed.jobs.size());
  for (std::size_t i = 0; i < plain.jobs.size(); ++i) {
    EXPECT_EQ(plain.jobs[i].start.usec(), windowed.jobs[i].start.usec());
    EXPECT_EQ(plain.jobs[i].end.usec(), windowed.jobs[i].end.usec());
    EXPECT_EQ(plain.jobs[i].dilation, windowed.jobs[i].dilation);
  }
  EXPECT_EQ(plain.makespan.usec(), windowed.makespan.usec());
  EXPECT_EQ(plain.node_utilization, windowed.node_utilization);
  EXPECT_EQ(plain.mean_bsld, windowed.mean_bsld);
  EXPECT_TRUE(plain.windows.empty());
  EXPECT_FALSE(windowed.windows.empty());
}

TEST(MetricsWindows, MeanHelpersHandleZeroWidth) {
  MetricsWindow w;
  EXPECT_EQ(w.mean_busy_nodes(), 0.0);
  EXPECT_EQ(w.mean_queued_jobs(), 0.0);
  w.start = SimTime{};
  w.end = seconds(std::int64_t{10});
  w.busy_node_seconds = 25.0;
  w.queued_job_seconds = 5.0;
  EXPECT_DOUBLE_EQ(w.mean_busy_nodes(), 2.5);
  EXPECT_DOUBLE_EQ(w.mean_queued_jobs(), 0.5);
}

}  // namespace
}  // namespace dmsched
