#include "core/engine.hpp"

#include <gtest/gtest.h>

#include "core/factory.hpp"
#include "testing/builders.hpp"

namespace dmsched {
namespace {

using testing::job;
using testing::tiny_cluster;
using testing::trace_of;

RunMetrics run(const ClusterConfig& cfg, const Trace& trace,
               SchedulerKind kind = SchedulerKind::kFcfs,
               EngineOptions options = {}) {
  options.audit_cluster = true;
  SchedulingSimulation sim(cfg, trace, make_scheduler(kind), options);
  return sim.run();
}

TEST(Engine, SingleJobLifecycle) {
  const Trace t = trace_of({job(0).at_h(1.0).nodes(4).runtime_h(2.0)});
  const RunMetrics m = run(tiny_cluster(), t);
  ASSERT_EQ(m.jobs.size(), 1u);
  const JobOutcome& o = m.jobs[0];
  EXPECT_EQ(o.fate, JobFate::kCompleted);
  EXPECT_DOUBLE_EQ(o.start.hours(), 1.0);   // starts immediately
  EXPECT_DOUBLE_EQ(o.end.hours(), 3.0);
  EXPECT_DOUBLE_EQ(o.wait().seconds(), 0.0);
  EXPECT_DOUBLE_EQ(o.dilation, 1.0);
  EXPECT_EQ(m.completed, 1u);
  EXPECT_DOUBLE_EQ(m.makespan.hours(), 3.0);
}

TEST(Engine, QueuedJobWaitsForNodes) {
  const Trace t = trace_of({job(0).at_h(0.0).nodes(16).runtime_h(2.0),
                            job(1).at_h(1.0).nodes(16).runtime_h(1.0)});
  const RunMetrics m = run(tiny_cluster(), t);
  EXPECT_DOUBLE_EQ(m.jobs[1].start.hours(), 2.0);
  EXPECT_DOUBLE_EQ(m.jobs[1].wait().hours(), 1.0);
}

TEST(Engine, DeficitJobDilates) {
  // mem 80 on 64-GiB nodes: 16/80 = 20% far; beta 0.3 -> dilation 1.06
  const Trace t = trace_of({job(0).nodes(2).mem_gib(80).runtime_h(1.0)});
  const RunMetrics m = run(tiny_cluster(gib(std::int64_t{64})), t);
  ASSERT_EQ(m.jobs.size(), 1u);
  EXPECT_NEAR(m.jobs[0].dilation, 1.06, 1e-9);
  EXPECT_NEAR(m.jobs[0].end.hours(), 1.06, 1e-6);
  EXPECT_EQ(m.jobs[0].far_rack, gib(std::int64_t{32}));
  EXPECT_TRUE(m.jobs[0].far_global.is_zero());
  EXPECT_DOUBLE_EQ(m.frac_jobs_far, 1.0);
}

TEST(Engine, UnrunnableJobRejected) {
  // no pools: a 100-GiB-per-node job cannot ever run
  const Trace t = trace_of({job(0).mem_gib(100), job(1).mem_gib(8)});
  const RunMetrics m = run(tiny_cluster(), t);
  EXPECT_EQ(m.rejected, 1u);
  EXPECT_EQ(m.completed, 1u);
  EXPECT_EQ(m.jobs[0].fate, JobFate::kRejected);
  EXPECT_EQ(m.jobs[1].fate, JobFate::kCompleted);
}

TEST(Engine, SamePoolJobRunnableWithPool) {
  const Trace t = trace_of({job(0).mem_gib(100)});
  const RunMetrics m = run(tiny_cluster(gib(std::int64_t{64})), t);
  EXPECT_EQ(m.rejected, 0u);
  EXPECT_EQ(m.completed, 1u);
}

TEST(Engine, KillOnWalltimeTruncatesDilatedJob) {
  // runtime 1h == walltime; dilation 1.06 would overrun -> killed at 1 h
  EngineOptions options;
  options.kill_on_walltime = true;
  const Trace t = trace_of(
      {job(0).nodes(2).mem_gib(80).runtime_h(1.0).walltime_h(1.0)});
  const RunMetrics m =
      run(tiny_cluster(gib(std::int64_t{64})), t, SchedulerKind::kFcfs,
          options);
  EXPECT_EQ(m.killed, 1u);
  EXPECT_EQ(m.jobs[0].fate, JobFate::kKilled);
  EXPECT_DOUBLE_EQ(m.jobs[0].end.hours(), 1.0);
}

TEST(Engine, NoKillWithoutFlagEvenWhenOverrunning) {
  const Trace t = trace_of(
      {job(0).nodes(2).mem_gib(80).runtime_h(1.0).walltime_h(1.0)});
  const RunMetrics m = run(tiny_cluster(gib(std::int64_t{64})), t);
  EXPECT_EQ(m.killed, 0u);
  EXPECT_NEAR(m.jobs[0].end.hours(), 1.06, 1e-6);
}

TEST(Engine, UtilizationOfBackToBackFullMachine) {
  const Trace t = trace_of({job(0).at_h(0.0).nodes(16).runtime_h(2.0),
                            job(1).at_h(0.0).nodes(16).runtime_h(2.0)});
  const RunMetrics m = run(tiny_cluster(), t);
  EXPECT_DOUBLE_EQ(m.makespan.hours(), 4.0);
  EXPECT_NEAR(m.node_utilization, 1.0, 1e-9);
}

TEST(Engine, PoolUtilizationTracked) {
  const Trace t = trace_of({job(0).nodes(4).mem_gib(96).runtime_h(1.0)});
  // 4 racks × 64 GiB pool = 256 capacity; job draws 4 × 32 = 128 (50%)
  const RunMetrics m = run(tiny_cluster(gib(std::int64_t{64})), t);
  EXPECT_NEAR(m.rack_pool_peak, 0.5, 1e-9);
  EXPECT_NEAR(m.rack_pool_utilization, 0.5, 1e-9);  // busy the whole run
}

TEST(Engine, SeriesSamplingProducesSamples) {
  EngineOptions options;
  options.sample_interval = minutes(30);
  const Trace t = trace_of({job(0).nodes(8).runtime_h(2.0),
                            job(1).at_h(0.5).nodes(8).runtime_h(2.0)});
  const RunMetrics m =
      run(tiny_cluster(), t, SchedulerKind::kFcfs, options);
  ASSERT_GE(m.series.size(), 4u);
  // samples fire before the scheduling pass at the same instant: the t=0
  // sample sees an idle machine, the t=30min one sees job 0 only (job 1 is
  // submitted at that instant but not yet scheduled), t=60min sees both.
  EXPECT_EQ(m.series[0].busy_nodes, 0);
  EXPECT_EQ(m.series[1].busy_nodes, 8);
  EXPECT_EQ(m.series[2].busy_nodes, 16);
  bool saw_full = false;
  for (const auto& s : m.series) saw_full |= (s.busy_nodes == 16);
  EXPECT_TRUE(saw_full);
}

TEST(Engine, BoundedSlowdownComputation) {
  const Trace t = trace_of({job(0).at_h(0.0).nodes(16).runtime_h(1.0),
                            job(1).at_h(0.0).nodes(16).runtime_h(1.0)});
  const RunMetrics m = run(tiny_cluster(), t);
  // second job: wait 1 h, run 1 h -> bsld 2
  EXPECT_DOUBLE_EQ(m.jobs[1].bounded_slowdown(), 2.0);
  EXPECT_DOUBLE_EQ(m.mean_bsld, 1.5);
}

TEST(Engine, EmptyTraceProducesEmptyMetrics) {
  const RunMetrics m = run(tiny_cluster(), Trace{});
  EXPECT_EQ(m.jobs.size(), 0u);
  EXPECT_EQ(m.completed, 0u);
  EXPECT_EQ(m.makespan, SimTime{});
}

TEST(Engine, RunIsSingleShot) {
  const Trace t = trace_of({job(0)});
  SchedulingSimulation sim(tiny_cluster(), t,
                           make_scheduler(SchedulerKind::kFcfs), {});
  (void)sim.run();
  EXPECT_DEATH((void)sim.run(), "single-shot");
}

TEST(Engine, TakeFromAllocationGroupsByRack) {
  const ClusterConfig cfg = tiny_cluster(gib(std::int64_t{100}),
                                         gib(std::int64_t{50}));
  Allocation a;
  a.job = 1;
  a.nodes = {0, 1, 4};  // racks 0 and 1
  a.local_per_node = gib(std::int64_t{64});
  a.far_per_node = gib(std::int64_t{10});
  a.draws = {{0, gib(std::int64_t{20})},
             {1, gib(std::int64_t{5})},
             {kGlobalPoolRack, gib(std::int64_t{5})}};
  const TakePlan take = SchedulingSimulation::take_from_allocation(a, cfg);
  EXPECT_EQ(take.node_total(), 3);
  ASSERT_EQ(take.takes.size(), 2u);
  EXPECT_EQ(take.takes[0].rack, 0);
  EXPECT_EQ(take.takes[0].nodes, 2);
  EXPECT_EQ(take.takes[0].rack_pool_bytes, gib(std::int64_t{20}));
  EXPECT_EQ(take.takes[1].rack, 1);
  EXPECT_EQ(take.takes[1].nodes, 1);
  EXPECT_EQ(take.rack_pool_total(), gib(std::int64_t{25}));
  EXPECT_EQ(take.global_total(), gib(std::int64_t{5}));
}

TEST(Engine, WalltimeBoundGovernsExpectedEndNotActual) {
  // job runs 1 h but requested 3 h: a second full-width job still starts at
  // the ACTUAL completion (1 h), not the walltime bound.
  const Trace t = trace_of(
      {job(0).at_h(0.0).nodes(16).runtime_h(1.0).walltime_h(3.0),
       job(1).at_h(0.0).nodes(16).runtime_h(1.0).walltime_h(3.0)});
  const RunMetrics m = run(tiny_cluster(), t, SchedulerKind::kEasy);
  EXPECT_DOUBLE_EQ(m.jobs[1].start.hours(), 1.0);
}

}  // namespace
}  // namespace dmsched
