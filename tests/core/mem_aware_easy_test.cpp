#include "core/mem_aware_easy.hpp"

#include <gtest/gtest.h>

#include "cluster/system_config.hpp"
#include "testing/builders.hpp"
#include "testing/fake_context.hpp"
#include "testing/lifecycle.hpp"

namespace dmsched {
namespace {

using testing::FakeContext;
using testing::job;
using testing::tiny_cluster;

TEST(MemAwareEasy, StartsHeadRunWhenEverythingFits) {
  FakeContext ctx(tiny_cluster(), {job(0).nodes(8), job(1).nodes(8)});
  ctx.enqueue(0);
  ctx.enqueue(1);
  MemAwareEasyScheduler sched;
  sched.schedule(ctx);
  EXPECT_EQ(ctx.started(), (std::vector<JobId>{0, 1}));
}

TEST(MemAwareEasy, BackfillsShortJobBeforeReservation) {
  FakeContext ctx(tiny_cluster(),
                  {job(0).nodes(8).walltime_h(4.0).runtime_h(4.0),
                   job(1).nodes(12).walltime_h(1.0).runtime_h(1.0),
                   job(2).nodes(4).walltime_h(2.0).runtime_h(2.0)});
  ctx.force_run(0);
  ctx.enqueue(1);
  ctx.enqueue(2);
  MemAwareEasyScheduler sched;
  sched.schedule(ctx);
  EXPECT_EQ(ctx.started(), (std::vector<JobId>{2}));
}

TEST(MemAwareEasy, ProtectsHeadsPoolReservation) {
  // The contrast with EasyScheduler's pathology test: the head waits on
  // pool bytes; a long pool-draining candidate would push the head's start
  // back, so the memory-aware re-check must reject it.
  const ClusterConfig cfg =
      custom_config(4, 4, gib(std::int64_t{64}), gib(std::int64_t{32}),
                    Bytes{0});
  FakeContext ctx(cfg,
                  {job(0).nodes(1).mem_gib(80).walltime_h(2.0).runtime_h(2.0),
                   job(1).nodes(1).mem_gib(96).walltime_h(1.0).runtime_h(1.0),
                   job(2).nodes(1).mem_gib(80).walltime_h(10.0).runtime_h(9.0)});
  ctx.force_run(0);
  ctx.enqueue(1);
  ctx.enqueue(2);
  MemAwareEasyScheduler sched;
  sched.schedule(ctx);
  EXPECT_TRUE(ctx.started().empty())
      << "candidate 2 would drain the pool the head needs at its reservation";
}

TEST(MemAwareEasy, AllowsPoolBackfillEndingBeforeReservation) {
  // Same shape, but the candidate is short: it returns its pool bytes
  // before the head's reservation, so it must be accepted.
  const ClusterConfig cfg =
      custom_config(4, 4, gib(std::int64_t{64}), gib(std::int64_t{32}),
                    Bytes{0});
  FakeContext ctx(cfg,
                  {job(0).nodes(1).mem_gib(80).walltime_h(2.0).runtime_h(2.0),
                   job(1).nodes(1).mem_gib(96).walltime_h(1.0).runtime_h(1.0),
                   job(2).nodes(1).mem_gib(80).walltime_h(1.0).runtime_h(1.0)});
  ctx.force_run(0);
  ctx.enqueue(1);
  ctx.enqueue(2);
  MemAwareEasyScheduler sched;
  sched.schedule(ctx);
  EXPECT_EQ(ctx.started(), (std::vector<JobId>{2}));
}

TEST(MemAwareEasy, NodeDimensionStillProtected) {
  // Classic EASY node protection must continue to hold.
  FakeContext ctx(tiny_cluster(),
                  {job(0).nodes(8).walltime_h(4.0).runtime_h(4.0),
                   job(1).nodes(12).walltime_h(1.0).runtime_h(1.0),
                   job(2).nodes(6).walltime_h(6.0).runtime_h(6.0)});
  ctx.force_run(0);
  ctx.enqueue(1);
  ctx.enqueue(2);
  MemAwareEasyScheduler sched;
  sched.schedule(ctx);
  EXPECT_TRUE(ctx.started().empty());
}

TEST(MemAwareEasy, BackfillWithinSpareNodesAccepted) {
  // A long candidate that does not intersect the head's claim at t* is
  // accepted via the refit check (EASY's "extra nodes" generalized).
  FakeContext ctx(tiny_cluster(),
                  {job(0).nodes(8).walltime_h(4.0).runtime_h(4.0),
                   job(1).nodes(12).walltime_h(1.0).runtime_h(1.0),
                   job(2).nodes(4).walltime_h(24.0).runtime_h(20.0)});
  ctx.force_run(0);
  ctx.enqueue(1);
  ctx.enqueue(2);
  MemAwareEasyScheduler sched;
  sched.schedule(ctx);
  EXPECT_EQ(ctx.started(), (std::vector<JobId>{2}));
}

TEST(MemAwareEasy, BackfillWindowCapsCandidates) {
  FakeContext ctx(tiny_cluster(),
                  {job(0).nodes(16).walltime_h(4.0).runtime_h(4.0),
                   job(1).nodes(16).walltime_h(1.0).runtime_h(1.0),
                   job(2).nodes(16).walltime_h(1.0).runtime_h(1.0),
                   job(3).nodes(1).walltime_h(1.0).runtime_h(1.0)});
  ctx.force_run(0);
  for (JobId i = 1; i <= 3; ++i) ctx.enqueue(i);
  MemAwareOptions narrow;
  narrow.backfill_window = 1;
  MemAwareEasyScheduler sched(narrow);
  sched.schedule(ctx);
  // job 3 could backfill but sits beyond the 1-candidate window (job 2 is
  // examined first and cannot start).
  EXPECT_TRUE(ctx.started().empty());
}

TEST(MemAwareEasy, ShortestFirstOrderPrefersShortCandidates) {
  FakeContext ctx(tiny_cluster(),
                  {job(0).nodes(12).walltime_h(4.0).runtime_h(4.0),
                   job(1).nodes(16).walltime_h(1.0).runtime_h(1.0),
                   // two 4-node candidates; only one fits (4 free nodes)
                   job(2).nodes(4).walltime_h(3.0).runtime_h(3.0),
                   job(3).nodes(4).walltime_h(1.0).runtime_h(1.0)});
  ctx.force_run(0);
  for (JobId i = 1; i <= 3; ++i) ctx.enqueue(i);
  MemAwareOptions opts;
  opts.order = BackfillOrder::kShortestFirst;
  MemAwareEasyScheduler sched(opts);
  sched.schedule(ctx);
  EXPECT_EQ(ctx.started(), (std::vector<JobId>{3}));
}

TEST(MemAwareEasy, BestMemFitOrderPrefersDeficitJobs) {
  const ClusterConfig cfg =
      custom_config(8, 8, gib(std::int64_t{64}), gib(std::int64_t{64}),
                    Bytes{0});
  FakeContext ctx(cfg,
                  {job(0).nodes(6).walltime_h(4.0).runtime_h(4.0),
                   job(1).nodes(8).walltime_h(1.0).runtime_h(1.0),
                   // local-memory candidate first in queue order...
                   job(2).nodes(2).walltime_h(1.0).runtime_h(1.0).mem_gib(8),
                   // ...but the deficit candidate is preferred by best-mem-fit
                   job(3).nodes(2).walltime_h(1.0).runtime_h(1.0).mem_gib(80)});
  ctx.force_run(0);
  for (JobId i = 1; i <= 3; ++i) ctx.enqueue(i);
  MemAwareOptions opts;
  opts.order = BackfillOrder::kBestMemFit;
  MemAwareEasyScheduler sched(opts);
  sched.schedule(ctx);
  ASSERT_FALSE(ctx.started().empty());
  EXPECT_EQ(ctx.started().front(), 3u);
}

TEST(MemAwareEasy, AdaptiveDefersGlobalSpillWhenRackPoolSoon) {
  // Head can start NOW via the expensive global pool, or in 15 minutes via
  // the cheap rack pool. With a 10 h walltime the wait is the better deal:
  // finish_now = 10h × (1 + 0.45/3) = 11.5h; finish_wait = 0.25h + 11h.
  const ClusterConfig cfg =
      custom_config(4, 4, gib(std::int64_t{64}), gib(std::int64_t{32}),
                    gib(std::int64_t{1024}));
  FakeContext ctx(cfg,
                  {job(0).nodes(1).mem_gib(96).walltime_h(0.25).runtime_h(0.25),
                   job(1).nodes(1).mem_gib(96).walltime_h(10.0).runtime_h(9.0)});
  ctx.force_run(0);  // pins the whole rack pool for 15 min
  ctx.enqueue(1);

  MemAwareOptions plain;
  MemAwareEasyScheduler eager(plain);
  {
    FakeContext ctx2(cfg, {job(0).nodes(1).mem_gib(96).walltime_h(0.25)
                               .runtime_h(0.25),
                           job(1).nodes(1).mem_gib(96).walltime_h(10.0)
                               .runtime_h(9.0)});
    ctx2.force_run(0);
    ctx2.enqueue(1);
    eager.schedule(ctx2);
    // plain mem-easy starts immediately, spilling to the global pool
    ASSERT_EQ(ctx2.started().size(), 1u);
    EXPECT_GT(ctx2.cluster().global_pool_used(), Bytes{0});
  }

  MemAwareOptions adaptive;
  adaptive.adaptive = true;
  MemAwareEasyScheduler sched(adaptive);
  sched.schedule(ctx);
  EXPECT_TRUE(ctx.started().empty())
      << "adaptive policy must wait 15 min for the cheap rack pool";

  // Once the rack pool frees, the job starts rack-local.
  ctx.finish(0);
  ctx.set_now(minutes(15));
  sched.schedule(ctx);
  ASSERT_EQ(ctx.started().size(), 1u);
  EXPECT_EQ(ctx.cluster().global_pool_used(), Bytes{0});
  EXPECT_GT(ctx.cluster().rack_pools_used(), Bytes{0});
}

TEST(MemAwareEasy, AdaptiveStartsNowWhenWaitTooLong) {
  // Same shape but the pool frees only after 8 h: starting now via the
  // global pool wins.
  const ClusterConfig cfg =
      custom_config(4, 4, gib(std::int64_t{64}), gib(std::int64_t{32}),
                    gib(std::int64_t{1024}));
  FakeContext ctx(cfg,
                  {job(0).nodes(1).mem_gib(96).walltime_h(8.0).runtime_h(8.0),
                   job(1).nodes(1).mem_gib(96).walltime_h(10.0).runtime_h(9.0)});
  ctx.force_run(0);
  ctx.enqueue(1);
  MemAwareOptions adaptive;
  adaptive.adaptive = true;
  MemAwareEasyScheduler sched(adaptive);
  sched.schedule(ctx);
  ASSERT_EQ(ctx.started().size(), 1u);
  EXPECT_GT(ctx.cluster().global_pool_used(), Bytes{0});
}

TEST(MemAwareEasy, AdaptiveMarginBiasesTowardStartingNow) {
  // With a margin larger than the benefit, the deferral is suppressed.
  const ClusterConfig cfg =
      custom_config(4, 4, gib(std::int64_t{64}), gib(std::int64_t{32}),
                    gib(std::int64_t{1024}));
  FakeContext ctx(cfg,
                  {job(0).nodes(1).mem_gib(96).walltime_h(0.25).runtime_h(0.25),
                   job(1).nodes(1).mem_gib(96).walltime_h(10.0).runtime_h(9.0)});
  ctx.force_run(0);
  ctx.enqueue(1);
  MemAwareOptions adaptive;
  adaptive.adaptive = true;
  adaptive.adaptive_margin_sec = 2.0 * 3600.0;  // demand a 2 h win
  MemAwareEasyScheduler sched(adaptive);
  sched.schedule(ctx);
  EXPECT_EQ(ctx.started().size(), 1u);
}

TEST(MemAwareEasy, DepthTwoProtectsSecondBlockedJob) {
  // Running: 12 nodes until 4 h. Queue: J1 (16 nodes) reserved at 4 h,
  // J2 (16 nodes) reserved at 6 h, J3 (4 nodes, 5 h walltime).
  // J3 ends at 5 h: after J1's start (so it needs the what-if check) and it
  // would overlap J2's 16-node reservation window... with K=1 only J1 is
  // protected — J3 coexists with J1 at 4h? J1 takes 16 nodes at 4 h, J3
  // holds 4 until 5 h -> J1 cannot start at 4 h. So even K=1 rejects it.
  // Distinguishing case: J3 within J1's spare capacity but clashing J2.
  FakeContext ctx(tiny_cluster(),
                  {job(0).nodes(12).walltime_h(4.0).runtime_h(4.0),
                   job(1).nodes(12).walltime_h(2.0).runtime_h(2.0),
                   job(2).nodes(16).walltime_h(2.0).runtime_h(2.0),
                   job(3).nodes(4).walltime_h(5.0).runtime_h(5.0)});
  ctx.force_run(0);
  for (JobId i = 1; i <= 3; ++i) ctx.enqueue(i);
  // K=1: only J1 (12 nodes @ 4h) is protected. J3 (4 nodes, ends 5 h)
  // coexists with J1 (12+4=16) -> accepted, delaying J2 (16 nodes) to 7 h.
  {
    FakeContext easy1(tiny_cluster(),
                      {job(0).nodes(12).walltime_h(4.0).runtime_h(4.0),
                       job(1).nodes(12).walltime_h(2.0).runtime_h(2.0),
                       job(2).nodes(16).walltime_h(2.0).runtime_h(2.0),
                       job(3).nodes(4).walltime_h(5.0).runtime_h(5.0)});
    easy1.force_run(0);
    for (JobId i = 1; i <= 3; ++i) easy1.enqueue(i);
    MemAwareOptions k1;
    k1.reservation_depth = 1;
    MemAwareEasyScheduler sched(k1);
    sched.schedule(easy1);
    EXPECT_EQ(easy1.started(), (std::vector<JobId>{3}));
  }
  // K=2: J2's reservation (16 nodes at 6 h) is protected too; J3 running
  // until 5 h does not clash with it (ends before 6 h)... it IS accepted.
  // The clash case needs J3 to outlive 6 h:
  {
    FakeContext easy2(tiny_cluster(),
                      {job(0).nodes(12).walltime_h(4.0).runtime_h(4.0),
                       job(1).nodes(12).walltime_h(2.0).runtime_h(2.0),
                       job(2).nodes(16).walltime_h(2.0).runtime_h(2.0),
                       job(3).nodes(4).walltime_h(7.0).runtime_h(7.0)});
    easy2.force_run(0);
    for (JobId i = 1; i <= 3; ++i) easy2.enqueue(i);
    MemAwareOptions k2;
    k2.reservation_depth = 2;
    MemAwareEasyScheduler sched(k2);
    sched.schedule(easy2);
    EXPECT_TRUE(easy2.started().empty())
        << "J3 (ends 7 h) overlaps J2's 16-node reservation at 6 h";
  }
  // Same 7 h candidate under K=1: J2 is unprotected, so it IS backfilled
  // (it coexists with J1's 12-node reservation).
  {
    FakeContext easy1b(tiny_cluster(),
                       {job(0).nodes(12).walltime_h(4.0).runtime_h(4.0),
                        job(1).nodes(12).walltime_h(2.0).runtime_h(2.0),
                        job(2).nodes(16).walltime_h(2.0).runtime_h(2.0),
                        job(3).nodes(4).walltime_h(7.0).runtime_h(7.0)});
    easy1b.force_run(0);
    for (JobId i = 1; i <= 3; ++i) easy1b.enqueue(i);
    MemAwareOptions k1;
    k1.reservation_depth = 1;
    MemAwareEasyScheduler sched(k1);
    sched.schedule(easy1b);
    EXPECT_EQ(easy1b.started(), (std::vector<JobId>{3}));
  }
}

TEST(MemAwareEasy, DepthBeyondQueueIsSafe) {
  FakeContext ctx(tiny_cluster(),
                  {job(0).nodes(16).walltime_h(4.0).runtime_h(4.0),
                   job(1).nodes(8)});
  ctx.force_run(0);
  ctx.enqueue(1);
  MemAwareOptions deep;
  deep.reservation_depth = 64;
  MemAwareEasyScheduler sched(deep);
  sched.schedule(ctx);  // must not crash with depth > queue length
  EXPECT_TRUE(ctx.started().empty());
}

TEST(MemAwareEasy, ZeroDepthAborts) {
  MemAwareOptions bad;
  bad.reservation_depth = 0;
  EXPECT_DEATH(MemAwareEasyScheduler sched(bad), "reservation");
}

TEST(MemAwareEasy, NameReflectsMode) {
  MemAwareOptions plain;
  EXPECT_STREQ(MemAwareEasyScheduler(plain).name(), "mem-easy");
  MemAwareOptions adaptive;
  adaptive.adaptive = true;
  EXPECT_STREQ(MemAwareEasyScheduler(adaptive).name(), "adaptive");
}

TEST(MemAwareEasy, ToStringCoverage) {
  EXPECT_STREQ(to_string(BackfillOrder::kQueueOrder), "queue-order");
  EXPECT_STREQ(to_string(BackfillOrder::kShortestFirst), "shortest-first");
  EXPECT_STREQ(to_string(BackfillOrder::kBestMemFit), "best-mem-fit");
}

TEST(MemAwareEasy, EmptyQueueNoOp) {
  FakeContext ctx(tiny_cluster(), {});
  MemAwareEasyScheduler sched;
  sched.schedule(ctx);
  EXPECT_TRUE(ctx.started().empty());
}


TEST(MemAwareEasy, ReserveHeadroomShieldsTheRackTierFromBackfills) {
  // One rack of 4 with a 32 GiB pool; job 0 holds 3 nodes for 4 h, the head
  // needs all 4 (blocked), and the candidate is a short deficit job whose
  // 24 GiB draw would leave only 8 GiB of the rack tier free. Without the
  // shield it backfills (ends before the head's reservation); with
  // reserve_headroom = 0.5 (16 GiB floor, read via Topology::headroom) the
  // scheduler skips it.
  const auto jobs = [] {
    return std::vector<Job>{
        job(0).nodes(3).walltime_h(4.0).runtime_h(4.0),
        job(1).nodes(4).walltime_h(1.0).runtime_h(1.0),
        job(2).nodes(1).mem_gib(40.0).walltime_h(1.0).runtime_h(1.0)};
  };
  {
    FakeContext ctx(testing::machine(4, 16.0, 32.0), jobs());
    ctx.force_run(0);
    ctx.enqueue(1);
    ctx.enqueue(2);
    MemAwareEasyScheduler sched;
    sched.schedule(ctx);
    EXPECT_EQ(ctx.started(), (std::vector<JobId>{2}));
  }
  {
    FakeContext ctx(testing::machine(4, 16.0, 32.0), jobs());
    ctx.force_run(0);
    ctx.enqueue(1);
    ctx.enqueue(2);
    MemAwareEasyScheduler sched({.reserve_headroom = 0.5});
    sched.schedule(ctx);
    EXPECT_TRUE(ctx.started().empty())
        << "backfill drained the rack tier below the reserve";
  }
  {
    // A candidate within the reserve (8 GiB draw leaves 24 GiB free) still
    // backfills — the shield bounds tier depletion, it does not ban pools.
    FakeContext ctx(testing::machine(4, 16.0, 32.0),
                    {job(0).nodes(3).walltime_h(4.0).runtime_h(4.0),
                     job(1).nodes(4).walltime_h(1.0).runtime_h(1.0),
                     job(2).nodes(1).mem_gib(24.0).walltime_h(1.0)
                         .runtime_h(1.0)});
    ctx.force_run(0);
    ctx.enqueue(1);
    ctx.enqueue(2);
    MemAwareEasyScheduler sched({.reserve_headroom = 0.5});
    sched.schedule(ctx);
    EXPECT_EQ(ctx.started(), (std::vector<JobId>{2}));
  }
}

TEST(MemAwareEasy, ReserveHeadroomShieldsTheGlobalTierSeparately) {
  // No rack tier, a 64 GiB global pool: a 24 GiB draw leaves 40 GiB free —
  // fine at reserve 0.5 (floor 32 GiB), refused at reserve 0.8 (51.2 GiB).
  const auto jobs = [] {
    return std::vector<Job>{
        job(0).nodes(3).walltime_h(4.0).runtime_h(4.0),
        job(1).nodes(4).walltime_h(1.0).runtime_h(1.0),
        job(2).nodes(1).mem_gib(40.0).walltime_h(1.0).runtime_h(1.0)};
  };
  {
    FakeContext ctx(testing::machine(4, 16.0, 0.0, 64.0), jobs());
    ctx.force_run(0);
    ctx.enqueue(1);
    ctx.enqueue(2);
    MemAwareEasyScheduler sched({.reserve_headroom = 0.5});
    sched.schedule(ctx);
    EXPECT_EQ(ctx.started(), (std::vector<JobId>{2}));
  }
  {
    FakeContext ctx(testing::machine(4, 16.0, 0.0, 64.0), jobs());
    ctx.force_run(0);
    ctx.enqueue(1);
    ctx.enqueue(2);
    MemAwareEasyScheduler sched({.reserve_headroom = 0.8});
    sched.schedule(ctx);
    EXPECT_TRUE(ctx.started().empty())
        << "backfill drained the global tier below the reserve";
  }
}

TEST(MemAwareEasy, SessionLifecycleReleasesEverything) {
  MemAwareEasyScheduler sched;
  testing::run_lifecycle_scenario(sched);
}

}  // namespace
}  // namespace dmsched
