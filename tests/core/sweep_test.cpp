#include "core/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "cluster/system_config.hpp"
#include "testing/builders.hpp"

namespace dmsched {
namespace {

ExperimentConfig small_config(SchedulerKind kind) {
  ExperimentConfig c;
  c.cluster = testing::tiny_cluster(gib(std::int64_t{64}));
  c.workload_reference_mem = gib(std::int64_t{64});
  c.scheduler = kind;
  c.model = WorkloadModel::kMixed;
  c.jobs = 150;
  c.seed = 5;
  c.target_load = 0.8;
  return c;
}

TEST(Sweep, ParallelForCoversAllIndices) {
  std::vector<std::atomic<int>> hits(100);
  parallel_for_index(100, 4, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Sweep, ParallelForZeroCount) {
  parallel_for_index(0, 4, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(Sweep, ParallelForSingleThread) {
  std::vector<int> order;
  parallel_for_index(5, 1, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Sweep, ResultsMatchSequentialRuns) {
  const std::vector<ExperimentConfig> configs = {
      small_config(SchedulerKind::kFcfs),
      small_config(SchedulerKind::kEasy),
      small_config(SchedulerKind::kMemAwareEasy)};
  const auto parallel = run_sweep(configs, 3);
  ASSERT_EQ(parallel.size(), 3u);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const RunMetrics solo = run_experiment(configs[i]);
    EXPECT_DOUBLE_EQ(parallel[i].mean_wait_hours, solo.mean_wait_hours) << i;
    EXPECT_DOUBLE_EQ(parallel[i].node_utilization, solo.node_utilization) << i;
    EXPECT_EQ(parallel[i].completed, solo.completed) << i;
  }
}

TEST(Sweep, SharedTraceVariantUsesGivenTrace) {
  const auto config = small_config(SchedulerKind::kEasy);
  const Trace trace = make_workload(config);
  const auto results =
      run_sweep_on_trace({config, config}, trace, 2);
  ASSERT_EQ(results.size(), 2u);
  // identical config + identical trace => identical results
  EXPECT_DOUBLE_EQ(results[0].mean_wait_hours, results[1].mean_wait_hours);
  EXPECT_EQ(results[0].completed, results[1].completed);
}

TEST(Sweep, LabelPropagates) {
  auto config = small_config(SchedulerKind::kFcfs);
  config.label = "my-label";
  const auto results = run_sweep({config}, 1);
  EXPECT_EQ(results[0].label, "my-label");
}

TEST(Sweep, AutoChunkSizeInvariants) {
  // Never zero, never above the cap, and serial-ish inputs stay fine-grained
  // so small sweeps still load-balance across workers.
  EXPECT_EQ(auto_chunk_size(0, 4), 1u);
  EXPECT_EQ(auto_chunk_size(1, 4), 1u);
  EXPECT_EQ(auto_chunk_size(5, 4), 1u);       // fewer items than 8×threads
  EXPECT_EQ(auto_chunk_size(64, 4), 2u);      // 64 / (8·4)
  EXPECT_EQ(auto_chunk_size(1'000'000, 4), 64u);  // capped
  for (const std::size_t count : {std::size_t{7}, std::size_t{100},
                                  std::size_t{4096}, std::size_t{100'000}}) {
    for (const unsigned threads : {1u, 3u, 16u}) {
      const std::size_t chunk = auto_chunk_size(count, threads);
      EXPECT_GE(chunk, 1u);
      EXPECT_LE(chunk, 64u);
    }
  }
}

TEST(Sweep, ChunkedCoversAllIndicesForEveryChunkSize) {
  constexpr std::size_t kCount = 257;  // prime: never divides evenly
  // 300 exceeds the count; SIZE_MAX would overflow a naive ceil-divide.
  for (const std::size_t chunk :
       {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{13},
        std::size_t{64}, std::size_t{300}, SIZE_MAX}) {
    std::vector<std::atomic<int>> hits(kCount);
    parallel_for_chunked(kCount, SweepOptions{4, chunk},
                         [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "chunk " << chunk << " index " << i;
    }
  }
}

TEST(Sweep, ChunkedRethrowsTheLowestIndexDeterministically) {
  // When several workers throw, the surfaced exception is the lowest
  // index's — never whichever worker reported first. All-throw makes every
  // repeat deterministic: chunk 0 is always claimed before wind-down.
  for (int repeat = 0; repeat < 20; ++repeat) {
    try {
      parallel_for_chunked(128, SweepOptions{8, 4}, [](std::size_t i) {
        throw std::out_of_range("boom at " + std::to_string(i));
      });
      FAIL() << "must rethrow";
    } catch (const std::out_of_range& e) {
      EXPECT_STREQ(e.what(), "boom at 0") << "repeat " << repeat;
    }
  }
}

TEST(Sweep, InjectedExecutorMatchesTheGlobalPool) {
  // SweepOptions::executor isolates a sweep on a private pool; results must
  // be byte-identical to the shared-pool run (determinism is pool-blind).
  const std::vector<ExperimentConfig> configs = {
      small_config(SchedulerKind::kEasy),
      small_config(SchedulerKind::kMemAwareEasy)};
  const Trace trace = make_workload(configs.front());
  const auto on_global =
      run_sweep_on_trace(configs, trace, SweepOptions{4, 1});
  Executor private_pool(ExecutorOptions{2});
  SweepOptions options{4, 1};
  options.executor = &private_pool;
  const auto on_private = run_sweep_on_trace(configs, trace, options);
  ASSERT_EQ(on_private.size(), on_global.size());
  for (std::size_t i = 0; i < on_global.size(); ++i) {
    EXPECT_EQ(on_private[i].makespan.usec(), on_global[i].makespan.usec());
    EXPECT_EQ(on_private[i].mean_wait_hours, on_global[i].mean_wait_hours);
    EXPECT_EQ(on_private[i].completed, on_global[i].completed);
  }
}

TEST(Sweep, ChunkedPropagatesExceptionsMidChunk) {
  // A throw from the middle of a chunk abandons the rest of that chunk and
  // the remaining chunks, and reaches the caller.
  std::atomic<int> ran{0};
  EXPECT_THROW(
      parallel_for_chunked(100, SweepOptions{4, 16},
                           [&](std::size_t i) {
                             ran.fetch_add(1);
                             if (i == 20) throw std::runtime_error("boom");
                           }),
      std::runtime_error);
  EXPECT_GE(ran.load(), 1);
  EXPECT_LE(ran.load(), 100);
}

TEST(Sweep, ChunkSizeDoesNotChangeResults) {
  const std::vector<ExperimentConfig> configs = {
      small_config(SchedulerKind::kFcfs),
      small_config(SchedulerKind::kEasy),
      small_config(SchedulerKind::kConservative),
      small_config(SchedulerKind::kMemAwareEasy),
      small_config(SchedulerKind::kAdaptive)};
  const Trace trace = make_workload(configs.front());
  const auto serial =
      run_sweep_on_trace(configs, trace, SweepOptions{1, 1});
  for (const std::size_t chunk : {std::size_t{0}, std::size_t{2},
                                  std::size_t{3}, std::size_t{100}}) {
    const auto chunked =
        run_sweep_on_trace(configs, trace, SweepOptions{0, chunk});
    ASSERT_EQ(chunked.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(chunked[i].makespan.usec(), serial[i].makespan.usec())
          << "chunk " << chunk << " config " << i;
      EXPECT_EQ(chunked[i].mean_wait_hours, serial[i].mean_wait_hours)
          << "chunk " << chunk << " config " << i;
      EXPECT_EQ(chunked[i].completed, serial[i].completed)
          << "chunk " << chunk << " config " << i;
    }
  }
}

}  // namespace
}  // namespace dmsched
