#include "core/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "cluster/system_config.hpp"
#include "testing/builders.hpp"

namespace dmsched {
namespace {

ExperimentConfig small_config(SchedulerKind kind) {
  ExperimentConfig c;
  c.cluster = testing::tiny_cluster(gib(std::int64_t{64}));
  c.workload_reference_mem = gib(std::int64_t{64});
  c.scheduler = kind;
  c.model = WorkloadModel::kMixed;
  c.jobs = 150;
  c.seed = 5;
  c.target_load = 0.8;
  return c;
}

TEST(Sweep, ParallelForCoversAllIndices) {
  std::vector<std::atomic<int>> hits(100);
  parallel_for_index(100, 4, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Sweep, ParallelForZeroCount) {
  parallel_for_index(0, 4, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(Sweep, ParallelForSingleThread) {
  std::vector<int> order;
  parallel_for_index(5, 1, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Sweep, ResultsMatchSequentialRuns) {
  const std::vector<ExperimentConfig> configs = {
      small_config(SchedulerKind::kFcfs),
      small_config(SchedulerKind::kEasy),
      small_config(SchedulerKind::kMemAwareEasy)};
  const auto parallel = run_sweep(configs, 3);
  ASSERT_EQ(parallel.size(), 3u);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const RunMetrics solo = run_experiment(configs[i]);
    EXPECT_DOUBLE_EQ(parallel[i].mean_wait_hours, solo.mean_wait_hours) << i;
    EXPECT_DOUBLE_EQ(parallel[i].node_utilization, solo.node_utilization) << i;
    EXPECT_EQ(parallel[i].completed, solo.completed) << i;
  }
}

TEST(Sweep, SharedTraceVariantUsesGivenTrace) {
  const auto config = small_config(SchedulerKind::kEasy);
  const Trace trace = make_workload(config);
  const auto results =
      run_sweep_on_trace({config, config}, trace, 2);
  ASSERT_EQ(results.size(), 2u);
  // identical config + identical trace => identical results
  EXPECT_DOUBLE_EQ(results[0].mean_wait_hours, results[1].mean_wait_hours);
  EXPECT_EQ(results[0].completed, results[1].completed);
}

TEST(Sweep, LabelPropagates) {
  auto config = small_config(SchedulerKind::kFcfs);
  config.label = "my-label";
  const auto results = run_sweep({config}, 1);
  EXPECT_EQ(results[0].label, "my-label");
}

}  // namespace
}  // namespace dmsched
