// parallel_for_index under contention: the sweep harness's correctness rests
// on it visiting every index exactly once, keeping results in slot order,
// and propagating worker exceptions instead of terminating.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/sweep.hpp"

namespace dmsched {
namespace {

unsigned hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

class ParallelForTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 257;  // prime: never divides evenly
  std::vector<std::atomic<int>> visits(kCount);
  parallel_for_index(kCount, GetParam(),
                     [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST_P(ParallelForTest, ResultsLandInInputOrder) {
  // Each task writes to its own slot; the output must line up with input
  // order no matter which worker ran which index or in what order.
  constexpr std::size_t kCount = 100;
  std::vector<std::size_t> out(kCount, SIZE_MAX);
  parallel_for_index(kCount, GetParam(), [&](std::size_t i) {
    // Stagger finish times so late indices often complete first.
    if (i % 7 == 0) std::this_thread::yield();
    out[i] = i * i;
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(out[i], i * i) << "slot " << i;
  }
}

TEST_P(ParallelForTest, PropagatesWorkerExceptions) {
  constexpr std::size_t kCount = 64;
  std::atomic<int> ran{0};
  EXPECT_THROW(
      parallel_for_index(kCount, GetParam(),
                         [&](std::size_t i) {
                           ran.fetch_add(1);
                           if (i == 13) {
                             throw std::runtime_error("boom at 13");
                           }
                         }),
      std::runtime_error);
  // The failing index ran; the pool wound down without visiting everything
  // or deadlocking. (With 1 thread the loop stops exactly at the throw.)
  EXPECT_GE(ran.load(), 1);
  EXPECT_LE(ran.load(), static_cast<int>(kCount));
}

TEST_P(ParallelForTest, FirstExceptionWinsWhenAllWorkersThrow) {
  EXPECT_THROW(parallel_for_index(32, GetParam(),
                                  [](std::size_t) {
                                    throw std::invalid_argument("everybody");
                                  }),
               std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadCounts, ParallelForTest,
    ::testing::Values(1u, 2u, hardware_threads(),
                      // more workers than items at count 32/64 and a count+7
                      // analogue at 257: oversubscription must be harmless
                      264u),
    [](const ::testing::TestParamInfo<unsigned>& info) {
      // Index-prefixed so names stay unique even if hardware_concurrency()
      // happens to equal one of the fixed counts. (Built with += to dodge
      // GCC 12's -Wrestrict false positive on chained string operator+.)
      std::string name = "p";
      name += std::to_string(info.index);
      name += "_threads_";
      name += std::to_string(info.param);
      return name;
    });

TEST(ParallelFor, ZeroCountIsANoOp) {
  bool called = false;
  parallel_for_index(0, 8, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, ZeroThreadsMeansHardwareConcurrency) {
  constexpr std::size_t kCount = 50;
  std::vector<std::atomic<int>> visits(kCount);
  parallel_for_index(kCount, 0,
                     [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(visits[i].load(), 1);
  }
}

TEST(ParallelFor, HeavyContentionOnASharedCounter) {
  // All workers hammer one atomic: the sum must still be exact.
  constexpr std::size_t kCount = 10'000;
  std::atomic<std::int64_t> sum{0};
  parallel_for_index(kCount, hardware_threads(), [&](std::size_t i) {
    sum.fetch_add(static_cast<std::int64_t>(i) + 1,
                  std::memory_order_relaxed);
  });
  const auto expected =
      static_cast<std::int64_t>(kCount) * (kCount + 1) / 2;
  EXPECT_EQ(sum.load(), expected);
}

}  // namespace
}  // namespace dmsched
