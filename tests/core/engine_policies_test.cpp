// Engine-level behaviour of queue-ordering policies and engine options —
// the knobs the experiment configs expose.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/factory.hpp"
#include "testing/builders.hpp"

namespace dmsched {
namespace {

using testing::job;
using testing::tiny_cluster;
using testing::trace_of;

RunMetrics run(const Trace& trace, EngineOptions options,
               SchedulerKind kind = SchedulerKind::kFcfs) {
  options.audit_cluster = true;
  SchedulingSimulation sim(tiny_cluster(), trace, make_scheduler(kind),
                           options);
  return sim.run();
}

// Machine busy until 1 h; two waiting jobs with contrasting shapes.
Trace contention_trace() {
  return trace_of({job(0).at_h(0.0).nodes(16).runtime_h(1.0),
                   // submitted first, long
                   job(1).at_h(0.1).nodes(16).runtime_h(4.0).walltime_h(8.0),
                   // submitted second, short
                   job(2).at_h(0.2).nodes(16).runtime_h(1.0).walltime_h(1.0)});
}

TEST(EnginePolicies, FcfsOrderRunsEarlierSubmissionFirst) {
  EngineOptions options;
  options.queue_order = QueueOrder::kFcfs;
  const RunMetrics m = run(contention_trace(), options);
  EXPECT_LT(m.jobs[1].start, m.jobs[2].start);
}

TEST(EnginePolicies, ShortestFirstRunsShortJobFirst) {
  EngineOptions options;
  options.queue_order = QueueOrder::kShortestFirst;
  const RunMetrics m = run(contention_trace(), options);
  EXPECT_LT(m.jobs[2].start, m.jobs[1].start);
}

TEST(EnginePolicies, LargestFirstPrefersWideJobs) {
  const Trace t = trace_of({job(0).at_h(0.0).nodes(16).runtime_h(1.0),
                            job(1).at_h(0.1).nodes(2).runtime_h(1.0),
                            job(2).at_h(0.2).nodes(14).runtime_h(1.0)});
  EngineOptions options;
  options.queue_order = QueueOrder::kLargestFirst;
  const RunMetrics m = run(t, options);
  // at 1 h the 14-node job is head; the 2-node job starts beside it
  EXPECT_DOUBLE_EQ(m.jobs[2].start.hours(), 1.0);
  EXPECT_DOUBLE_EQ(m.jobs[1].start.hours(), 1.0);
}

TEST(EnginePolicies, WfpEventuallyPrefersStarvedLargeJob) {
  // A large job that waited long outranks a fresh small one under WFP.
  const Trace t = trace_of(
      {job(0).at_h(0.0).nodes(16).runtime_h(10.0).walltime_h(10.0),
       job(1).at_h(0.5).nodes(12).runtime_h(1.0).walltime_h(1.0),
       job(2).at_h(9.9).nodes(12).runtime_h(1.0).walltime_h(1.0)});
  EngineOptions options;
  options.queue_order = QueueOrder::kWfp;
  const RunMetrics m = run(t, options);
  // job1 waited ~9.5 h of its 1 h walltime; job2 just arrived
  EXPECT_LT(m.jobs[1].start, m.jobs[2].start);
}

TEST(EnginePolicies, QueueOrderChangesScheduleDeterministically) {
  const Trace t = contention_trace();
  EngineOptions fcfs;
  fcfs.queue_order = QueueOrder::kFcfs;
  EngineOptions sjf;
  sjf.queue_order = QueueOrder::kShortestFirst;
  const RunMetrics a1 = run(t, fcfs);
  const RunMetrics a2 = run(t, fcfs);
  const RunMetrics b = run(t, sjf);
  EXPECT_EQ(a1.jobs[1].start.usec(), a2.jobs[1].start.usec());
  EXPECT_NE(a1.jobs[1].start.usec(), b.jobs[1].start.usec());
}

TEST(EnginePolicies, KilledJobFreesResourcesEarly) {
  // Dilated job killed at its 1 h walltime; the follower starts at 1 h, not
  // at the dilated 1.06 h completion.
  EngineOptions options;
  options.kill_on_walltime = true;
  const Trace t = trace_of(
      {job(0).at_h(0.0).nodes(16).mem_gib(80).runtime_h(1.0).walltime_h(1.0),
       job(1).at_h(0.0).nodes(16).mem_gib(8).runtime_h(1.0)});
  SchedulingSimulation sim(tiny_cluster(gib(std::int64_t{512})), t,
                           make_scheduler(SchedulerKind::kFcfs), options);
  const RunMetrics m = sim.run();
  EXPECT_EQ(m.jobs[0].fate, JobFate::kKilled);
  EXPECT_DOUBLE_EQ(m.jobs[1].start.hours(), 1.0);
}

TEST(EnginePolicies, KillCountsExcludedFromCompleted) {
  EngineOptions options;
  options.kill_on_walltime = true;
  const Trace t = trace_of(
      {job(0).nodes(2).mem_gib(80).runtime_h(1.0).walltime_h(1.0)});
  SchedulingSimulation sim(tiny_cluster(gib(std::int64_t{64})), t,
                           make_scheduler(SchedulerKind::kFcfs), options);
  const RunMetrics m = sim.run();
  EXPECT_EQ(m.completed, 0u);
  EXPECT_EQ(m.killed, 1u);
}

TEST(EnginePolicies, NoSamplingMeansEmptySeries) {
  const RunMetrics m = run(contention_trace(), EngineOptions{});
  EXPECT_TRUE(m.series.empty());
}

TEST(EnginePolicies, PlacementSelectionReachesAllocations) {
  // PackRacks on an 8-node job must land in exactly 2 racks of 4.
  const Trace t = trace_of({job(0).nodes(8).mem_gib(8).runtime_h(1.0)});
  EngineOptions options;
  options.placement.selection = NodeSelection::kPackRacks;
  options.audit_cluster = true;
  SchedulingSimulation sim(tiny_cluster(), t,
                           make_scheduler(SchedulerKind::kFcfs), options);
  const RunMetrics m = sim.run();
  EXPECT_EQ(m.completed, 1u);
}

TEST(EnginePolicies, LabelsIncludeSchedulerAndMachine) {
  const Trace trace = trace_of({job(0)});  // must outlive the simulation
  SchedulingSimulation sim(tiny_cluster(), trace,
                           make_scheduler(SchedulerKind::kEasy), {});
  const RunMetrics m = sim.run();
  EXPECT_EQ(m.label, "easy/tiny");
}

}  // namespace
}  // namespace dmsched
