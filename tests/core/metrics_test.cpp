#include "core/metrics.hpp"

#include <gtest/gtest.h>

namespace dmsched {
namespace {

JobOutcome outcome(double submit_h, double start_h, double end_h,
                   double runtime_h, JobFate fate = JobFate::kCompleted) {
  JobOutcome o;
  o.submit = seconds(submit_h * 3600.0);
  o.start = seconds(start_h * 3600.0);
  o.end = seconds(end_h * 3600.0);
  o.runtime = seconds(runtime_h * 3600.0);
  o.nodes = 1;
  o.fate = fate;
  return o;
}

TEST(Metrics, WaitAndResponse) {
  const JobOutcome o = outcome(1.0, 3.0, 5.0, 2.0);
  EXPECT_DOUBLE_EQ(o.wait().hours(), 2.0);
  EXPECT_DOUBLE_EQ(o.response().hours(), 4.0);
}

TEST(Metrics, BoundedSlowdownBasic) {
  // wait 2h + run 2h over runtime 2h -> 2.0
  EXPECT_DOUBLE_EQ(outcome(1.0, 3.0, 5.0, 2.0).bounded_slowdown(), 2.0);
}

TEST(Metrics, BoundedSlowdownChargesDilation) {
  // no wait, runtime 1 h but dilated end at 1.5 h -> bsld 1.5
  EXPECT_DOUBLE_EQ(outcome(0.0, 0.0, 1.5, 1.0).bounded_slowdown(), 1.5);
}

TEST(Metrics, BoundedSlowdownThresholdForTinyJobs) {
  // 1-second job waiting 10 seconds: denominator clamps to 10 s
  JobOutcome o;
  o.submit = SimTime{};
  o.start = seconds(std::int64_t{10});
  o.end = seconds(std::int64_t{11});
  o.runtime = seconds(std::int64_t{1});
  EXPECT_DOUBLE_EQ(o.bounded_slowdown(), 1.1);
}

TEST(Metrics, BoundedSlowdownNeverBelowOne) {
  EXPECT_DOUBLE_EQ(outcome(0.0, 0.0, 0.001, 2.0).bounded_slowdown(), 1.0);
}

TEST(Metrics, FarMemoryAccessors) {
  JobOutcome o = outcome(0, 0, 1, 1);
  EXPECT_FALSE(o.used_far_memory());
  o.far_rack = gib(std::int64_t{4});
  o.far_global = gib(std::int64_t{2});
  EXPECT_TRUE(o.used_far_memory());
  EXPECT_EQ(o.far_total(), gib(std::int64_t{6}));
}

TEST(Metrics, FinalizeAggregates) {
  RunMetrics m;
  m.makespan = hours(10);
  m.jobs.push_back(outcome(0.0, 0.0, 1.0, 1.0));          // bsld 1
  m.jobs.push_back(outcome(0.0, 1.0, 2.0, 1.0));          // bsld 2, wait 1h
  m.jobs.push_back(outcome(0.0, 0.0, 0.0, 1.0, JobFate::kRejected));
  m.jobs.push_back(outcome(0.0, 3.0, 4.0, 1.0, JobFate::kKilled));
  m.finalize();
  EXPECT_EQ(m.completed, 2u);
  EXPECT_EQ(m.killed, 1u);
  EXPECT_EQ(m.rejected, 1u);
  // waits over started jobs: 0, 1, 3
  EXPECT_NEAR(m.mean_wait_hours, 4.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.max_wait_hours, 3.0);
  EXPECT_DOUBLE_EQ(m.jobs_per_hour, 0.2);  // 2 completed / 10 h
}

TEST(Metrics, FinalizeFarFraction) {
  RunMetrics m;
  m.makespan = hours(1);
  JobOutcome far = outcome(0, 0, 1, 1);
  far.far_rack = gib(std::int64_t{8});
  far.dilation = 1.2;
  m.jobs.push_back(far);
  m.jobs.push_back(outcome(0, 0, 1, 1));
  m.finalize();
  EXPECT_DOUBLE_EQ(m.frac_jobs_far, 0.5);
  EXPECT_DOUBLE_EQ(m.mean_dilation, 1.1);
  // 8 GiB held for 1 h
  EXPECT_DOUBLE_EQ(m.far_gib_hours, 8.0);
}

TEST(Metrics, FinalizeEmpty) {
  RunMetrics m;
  m.finalize();
  EXPECT_EQ(m.completed, 0u);
  EXPECT_DOUBLE_EQ(m.mean_wait_hours, 0.0);
  EXPECT_DOUBLE_EQ(m.mean_bsld, 0.0);
  EXPECT_DOUBLE_EQ(m.frac_jobs_far, 0.0);
}

TEST(Metrics, FinalizeIsIdempotent) {
  RunMetrics m;
  m.makespan = hours(2);
  m.jobs.push_back(outcome(0.0, 1.0, 2.0, 1.0));
  m.finalize();
  const double first = m.mean_wait_hours;
  m.finalize();
  EXPECT_DOUBLE_EQ(m.mean_wait_hours, first);
  EXPECT_EQ(m.completed, 1u);
}

}  // namespace
}  // namespace dmsched
