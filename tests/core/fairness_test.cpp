#include "core/fairness.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "testing/builders.hpp"

namespace dmsched {
namespace {

JobOutcome outcome_for_user(std::int32_t user, double wait_h,
                            double runtime_h, std::int32_t nodes = 1,
                            JobFate fate = JobFate::kCompleted) {
  JobOutcome o;
  o.user = user;
  o.submit = SimTime{};
  o.start = seconds(wait_h * 3600.0);
  o.end = o.start + seconds(runtime_h * 3600.0);
  o.runtime = seconds(runtime_h * 3600.0);
  o.nodes = nodes;
  o.fate = fate;
  return o;
}

TEST(Jain, PerfectlyEvenIsOne) {
  EXPECT_DOUBLE_EQ(jain_index({3.0, 3.0, 3.0}), 1.0);
}

TEST(Jain, SingleDominatorIsOneOverN) {
  EXPECT_DOUBLE_EQ(jain_index({5.0, 0.0, 0.0, 0.0}), 0.25);
}

TEST(Jain, EmptyAndAllZeroAreOne) {
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({0.0, 0.0}), 1.0);
}

TEST(Jain, KnownValue) {
  // (1+2+3)²/(3·(1+4+9)) = 36/42
  EXPECT_NEAR(jain_index({1.0, 2.0, 3.0}), 36.0 / 42.0, 1e-12);
}

TEST(Jain, NegativeValueAborts) {
  EXPECT_DEATH((void)jain_index({1.0, -0.5}), "negative");
}

TEST(Fairness, GroupsByUser) {
  RunMetrics m;
  m.jobs.push_back(outcome_for_user(1, 1.0, 1.0, 4));
  m.jobs.push_back(outcome_for_user(1, 3.0, 1.0, 4));
  m.jobs.push_back(outcome_for_user(2, 0.0, 2.0, 8));
  const FairnessReport r = fairness_report(m);
  ASSERT_EQ(r.users.size(), 2u);
  EXPECT_EQ(r.users[0].user, 1);
  EXPECT_EQ(r.users[0].jobs, 2u);
  EXPECT_DOUBLE_EQ(r.users[0].mean_wait_hours, 2.0);
  EXPECT_DOUBLE_EQ(r.users[0].node_hours, 8.0);
  EXPECT_EQ(r.users[1].user, 2);
  EXPECT_DOUBLE_EQ(r.users[1].node_hours, 16.0);
}

TEST(Fairness, RejectedJobsCountedSeparately) {
  RunMetrics m;
  m.jobs.push_back(outcome_for_user(1, 0.0, 1.0));
  m.jobs.push_back(outcome_for_user(1, 0.0, 1.0, 1, JobFate::kRejected));
  const FairnessReport r = fairness_report(m);
  ASSERT_EQ(r.users.size(), 1u);
  EXPECT_EQ(r.users[0].jobs, 1u);
  EXPECT_EQ(r.users[0].rejected, 1u);
}

TEST(Fairness, UserWithOnlyRejectionsExcludedFromIndices) {
  RunMetrics m;
  m.jobs.push_back(outcome_for_user(1, 0.0, 1.0));
  m.jobs.push_back(outcome_for_user(9, 0.0, 1.0, 1, JobFate::kRejected));
  const FairnessReport r = fairness_report(m);
  EXPECT_EQ(r.users.size(), 1u);
}

TEST(Fairness, EvenServiceScoresHigh) {
  RunMetrics m;
  for (std::int32_t u = 0; u < 10; ++u) {
    m.jobs.push_back(outcome_for_user(u, 1.0, 1.0));
  }
  const FairnessReport r = fairness_report(m);
  EXPECT_NEAR(r.jain_bsld, 1.0, 1e-12);
  EXPECT_NEAR(r.jain_wait, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.max_min_bsld_ratio, 1.0);
}

TEST(Fairness, StarvedUserDragsIndexDown) {
  RunMetrics m;
  for (std::int32_t u = 0; u < 9; ++u) {
    m.jobs.push_back(outcome_for_user(u, 0.0, 1.0));  // bsld 1
  }
  m.jobs.push_back(outcome_for_user(9, 99.0, 1.0));  // bsld 100
  const FairnessReport r = fairness_report(m);
  EXPECT_LT(r.jain_bsld, 0.2);
  EXPECT_NEAR(r.max_min_bsld_ratio, 100.0, 1e-9);
}

TEST(Fairness, TopDecileNodeShare) {
  RunMetrics m;
  // 10 users; user 0 consumes 10× the node-hours of each other user
  m.jobs.push_back(outcome_for_user(0, 0.0, 10.0, 10));  // 100 node-h
  for (std::int32_t u = 1; u < 10; ++u) {
    m.jobs.push_back(outcome_for_user(u, 0.0, 10.0, 1));  // 10 node-h each
  }
  const FairnessReport r = fairness_report(m);
  EXPECT_NEAR(r.top_decile_node_share, 100.0 / 190.0, 1e-12);
}

TEST(Fairness, EndToEndThroughSimulation) {
  ExperimentConfig config;
  config.cluster = testing::tiny_cluster(gib(std::int64_t{64}));
  config.workload_reference_mem = gib(std::int64_t{64});
  config.scheduler = SchedulerKind::kMemAwareEasy;
  config.model = WorkloadModel::kMixed;
  config.jobs = 300;
  config.seed = 3;
  config.target_load = 0.9;
  const RunMetrics m = run_experiment(config);
  const FairnessReport r = fairness_report(m);
  EXPECT_GT(r.users.size(), 10u);
  EXPECT_GT(r.jain_bsld, 0.0);
  EXPECT_LE(r.jain_bsld, 1.0 + 1e-12);
  EXPECT_GE(r.top_decile_node_share, 0.1);  // Zipf-ish user mix
  std::size_t total_jobs = 0;
  for (const auto& u : r.users) total_jobs += u.jobs + u.rejected;
  EXPECT_EQ(total_jobs, m.jobs.size());
}

}  // namespace
}  // namespace dmsched
