// CounterRegistry: get-or-create semantics, reference stability,
// registration-order iteration, gauge envelopes, and the CSV dump.
#include "obs/counters.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace dmsched::obs {
namespace {

TEST(CounterRegistryTest, GetOrCreateReturnsSameEntry) {
  CounterRegistry reg;
  Counter& a = reg.counter("events");
  a.add(3);
  Counter& b = reg.counter("events");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value, 3u);
  EXPECT_EQ(reg.counter_count(), 1u);
}

TEST(CounterRegistryTest, ReferencesStayValidAcrossGrowth) {
  CounterRegistry reg;
  Counter& first = reg.counter("c0");
  Gauge& g_first = reg.gauge("g0");
  // Force enough insertions that vector-backed storage would reallocate.
  for (int i = 1; i < 200; ++i) {
    std::string c = "c";
    c += std::to_string(i);
    std::string g = "g";
    g += std::to_string(i);
    reg.counter(c);
    reg.gauge(g);
  }
  first.add(7);
  g_first.set(1.5);
  EXPECT_EQ(reg.find_counter("c0")->value, 7u);
  EXPECT_EQ(reg.find_gauge("g0")->last, 1.5);
}

TEST(CounterRegistryTest, IterationIsRegistrationOrder) {
  CounterRegistry reg;
  reg.counter("zebra");
  reg.counter("apple");
  reg.counter("mango");
  reg.gauge("z");
  reg.gauge("a");
  EXPECT_EQ(reg.counter_names(),
            (std::vector<std::string>{"zebra", "apple", "mango"}));
  EXPECT_EQ(reg.gauge_names(), (std::vector<std::string>{"z", "a"}));
}

TEST(CounterRegistryTest, FindWithoutCreation) {
  CounterRegistry reg;
  EXPECT_EQ(reg.find_counter("missing"), nullptr);
  EXPECT_EQ(reg.find_gauge("missing"), nullptr);
  reg.counter("present");
  EXPECT_NE(reg.find_counter("present"), nullptr);
  // find never creates.
  EXPECT_EQ(reg.counter_count(), 1u);
}

TEST(GaugeTest, EnvelopeTracksMinLastMax) {
  Gauge g;
  EXPECT_EQ(g.samples, 0u);
  g.set(5.0);
  EXPECT_EQ(g.min, 5.0);
  EXPECT_EQ(g.max, 5.0);
  EXPECT_EQ(g.last, 5.0);
  g.set(-2.0);
  g.set(3.0);
  EXPECT_EQ(g.min, -2.0);
  EXPECT_EQ(g.max, 5.0);
  EXPECT_EQ(g.last, 3.0);
  EXPECT_EQ(g.samples, 3u);
}

TEST(GaugeTest, FirstSampleResetsEnvelopeEvenIfPositive) {
  // min must not stick at the zero-initialized value.
  Gauge g;
  g.set(10.0);
  EXPECT_EQ(g.min, 10.0);
}

TEST(CounterRegistryTest, CsvDumpRoundTrips) {
  CounterRegistry reg;
  reg.counter("jobs").add(42);
  Gauge& g = reg.gauge("depth");
  g.set(1.0);
  g.set(9.0);
  g.set(4.0);
  reg.gauge("never_sampled");

  const std::string path = ::testing::TempDir() + "counters_roundtrip.csv";
  ASSERT_TRUE(reg.write_csv(path));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "kind,name,value,min,max,samples");
  EXPECT_EQ(lines[1], "counter,jobs,42,,,");
  // Gauge row: value = last, then min, max, samples.
  std::stringstream row(lines[2]);
  std::string field;
  std::vector<std::string> fields;
  while (std::getline(row, field, ',')) fields.push_back(field);
  ASSERT_EQ(fields.size(), 6u);
  EXPECT_EQ(fields[0], "gauge");
  EXPECT_EQ(fields[1], "depth");
  EXPECT_EQ(std::stod(fields[2]), 4.0);
  EXPECT_EQ(std::stod(fields[3]), 1.0);
  EXPECT_EQ(std::stod(fields[4]), 9.0);
  EXPECT_EQ(fields[5], "3");
  // An unsampled gauge keeps its numeric columns blank.
  EXPECT_EQ(lines[3].substr(0, 19), "gauge,never_sampled");
}

TEST(CounterRegistryTest, CsvWriteFailsCleanly) {
  CounterRegistry reg;
  reg.counter("x");
  EXPECT_FALSE(reg.write_csv("/nonexistent-dir/zzz/counters.csv"));
}

}  // namespace
}  // namespace dmsched::obs
