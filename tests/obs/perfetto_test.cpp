// PerfettoTraceWriter parse-back: a real traced run re-parses cleanly, the
// JSON escaper survives hostile names (fuzzed via seeded Rng), and the
// trace_check validator rejects each class of malformed document it exists
// to catch.
#include "obs/perfetto.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "obs/trace_check.hpp"
#include "workload/scenarios.hpp"

namespace dmsched::obs {
namespace {

TEST(PerfettoEscapeTest, PassesPlainTextThrough) {
  EXPECT_EQ(PerfettoTraceWriter::escape("easy/tiny"), "easy/tiny");
  EXPECT_EQ(PerfettoTraceWriter::escape(""), "");
}

TEST(PerfettoEscapeTest, EscapesJsonMetacharacters) {
  EXPECT_EQ(PerfettoTraceWriter::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(PerfettoTraceWriter::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(PerfettoTraceWriter::escape("a\nb\rc\td"), "a\\nb\\rc\\td");
}

TEST(PerfettoEscapeTest, ControlBytesBecomeUnicodeEscapes) {
  EXPECT_EQ(PerfettoTraceWriter::escape(std::string_view("\x01", 1)),
            "\\u0001");
  EXPECT_EQ(PerfettoTraceWriter::escape(std::string_view("\x1f", 1)),
            "\\u001f");
  // 0x20 (space) and above pass through unescaped.
  EXPECT_EQ(PerfettoTraceWriter::escape(" ~"), " ~");
}

// A real (small) run through the engine must produce a document the
// validator accepts, with every async span closed and an event count that
// matches what the writer says it wrote.
TEST(PerfettoWriterTest, RealRunParsesBack) {
  Scenario scenario = make_scenario("golden-baseline", {.jobs = 80});
  ExperimentConfig config =
      scenario_experiment(scenario, SchedulerKind::kEasy);

  const std::string path = ::testing::TempDir() + "perfetto_real_run.json";
  PerfettoTraceWriter writer(path);
  ASSERT_TRUE(writer.ok());
  config.engine.sink = &writer;
  config.engine.trace_detail = TraceDetail::kFull;
  RunMetrics m = run_experiment(config, scenario.trace);
  writer.close();
  ASSERT_TRUE(writer.ok());

  TraceCheckResult r = check_trace_file(path);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.events, writer.events_written());
  // Every queued/run span the engine opened was closed.
  EXPECT_EQ(r.async_begin, r.async_end);
  EXPECT_GT(r.async_begin, 0u);
  // One "X" pass span per scheduler pass, plus gauge counters at kFull.
  EXPECT_GT(r.complete, 0u);
  EXPECT_GT(r.counter, 0u);
  EXPECT_GT(r.metadata, 0u);
  EXPECT_GT(m.completed, 0u);
}

// Worker profiles land on their own wall-clock process and keep the
// document valid.
TEST(PerfettoWriterTest, WorkerProfilesParseBack) {
  const std::string path = ::testing::TempDir() + "perfetto_workers.json";
  PerfettoTraceWriter writer(path);
  ASSERT_TRUE(writer.ok());
  std::vector<WorkerProfile> workers(3);
  workers[0] = {.tasks_run = 10, .tasks_stolen = 2, .wait_ns = 1500};
  workers[2] = {.tasks_run = 4, .tasks_stolen = 0, .wait_ns = 900};
  writer.add_worker_profiles(workers, /*inline_runs=*/7);
  writer.close();
  ASSERT_TRUE(writer.ok());

  TraceCheckResult r = check_trace_file(path);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.complete, 3u);          // one "idle wait" span per worker
  EXPECT_EQ(r.metadata, 4u);          // process name + 3 thread names
  EXPECT_EQ(r.events, writer.events_written());
}

// Seeded fuzz: hostile bytes (quotes, backslashes, control characters,
// newlines) in every string the writer interpolates — run label, cluster
// name, pass kind — must still yield a valid document. Each round uses
// strictly increasing timestamps so every (pid, tid) track stays monotonic,
// mirroring the engine's nondecreasing emission order.
TEST(PerfettoWriterTest, FuzzedNamesStayValidJson) {
  Rng rng(20260807);
  auto hostile = [&rng]() {
    static const char pool[] =
        "\"\\\n\r\t\x01\x02\x1f abcXYZ{}[]:,\x7f/\b\f";
    const std::uint64_t len = rng.uniform_int(0, 24);
    std::string s;
    for (std::uint64_t i = 0; i < len; ++i)
      s += pool[rng.uniform_int(0, sizeof pool - 2)];
    return s;
  };

  for (int trial = 0; trial < 8; ++trial) {
    const std::string path = ::testing::TempDir() + "perfetto_fuzz_" +
                             std::to_string(trial) + ".json";
    PerfettoTraceWriter writer(path);
    ASSERT_TRUE(writer.ok());

    RunInfo info;
    info.label = hostile();
    info.cluster_name = hostile();
    info.racks = 2;
    info.total_nodes = 4;
    writer.on_run_begin(info);

    std::int64_t t = 0;
    const int rounds = 1 + static_cast<int>(rng.uniform_int(0, 9));
    for (int i = 0; i < rounds; ++i, t += 10) {
      const auto job = static_cast<std::uint32_t>(i);
      const auto rack = static_cast<std::int32_t>(rng.uniform_int(0, 1));
      writer.on_job_queued({.job = job,
                            .submit = usec(t),
                            .nodes = 2,
                            .mem_per_node_gib = 1.0});
      writer.on_job_started({.job = job,
                             .submit = usec(t),
                             .start = usec(t + 1),
                             .rack = rack,
                             .nodes = 2});
      const std::string kind = hostile();
      PassSpan pass;
      pass.seq = static_cast<std::uint64_t>(i);
      pass.at = usec(t + 2);
      pass.kind = kind.c_str();
      pass.queue_depth = 1;
      writer.on_pass(pass);
      GaugeSample g;
      g.at = usec(t + 3);
      g.busy_nodes = 2;
      writer.on_gauges(g);
      writer.on_job_finished({.job = job,
                              .start = usec(t + 1),
                              .end = usec(t + 4),
                              .rack = rack,
                              .killed = (i % 2) == 0});
    }
    writer.on_run_end(usec(t));
    writer.close();
    ASSERT_TRUE(writer.ok());

    TraceCheckResult r = check_trace_file(path);
    ASSERT_TRUE(r.ok) << "trial " << trial << ": " << r.error;
    EXPECT_EQ(r.async_begin, r.async_end) << "trial " << trial;
    EXPECT_EQ(r.events, writer.events_written()) << "trial " << trial;
  }
}

// --- validator negative space -------------------------------------------
// The parse-back guarantee is only as strong as what check_trace_json
// rejects; pin each rule with a minimal counterexample.

TEST(TraceCheckTest, AcceptsMinimalDocuments) {
  EXPECT_TRUE(check_trace_json(R"({"traceEvents":[]})").ok);
  TraceCheckResult r = check_trace_json(
      R"({"traceEvents":[
        {"ph":"b","cat":"q","id":1,"pid":1,"tid":0,"ts":5,"name":"j"},
        {"ph":"e","cat":"q","id":1,"pid":1,"tid":0,"ts":9,"name":"j"}]})");
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.events, 2u);
  EXPECT_EQ(r.async_begin, 1u);
  EXPECT_EQ(r.async_end, 1u);
}

TEST(TraceCheckTest, RejectsUnclosedAsyncSpan) {
  TraceCheckResult r = check_trace_json(
      R"({"traceEvents":[
        {"ph":"b","cat":"q","id":1,"pid":1,"tid":0,"ts":0,"name":"j"}]})");
  EXPECT_FALSE(r.ok);
}

TEST(TraceCheckTest, RejectsEndWithoutBegin) {
  EXPECT_FALSE(check_trace_json(
                   R"({"traceEvents":[
        {"ph":"E","pid":1,"tid":0,"ts":3,"name":"x"}]})")
                   .ok);
}

TEST(TraceCheckTest, RejectsTimeGoingBackwardsOnOneTrack) {
  TraceCheckResult r = check_trace_json(
      R"({"traceEvents":[
        {"ph":"i","pid":1,"tid":0,"ts":10,"name":"a"},
        {"ph":"i","pid":1,"tid":0,"ts":4,"name":"b"}]})");
  EXPECT_FALSE(r.ok);
  // ...but distinct tracks are independent clocks.
  EXPECT_TRUE(check_trace_json(
                  R"({"traceEvents":[
        {"ph":"i","pid":1,"tid":0,"ts":10,"name":"a"},
        {"ph":"i","pid":1,"tid":1,"ts":4,"name":"b"}]})")
                  .ok);
}

TEST(TraceCheckTest, RejectsNegativeDuration) {
  EXPECT_FALSE(check_trace_json(
                   R"({"traceEvents":[
        {"ph":"X","pid":1,"tid":0,"ts":0,"dur":-5,"name":"x"}]})")
                   .ok);
}

TEST(TraceCheckTest, RejectsCounterWithoutNumericSeries) {
  EXPECT_FALSE(check_trace_json(
                   R"({"traceEvents":[
        {"ph":"C","pid":1,"tid":0,"ts":0,"name":"c","args":{"v":"hi"}}]})")
                   .ok);
}

TEST(TraceCheckTest, RejectsMalformedJson) {
  EXPECT_FALSE(check_trace_json(R"({"traceEvents":[)").ok);
  EXPECT_FALSE(check_trace_json("").ok);
  EXPECT_FALSE(check_trace_json(R"([1,2,3])").ok);
}

TEST(TraceCheckTest, RejectsTrailingBytesAfterRoot) {
  EXPECT_FALSE(check_trace_json(R"({"traceEvents":[]} extra)").ok);
}

TEST(TraceCheckTest, ReportsMissingFileAsInvalid) {
  TraceCheckResult r = check_trace_file("/nonexistent-dir/zzz/trace.json");
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
}

}  // namespace
}  // namespace dmsched::obs
