// Neighbor-marked cross-rack pool draws: the validated relaxation of the
// old "every rack draw comes from a hosting rack" commit assertion.
//
// A draw carries `neighbor = true` exactly when its source rack hosts none
// of the job's nodes (DOLMA-style distance-graded sharing, one switch hop
// further than the own-rack tier). The ledger tracks the foreign-job subset
// of every rack pool separately, release/retier keep it balanced, and the
// *unmarked* foreign draw — a planner bug, not a policy — still aborts
// exactly as it always did.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "testing/builders.hpp"

namespace dmsched {
namespace {

using testing::tiny_cluster;

Allocation alloc_of(JobId id, std::vector<NodeId> nodes, Bytes local,
                    Bytes far = Bytes{0}, std::vector<PoolDraw> draws = {}) {
  Allocation a;
  a.job = id;
  a.nodes = std::move(nodes);
  a.local_per_node = local;
  a.far_per_node = far;
  a.draws = std::move(draws);
  return a;
}

TEST(NeighborDraws, LedgeredPerSourceRack) {
  // Nodes in rack 0; the 30 GiB deficit is funded 10 from the own rack,
  // 12 from rack 2 (neighbor-marked), 8 from the global tier.
  Cluster c(tiny_cluster(gib(std::int64_t{100}), gib(std::int64_t{50})));
  c.commit(alloc_of(1, {0, 1, 2}, gib(std::int64_t{64}), gib(std::int64_t{10}),
                    {{0, gib(std::int64_t{10})},
                     {2, gib(std::int64_t{12}), /*neighbor=*/true},
                     {kGlobalPoolRack, gib(std::int64_t{8})}}));
  // The foreign draw debits rack 2's pool like any other draw...
  EXPECT_EQ(c.pool_free(2), gib(std::int64_t{88}));
  // ...and is additionally ledgered as foreign, per source rack.
  EXPECT_EQ(c.neighbor_bytes_in_rack(2), gib(std::int64_t{12}));
  EXPECT_EQ(c.neighbor_bytes_in_rack(0), Bytes{0});
  EXPECT_EQ(c.neighbor_bytes_total(), gib(std::int64_t{12}));
  // The allocation splits its far bytes by distance grade.
  const Allocation* a = c.find_allocation(1);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->rack_draw_total(), gib(std::int64_t{10}));
  EXPECT_EQ(a->neighbor_draw_total(), gib(std::int64_t{12}));
  EXPECT_EQ(a->global_draw_total(), gib(std::int64_t{8}));
  c.audit();

  const Allocation released = c.release(1);
  EXPECT_EQ(released.neighbor_draw_total(), gib(std::int64_t{12}));
  EXPECT_EQ(c.pool_free(2), gib(std::int64_t{100}));
  EXPECT_EQ(c.neighbor_bytes_total(), Bytes{0});
  c.audit();
}

TEST(NeighborDraws, TwoJobsShareOneForeignPool) {
  Cluster c(tiny_cluster(gib(std::int64_t{100})));
  c.commit(alloc_of(1, {0}, gib(std::int64_t{64}), gib(std::int64_t{20}),
                    {{3, gib(std::int64_t{20}), true}}));
  // Rack 3's own occupant draws from its pool alongside job 1's foreign
  // bytes; the neighbor ledger counts only the foreign subset.
  c.commit(alloc_of(2, {12}, gib(std::int64_t{64}), gib(std::int64_t{30}),
                    {{3, gib(std::int64_t{30})}}));
  EXPECT_EQ(c.pool_free(3), gib(std::int64_t{50}));
  EXPECT_EQ(c.neighbor_bytes_in_rack(3), gib(std::int64_t{20}));
  c.audit();
  (void)c.release(2);
  EXPECT_EQ(c.neighbor_bytes_in_rack(3), gib(std::int64_t{20}));
  (void)c.release(1);
  EXPECT_EQ(c.neighbor_bytes_in_rack(3), Bytes{0});
  c.audit();
}

TEST(NeighborDraws, LegacyStrictModeStillAborts) {
  // An unmarked foreign draw is a planner bug, exactly as before the
  // neighbor tier existed — the relaxation is opt-in per draw.
  Cluster c(tiny_cluster(gib(std::int64_t{100})));
  EXPECT_DEATH(
      c.commit(alloc_of(1, {0}, gib(std::int64_t{64}), gib(std::int64_t{10}),
                        {{2, gib(std::int64_t{10})}})),
      "hosting no node");
}

TEST(NeighborDraws, MarkedDrawFromHostingRackAborts) {
  // The inverse lie: a hosting-rack draw claiming to be foreign would be
  // priced at the wrong distance grade.
  Cluster c(tiny_cluster(gib(std::int64_t{100})));
  EXPECT_DEATH(
      c.commit(alloc_of(1, {0}, gib(std::int64_t{64}), gib(std::int64_t{10}),
                        {{0, gib(std::int64_t{10}), true}})),
      "neighbor-marked draw from a hosting rack");
}

TEST(NeighborDraws, GlobalDrawCannotBeMarked) {
  Cluster c(tiny_cluster(Bytes{0}, gib(std::int64_t{50})));
  EXPECT_DEATH(
      c.commit(alloc_of(1, {0}, gib(std::int64_t{64}), gib(std::int64_t{10}),
                        {{kGlobalPoolRack, gib(std::int64_t{10}), true}})),
      "global draw marked as neighbor");
}

TEST(NeighborDraws, OvercommitThroughForeignDrawsAborts) {
  // The relaxed path still enforces capacity: a foreign draw cannot push a
  // pool past its size any more than an own-rack draw can.
  Cluster c(tiny_cluster(gib(std::int64_t{10})));
  c.commit(alloc_of(1, {12}, gib(std::int64_t{64}), gib(std::int64_t{8}),
                    {{3, gib(std::int64_t{8})}}));
  EXPECT_DEATH(
      c.commit(alloc_of(2, {0}, gib(std::int64_t{64}), gib(std::int64_t{3}),
                        {{3, gib(std::int64_t{3}), true}})),
      "overcommitted");
}

TEST(Retier, MovesBytesBetweenTiersAndKeepsLedgersBalanced) {
  Cluster c(tiny_cluster(gib(std::int64_t{100}), gib(std::int64_t{50})));
  c.commit(alloc_of(1, {0}, gib(std::int64_t{64}), gib(std::int64_t{30}),
                    {{0, gib(std::int64_t{10})},
                     {2, gib(std::int64_t{12}), true},
                     {kGlobalPoolRack, gib(std::int64_t{8})}}));
  // Demote the neighbor draw to the global tier (far total preserved).
  c.retier(1, {{0, gib(std::int64_t{10})},
               {kGlobalPoolRack, gib(std::int64_t{20})}});
  EXPECT_EQ(c.pool_free(2), gib(std::int64_t{100}));
  EXPECT_EQ(c.neighbor_bytes_total(), Bytes{0});
  EXPECT_EQ(c.global_pool_free(), gib(std::int64_t{30}));
  c.audit();
  // Promote part of it back as a neighbor draw on a different rack.
  c.retier(1, {{0, gib(std::int64_t{10})},
               {1, gib(std::int64_t{15}), true},
               {kGlobalPoolRack, gib(std::int64_t{5})}});
  EXPECT_EQ(c.neighbor_bytes_in_rack(1), gib(std::int64_t{15}));
  EXPECT_EQ(c.global_pool_free(), gib(std::int64_t{45}));
  c.audit();
  (void)c.release(1);
  EXPECT_EQ(c.neighbor_bytes_total(), Bytes{0});
  c.audit();
}

TEST(Retier, ReshuffleWithinOneFullPoolSucceeds) {
  // Capacity is validated with the job's own draws released first, so a
  // retier that keeps a full pool full (just re-labelled) must pass.
  Cluster c(tiny_cluster(gib(std::int64_t{10}), gib(std::int64_t{50})));
  c.commit(alloc_of(1, {0}, gib(std::int64_t{64}), gib(std::int64_t{10}),
                    {{0, gib(std::int64_t{10})}}));
  EXPECT_EQ(c.pool_free(0), Bytes{0});
  c.retier(1, {{0, gib(std::int64_t{10})}});
  EXPECT_EQ(c.pool_free(0), Bytes{0});
  c.audit();
}

TEST(Retier, FarTotalIsInvariant) {
  Cluster c(tiny_cluster(gib(std::int64_t{100}), gib(std::int64_t{50})));
  c.commit(alloc_of(1, {0}, gib(std::int64_t{64}), gib(std::int64_t{20}),
                    {{0, gib(std::int64_t{20})}}));
  EXPECT_DEATH(c.retier(1, {{0, gib(std::int64_t{15})}}),
               "do not cover the far requirement");
}

TEST(Retier, OvercommitAborts) {
  Cluster c(tiny_cluster(gib(std::int64_t{10}), gib(std::int64_t{50})));
  c.commit(alloc_of(1, {12}, gib(std::int64_t{64}), gib(std::int64_t{8}),
                    {{3, gib(std::int64_t{8})}}));
  c.commit(alloc_of(2, {0}, gib(std::int64_t{64}), gib(std::int64_t{6}),
                    {{kGlobalPoolRack, gib(std::int64_t{6})}}));
  // Promoting job 2's global bytes into rack 3 (8/10 used) must abort.
  EXPECT_DEATH(c.retier(2, {{3, gib(std::int64_t{6}), true}}),
               "rack pool overcommitted");
}

TEST(Retier, MarkingMustMatchTheHostingSet) {
  Cluster c(tiny_cluster(gib(std::int64_t{100}), gib(std::int64_t{50})));
  c.commit(alloc_of(1, {0}, gib(std::int64_t{64}), gib(std::int64_t{10}),
                    {{kGlobalPoolRack, gib(std::int64_t{10})}}));
  EXPECT_DEATH(c.retier(1, {{2, gib(std::int64_t{10})}}),
               "hosting no node");
  EXPECT_DEATH(c.retier(1, {{0, gib(std::int64_t{10}), true}}),
               "neighbor-marked draw from a hosting rack");
}

}  // namespace
}  // namespace dmsched
