#include "cluster/config.hpp"

#include <gtest/gtest.h>

namespace dmsched {
namespace {

ClusterConfig shape(std::int32_t nodes, std::int32_t per_rack) {
  ClusterConfig c;
  c.total_nodes = nodes;
  c.nodes_per_rack = per_rack;
  c.local_mem_per_node = gib(std::int64_t{64});
  return c;
}

TEST(ClusterConfig, RackCountExact) {
  EXPECT_EQ(shape(64, 16).racks(), 4);
}

TEST(ClusterConfig, RackCountRoundsUp) {
  EXPECT_EQ(shape(65, 16).racks(), 5);
}

TEST(ClusterConfig, RackOfMapsRackMajor) {
  const ClusterConfig c = shape(64, 16);
  EXPECT_EQ(c.rack_of(0), 0);
  EXPECT_EQ(c.rack_of(15), 0);
  EXPECT_EQ(c.rack_of(16), 1);
  EXPECT_EQ(c.rack_of(63), 3);
}

TEST(ClusterConfig, PartialLastRackSize) {
  const ClusterConfig c = shape(20, 8);
  EXPECT_EQ(c.racks(), 3);
  EXPECT_EQ(c.rack_size(0), 8);
  EXPECT_EQ(c.rack_size(1), 8);
  EXPECT_EQ(c.rack_size(2), 4);
}

TEST(ClusterConfig, TotalPoolSumsRackAndGlobal) {
  ClusterConfig c = shape(64, 16);
  c.pool_per_rack = gib(std::int64_t{100});
  c.global_pool = gib(std::int64_t{50});
  EXPECT_EQ(c.total_pool(), gib(std::int64_t{450}));  // 4 racks × 100 + 50
}

TEST(ClusterConfig, TotalMemoryIncludesLocal) {
  ClusterConfig c = shape(4, 2);
  c.pool_per_rack = gib(std::int64_t{10});
  EXPECT_EQ(c.total_memory(),
            gib(std::int64_t{4 * 64 + 2 * 10}));
}

TEST(ClusterConfig, ValidateAcceptsSane) {
  shape(64, 16).validate();  // must not abort
}

TEST(ClusterConfig, ValidateRejectsZeroNodes) {
  EXPECT_DEATH(shape(0, 16).validate(), "no nodes");
}

TEST(ClusterConfig, ValidateRejectsZeroLocalMemory) {
  ClusterConfig c = shape(4, 2);
  c.local_mem_per_node = Bytes{0};
  EXPECT_DEATH(c.validate(), "local memory");
}

}  // namespace
}  // namespace dmsched
