#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include "testing/builders.hpp"

namespace dmsched {
namespace {

using testing::tiny_cluster;

Allocation alloc_of(JobId id, std::vector<NodeId> nodes, Bytes local,
                    Bytes far = Bytes{0}, std::vector<PoolDraw> draws = {}) {
  Allocation a;
  a.job = id;
  a.nodes = std::move(nodes);
  a.local_per_node = local;
  a.far_per_node = far;
  a.draws = std::move(draws);
  return a;
}

TEST(Cluster, StartsAllFree) {
  Cluster c(tiny_cluster());
  EXPECT_EQ(c.free_nodes_total(), 16);
  EXPECT_EQ(c.busy_nodes(), 0);
  for (RackId r = 0; r < 4; ++r) EXPECT_EQ(c.free_nodes_in_rack(r), 4);
  EXPECT_EQ(c.occupant(0), kInvalidJobId);
  c.audit();
}

TEST(Cluster, CommitMarksNodesBusy) {
  Cluster c(tiny_cluster());
  c.commit(alloc_of(7, {0, 1, 5}, gib(std::int64_t{32})));
  EXPECT_EQ(c.free_nodes_total(), 13);
  EXPECT_EQ(c.free_nodes_in_rack(0), 2);
  EXPECT_EQ(c.free_nodes_in_rack(1), 3);
  EXPECT_EQ(c.occupant(0), 7u);
  EXPECT_EQ(c.occupant(5), 7u);
  EXPECT_EQ(c.occupant(2), kInvalidJobId);
  c.audit();
}

TEST(Cluster, ReleaseRestoresState) {
  Cluster c(tiny_cluster(gib(std::int64_t{100})));
  c.commit(alloc_of(1, {0, 1}, gib(std::int64_t{64}), gib(std::int64_t{10}),
                    {{0, gib(std::int64_t{20})}}));
  const Allocation released = c.release(1);
  EXPECT_EQ(released.nodes.size(), 2u);
  EXPECT_EQ(c.free_nodes_total(), 16);
  EXPECT_EQ(c.pool_free(0), gib(std::int64_t{100}));
  c.audit();
}

TEST(Cluster, PoolLedgers) {
  Cluster c(tiny_cluster(gib(std::int64_t{100}), gib(std::int64_t{50})));
  c.commit(alloc_of(1, {0, 4}, gib(std::int64_t{64}), gib(std::int64_t{30}),
                    {{0, gib(std::int64_t{30})},
                     {1, gib(std::int64_t{20})},
                     {kGlobalPoolRack, gib(std::int64_t{10})}}));
  EXPECT_EQ(c.pool_free(0), gib(std::int64_t{70}));
  EXPECT_EQ(c.pool_free(1), gib(std::int64_t{80}));
  EXPECT_EQ(c.global_pool_free(), gib(std::int64_t{40}));
  EXPECT_EQ(c.rack_pools_used(), gib(std::int64_t{50}));
  EXPECT_EQ(c.global_pool_used(), gib(std::int64_t{10}));
  c.audit();
}

TEST(Cluster, DoubleAllocationOfNodeAborts) {
  Cluster c(tiny_cluster());
  c.commit(alloc_of(1, {3}, gib(std::int64_t{1})));
  EXPECT_DEATH(c.commit(alloc_of(2, {3}, gib(std::int64_t{1}))), "occupied");
}

TEST(Cluster, SameJobTwiceAborts) {
  Cluster c(tiny_cluster());
  c.commit(alloc_of(1, {0}, gib(std::int64_t{1})));
  EXPECT_DEATH(c.commit(alloc_of(1, {1}, gib(std::int64_t{1}))),
               "already holds");
}

TEST(Cluster, PoolOvercommitAborts) {
  Cluster c(tiny_cluster(gib(std::int64_t{10})));
  EXPECT_DEATH(
      c.commit(alloc_of(1, {0}, gib(std::int64_t{64}), gib(std::int64_t{11}),
                        {{0, gib(std::int64_t{11})}})),
      "overcommitted");
}

TEST(Cluster, GlobalPoolOvercommitAborts) {
  Cluster c(tiny_cluster(Bytes{0}, gib(std::int64_t{5})));
  EXPECT_DEATH(
      c.commit(alloc_of(1, {0}, gib(std::int64_t{64}), gib(std::int64_t{6}),
                        {{kGlobalPoolRack, gib(std::int64_t{6})}})),
      "overcommitted");
}

TEST(Cluster, DrawsMustCoverFarRequirement) {
  Cluster c(tiny_cluster(gib(std::int64_t{100})));
  // 2 nodes × 10 GiB far = 20 GiB needed, only 10 drawn
  EXPECT_DEATH(
      c.commit(alloc_of(1, {0, 1}, gib(std::int64_t{64}),
                        gib(std::int64_t{10}), {{0, gib(std::int64_t{10})}})),
      "do not cover");
}

TEST(Cluster, DrawFromForeignRackAborts) {
  Cluster c(tiny_cluster(gib(std::int64_t{100})));
  // nodes in rack 0, draw from rack 2
  EXPECT_DEATH(
      c.commit(alloc_of(1, {0}, gib(std::int64_t{64}), gib(std::int64_t{10}),
                        {{2, gib(std::int64_t{10})}})),
      "hosting no node");
}

TEST(Cluster, LocalShareAboveCapacityAborts) {
  Cluster c(tiny_cluster());
  EXPECT_DEATH(c.commit(alloc_of(1, {0}, gib(std::int64_t{65}))), "local");
}

TEST(Cluster, ReleaseUnknownJobAborts) {
  Cluster c(tiny_cluster());
  EXPECT_DEATH((void)c.release(99), "not running");
}

TEST(Cluster, FindAllocation) {
  Cluster c(tiny_cluster());
  EXPECT_EQ(c.find_allocation(1), nullptr);
  c.commit(alloc_of(1, {0}, gib(std::int64_t{1})));
  const Allocation* a = c.find_allocation(1);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->nodes.size(), 1u);
}

TEST(Cluster, RunningJobsSorted) {
  Cluster c(tiny_cluster());
  c.commit(alloc_of(5, {0}, gib(std::int64_t{1})));
  c.commit(alloc_of(2, {1}, gib(std::int64_t{1})));
  c.commit(alloc_of(9, {2}, gib(std::int64_t{1})));
  EXPECT_EQ(c.running_jobs(), (std::vector<JobId>{2, 5, 9}));
}

TEST(Cluster, FreeNodesLowestReturnsAscending) {
  Cluster c(tiny_cluster());
  c.commit(alloc_of(1, {4, 6}, gib(std::int64_t{1})));  // rack 1 = nodes 4..7
  const auto free = c.free_nodes_in_rack_lowest(1, 10);
  EXPECT_EQ(free, (std::vector<NodeId>{5, 7}));
}

TEST(Cluster, FreeNodesLowestHonorsCount) {
  Cluster c(tiny_cluster());
  const auto free = c.free_nodes_in_rack_lowest(2, 2);
  EXPECT_EQ(free, (std::vector<NodeId>{8, 9}));
}

TEST(Cluster, AllocationAccessors) {
  Allocation a = alloc_of(1, {0, 4}, gib(std::int64_t{64}),
                          gib(std::int64_t{16}),
                          {{0, gib(std::int64_t{16})},
                           {kGlobalPoolRack, gib(std::int64_t{16})}});
  EXPECT_EQ(a.far_total(), gib(std::int64_t{32}));
  EXPECT_EQ(a.mem_total(), gib(std::int64_t{160}));
  EXPECT_DOUBLE_EQ(a.far_fraction(), 0.2);
  EXPECT_EQ(a.rack_draw_total(), gib(std::int64_t{16}));
  EXPECT_EQ(a.global_draw_total(), gib(std::int64_t{16}));
}

TEST(Cluster, ManyCommitsAndReleasesStayConsistent) {
  Cluster c(tiny_cluster(gib(std::int64_t{64})));
  for (int round = 0; round < 50; ++round) {
    const JobId id = static_cast<JobId>(round);
    const NodeId n = static_cast<NodeId>(round % 16);
    if (c.occupant(n) != kInvalidJobId) c.release(c.occupant(n));
    c.commit(alloc_of(id, {n}, gib(std::int64_t{32}), gib(std::int64_t{4}),
                      {{n / 4, gib(std::int64_t{4})}}));
    c.audit();
  }
}

}  // namespace
}  // namespace dmsched
