#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include "testing/builders.hpp"

namespace dmsched {
namespace {

using testing::tiny_cluster;

Allocation alloc_of(JobId id, std::vector<NodeId> nodes, Bytes local,
                    Bytes far = Bytes{0}, std::vector<PoolDraw> draws = {}) {
  Allocation a;
  a.job = id;
  a.nodes = std::move(nodes);
  a.local_per_node = local;
  a.far_per_node = far;
  a.draws = std::move(draws);
  return a;
}

TEST(Cluster, StartsAllFree) {
  Cluster c(tiny_cluster());
  EXPECT_EQ(c.free_nodes_total(), 16);
  EXPECT_EQ(c.busy_nodes(), 0);
  for (RackId r = 0; r < 4; ++r) EXPECT_EQ(c.free_nodes_in_rack(r), 4);
  EXPECT_EQ(c.occupant(0), kInvalidJobId);
  c.audit();
}

TEST(Cluster, CommitMarksNodesBusy) {
  Cluster c(tiny_cluster());
  c.commit(alloc_of(7, {0, 1, 5}, gib(std::int64_t{32})));
  EXPECT_EQ(c.free_nodes_total(), 13);
  EXPECT_EQ(c.free_nodes_in_rack(0), 2);
  EXPECT_EQ(c.free_nodes_in_rack(1), 3);
  EXPECT_EQ(c.occupant(0), 7u);
  EXPECT_EQ(c.occupant(5), 7u);
  EXPECT_EQ(c.occupant(2), kInvalidJobId);
  c.audit();
}

TEST(Cluster, ReleaseRestoresState) {
  Cluster c(tiny_cluster(gib(std::int64_t{100})));
  c.commit(alloc_of(1, {0, 1}, gib(std::int64_t{64}), gib(std::int64_t{10}),
                    {{0, gib(std::int64_t{20})}}));
  const Allocation released = c.release(1);
  EXPECT_EQ(released.nodes.size(), 2u);
  EXPECT_EQ(c.free_nodes_total(), 16);
  EXPECT_EQ(c.pool_free(0), gib(std::int64_t{100}));
  c.audit();
}

TEST(Cluster, PoolLedgers) {
  Cluster c(tiny_cluster(gib(std::int64_t{100}), gib(std::int64_t{50})));
  c.commit(alloc_of(1, {0, 4}, gib(std::int64_t{64}), gib(std::int64_t{30}),
                    {{0, gib(std::int64_t{30})},
                     {1, gib(std::int64_t{20})},
                     {kGlobalPoolRack, gib(std::int64_t{10})}}));
  EXPECT_EQ(c.pool_free(0), gib(std::int64_t{70}));
  EXPECT_EQ(c.pool_free(1), gib(std::int64_t{80}));
  EXPECT_EQ(c.global_pool_free(), gib(std::int64_t{40}));
  EXPECT_EQ(c.rack_pools_used(), gib(std::int64_t{50}));
  EXPECT_EQ(c.global_pool_used(), gib(std::int64_t{10}));
  c.audit();
}

TEST(Cluster, DoubleAllocationOfNodeAborts) {
  Cluster c(tiny_cluster());
  c.commit(alloc_of(1, {3}, gib(std::int64_t{1})));
  EXPECT_DEATH(c.commit(alloc_of(2, {3}, gib(std::int64_t{1}))), "occupied");
}

TEST(Cluster, SameJobTwiceAborts) {
  Cluster c(tiny_cluster());
  c.commit(alloc_of(1, {0}, gib(std::int64_t{1})));
  EXPECT_DEATH(c.commit(alloc_of(1, {1}, gib(std::int64_t{1}))),
               "already holds");
}

TEST(Cluster, PoolOvercommitAborts) {
  Cluster c(tiny_cluster(gib(std::int64_t{10})));
  EXPECT_DEATH(
      c.commit(alloc_of(1, {0}, gib(std::int64_t{64}), gib(std::int64_t{11}),
                        {{0, gib(std::int64_t{11})}})),
      "overcommitted");
}

TEST(Cluster, GlobalPoolOvercommitAborts) {
  Cluster c(tiny_cluster(Bytes{0}, gib(std::int64_t{5})));
  EXPECT_DEATH(
      c.commit(alloc_of(1, {0}, gib(std::int64_t{64}), gib(std::int64_t{6}),
                        {{kGlobalPoolRack, gib(std::int64_t{6})}})),
      "overcommitted");
}

TEST(Cluster, DrawsMustCoverFarRequirement) {
  Cluster c(tiny_cluster(gib(std::int64_t{100})));
  // 2 nodes × 10 GiB far = 20 GiB needed, only 10 drawn
  EXPECT_DEATH(
      c.commit(alloc_of(1, {0, 1}, gib(std::int64_t{64}),
                        gib(std::int64_t{10}), {{0, gib(std::int64_t{10})}})),
      "do not cover");
}

TEST(Cluster, DrawFromForeignRackAborts) {
  Cluster c(tiny_cluster(gib(std::int64_t{100})));
  // nodes in rack 0, draw from rack 2
  EXPECT_DEATH(
      c.commit(alloc_of(1, {0}, gib(std::int64_t{64}), gib(std::int64_t{10}),
                        {{2, gib(std::int64_t{10})}})),
      "hosting no node");
}

TEST(Cluster, LocalShareAboveCapacityAborts) {
  Cluster c(tiny_cluster());
  EXPECT_DEATH(c.commit(alloc_of(1, {0}, gib(std::int64_t{65}))), "local");
}

TEST(Cluster, ReleaseUnknownJobAborts) {
  Cluster c(tiny_cluster());
  EXPECT_DEATH((void)c.release(99), "not running");
}

TEST(Cluster, FindAllocation) {
  Cluster c(tiny_cluster());
  EXPECT_EQ(c.find_allocation(1), nullptr);
  c.commit(alloc_of(1, {0}, gib(std::int64_t{1})));
  const Allocation* a = c.find_allocation(1);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->nodes.size(), 1u);
}

TEST(Cluster, RunningJobsSorted) {
  Cluster c(tiny_cluster());
  c.commit(alloc_of(5, {0}, gib(std::int64_t{1})));
  c.commit(alloc_of(2, {1}, gib(std::int64_t{1})));
  c.commit(alloc_of(9, {2}, gib(std::int64_t{1})));
  EXPECT_EQ(c.running_jobs(), (std::vector<JobId>{2, 5, 9}));
}

TEST(Cluster, FreeNodesLowestReturnsAscending) {
  Cluster c(tiny_cluster());
  c.commit(alloc_of(1, {4, 6}, gib(std::int64_t{1})));  // rack 1 = nodes 4..7
  const auto free = c.free_nodes_in_rack_lowest(1, 10);
  EXPECT_EQ(free, (std::vector<NodeId>{5, 7}));
}

TEST(Cluster, FreeNodesLowestHonorsCount) {
  Cluster c(tiny_cluster());
  const auto free = c.free_nodes_in_rack_lowest(2, 2);
  EXPECT_EQ(free, (std::vector<NodeId>{8, 9}));
}

TEST(Cluster, AllocationAccessors) {
  Allocation a = alloc_of(1, {0, 4}, gib(std::int64_t{64}),
                          gib(std::int64_t{16}),
                          {{0, gib(std::int64_t{16})},
                           {kGlobalPoolRack, gib(std::int64_t{16})}});
  EXPECT_EQ(a.far_total(), gib(std::int64_t{32}));
  EXPECT_EQ(a.mem_total(), gib(std::int64_t{160}));
  EXPECT_DOUBLE_EQ(a.far_fraction(), 0.2);
  EXPECT_EQ(a.rack_draw_total(), gib(std::int64_t{16}));
  EXPECT_EQ(a.global_draw_total(), gib(std::int64_t{16}));
}

// --- GPU / burst-buffer ledger (the resource-vector axes) -------------------

Allocation resource_alloc(JobId id, std::vector<NodeId> nodes,
                          std::int32_t gpus_per_node, Bytes bb = Bytes{0}) {
  Allocation a = alloc_of(id, std::move(nodes), gib(std::int64_t{1}));
  a.gpus_per_node = gpus_per_node;
  a.bb_bytes = bb;
  return a;
}

TEST(Cluster, GpuLedgerTracksRackPools) {
  ClusterConfig cfg = testing::machine(16, 64.0);
  cfg.gpus_per_node = 2;  // 4 racks × 4 nodes → 8 devices per rack
  Cluster c(cfg);
  EXPECT_EQ(c.free_gpus_in_rack(0), 8);
  EXPECT_EQ(c.gpus_used_total(), 0);

  // Rack-pooled: one node may hold more devices than its per-node share.
  c.commit(resource_alloc(1, {0, 1}, 3));
  EXPECT_EQ(c.gpus_used_in_rack(0), 6);
  EXPECT_EQ(c.free_gpus_in_rack(0), 2);
  EXPECT_EQ(c.free_gpus_in_rack(1), 8);  // other racks untouched
  EXPECT_EQ(c.gpus_used_total(), 6);
  c.audit();

  c.release(1);
  EXPECT_EQ(c.free_gpus_in_rack(0), 8);
  EXPECT_EQ(c.gpus_used_total(), 0);
  c.audit();
}

TEST(Cluster, GpuLedgerSplitsAcrossRacks) {
  ClusterConfig cfg = testing::machine(16, 64.0);
  cfg.gpus_per_node = 2;
  Cluster c(cfg);
  // Nodes 3 (rack 0) and 4 (rack 1): each rack funds its hosted nodes only.
  c.commit(resource_alloc(1, {3, 4}, 2));
  EXPECT_EQ(c.gpus_used_in_rack(0), 2);
  EXPECT_EQ(c.gpus_used_in_rack(1), 2);
  EXPECT_EQ(c.gpus_used_total(), 4);
  c.audit();
}

TEST(Cluster, GpuOvercommitAborts) {
  ClusterConfig cfg = testing::machine(16, 64.0);
  cfg.gpus_per_node = 2;
  Cluster c(cfg);
  c.commit(resource_alloc(1, {0, 1}, 3));  // 6 of rack 0's 8 devices
  EXPECT_DEATH(c.commit(resource_alloc(2, {2}, 3)),
               "GPU pool overcommitted");
}

TEST(Cluster, GpuDemandOnGpuFreeMachineAborts) {
  // The ledger refuses device demand the machine never provisioned
  // (gpus_per_node == 0): blind policies cannot sneak devices in.
  Cluster c(tiny_cluster());
  EXPECT_DEATH(c.commit(resource_alloc(1, {0}, 1)), "GPU pool overcommitted");
}

TEST(Cluster, BurstBufferLedger) {
  ClusterConfig cfg = testing::machine(8, 64.0);
  cfg.bb_capacity = gib(std::int64_t{100});
  Cluster c(cfg);
  EXPECT_EQ(c.bb_free(), gib(std::int64_t{100}));

  c.commit(resource_alloc(1, {0}, 0, gib(std::int64_t{60})));
  c.commit(resource_alloc(2, {1}, 0, gib(std::int64_t{30})));
  EXPECT_EQ(c.bb_used(), gib(std::int64_t{90}));
  EXPECT_EQ(c.bb_free(), gib(std::int64_t{10}));
  c.audit();

  c.release(1);
  EXPECT_EQ(c.bb_free(), gib(std::int64_t{70}));
  c.audit();
}

TEST(Cluster, BurstBufferOvercommitAborts) {
  ClusterConfig cfg = testing::machine(8, 64.0);
  cfg.bb_capacity = gib(std::int64_t{100});
  Cluster c(cfg);
  c.commit(resource_alloc(1, {0}, 0, gib(std::int64_t{60})));
  EXPECT_DEATH(c.commit(resource_alloc(2, {1}, 0, gib(std::int64_t{41}))),
               "burst buffer overcommitted");
}

TEST(Cluster, ResourceAllocationAccessors) {
  ClusterConfig cfg = testing::machine(16, 64.0);
  cfg.gpus_per_node = 4;
  Allocation a = alloc_of(1, {0, 1, 4}, gib(std::int64_t{1}));
  a.gpus_per_node = 2;
  EXPECT_EQ(a.gpu_total(), 6);
  EXPECT_EQ(a.gpus_in_rack(cfg, 0), 4);  // nodes 0, 1
  EXPECT_EQ(a.gpus_in_rack(cfg, 1), 2);  // node 4
  EXPECT_EQ(a.gpus_in_rack(cfg, 2), 0);
  EXPECT_EQ(cfg.rack_gpu_capacity(0), 16);
  EXPECT_EQ(cfg.total_gpus(), 64);
}

TEST(Cluster, ManyCommitsAndReleasesStayConsistent) {
  Cluster c(tiny_cluster(gib(std::int64_t{64})));
  for (int round = 0; round < 50; ++round) {
    const JobId id = static_cast<JobId>(round);
    const NodeId n = static_cast<NodeId>(round % 16);
    if (c.occupant(n) != kInvalidJobId) c.release(c.occupant(n));
    c.commit(alloc_of(id, {n}, gib(std::int64_t{32}), gib(std::int64_t{4}),
                      {{n / 4, gib(std::int64_t{4})}}));
    c.audit();
  }
}

}  // namespace
}  // namespace dmsched
