#include "cluster/system_config.hpp"

#include <gtest/gtest.h>

namespace dmsched {
namespace {

TEST(SystemConfig, ReferenceShape) {
  const ClusterConfig c = reference_config();
  EXPECT_EQ(c.total_nodes, 1024);
  EXPECT_EQ(c.nodes_per_rack, 64);
  EXPECT_EQ(c.racks(), 16);
  EXPECT_EQ(c.local_mem_per_node, gib(std::int64_t{256}));
  EXPECT_TRUE(c.pool_per_rack.is_zero());
  EXPECT_TRUE(c.global_pool.is_zero());
  c.validate();
}

TEST(SystemConfig, DisaggregatedOverrides) {
  const ClusterConfig c = disaggregated_config(128, 2048);
  EXPECT_EQ(c.local_mem_per_node, gib(std::int64_t{128}));
  EXPECT_EQ(c.pool_per_rack, gib(std::int64_t{2048}));
  EXPECT_EQ(c.name, "dis-L128-P2048");
  c.validate();
}

TEST(SystemConfig, DisaggregatedWithGlobalPool) {
  const ClusterConfig c = disaggregated_config(128, 0, 32768);
  EXPECT_TRUE(c.pool_per_rack.is_zero());
  EXPECT_EQ(c.global_pool, gib(std::int64_t{32768}));
  EXPECT_EQ(c.name, "dis-L128-P0-G32768");
}

TEST(SystemConfig, CustomConfig) {
  const ClusterConfig c = custom_config(64, 8, gib(std::int64_t{32}),
                                        gib(std::int64_t{100}), Bytes{0});
  EXPECT_EQ(c.racks(), 8);
  EXPECT_EQ(c.total_pool(), gib(std::int64_t{800}));
  c.validate();
}

TEST(SystemConfig, EvaluationConfigsAreValidAndDistinct) {
  const auto configs = evaluation_configs();
  EXPECT_GE(configs.size(), 6u);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    configs[i].validate();
    for (std::size_t k = i + 1; k < configs.size(); ++k) {
      EXPECT_NE(configs[i].name, configs[k].name);
    }
  }
  // the first entry is the reference machine
  EXPECT_EQ(configs.front().name, reference_config().name);
}

TEST(SystemConfig, TopologyAblationPairHasEqualCapacity) {
  // rack-pool config vs global-pool config used in Fig. 9 must carry the
  // same total disaggregated bytes for a fair comparison
  const ClusterConfig rack = disaggregated_config(128, 2048);
  const ClusterConfig global = disaggregated_config(128, 0, 32768);
  EXPECT_EQ(rack.total_pool(), global.total_pool());
}

}  // namespace
}  // namespace dmsched
