// Golden-metrics regression harness.
//
// Runs a small fixed-seed end-to-end simulation per scheduler through
// run_sweep_on_trace and pins the resulting RunMetrics. This turns the
// engine's determinism claim into an enforced invariant: any PR that changes
// scheduling behaviour — intentionally or not — trips this suite and must
// regenerate the table (see tests/golden/README.md).
//
// Three layers of checking, strictest first:
//  1. byte-identity across repeated runs (EXPECT_EQ on every field);
//  2. byte-identity between threads=1 and threads=hardware_concurrency
//     (sweep parallelism must not perturb results);
//  3. pinned golden values for the headline metrics of each scheduler.
//
// Every golden run also executes with EngineOptions::audit_cluster enabled,
// so cluster invariants (no over-commit, allocation/usage bookkeeping) are
// validated after each job completion as a side effect of the suite.
//
// To regenerate the table after an intentional behaviour change:
//   DMSCHED_REGEN_GOLDEN=1 ./build/tests/golden_golden_metrics_test
// and paste the printed block over kGolden below.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/sweep.hpp"
#include "testing/builders.hpp"

namespace dmsched {
namespace {

/// Headline metrics pinned per scheduler. Values are printed with %.17g so
/// doubles round-trip exactly through the source code.
struct GoldenRecord {
  SchedulerKind scheduler;
  std::int64_t makespan_usec;
  std::size_t completed;
  std::size_t rejected;
  double mean_wait_hours;
  double mean_bsld;
  double node_utilization;
  double rack_pool_utilization;
  double global_pool_utilization;
  double mean_dilation;
  double frac_jobs_far;
};

// --- The golden table -------------------------------------------------------
// Scenario: 16-node tiny cluster (4 racks × 4 nodes, 64 GiB local), 32 GiB
// rack pools, 128 GiB global pool; 400 mixed-model jobs, seed 20240726,
// target load 1.1 (oversubscribed so queues form and pools are exercised).
constexpr GoldenRecord kGolden[] = {
    {SchedulerKind::kFcfs, 3184885108686, 363, 37, 170.24501375801572,
     370.80363166981397, 0.62581285393900554, 0.11512328236250666,
     0.066704744454911688, 1.0117167726045706, 0.18732782369146006},
    {SchedulerKind::kEasy, 2341827208817, 363, 37, 38.322239335500448,
     77.421151570655383, 0.85113192136187832, 0.15491846925836342,
     0.09247566348958175, 1.0121243845650612, 0.18732782369146006},
    {SchedulerKind::kConservative, 2435724116981, 363, 37, 40.034605553903447,
     78.562344273048609, 0.81832893692268205, 0.14852591968673645,
     0.089357629654774201, 1.0119524613098214, 0.18732782369146006},
    {SchedulerKind::kMemAwareEasy, 2341827208817, 363, 37, 38.44026515943294,
     77.514898994535031, 0.85114152156566514, 0.15420014002561525,
     0.093227176203641404, 1.0119592984294279, 0.18732782369146006},
    {SchedulerKind::kAdaptive, 2341827208817, 363, 37, 38.388958114087828,
     77.434450375276981, 0.85112913371179544, 0.15557784991060344,
     0.09183447035361747, 1.0119433527782502, 0.18732782369146006},
};

// The golden machine/workload is the scenario library's "golden-baseline"
// (src/workload/scenarios.cpp): a 96-GiB-reference mixed workload on the
// 64-GiB tiny pooled machine, so a solid share of jobs overflow into the
// pools. Sourcing it from the registry pins the library and this table to
// each other — a scenario drift trips the suite exactly like an engine
// drift.
ExperimentConfig golden_config(const Scenario& scenario, SchedulerKind kind) {
  ExperimentConfig c = scenario_experiment(scenario, kind);
  c.label = to_string(kind);
  // Every golden run doubles as a cluster-invariant audit (O(nodes) per
  // completion — cheap at 16 nodes, priceless as a regression net).
  c.engine.audit_cluster = true;
  return c;
}

std::vector<ExperimentConfig> golden_configs(const Scenario& scenario) {
  std::vector<ExperimentConfig> configs;
  for (const GoldenRecord& rec : kGolden) {
    configs.push_back(golden_config(scenario, rec.scheduler));
  }
  return configs;
}

/// The strictest comparison: every per-job field and every aggregate must be
/// bit-identical. Used run-vs-run and threads=1 vs threads=N.
void expect_byte_identical(const RunMetrics& a, const RunMetrics& b) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "job " << i);
    EXPECT_EQ(a.jobs[i].fate, b.jobs[i].fate);
    EXPECT_EQ(a.jobs[i].submit.usec(), b.jobs[i].submit.usec());
    EXPECT_EQ(a.jobs[i].start.usec(), b.jobs[i].start.usec());
    EXPECT_EQ(a.jobs[i].end.usec(), b.jobs[i].end.usec());
    EXPECT_EQ(a.jobs[i].dilation, b.jobs[i].dilation);
    EXPECT_EQ(a.jobs[i].far_rack, b.jobs[i].far_rack);
    EXPECT_EQ(a.jobs[i].far_global, b.jobs[i].far_global);
  }
  EXPECT_EQ(a.makespan.usec(), b.makespan.usec());
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.killed, b.killed);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.node_utilization, b.node_utilization);
  EXPECT_EQ(a.rack_pool_utilization, b.rack_pool_utilization);
  EXPECT_EQ(a.rack_pool_peak, b.rack_pool_peak);
  EXPECT_EQ(a.global_pool_utilization, b.global_pool_utilization);
  EXPECT_EQ(a.global_pool_peak, b.global_pool_peak);
  EXPECT_EQ(a.mean_wait_hours, b.mean_wait_hours);
  EXPECT_EQ(a.p95_wait_hours, b.p95_wait_hours);
  EXPECT_EQ(a.max_wait_hours, b.max_wait_hours);
  EXPECT_EQ(a.mean_bsld, b.mean_bsld);
  EXPECT_EQ(a.p95_bsld, b.p95_bsld);
  EXPECT_EQ(a.mean_dilation, b.mean_dilation);
  EXPECT_EQ(a.frac_jobs_far, b.frac_jobs_far);
  EXPECT_EQ(a.far_gib_hours, b.far_gib_hours);
  EXPECT_EQ(a.jobs_per_hour, b.jobs_per_hour);
}

void expect_matches_golden(const RunMetrics& m, const GoldenRecord& g) {
  SCOPED_TRACE(to_string(g.scheduler));
  EXPECT_EQ(m.makespan.usec(), g.makespan_usec);
  EXPECT_EQ(m.completed, g.completed);
  EXPECT_EQ(m.rejected, g.rejected);
  // %.17g round-trips exactly, so equality is expected on the pinned
  // platform; DOUBLE_EQ (4 ulps) absorbs cross-compiler FP variance.
  EXPECT_DOUBLE_EQ(m.mean_wait_hours, g.mean_wait_hours);
  EXPECT_DOUBLE_EQ(m.mean_bsld, g.mean_bsld);
  EXPECT_DOUBLE_EQ(m.node_utilization, g.node_utilization);
  EXPECT_DOUBLE_EQ(m.rack_pool_utilization, g.rack_pool_utilization);
  EXPECT_DOUBLE_EQ(m.global_pool_utilization, g.global_pool_utilization);
  EXPECT_DOUBLE_EQ(m.mean_dilation, g.mean_dilation);
  EXPECT_DOUBLE_EQ(m.frac_jobs_far, g.frac_jobs_far);
}

const char* kind_token(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFcfs: return "kFcfs";
    case SchedulerKind::kEasy: return "kEasy";
    case SchedulerKind::kConservative: return "kConservative";
    case SchedulerKind::kMemAwareEasy: return "kMemAwareEasy";
    case SchedulerKind::kAdaptive: return "kAdaptive";
    case SchedulerKind::kResourceAwareEasy: return "kResourceAwareEasy";
  }
  return "?";
}

void print_regen_table(const std::vector<RunMetrics>& results) {
  std::printf("constexpr GoldenRecord kGolden[] = {\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunMetrics& m = results[i];
    std::printf(
        "    {SchedulerKind::%s, %lld, %zu, %zu, %.17g, %.17g, %.17g, "
        "%.17g, %.17g, %.17g, %.17g},\n",
        kind_token(kGolden[i].scheduler),
        static_cast<long long>(m.makespan.usec()), m.completed, m.rejected,
        m.mean_wait_hours, m.mean_bsld, m.node_utilization,
        m.rack_pool_utilization, m.global_pool_utilization, m.mean_dilation,
        m.frac_jobs_far);
  }
  std::printf("};\n");
}

class GoldenMetricsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new Scenario(make_scenario("golden-baseline"));
    configs_ = new std::vector<ExperimentConfig>(golden_configs(*scenario_));
    serial_ = new std::vector<RunMetrics>(
        run_sweep_on_trace(*configs_, scenario_->trace, /*threads=*/1));
  }
  static void TearDownTestSuite() {
    delete serial_;
    delete configs_;
    delete scenario_;
    serial_ = nullptr;
    configs_ = nullptr;
    scenario_ = nullptr;
  }

  static Scenario* scenario_;
  static std::vector<ExperimentConfig>* configs_;
  static std::vector<RunMetrics>* serial_;
};

Scenario* GoldenMetricsTest::scenario_ = nullptr;
std::vector<ExperimentConfig>* GoldenMetricsTest::configs_ = nullptr;
std::vector<RunMetrics>* GoldenMetricsTest::serial_ = nullptr;

TEST_F(GoldenMetricsTest, MatchesPinnedValues) {
  if (std::getenv("DMSCHED_REGEN_GOLDEN") != nullptr) {
    print_regen_table(*serial_);
    GTEST_SKIP() << "regen mode: table printed, assertions skipped";
  }
  ASSERT_EQ(serial_->size(), std::size(kGolden));
  for (std::size_t i = 0; i < serial_->size(); ++i) {
    expect_matches_golden((*serial_)[i], kGolden[i]);
  }
}

TEST_F(GoldenMetricsTest, ScenarioMachineStaysPinned) {
  // The golden table is only meaningful on the published machine; a scenario
  // edit that moves it must regenerate the table (and say why).
  const ClusterConfig expected = testing::tiny_cluster(
      gib(std::int64_t{32}), gib(std::int64_t{128}));
  EXPECT_EQ(scenario_->cluster.total_nodes, expected.total_nodes);
  EXPECT_EQ(scenario_->cluster.nodes_per_rack, expected.nodes_per_rack);
  EXPECT_EQ(scenario_->cluster.local_mem_per_node,
            expected.local_mem_per_node);
  EXPECT_EQ(scenario_->cluster.pool_per_rack, expected.pool_per_rack);
  EXPECT_EQ(scenario_->cluster.global_pool, expected.global_pool);
  EXPECT_EQ(scenario_->workload_reference_mem, gib(std::int64_t{96}));
  EXPECT_EQ(scenario_->trace.size(), 400u);
}

TEST_F(GoldenMetricsTest, RepeatedRunIsByteIdentical) {
  const auto again =
      run_sweep_on_trace(*configs_, scenario_->trace, /*threads=*/1);
  ASSERT_EQ(again.size(), serial_->size());
  for (std::size_t i = 0; i < again.size(); ++i) {
    SCOPED_TRACE(to_string(kGolden[i].scheduler));
    expect_byte_identical((*serial_)[i], again[i]);
  }
}

TEST_F(GoldenMetricsTest, HardwareThreadsMatchSerial) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const auto parallel = run_sweep_on_trace(*configs_, scenario_->trace, hw);
  ASSERT_EQ(parallel.size(), serial_->size());
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    SCOPED_TRACE(to_string(kGolden[i].scheduler));
    expect_byte_identical((*serial_)[i], parallel[i]);
  }
}

TEST_F(GoldenMetricsTest, OddThreadCountMatchesSerial) {
  // A thread count that does not divide the config count exercises the
  // chunk counter's remainder handling.
  const auto parallel = run_sweep_on_trace(*configs_, scenario_->trace, 3);
  ASSERT_EQ(parallel.size(), serial_->size());
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    SCOPED_TRACE(to_string(kGolden[i].scheduler));
    expect_byte_identical((*serial_)[i], parallel[i]);
  }
}

TEST_F(GoldenMetricsTest, ExplicitChunkSizesMatchSerial) {
  // Chunked work distribution must never perturb results: every chunk size
  // (dividing, non-dividing, larger than the config count) is byte-identical
  // to the serial sweep.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{2},
                                  std::size_t{3}, std::size_t{64}}) {
    const auto parallel = run_sweep_on_trace(*configs_, scenario_->trace,
                                             SweepOptions{hw, chunk});
    ASSERT_EQ(parallel.size(), serial_->size());
    for (std::size_t i = 0; i < parallel.size(); ++i) {
      SCOPED_TRACE(::testing::Message()
                   << to_string(kGolden[i].scheduler) << " chunk " << chunk);
      expect_byte_identical((*serial_)[i], parallel[i]);
    }
  }
}

TEST_F(GoldenMetricsTest, RepeatedSweepsOnTheSharedPoolStayByteIdentical) {
  // The persistent executor is reused across every sweep in the process;
  // repeated sweeps, a fresh injected pool, and the warm shared pool must
  // all produce byte-identical output (pool reuse is unobservable).
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  for (int repeat = 0; repeat < 3; ++repeat) {
    const auto warm = run_sweep_on_trace(*configs_, scenario_->trace, hw);
    ASSERT_EQ(warm.size(), serial_->size());
    for (std::size_t i = 0; i < warm.size(); ++i) {
      SCOPED_TRACE(::testing::Message()
                   << to_string(kGolden[i].scheduler) << " repeat " << repeat);
      expect_byte_identical((*serial_)[i], warm[i]);
    }
  }
  Executor fresh_pool(ExecutorOptions{3});
  SweepOptions options{hw, /*chunk=*/2};
  options.executor = &fresh_pool;
  const auto cold =
      run_sweep_on_trace(*configs_, scenario_->trace, options);
  ASSERT_EQ(cold.size(), serial_->size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    SCOPED_TRACE(to_string(kGolden[i].scheduler));
    expect_byte_identical((*serial_)[i], cold[i]);
  }
}

TEST_F(GoldenMetricsTest, ScenarioExercisesThePools) {
  // Guard against the scenario degenerating (e.g. a workload-model change
  // that stops touching far memory would silently weaken the suite).
  bool any_far = false;
  for (const RunMetrics& m : *serial_) {
    if (m.frac_jobs_far > 0.0) any_far = true;
  }
  EXPECT_TRUE(any_far) << "golden scenario no longer exercises the pools";
}

}  // namespace
}  // namespace dmsched
