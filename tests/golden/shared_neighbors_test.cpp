// Shared-neighbors discrimination — the distance-graded neighbor tier's
// pinned claim, enforced in CI.
//
// On the shared-neighbors scenario (a rack-local machine whose rejection
// pathology is the point — scarce local memory, fat rack pools, a thin
// global tier) four arms run mem-aware-EASY through the chunked sweep:
//
//   local-first             strict locality: the ~50%-rejection baseline
//   shared-neighbors        neighbor draws at the three-tier β (0.375)
//   shared-neighbors/flat-β neighbor bytes priced at β_global — proves the
//                           third coefficient is load-bearing, not cosmetic
//   shared-neighbors/migration  the same machine with live tier migration
//                           on (audited retier after every move)
//
// The suite pins the headline metrics per arm, asserts the rejection
// recovery (shared-neighbors completes most of what strict locality sheds),
// the three-tier β divergence, and a nonzero migration rate on the
// migration arm — with the full cluster audit green through every move.
//
// As a side effect it writes shared_neighbors.csv next to the binary (one
// row per arm); CI uploads it as a workflow artifact.
//
// To regenerate after an intentional behaviour change:
//   DMSCHED_REGEN_GOLDEN=1 ./build/tests/golden_shared_neighbors_test
// and paste the printed block over kGolden below (and say why in the PR).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/csv.hpp"
#include "core/sweep.hpp"
#include "topology/placement_policy.hpp"

namespace dmsched {
namespace {

enum class Arm : std::uint8_t {
  kLocalFirst,
  kSharedNeighbors,
  kFlatBeta,
  kMigration,
};

const char* arm_name(Arm a) {
  switch (a) {
    case Arm::kLocalFirst: return "local-first";
    case Arm::kSharedNeighbors: return "shared-neighbors";
    case Arm::kFlatBeta: return "shared-neighbors/flat-beta";
    case Arm::kMigration: return "shared-neighbors/migration";
  }
  return "?";
}

const char* arm_token(Arm a) {
  switch (a) {
    case Arm::kLocalFirst: return "kLocalFirst";
    case Arm::kSharedNeighbors: return "kSharedNeighbors";
    case Arm::kFlatBeta: return "kFlatBeta";
    case Arm::kMigration: return "kMigration";
  }
  return "?";
}

/// Headline metrics pinned per arm (mem-aware-EASY on shared-neighbors
/// defaults). Doubles printed with %.17g round-trip exactly.
struct GoldenRecord {
  Arm arm;
  std::int64_t makespan_usec;
  std::size_t completed;
  std::size_t rejected;
  double mean_wait_hours;
  double mean_dilation;
  double remote_access_fraction;
  double neighbor_access_fraction;
  double global_access_fraction;
  std::size_t demotions;
  std::size_t promotions;
};

// --- The golden table -------------------------------------------------------
// Scenario: shared-neighbors (48 nodes = 6 racks × 8, 64 GiB local, 128 GiB
// pool/rack, 96 GiB global; capacity workload referenced to 128 GiB nodes,
// 500 jobs, seed 23, load 1.0), scheduler mem-easy.
constexpr GoldenRecord kGolden[] = {
    {Arm::kLocalFirst, 303326421706, 452, 48, 2.9940090334421066, 1.0662726944260477, 0.28694830672058402, 0, 0, 0, 0},
    {Arm::kSharedNeighbors, 366000594190, 487, 13, 3.9505393733139393, 1.0888595459342885, 0.35416911184885574, 0.075085641617802915, 0.022158433021153789, 0, 0},
    {Arm::kFlatBeta, 367233814852, 487, 13, 4.4965662513529532, 1.0933087317628405, 0.35416911184885574, 0.088500349316628951, 0.019964687321854174, 0, 0},
    {Arm::kMigration, 366335823056, 487, 13, 3.8788453468297943, 1.0880052735049839, 0.35416911184885574, 0.078689740234769448, 0.021945830457745317, 82, 6},
};

ExperimentConfig arm_config(const Scenario& scenario, Arm arm) {
  ExperimentConfig c =
      scenario_experiment(scenario, SchedulerKind::kMemAwareEasy);
  c.label = std::string("shared-neighbors/") + arm_name(arm);
  c.engine.audit_cluster = true;
  switch (arm) {
    case Arm::kLocalFirst:
      c.engine.placement = make_placement(PlacementStrategy::kLocalFirst);
      break;
    case Arm::kSharedNeighbors:
      c.engine.placement = make_placement(PlacementStrategy::kSharedNeighbors);
      break;
    case Arm::kFlatBeta:
      c.engine.placement = make_placement(PlacementStrategy::kSharedNeighbors);
      // Collapse the distance grade: neighbor bytes priced like global
      // bytes. Everything else identical to the shared-neighbors arm.
      c.engine.slowdown.beta_neighbor = c.engine.slowdown.beta_global;
      break;
    case Arm::kMigration:
      c.engine.placement = make_placement(PlacementStrategy::kSharedNeighbors);
      c.engine.migration.check_interval = minutes(30);
      c.engine.migration.demote_threshold = 0.5;
      c.engine.migration.promote_headroom = 0.2;
      c.engine.migration.bandwidth_gibps = 4.0;
      break;
  }
  return c;
}

void print_regen_table(const std::vector<RunMetrics>& results) {
  std::printf("constexpr GoldenRecord kGolden[] = {\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunMetrics& m = results[i];
    std::printf(
        "    {Arm::%s, %lld, %zu, %zu, %.17g, %.17g, %.17g, %.17g, %.17g, "
        "%zu, %zu},\n",
        arm_token(kGolden[i].arm), static_cast<long long>(m.makespan.usec()),
        m.completed, m.rejected, m.mean_wait_hours, m.mean_dilation,
        m.remote_access_fraction, m.neighbor_access_fraction,
        m.global_access_fraction, m.demotions, m.promotions);
  }
  std::printf("};\n");
}

class SharedNeighborsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new Scenario(make_scenario("shared-neighbors"));
    configs_ = new std::vector<ExperimentConfig>();
    for (const GoldenRecord& rec : kGolden) {
      configs_->push_back(arm_config(*scenario_, rec.arm));
    }
    serial_ = new std::vector<RunMetrics>(
        run_sweep_on_trace(*configs_, scenario_->trace, /*threads=*/1));
  }
  static void TearDownTestSuite() {
    delete serial_;
    delete configs_;
    delete scenario_;
    serial_ = nullptr;
    configs_ = nullptr;
    scenario_ = nullptr;
  }

  static const RunMetrics& result_for(Arm a) {
    for (std::size_t i = 0; i < std::size(kGolden); ++i) {
      if (kGolden[i].arm == a) return (*serial_)[i];
    }
    ADD_FAILURE() << "arm not in sweep";
    return serial_->front();
  }

  static Scenario* scenario_;
  static std::vector<ExperimentConfig>* configs_;
  static std::vector<RunMetrics>* serial_;
};

Scenario* SharedNeighborsTest::scenario_ = nullptr;
std::vector<ExperimentConfig>* SharedNeighborsTest::configs_ = nullptr;
std::vector<RunMetrics>* SharedNeighborsTest::serial_ = nullptr;

TEST_F(SharedNeighborsTest, MatchesPinnedValues) {
  if (std::getenv("DMSCHED_REGEN_GOLDEN") != nullptr) {
    print_regen_table(*serial_);
    GTEST_SKIP() << "regen mode: table printed, assertions skipped";
  }
  ASSERT_EQ(serial_->size(), std::size(kGolden));
  for (std::size_t i = 0; i < serial_->size(); ++i) {
    const RunMetrics& m = (*serial_)[i];
    const GoldenRecord& g = kGolden[i];
    SCOPED_TRACE(arm_name(g.arm));
    EXPECT_EQ(m.makespan.usec(), g.makespan_usec);
    EXPECT_EQ(m.completed, g.completed);
    EXPECT_EQ(m.rejected, g.rejected);
    EXPECT_DOUBLE_EQ(m.mean_wait_hours, g.mean_wait_hours);
    EXPECT_DOUBLE_EQ(m.mean_dilation, g.mean_dilation);
    EXPECT_DOUBLE_EQ(m.remote_access_fraction, g.remote_access_fraction);
    EXPECT_DOUBLE_EQ(m.neighbor_access_fraction, g.neighbor_access_fraction);
    EXPECT_DOUBLE_EQ(m.global_access_fraction, g.global_access_fraction);
    EXPECT_EQ(m.demotions, g.demotions);
    EXPECT_EQ(m.promotions, g.promotions);
  }
}

TEST_F(SharedNeighborsTest, NeighborDrawsRecoverTheRejections) {
  // The headline claim: strict locality sheds a large slice of this
  // workload (the rack-local pathology), and letting racks borrow from a
  // neighbor pool — one hop further, β between rack and global — recovers
  // most of it without a fatter global tier.
  const RunMetrics& local = result_for(Arm::kLocalFirst);
  const RunMetrics& shared = result_for(Arm::kSharedNeighbors);
  // The baseline really is pathological (≈10% of the workload shed)...
  EXPECT_GT(local.rejected * 10, local.completed);
  // ...strict locality never touches a foreign rack pool...
  EXPECT_EQ(local.neighbor_access_fraction, 0.0);
  // ...and the neighbor tier recovers most of the shed jobs.
  EXPECT_GT(shared.neighbor_access_fraction, 0.0);
  EXPECT_LT(shared.rejected * 2, local.rejected);
  EXPECT_GT(shared.completed, local.completed);
}

TEST_F(SharedNeighborsTest, ThirdBetaCoefficientIsLoadBearing) {
  // Pricing neighbor bytes at β_global (flat two-tier pricing) must change
  // the run: dilation-aware admission makes different choices, so the two
  // arms genuinely diverge. The neighbor grade is a modelling decision
  // with consequences, not a relabelled global draw.
  const RunMetrics& graded = result_for(Arm::kSharedNeighbors);
  const RunMetrics& flat = result_for(Arm::kFlatBeta);
  EXPECT_NE(graded.makespan.usec(), flat.makespan.usec());
  EXPECT_NE(graded.mean_dilation, flat.mean_dilation);
  // Flat pricing dilates neighbor-heavy jobs more on average.
  EXPECT_GT(flat.mean_dilation, graded.mean_dilation);
}

TEST_F(SharedNeighborsTest, MigrationArmActuallyMigrates) {
  // The migration arm ran with audit_cluster on, so reaching here at all
  // means every demote/promote retier kept the ledgers consistent. Pin
  // that the knobs produce real traffic, in both directions.
  const RunMetrics& migrated = result_for(Arm::kMigration);
  EXPECT_GT(migrated.demotions, 0u);
  EXPECT_GT(migrated.promotions, 0u);
  EXPECT_GT(migrated.migrations_per_hour, 0.0);
  // The stationary arms never move a byte.
  EXPECT_EQ(result_for(Arm::kSharedNeighbors).demotions, 0u);
  EXPECT_EQ(result_for(Arm::kSharedNeighbors).promotions, 0u);
}

TEST_F(SharedNeighborsTest, SweepIsThreadCountInvariant) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const auto parallel = run_sweep_on_trace(*configs_, scenario_->trace, hw);
  ASSERT_EQ(parallel.size(), serial_->size());
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    SCOPED_TRACE(arm_name(kGolden[i].arm));
    EXPECT_EQ((*serial_)[i].makespan.usec(), parallel[i].makespan.usec());
    EXPECT_EQ((*serial_)[i].mean_wait_hours, parallel[i].mean_wait_hours);
    EXPECT_EQ((*serial_)[i].neighbor_access_fraction,
              parallel[i].neighbor_access_fraction);
    EXPECT_EQ((*serial_)[i].demotions, parallel[i].demotions);
    EXPECT_EQ((*serial_)[i].promotions, parallel[i].promotions);
  }
}

TEST_F(SharedNeighborsTest, WritesComparisonCsv) {
  // The CI artifact: one row per arm on shared-neighbors.
  CsvWriter csv("shared_neighbors.csv");
  ASSERT_TRUE(csv.ok());
  csv.header({"scenario", "scheduler", "arm", "makespan_h", "mean_wait_h",
              "mean_bsld", "mean_dilation", "remote_access",
              "neighbor_access", "global_access", "completed", "rejected",
              "demotions", "promotions", "migrations_per_hour"});
  for (std::size_t i = 0; i < serial_->size(); ++i) {
    const RunMetrics& m = (*serial_)[i];
    csv.add(scenario_->info.name)
        .add("mem-easy")
        .add(arm_name(kGolden[i].arm))
        .add(m.makespan.hours())
        .add(m.mean_wait_hours)
        .add(m.mean_bsld)
        .add(m.mean_dilation)
        .add(m.remote_access_fraction)
        .add(m.neighbor_access_fraction)
        .add(m.global_access_fraction)
        .add(static_cast<std::size_t>(m.completed))
        .add(static_cast<std::size_t>(m.rejected))
        .add(static_cast<std::size_t>(m.demotions))
        .add(static_cast<std::size_t>(m.promotions))
        .add(m.migrations_per_hour);
    csv.end_row();
  }
}

}  // namespace
}  // namespace dmsched
