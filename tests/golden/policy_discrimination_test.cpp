// Fig. 6 policy discrimination — the paper's core claim, enforced in CI.
//
// The paper's headline result is that memory-aware policies separate from
// EASY exactly when local memory is scarce and the disaggregated pool is
// under pressure. The scenario library's "memory-stressed" scenario is built
// for that regime; this suite runs every scheduler on it through the chunked
// sweep and asserts:
//
//  1. EASY and mem-aware-EASY produce *different* makespans (the golden
//     scenario alone cannot show this — its policies tie);
//  2. the discrimination points the right way: every memory-aware policy
//     (per the Scheduler::memory_aware() hook) waits less than the
//     memory-unaware EASY baseline, and FCFS is worst overall;
//  3. chunked run_sweep output is byte-identical between threads=1 and
//     hardware concurrency, for several chunk sizes.
//
// As a side effect the suite writes fig6_policy_comparison.csv next to the
// binary (one row per scheduler); CI uploads it as a workflow artifact so
// every push carries the current policy-comparison numbers.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/csv.hpp"
#include "core/sweep.hpp"

namespace dmsched {
namespace {

class PolicyDiscriminationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new Scenario(make_scenario("memory-stressed"));
    configs_ = new std::vector<ExperimentConfig>();
    for (const SchedulerKind kind : all_scheduler_kinds()) {
      ExperimentConfig c = scenario_experiment(*scenario_, kind);
      c.engine.audit_cluster = true;
      configs_->push_back(std::move(c));
    }
    serial_ = new std::vector<RunMetrics>(
        run_sweep_on_trace(*configs_, scenario_->trace, /*threads=*/1));
  }
  static void TearDownTestSuite() {
    delete serial_;
    delete configs_;
    delete scenario_;
    serial_ = nullptr;
    configs_ = nullptr;
    scenario_ = nullptr;
  }

  static const RunMetrics& result_for(SchedulerKind kind) {
    const auto kinds = all_scheduler_kinds();
    for (std::size_t i = 0; i < kinds.size(); ++i) {
      if (kinds[i] == kind) return (*serial_)[i];
    }
    ADD_FAILURE() << "scheduler not in sweep";
    return serial_->front();
  }

  static Scenario* scenario_;
  static std::vector<ExperimentConfig>* configs_;
  static std::vector<RunMetrics>* serial_;
};

Scenario* PolicyDiscriminationTest::scenario_ = nullptr;
std::vector<ExperimentConfig>* PolicyDiscriminationTest::configs_ = nullptr;
std::vector<RunMetrics>* PolicyDiscriminationTest::serial_ = nullptr;

TEST_F(PolicyDiscriminationTest, EasyAndMemAwareEasyDiverge) {
  const RunMetrics& easy = result_for(SchedulerKind::kEasy);
  const RunMetrics& mem = result_for(SchedulerKind::kMemAwareEasy);
  // The acceptance claim: under memory pressure the 2-D reservation makes
  // different decisions than the node-only shadow, visibly in the makespan.
  EXPECT_NE(easy.makespan.usec(), mem.makespan.usec());
  EXPECT_NE(easy.mean_wait_hours, mem.mean_wait_hours);
}

TEST_F(PolicyDiscriminationTest, MemoryAwarePoliciesWaitLessThanEasy) {
  const RunMetrics& easy = result_for(SchedulerKind::kEasy);
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    // Group policies through the scenario-metadata hook rather than a
    // hard-coded list, so new memory-aware policies join the claim.
    if (!make_scheduler(kind)->memory_aware()) continue;
    const RunMetrics& m = result_for(kind);
    EXPECT_LT(m.mean_wait_hours, easy.mean_wait_hours) << to_string(kind);
    EXPECT_LT(m.makespan.usec(), easy.makespan.usec()) << to_string(kind);
  }
}

TEST_F(PolicyDiscriminationTest, FcfsIsWorst) {
  const RunMetrics& fcfs = result_for(SchedulerKind::kFcfs);
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    if (kind == SchedulerKind::kFcfs) continue;
    EXPECT_GT(fcfs.mean_wait_hours, result_for(kind).mean_wait_hours)
        << to_string(kind);
  }
}

TEST_F(PolicyDiscriminationTest, ScenarioActuallyStressesMemory) {
  // Guard against parameter drift neutering the scenario: a solid share of
  // jobs must exceed local memory, and the pools must be used.
  std::size_t above_local = 0;
  for (const Job& j : scenario_->trace.jobs()) {
    if (j.mem_per_node > scenario_->cluster.local_mem_per_node) ++above_local;
  }
  EXPECT_GT(above_local, scenario_->trace.size() / 4);
  for (const RunMetrics& m : *serial_) {
    EXPECT_GT(m.frac_jobs_far, 0.25) << m.label;
  }
}

TEST_F(PolicyDiscriminationTest, ChunkedSweepIsThreadCountInvariant) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  for (const std::size_t chunk :
       {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    const auto parallel = run_sweep_on_trace(*configs_, scenario_->trace,
                                             SweepOptions{hw, chunk});
    ASSERT_EQ(parallel.size(), serial_->size());
    for (std::size_t i = 0; i < parallel.size(); ++i) {
      SCOPED_TRACE(::testing::Message()
                   << (*serial_)[i].label << " chunk " << chunk);
      const RunMetrics& a = (*serial_)[i];
      const RunMetrics& b = parallel[i];
      ASSERT_EQ(a.jobs.size(), b.jobs.size());
      for (std::size_t j = 0; j < a.jobs.size(); ++j) {
        ASSERT_EQ(a.jobs[j].start.usec(), b.jobs[j].start.usec())
            << "job " << j;
        ASSERT_EQ(a.jobs[j].end.usec(), b.jobs[j].end.usec()) << "job " << j;
        ASSERT_EQ(a.jobs[j].dilation, b.jobs[j].dilation) << "job " << j;
      }
      EXPECT_EQ(a.makespan.usec(), b.makespan.usec());
      EXPECT_EQ(a.mean_wait_hours, b.mean_wait_hours);
      EXPECT_EQ(a.mean_bsld, b.mean_bsld);
      EXPECT_EQ(a.node_utilization, b.node_utilization);
    }
  }
}

TEST_F(PolicyDiscriminationTest, WritesComparisonCsv) {
  // The CI artifact: one row per scheduler on the memory-stressed scenario.
  CsvWriter csv("fig6_policy_comparison.csv");
  ASSERT_TRUE(csv.ok());
  csv.header({"scenario", "scheduler", "memory_aware", "makespan_h",
              "mean_wait_h", "p95_wait_h", "mean_bsld", "p95_bsld",
              "utilization", "frac_far", "mean_dilation"});
  const auto kinds = all_scheduler_kinds();
  for (std::size_t i = 0; i < serial_->size(); ++i) {
    const RunMetrics& m = (*serial_)[i];
    csv.add(scenario_->info.name)
        .add(to_string(kinds[i]))
        .add(std::int64_t{make_scheduler(kinds[i])->memory_aware() ? 1 : 0})
        .add(m.makespan.hours())
        .add(m.mean_wait_hours)
        .add(m.p95_wait_hours)
        .add(m.mean_bsld)
        .add(m.p95_bsld)
        .add(m.node_utilization)
        .add(m.frac_jobs_far)
        .add(m.mean_dilation);
    csv.end_row();
  }
}

}  // namespace
}  // namespace dmsched
