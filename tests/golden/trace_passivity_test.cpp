// Observability passivity arm of the golden suite.
//
// The obs/ contract (src/obs/trace_sink.hpp) is that an attached sink is
// invisible to the simulation: it injects no events and perturbs no
// decision. This suite turns that into an enforced invariant:
//
//  1. every non-infrastructure scenario in the library, run with a
//     RecordingSink at full detail plus a CounterRegistry, produces
//     RunMetrics byte-identical to the no-sink run;
//  2. the same holds under sweep parallelism across thread counts
//     (one sink per config — sinks are single-run, not shared);
//  3. the recorded stream itself is consistent with the metrics it rode
//     along with (every start has a finish, counts match fates);
//  4. a sink that throws aborts deterministically instead of unwinding a
//     half-mutated simulation.
#include <gtest/gtest.h>

#include <deque>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/sweep.hpp"
#include "obs/counters.hpp"
#include "obs/recording_sink.hpp"

namespace dmsched {
namespace {

/// Strictest comparison: every per-job field and every aggregate must be
/// bit-identical (same idiom as tests/golden/golden_metrics_test.cpp).
void expect_byte_identical(const RunMetrics& a, const RunMetrics& b) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "job " << i);
    EXPECT_EQ(a.jobs[i].fate, b.jobs[i].fate);
    EXPECT_EQ(a.jobs[i].submit.usec(), b.jobs[i].submit.usec());
    EXPECT_EQ(a.jobs[i].start.usec(), b.jobs[i].start.usec());
    EXPECT_EQ(a.jobs[i].end.usec(), b.jobs[i].end.usec());
    EXPECT_EQ(a.jobs[i].dilation, b.jobs[i].dilation);
    EXPECT_EQ(a.jobs[i].far_rack, b.jobs[i].far_rack);
    EXPECT_EQ(a.jobs[i].far_global, b.jobs[i].far_global);
  }
  EXPECT_EQ(a.makespan.usec(), b.makespan.usec());
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.killed, b.killed);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.node_utilization, b.node_utilization);
  EXPECT_EQ(a.rack_pool_utilization, b.rack_pool_utilization);
  EXPECT_EQ(a.rack_pool_peak, b.rack_pool_peak);
  EXPECT_EQ(a.global_pool_utilization, b.global_pool_utilization);
  EXPECT_EQ(a.global_pool_peak, b.global_pool_peak);
  EXPECT_EQ(a.mean_wait_hours, b.mean_wait_hours);
  EXPECT_EQ(a.p95_wait_hours, b.p95_wait_hours);
  EXPECT_EQ(a.max_wait_hours, b.max_wait_hours);
  EXPECT_EQ(a.mean_bsld, b.mean_bsld);
  EXPECT_EQ(a.p95_bsld, b.p95_bsld);
  EXPECT_EQ(a.mean_dilation, b.mean_dilation);
  EXPECT_EQ(a.frac_jobs_far, b.frac_jobs_far);
  EXPECT_EQ(a.far_gib_hours, b.far_gib_hours);
  EXPECT_EQ(a.jobs_per_hour, b.jobs_per_hour);
}

// Every pinned (non-infrastructure) scenario: a recording sink at full
// detail plus a counter registry must not move a single bit of the metrics.
// The recorded stream is also checked against the metrics it shadowed.
TEST(TracePassivityTest, EveryPinnedScenarioIsUnperturbedBySink) {
  for (const std::string& name : scenario_names()) {
    if (scenario_info(name).infrastructure) continue;
    SCOPED_TRACE(name);
    const Scenario scenario = make_scenario(name);
    const ExperimentConfig base =
        scenario_experiment(scenario, SchedulerKind::kMemAwareEasy);
    const RunMetrics plain = run_experiment(base, scenario.trace);

    obs::RecordingSink sink;
    obs::CounterRegistry registry;
    ExperimentConfig traced = base;
    traced.engine.sink = &sink;
    traced.engine.trace_detail = obs::TraceDetail::kFull;
    traced.engine.counters = &registry;
    const RunMetrics observed = run_experiment(traced, scenario.trace);

    expect_byte_identical(plain, observed);

    // The stream the sink saw must be consistent with those metrics.
    EXPECT_TRUE(sink.begun);
    EXPECT_TRUE(sink.ended);
    EXPECT_EQ(sink.makespan.usec(), observed.makespan.usec());
    EXPECT_EQ(sink.started.size(), sink.finished.size());
    EXPECT_EQ(sink.finished.size(), observed.completed + observed.killed);
    EXPECT_EQ(sink.rejected.size(), observed.rejected);
    EXPECT_EQ(sink.queued.size(), scenario.trace.size() - observed.rejected);
    EXPECT_FALSE(sink.passes.empty());
    // Counters are deterministic end-of-run totals.
    EXPECT_EQ(registry.find_counter("jobs_completed")->value,
              observed.completed);
    EXPECT_EQ(registry.find_counter("jobs_rejected")->value,
              observed.rejected);
    EXPECT_EQ(registry.find_counter("sched_passes")->value,
              sink.passes.size());
  }
}

// Sweep parallelism must not interact with attached sinks: one recording
// sink per config (sinks are single-run state), every thread count
// byte-identical to the no-sink serial sweep.
TEST(TracePassivityTest, SinksAreUnperturbedAcrossSweepThreadCounts) {
  const Scenario scenario = make_scenario("golden-baseline");
  const SchedulerKind kinds[] = {
      SchedulerKind::kFcfs, SchedulerKind::kEasy,
      SchedulerKind::kConservative, SchedulerKind::kMemAwareEasy,
      SchedulerKind::kAdaptive};

  std::vector<ExperimentConfig> plain_configs;
  for (const SchedulerKind kind : kinds)
    plain_configs.push_back(scenario_experiment(scenario, kind));
  const std::vector<RunMetrics> plain =
      run_sweep_on_trace(plain_configs, scenario.trace, /*threads=*/1);

  for (const unsigned threads : {1u, 3u, 0u}) {  // 0 = hardware concurrency
    SCOPED_TRACE(::testing::Message() << "threads " << threads);
    std::deque<obs::RecordingSink> sinks;  // stable addresses
    std::vector<ExperimentConfig> traced_configs;
    for (const SchedulerKind kind : kinds) {
      ExperimentConfig c = scenario_experiment(scenario, kind);
      c.engine.sink = &sinks.emplace_back();
      c.engine.trace_detail = obs::TraceDetail::kFull;
      traced_configs.push_back(c);
    }
    const std::vector<RunMetrics> traced =
        run_sweep_on_trace(traced_configs, scenario.trace, threads);
    ASSERT_EQ(traced.size(), plain.size());
    for (std::size_t i = 0; i < traced.size(); ++i) {
      SCOPED_TRACE(::testing::Message() << "config " << i);
      expect_byte_identical(plain[i], traced[i]);
      EXPECT_TRUE(sinks[i].ended);
      EXPECT_EQ(sinks[i].finished.size(),
                traced[i].completed + traced[i].killed);
    }
  }
}

// Detail levels below kFull must be equally invisible.
TEST(TracePassivityTest, EveryDetailLevelIsPassive) {
  const Scenario scenario = make_scenario("golden-baseline");
  const ExperimentConfig base =
      scenario_experiment(scenario, SchedulerKind::kEasy);
  const RunMetrics plain = run_experiment(base, scenario.trace);
  for (const obs::TraceDetail detail :
       {obs::TraceDetail::kLifecycle, obs::TraceDetail::kSched,
        obs::TraceDetail::kFull}) {
    SCOPED_TRACE(to_string(detail));
    obs::RecordingSink sink;
    ExperimentConfig traced = base;
    traced.engine.sink = &sink;
    traced.engine.trace_detail = detail;
    expect_byte_identical(plain, run_experiment(traced, scenario.trace));
    EXPECT_EQ(sink.passes.empty(), detail == obs::TraceDetail::kLifecycle);
    EXPECT_EQ(sink.gauges.empty(), detail != obs::TraceDetail::kFull);
  }
}

// A throwing sink is a programming error; the engine must abort
// deterministically rather than unwind a half-mutated simulation.
class ThrowingSink final : public obs::TraceSink {
 public:
  void on_pass(const obs::PassSpan&) override {
    throw std::runtime_error("observer bug");
  }
};

TEST(TracePassivityDeathTest, ThrowingSinkAbortsDeterministically) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Scenario scenario = make_scenario("golden-baseline", {.jobs = 40});
  ThrowingSink sink;
  ExperimentConfig config =
      scenario_experiment(scenario, SchedulerKind::kEasy);
  config.engine.sink = &sink;
  config.engine.trace_detail = obs::TraceDetail::kSched;
  EXPECT_DEATH((void)run_experiment(config, scenario.trace),
               "trace sink threw mid-run");
}

}  // namespace
}  // namespace dmsched
