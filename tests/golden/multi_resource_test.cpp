// Multi-resource policy divergence — the resource-vector extension's pinned
// claim (referenced from the gpu-contended registry entry).
//
// On machines that provision only the paper's two axes (nodes, memory) the
// resource-aware policy is byte-identical to mem-aware EASY — that contract
// lives in tests/sched/resource_aware_test.cpp and the untouched golden
// tables. This suite pins the *other* half: on gpu-contended, where a
// rack-pooled device axis binds, the GPU-blind mem-easy and the full
// resource-easy produce genuinely different schedules, and the difference
// points the right way — planning with device visibility starts GPU jobs
// without the blind policy's revalidation bounces, so resource-easy waits
// no more than mem-easy.
//
// Like the other comparison goldens the table is computed locally (nothing
// here regenerates the pinned golden CSVs), and the suite writes
// multi_resource.csv next to the binary; CI uploads it as a workflow
// artifact so every push carries the current two-policy comparison.
#include <gtest/gtest.h>

#include <vector>

#include "common/csv.hpp"
#include "core/sweep.hpp"

namespace dmsched {
namespace {

class MultiResourceTest : public ::testing::Test {
 protected:
  static constexpr SchedulerKind kKinds[] = {SchedulerKind::kMemAwareEasy,
                                             SchedulerKind::kResourceAwareEasy};

  static void SetUpTestSuite() {
    scenario_ = new Scenario(make_scenario("gpu-contended"));
    std::vector<ExperimentConfig> configs;
    for (const SchedulerKind kind : kKinds) {
      ExperimentConfig c = scenario_experiment(*scenario_, kind);
      c.engine.audit_cluster = true;
      configs.push_back(std::move(c));
    }
    results_ = new std::vector<RunMetrics>(
        run_sweep_on_trace(configs, scenario_->trace, /*threads=*/1));
  }
  static void TearDownTestSuite() {
    delete results_;
    delete scenario_;
    results_ = nullptr;
    scenario_ = nullptr;
  }

  static const RunMetrics& mem() { return (*results_)[0]; }
  static const RunMetrics& full() { return (*results_)[1]; }

  static Scenario* scenario_;
  static std::vector<RunMetrics>* results_;
};

Scenario* MultiResourceTest::scenario_ = nullptr;
std::vector<RunMetrics>* MultiResourceTest::results_ = nullptr;

TEST_F(MultiResourceTest, ScenarioActuallyContendsForDevices) {
  // Guard against parameter drift neutering the scenario: the machine must
  // provision a device axis, a solid share of jobs must demand it, and both
  // runs must drive the device pool hard.
  ASSERT_TRUE(scenario_->cluster.has_gpus());
  std::size_t gpu_jobs = 0;
  for (const Job& j : scenario_->trace.jobs()) {
    if (j.gpus_per_node > 0) ++gpu_jobs;
  }
  EXPECT_GT(gpu_jobs, scenario_->trace.size() / 3);
  for (const RunMetrics& m : *results_) {
    EXPECT_GT(m.gpu_peak, 0.9) << m.label;
    EXPECT_GT(m.gpu_utilization, 0.0) << m.label;
  }
}

TEST_F(MultiResourceTest, BlindAndFullPoliciesDiverge) {
  // The acceptance claim: once a third axis binds, the paper's 2-D policy
  // and the generalized predicate make different decisions, visibly in the
  // aggregate metrics — not just in some internal event order.
  EXPECT_NE(mem().makespan.usec(), full().makespan.usec());
  EXPECT_NE(mem().mean_wait_hours, full().mean_wait_hours);
  std::size_t differing_starts = 0;
  ASSERT_EQ(mem().jobs.size(), full().jobs.size());
  for (std::size_t i = 0; i < mem().jobs.size(); ++i) {
    if (mem().jobs[i].start.usec() != full().jobs[i].start.usec()) {
      ++differing_starts;
    }
  }
  EXPECT_GT(differing_starts, 0u);
}

TEST_F(MultiResourceTest, DeviceVisibilityDoesNotHurtWaits) {
  // Direction of the divergence (the registry's expected_ordering): the
  // device-aware planner never bounces a start off the GPU ledger, so it
  // waits no more than the blind policy that plans first and revalidates
  // after.
  EXPECT_LE(full().mean_wait_hours, mem().mean_wait_hours);
}

TEST_F(MultiResourceTest, BothRunsAreValid) {
  // Divergence must not come from dropped work: mem-easy revalidates its
  // blind starts, so both policies complete the same workload (rejections
  // are submission-time memory footprints both agree on — see
  // tests/sched/resource_aware_test.cpp).
  EXPECT_EQ(mem().rejected, full().rejected);
  EXPECT_EQ(mem().completed + mem().killed + mem().rejected,
            full().completed + full().killed + full().rejected);
}

TEST_F(MultiResourceTest, WritesComparisonCsv) {
  // The CI artifact: one row per policy on the gpu-contended scenario.
  CsvWriter csv("multi_resource.csv");
  ASSERT_TRUE(csv.ok());
  csv.header({"scenario", "scheduler", "makespan_h", "mean_wait_h",
              "p95_wait_h", "mean_bsld", "utilization", "gpu_utilization",
              "gpu_peak", "frac_far"});
  for (std::size_t i = 0; i < results_->size(); ++i) {
    const RunMetrics& m = (*results_)[i];
    csv.add(scenario_->info.name)
        .add(to_string(kKinds[i]))
        .add(m.makespan.hours())
        .add(m.mean_wait_hours)
        .add(m.p95_wait_hours)
        .add(m.mean_bsld)
        .add(m.node_utilization)
        .add(m.gpu_utilization)
        .add(m.gpu_peak)
        .add(m.frac_jobs_far);
    csv.end_row();
  }
}

}  // namespace
}  // namespace dmsched
