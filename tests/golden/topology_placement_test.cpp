// Topology placement discrimination — the rack-scale subsystem's pinned
// claim, enforced in CI.
//
// On the tiered-contended scenario (scarce local memory, a contended rack
// tier AND a global tier) the named placement strategies must genuinely
// diverge: local-first trades queueing for locality — a lower remote-access
// fraction, no global-tier bytes at all, and a *different* makespan — while
// global-fallback starts early and dilates. The suite runs mem-aware-EASY
// under every strategy through the chunked sweep, pins the headline metrics
// per strategy, and asserts the divergence directions.
//
// As a side effect it writes topology_placement.csv next to the binary
// (one row per strategy); CI uploads it as a workflow artifact so every
// push carries the current placement-comparison numbers.
//
// To regenerate after an intentional behaviour change:
//   DMSCHED_REGEN_GOLDEN=1 ./build/tests/golden_topology_placement_test
// and paste the printed block over kGolden below (and say why in the PR).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/csv.hpp"
#include "core/sweep.hpp"
#include "topology/placement_policy.hpp"

namespace dmsched {
namespace {

/// Headline metrics pinned per placement strategy (mem-aware-EASY on
/// tiered-contended defaults). Doubles printed with %.17g round-trip
/// exactly.
struct GoldenRecord {
  PlacementStrategy strategy;
  std::int64_t makespan_usec;
  std::size_t completed;
  std::size_t rejected;
  double mean_wait_hours;
  double mean_dilation;
  double remote_access_fraction;
  double global_access_fraction;
};

// --- The golden table -------------------------------------------------------
// Scenario: tiered-contended (64 nodes = 8 racks × 8, 48 GiB local, 96 GiB
// pool/rack, 192 GiB global; capacity workload referenced to 96 GiB nodes,
// 500 jobs, seed 29, load 1.05), scheduler mem-easy.
constexpr GoldenRecord kGolden[] = {
    {PlacementStrategy::kLocalFirst, 215303381023, 464, 36, 1.6493928029328304, 1.0657875168804793, 0.29379223830999845, 0},
    {PlacementStrategy::kBalanced, 212478212330, 483, 17, 2.113234901089831, 1.0802705736384206, 0.33476755356746435, 0.073832384317228605},
    {PlacementStrategy::kGlobalFallback, 214098591251, 483, 17, 2.2863331955383015, 1.0787696865957315, 0.33476755356746435, 0.070480043585248286},
};

ExperimentConfig strategy_config(const Scenario& scenario,
                                 PlacementStrategy strategy) {
  ExperimentConfig c = scenario_experiment(scenario,
                                           SchedulerKind::kMemAwareEasy);
  c.label = std::string("tiered-contended/") + to_string(strategy);
  c.engine.placement = make_placement(strategy);
  c.engine.audit_cluster = true;
  return c;
}

const char* strategy_token(PlacementStrategy s) {
  switch (s) {
    case PlacementStrategy::kLocalFirst: return "kLocalFirst";
    case PlacementStrategy::kBalanced: return "kBalanced";
    case PlacementStrategy::kGlobalFallback: return "kGlobalFallback";
    case PlacementStrategy::kSharedNeighbors: return "kSharedNeighbors";
  }
  return "?";
}

void print_regen_table(const std::vector<RunMetrics>& results) {
  std::printf("constexpr GoldenRecord kGolden[] = {\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunMetrics& m = results[i];
    std::printf(
        "    {PlacementStrategy::%s, %lld, %zu, %zu, %.17g, %.17g, %.17g, "
        "%.17g},\n",
        strategy_token(kGolden[i].strategy),
        static_cast<long long>(m.makespan.usec()), m.completed, m.rejected,
        m.mean_wait_hours, m.mean_dilation, m.remote_access_fraction,
        m.global_access_fraction);
  }
  std::printf("};\n");
}

class TopologyPlacementTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new Scenario(make_scenario("tiered-contended"));
    configs_ = new std::vector<ExperimentConfig>();
    for (const GoldenRecord& rec : kGolden) {
      configs_->push_back(strategy_config(*scenario_, rec.strategy));
    }
    serial_ = new std::vector<RunMetrics>(
        run_sweep_on_trace(*configs_, scenario_->trace, /*threads=*/1));
  }
  static void TearDownTestSuite() {
    delete serial_;
    delete configs_;
    delete scenario_;
    serial_ = nullptr;
    configs_ = nullptr;
    scenario_ = nullptr;
  }

  static const RunMetrics& result_for(PlacementStrategy s) {
    for (std::size_t i = 0; i < std::size(kGolden); ++i) {
      if (kGolden[i].strategy == s) return (*serial_)[i];
    }
    ADD_FAILURE() << "strategy not in sweep";
    return serial_->front();
  }

  static Scenario* scenario_;
  static std::vector<ExperimentConfig>* configs_;
  static std::vector<RunMetrics>* serial_;
};

Scenario* TopologyPlacementTest::scenario_ = nullptr;
std::vector<ExperimentConfig>* TopologyPlacementTest::configs_ = nullptr;
std::vector<RunMetrics>* TopologyPlacementTest::serial_ = nullptr;

TEST_F(TopologyPlacementTest, MatchesPinnedValues) {
  if (std::getenv("DMSCHED_REGEN_GOLDEN") != nullptr) {
    print_regen_table(*serial_);
    GTEST_SKIP() << "regen mode: table printed, assertions skipped";
  }
  ASSERT_EQ(serial_->size(), std::size(kGolden));
  for (std::size_t i = 0; i < serial_->size(); ++i) {
    const RunMetrics& m = (*serial_)[i];
    const GoldenRecord& g = kGolden[i];
    SCOPED_TRACE(to_string(g.strategy));
    EXPECT_EQ(m.makespan.usec(), g.makespan_usec);
    EXPECT_EQ(m.completed, g.completed);
    EXPECT_EQ(m.rejected, g.rejected);
    EXPECT_DOUBLE_EQ(m.mean_wait_hours, g.mean_wait_hours);
    EXPECT_DOUBLE_EQ(m.mean_dilation, g.mean_dilation);
    EXPECT_DOUBLE_EQ(m.remote_access_fraction, g.remote_access_fraction);
    EXPECT_DOUBLE_EQ(m.global_access_fraction, g.global_access_fraction);
  }
}

TEST_F(TopologyPlacementTest, LocalFirstAndGlobalFallbackDiverge) {
  // The acceptance claim: the two strategies make visibly different
  // decisions on a tiered machine — in the makespan AND in how much of the
  // workload's memory is served remotely.
  const RunMetrics& local = result_for(PlacementStrategy::kLocalFirst);
  const RunMetrics& fallback = result_for(PlacementStrategy::kGlobalFallback);
  EXPECT_NE(local.makespan.usec(), fallback.makespan.usec());
  EXPECT_NE(local.remote_access_fraction, fallback.remote_access_fraction);
}

TEST_F(TopologyPlacementTest, DivergencePointsTheRightWay) {
  const RunMetrics& local = result_for(PlacementStrategy::kLocalFirst);
  const RunMetrics& fallback = result_for(PlacementStrategy::kGlobalFallback);
  // Strict locality never touches the multi-hop tier...
  EXPECT_EQ(local.global_access_fraction, 0.0);
  EXPECT_EQ(local.frac_jobs_global, 0.0);
  // ...while global-fallback does (that is what the global tier is for
  // under contention), so it serves more of the workload remotely and
  // dilates more on average.
  EXPECT_GT(fallback.global_access_fraction, 0.0);
  EXPECT_GT(fallback.remote_access_fraction, local.remote_access_fraction);
  EXPECT_GT(fallback.mean_dilation, local.mean_dilation);
  // Locality costs admission: jobs whose deficit no rack pool can ever fund
  // are shed under strict locality and served (dilated) under fallback.
  EXPECT_GT(local.rejected, fallback.rejected);
  EXPECT_GT(fallback.completed, local.completed);
}

TEST_F(TopologyPlacementTest, ScenarioActuallyUsesBothTiers) {
  // Guard against parameter drift neutering the scenario: under the default
  // strategy both tiers must see real traffic.
  const RunMetrics& fallback = result_for(PlacementStrategy::kGlobalFallback);
  EXPECT_GT(fallback.rack_pool_utilization, 0.0);
  EXPECT_GT(fallback.global_pool_utilization, 0.0);
  EXPECT_GT(fallback.frac_jobs_far, 0.25);
}

TEST_F(TopologyPlacementTest, SweepIsThreadCountInvariant) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const auto parallel = run_sweep_on_trace(*configs_, scenario_->trace, hw);
  ASSERT_EQ(parallel.size(), serial_->size());
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    SCOPED_TRACE(to_string(kGolden[i].strategy));
    EXPECT_EQ((*serial_)[i].makespan.usec(), parallel[i].makespan.usec());
    EXPECT_EQ((*serial_)[i].mean_wait_hours, parallel[i].mean_wait_hours);
    EXPECT_EQ((*serial_)[i].remote_access_fraction,
              parallel[i].remote_access_fraction);
  }
}

TEST_F(TopologyPlacementTest, WritesComparisonCsv) {
  // The CI artifact: one row per placement strategy on tiered-contended.
  CsvWriter csv("topology_placement.csv");
  ASSERT_TRUE(csv.ok());
  csv.header({"scenario", "scheduler", "placement", "makespan_h",
              "mean_wait_h", "mean_bsld", "mean_dilation", "remote_access",
              "global_access", "frac_jobs_far", "rack_pool_util",
              "global_pool_util", "rack_pool_busiest_peak", "completed",
              "rejected"});
  for (std::size_t i = 0; i < serial_->size(); ++i) {
    const RunMetrics& m = (*serial_)[i];
    csv.add(scenario_->info.name)
        .add("mem-easy")
        .add(to_string(kGolden[i].strategy))
        .add(m.makespan.hours())
        .add(m.mean_wait_hours)
        .add(m.mean_bsld)
        .add(m.mean_dilation)
        .add(m.remote_access_fraction)
        .add(m.global_access_fraction)
        .add(m.frac_jobs_far)
        .add(m.rack_pool_utilization)
        .add(m.global_pool_utilization)
        .add(m.rack_pool_busiest_peak)
        .add(static_cast<std::size_t>(m.completed))
        .add(static_cast<std::size_t>(m.rejected));
    csv.end_row();
  }
}

}  // namespace
}  // namespace dmsched
