// Smoke coverage for the large-replay scenario in the golden suite.
//
// large-replay is sim-throughput infrastructure: the mixed-swf day
// replicated to 100k jobs (bench/sim_throughput replays its prefixes). The
// golden suite does NOT pin metrics for it — the unscaled golden tables are
// untouched by its existence (see tests/golden/README.md) — but it does
// enforce, on a capped prefix small enough for sanitizer runs:
//  1. the registry entry exists and is documented;
//  2. a replay drains: every job reaches a terminal state, audited;
//  3. two independent builds + runs are byte-identical (the determinism
//     contract holds at replication scale, not just at 240 jobs);
//  4. the streaming ingestion path (make_scenario_stream + a bounded
//     submission look-ahead) replays the same prefix byte-identically.
#include <gtest/gtest.h>

#include <vector>

#include "core/experiment.hpp"
#include "core/sweep.hpp"

namespace dmsched {
namespace {

// Big enough that the event heap is thousands deep and replication wraps
// the base day ~84 times; small enough for ASan/UBSan/TSan jobs.
constexpr std::size_t kSmokeJobs = 2500;

Scenario smoke_scenario() {
  return make_scenario("large-replay", {.jobs = kSmokeJobs});
}

TEST(LargeReplaySmoke, RegistryEntryIsDocumented) {
  ASSERT_TRUE(scenario_exists("large-replay"));
  const ScenarioInfo& info = scenario_info("large-replay");
  EXPECT_EQ(info.name, "large-replay");
  EXPECT_FALSE(info.summary.empty());
  EXPECT_FALSE(info.paper_figure.empty());
  EXPECT_FALSE(info.expected_ordering.empty());
}

TEST(LargeReplaySmoke, CappedReplayDrainsUnderAudit) {
  const Scenario scenario = smoke_scenario();
  ASSERT_EQ(scenario.trace.size(), kSmokeJobs);
  std::vector<ExperimentConfig> configs;
  for (const SchedulerKind kind :
       {SchedulerKind::kEasy, SchedulerKind::kMemAwareEasy}) {
    ExperimentConfig c = scenario_experiment(scenario, kind);
    c.engine.audit_cluster = true;
    configs.push_back(c);
  }
  const auto results = run_sweep_on_trace(configs, scenario.trace);
  ASSERT_EQ(results.size(), configs.size());
  for (const RunMetrics& m : results) {
    SCOPED_TRACE(m.label);
    // Every submitted job must reach a terminal state.
    EXPECT_EQ(m.completed + m.killed + m.rejected, kSmokeJobs);
    EXPECT_EQ(m.jobs.size(), kSmokeJobs);
    EXPECT_GT(m.makespan.usec(), 0);
    EXPECT_GT(m.node_utilization, 0.0);
  }
}

TEST(LargeReplaySmoke, ReplayIsByteIdenticalAcrossBuilds) {
  // Two *independent* scenario constructions and runs: the trace build
  // (replication, truncation, arrival scaling) and the replay must both be
  // deterministic end to end.
  const Scenario a = smoke_scenario();
  const Scenario b = smoke_scenario();
  const RunMetrics ma = run_scenario(a, SchedulerKind::kEasy);
  const RunMetrics mb = run_scenario(b, SchedulerKind::kEasy);
  ASSERT_EQ(ma.jobs.size(), mb.jobs.size());
  for (std::size_t i = 0; i < ma.jobs.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "job " << i);
    EXPECT_EQ(ma.jobs[i].fate, mb.jobs[i].fate);
    EXPECT_EQ(ma.jobs[i].submit.usec(), mb.jobs[i].submit.usec());
    EXPECT_EQ(ma.jobs[i].start.usec(), mb.jobs[i].start.usec());
    EXPECT_EQ(ma.jobs[i].end.usec(), mb.jobs[i].end.usec());
    EXPECT_EQ(ma.jobs[i].dilation, mb.jobs[i].dilation);
    EXPECT_EQ(ma.jobs[i].far_rack, mb.jobs[i].far_rack);
    EXPECT_EQ(ma.jobs[i].far_global, mb.jobs[i].far_global);
  }
  EXPECT_EQ(ma.makespan.usec(), mb.makespan.usec());
  EXPECT_EQ(ma.completed, mb.completed);
  EXPECT_EQ(ma.rejected, mb.rejected);
  EXPECT_EQ(ma.mean_wait_hours, mb.mean_wait_hours);
  EXPECT_EQ(ma.mean_bsld, mb.mean_bsld);
  EXPECT_EQ(ma.node_utilization, mb.node_utilization);
}

TEST(LargeReplaySmoke, StreamingPathMatchesTheEagerReplay) {
  // The same capped prefix once eagerly and once via the pull-based source
  // at a tight look-ahead window: byte-identical metrics, bounded event-id
  // window (the property the million-replay bench measures at full scale).
  const Scenario eager = smoke_scenario();
  const RunMetrics me = run_scenario(eager, SchedulerKind::kEasy);

  ScenarioStream stream = make_scenario_stream("large-replay",
                                               {.jobs = kSmokeJobs});
  ExperimentConfig cfg = scenario_experiment(stream, SchedulerKind::kEasy);
  cfg.engine.submit_lookahead = 64;
  SchedulingSimulation sim(cfg.cluster, *stream.source,
                           make_scheduler(cfg.scheduler, cfg.mem_options),
                           cfg.engine);
  const RunMetrics ms = sim.run();

  ASSERT_EQ(me.jobs.size(), ms.jobs.size());
  for (std::size_t i = 0; i < me.jobs.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "job " << i);
    EXPECT_EQ(me.jobs[i].fate, ms.jobs[i].fate);
    EXPECT_EQ(me.jobs[i].submit.usec(), ms.jobs[i].submit.usec());
    EXPECT_EQ(me.jobs[i].start.usec(), ms.jobs[i].start.usec());
    EXPECT_EQ(me.jobs[i].end.usec(), ms.jobs[i].end.usec());
    EXPECT_EQ(me.jobs[i].dilation, ms.jobs[i].dilation);
  }
  EXPECT_EQ(me.makespan.usec(), ms.makespan.usec());
  EXPECT_EQ(me.mean_bsld, ms.mean_bsld);
  EXPECT_EQ(me.node_utilization, ms.node_utilization);
  // The bounded window keeps the live event-id span far below the prefix
  // length (kSmokeJobs submissions would otherwise be pushed up front).
  EXPECT_LT(sim.peak_event_id_window(), kSmokeJobs / 2);
}

}  // namespace
}  // namespace dmsched
