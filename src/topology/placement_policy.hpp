// The placement-policy vocabulary: how nodes are chosen across racks, which
// tiers may fund a deficit, and the named strategies studies sweep.
//
// This is topology-layer knowledge — a policy is a statement about rack
// distances and tier preferences, independent of the allocation mechanics
// (memory/placement.cpp executes these against a ResourceState).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/resources.hpp"

namespace dmsched {

/// How nodes are chosen across racks.
enum class NodeSelection {
  kFirstFit,    ///< racks in index order — the memory-unaware default
  kPackRacks,   ///< fullest-free racks first: fewest racks per job
  kSpreadRacks, ///< emptiest racks first: balances occupancy
  kPoolAware,   ///< deficit jobs chase pool-rich racks; local jobs avoid them
};

/// Which pools may serve a job's deficit.
enum class PoolRouting {
  kRackOnly,       ///< only the racks the job occupies (strict locality)
  kRackThenGlobal, ///< rack pools first, global pool as overflow (default)
  kGlobalOnly,     ///< everything from the global pool (topology ablation)
  /// Distance-graded: own racks' pools, then *foreign* racks' pools
  /// (neighbor draws, priced at β_neighbor), then the global tier. The only
  /// routing that produces cross-rack draws.
  kRackNeighborGlobal,
};

[[nodiscard]] const char* to_string(NodeSelection s);
[[nodiscard]] const char* to_string(PoolRouting r);

/// The placement configuration a scheduler runs with.
struct PlacementPolicy {
  NodeSelection selection = NodeSelection::kPoolAware;
  PoolRouting routing = PoolRouting::kRackThenGlobal;
  /// Which optional resource axes the allocation kernel enforces. All-on by
  /// default so direct starts (FCFS/EASY/conservative) respect GPU and
  /// burst-buffer capacity automatically; a planning-blind policy (memory-
  /// only mem-aware-EASY) narrows this for its *plans* while every actual
  /// start is still validated against the full ledger. On machines without
  /// GPUs or a burst buffer the axes are vacuous, so the default changes
  /// nothing for legacy configs.
  ResourceAxes axes{};
};

/// Named placement strategies — the topology studies' sweep axis. Each is a
/// (selection, routing) pair with a documented intent; `make_placement`
/// resolves it to the policy the allocation kernel executes.
enum class PlacementStrategy {
  /// Strict rack locality: a deficit is funded only by the pools of the
  /// racks hosting the job. Jobs wait (or are rejected on machines whose
  /// rack pools can never cover them) rather than reach the global tier —
  /// lowest dilation, highest queueing.
  kLocalFirst,
  /// Spread nodes across the emptiest racks so pool pressure balances;
  /// overflow to the global tier when rack pools run dry.
  kBalanced,
  /// Pool-aware node choice with the global tier as overflow: start as soon
  /// as any tier can fund the job — the engine's default, named. Highest
  /// remote-access fraction under contention, lowest queueing.
  kGlobalFallback,
  /// DOLMA-style distance-graded sharing: pool-aware node choice, deficits
  /// funded own-rack first, then neighbor racks' pools, then the global
  /// tier. On rack-scale machines with no (or a thin) global tier this
  /// recovers most of the jobs local-first must reject.
  kSharedNeighbors,
};

[[nodiscard]] const char* to_string(PlacementStrategy s);
/// Parse "local-first" / "balanced" / "global-fallback" /
/// "shared-neighbors"; nullopt otherwise.
[[nodiscard]] std::optional<PlacementStrategy> placement_strategy_from_string(
    const std::string& s);
/// All strategies in documentation order.
[[nodiscard]] std::vector<PlacementStrategy> all_placement_strategies();

/// The (selection, routing) pair a strategy resolves to.
[[nodiscard]] PlacementPolicy make_placement(PlacementStrategy s);

}  // namespace dmsched
