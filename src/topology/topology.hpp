// Rack-scale memory topology: the static model of *where* memory lives.
//
// A machine is a set of racks, each owning its nodes plus an optional
// rack-local memory pool, with an optional cluster-global tier reachable
// from every rack at higher cost. `Topology` is the queryable form of that
// model (tier capacities, hop distances, headroom against a counted state);
// `TopologySpec` reshapes a ClusterConfig along the two axes the
// provisioning studies care about (rack count, rack-vs-global capacity
// split). Default-constructed everything reproduces the flat pre-topology
// machine — one global pool, no rack tier — byte-for-byte.
//
// Layering: this is its own layer between cluster/ and memory/. It may
// include common/ and cluster/ only; memory/placement consults it for the
// policy vocabulary and the counted resource view, sched/ and core/ for
// tier headroom.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/config.hpp"

namespace dmsched {

/// The four places a byte of a job's footprint can be served from, in
/// increasing hop distance from the node touching it. The neighbor tier is
/// DOLMA-style distance-graded sharing: bytes drawn from *another* rack's
/// pool — physically the same pools as kRackPool, but one inter-rack hop
/// further from the consuming node, so priced between rack and global.
enum class MemoryTier : std::uint8_t {
  kLocal = 0,        ///< node-local DRAM (no penalty)
  kRackPool = 1,     ///< the rack's own disaggregated pool (one switch hop)
  kNeighborPool = 2, ///< a foreign rack's pool (one inter-rack hop more)
  kGlobalPool = 3,   ///< the cluster-global tier (multi-hop)
};

constexpr std::size_t kMemoryTierCount = 4;

[[nodiscard]] const char* to_string(MemoryTier t);

/// Hop distance of a tier from the consuming node: 0 local, 1 rack, 2
/// neighbor rack, 3 global. The slowdown model's per-tier coefficients are
/// monotone in this.
[[nodiscard]] constexpr std::int32_t tier_distance(MemoryTier t) {
  return static_cast<std::int32_t>(t);
}

/// Counted (rack-granular) view of free resources — either the live
/// cluster or a hypothetical future state inside a reservation profile.
struct ResourceState {
  std::vector<std::int32_t> free_nodes;  ///< per rack
  std::vector<Bytes> pool_free;          ///< per rack
  /// Free GPU devices per rack. Empty on GPU-less machines (the legacy
  /// shape) so existing states compare and copy byte-identically.
  std::vector<std::int64_t> free_gpus;
  Bytes global_free{};
  /// Free burst-buffer capacity (zero on machines without one).
  Bytes bb_free{};

  [[nodiscard]] std::int32_t total_free_nodes() const;
  /// Free GPUs in rack `r`; 0 when the machine has none.
  [[nodiscard]] std::int64_t free_gpus_in(std::size_t r) const {
    return r < free_gpus.size() ? free_gpus[r] : 0;
  }
};

/// Current cluster state as a ResourceState.
[[nodiscard]] ResourceState snapshot(const Cluster& cluster);
/// An idle machine of the given shape.
[[nodiscard]] ResourceState empty_state(const ClusterConfig& config);

/// Remaining capacity per memory tier — what a scheduler reads before
/// deciding whether a start would drain a tier others depend on.
struct TierHeadroom {
  std::int32_t free_nodes = 0;
  Bytes rack_pool_free{};      ///< Σ free bytes across all rack pools
  Bytes rack_pool_free_max{};  ///< free bytes in the best-provisioned rack
  Bytes global_free{};
  std::int64_t free_gpus = 0;  ///< Σ free GPU devices across all racks
  Bytes bb_free{};             ///< free burst-buffer capacity

  [[nodiscard]] Bytes pool_free_total() const {
    return rack_pool_free + global_free;
  }
};

/// The queryable rack-scale model of one machine.
///
/// Default-constructed as the degenerate flat topology: a single rack
/// spanning the whole (empty) cluster and a single global pool — the shape
/// every pre-topology config had, so a default Topology never changes
/// behaviour.
class Topology {
 public:
  Topology() : Topology(ClusterConfig{}) {}
  explicit Topology(ClusterConfig config);

  [[nodiscard]] const ClusterConfig& config() const { return config_; }

  [[nodiscard]] std::int32_t racks() const { return config_.racks(); }
  [[nodiscard]] std::int32_t nodes() const { return config_.total_nodes; }
  [[nodiscard]] std::int32_t rack_nodes(RackId r) const {
    return config_.rack_size(r);
  }
  [[nodiscard]] RackId rack_of(NodeId node) const {
    return config_.rack_of(node);
  }

  /// Capacity of rack `r`'s pool (all racks are provisioned equally).
  [[nodiscard]] Bytes rack_pool_capacity(RackId) const {
    return config_.pool_per_rack;
  }
  /// Σ rack pools.
  [[nodiscard]] Bytes rack_tier_capacity() const {
    return config_.pool_per_rack * racks();
  }
  [[nodiscard]] Bytes global_tier_capacity() const {
    return config_.global_pool;
  }
  /// Capacity of one tier across the machine (local = Σ node-local DRAM).
  [[nodiscard]] Bytes tier_capacity(MemoryTier t) const;

  /// GPU devices owned by rack `r` (tiered like nodes: rack-pooled).
  [[nodiscard]] std::int64_t rack_gpu_capacity(RackId r) const {
    return config_.rack_gpu_capacity(r);
  }
  [[nodiscard]] std::int64_t total_gpus() const { return config_.total_gpus(); }
  [[nodiscard]] Bytes bb_capacity() const { return config_.bb_capacity; }

  [[nodiscard]] bool has_rack_tier() const {
    return !config_.pool_per_rack.is_zero();
  }
  [[nodiscard]] bool has_global_tier() const {
    return !config_.global_pool.is_zero();
  }
  /// True for the flat pre-topology shape: no rack tier, so every far byte
  /// is a global-pool byte.
  [[nodiscard]] bool single_pool() const { return !has_rack_tier(); }

  /// Switch hops between two racks: 0 within a rack, 1 across racks.
  [[nodiscard]] std::int32_t rack_distance(RackId a, RackId b) const {
    return a == b ? 0 : 1;
  }

  /// Remaining per-tier capacity in `state` (which must match this
  /// machine's rack shape).
  [[nodiscard]] TierHeadroom headroom(const ResourceState& state) const;

 private:
  ClusterConfig config_;
};

/// Reshape knobs for capacity-planning studies: how many racks, and how the
/// disaggregated capacity splits between the rack tier and the global tier.
/// Sentinels keep the published machine byte-identical.
struct TopologySpec {
  /// Target rack count. 0 = keep the published racking. Must divide the
  /// node count exactly; the rack tier's *total* bytes are preserved across
  /// re-racking.
  std::int32_t racks = 0;
  /// Fraction of the machine's total disaggregated capacity provisioned as
  /// rack-local pools (the rest forms the global tier). Negative = keep the
  /// published split; otherwise must lie in [0, 1].
  double rack_pool_frac = -1.0;

  [[nodiscard]] bool is_default() const {
    return racks == 0 && rack_pool_frac < 0.0;
  }
};

/// Apply a TopologySpec to a machine. Deterministic; throws
/// std::invalid_argument with a teaching message when the spec is invalid
/// for this machine or would silently produce a zero-capacity tier (a
/// requested tier whose per-pool size rounds to nothing).
[[nodiscard]] ClusterConfig apply(const TopologySpec& spec,
                                  ClusterConfig config);

/// Collapse a machine to the system-wide provisioning ablation: one rack
/// spanning every node and all disaggregated bytes in the global tier.
/// Total capacity is preserved; only distances change.
[[nodiscard]] ClusterConfig flatten_to_global(ClusterConfig config);

/// Throw std::invalid_argument if a tier that exists on `published` has
/// been scaled/reshaped to zero capacity on `shaped` — the silent failure
/// mode of aggressive pool_scale / rack_pool_frac combinations.
void ensure_tiers_survive(const ClusterConfig& shaped,
                          const ClusterConfig& published,
                          const char* what);

}  // namespace dmsched
