#include "topology/topology.hpp"

#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/assert.hpp"

namespace dmsched {

const char* to_string(MemoryTier t) {
  switch (t) {
    case MemoryTier::kLocal: return "local";
    case MemoryTier::kRackPool: return "rack-pool";
    case MemoryTier::kNeighborPool: return "neighbor-pool";
    case MemoryTier::kGlobalPool: return "global-pool";
  }
  return "?";
}

std::int32_t ResourceState::total_free_nodes() const {
  return std::accumulate(free_nodes.begin(), free_nodes.end(),
                         std::int32_t{0});
}

ResourceState snapshot(const Cluster& cluster) {
  const auto racks = cluster.config().racks();
  ResourceState s;
  s.free_nodes.reserve(static_cast<std::size_t>(racks));
  s.pool_free.reserve(static_cast<std::size_t>(racks));
  for (RackId r = 0; r < racks; ++r) {
    s.free_nodes.push_back(cluster.free_nodes_in_rack(r));
    s.pool_free.push_back(cluster.pool_free(r));
  }
  if (cluster.config().has_gpus()) {
    s.free_gpus.reserve(static_cast<std::size_t>(racks));
    for (RackId r = 0; r < racks; ++r) {
      s.free_gpus.push_back(cluster.free_gpus_in_rack(r));
    }
  }
  s.global_free = cluster.global_pool_free();
  s.bb_free = cluster.bb_free();
  return s;
}

ResourceState empty_state(const ClusterConfig& config) {
  ResourceState s;
  const auto racks = config.racks();
  for (RackId r = 0; r < racks; ++r) {
    s.free_nodes.push_back(config.rack_size(r));
    s.pool_free.push_back(config.pool_per_rack);
  }
  if (config.has_gpus()) {
    for (RackId r = 0; r < racks; ++r) {
      s.free_gpus.push_back(config.rack_gpu_capacity(r));
    }
  }
  s.global_free = config.global_pool;
  s.bb_free = config.bb_capacity;
  return s;
}

Topology::Topology(ClusterConfig config) : config_(std::move(config)) {}

Bytes Topology::tier_capacity(MemoryTier t) const {
  switch (t) {
    case MemoryTier::kLocal:
      return config_.local_mem_per_node * config_.total_nodes;
    case MemoryTier::kRackPool:
      return rack_tier_capacity();
    case MemoryTier::kNeighborPool:
      // Neighbor bytes come from the same physical pools as the rack tier;
      // the tier is a *distance* grade, not extra capacity.
      return rack_tier_capacity();
    case MemoryTier::kGlobalPool:
      return global_tier_capacity();
  }
  DMSCHED_UNREACHABLE("bad memory tier");
}

TierHeadroom Topology::headroom(const ResourceState& state) const {
  DMSCHED_ASSERT(state.free_nodes.size() == static_cast<std::size_t>(racks()),
                 "headroom: state shape mismatch");
  TierHeadroom h;
  h.free_nodes = state.total_free_nodes();
  for (const Bytes free : state.pool_free) {
    h.rack_pool_free += free;
    h.rack_pool_free_max = max(h.rack_pool_free_max, free);
  }
  h.global_free = state.global_free;
  for (const std::int64_t g : state.free_gpus) h.free_gpus += g;
  h.bb_free = state.bb_free;
  return h;
}

ClusterConfig apply(const TopologySpec& spec, ClusterConfig config) {
  if (spec.racks < 0) {
    throw std::invalid_argument(
        "topology: racks must be >= 0 (0 keeps the published racking), got " +
        std::to_string(spec.racks));
  }
  if (spec.racks > 0) {
    if (spec.racks > config.total_nodes ||
        config.total_nodes % spec.racks != 0) {
      throw std::invalid_argument(
          "topology: racks=" + std::to_string(spec.racks) +
          " must divide the node count (" +
          std::to_string(config.total_nodes) +
          ") exactly; pick a divisor");
    }
    // Preserve the rack tier's total bytes across re-racking.
    const Bytes rack_tier = config.pool_per_rack * config.racks();
    config.nodes_per_rack = config.total_nodes / spec.racks;
    config.pool_per_rack = rack_tier / spec.racks;
    if (!rack_tier.is_zero() && config.pool_per_rack.is_zero()) {
      throw std::invalid_argument(
          "topology: re-racking to " + std::to_string(spec.racks) +
          " racks leaves a zero-capacity rack tier (" +
          std::to_string(rack_tier.count()) +
          " bytes split too thin); reduce racks or raise pool capacity");
    }
  }
  if (spec.rack_pool_frac >= 0.0) {
    if (spec.rack_pool_frac > 1.0) {
      throw std::invalid_argument(
          "topology: rack_pool_frac must lie in [0, 1] (negative keeps the "
          "published split), got " + std::to_string(spec.rack_pool_frac));
    }
    const std::int32_t racks = config.racks();
    const Bytes total = config.pool_per_rack * racks + config.global_pool;
    if (total.is_zero()) {
      throw std::invalid_argument(
          "topology: rack_pool_frac set but the machine has no "
          "disaggregated capacity to split");
    }
    const Bytes per_rack = Bytes{static_cast<std::int64_t>(
        static_cast<double>(total.count()) * spec.rack_pool_frac /
        static_cast<double>(racks))};
    if (spec.rack_pool_frac > 0.0 && per_rack.is_zero()) {
      throw std::invalid_argument(
          "topology: rack_pool_frac=" + std::to_string(spec.rack_pool_frac) +
          " produces a zero-capacity rack tier on this machine (" +
          std::to_string(total.count()) + " bytes across " +
          std::to_string(racks) + " racks); raise the fraction or use 0");
    }
    config.pool_per_rack = per_rack;
    // frac == 1.0 means *strictly* rack-scale: the integer-division residue
    // (< racks bytes) is dropped rather than left as a degenerate global
    // tier that would flip has_global_tier() on a machine documented as
    // having none.
    config.global_pool =
        spec.rack_pool_frac == 1.0 ? Bytes{0} : total - per_rack * racks;
  }
  return config;
}

ClusterConfig flatten_to_global(ClusterConfig config) {
  config.global_pool += config.pool_per_rack * config.racks();
  config.pool_per_rack = Bytes{0};
  config.nodes_per_rack = config.total_nodes;
  return config;
}

void ensure_tiers_survive(const ClusterConfig& shaped,
                          const ClusterConfig& published, const char* what) {
  if (!published.pool_per_rack.is_zero() && shaped.pool_per_rack.is_zero()) {
    throw std::invalid_argument(
        std::string(what) +
        ": the published machine has rack pools but this combination "
        "produces a zero-capacity rack tier; raise pool_scale or "
        "rack_pool_frac");
  }
  if (!published.global_pool.is_zero() && shaped.global_pool.is_zero()) {
    throw std::invalid_argument(
        std::string(what) +
        ": the published machine has a global tier but this combination "
        "produces a zero-capacity global tier; raise pool_scale");
  }
}

}  // namespace dmsched
