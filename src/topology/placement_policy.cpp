#include "topology/placement_policy.hpp"

namespace dmsched {

const char* to_string(NodeSelection s) {
  switch (s) {
    case NodeSelection::kFirstFit: return "first-fit";
    case NodeSelection::kPackRacks: return "pack-racks";
    case NodeSelection::kSpreadRacks: return "spread-racks";
    case NodeSelection::kPoolAware: return "pool-aware";
  }
  return "?";
}

const char* to_string(PoolRouting r) {
  switch (r) {
    case PoolRouting::kRackOnly: return "rack-only";
    case PoolRouting::kRackThenGlobal: return "rack-then-global";
    case PoolRouting::kGlobalOnly: return "global-only";
    case PoolRouting::kRackNeighborGlobal: return "rack-neighbor-global";
  }
  return "?";
}

const char* to_string(PlacementStrategy s) {
  switch (s) {
    case PlacementStrategy::kLocalFirst: return "local-first";
    case PlacementStrategy::kBalanced: return "balanced";
    case PlacementStrategy::kGlobalFallback: return "global-fallback";
    case PlacementStrategy::kSharedNeighbors: return "shared-neighbors";
  }
  return "?";
}

std::optional<PlacementStrategy> placement_strategy_from_string(
    const std::string& s) {
  for (const PlacementStrategy strategy : all_placement_strategies()) {
    if (s == to_string(strategy)) return strategy;
  }
  return std::nullopt;
}

std::vector<PlacementStrategy> all_placement_strategies() {
  return {PlacementStrategy::kLocalFirst, PlacementStrategy::kBalanced,
          PlacementStrategy::kGlobalFallback,
          PlacementStrategy::kSharedNeighbors};
}

PlacementPolicy make_placement(PlacementStrategy s) {
  switch (s) {
    case PlacementStrategy::kLocalFirst:
      return {NodeSelection::kPoolAware, PoolRouting::kRackOnly};
    case PlacementStrategy::kBalanced:
      return {NodeSelection::kSpreadRacks, PoolRouting::kRackThenGlobal};
    case PlacementStrategy::kGlobalFallback:
      return {NodeSelection::kPoolAware, PoolRouting::kRackThenGlobal};
    case PlacementStrategy::kSharedNeighbors:
      return {NodeSelection::kPoolAware, PoolRouting::kRackNeighborGlobal};
  }
  return {};
}

}  // namespace dmsched
