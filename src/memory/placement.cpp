#include "memory/placement.hpp"

#include <algorithm>
#include <map>
#include <utility>
#include <numeric>

#include "common/assert.hpp"

namespace dmsched {

Bytes TakePlan::global_total() const {
  Bytes total{};
  for (const auto& t : takes) total += t.global_pool_bytes;
  return total;
}

Bytes TakePlan::rack_pool_total() const {
  Bytes total{};
  for (const auto& t : takes) total += t.rack_pool_bytes;
  return total;
}

Bytes TakePlan::neighbor_pool_total() const {
  Bytes total{};
  for (const auto& t : takes) total += t.neighbor_pool_bytes;
  return total;
}

std::int32_t TakePlan::node_total() const {
  std::int32_t n = 0;
  for (const auto& t : takes) n += t.nodes;
  return n;
}

std::int64_t TakePlan::gpu_total() const {
  std::int64_t g = 0;
  for (const auto& t : takes) g += t.gpus;
  return g;
}

namespace {

/// Rack visit order under a selection policy. Deterministic: ties break on
/// rack index.
std::vector<RackId> rack_order(const ResourceState& state,
                               NodeSelection selection, bool has_deficit) {
  std::vector<RackId> order(state.free_nodes.size());
  std::iota(order.begin(), order.end(), 0);
  auto stable_by = [&](auto key) {
    std::stable_sort(order.begin(), order.end(),
                     [&](RackId a, RackId b) { return key(a) < key(b); });
  };
  switch (selection) {
    case NodeSelection::kFirstFit:
      break;  // index order
    case NodeSelection::kPackRacks:
      // Most free nodes first => job spans the fewest racks.
      stable_by([&](RackId r) {
        return -state.free_nodes[static_cast<std::size_t>(r)];
      });
      break;
    case NodeSelection::kSpreadRacks:
      // Least-loaded... i.e. fewest free last? Spreading = take from racks
      // with the most free capacity one at a time; approximated by visiting
      // emptiest-first which still spreads wide jobs across many racks.
      stable_by([&](RackId r) {
        return state.free_nodes[static_cast<std::size_t>(r)];
      });
      break;
    case NodeSelection::kPoolAware:
      if (has_deficit) {
        // Deficit jobs chase pool-rich racks to avoid the global tier.
        stable_by([&](RackId r) {
          return -state.pool_free[static_cast<std::size_t>(r)].count();
        });
      } else {
        // Local jobs keep away from pool-rich racks, preserving them for
        // deficit jobs; among equals prefer fuller racks (packing).
        stable_by([&](RackId r) {
          return std::pair{state.pool_free[static_cast<std::size_t>(r)].count(),
                           -state.free_nodes[static_cast<std::size_t>(r)]};
        });
      }
      break;
  }
  return order;
}

}  // namespace

std::optional<TakePlan> compute_take(const ResourceState& state,
                                     const ClusterConfig& config,
                                     const Job& job, PlacementPolicy policy) {
  DMSCHED_ASSERT(state.free_nodes.size() ==
                     static_cast<std::size_t>(config.racks()),
                 "compute_take: state shape mismatch");
  TakePlan plan;
  plan.local_per_node = min(job.mem_per_node, config.local_mem_per_node);
  plan.far_per_node = job.mem_per_node - plan.local_per_node;
  const Bytes d = plan.far_per_node;

  // Optional axes. A policy blind to an axis plans as if the axis did not
  // exist (the memory-only instantiation); zero-request jobs take the same
  // code path either way, so legacy traces are byte-identical.
  const std::int32_t g = policy.axes.gpus ? job.gpus_per_node : 0;
  if (policy.axes.burst_buffer && job.bb_bytes > Bytes{0}) {
    if (state.bb_free < job.bb_bytes) return std::nullopt;
    plan.bb_bytes = job.bb_bytes;
  }
  // Per-rack takeable nodes under the GPU axis: each node taken in rack `r`
  // draws `g` devices from that rack's pool.
  const auto gpu_clamped = [&](std::size_t idx, std::int32_t free) {
    if (g <= 0) return free;
    return static_cast<std::int32_t>(std::min<std::int64_t>(
        free, state.free_gpus_in(idx) / g));
  };

  std::int32_t remaining = job.nodes;
  const auto order = rack_order(state, policy.selection, !d.is_zero());

  if (d.is_zero()) {
    for (RackId r : order) {
      if (remaining == 0) break;
      const auto idx = static_cast<std::size_t>(r);
      const std::int32_t free = gpu_clamped(idx, state.free_nodes[idx]);
      const std::int32_t take = std::min(free, remaining);
      if (take > 0) {
        plan.takes.push_back(
            {r, take, Bytes{0}, Bytes{0}, static_cast<std::int64_t>(take) * g});
        remaining -= take;
      }
    }
    if (remaining > 0) return std::nullopt;
    return plan;
  }

  // Deficit job: nodes must be funded at d bytes each from some pool.
  const bool rack_ok = policy.routing != PoolRouting::kGlobalOnly;
  const bool global_ok = policy.routing != PoolRouting::kRackOnly;
  // Under the distance-graded routing the global tier is a *last* resort
  // behind foreign rack pools, so the main loop funds rack-only and stage 2
  // below walks the remaining deficit outward by hop distance.
  const bool neighbor_ok = policy.routing == PoolRouting::kRackNeighborGlobal;
  std::int64_t global_node_budget =
      (global_ok && !neighbor_ok) ? state.global_free.count() / d.count() : 0;

  for (RackId r : order) {
    if (remaining == 0) break;
    const auto idx = static_cast<std::size_t>(r);
    std::int32_t free = gpu_clamped(idx, state.free_nodes[idx]);
    if (free == 0) continue;
    RackTake take{r, 0, Bytes{0}, Bytes{0}, 0};
    if (rack_ok) {
      const auto pool_capacity_nodes = static_cast<std::int32_t>(std::min<std::int64_t>(
          state.pool_free[idx].count() / d.count(), free));
      const std::int32_t via_rack =
          std::min(pool_capacity_nodes, remaining);
      if (via_rack > 0) {
        take.nodes += via_rack;
        take.rack_pool_bytes = d * via_rack;
        free -= via_rack;
        remaining -= via_rack;
      }
    }
    if (remaining > 0 && global_node_budget > 0 && free > 0) {
      const auto via_global = static_cast<std::int32_t>(std::min<std::int64_t>(
          {static_cast<std::int64_t>(free), global_node_budget,
           static_cast<std::int64_t>(remaining)}));
      take.nodes += via_global;
      take.global_pool_bytes = d * via_global;
      global_node_budget -= via_global;
      remaining -= via_global;
    }
    if (take.nodes > 0) {
      take.gpus = static_cast<std::int64_t>(take.nodes) * g;
      plan.takes.push_back(take);
    }
  }

  if (neighbor_ok && remaining > 0) {
    // Stage 2 of the distance-graded routing. Nodes first: the hosting set
    // must be final before any draw can be classified own-rack vs neighbor.
    const std::size_t racks_n = state.free_nodes.size();
    std::vector<std::int32_t> taken_nodes(racks_n, 0);
    std::vector<Bytes> taken_pool(racks_n, Bytes{0});
    std::vector<std::ptrdiff_t> slot(racks_n, -1);
    for (std::size_t i = 0; i < plan.takes.size(); ++i) {
      const auto idx = static_cast<std::size_t>(plan.takes[i].rack);
      slot[idx] = static_cast<std::ptrdiff_t>(i);
      taken_nodes[idx] = plan.takes[i].nodes;
      taken_pool[idx] = plan.takes[i].rack_pool_bytes;
    }
    const auto slice = [&](std::size_t idx) -> RackTake& {
      if (slot[idx] < 0) {
        plan.takes.push_back({static_cast<RackId>(idx), 0, Bytes{0}, Bytes{0},
                              0, Bytes{0}});
        slot[idx] = static_cast<std::ptrdiff_t>(plan.takes.size()) - 1;
      }
      return plan.takes[static_cast<std::size_t>(slot[idx])];
    };
    std::int32_t placed = 0;
    for (RackId r : order) {
      if (remaining == 0) break;
      const auto idx = static_cast<std::size_t>(r);
      const std::int32_t avail =
          gpu_clamped(idx, state.free_nodes[idx]) - taken_nodes[idx];
      const std::int32_t take_n = std::min(avail, remaining);
      if (take_n <= 0) continue;
      slice(idx).nodes += take_n;
      taken_nodes[idx] += take_n;
      placed += take_n;
      remaining -= take_n;
    }
    if (remaining > 0) return std::nullopt;
    // Fund the stage-2 deficit outward by hop distance: hosting racks'
    // residual pools, then foreign (neighbor) racks' pools, then the
    // global tier. Rack-index order within each ring keeps it deterministic.
    Bytes deficit = d * placed;
    for (std::size_t idx = 0; idx < racks_n && deficit > Bytes{0}; ++idx) {
      if (taken_nodes[idx] == 0) continue;
      const Bytes use = min(state.pool_free[idx] - taken_pool[idx], deficit);
      if (use > Bytes{0}) {
        slice(idx).rack_pool_bytes += use;
        taken_pool[idx] += use;
        deficit -= use;
      }
    }
    for (std::size_t idx = 0; idx < racks_n && deficit > Bytes{0}; ++idx) {
      if (taken_nodes[idx] != 0) continue;
      const Bytes use = min(state.pool_free[idx] - taken_pool[idx], deficit);
      if (use > Bytes{0}) {
        slice(idx).neighbor_pool_bytes += use;
        taken_pool[idx] += use;
        deficit -= use;
      }
    }
    if (deficit > Bytes{0}) {
      if (state.global_free < deficit) return std::nullopt;
      plan.takes.front().global_pool_bytes += deficit;
    }
    for (auto& t : plan.takes) {
      t.gpus = static_cast<std::int64_t>(t.nodes) * g;
    }
  }

  if (remaining > 0) return std::nullopt;
  return plan;
}

bool can_apply(const ResourceState& state, const TakePlan& plan) {
  for (const auto& t : plan.takes) {
    const auto idx = static_cast<std::size_t>(t.rack);
    if (idx >= state.free_nodes.size()) return false;
    if (state.free_nodes[idx] < t.nodes) return false;
    if (state.pool_free[idx] < t.rack_pool_bytes + t.neighbor_pool_bytes) {
      return false;
    }
    if (t.gpus > 0 && state.free_gpus_in(idx) < t.gpus) return false;
  }
  if (plan.bb_bytes > Bytes{0} && state.bb_free < plan.bb_bytes) return false;
  return state.global_free >= plan.global_total();
}

void apply_take(ResourceState& state, const TakePlan& plan) {
  for (const auto& t : plan.takes) {
    const auto idx = static_cast<std::size_t>(t.rack);
    DMSCHED_ASSERT(idx < state.free_nodes.size(), "apply_take: bad rack");
    DMSCHED_ASSERT(state.free_nodes[idx] >= t.nodes,
                   "apply_take: node overcommit");
    DMSCHED_ASSERT(state.pool_free[idx] >=
                       t.rack_pool_bytes + t.neighbor_pool_bytes,
                   "apply_take: rack pool overcommit");
    state.free_nodes[idx] -= t.nodes;
    state.pool_free[idx] -= t.rack_pool_bytes + t.neighbor_pool_bytes;
    if (t.gpus > 0) {
      DMSCHED_ASSERT(idx < state.free_gpus.size() &&
                         state.free_gpus[idx] >= t.gpus,
                     "apply_take: rack GPU overcommit");
      state.free_gpus[idx] -= t.gpus;
    }
  }
  const Bytes g = plan.global_total();
  DMSCHED_ASSERT(state.global_free >= g, "apply_take: global pool overcommit");
  state.global_free -= g;
  if (plan.bb_bytes > Bytes{0}) {
    DMSCHED_ASSERT(state.bb_free >= plan.bb_bytes,
                   "apply_take: burst buffer overcommit");
    state.bb_free -= plan.bb_bytes;
  }
}

void release_take(ResourceState& state, const TakePlan& plan) {
  for (const auto& t : plan.takes) {
    const auto idx = static_cast<std::size_t>(t.rack);
    DMSCHED_ASSERT(idx < state.free_nodes.size(), "release_take: bad rack");
    state.free_nodes[idx] += t.nodes;
    state.pool_free[idx] += t.rack_pool_bytes + t.neighbor_pool_bytes;
    if (t.gpus > 0) {
      DMSCHED_ASSERT(idx < state.free_gpus.size(), "release_take: bad rack");
      state.free_gpus[idx] += t.gpus;
    }
  }
  state.global_free += plan.global_total();
  state.bb_free += plan.bb_bytes;
}

bool feasible_on_empty(const ClusterConfig& config, const Job& job,
                       PlacementPolicy policy) {
  return compute_take(empty_state(config), config, job, policy).has_value();
}

Allocation materialize(const Cluster& cluster, const Job& job,
                       const TakePlan& plan) {
  Allocation alloc;
  alloc.job = job.id;
  alloc.local_per_node = plan.local_per_node;
  alloc.far_per_node = plan.far_per_node;
  // Physical requirements come from the job, not the plan: even a plan made
  // by an axis-blind policy materializes into a full allocation, and the
  // cluster ledger (Cluster::commit) enforces every axis on it. Schedulers
  // that plan blind must revalidate before starting.
  alloc.gpus_per_node = job.gpus_per_node;
  alloc.bb_bytes = job.bb_bytes;
  Bytes global_bytes{};
  for (const auto& t : plan.takes) {
    auto ids = cluster.free_nodes_in_rack_lowest(t.rack, t.nodes);
    DMSCHED_ASSERT(std::cmp_equal(ids.size(), t.nodes),
                   "materialize: plan is stale for this cluster");
    alloc.nodes.insert(alloc.nodes.end(), ids.begin(), ids.end());
    if (t.rack_pool_bytes > Bytes{0}) {
      alloc.draws.push_back({t.rack, t.rack_pool_bytes});
    }
    if (t.neighbor_pool_bytes > Bytes{0}) {
      alloc.draws.push_back({t.rack, t.neighbor_pool_bytes, /*neighbor=*/true});
    }
    global_bytes += t.global_pool_bytes;
  }
  if (global_bytes > Bytes{0}) {
    alloc.draws.push_back({kGlobalPoolRack, global_bytes});
  }
  return alloc;
}

TakePlan take_from(const Allocation& alloc, const ClusterConfig& config) {
  TakePlan take;
  take.local_per_node = alloc.local_per_node;
  take.far_per_node = alloc.far_per_node;
  take.bb_bytes = alloc.bb_bytes;
  // Group nodes by rack, then attach this allocation's pool draws.
  std::map<RackId, RackTake> per_rack;
  for (NodeId n : alloc.nodes) {
    const RackId r = config.rack_of(n);
    auto& t = per_rack[r];
    t.rack = r;
    ++t.nodes;
    t.gpus += alloc.gpus_per_node;
  }
  Bytes global_bytes{};
  for (const auto& d : alloc.draws) {
    if (d.rack == kGlobalPoolRack) {
      global_bytes += d.bytes;
    } else if (d.neighbor) {
      // A neighbor draw's source rack hosts none of the job's nodes; it
      // gets its own node-less slice so profiles debit the right pool.
      auto& t = per_rack[d.rack];
      DMSCHED_ASSERT(t.nodes == 0,
                     "neighbor draw from a rack hosting the allocation's nodes");
      t.rack = d.rack;
      t.neighbor_pool_bytes += d.bytes;
    } else {
      auto it = per_rack.find(d.rack);
      DMSCHED_ASSERT(it != per_rack.end() && it->second.nodes > 0,
                     "allocation draws from a rack hosting none of its nodes");
      it->second.rack_pool_bytes += d.bytes;
    }
  }
  // The global draw is accounted on the first rack slice: profiles only use
  // the global *total*, which is preserved.
  take.takes.reserve(per_rack.size());
  for (auto& [r, t] : per_rack) take.takes.push_back(t);
  if (global_bytes > Bytes{0}) {
    DMSCHED_ASSERT(!take.takes.empty(), "allocation with draws but no nodes");
    take.takes.front().global_pool_bytes = global_bytes;
  }
  return take;
}

std::optional<Allocation> plan_start(const Cluster& cluster, const Job& job,
                                     PlacementPolicy policy) {
  const auto plan =
      compute_take(snapshot(cluster), cluster.config(), job, policy);
  if (!plan) return std::nullopt;
  return materialize(cluster, job, *plan);
}

}  // namespace dmsched
