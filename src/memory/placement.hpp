// Placement: turning "job J may start" into concrete nodes and pool draws.
//
// One kernel (`compute_take`) answers both questions every layer asks:
//  - the cluster-facing planner materializes it into an Allocation;
//  - the reservation profile applies it to *future* resource states.
// Sharing the kernel guarantees that "the profile says J fits at time T"
// and "the planner can start J at time T" never diverge.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "workload/job.hpp"

namespace dmsched {

/// How nodes are chosen across racks.
enum class NodeSelection {
  kFirstFit,    ///< racks in index order — the memory-unaware default
  kPackRacks,   ///< fullest-free racks first: fewest racks per job
  kSpreadRacks, ///< emptiest racks first: balances occupancy
  kPoolAware,   ///< deficit jobs chase pool-rich racks; local jobs avoid them
};

/// Which pools may serve a job's deficit.
enum class PoolRouting {
  kRackOnly,       ///< only the racks the job occupies (strict locality)
  kRackThenGlobal, ///< rack pools first, global pool as overflow (default)
  kGlobalOnly,     ///< everything from the global pool (topology ablation)
};

[[nodiscard]] const char* to_string(NodeSelection s);
[[nodiscard]] const char* to_string(PoolRouting r);

/// The placement configuration a scheduler runs with.
struct PlacementPolicy {
  NodeSelection selection = NodeSelection::kPoolAware;
  PoolRouting routing = PoolRouting::kRackThenGlobal;
};

/// Counted (rack-granular) view of free resources — either the live
/// cluster or a hypothetical future state inside a reservation profile.
struct ResourceState {
  std::vector<std::int32_t> free_nodes;  ///< per rack
  std::vector<Bytes> pool_free;          ///< per rack
  Bytes global_free{};

  [[nodiscard]] std::int32_t total_free_nodes() const;
};

/// Current cluster state as a ResourceState.
[[nodiscard]] ResourceState snapshot(const Cluster& cluster);
/// An idle machine of the given shape.
[[nodiscard]] ResourceState empty_state(const ClusterConfig& config);

/// Per-rack slice of a planned start.
struct RackTake {
  RackId rack = 0;
  std::int32_t nodes = 0;        ///< nodes taken in this rack
  Bytes rack_pool_bytes{};       ///< drawn from this rack's pool
  Bytes global_pool_bytes{};     ///< drawn from the global pool for these nodes
};

/// A start decision in counted form (no node ids yet).
struct TakePlan {
  Bytes local_per_node{};
  Bytes far_per_node{};
  std::vector<RackTake> takes;

  [[nodiscard]] Bytes global_total() const;
  [[nodiscard]] Bytes rack_pool_total() const;
  [[nodiscard]] std::int32_t node_total() const;
};

/// Plan a start of `job` against `state`. Returns nullopt when the job
/// cannot start (insufficient nodes or pool capacity under `policy`).
[[nodiscard]] std::optional<TakePlan> compute_take(const ResourceState& state,
                                                   const ClusterConfig& config,
                                                   const Job& job,
                                                   PlacementPolicy policy);

/// True when `plan` could be subtracted from `state` without going
/// negative (non-mutating feasibility probe for interval fitting).
[[nodiscard]] bool can_apply(const ResourceState& state, const TakePlan& plan);

/// Subtract a plan's resources from `state` (must fit; asserts otherwise).
void apply_take(ResourceState& state, const TakePlan& plan);
/// Return a plan's resources to `state`.
void release_take(ResourceState& state, const TakePlan& plan);

/// True when `job` could start on an *empty* machine of this shape — the
/// admission check ("runnable at all").
[[nodiscard]] bool feasible_on_empty(const ClusterConfig& config,
                                     const Job& job, PlacementPolicy policy);

/// Materialize a counted plan into concrete node ids on the live cluster.
/// The plan must have been computed against `snapshot(cluster)`.
[[nodiscard]] Allocation materialize(const Cluster& cluster, const Job& job,
                                     const TakePlan& plan);

/// One-call convenience: plan and materialize a start for `job` now.
[[nodiscard]] std::optional<Allocation> plan_start(const Cluster& cluster,
                                                   const Job& job,
                                                   PlacementPolicy policy);

}  // namespace dmsched
