// Placement: turning "job J may start" into concrete nodes and pool draws.
//
// One kernel (`compute_take`) answers both questions every layer asks:
//  - the cluster-facing planner materializes it into an Allocation;
//  - the reservation profile applies it to *future* resource states.
// Sharing the kernel guarantees that "the profile says J fits at time T"
// and "the planner can start J at time T" never diverge.
//
// The vocabulary it executes — NodeSelection, PoolRouting, PlacementPolicy,
// the named PlacementStrategy presets — and the counted ResourceState view
// live one layer down in topology/ (policies are statements about rack
// distances and tiers; this file is the allocation mechanics).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "topology/placement_policy.hpp"
#include "topology/topology.hpp"
#include "workload/job.hpp"

namespace dmsched {

/// Per-rack slice of a planned start.
struct RackTake {
  RackId rack = 0;
  std::int32_t nodes = 0;        ///< nodes taken in this rack
  Bytes rack_pool_bytes{};       ///< drawn from this rack's pool
  Bytes global_pool_bytes{};     ///< drawn from the global pool for these nodes
  std::int64_t gpus = 0;         ///< devices drawn from this rack's GPU pool
  /// Drawn from this rack's pool for a job hosting *no* node here — a
  /// distance-graded neighbor draw (shared-neighbors routing only). Such a
  /// slice may carry `nodes == 0`; it still debits this rack's pool.
  Bytes neighbor_pool_bytes{};
};

/// A start decision in counted form (no node ids yet).
struct TakePlan {
  Bytes local_per_node{};
  Bytes far_per_node{};
  /// Burst-buffer reservation (cluster-global, like the global pool).
  Bytes bb_bytes{};
  std::vector<RackTake> takes;

  [[nodiscard]] Bytes global_total() const;
  [[nodiscard]] Bytes rack_pool_total() const;
  [[nodiscard]] Bytes neighbor_pool_total() const;
  /// Everything drawn from the rack *tier* (own-rack + neighbor draws) —
  /// what rack-pool headroom shields must count.
  [[nodiscard]] Bytes rack_tier_total() const {
    return rack_pool_total() + neighbor_pool_total();
  }
  [[nodiscard]] std::int32_t node_total() const;
  [[nodiscard]] std::int64_t gpu_total() const;
};

/// Plan a start of `job` against `state`. Returns nullopt when the job
/// cannot start (insufficient nodes or pool capacity under `policy`).
[[nodiscard]] std::optional<TakePlan> compute_take(const ResourceState& state,
                                                   const ClusterConfig& config,
                                                   const Job& job,
                                                   PlacementPolicy policy);

/// True when `plan` could be subtracted from `state` without going
/// negative (non-mutating feasibility probe for interval fitting).
[[nodiscard]] bool can_apply(const ResourceState& state, const TakePlan& plan);

/// Subtract a plan's resources from `state` (must fit; asserts otherwise).
void apply_take(ResourceState& state, const TakePlan& plan);
/// Return a plan's resources to `state`.
void release_take(ResourceState& state, const TakePlan& plan);

/// True when `job` could start on an *empty* machine of this shape — the
/// admission check ("runnable at all").
[[nodiscard]] bool feasible_on_empty(const ClusterConfig& config,
                                     const Job& job, PlacementPolicy policy);

/// Materialize a counted plan into concrete node ids on the live cluster.
/// The plan must have been computed against `snapshot(cluster)`.
[[nodiscard]] Allocation materialize(const Cluster& cluster, const Job& job,
                                     const TakePlan& plan);

/// The inverse of materialize: the counted resource view of a concrete
/// allocation (nodes grouped per rack, pool draws attached). This is the
/// plan the engine's availability timeline tracks for a started job — and
/// the plan a scheduler must hold in its profile for a job it just started,
/// so profile and ledger can never disagree about rack distribution.
[[nodiscard]] TakePlan take_from(const Allocation& alloc,
                                 const ClusterConfig& config);

/// One-call convenience: plan and materialize a start for `job` now.
[[nodiscard]] std::optional<Allocation> plan_start(const Cluster& cluster,
                                                   const Job& job,
                                                   PlacementPolicy policy);

}  // namespace dmsched
