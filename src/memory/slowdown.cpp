#include "memory/slowdown.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace dmsched {

double SlowdownModel::sensitivity_multiplier(MemSensitivity s) const {
  switch (s) {
    case MemSensitivity::kComputeBound: return sens_compute;
    case MemSensitivity::kBalanced: return sens_balanced;
    case MemSensitivity::kBandwidthBound: return sens_bandwidth;
  }
  DMSCHED_UNREACHABLE("bad sensitivity class");
}

double SlowdownModel::tier_coefficient(MemoryTier t) const {
  switch (t) {
    case MemoryTier::kLocal: return 0.0;
    case MemoryTier::kRackPool: return beta_rack;
    case MemoryTier::kNeighborPool: return beta_neighbor;
    case MemoryTier::kGlobalPool: return beta_global;
  }
  DMSCHED_UNREACHABLE("bad memory tier");
}

SlowdownModel SlowdownModel::with_remote_penalty(double k) const {
  DMSCHED_ASSERT(k > 0.0, "remote penalty must be > 0");
  if (k == 1.0) return *this;
  SlowdownModel m = *this;
  m.beta_rack = beta_rack * k;
  m.beta_neighbor = beta_neighbor * k;
  m.beta_global = beta_global * k;
  return m;
}

double SlowdownModel::dilation(double phi_rack, double phi_neighbor,
                               double phi_global, MemSensitivity s) const {
  DMSCHED_ASSERT(phi_rack >= 0.0 && phi_neighbor >= 0.0 &&
                     phi_global >= 0.0 &&
                     phi_rack + phi_neighbor + phi_global <= 1.0 + 1e-9,
                 "dilation: far fractions outside [0,1]");
  const double mult = sensitivity_multiplier(s);
  // Distance-tier composition: each remote tier contributes its coefficient
  // times its footprint fraction (raised to γ for the saturating kind).
  const double c_rack = tier_coefficient(MemoryTier::kRackPool);
  const double c_neighbor = tier_coefficient(MemoryTier::kNeighborPool);
  const double c_global = tier_coefficient(MemoryTier::kGlobalPool);
  double penalty = 0.0;
  switch (kind) {
    case Kind::kLinear:
      penalty = c_rack * phi_rack + c_neighbor * phi_neighbor +
                c_global * phi_global;
      break;
    case Kind::kSaturating:
      penalty = c_rack * std::pow(phi_rack, gamma) +
                c_neighbor * std::pow(phi_neighbor, gamma) +
                c_global * std::pow(phi_global, gamma);
      break;
  }
  return 1.0 + mult * penalty;
}

double SlowdownModel::dilation_for(const Allocation& alloc,
                                   const Job& job) const {
  const Bytes total = alloc.mem_total();
  if (total.is_zero()) return 1.0;
  const double phi_rack = ratio(alloc.rack_draw_total(), total);
  const double phi_neighbor = ratio(alloc.neighbor_draw_total(), total);
  const double phi_global = ratio(alloc.global_draw_total(), total);
  return dilation(phi_rack, phi_neighbor, phi_global, job.sensitivity);
}

double SlowdownModel::dilation_bytes(Bytes rack_bytes, Bytes neighbor_bytes,
                                     Bytes global_bytes, Bytes total,
                                     MemSensitivity s) const {
  if (total.is_zero()) return 1.0;
  return dilation(ratio(rack_bytes, total), ratio(neighbor_bytes, total),
                  ratio(global_bytes, total), s);
}

double SlowdownModel::worst_case_dilation(const Job& job,
                                          Bytes local_per_node) const {
  if (job.mem_per_node <= local_per_node) return 1.0;
  const double phi =
      ratio(job.mem_per_node - local_per_node, job.mem_per_node);
  // Both betas evaluated; the worse one bounds any mixed allocation.
  const double via_global = dilation(0.0, phi, job.sensitivity);
  const double via_rack = dilation(phi, 0.0, job.sensitivity);
  return via_global > via_rack ? via_global : via_rack;
}

}  // namespace dmsched
