// Far-memory performance model.
//
// Hardware substitution (DESIGN.md): instead of simulating a CXL fabric we
// model its effect — a job whose footprint is partly served from a pool runs
// longer by an analytic dilation factor. Rack pools (one switch hop) carry a
// lower coefficient than the global pool (multi-hop). Application classes
// scale the penalty: streaming codes feel far memory, compute-bound codes
// barely notice.
#pragma once

#include "cluster/allocation.hpp"
#include "topology/topology.hpp"
#include "workload/job.hpp"

namespace dmsched {

/// Runtime dilation as a function of the far-memory fraction.
///
/// The penalty composes over distance tiers (topology/): each tier carries
/// a coefficient monotone in its hop count — local 0, rack pool one switch
/// hop, global pool multi-hop — and a job's dilation sums the per-tier
/// contributions of its footprint split.
struct SlowdownModel {
  enum class Kind {
    kLinear,      ///< 1 + β·φ — first-order model, default
    kSaturating,  ///< 1 + β·φ^γ, γ<1 — penalty front-loaded, then flattens
  };
  Kind kind = Kind::kLinear;
  /// Coefficient for bytes served from the job's rack pools.
  double beta_rack = 0.30;
  /// Coefficient for bytes served from a *neighbor* rack's pool (one
  /// inter-rack hop beyond the own-rack switch, but short of the global
  /// fabric). Priced midway between the rack and global coefficients; only
  /// the shared-neighbors routing ever produces such draws, so this knob is
  /// unobservable on every published machine.
  double beta_neighbor = 0.375;
  /// Coefficient for bytes served from the global pool (extra hops).
  double beta_global = 0.45;
  /// Exponent for the saturating kind (ignored for linear).
  double gamma = 0.7;
  /// Sensitivity multipliers per application class.
  double sens_compute = 0.4;
  double sens_balanced = 1.0;
  double sens_bandwidth = 1.6;

  /// Class multiplier.
  [[nodiscard]] double sensitivity_multiplier(MemSensitivity s) const;

  /// Distance-tier coefficient: 0 for local, β_rack for the rack tier,
  /// β_neighbor for foreign-rack draws, β_global for the global tier.
  [[nodiscard]] double tier_coefficient(MemoryTier t) const;

  /// The same model with every remote-tier coefficient scaled by `k` —
  /// ScenarioParams::remote_penalty resolves through this. `k` must be > 0;
  /// 1.0 returns the model unchanged (bit-for-bit).
  [[nodiscard]] SlowdownModel with_remote_penalty(double k) const;

  /// Dilation factor (>= 1) for far fractions φ_rack, φ_neighbor and
  /// φ_global of the job's total footprint. φ's must be in [0,1] and sum
  /// to <= 1.
  [[nodiscard]] double dilation(double phi_rack, double phi_neighbor,
                                double phi_global, MemSensitivity s) const;

  /// Two-tier convenience overload (no neighbor draws) — the shape every
  /// pre-neighbor call site uses; forwards with φ_neighbor = 0.
  [[nodiscard]] double dilation(double phi_rack, double phi_global,
                                MemSensitivity s) const {
    return dilation(phi_rack, 0.0, phi_global, s);
  }

  /// Dilation factor for a concrete allocation of `job`.
  [[nodiscard]] double dilation_for(const Allocation& alloc,
                                    const Job& job) const;

  /// Dilation factor from byte totals (counted plans, before node ids are
  /// assigned): `rack_bytes`/`neighbor_bytes`/`global_bytes` far bytes out
  /// of `total`.
  [[nodiscard]] double dilation_bytes(Bytes rack_bytes, Bytes neighbor_bytes,
                                      Bytes global_bytes, Bytes total,
                                      MemSensitivity s) const;
  /// Two-tier convenience overload (no neighbor draws).
  [[nodiscard]] double dilation_bytes(Bytes rack_bytes, Bytes global_bytes,
                                      Bytes total, MemSensitivity s) const {
    return dilation_bytes(rack_bytes, Bytes{0}, global_bytes, total, s);
  }

  /// Upper bound on the dilation any allocation of `job` can incur (all far
  /// bytes through the global pool). Schedulers use it for conservative
  /// walltime planning.
  [[nodiscard]] double worst_case_dilation(const Job& job,
                                           Bytes local_per_node) const;
};

}  // namespace dmsched
