// Scheduler construction by name/kind — the single switch the harnesses use.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/mem_aware_easy.hpp"
#include "sched/scheduler.hpp"

namespace dmsched {

/// Every scheduling policy the harnesses can construct by name.
enum class SchedulerKind {
  kFcfs,         ///< strict FCFS, no backfilling
  kEasy,         ///< EASY backfilling, node-only reservations (baseline)
  kConservative, ///< conservative backfilling over the 2-D profile
  kMemAwareEasy, ///< the paper's memory-aware EASY
  kAdaptive,     ///< memory-aware EASY + defer-vs-dilate routing
  /// Memory-aware EASY planning on every resource axis (GPUs, burst buffer)
  /// — the all-axes instantiation of the same template. Byte-identical to
  /// kMemAwareEasy on machines without GPUs or a burst buffer.
  kResourceAwareEasy,
};

[[nodiscard]] const char* to_string(SchedulerKind kind);
[[nodiscard]] SchedulerKind scheduler_kind_from_string(const std::string& s);
/// The paper's evaluation set, in evaluation order. Deliberately excludes
/// kResourceAwareEasy: this list feeds the pinned discrimination goldens and
/// the published figure sweeps, which compare the paper's five policies.
/// resource-easy equals mem-easy on every legacy scenario (proven by
/// tests/sched/resource_aware_test) and diverges only on machines with GPUs
/// or a burst buffer.
[[nodiscard]] std::vector<SchedulerKind> all_scheduler_kinds();

/// Instantiate a scheduler. `mem_options` applies to the memory-aware
/// variants (ignored by the baselines).
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(
    SchedulerKind kind, const MemAwareOptions& mem_options = {});

}  // namespace dmsched
