// Scheduler construction by name/kind — the single switch the harnesses use.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/mem_aware_easy.hpp"
#include "sched/scheduler.hpp"

namespace dmsched {

/// Every scheduling policy in the evaluation.
enum class SchedulerKind {
  kFcfs,         ///< strict FCFS, no backfilling
  kEasy,         ///< EASY backfilling, node-only reservations (baseline)
  kConservative, ///< conservative backfilling over the 2-D profile
  kMemAwareEasy, ///< the paper's memory-aware EASY
  kAdaptive,     ///< memory-aware EASY + defer-vs-dilate routing
};

[[nodiscard]] const char* to_string(SchedulerKind kind);
[[nodiscard]] SchedulerKind scheduler_kind_from_string(const std::string& s);
/// All kinds in evaluation order.
[[nodiscard]] std::vector<SchedulerKind> all_scheduler_kinds();

/// Instantiate a scheduler. `mem_options` applies to the memory-aware
/// variants (ignored by the baselines).
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(
    SchedulerKind kind, const MemAwareOptions& mem_options = {});

}  // namespace dmsched
