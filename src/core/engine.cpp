#include "core/engine.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <utility>

#include "common/assert.hpp"
#include "obs/counters.hpp"

namespace dmsched {

namespace {

[[noreturn]] void sink_abort(const char* what) {
  std::fprintf(stderr,
               "dmsched: trace sink threw mid-run: %s\n"
               "  observers must be passive and noexcept; aborting rather "
               "than unwinding a half-mutated simulation\n",
               what);
  std::abort();
}

/// Run one sink callback; a throwing sink dies deterministically here
/// instead of propagating through the event loop.
template <typename Fn>
void guarded_emit(Fn&& fn) {
  try {
    std::forward<Fn>(fn)();
  } catch (const std::exception& e) {
    sink_abort(e.what());
  } catch (...) {
    sink_abort("non-standard exception");
  }
}

}  // namespace

void SchedulingSimulation::JobList::push_back(std::vector<JobRuntime>& rt,
                                              JobId job) {
  JobRuntime& r = rt[job];
  DMSCHED_ASSERT(r.list == JobListId::kNone,
                 "JobList::push_back: job already linked into a list");
  r.list = id;
  r.list_prev = tail;
  r.list_next = kInvalidJobId;
  if (tail != kInvalidJobId) {
    rt[tail].list_next = job;
  } else {
    head = job;
  }
  tail = job;
  ++count;
}

void SchedulingSimulation::JobList::erase(std::vector<JobRuntime>& rt,
                                          JobId job) {
  JobRuntime& r = rt[job];
  // The checked removal: membership is asserted via the job's list slot, so
  // a bookkeeping bug aborts here instead of silently corrupting the list
  // (the old vector path erased whatever std::find returned, end() included).
  DMSCHED_ASSERT(r.list == id, "JobList::erase: job is not in this list");
  DMSCHED_ASSERT(count > 0, "JobList::erase: list count out of sync");
  if (r.list_prev != kInvalidJobId) {
    rt[r.list_prev].list_next = r.list_next;
  } else {
    head = r.list_next;
  }
  if (r.list_next != kInvalidJobId) {
    rt[r.list_next].list_prev = r.list_prev;
  } else {
    tail = r.list_prev;
  }
  r.list_prev = kInvalidJobId;
  r.list_next = kInvalidJobId;
  r.list = JobListId::kNone;
  --count;
}

std::vector<JobId> SchedulingSimulation::JobList::to_vector(
    const std::vector<JobRuntime>& rt) const {
  std::vector<JobId> ids;
  ids.reserve(count);
  for (JobId j = head; j != kInvalidJobId; j = rt[j].list_next) {
    ids.push_back(j);
  }
  DMSCHED_ASSERT(ids.size() == count, "JobList: link/count mismatch");
  return ids;
}

SchedulingSimulation::SchedulingSimulation(ClusterConfig config,
                                           const Trace& trace,
                                           std::unique_ptr<Scheduler> scheduler,
                                           EngineOptions options)
    : SchedulingSimulation(std::move(config), &trace, nullptr,
                           std::move(scheduler), options) {}

SchedulingSimulation::SchedulingSimulation(ClusterConfig config,
                                           TraceSource& source,
                                           std::unique_ptr<Scheduler> scheduler,
                                           EngineOptions options)
    : SchedulingSimulation(std::move(config), nullptr, &source,
                           std::move(scheduler), options) {}

SchedulingSimulation::SchedulingSimulation(ClusterConfig config,
                                           const Trace* trace,
                                           TraceSource* source,
                                           std::unique_ptr<Scheduler> scheduler,
                                           EngineOptions options)
    : config_(std::move(config)),
      trace_(trace),
      source_(source),
      scheduler_(std::move(scheduler)),
      options_(options),
      cluster_(config_),
      migration_(options_.migration),
      topology_(config_),
      timeline_(config_) {
  DMSCHED_ASSERT(scheduler_ != nullptr, "simulation needs a scheduler");
  DMSCHED_ASSERT((trace_ != nullptr) != (source_ != nullptr),
                 "simulation needs exactly one job input");
  // Per-job bookkeeping (rt_, outcome records) grows with pulls; reserving
  // from the known/advisory size avoids reallocation churn, nothing more.
  const std::size_t expect =
      trace_ ? trace_->size() : source_->size_hint().value_or(0);
  rt_.reserve(expect);
  metrics_.jobs.reserve(expect);
  metrics_.label = std::string(scheduler_->name()) + "/" + config_.name;
}

SimTime SchedulingSimulation::now() const { return engine_.now(); }

const Cluster& SchedulingSimulation::cluster() const { return cluster_; }

const Job& SchedulingSimulation::job(JobId id) const {
  if (trace_ != nullptr) return trace_->job(id);
  const auto it = live_jobs_rec_.find(id);
  DMSCHED_ASSERT(it != live_jobs_rec_.end(),
                 "job(): not a live job (streaming runs drop terminal jobs)");
  return it->second;
}

std::vector<JobId> SchedulingSimulation::queued_jobs() const {
  std::vector<JobId> ids = queue_.to_vector(rt_);
  if (trace_ != nullptr) {
    order_queue(ids, trace_->jobs(), options_.queue_order, engine_.now());
  } else {
    order_queue(
        ids, [this](JobId id) -> const Job& { return job(id); },
        options_.queue_order, engine_.now());
  }
  return ids;
}

std::vector<RunningJob> SchedulingSimulation::running_jobs() const {
  std::vector<RunningJob> out;
  out.reserve(running_.size());
  for (JobId id = running_.head; id != kInvalidJobId;
       id = rt_[id].list_next) {
    const JobRuntime& r = rt_[id];
    out.push_back({id, r.expected_end, r.take});
  }
  return out;
}

PlacementPolicy SchedulingSimulation::placement() const {
  return options_.placement;
}

const SlowdownModel& SchedulingSimulation::slowdown() const {
  return options_.slowdown;
}

const Topology& SchedulingSimulation::topology() const { return topology_; }

MigrationPolicy SchedulingSimulation::migration() const {
  return options_.migration;
}

const AvailabilityTimeline* SchedulingSimulation::timeline() const {
  return &timeline_;
}

bool SchedulingSimulation::queue_order_stable() const {
  // FCFS orders by (submit, id), which is exactly append order; every other
  // policy re-ranks the queue per pass, so suffixes are not incremental.
  return options_.queue_order == QueueOrder::kFcfs;
}

std::uint64_t SchedulingSimulation::queue_tail_epoch() const {
  return queue_appends_.size();
}

std::vector<JobId> SchedulingSimulation::queued_jobs_after(
    std::uint64_t epoch) const {
  DMSCHED_ASSERT(epoch <= queue_appends_.size(),
                 "queued_jobs_after: epoch from the future");
  std::vector<JobId> out;
  for (std::size_t i = epoch; i < queue_appends_.size(); ++i) {
    const JobId id = queue_appends_[i];
    if (rt_[id].state == JobState::kQueued) out.push_back(id);
  }
  return out;
}

TakePlan SchedulingSimulation::take_from_allocation(const Allocation& alloc,
                                                    const ClusterConfig& cfg) {
  return take_from(alloc, cfg);
}

void SchedulingSimulation::record_usage_change() {
  const double t = engine_.now().seconds();
  busy_nodes_tw_.record(t, static_cast<double>(cluster_.busy_nodes()));
  rack_pool_tw_.record(t, static_cast<double>(cluster_.rack_pools_used().count()));
  global_pool_tw_.record(t, static_cast<double>(cluster_.global_pool_used().count()));
  if (topology_.has_rack_tier()) {
    busiest_rack_pool_peak_ =
        max(busiest_rack_pool_peak_, cluster_.busiest_rack_pool_used());
  }
  if (config_.has_gpus()) {
    gpu_tw_.record(t, static_cast<double>(cluster_.gpus_used_total()));
  }
  if (config_.has_burst_buffer()) {
    bb_tw_.record(t, static_cast<double>(cluster_.bb_used().count()));
  }
}

void SchedulingSimulation::sample_series() {
  TimeSample s;
  s.time = engine_.now();
  s.busy_nodes = cluster_.busy_nodes();
  s.queued_jobs = static_cast<std::int32_t>(queue_.size());
  s.running_jobs = static_cast<std::int32_t>(running_.size());
  s.rack_pool_used = cluster_.rack_pools_used();
  s.global_pool_used = cluster_.global_pool_used();
  metrics_.series.push_back(s);
  if (live_jobs_ > 0) {
    engine_.schedule_in(options_.sample_interval, sim::EventClass::kTimer,
                        [this](SimTime) { sample_series(); });
  }
}

void SchedulingSimulation::migration_check() {
  // Plan over the running list in insertion order — the same deterministic
  // order every other per-job walk uses.
  const std::vector<MigrationDecision> moves =
      migration_.plan(cluster_, running_.to_vector(rt_));
  for (const MigrationDecision& m : moves) {
    const SimTime latency = migration_.policy().latency_for(m.bytes);
    if (latency > SimTime{0}) {
      // Bandwidth-limited copy: the move lands bytes/bandwidth later, and
      // the job is marked in flight so later scans skip it until it does.
      migration_.on_dispatch(m.job);
      engine_.schedule_in(latency, sim::EventClass::kMigration,
                          [this, m](SimTime) { apply_migration(m, true); });
    } else {
      apply_migration(m, false);
    }
  }
  if (live_jobs_ > 0) {
    engine_.schedule_in(options_.migration.check_interval,
                        sim::EventClass::kMigration,
                        [this](SimTime) { migration_check(); });
  }
}

void SchedulingSimulation::apply_migration(const MigrationDecision& decision,
                                           bool delayed) {
  if (delayed) migration_.on_applied(decision.job);
  const JobId id = decision.job;
  JobRuntime& r = rt_[id];
  // The copy may have raced the job's completion (kCompletion pops before
  // kMigration at one timestamp, so a finished job is already kDone here) —
  // the move is moot. Skipping is deterministic: it depends only on event
  // order.
  if (r.state != JobState::kRunning) return;
  const Allocation* alloc = cluster_.find_allocation(id);
  DMSCHED_ASSERT(alloc != nullptr, "apply_migration: running job unledgered");
  // Re-validate against the live ledger: other jobs started or finished
  // while the copy was in flight, so the capacity plan() saw may be gone.
  if (decision.kind == MigrationKind::kDemote) {
    if (cluster_.global_pool_free() < decision.bytes) return;
  } else {
    const Bytes pool_free =
        config_.pool_per_rack - cluster_.pool_used(decision.rack);
    if (pool_free < decision.bytes) return;
  }

  window_advance();
  const SimTime t = engine_.now();
  digest_fold('M');
  digest_fold(id);
  digest_fold(static_cast<std::uint64_t>(t.usec()));
  digest_fold(static_cast<std::uint64_t>(decision.kind));
  digest_fold(static_cast<std::uint64_t>(decision.bytes.count()));

  std::vector<PoolDraw> new_draws = rewrite_draws(*alloc, decision);
  cluster_.retier(id, std::move(new_draws));
  const Allocation* updated = cluster_.find_allocation(id);
  const Job& j = job(id);
  const double old_dilation = r.dilation;
  const double new_dilation = options_.slowdown.dilation_for(*updated, j);

  // Close the current dilation segment: bank the undilated work it covered,
  // then reprice the remaining work at the new rate. The completion event
  // moves accordingly (strictly later for a demotion, earlier for a
  // promotion — never before now, because t < r.end while we are here).
  r.work_done += (t - r.seg_start).scaled(1.0 / old_dilation);
  r.seg_start = t;
  const SimTime work_left = j.runtime - min(j.runtime, r.work_done);
  SimTime actual_left = work_left.scaled(new_dilation);
  r.killed = false;
  if (options_.kill_on_walltime && t + actual_left > r.start + j.walltime) {
    actual_left = r.start + j.walltime - t;
    r.killed = true;
  }
  r.end = t + actual_left;
  const SimTime old_expected = r.expected_end;
  const SimTime wall_left = j.walltime - min(j.walltime, r.work_done);
  r.expected_end = t + wall_left.scaled(new_dilation);

  const bool cancelled = engine_.cancel(r.completion_event);
  DMSCHED_ASSERT(cancelled, "apply_migration: completion already fired");
  r.completion_event =
      engine_.schedule_at(r.end, sim::EventClass::kCompletion,
                          [this, id](SimTime) { handle_complete(id); });
  // Refresh the availability timeline: the planning bound and the counted
  // take both changed, so incremental passes must see a version bump.
  timeline_.on_finish(id, old_expected);
  r.dilation = new_dilation;
  r.take = take_from_allocation(*updated, config_);
  r.far_rack = updated->rack_draw_total();
  r.far_neighbor = updated->neighbor_draw_total();
  r.far_global = updated->global_draw_total();
  timeline_.on_start(id, r.expected_end, r.take);

  if (decision.kind == MigrationKind::kDemote) {
    ++demotions_;
    demoted_bytes_ += decision.bytes;
  } else {
    ++promotions_;
    promoted_bytes_ += decision.bytes;
  }
  ++window_acc_.jobs_migrated;
  window_acc_.migrated_gib += decision.bytes.gib();
  if (options_.sink != nullptr) {
    obs::JobMigrated ev;
    ev.job = id;
    ev.at = t;
    ev.rack = decision.rack;
    ev.demote = decision.kind == MigrationKind::kDemote;
    ev.gib = decision.bytes.gib();
    ev.dilation_before = old_dilation;
    ev.dilation_after = new_dilation;
    guarded_emit([&] { options_.sink->on_job_migrated(ev); });
  }
  if (options_.audit_cluster) cluster_.audit();
  record_usage_change();
  request_schedule_pass();
}

bool SchedulingSimulation::pull_one() {
  Job j;
  if (trace_ != nullptr) {
    if (next_pull_ >= trace_->size()) {
      source_dry_ = true;
      return false;
    }
    j = trace_->jobs()[next_pull_++];
  } else {
    std::optional<Job> next = source_->next();
    if (!next.has_value()) {
      source_dry_ = true;
      return false;
    }
    j = *std::move(next);
  }
  // Trace::make enforces these for the eager path; sources are arbitrary
  // code, so re-check at the boundary.
  DMSCHED_ASSERT(j.nodes > 0, "pulled job requests no nodes");
  DMSCHED_ASSERT(j.runtime > SimTime{0}, "pulled job has no runtime");
  DMSCHED_ASSERT(j.walltime >= j.runtime, "pulled job walltime < runtime");
  DMSCHED_ASSERT(j.mem_per_node >= Bytes{0}, "pulled job memory negative");
  DMSCHED_ASSERT(j.gpus_per_node >= 0, "pulled job GPU count negative");
  DMSCHED_ASSERT(j.bb_bytes >= Bytes{0},
                 "pulled job burst-buffer request negative");
  DMSCHED_ASSERT(!pulled_any_ || j.submit >= last_pull_submit_,
                 "job input is not sorted by submission time");
  if (!pulled_any_) first_submit_ = j.submit;
  pulled_any_ = true;
  last_pull_submit_ = j.submit;

  // Ids are assigned in pull order; for a Trace (sorted, ids = indices)
  // this reproduces the job's own id.
  const JobId id = next_pull_id_++;
  j.id = id;
  rt_.emplace_back();

  // Static outcome fields are captured at pull time so the job record can
  // be dropped once terminal; dynamic fields are filled after the run.
  JobOutcome o;
  o.id = id;
  o.submit = j.submit;
  o.nodes = j.nodes;
  o.mem_per_node = j.mem_per_node;
  o.runtime = j.runtime;
  o.sensitivity = j.sensitivity;
  o.user = j.user;
  metrics_.jobs.push_back(o);

  const SimTime submit = j.submit;
  if (source_ != nullptr) live_jobs_rec_.emplace(id, std::move(j));
  ++live_jobs_;
  ++pending_submissions_;
  engine_.schedule_at(submit, sim::EventClass::kSubmission,
                      [this, id](SimTime) { handle_submit(id); });
  return true;
}

void SchedulingSimulation::refill_submissions() {
  const std::size_t target = options_.submit_lookahead;
  while (!source_dry_ && (target == 0 || pending_submissions_ < target)) {
    if (!pull_one()) break;
  }
}

void SchedulingSimulation::window_integrate(SimTime from, SimTime to) {
  const double dt = (to - from).seconds();
  if (dt <= 0.0) return;
  window_acc_.busy_node_seconds +=
      static_cast<double>(cluster_.busy_nodes()) * dt;
  window_acc_.queued_job_seconds += static_cast<double>(queue_.size()) * dt;
  window_acc_.running_job_seconds +=
      static_cast<double>(running_.size()) * dt;
  window_acc_.rack_pool_gib_seconds += cluster_.rack_pools_used().gib() * dt;
  window_acc_.global_pool_gib_seconds +=
      cluster_.global_pool_used().gib() * dt;
}

void SchedulingSimulation::window_advance() {
  const SimTime w = options_.checkpoint_interval;
  if (w <= SimTime{0}) return;
  const SimTime now = engine_.now();
  // Close every window whose boundary the clock has reached. State is
  // integrated with pre-mutation values, which is why every handler calls
  // this first.
  for (;;) {
    const SimTime boundary{(window_index_ + 1) * w.usec()};
    if (boundary > now) break;
    window_integrate(window_frontier_, boundary);
    window_acc_.start = SimTime{window_index_ * w.usec()};
    window_acc_.end = boundary;
    metrics_.windows.push_back(window_acc_);
    window_acc_ = MetricsWindow{};
    window_frontier_ = boundary;
    ++window_index_;
  }
  window_integrate(window_frontier_, now);
  window_frontier_ = now;
}

void SchedulingSimulation::flush_final_window() {
  const SimTime w = options_.checkpoint_interval;
  if (w <= SimTime{0}) return;
  const SimTime end = max(last_end_, window_frontier_);
  for (;;) {
    const SimTime boundary{(window_index_ + 1) * w.usec()};
    if (boundary > end) break;
    window_integrate(window_frontier_, boundary);
    window_acc_.start = SimTime{window_index_ * w.usec()};
    window_acc_.end = boundary;
    metrics_.windows.push_back(window_acc_);
    window_acc_ = MetricsWindow{};
    window_frontier_ = boundary;
    ++window_index_;
  }
  window_integrate(window_frontier_, end);
  window_frontier_ = end;
  // The trailing partial window is emitted only if it has any content —
  // a run that ends exactly on a boundary produces no empty extra window.
  const SimTime start{window_index_ * w.usec()};
  const bool has_counts =
      window_acc_.jobs_submitted > 0 || window_acc_.jobs_started > 0 ||
      window_acc_.jobs_finished > 0 || window_acc_.jobs_rejected > 0;
  if (end > start || has_counts) {
    window_acc_.start = start;
    window_acc_.end = end;
    metrics_.windows.push_back(window_acc_);
    window_acc_ = MetricsWindow{};
  }
}

void SchedulingSimulation::request_schedule_pass() {
  if (pass_pending_) return;
  pass_pending_ = true;
  engine_.schedule_at(engine_.now(), sim::EventClass::kSchedule,
                      [this](SimTime) { run_scheduler_pass(); });
}

void SchedulingSimulation::run_scheduler_pass() {
  pass_pending_ = false;
  ++pass_seq_;
  obs::TraceSink* const sink = options_.sink;
  const bool emit_pass =
      sink != nullptr && options_.trace_detail >= obs::TraceDetail::kSched;
  const bool want_gauges =
      (sink != nullptr && options_.trace_detail == obs::TraceDetail::kFull) ||
      options_.counters != nullptr;
  if (!emit_pass && !want_gauges) {
    scheduler_->schedule(*this);
    return;
  }

  // Snapshot pre-pass state and the policy's cumulative counters so the
  // span carries per-pass deltas. Everything here is observation: the
  // scheduler call in the middle is the same call the untraced path makes.
  const std::size_t depth_before = queue_.size();
  const std::size_t running_before = running_.size();
  const SchedulerStats* stats = scheduler_->stats();
  SchedulerStats before;
  if (stats != nullptr) before = *stats;
  // Wall-clock pass timing is a kFull (profiling) feature: two clock reads
  // per pass are the single largest fixed cost of pass spans, so kSched
  // spans carry wall_ns = 0 and stay cheap.
  const bool wall = emit_pass &&
                    options_.trace_detail == obs::TraceDetail::kFull;
  std::chrono::steady_clock::time_point wall0;
  if (wall) wall0 = std::chrono::steady_clock::now();

  scheduler_->schedule(*this);

  if (emit_pass) {
    obs::PassSpan span;
    span.seq = pass_seq_ - 1;
    span.at = engine_.now();
    span.kind = scheduler_->name();
    span.queue_depth = depth_before;
    span.running = running_before;
    // A pass only moves jobs queue -> running; submissions and completions
    // cannot interleave with it at one timestamp (distinct event classes).
    span.started = running_.size() - running_before;
    if (stats != nullptr) {
      span.examined =
          static_cast<std::int64_t>(stats->jobs_examined - before.jobs_examined);
      span.plans = static_cast<std::int64_t>(stats->plans_attempted -
                                             before.plans_attempted);
      span.fast_path = stats->fast_passes > before.fast_passes;
    }
    if (wall) {
      span.wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - wall0)
                         .count();
    }
    guarded_emit([&] { sink->on_pass(span); });
  }
  if (want_gauges) {
    obs::GaugeSample g;
    g.at = engine_.now();
    g.busy_nodes = cluster_.busy_nodes();
    g.queue_depth = queue_.size();
    g.running = running_.size();
    g.event_queue_size = pending_events();
    g.event_id_window = live_event_id_window();
    g.rack_pool_gib = cluster_.rack_pools_used().gib();
    g.global_pool_gib = cluster_.global_pool_used().gib();
    if (sink != nullptr &&
        options_.trace_detail == obs::TraceDetail::kFull) {
      guarded_emit([&] { sink->on_gauges(g); });
    }
    if (options_.counters != nullptr) {
      if (gauges_.queue_depth == nullptr) {
        // Resolve once per run: get-or-create returns deque-stable slots.
        obs::CounterRegistry& reg = *options_.counters;
        gauges_.queue_depth = &reg.gauge("queue_depth");
        gauges_.running_jobs = &reg.gauge("running_jobs");
        gauges_.event_queue_size = &reg.gauge("event_queue_size");
        gauges_.event_id_window = &reg.gauge("event_id_window");
        gauges_.busy_nodes = &reg.gauge("busy_nodes");
        gauges_.rack_pool_gib = &reg.gauge("rack_pool_gib");
        gauges_.global_pool_gib = &reg.gauge("global_pool_gib");
      }
      gauges_.queue_depth->set(static_cast<double>(g.queue_depth));
      gauges_.running_jobs->set(static_cast<double>(g.running));
      gauges_.event_queue_size->set(static_cast<double>(g.event_queue_size));
      gauges_.event_id_window->set(static_cast<double>(g.event_id_window));
      gauges_.busy_nodes->set(static_cast<double>(g.busy_nodes));
      gauges_.rack_pool_gib->set(g.rack_pool_gib);
      gauges_.global_pool_gib->set(g.global_pool_gib);
    }
  }
}

void SchedulingSimulation::handle_submit(JobId id) {
  DMSCHED_ASSERT(pending_submissions_ > 0, "submission accounting underflow");
  --pending_submissions_;
  // Refill the look-ahead window before anything else: the next pulled
  // submit is >= this one (nondecreasing input), so every replacement event
  // is queued before any later-time event can pop — which is what makes the
  // bounded window order-equivalent to the full pre-push.
  refill_submissions();
  window_advance();
  digest_fold('S');
  digest_fold(id);
  digest_fold(static_cast<std::uint64_t>(engine_.now().usec()));
  ++window_acc_.jobs_submitted;

  JobRuntime& r = rt_[id];  // after refill: pull_one may grow rt_
  DMSCHED_ASSERT(r.state == JobState::kPending, "double submission");
  const Job& j = job(id);
  if (!feasible_on_empty(config_, j, options_.placement)) {
    // The job cannot run on this machine shape at all (e.g. footprint above
    // local memory and no pool big enough). Table III counts these.
    r.state = JobState::kRejected;
    r.end = engine_.now();
    --live_jobs_;
    ++window_acc_.jobs_rejected;
    if (options_.sink != nullptr) {
      obs::JobRejected ev;
      ev.job = id;
      ev.at = engine_.now();
      guarded_emit([&] { options_.sink->on_job_rejected(ev); });
    }
    if (source_ != nullptr) live_jobs_rec_.erase(id);  // after last use of j
    return;
  }
  r.state = JobState::kQueued;
  queue_.push_back(rt_, id);
  queue_appends_.push_back(id);
  if (options_.sink != nullptr) {
    obs::JobQueued ev;
    ev.job = id;
    ev.submit = engine_.now();
    ev.nodes = j.nodes;
    ev.mem_per_node_gib = j.mem_per_node.gib();
    guarded_emit([&] { options_.sink->on_job_queued(ev); });
  }
  request_schedule_pass();
}

void SchedulingSimulation::start_job(JobId id, const Allocation& alloc) {
  window_advance();
  digest_fold('R');
  digest_fold(id);
  digest_fold(static_cast<std::uint64_t>(engine_.now().usec()));
  ++window_acc_.jobs_started;

  JobRuntime& r = rt_[id];
  DMSCHED_ASSERT(r.state == JobState::kQueued,
                 "start_job: job is not waiting");
  DMSCHED_ASSERT(alloc.job == id, "start_job: allocation/job id mismatch");
  const Job& j = job(id);
  DMSCHED_ASSERT(std::cmp_equal(alloc.nodes.size(), j.nodes),
                 "start_job: allocation node count != request");
  DMSCHED_ASSERT(alloc.local_per_node + alloc.far_per_node == j.mem_per_node,
                 "start_job: allocation does not cover the footprint");

  cluster_.commit(alloc);
  queue_.erase(rt_, id);
  running_.push_back(rt_, id);

  r.state = JobState::kRunning;
  r.start = engine_.now();
  r.seg_start = r.start;
  r.dilation = options_.slowdown.dilation_for(alloc, j);
  r.take = take_from_allocation(alloc, config_);
  r.far_rack = alloc.rack_draw_total();
  r.far_neighbor = alloc.neighbor_draw_total();
  r.far_global = alloc.global_draw_total();
  r.home_rack = config_.rack_of(alloc.nodes.front());

  SimTime actual = j.runtime.scaled(r.dilation);
  if (options_.kill_on_walltime && actual > j.walltime) {
    actual = j.walltime;
    r.killed = true;
  }
  r.end = engine_.now() + actual;
  r.expected_end = engine_.now() + j.walltime.scaled(r.dilation);
  timeline_.on_start(id, r.expected_end, r.take);
  r.completion_event =
      engine_.schedule_at(r.end, sim::EventClass::kCompletion,
                          [this, id](SimTime) { handle_complete(id); });
  if (options_.sink != nullptr) {
    obs::JobStarted ev;
    ev.job = id;
    ev.submit = j.submit;
    ev.start = r.start;
    ev.rack = r.home_rack;
    ev.nodes = j.nodes;
    ev.dilation = r.dilation;
    ev.far_rack_gib = r.far_rack.gib();
    ev.far_neighbor_gib = r.far_neighbor.gib();
    ev.far_global_gib = r.far_global.gib();
    guarded_emit([&] { options_.sink->on_job_started(ev); });
  }
  record_usage_change();
}

void SchedulingSimulation::handle_complete(JobId id) {
  window_advance();
  digest_fold('C');
  digest_fold(id);
  digest_fold(static_cast<std::uint64_t>(engine_.now().usec()));
  ++window_acc_.jobs_finished;

  JobRuntime& r = rt_[id];
  DMSCHED_ASSERT(r.state == JobState::kRunning, "completion of a non-running job");
  migration_.on_job_finished(id);
  cluster_.release(id);
  timeline_.on_finish(id, r.expected_end);
  if (options_.audit_cluster) cluster_.audit();
  running_.erase(rt_, id);
  r.state = JobState::kDone;
  --live_jobs_;
  last_end_ = max(last_end_, engine_.now());
  if (source_ != nullptr) live_jobs_rec_.erase(id);
  if (options_.sink != nullptr) {
    obs::JobFinished ev;
    ev.job = id;
    ev.start = r.start;
    ev.end = engine_.now();
    ev.rack = r.home_rack;
    ev.killed = r.killed;
    guarded_emit([&] { options_.sink->on_job_finished(ev); });
  }
  record_usage_change();
  request_schedule_pass();
}

RunMetrics SchedulingSimulation::run() {
  DMSCHED_ASSERT(!run_called_, "run() is single-shot");
  run_called_ = true;

  if (options_.sink != nullptr) {
    obs::RunInfo info;
    info.label = metrics_.label;
    info.cluster_name = config_.name;
    info.racks = config_.racks();
    info.total_nodes = config_.total_nodes;
    info.detail = options_.trace_detail;
    guarded_emit([&] { options_.sink->on_run_begin(info); });
  }

  // Prime the look-ahead window. An unbounded window (lookahead 0) pulls the
  // whole input here — the historical full pre-push; a bounded one schedules
  // only the first W submissions and handle_submit keeps it topped up.
  refill_submissions();
  record_usage_change();
  if (options_.sample_interval > SimTime{0} && pulled_any_) {
    engine_.schedule_at(first_submit_, sim::EventClass::kTimer,
                        [this](SimTime) { sample_series(); });
  }
  if (options_.migration.enabled() && pulled_any_) {
    engine_.schedule_at(first_submit_ + options_.migration.check_interval,
                        sim::EventClass::kMigration,
                        [this](SimTime) { migration_check(); });
  }

  engine_.run();
  DMSCHED_ASSERT(source_dry_ && pending_submissions_ == 0,
                 "simulation drained with submissions outstanding");
  DMSCHED_ASSERT(live_jobs_ == 0, "simulation drained with live jobs");
  DMSCHED_ASSERT(queue_.empty() && running_.empty(),
                 "simulation drained with queued/running jobs");
  DMSCHED_ASSERT(source_ == nullptr || live_jobs_rec_.empty(),
                 "streaming run leaked live job records");
  cluster_.audit();
  flush_final_window();

  // Assemble metrics.
  metrics_.makespan = last_end_;
  const double horizon = last_end_.seconds();
  if (horizon > 0.0) {
    metrics_.node_utilization = busy_nodes_tw_.finish(horizon) /
                                static_cast<double>(config_.total_nodes);
    const double rack_capacity =
        static_cast<double>(topology_.rack_tier_capacity().count());
    if (rack_capacity > 0.0) {
      metrics_.rack_pool_utilization =
          rack_pool_tw_.finish(horizon) / rack_capacity;
      metrics_.rack_pool_peak = rack_pool_tw_.peak() / rack_capacity;
      metrics_.rack_pool_busiest_peak =
          ratio(busiest_rack_pool_peak_, config_.pool_per_rack);
    }
    const double global_capacity =
        static_cast<double>(topology_.global_tier_capacity().count());
    if (global_capacity > 0.0) {
      metrics_.global_pool_utilization =
          global_pool_tw_.finish(horizon) / global_capacity;
      metrics_.global_pool_peak = global_pool_tw_.peak() / global_capacity;
    }
    if (config_.has_gpus()) {
      const double gpu_capacity = static_cast<double>(config_.total_gpus());
      metrics_.gpu_utilization = gpu_tw_.finish(horizon) / gpu_capacity;
      metrics_.gpu_peak = gpu_tw_.peak() / gpu_capacity;
    }
    if (config_.has_burst_buffer()) {
      const double bb_capacity =
          static_cast<double>(config_.bb_capacity.count());
      metrics_.bb_utilization = bb_tw_.finish(horizon) / bb_capacity;
      metrics_.bb_peak = bb_tw_.peak() / bb_capacity;
    }
  }
  // Static outcome fields were recorded at pull time (see pull_one); fill
  // in the dynamic fields now that every job is terminal.
  for (JobOutcome& o : metrics_.jobs) {
    const JobRuntime& r = rt_[o.id];
    o.fate = r.state == JobState::kRejected
                 ? JobFate::kRejected
                 : (r.killed ? JobFate::kKilled : JobFate::kCompleted);
    o.start = r.start;
    o.end = r.end;
    o.dilation = r.dilation;
    o.far_rack = r.far_rack;
    o.far_neighbor = r.far_neighbor;
    o.far_global = r.far_global;
  }
  metrics_.demotions = demotions_;
  metrics_.promotions = promotions_;
  metrics_.demoted_gib = demoted_bytes_.gib();
  metrics_.promoted_gib = promoted_bytes_.gib();
  metrics_.finalize();

  if (options_.sink != nullptr) {
    guarded_emit([&] { options_.sink->on_run_end(metrics_.makespan); });
  }
  fill_counters();

  return std::move(metrics_);
}

void SchedulingSimulation::fill_counters() {
  if (options_.counters == nullptr) return;
  obs::CounterRegistry& reg = *options_.counters;
  reg.counter("events_processed").add(engine_.events_processed());
  reg.counter("sched_passes").add(pass_seq_);
  reg.counter("jobs_submitted").add(metrics_.jobs.size());
  std::uint64_t completed = 0;
  std::uint64_t killed = 0;
  std::uint64_t rejected = 0;
  for (const JobOutcome& o : metrics_.jobs) {
    switch (o.fate) {
      case JobFate::kCompleted:
        ++completed;
        break;
      case JobFate::kKilled:
        ++killed;
        break;
      case JobFate::kRejected:
        ++rejected;
        break;
    }
  }
  reg.counter("jobs_completed").add(completed);
  reg.counter("jobs_killed").add(killed);
  reg.counter("jobs_rejected").add(rejected);
  if (options_.migration.enabled()) {
    // Gated on the knob so a migration-off counters dump stays identical to
    // the pre-migration format.
    reg.counter("migrations_demoted").add(demotions_);
    reg.counter("migrations_promoted").add(promotions_);
  }
  if (const SchedulerStats* stats = scheduler_->stats()) {
    reg.counter("sched_fast_passes").add(stats->fast_passes);
    reg.counter("sched_jobs_examined").add(stats->jobs_examined);
    reg.counter("sched_plans_attempted").add(stats->plans_attempted);
  }
  reg.gauge("event_id_window_peak")
      .set(static_cast<double>(engine_.peak_id_window()));
}

}  // namespace dmsched
