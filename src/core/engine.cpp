#include "core/engine.hpp"

#include <utility>

#include "common/assert.hpp"

namespace dmsched {

void SchedulingSimulation::JobList::push_back(std::vector<JobRuntime>& rt,
                                              JobId job) {
  JobRuntime& r = rt[job];
  DMSCHED_ASSERT(r.list == JobListId::kNone,
                 "JobList::push_back: job already linked into a list");
  r.list = id;
  r.list_prev = tail;
  r.list_next = kInvalidJobId;
  if (tail != kInvalidJobId) {
    rt[tail].list_next = job;
  } else {
    head = job;
  }
  tail = job;
  ++count;
}

void SchedulingSimulation::JobList::erase(std::vector<JobRuntime>& rt,
                                          JobId job) {
  JobRuntime& r = rt[job];
  // The checked removal: membership is asserted via the job's list slot, so
  // a bookkeeping bug aborts here instead of silently corrupting the list
  // (the old vector path erased whatever std::find returned, end() included).
  DMSCHED_ASSERT(r.list == id, "JobList::erase: job is not in this list");
  DMSCHED_ASSERT(count > 0, "JobList::erase: list count out of sync");
  if (r.list_prev != kInvalidJobId) {
    rt[r.list_prev].list_next = r.list_next;
  } else {
    head = r.list_next;
  }
  if (r.list_next != kInvalidJobId) {
    rt[r.list_next].list_prev = r.list_prev;
  } else {
    tail = r.list_prev;
  }
  r.list_prev = kInvalidJobId;
  r.list_next = kInvalidJobId;
  r.list = JobListId::kNone;
  --count;
}

std::vector<JobId> SchedulingSimulation::JobList::to_vector(
    const std::vector<JobRuntime>& rt) const {
  std::vector<JobId> ids;
  ids.reserve(count);
  for (JobId j = head; j != kInvalidJobId; j = rt[j].list_next) {
    ids.push_back(j);
  }
  DMSCHED_ASSERT(ids.size() == count, "JobList: link/count mismatch");
  return ids;
}

SchedulingSimulation::SchedulingSimulation(ClusterConfig config,
                                           const Trace& trace,
                                           std::unique_ptr<Scheduler> scheduler,
                                           EngineOptions options)
    : config_(std::move(config)),
      trace_(trace),
      scheduler_(std::move(scheduler)),
      options_(options),
      cluster_(config_),
      topology_(config_),
      timeline_(config_),
      rt_(trace.size()) {
  DMSCHED_ASSERT(scheduler_ != nullptr, "simulation needs a scheduler");
  metrics_.label = std::string(scheduler_->name()) + "/" + config_.name;
}

SimTime SchedulingSimulation::now() const { return engine_.now(); }

const Cluster& SchedulingSimulation::cluster() const { return cluster_; }

const Job& SchedulingSimulation::job(JobId id) const {
  return trace_.job(id);
}

std::vector<JobId> SchedulingSimulation::queued_jobs() const {
  std::vector<JobId> ids = queue_.to_vector(rt_);
  order_queue(ids, trace_.jobs(), options_.queue_order, engine_.now());
  return ids;
}

std::vector<RunningJob> SchedulingSimulation::running_jobs() const {
  std::vector<RunningJob> out;
  out.reserve(running_.size());
  for (JobId id = running_.head; id != kInvalidJobId;
       id = rt_[id].list_next) {
    const JobRuntime& r = rt_[id];
    out.push_back({id, r.expected_end, r.take});
  }
  return out;
}

PlacementPolicy SchedulingSimulation::placement() const {
  return options_.placement;
}

const SlowdownModel& SchedulingSimulation::slowdown() const {
  return options_.slowdown;
}

const Topology& SchedulingSimulation::topology() const { return topology_; }

const AvailabilityTimeline* SchedulingSimulation::timeline() const {
  return &timeline_;
}

bool SchedulingSimulation::queue_order_stable() const {
  // FCFS orders by (submit, id), which is exactly append order; every other
  // policy re-ranks the queue per pass, so suffixes are not incremental.
  return options_.queue_order == QueueOrder::kFcfs;
}

std::uint64_t SchedulingSimulation::queue_tail_epoch() const {
  return queue_appends_.size();
}

std::vector<JobId> SchedulingSimulation::queued_jobs_after(
    std::uint64_t epoch) const {
  DMSCHED_ASSERT(epoch <= queue_appends_.size(),
                 "queued_jobs_after: epoch from the future");
  std::vector<JobId> out;
  for (std::size_t i = epoch; i < queue_appends_.size(); ++i) {
    const JobId id = queue_appends_[i];
    if (rt_[id].state == JobState::kQueued) out.push_back(id);
  }
  return out;
}

TakePlan SchedulingSimulation::take_from_allocation(const Allocation& alloc,
                                                    const ClusterConfig& cfg) {
  return take_from(alloc, cfg);
}

void SchedulingSimulation::record_usage_change() {
  const double t = engine_.now().seconds();
  busy_nodes_tw_.record(t, static_cast<double>(cluster_.busy_nodes()));
  rack_pool_tw_.record(t, static_cast<double>(cluster_.rack_pools_used().count()));
  global_pool_tw_.record(t, static_cast<double>(cluster_.global_pool_used().count()));
  if (topology_.has_rack_tier()) {
    busiest_rack_pool_peak_ =
        max(busiest_rack_pool_peak_, cluster_.busiest_rack_pool_used());
  }
}

void SchedulingSimulation::sample_series() {
  TimeSample s;
  s.time = engine_.now();
  s.busy_nodes = cluster_.busy_nodes();
  s.queued_jobs = static_cast<std::int32_t>(queue_.size());
  s.running_jobs = static_cast<std::int32_t>(running_.size());
  s.rack_pool_used = cluster_.rack_pools_used();
  s.global_pool_used = cluster_.global_pool_used();
  metrics_.series.push_back(s);
  if (live_jobs_ > 0) {
    engine_.schedule_in(options_.sample_interval, sim::EventClass::kTimer,
                        [this](SimTime) { sample_series(); });
  }
}

void SchedulingSimulation::request_schedule_pass() {
  if (pass_pending_) return;
  pass_pending_ = true;
  engine_.schedule_at(engine_.now(), sim::EventClass::kSchedule,
                      [this](SimTime) {
                        pass_pending_ = false;
                        scheduler_->schedule(*this);
                      });
}

void SchedulingSimulation::handle_submit(JobId id) {
  JobRuntime& r = rt_[id];
  DMSCHED_ASSERT(r.state == JobState::kPending, "double submission");
  const Job& j = trace_.job(id);
  if (!feasible_on_empty(config_, j, options_.placement)) {
    // The job cannot run on this machine shape at all (e.g. footprint above
    // local memory and no pool big enough). Table III counts these.
    r.state = JobState::kRejected;
    r.end = engine_.now();
    --live_jobs_;
    return;
  }
  r.state = JobState::kQueued;
  queue_.push_back(rt_, id);
  queue_appends_.push_back(id);
  request_schedule_pass();
}

void SchedulingSimulation::start_job(JobId id, const Allocation& alloc) {
  JobRuntime& r = rt_[id];
  DMSCHED_ASSERT(r.state == JobState::kQueued,
                 "start_job: job is not waiting");
  DMSCHED_ASSERT(alloc.job == id, "start_job: allocation/job id mismatch");
  const Job& j = trace_.job(id);
  DMSCHED_ASSERT(std::cmp_equal(alloc.nodes.size(), j.nodes),
                 "start_job: allocation node count != request");
  DMSCHED_ASSERT(alloc.local_per_node + alloc.far_per_node == j.mem_per_node,
                 "start_job: allocation does not cover the footprint");

  cluster_.commit(alloc);
  queue_.erase(rt_, id);
  running_.push_back(rt_, id);

  r.state = JobState::kRunning;
  r.start = engine_.now();
  r.dilation = options_.slowdown.dilation_for(alloc, j);
  r.take = take_from_allocation(alloc, config_);
  r.far_rack = alloc.rack_draw_total();
  r.far_global = alloc.global_draw_total();

  SimTime actual = j.runtime.scaled(r.dilation);
  if (options_.kill_on_walltime && actual > j.walltime) {
    actual = j.walltime;
    r.killed = true;
  }
  r.end = engine_.now() + actual;
  r.expected_end = engine_.now() + j.walltime.scaled(r.dilation);
  timeline_.on_start(id, r.expected_end, r.take);
  engine_.schedule_at(r.end, sim::EventClass::kCompletion,
                      [this, id](SimTime) { handle_complete(id); });
  record_usage_change();
}

void SchedulingSimulation::handle_complete(JobId id) {
  JobRuntime& r = rt_[id];
  DMSCHED_ASSERT(r.state == JobState::kRunning, "completion of a non-running job");
  cluster_.release(id);
  timeline_.on_finish(id, r.expected_end);
  if (options_.audit_cluster) cluster_.audit();
  running_.erase(rt_, id);
  r.state = JobState::kDone;
  --live_jobs_;
  last_end_ = max(last_end_, engine_.now());
  record_usage_change();
  request_schedule_pass();
}

RunMetrics SchedulingSimulation::run() {
  DMSCHED_ASSERT(!run_called_, "run() is single-shot");
  run_called_ = true;
  live_jobs_ = trace_.size();

  for (const Job& j : trace_.jobs()) {
    engine_.schedule_at(j.submit, sim::EventClass::kSubmission,
                        [this, id = j.id](SimTime) { handle_submit(id); });
  }
  record_usage_change();
  if (options_.sample_interval > SimTime{0} && !trace_.empty()) {
    engine_.schedule_at(trace_.jobs().front().submit,
                        sim::EventClass::kTimer,
                        [this](SimTime) { sample_series(); });
  }

  engine_.run();
  DMSCHED_ASSERT(live_jobs_ == 0, "simulation drained with live jobs");
  DMSCHED_ASSERT(queue_.empty() && running_.empty(),
                 "simulation drained with queued/running jobs");
  cluster_.audit();

  // Assemble metrics.
  metrics_.makespan = last_end_;
  const double horizon = last_end_.seconds();
  if (horizon > 0.0) {
    metrics_.node_utilization = busy_nodes_tw_.finish(horizon) /
                                static_cast<double>(config_.total_nodes);
    const double rack_capacity =
        static_cast<double>(topology_.rack_tier_capacity().count());
    if (rack_capacity > 0.0) {
      metrics_.rack_pool_utilization =
          rack_pool_tw_.finish(horizon) / rack_capacity;
      metrics_.rack_pool_peak = rack_pool_tw_.peak() / rack_capacity;
      metrics_.rack_pool_busiest_peak =
          ratio(busiest_rack_pool_peak_, config_.pool_per_rack);
    }
    const double global_capacity =
        static_cast<double>(topology_.global_tier_capacity().count());
    if (global_capacity > 0.0) {
      metrics_.global_pool_utilization =
          global_pool_tw_.finish(horizon) / global_capacity;
      metrics_.global_pool_peak = global_pool_tw_.peak() / global_capacity;
    }
  }
  metrics_.jobs.reserve(trace_.size());
  for (const Job& j : trace_.jobs()) {
    const JobRuntime& r = rt_[j.id];
    JobOutcome o;
    o.id = j.id;
    o.fate = r.state == JobState::kRejected
                 ? JobFate::kRejected
                 : (r.killed ? JobFate::kKilled : JobFate::kCompleted);
    o.submit = j.submit;
    o.start = r.start;
    o.end = r.end;
    o.dilation = r.dilation;
    o.far_rack = r.far_rack;
    o.far_global = r.far_global;
    o.nodes = j.nodes;
    o.mem_per_node = j.mem_per_node;
    o.runtime = j.runtime;
    o.sensitivity = j.sensitivity;
    o.user = j.user;
    metrics_.jobs.push_back(o);
  }
  metrics_.finalize();
  return std::move(metrics_);
}

}  // namespace dmsched
