// The paper's contribution: disaggregation-aware EASY backfilling, plus the
// adaptive defer-vs-dilate variant.
//
// Differences from the memory-unaware baseline (sched/easy.cpp):
//  1. The head job's reservation is computed over the FULL 2-D resource
//     profile (free nodes AND free pool bytes per rack/global), so a
//     memory-blocked head actually gets a protected start time.
//  2. A backfill candidate that cannot be proven to finish before the head's
//     reservation is accepted only if re-fitting the head *with the
//     candidate's resources held* does not delay the head. This check is in
//     the same 2-D space, so backfills can no longer starve the head of
//     pool bytes (the baseline's failure mode).
//  3. Optionally (adaptive mode), every start decision minimizes *estimated
//     completion*: starting now with expensive global-pool spillage is
//     weighed against reserving a later start fed by cheaper rack-local
//     pool. This is the defer-vs-dilate tradeoff.
#pragma once

#include <cstddef>
#include <vector>

#include "common/resources.hpp"
#include "sched/profile.hpp"
#include "sched/scheduler.hpp"

namespace dmsched {

/// Order in which backfill candidates are examined.
enum class BackfillOrder {
  kQueueOrder,     ///< queue-policy order (classic)
  kShortestFirst,  ///< shortest requested walltime first
  kBestMemFit,     ///< largest per-node memory deficit first
};

[[nodiscard]] const char* to_string(BackfillOrder order);

/// Tuning for MemAwareEasyScheduler.
struct MemAwareOptions {
  BackfillOrder order = BackfillOrder::kQueueOrder;
  /// Max backfill candidates examined per pass (each costs one profile
  /// sweep in the worst case).
  std::size_t backfill_window = 256;
  /// EASY-K: how many blocked queue-front jobs receive protected
  /// reservations. 1 is classic EASY (head only); larger values trade
  /// backfill aggressiveness for fairness to the queue front, interpolating
  /// toward conservative backfilling.
  std::size_t reservation_depth = 1;
  /// Enable defer-vs-dilate: choose the start (now vs reserved-later, with
  /// the dilation each option implies) minimizing estimated completion.
  bool adaptive = false;
  /// Deferral must win by at least this margin (seconds) — hysteresis so
  /// marginal predictions do not hold resources idle.
  double adaptive_margin_sec = 0.0;
  /// Tier-headroom shield: a *backfill* may not push a pool tier's remaining
  /// free capacity below this fraction of the tier (rack tier in aggregate,
  /// global tier separately) — the headroom is read from the topology model
  /// (Topology::headroom) and kept for the reserved queue front, which
  /// starts regardless. 0 (default) disables the shield.
  double reserve_headroom = 0.0;
  /// Which optional resource axes this scheduler *plans* with. The default
  /// is the paper's memory-only policy (plans see nodes + memory, blind to
  /// GPUs and burst buffer); ResourceAxes::all() instantiates
  /// resource-aware-EASY from the same template. On machines that provision
  /// an axis the policy is blind to, every start is revalidated against the
  /// full cluster ledger first — plans may be wrong, starts never are. On
  /// legacy machines (no GPUs, no burst buffer) all instantiations are
  /// byte-identical.
  ResourceAxes axes = ResourceAxes::memory_only();
};

/// Memory-aware EASY backfilling (see file header).
///
/// Incremental passes: the reservation profile and the protected baseline
/// persist across passes. When the context's availability timeline reports
/// no resource movement since a converged pass (clean profile sync), phase 1
/// (head starts) and phase 2 (baseline reservations) are skipped — both are
/// provably byte-identical to a recompute — and only the backfill-candidate
/// loop runs. The cache arms itself only in the plainest configuration
/// (queue-order candidates, non-adaptive, full reservation window, every
/// reservation strictly in the future): those are the conditions under which
/// the skip is a proof, not a heuristic.
class MemAwareEasyScheduler final : public Scheduler {
 public:
  /// One protected reservation of the queue front.
  struct Reservation {
    JobId id = kInvalidJobId;
    SimTime start{};
    SimTime finish_bound{};
  };

  explicit MemAwareEasyScheduler(MemAwareOptions options = {});

  [[nodiscard]] const char* name() const override {
    if (options_.adaptive) return "adaptive";
    return options_.axes.all_on() ? "resource-easy" : "mem-easy";
  }
  [[nodiscard]] bool memory_aware() const override { return true; }
  [[nodiscard]] const SchedulerStats* stats() const override {
    return &stats_;
  }
  void schedule(SchedContext& ctx) override;

 private:
  MemAwareOptions options_;
  SchedulerStats stats_;

  /// Release profile carried across passes (holds only transient).
  FreeProfile profile_;
  bool cache_valid_ = false;
  SimTime last_now_{};
  /// The reserved queue prefix and its baseline, as of the cached pass.
  std::vector<JobId> reserved_jobs_;
  std::vector<Reservation> baseline_;
};

}  // namespace dmsched
