#include "core/sweep.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "common/assert.hpp"

namespace dmsched {

void parallel_for_index(std::size_t count, unsigned threads,
                        const std::function<void(std::size_t)>& fn) {
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  if (count == 0) return;
  if (threads == 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  // An exception escaping a jthread would std::terminate the process; capture
  // the first one, drain the remaining indices, and rethrow on the caller's
  // thread so parallel and serial execution have the same failure contract.
  std::exception_ptr first_error;
  std::mutex error_mutex;
  {
    std::vector<std::jthread> workers;
    const unsigned n = static_cast<unsigned>(
        std::min<std::size_t>(threads, count));
    workers.reserve(n);
    for (unsigned w = 0; w < n; ++w) {
      workers.emplace_back([&next, count, &fn, &first_error, &error_mutex] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= count) return;
          try {
            fn(i);
          } catch (...) {
            const std::lock_guard<std::mutex> lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
            // Claim all remaining work so every worker winds down promptly.
            next.store(count, std::memory_order_relaxed);
            return;
          }
        }
      });
    }
  }  // jthread joins here
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<RunMetrics> run_sweep(const std::vector<ExperimentConfig>& configs,
                                  unsigned threads) {
  std::vector<RunMetrics> results(configs.size());
  parallel_for_index(configs.size(), threads, [&](std::size_t i) {
    results[i] = run_experiment(configs[i]);
  });
  return results;
}

std::vector<RunMetrics> run_sweep_on_trace(
    const std::vector<ExperimentConfig>& configs, const Trace& trace,
    unsigned threads) {
  std::vector<RunMetrics> results(configs.size());
  parallel_for_index(configs.size(), threads, [&](std::size_t i) {
    results[i] = run_experiment(configs[i], trace);
  });
  return results;
}

}  // namespace dmsched
