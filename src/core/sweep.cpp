#include "core/sweep.hpp"

namespace dmsched {

void parallel_for_chunked(std::size_t count, const SweepOptions& options,
                          const std::function<void(std::size_t)>& fn) {
  ParallelForOptions runtime_options;
  runtime_options.parallelism = options.threads;
  runtime_options.chunk = options.chunk;
  runtime_options.executor = options.executor;
  parallel_for(count, runtime_options, fn);
}

void parallel_for_index(std::size_t count, unsigned threads,
                        const std::function<void(std::size_t)>& fn) {
  parallel_for_chunked(count, SweepOptions{threads, /*chunk=*/1}, fn);
}

std::vector<RunMetrics> run_sweep(const std::vector<ExperimentConfig>& configs,
                                  const SweepOptions& options) {
  std::vector<RunMetrics> results(configs.size());
  parallel_for_chunked(configs.size(), options, [&](std::size_t i) {
    results[i] = run_experiment(configs[i]);
  });
  return results;
}

std::vector<RunMetrics> run_sweep_on_trace(
    const std::vector<ExperimentConfig>& configs, const Trace& trace,
    const SweepOptions& options) {
  std::vector<RunMetrics> results(configs.size());
  parallel_for_chunked(configs.size(), options, [&](std::size_t i) {
    results[i] = run_experiment(configs[i], trace);
  });
  return results;
}

std::vector<RunMetrics> run_sweep(const std::vector<ExperimentConfig>& configs,
                                  unsigned threads) {
  return run_sweep(configs, SweepOptions{threads, /*chunk=*/0});
}

std::vector<RunMetrics> run_sweep_on_trace(
    const std::vector<ExperimentConfig>& configs, const Trace& trace,
    unsigned threads) {
  return run_sweep_on_trace(configs, trace, SweepOptions{threads, /*chunk=*/0});
}

}  // namespace dmsched
