#include "core/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "common/assert.hpp"

namespace dmsched {

namespace {

unsigned resolve_threads(unsigned threads) {
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  return threads;
}

}  // namespace

std::size_t auto_chunk_size(std::size_t count, unsigned threads) {
  threads = resolve_threads(threads);
  // Aim for ~8 chunks per worker: grabs stay rare (one atomic RMW per chunk
  // instead of per index) while stragglers can still be rebalanced.
  const std::size_t chunk = count / (std::size_t{8} * threads);
  return std::clamp<std::size_t>(chunk, 1, 64);
}

void parallel_for_chunked(std::size_t count, const SweepOptions& options,
                          const std::function<void(std::size_t)>& fn) {
  const unsigned threads = resolve_threads(options.threads);
  if (count == 0) return;
  if (threads == 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // Clamp to count so oversized chunk requests cannot overflow the
  // num_chunks arithmetic (and a single chunk is all they can mean anyway).
  const std::size_t chunk = std::min(
      count,
      options.chunk == 0 ? auto_chunk_size(count, threads) : options.chunk);
  const std::size_t num_chunks = (count + chunk - 1) / chunk;
  std::atomic<std::size_t> next_chunk{0};
  // An exception escaping a jthread would std::terminate the process; capture
  // the first one, drain the remaining chunks, and rethrow on the caller's
  // thread so parallel and serial execution have the same failure contract.
  std::exception_ptr first_error;
  std::mutex error_mutex;
  {
    std::vector<std::jthread> workers;
    const unsigned n = static_cast<unsigned>(
        std::min<std::size_t>(threads, num_chunks));
    workers.reserve(n);
    for (unsigned w = 0; w < n; ++w) {
      workers.emplace_back([&next_chunk, num_chunks, chunk, count, &fn,
                            &first_error, &error_mutex] {
        for (;;) {
          const std::size_t c =
              next_chunk.fetch_add(1, std::memory_order_relaxed);
          if (c >= num_chunks) return;
          const std::size_t begin = c * chunk;
          const std::size_t end = std::min(count, begin + chunk);
          for (std::size_t i = begin; i < end; ++i) {
            try {
              fn(i);
            } catch (...) {
              const std::lock_guard<std::mutex> lock(error_mutex);
              if (!first_error) first_error = std::current_exception();
              // Claim all remaining chunks so every worker winds down
              // promptly.
              next_chunk.store(num_chunks, std::memory_order_relaxed);
              return;
            }
          }
        }
      });
    }
  }  // jthread joins here
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for_index(std::size_t count, unsigned threads,
                        const std::function<void(std::size_t)>& fn) {
  parallel_for_chunked(count, SweepOptions{threads, /*chunk=*/1}, fn);
}

std::vector<RunMetrics> run_sweep(const std::vector<ExperimentConfig>& configs,
                                  const SweepOptions& options) {
  std::vector<RunMetrics> results(configs.size());
  parallel_for_chunked(configs.size(), options, [&](std::size_t i) {
    results[i] = run_experiment(configs[i]);
  });
  return results;
}

std::vector<RunMetrics> run_sweep_on_trace(
    const std::vector<ExperimentConfig>& configs, const Trace& trace,
    const SweepOptions& options) {
  std::vector<RunMetrics> results(configs.size());
  parallel_for_chunked(configs.size(), options, [&](std::size_t i) {
    results[i] = run_experiment(configs[i], trace);
  });
  return results;
}

std::vector<RunMetrics> run_sweep(const std::vector<ExperimentConfig>& configs,
                                  unsigned threads) {
  return run_sweep(configs, SweepOptions{threads, /*chunk=*/0});
}

std::vector<RunMetrics> run_sweep_on_trace(
    const std::vector<ExperimentConfig>& configs, const Trace& trace,
    unsigned threads) {
  return run_sweep_on_trace(configs, trace, SweepOptions{threads, /*chunk=*/0});
}

}  // namespace dmsched
