#include "core/mem_aware_easy.hpp"

#include <algorithm>
#include <optional>

#include "common/assert.hpp"

namespace dmsched {

const char* to_string(BackfillOrder order) {
  switch (order) {
    case BackfillOrder::kQueueOrder: return "queue-order";
    case BackfillOrder::kShortestFirst: return "shortest-first";
    case BackfillOrder::kBestMemFit: return "best-mem-fit";
  }
  return "?";
}

MemAwareEasyScheduler::MemAwareEasyScheduler(MemAwareOptions options)
    : options_(options) {
  DMSCHED_ASSERT(options_.backfill_window > 0, "mem-easy: zero window");
  DMSCHED_ASSERT(options_.reservation_depth > 0,
                 "mem-easy: need at least the head reservation");
}

namespace {

using Reservation = MemAwareEasyScheduler::Reservation;

/// A start option: when, with what resources, at what dilation cost.
struct FitChoice {
  FreeProfile::Fit fit;
  double dilation = 1.0;
  /// Walltime-bounded completion estimate: fit.time + walltime × dilation.
  SimTime finish_bound{};
};

/// Estimated-finish evaluation of the earliest *window* fit under `policy`.
/// Window fitting is required once reservations (future holds) are in the
/// profile; on a monotone profile it equals the instantaneous fit.
std::optional<FitChoice> evaluate_fit(const FreeProfile& profile,
                                      const Job& job, const SchedContext& ctx,
                                      PlacementPolicy policy) {
  const auto duration_of = [&](const TakePlan& plan) {
    const double dil = ctx.slowdown().dilation_bytes(
        plan.rack_pool_total(), plan.neighbor_pool_total(),
        plan.global_total(), job.total_mem(), job.sensitivity);
    return job.walltime.scaled(dil);
  };
  auto fit = profile.earliest_fit_window(job, policy, duration_of);
  if (!fit) return std::nullopt;
  const double dil = ctx.slowdown().dilation_bytes(
      fit->plan.rack_pool_total(), fit->plan.neighbor_pool_total(),
      fit->plan.global_total(), job.total_mem(), job.sensitivity);
  FitChoice choice{std::move(*fit), dil, SimTime{}};
  choice.finish_bound = choice.fit.time + job.walltime.scaled(dil);
  return choice;
}

/// Plain mode: earliest fit under the configured policy. Adaptive mode:
/// also evaluate a rack-pool-only start and pick whichever finishes sooner
/// (deferral must win by the configured margin). `base` is the planning
/// policy — the context's placement with this scheduler's axes applied.
std::optional<FitChoice> choose_fit(const FreeProfile& profile, const Job& job,
                                    const SchedContext& ctx,
                                    const MemAwareOptions& opts,
                                    const PlacementPolicy& base) {
  auto primary = evaluate_fit(profile, job, ctx, base);
  if (!opts.adaptive || base.routing == PoolRouting::kRackOnly) {
    return primary;
  }
  PlacementPolicy rack_only = base;
  rack_only.routing = PoolRouting::kRackOnly;
  auto alt = evaluate_fit(profile, job, ctx, rack_only);
  if (!primary) return alt;
  if (!alt) return primary;
  if (alt->finish_bound.seconds() + opts.adaptive_margin_sec <
      primary->finish_bound.seconds()) {
    return alt;  // waiting for cheap rack memory beats dilating now
  }
  return primary;
}

/// Compute reservations for `jobs` in order, adding each one's hold to the
/// profile so later reservations (and backfill checks) respect it.
std::vector<Reservation> place_reservations(FreeProfile& profile,
                                            const std::vector<JobId>& jobs,
                                            const SchedContext& ctx,
                                            const MemAwareOptions& opts,
                                            const PlacementPolicy& planning) {
  std::vector<Reservation> reservations;
  reservations.reserve(jobs.size());
  for (const JobId id : jobs) {
    const Job& job = ctx.job(id);
    const auto choice = choose_fit(profile, job, ctx, opts, planning);
    // Admitted jobs always fit once the profile drains.
    DMSCHED_ASSERT(choice.has_value(),
                   "mem-easy: admitted job has no reservation");
    profile.add_hold(choice->fit.time, choice->finish_bound,
                     choice->fit.plan);
    reservations.push_back({id, choice->fit.time, choice->finish_bound});
  }
  return reservations;
}

/// Tier-headroom shield: true when starting `take` now would leave each
/// pool tier at least `reserve` of its capacity free. Reads the remaining
/// capacity through the topology model, so the check is about *tiers*, not
/// individual racks — the rack tier is judged in aggregate (a balanced
/// machine can concentrate its remaining bytes in one rack and still serve
/// the head), the global tier on its own.
bool leaves_tier_headroom(const SchedContext& ctx, const ResourceState& state,
                          const TakePlan& take, double reserve) {
  const Topology& topo = ctx.topology();
  const TierHeadroom head = topo.headroom(state);
  if (topo.has_rack_tier()) {
    const Bytes floor{static_cast<std::int64_t>(
        static_cast<double>(topo.rack_tier_capacity().count()) * reserve)};
    if (head.rack_pool_free - min(head.rack_pool_free, take.rack_tier_total())
        < floor) {
      return false;
    }
  }
  if (topo.has_global_tier()) {
    const Bytes floor{static_cast<std::int64_t>(
        static_cast<double>(topo.global_tier_capacity().count()) * reserve)};
    if (head.global_free - min(head.global_free, take.global_total()) <
        floor) {
      return false;
    }
  }
  return true;
}

/// True when `fresh` does not delay any job relative to `baseline`
/// (pairwise by index: same jobs, same order).
bool no_regression(const std::vector<Reservation>& baseline,
                   const std::vector<Reservation>& fresh) {
  DMSCHED_ASSERT(baseline.size() == fresh.size(),
                 "reservation recount mismatch");
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    if (fresh[i].start > baseline[i].start) return false;
    if (fresh[i].finish_bound > baseline[i].finish_bound) return false;
  }
  return true;
}

}  // namespace

void MemAwareEasyScheduler::schedule(SchedContext& ctx) {
  ++stats_.passes;
  auto queue = ctx.queued_jobs();
  std::size_t qi = 0;
  const SimTime now = ctx.now();
  const ClusterConfig& config = ctx.cluster().config();

  // The planning policy: the context's placement narrowed to this
  // scheduler's axes. The memory-only instantiation plans blind to GPUs and
  // burst buffer; on machines that provision a blind axis every start must
  // be revalidated against the full ledger (plans may be wrong, starts never
  // are). On legacy machines `revalidate` is false and the planning policy
  // equals the context's, so this block changes nothing — byte-identical.
  PlacementPolicy planning = ctx.placement();
  planning.axes = options_.axes;
  const bool revalidate =
      (!options_.axes.gpus && config.has_gpus()) ||
      (!options_.axes.burst_buffer && config.has_burst_buffer());

  // A clean sync proves nothing moved since the last pass. If that pass
  // converged with a fully-armed cache, phases 1 and 2 are skipped: every
  // head fit and every baseline reservation sits at a release breakpoint or
  // a hold bound derived from one, all strictly beyond now, so recomputing
  // them from the identical state would reproduce them bit for bit.
  const bool clean = profile_.sync(ctx);
  const bool fast =
      clean && cache_valid_ && ctx.queue_order_stable() && now >= last_now_;
  cache_valid_ = false;
  bool any_start = false;
  if (fast) ++stats_.fast_passes;

  if (!fast) {
    profile_.drop_holds();

    // Phase 1: start from the head while the chosen fit is "now". The
    // profile is re-synced after every start (the start changed the base
    // state, so the sync rebuilds).
    while (qi < queue.size()) {
      const Job& head = ctx.job(queue[qi]);
      ++stats_.jobs_examined;
      ++stats_.plans_attempted;
      auto choice = choose_fit(profile_, head, ctx, options_, planning);
      DMSCHED_ASSERT(choice.has_value(),
                     "mem-easy: admitted head job has no fit at drain");
      if (choice->fit.time > now) break;
      if (revalidate) {
        // The blind plan says "now", but an unplanned axis may be exhausted;
        // replan against the live ledger with every axis on. A failed
        // replan means the head is physically blocked — it waits.
        auto alloc = plan_start(ctx.cluster(), head, ctx.placement());
        if (!alloc) break;
        ctx.start_job(queue[qi], *alloc);
      } else {
        const Allocation alloc =
            materialize(ctx.cluster(), head, choice->fit.plan);
        ctx.start_job(queue[qi], alloc);
      }
      any_start = true;
      profile_.sync(ctx);
      ++qi;
    }
    if (qi >= queue.size()) return;

    // Phase 2: the first K blocked jobs receive protected reservations
    // (EASY-K; K=1 is classic EASY). `profile_` carries only releases and
    // accepted backfills; reservations are recomputed from it on demand so
    // candidate what-if checks can rebuild them cheaply.
    const std::size_t depth =
        std::min(options_.reservation_depth, queue.size() - qi);
    reserved_jobs_.assign(
        queue.begin() + static_cast<std::ptrdiff_t>(qi),
        queue.begin() + static_cast<std::ptrdiff_t>(qi + depth));
    const auto baseline_mark = profile_.mark();
    baseline_ =
        place_reservations(profile_, reserved_jobs_, ctx, options_, planning);
    profile_.rollback(baseline_mark);
  }
  // Fast pass: heads are still blocked and baseline_/reserved_jobs_ are
  // exactly what phases 1–2 would recompute; qi stays 0 because nothing
  // left the queue since.

  // Phase 3: examine backfill candidates (everything behind the reserved
  // prefix). Identical in fast and full passes.
  const std::size_t depth = reserved_jobs_.size();
  DMSCHED_ASSERT(queue.size() >= qi + depth &&
                     std::equal(reserved_jobs_.begin(), reserved_jobs_.end(),
                                queue.begin() +
                                    static_cast<std::ptrdiff_t>(qi)),
                 "mem-easy: cached reserved prefix diverged from the queue");
  std::vector<JobId> candidates(
      queue.begin() + static_cast<std::ptrdiff_t>(qi + depth), queue.end());
  switch (options_.order) {
    case BackfillOrder::kQueueOrder:
      break;
    case BackfillOrder::kShortestFirst:
      std::stable_sort(candidates.begin(), candidates.end(),
                       [&](JobId a, JobId b) {
                         return ctx.job(a).walltime < ctx.job(b).walltime;
                       });
      break;
    case BackfillOrder::kBestMemFit:
      std::stable_sort(candidates.begin(), candidates.end(),
                       [&](JobId a, JobId b) {
                         const Bytes local = config.local_mem_per_node;
                         const Bytes da =
                             ctx.job(a).mem_per_node -
                             min(ctx.job(a).mem_per_node, local);
                         const Bytes db =
                             ctx.job(b).mem_per_node -
                             min(ctx.job(b).mem_per_node, local);
                         return da > db;  // hardest-to-place first
                       });
      break;
  }

  std::size_t examined = 0;
  for (JobId cid : candidates) {
    if (examined >= options_.backfill_window) break;
    ++examined;
    ++stats_.jobs_examined;
    const Job& cand = ctx.job(cid);
    const ResourceState state_now = profile_.state_at(now);
    ++stats_.plans_attempted;
    auto take = compute_take(state_now, config, cand, planning);
    if (!take) continue;

    // Tier-headroom shield: skip backfills that would drain a pool tier
    // below the configured reserve (kept for the protected queue front).
    if (options_.reserve_headroom > 0.0 &&
        !take->far_per_node.is_zero() &&
        !leaves_tier_headroom(ctx, state_now, *take,
                              options_.reserve_headroom)) {
      continue;
    }

    const double dil = ctx.slowdown().dilation_bytes(
        take->rack_pool_total(), take->neighbor_pool_total(),
        take->global_total(), cand.total_mem(), cand.sensitivity);

    // Adaptive veto: skip a backfill that spills to the global tier when a
    // rack-pool-fed start later would finish sooner anyway.
    if (options_.adaptive && !take->global_total().is_zero()) {
      PlacementPolicy rack_only = planning;
      rack_only.routing = PoolRouting::kRackOnly;
      const auto alt = evaluate_fit(profile_, cand, ctx, rack_only);
      const SimTime now_finish = now + cand.walltime.scaled(dil);
      if (alt && alt->finish_bound.seconds() + options_.adaptive_margin_sec <
                     now_finish.seconds()) {
        continue;
      }
    }

    const SimTime end_bound = now + cand.walltime.scaled(dil);
    const auto mark = profile_.mark();
    profile_.add_hold(now, end_bound, *take);
    // Fast path: a candidate that returns everything before the earliest
    // reservation begins cannot delay any reservation.
    bool accept = !baseline_.empty() && end_bound <= baseline_.front().start;
    if (!accept) {
      // What-if: recompute all reservations with the candidate held and
      // require that none regresses.
      const auto what_if_mark = profile_.mark();
      const std::vector<Reservation> fresh =
          place_reservations(profile_, reserved_jobs_, ctx, options_, planning);
      profile_.rollback(what_if_mark);
      accept = no_regression(baseline_, fresh);
    }
    if (!accept) {
      profile_.rollback(mark);
      continue;
    }
    if (revalidate) {
      // Replan against the live ledger with every axis on: a blind backfill
      // must not start on an exhausted GPU rack or a full burst buffer.
      const auto physical =
          compute_take(snapshot(ctx.cluster()), config, cand, ctx.placement());
      if (!physical) {
        profile_.rollback(mark);
        continue;
      }
      const Allocation alloc = materialize(ctx.cluster(), cand, *physical);
      ctx.start_job(cid, alloc);
    } else {
      const Allocation alloc = materialize(ctx.cluster(), cand, *take);
      ctx.start_job(cid, alloc);
    }
    any_start = true;
  }

  // Arm the cache only where the phase-1/2 skip is a proof (see header):
  // nothing started (so the timeline version still matches the sync), queue
  // order is append-stable and candidates are walked in it, non-adaptive
  // (loser-fit comparisons are not time-shift-invariant), the reservation
  // window is fully populated (a new arrival must never become reserved),
  // and every baseline reservation starts strictly after now.
  if (!any_start && ctx.timeline() != nullptr && ctx.queue_order_stable() &&
      options_.order == BackfillOrder::kQueueOrder && !options_.adaptive &&
      reserved_jobs_.size() == options_.reservation_depth &&
      std::all_of(baseline_.begin(), baseline_.end(),
                  [&](const Reservation& r) { return r.start > now; })) {
    cache_valid_ = true;
  }
  last_now_ = now;
}

}  // namespace dmsched
