#include "core/experiment.hpp"

namespace dmsched {

Trace make_workload(const ExperimentConfig& config) {
  return make_model_trace(config.model, config.jobs, config.seed,
                          config.cluster.total_nodes,
                          config.workload_reference_mem, config.target_load);
}

RunMetrics run_experiment(const ExperimentConfig& config) {
  const Trace trace = make_workload(config);
  return run_experiment(config, trace);
}

RunMetrics run_experiment(const ExperimentConfig& config, const Trace& trace) {
  SchedulingSimulation sim(config.cluster, trace,
                           make_scheduler(config.scheduler, config.mem_options),
                           config.engine);
  RunMetrics metrics = sim.run();
  if (!config.label.empty()) metrics.label = config.label;
  return metrics;
}

ExperimentConfig scenario_experiment(const Scenario& scenario,
                                     SchedulerKind kind) {
  ExperimentConfig c;
  c.label = scenario.info.name + "/" + to_string(kind);
  c.cluster = scenario.cluster;
  c.scheduler = kind;
  c.jobs = scenario.trace.size();
  c.workload_reference_mem = scenario.workload_reference_mem;
  // Scenarios carry the resolved remote-penalty multiplier (they sit below
  // memory/ and cannot name SlowdownModel); 1.0 is a bit-identical no-op.
  c.engine.slowdown = c.engine.slowdown.with_remote_penalty(
      scenario.remote_penalty);
  return c;
}

RunMetrics run_scenario(const Scenario& scenario, SchedulerKind kind) {
  return run_experiment(scenario_experiment(scenario, kind), scenario.trace);
}

}  // namespace dmsched
