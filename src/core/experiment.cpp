#include "core/experiment.hpp"

#include "common/assert.hpp"

namespace dmsched {

Trace make_workload(const ExperimentConfig& config) {
  return make_model_trace(config.model, config.jobs, config.seed,
                          config.cluster.total_nodes,
                          config.workload_reference_mem, config.target_load);
}

RunMetrics run_experiment(const ExperimentConfig& config) {
  const Trace trace = make_workload(config);
  return run_experiment(config, trace);
}

RunMetrics run_experiment(const ExperimentConfig& config, const Trace& trace) {
  SchedulingSimulation sim(config.cluster, trace,
                           make_scheduler(config.scheduler, config.mem_options),
                           config.engine);
  RunMetrics metrics = sim.run();
  if (!config.label.empty()) metrics.label = config.label;
  return metrics;
}

RunMetrics run_experiment(const ExperimentConfig& config, TraceSource& source) {
  SchedulingSimulation sim(config.cluster, source,
                           make_scheduler(config.scheduler, config.mem_options),
                           config.engine);
  RunMetrics metrics = sim.run();
  if (!config.label.empty()) metrics.label = config.label;
  return metrics;
}

ExperimentConfig scenario_experiment(const Scenario& scenario,
                                     SchedulerKind kind) {
  ExperimentConfig c;
  c.label = scenario.info.name + "/" + to_string(kind);
  c.cluster = scenario.cluster;
  c.scheduler = kind;
  c.jobs = scenario.trace.size();
  c.workload_reference_mem = scenario.workload_reference_mem;
  // Scenarios carry the resolved remote-penalty multiplier (they sit below
  // memory/ and cannot name SlowdownModel); 1.0 is a bit-identical no-op.
  c.engine.slowdown = c.engine.slowdown.with_remote_penalty(
      scenario.remote_penalty);
  return c;
}

RunMetrics run_scenario(const Scenario& scenario, SchedulerKind kind) {
  return run_experiment(scenario_experiment(scenario, kind), scenario.trace);
}

ExperimentConfig scenario_experiment(const ScenarioStream& stream,
                                     SchedulerKind kind) {
  ExperimentConfig c;
  c.label = stream.info.name + "/" + to_string(kind);
  c.cluster = stream.cluster;
  c.scheduler = kind;
  c.jobs = stream.source != nullptr
               ? stream.source->size_hint().value_or(0)
               : 0;
  c.workload_reference_mem = stream.workload_reference_mem;
  c.engine.slowdown =
      c.engine.slowdown.with_remote_penalty(stream.remote_penalty);
  return c;
}

RunMetrics run_scenario(ScenarioStream& stream, SchedulerKind kind) {
  DMSCHED_ASSERT(stream.source != nullptr,
                 "run_scenario: stream has no source (already consumed?)");
  return run_experiment(scenario_experiment(stream, kind), *stream.source);
}

}  // namespace dmsched
