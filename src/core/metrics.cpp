#include "core/metrics.hpp"

#include <algorithm>

#include "common/stats.hpp"

namespace dmsched {

double JobOutcome::bounded_slowdown() const {
  const double denom =
      std::max(runtime.seconds(), kBsldThreshold.seconds());
  const double resp = response().seconds();
  return std::max(1.0, resp / denom);
}

void RunMetrics::finalize() {
  completed = killed = rejected = 0;
  SampleStats wait_h, bsld;
  StreamingStats dilation_stats;
  std::size_t started = 0;
  std::size_t far_jobs = 0;
  std::size_t global_jobs = 0;
  Bytes footprint_total{};
  Bytes far_bytes_total{};
  Bytes neighbor_bytes_total{};
  Bytes global_bytes_total{};
  far_gib_hours = 0.0;
  for (const JobOutcome& j : jobs) {
    switch (j.fate) {
      case JobFate::kRejected:
        ++rejected;
        continue;
      case JobFate::kKilled:
        ++killed;
        break;
      case JobFate::kCompleted:
        ++completed;
        break;
    }
    ++started;
    wait_h.add(j.wait().hours());
    bsld.add(j.bounded_slowdown());
    dilation_stats.add(j.dilation);
    if (j.used_far_memory()) ++far_jobs;
    if (!j.far_global.is_zero()) ++global_jobs;
    footprint_total += j.mem_per_node * j.nodes;
    far_bytes_total += j.far_total();
    neighbor_bytes_total += j.far_neighbor;
    global_bytes_total += j.far_global;
    far_gib_hours += j.far_total().gib() * (j.end - j.start).hours();
  }
  mean_wait_hours = wait_h.mean();
  p95_wait_hours = wait_h.percentile(95);
  max_wait_hours = wait_h.max();
  mean_bsld = bsld.mean();
  p95_bsld = bsld.percentile(95);
  mean_dilation = dilation_stats.mean();
  frac_jobs_far =
      started == 0 ? 0.0
                   : static_cast<double>(far_jobs) / static_cast<double>(started);
  frac_jobs_global =
      started == 0
          ? 0.0
          : static_cast<double>(global_jobs) / static_cast<double>(started);
  remote_access_fraction = ratio(far_bytes_total, footprint_total);
  neighbor_access_fraction = ratio(neighbor_bytes_total, footprint_total);
  global_access_fraction = ratio(global_bytes_total, footprint_total);
  jobs_per_hour = makespan.hours() <= 0.0
                      ? 0.0
                      : static_cast<double>(completed) / makespan.hours();
  migrations_per_hour =
      makespan.hours() <= 0.0
          ? 0.0
          : static_cast<double>(demotions + promotions) / makespan.hours();
}

}  // namespace dmsched
