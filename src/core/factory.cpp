#include "core/factory.hpp"

#include "common/assert.hpp"
#include "sched/conservative.hpp"
#include "sched/easy.hpp"
#include "sched/fcfs.hpp"

namespace dmsched {

const char* to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFcfs: return "fcfs";
    case SchedulerKind::kEasy: return "easy";
    case SchedulerKind::kConservative: return "conservative";
    case SchedulerKind::kMemAwareEasy: return "mem-easy";
    case SchedulerKind::kAdaptive: return "adaptive";
    case SchedulerKind::kResourceAwareEasy: return "resource-easy";
  }
  return "?";
}

SchedulerKind scheduler_kind_from_string(const std::string& s) {
  if (s == "fcfs") return SchedulerKind::kFcfs;
  if (s == "easy") return SchedulerKind::kEasy;
  if (s == "conservative") return SchedulerKind::kConservative;
  if (s == "mem-easy") return SchedulerKind::kMemAwareEasy;
  if (s == "adaptive") return SchedulerKind::kAdaptive;
  if (s == "resource-easy") return SchedulerKind::kResourceAwareEasy;
  DMSCHED_UNREACHABLE("unknown scheduler name");
}

std::vector<SchedulerKind> all_scheduler_kinds() {
  return {SchedulerKind::kFcfs, SchedulerKind::kEasy,
          SchedulerKind::kConservative, SchedulerKind::kMemAwareEasy,
          SchedulerKind::kAdaptive};
}

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind,
                                          const MemAwareOptions& mem_options) {
  switch (kind) {
    case SchedulerKind::kFcfs:
      return std::make_unique<FcfsScheduler>();
    case SchedulerKind::kEasy:
      return std::make_unique<EasyScheduler>();
    case SchedulerKind::kConservative:
      return std::make_unique<ConservativeScheduler>();
    case SchedulerKind::kMemAwareEasy: {
      MemAwareOptions opts = mem_options;
      opts.adaptive = false;
      return std::make_unique<MemAwareEasyScheduler>(opts);
    }
    case SchedulerKind::kAdaptive: {
      MemAwareOptions opts = mem_options;
      opts.adaptive = true;
      return std::make_unique<MemAwareEasyScheduler>(opts);
    }
    case SchedulerKind::kResourceAwareEasy: {
      MemAwareOptions opts = mem_options;
      opts.adaptive = false;
      opts.axes = ResourceAxes::all();
      return std::make_unique<MemAwareEasyScheduler>(opts);
    }
  }
  DMSCHED_UNREACHABLE("bad scheduler kind");
}

}  // namespace dmsched
