// Parallel parameter-sweep harness.
//
// Simulation runs are independent, so sweeps parallelize embarrassingly.
// Following the CP.* concurrency guidelines: no shared mutable state between
// workers (each owns its slot in the results vector), RAII threads
// (std::jthread), work distribution through an atomic chunk counter.
//
// Determinism contract: every index writes only its own pre-sized result
// slot and no result depends on which worker ran it or in what order, so
// sweep output is byte-identical across thread counts and chunk sizes.
// tests/golden/ enforces this.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "core/experiment.hpp"

namespace dmsched {

/// How a sweep distributes work across threads.
struct SweepOptions {
  /// Worker count. 0 means hardware concurrency.
  unsigned threads = 0;
  /// Indices claimed per atomic grab. At production scale (thousands of
  /// configs) larger chunks cut counter contention; 1 reproduces the old
  /// index-at-a-time behaviour. 0 picks a size automatically so each worker
  /// sees several chunks (load balance) while grabs stay rare (contention).
  std::size_t chunk = 0;
};

/// Run every experiment (each generating its own workload) and return
/// metrics in input order.
[[nodiscard]] std::vector<RunMetrics> run_sweep(
    const std::vector<ExperimentConfig>& configs, const SweepOptions& options);

/// Run every experiment against one shared trace (comparisons on identical
/// workloads). The trace must outlive the call.
[[nodiscard]] std::vector<RunMetrics> run_sweep_on_trace(
    const std::vector<ExperimentConfig>& configs, const Trace& trace,
    const SweepOptions& options);

/// Back-compat conveniences: `threads` only, automatic chunking.
[[nodiscard]] std::vector<RunMetrics> run_sweep(
    const std::vector<ExperimentConfig>& configs, unsigned threads = 0);
[[nodiscard]] std::vector<RunMetrics> run_sweep_on_trace(
    const std::vector<ExperimentConfig>& configs, const Trace& trace,
    unsigned threads = 0);

/// The chunk size `parallel_for_chunked` uses when `options.chunk == 0`:
/// count / (8 × threads), clamped to [1, 64]. Exposed so tests can pin the
/// heuristic's invariants (never 0, never starves a worker).
[[nodiscard]] std::size_t auto_chunk_size(std::size_t count, unsigned threads);

/// Generic parallel map over [0, count): workers claim contiguous chunks of
/// `options.chunk` indices from one atomic counter and visit every index
/// exactly once. Ordering between chunks is unspecified; correctness must
/// not depend on it. If `fn` throws, the pool winds down (remaining chunks
/// are abandoned, the throwing worker's own chunk is abandoned mid-way) and
/// the *first* exception is rethrown on the calling thread — the same
/// failure contract as the serial path, so callers never see std::terminate
/// from a worker.
void parallel_for_chunked(std::size_t count, const SweepOptions& options,
                          const std::function<void(std::size_t)>& fn);

/// Index-at-a-time compatibility wrapper: chunk size 1 (exposed for tests).
void parallel_for_index(std::size_t count, unsigned threads,
                        const std::function<void(std::size_t)>& fn);

}  // namespace dmsched
