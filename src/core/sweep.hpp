// Parallel parameter-sweep harness.
//
// Simulation runs are independent, so sweeps parallelize embarrassingly.
// Following the CP.* concurrency guidelines: no shared mutable state between
// workers (each owns its slot in the results vector), RAII threads
// (std::jthread), work distribution through a single atomic counter.
#pragma once

#include <functional>
#include <vector>

#include "core/experiment.hpp"

namespace dmsched {

/// Run every experiment (each generating its own workload) and return
/// metrics in input order. `threads == 0` means hardware concurrency.
[[nodiscard]] std::vector<RunMetrics> run_sweep(
    const std::vector<ExperimentConfig>& configs, unsigned threads = 0);

/// Run every experiment against one shared trace (comparisons on identical
/// workloads). The trace must outlive the call.
[[nodiscard]] std::vector<RunMetrics> run_sweep_on_trace(
    const std::vector<ExperimentConfig>& configs, const Trace& trace,
    unsigned threads = 0);

/// Generic parallel map used by both entry points (exposed for tests).
/// Visits every index in [0, count) exactly once. If `fn` throws, the pool
/// winds down (remaining indices are abandoned) and the *first* exception is
/// rethrown on the calling thread — the same failure contract as the serial
/// path, so callers never see std::terminate from a worker.
void parallel_for_index(std::size_t count, unsigned threads,
                        const std::function<void(std::size_t)>& fn);

}  // namespace dmsched
