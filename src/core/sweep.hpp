// Parallel parameter-sweep harness.
//
// Simulation runs are independent, so sweeps parallelize embarrassingly.
// Work runs on the persistent work-stealing Executor (src/runtime/): the
// pool starts once per process and is reused by every sweep, so the many
// small sweeps benches and golden suites issue no longer pay per-call
// thread-startup cost (bench/sweep_throughput measures the win).
//
// Determinism contract: every index writes only its own pre-sized result
// slot and no result depends on which worker ran it, in what order, or
// whether the task was stolen, so sweep output is byte-identical across
// thread counts, chunk sizes, and pool reuse. tests/golden/ enforces this.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "core/experiment.hpp"
#include "runtime/parallel_for.hpp"

namespace dmsched {

/// How a sweep distributes work across the shared pool.
struct SweepOptions {
  /// Upper bound on in-flight parallelism within the shared Executor (no
  /// threads are spawned per call). 0 means hardware concurrency; values
  /// above the pool's worker count are harmless oversubscription.
  unsigned threads = 0;
  /// Indices claimed per atomic grab. At production scale (thousands of
  /// configs) larger chunks cut counter contention; 1 reproduces the old
  /// index-at-a-time behaviour. 0 picks a size automatically so each worker
  /// sees several chunks (load balance) while grabs stay rare (contention).
  std::size_t chunk = 0;
  /// Pool to run on; nullptr means the process-wide Executor::global().
  /// Inject a private Executor to isolate a sweep (tests do).
  Executor* executor = nullptr;
};

/// Run every experiment (each generating its own workload) and return
/// metrics in input order.
[[nodiscard]] std::vector<RunMetrics> run_sweep(
    const std::vector<ExperimentConfig>& configs, const SweepOptions& options);

/// Run every experiment against one shared trace (comparisons on identical
/// workloads). The trace must outlive the call.
[[nodiscard]] std::vector<RunMetrics> run_sweep_on_trace(
    const std::vector<ExperimentConfig>& configs, const Trace& trace,
    const SweepOptions& options);

/// Back-compat conveniences: `threads` only, automatic chunking.
[[nodiscard]] std::vector<RunMetrics> run_sweep(
    const std::vector<ExperimentConfig>& configs, unsigned threads = 0);
[[nodiscard]] std::vector<RunMetrics> run_sweep_on_trace(
    const std::vector<ExperimentConfig>& configs, const Trace& trace,
    unsigned threads = 0);

// `auto_chunk_size(count, threads)` — the chunk heuristic used when
// `options.chunk == 0` — now lives in runtime/parallel_for.hpp (included
// above) and is re-exported here unchanged.

/// Generic parallel map over [0, count) on the shared pool: workers claim
/// contiguous chunks of `options.chunk` indices from one atomic counter and
/// visit every index exactly once. Ordering between chunks is unspecified;
/// correctness must not depend on it. If `fn` throws, the loop winds down
/// (unclaimed chunks are abandoned, a throwing worker abandons the rest of
/// its own chunk), every worker exception is captured with its index, and
/// the *lowest-index* exception is rethrown on the calling thread —
/// deterministic, matching the serial path's failure contract (callers
/// never see std::terminate from a worker).
void parallel_for_chunked(std::size_t count, const SweepOptions& options,
                          const std::function<void(std::size_t)>& fn);

/// Index-at-a-time compatibility wrapper: chunk size 1 (exposed for tests).
void parallel_for_index(std::size_t count, unsigned threads,
                        const std::function<void(std::size_t)>& fn);

}  // namespace dmsched
