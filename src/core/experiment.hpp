// Experiment runner: one struct describes a run end-to-end, so every bench
// binary and test speaks the same vocabulary.
#pragma once

#include <string>

#include "cluster/config.hpp"
#include "core/engine.hpp"
#include "core/factory.hpp"
#include "workload/models.hpp"
#include "workload/scenarios.hpp"

namespace dmsched {

/// A fully-specified simulation run.
struct ExperimentConfig {
  std::string label;
  ClusterConfig cluster;
  SchedulerKind scheduler = SchedulerKind::kMemAwareEasy;
  MemAwareOptions mem_options{};
  EngineOptions engine{};

  // Workload: generated on demand from a model...
  WorkloadModel model = WorkloadModel::kMixed;
  std::size_t jobs = 5000;
  std::uint64_t seed = 42;
  double target_load = 1.0;
  /// ...with footprints scaled against this reference (defaults to the
  /// *reference machine's* node size so shrinking local memory in
  /// `cluster` does not silently shrink the workload too).
  Bytes workload_reference_mem = gib(std::int64_t{256});
};

/// Generate the config's workload (deterministic in the config).
[[nodiscard]] Trace make_workload(const ExperimentConfig& config);

/// Run one experiment on a freshly generated workload.
[[nodiscard]] RunMetrics run_experiment(const ExperimentConfig& config);

/// Run one experiment on a caller-provided trace (for SWF replays and for
/// sharing one generated trace across many configs).
[[nodiscard]] RunMetrics run_experiment(const ExperimentConfig& config,
                                        const Trace& trace);

/// Run one experiment drawing jobs from a pull-based source (streaming
/// replays). Sources are single-use: one run consumes `source`. With the
/// same jobs and options this returns byte-identical metrics to the Trace
/// overload.
[[nodiscard]] RunMetrics run_experiment(const ExperimentConfig& config,
                                        TraceSource& source);

/// An experiment for `kind` on a library scenario's machine and workload
/// (label "scenario/scheduler"). Pair the result with the scenario's trace:
/// `run_experiment(cfg, scenario.trace)` or `run_sweep_on_trace` — the
/// synthetic-model fields of the returned config are *not* a substitute for
/// the scenario trace (trace-seeded scenarios have no generating model).
[[nodiscard]] ExperimentConfig scenario_experiment(const Scenario& scenario,
                                                   SchedulerKind kind);

/// Convenience: run one scheduler on one scenario.
[[nodiscard]] RunMetrics run_scenario(const Scenario& scenario,
                                      SchedulerKind kind);

/// Streaming counterparts: the experiment config for a scenario stream
/// (`jobs` falls back to the source's size hint) and a one-shot run that
/// consumes the stream's source.
[[nodiscard]] ExperimentConfig scenario_experiment(
    const ScenarioStream& stream, SchedulerKind kind);
[[nodiscard]] RunMetrics run_scenario(ScenarioStream& stream,
                                      SchedulerKind kind);

}  // namespace dmsched
