#include "core/fairness.hpp"

#include <algorithm>
#include <map>

#include "common/assert.hpp"

namespace dmsched {

double jain_index(const std::vector<double>& values) {
  if (values.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : values) {
    DMSCHED_ASSERT(x >= 0.0, "jain_index: negative value");
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;  // all zeros: perfectly even
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

FairnessReport fairness_report(const RunMetrics& metrics) {
  struct Accum {
    std::size_t jobs = 0;
    std::size_t rejected = 0;
    double wait_h = 0.0;
    double bsld = 0.0;
    double node_hours = 0.0;
  };
  // The user id is not carried in JobOutcome; recover per-user identity via
  // the job records' ids is not possible without the trace, so outcomes are
  // grouped by the `user` field stored on the outcome.
  std::map<std::int32_t, Accum> by_user;
  for (const JobOutcome& o : metrics.jobs) {
    Accum& a = by_user[o.user];
    if (o.fate == JobFate::kRejected) {
      ++a.rejected;
      continue;
    }
    ++a.jobs;
    a.wait_h += o.wait().hours();
    a.bsld += o.bounded_slowdown();
    a.node_hours += static_cast<double>(o.nodes) * o.runtime.hours();
  }

  FairnessReport report;
  std::vector<double> bslds;
  std::vector<double> waits;
  double total_node_hours = 0.0;
  for (const auto& [user, a] : by_user) {
    if (a.jobs == 0) continue;
    UserStats s;
    s.user = user;
    s.jobs = a.jobs;
    s.rejected = a.rejected;
    const auto n = static_cast<double>(a.jobs);
    s.mean_wait_hours = a.wait_h / n;
    s.mean_bsld = a.bsld / n;
    s.node_hours = a.node_hours;
    total_node_hours += a.node_hours;
    bslds.push_back(s.mean_bsld);
    waits.push_back(s.mean_wait_hours + 1.0);
    report.users.push_back(s);
  }
  report.jain_bsld = jain_index(bslds);
  report.jain_wait = jain_index(waits);
  if (!bslds.empty()) {
    const auto [lo, hi] = std::minmax_element(bslds.begin(), bslds.end());
    report.max_min_bsld_ratio = *lo > 0.0 ? *hi / *lo : 1.0;
  }
  if (total_node_hours > 0.0 && !report.users.empty()) {
    std::vector<double> shares;
    shares.reserve(report.users.size());
    for (const auto& u : report.users) shares.push_back(u.node_hours);
    std::sort(shares.begin(), shares.end(), std::greater<>());
    const std::size_t decile = std::max<std::size_t>(1, shares.size() / 10);
    double top = 0.0;
    for (std::size_t i = 0; i < decile; ++i) top += shares[i];
    report.top_decile_node_share = top / total_node_hours;
  }
  return report;
}

}  // namespace dmsched
