// Per-user fairness analysis.
//
// Schedulers that chase aggregate wait can starve individual users;
// multi-resource papers therefore report per-user service statistics and a
// fairness index. DMSched computes Jain's index over per-user mean bounded
// slowdown and wait: 1.0 = perfectly even service, 1/n = one user gets
// everything.
#pragma once

#include <vector>

#include "core/metrics.hpp"

namespace dmsched {

/// Aggregated outcomes for one user.
struct UserStats {
  std::int32_t user = 0;
  std::size_t jobs = 0;          ///< started jobs (rejected excluded)
  std::size_t rejected = 0;
  double mean_wait_hours = 0.0;
  double mean_bsld = 0.0;
  /// Consumed node-hours (undilated runtime × nodes) — the user's "share".
  double node_hours = 0.0;
};

/// Fairness summary of one run.
struct FairnessReport {
  std::vector<UserStats> users;  ///< sorted by user id; users with ≥1 started job
  /// Jain's fairness index over per-user mean bounded slowdown.
  double jain_bsld = 1.0;
  /// Jain's fairness index over per-user mean wait (hours, +1 to avoid the
  /// degenerate all-zero case).
  double jain_wait = 1.0;
  /// Worst-served user's mean bsld over best-served user's (≥ 1).
  double max_min_bsld_ratio = 1.0;
  /// Fraction of delivered node-hours consumed by the top-decile users.
  double top_decile_node_share = 0.0;
};

/// Jain's index (Σx)² / (n·Σx²) for non-negative values; 1.0 when empty.
[[nodiscard]] double jain_index(const std::vector<double>& values);

/// Build the per-user fairness report from a finished run.
[[nodiscard]] FairnessReport fairness_report(const RunMetrics& metrics);

}  // namespace dmsched
