// Run metrics: everything the evaluation section reports.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "common/units.hpp"
#include "workload/job.hpp"

namespace dmsched {

/// Threshold for bounded slowdown (the conventional 10 seconds).
constexpr SimTime kBsldThreshold = seconds(std::int64_t{10});

/// Terminal state of one job after a run.
enum class JobFate : std::uint8_t {
  kCompleted,  ///< ran to completion
  kKilled,     ///< hit its walltime limit (when enforcement is on)
  kRejected,   ///< can never run on this machine configuration
};

/// Per-job outcome record.
struct JobOutcome {
  JobId id = kInvalidJobId;
  JobFate fate = JobFate::kCompleted;
  SimTime submit{};
  SimTime start{};  ///< meaningless for rejected jobs
  SimTime end{};
  /// Runtime dilation factor its allocation incurred (1.0 = all-local).
  double dilation = 1.0;
  /// Far bytes drawn from hosting-rack pools / neighbor-rack pools / the
  /// global pool. Final placement: migration re-tiers move bytes between
  /// these before the job ends. Neighbor is zero unless the placement
  /// routes cross-rack (rack-neighbor-global), so legacy tables are
  /// unchanged.
  Bytes far_rack{};
  Bytes far_neighbor{};
  Bytes far_global{};
  // Static job properties copied for breakdown tables:
  std::int32_t nodes = 0;
  Bytes mem_per_node{};
  SimTime runtime{};  ///< undilated
  MemSensitivity sensitivity = MemSensitivity::kBalanced;
  std::int32_t user = 0;  ///< submitting user (fairness analyses)

  [[nodiscard]] SimTime wait() const { return start - submit; }
  [[nodiscard]] SimTime response() const { return end - submit; }
  /// Bounded slowdown: (wait + dilated runtime) / max(undilated runtime, τ).
  /// Using the undilated denominator charges the dilation penalty to the
  /// metric, which is what a disaggregation study must measure.
  [[nodiscard]] double bounded_slowdown() const;
  [[nodiscard]] Bytes far_total() const {
    return far_rack + far_neighbor + far_global;
  }
  [[nodiscard]] bool used_far_memory() const { return !far_total().is_zero(); }
};

/// One checkpointed metrics window: system state integrated over
/// [start, end). Unlike TimeSample (an instantaneous snapshot taken by a
/// timer event), windows are accumulated passively at state transitions —
/// enabling them injects no events, so runs with and without windowing are
/// byte-identical everywhere else. Windows are aligned to multiples of the
/// checkpoint interval in sim time; the last window may be partial.
struct MetricsWindow {
  SimTime start{};
  SimTime end{};
  /// Time integrals over the window (value × seconds):
  double busy_node_seconds = 0.0;
  double queued_job_seconds = 0.0;
  double running_job_seconds = 0.0;
  double rack_pool_gib_seconds = 0.0;
  double global_pool_gib_seconds = 0.0;
  /// Transition counts attributed to the window containing the event time:
  std::size_t jobs_submitted = 0;
  std::size_t jobs_started = 0;
  std::size_t jobs_finished = 0;
  std::size_t jobs_rejected = 0;
  /// Tier moves applied in the window (0 everywhere with migration off).
  std::size_t jobs_migrated = 0;
  double migrated_gib = 0.0;

  [[nodiscard]] double width_seconds() const { return (end - start).seconds(); }
  /// Mean busy nodes over the window (0 for a zero-width window).
  [[nodiscard]] double mean_busy_nodes() const {
    const double w = width_seconds();
    return w > 0.0 ? busy_node_seconds / w : 0.0;
  }
  [[nodiscard]] double mean_queued_jobs() const {
    const double w = width_seconds();
    return w > 0.0 ? queued_job_seconds / w : 0.0;
  }
};

/// One sample of the system time series (Fig. 7 style plots).
struct TimeSample {
  SimTime time{};
  std::int32_t busy_nodes = 0;
  std::int32_t queued_jobs = 0;
  std::int32_t running_jobs = 0;
  Bytes rack_pool_used{};
  Bytes global_pool_used{};
};

/// Aggregated results of one simulation run.
struct RunMetrics {
  std::string label;
  std::vector<JobOutcome> jobs;
  std::vector<TimeSample> series;  ///< empty unless sampling was enabled
  /// Checkpointed windows; empty unless EngineOptions::checkpoint_interval
  /// was set. A streaming consumer can drop per-job outcomes and keep only
  /// these for month-scale replays.
  std::vector<MetricsWindow> windows;

  SimTime makespan{};  ///< first submission to last completion
  /// Node utilization: busy node-time / (total nodes × makespan).
  double node_utilization = 0.0;
  /// Mean/peak fraction of rack-pool capacity in use (0 when no pools).
  double rack_pool_utilization = 0.0;
  double rack_pool_peak = 0.0;
  double global_pool_utilization = 0.0;
  double global_pool_peak = 0.0;
  /// Peak fraction of the single busiest rack pool's capacity in use — the
  /// rack-imbalance signal (0 when there is no rack tier). A machine whose
  /// aggregate rack utilization looks comfortable can still have one rack
  /// pinned at 100%; placement strategies differ exactly here.
  double rack_pool_busiest_peak = 0.0;
  /// Mean/peak fraction of provisioned GPU devices in use. Zero on machines
  /// without GPUs (absent axes never move the legacy golden tables).
  double gpu_utilization = 0.0;
  double gpu_peak = 0.0;
  /// Mean/peak fraction of burst-buffer capacity reserved. Zero on machines
  /// without a burst buffer.
  double bb_utilization = 0.0;
  double bb_peak = 0.0;

  // --- derived aggregates (filled by finalize()) -------------------------
  std::size_t completed = 0;
  std::size_t killed = 0;
  std::size_t rejected = 0;
  double mean_wait_hours = 0.0;
  double p95_wait_hours = 0.0;
  double max_wait_hours = 0.0;
  double mean_bsld = 0.0;
  double p95_bsld = 0.0;
  double mean_dilation = 0.0;  ///< over started jobs
  double frac_jobs_far = 0.0;  ///< fraction of started jobs using any pool
  /// Fraction of started jobs drawing from the global tier specifically.
  double frac_jobs_global = 0.0;
  /// Remote-access fraction: Σ far bytes / Σ footprint bytes over started
  /// jobs — how much of the workload's memory was served beyond the node.
  double remote_access_fraction = 0.0;
  /// The multi-hop share of it: Σ global-tier bytes / Σ footprint bytes.
  double global_access_fraction = 0.0;
  /// Aggregate far-memory usage integrated over time (GiB·hours).
  double far_gib_hours = 0.0;
  /// Throughput: completed jobs per hour of makespan.
  double jobs_per_hour = 0.0;

  // --- migration (all zero with the default no-op policy) ----------------
  /// Tier moves applied: demotions (rack → global) and promotions (back).
  std::size_t demotions = 0;
  std::size_t promotions = 0;
  double demoted_gib = 0.0;
  double promoted_gib = 0.0;
  /// Move rate over the makespan (filled by finalize()).
  double migrations_per_hour = 0.0;
  /// Σ neighbor-tier bytes / Σ footprint bytes over started jobs — the
  /// distance-graded middle hop's share (filled by finalize()).
  double neighbor_access_fraction = 0.0;

  /// Compute the derived aggregates from `jobs`. Call once after the run.
  void finalize();
};

}  // namespace dmsched
