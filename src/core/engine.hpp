// SchedulingSimulation: binds a trace, a machine, and a scheduler into one
// deterministic discrete-event run and produces RunMetrics.
#pragma once

#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/stats.hpp"
#include "core/metrics.hpp"
#include "memory/placement.hpp"
#include "memory/slowdown.hpp"
#include "topology/topology.hpp"
#include "sched/profile.hpp"
#include "sched/queue_policy.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "workload/trace.hpp"

namespace dmsched {

/// Engine-level knobs shared by all schedulers.
struct EngineOptions {
  PlacementPolicy placement{};
  SlowdownModel slowdown{};
  QueueOrder queue_order = QueueOrder::kFcfs;
  /// Enforce walltime limits: a job whose *dilated* runtime exceeds its
  /// request is killed at the limit, as production RJMSs do. Off by default
  /// so dilation effects are measured in full (see DESIGN.md §4).
  bool kill_on_walltime = false;
  /// Sample the system time series at this interval (0 = disabled).
  SimTime sample_interval{};
  /// Run a full cluster audit after every completion (tests only; O(nodes)).
  bool audit_cluster = false;
};

/// One simulation run. Create, call run(), read the metrics.
///
/// The trace is held by reference (traces are shared across many runs in
/// sweeps) and must outlive the simulation — do not pass a temporary.
///
/// Lifecycle semantics (DESIGN.md §4):
///  - submissions enter the queue unless the job can never fit the machine
///    (rejected with fate kRejected);
///  - a scheduling pass runs after all state changes at a timestamp;
///  - a started job completes after runtime × dilation;
///  - planning bounds (`RunningJob::expected_end`) use walltime × dilation.
class SchedulingSimulation final : public SchedContext {
 public:
  SchedulingSimulation(ClusterConfig config, const Trace& trace,
                       std::unique_ptr<Scheduler> scheduler,
                       EngineOptions options);

  /// Run to completion (all jobs terminal) and return the metrics.
  RunMetrics run();

  // --- SchedContext ---------------------------------------------------------
  [[nodiscard]] SimTime now() const override;
  [[nodiscard]] const Cluster& cluster() const override;
  [[nodiscard]] const Job& job(JobId id) const override;
  [[nodiscard]] std::vector<JobId> queued_jobs() const override;
  [[nodiscard]] std::vector<RunningJob> running_jobs() const override;
  [[nodiscard]] PlacementPolicy placement() const override;
  [[nodiscard]] const SlowdownModel& slowdown() const override;
  [[nodiscard]] const Topology& topology() const override;
  [[nodiscard]] const AvailabilityTimeline* timeline() const override;
  [[nodiscard]] bool queue_order_stable() const override;
  [[nodiscard]] std::uint64_t queue_tail_epoch() const override;
  [[nodiscard]] std::vector<JobId> queued_jobs_after(
      std::uint64_t epoch) const override;
  void start_job(JobId id, const Allocation& alloc) override;

  /// Counted resource view of an allocation (exposed for tests).
  [[nodiscard]] static TakePlan take_from_allocation(const Allocation& alloc,
                                                     const ClusterConfig& cfg);

 private:
  enum class JobState : std::uint8_t {
    kPending,   ///< submission event not fired yet
    kQueued,    ///< waiting
    kRunning,
    kDone,      ///< completed or killed
    kRejected,  ///< can never fit this machine
  };
  /// Which intrusive job list (if any) a job is linked into. The slot makes
  /// queue/running removal a *checked* O(1) unlink: erase asserts the job is
  /// a member of the list it is being removed from instead of trusting a
  /// std::find to have succeeded.
  enum class JobListId : std::uint8_t { kNone, kQueue, kRunning };

  struct JobRuntime {
    JobState state = JobState::kPending;
    SimTime start{};
    SimTime end{};
    SimTime expected_end{};
    double dilation = 1.0;
    bool killed = false;
    TakePlan take;
    Bytes far_rack{};
    Bytes far_global{};
    /// Intrusive doubly-linked-list slots (a job is in at most one list at a
    /// time — queued xor running — so one pair of links suffices).
    JobId list_prev = kInvalidJobId;
    JobId list_next = kInvalidJobId;
    JobListId list = JobListId::kNone;
  };

  /// Intrusive doubly-linked list over the JobRuntime link slots: O(1)
  /// push_back and O(1) checked erase, with iteration in insertion order —
  /// byte-identical to the order the old vector kept under
  /// erase-from-the-middle, which the goldens pin.
  struct JobList {
    JobId head = kInvalidJobId;
    JobId tail = kInvalidJobId;
    std::size_t count = 0;
    JobListId id = JobListId::kNone;

    [[nodiscard]] bool empty() const { return count == 0; }
    [[nodiscard]] std::size_t size() const { return count; }
    void push_back(std::vector<JobRuntime>& rt, JobId job);
    void erase(std::vector<JobRuntime>& rt, JobId job);
    /// Collect ids head → tail (insertion order).
    [[nodiscard]] std::vector<JobId> to_vector(
        const std::vector<JobRuntime>& rt) const;
  };

  void handle_submit(JobId id);
  void handle_complete(JobId id);
  void request_schedule_pass();
  void record_usage_change();
  void sample_series();

  ClusterConfig config_;
  const Trace& trace_;
  std::unique_ptr<Scheduler> scheduler_;
  EngineOptions options_;

  sim::Engine engine_;
  Cluster cluster_;
  Topology topology_;  ///< the machine's rack-scale memory model
  /// Persistent availability view, updated push-style on start/finish —
  /// the structure incremental scheduler passes key their caches on.
  AvailabilityTimeline timeline_;
  /// Lifetime log of queue appends (never shrinks); its size is the queue
  /// tail epoch, and suffixes of it answer queued_jobs_after.
  std::vector<JobId> queue_appends_;
  std::vector<JobRuntime> rt_;
  JobList queue_{.id = JobListId::kQueue};      // waiting, insertion order
  JobList running_{.id = JobListId::kRunning};  // running, insertion order
  std::size_t live_jobs_ = 0;   // not yet terminal
  bool pass_pending_ = false;
  bool run_called_ = false;

  RunMetrics metrics_;
  TimeWeightedMean busy_nodes_tw_;
  TimeWeightedMean rack_pool_tw_;
  TimeWeightedMean global_pool_tw_;
  Bytes busiest_rack_pool_peak_{};  ///< max single-rack pool draw observed
  SimTime last_end_{};
};

}  // namespace dmsched
