// SchedulingSimulation: binds a trace, a machine, and a scheduler into one
// deterministic discrete-event run and produces RunMetrics.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/stats.hpp"
#include "core/metrics.hpp"
#include "memory/placement.hpp"
#include "memory/slowdown.hpp"
#include "migration/migration.hpp"
#include "obs/trace_sink.hpp"
#include "topology/topology.hpp"
#include "sched/profile.hpp"
#include "sched/queue_policy.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "workload/trace.hpp"
#include "workload/trace_source.hpp"

namespace dmsched {

namespace obs {
class CounterRegistry;
struct Gauge;
}  // namespace obs

/// Engine-level knobs shared by all schedulers.
struct EngineOptions {
  PlacementPolicy placement{};
  SlowdownModel slowdown{};
  QueueOrder queue_order = QueueOrder::kFcfs;
  /// Enforce walltime limits: a job whose *dilated* runtime exceeds its
  /// request is killed at the limit, as production RJMSs do. Off by default
  /// so dilation effects are measured in full (see DESIGN.md §4).
  bool kill_on_walltime = false;
  /// Sample the system time series at this interval (0 = disabled).
  SimTime sample_interval{};
  /// Run a full cluster audit after every completion (tests only; O(nodes)).
  bool audit_cluster = false;
  /// How many un-fired submission events to keep scheduled ahead of the
  /// clock (0 = unbounded: the whole trace is pre-pushed, the historical
  /// behaviour). Any positive window produces byte-identical RunMetrics —
  /// the event order proof is in src/README.md — while shrinking the event
  /// queue's live id window from O(trace) to O(lookahead + running).
  std::size_t submit_lookahead = 0;
  /// Emit windowed metrics checkpoints at this interval (0 = disabled).
  /// Passive: enabling it injects no events and perturbs nothing.
  SimTime checkpoint_interval{};
  /// Live tier migration (migration/). The default is the 0-sentinel: a zero
  /// check_interval schedules no events, so every published machine stays
  /// byte-identical with migration off.
  MigrationPolicy migration{};
  /// Passive observability (obs/): when non-null the engine emits job
  /// lifecycle spans, scheduler pass spans, and gauge samples into the sink
  /// at `trace_detail` granularity. Null = zero overhead: every emission
  /// site is a single branch on this pointer, so the disabled path makes no
  /// virtual call and marshals no arguments. Like checkpoint_interval,
  /// attaching a sink injects no events and perturbs nothing — RunMetrics
  /// are byte-identical either way (tests/golden/trace_passivity_test.cpp).
  obs::TraceSink* sink = nullptr;
  obs::TraceDetail trace_detail = obs::TraceDetail::kFull;
  /// When non-null, end-of-run totals (events, passes, job fates) and gauge
  /// envelopes land in this registry. Everything written is deterministic —
  /// no wall-clock values — so a counters dump diffs as cleanly as a golden.
  obs::CounterRegistry* counters = nullptr;
};

/// One simulation run. Create, call run(), read the metrics.
///
/// Jobs come from either an in-memory Trace (held by reference — traces are
/// shared across many runs in sweeps and must outlive the simulation) or a
/// pull-based TraceSource (also by reference, single-use). Both paths feed
/// the identical event machinery: with the same jobs and options the two
/// produce byte-identical RunMetrics. Source mode additionally keeps only
/// live job records in memory, so combined with a bounded
/// `submit_lookahead` the per-event state is O(live jobs), not O(trace).
///
/// Lifecycle semantics (DESIGN.md §4):
///  - submissions enter the queue unless the job can never fit the machine
///    (rejected with fate kRejected);
///  - a scheduling pass runs after all state changes at a timestamp;
///  - a started job completes after runtime × dilation;
///  - planning bounds (`RunningJob::expected_end`) use walltime × dilation.
class SchedulingSimulation final : public SchedContext {
 public:
  SchedulingSimulation(ClusterConfig config, const Trace& trace,
                       std::unique_ptr<Scheduler> scheduler,
                       EngineOptions options);

  /// Streaming variant: jobs are pulled from `source` on demand. The source
  /// must outlive the simulation. Job ids are assigned in pull order
  /// (0, 1, 2, ...) regardless of the ids the source reports.
  SchedulingSimulation(ClusterConfig config, TraceSource& source,
                       std::unique_ptr<Scheduler> scheduler,
                       EngineOptions options);

  /// Run to completion (all jobs terminal) and return the metrics.
  RunMetrics run();

  // --- SchedContext ---------------------------------------------------------
  [[nodiscard]] SimTime now() const override;
  [[nodiscard]] const Cluster& cluster() const override;
  [[nodiscard]] const Job& job(JobId id) const override;
  [[nodiscard]] std::vector<JobId> queued_jobs() const override;
  [[nodiscard]] std::vector<RunningJob> running_jobs() const override;
  [[nodiscard]] PlacementPolicy placement() const override;
  [[nodiscard]] const SlowdownModel& slowdown() const override;
  [[nodiscard]] const Topology& topology() const override;
  [[nodiscard]] MigrationPolicy migration() const override;
  [[nodiscard]] const AvailabilityTimeline* timeline() const override;
  [[nodiscard]] bool queue_order_stable() const override;
  [[nodiscard]] std::uint64_t queue_tail_epoch() const override;
  [[nodiscard]] std::vector<JobId> queued_jobs_after(
      std::uint64_t epoch) const override;
  void start_job(JobId id, const Allocation& alloc) override;

  /// Counted resource view of an allocation (exposed for tests).
  [[nodiscard]] static TakePlan take_from_allocation(const Allocation& alloc,
                                                     const ClusterConfig& cfg);

  // --- instrumentation (valid after run()) ---------------------------------
  /// Total events the simulation processed.
  [[nodiscard]] std::size_t events_processed() const {
    return engine_.events_processed();
  }
  /// Peak live event-id window of the underlying queue — the memory figure
  /// bounded submission look-ahead shrinks (see sim/event_queue.hpp).
  [[nodiscard]] std::size_t peak_event_id_window() const {
    return engine_.peak_id_window();
  }
  // --- instrumentation (live — stable gauge accessors) ---------------------
  // The obs/ gauge stream and bench/sim_throughput's bounded-memory
  // criterion read the *same* accessors, so the numbers they report are the
  // same numbers by construction.
  /// Events currently pending in the underlying queue.
  [[nodiscard]] std::size_t pending_events() const { return engine_.pending(); }
  /// Live event-id window of the underlying queue right now.
  [[nodiscard]] std::size_t live_event_id_window() const {
    return engine_.id_window();
  }
  /// Scheduler passes run so far.
  [[nodiscard]] std::uint64_t passes_run() const { return pass_seq_; }
  /// Order-sensitive digest over semantic transitions (submit/start/finish
  /// with job id and sim time). Two runs that drain events in the same
  /// semantic order agree on this even when raw event ids differ (eager
  /// pre-push vs lazy pull issue different id sequences); the differential
  /// harness compares it across modes.
  [[nodiscard]] std::uint64_t event_digest() const { return digest_; }

 private:
  enum class JobState : std::uint8_t {
    kPending,   ///< submission event not fired yet
    kQueued,    ///< waiting
    kRunning,
    kDone,      ///< completed or killed
    kRejected,  ///< can never fit this machine
  };
  /// Which intrusive job list (if any) a job is linked into. The slot makes
  /// queue/running removal a *checked* O(1) unlink: erase asserts the job is
  /// a member of the list it is being removed from instead of trusting a
  /// std::find to have succeeded.
  enum class JobListId : std::uint8_t { kNone, kQueue, kRunning };

  struct JobRuntime {
    JobState state = JobState::kPending;
    SimTime start{};
    SimTime end{};
    SimTime expected_end{};
    double dilation = 1.0;
    bool killed = false;
    TakePlan take;
    Bytes far_rack{};
    Bytes far_neighbor{};
    Bytes far_global{};
    /// Undilated work completed in finished dilation segments (a migration
    /// re-price closes a segment; jobs that never migrate keep 0 here).
    SimTime work_done{};
    /// When the current dilation segment opened (start, or the last re-price).
    SimTime seg_start{};
    /// The pending completion event, cancelled + rescheduled on re-price.
    sim::EventId completion_event = sim::kInvalidEventId;
    /// Rack of the first allocated node — the trace track the job's run
    /// span lives on (obs/).
    std::int32_t home_rack = 0;
    /// Intrusive doubly-linked-list slots (a job is in at most one list at a
    /// time — queued xor running — so one pair of links suffices).
    JobId list_prev = kInvalidJobId;
    JobId list_next = kInvalidJobId;
    JobListId list = JobListId::kNone;
  };

  /// Intrusive doubly-linked list over the JobRuntime link slots: O(1)
  /// push_back and O(1) checked erase, with iteration in insertion order —
  /// byte-identical to the order the old vector kept under
  /// erase-from-the-middle, which the goldens pin.
  struct JobList {
    JobId head = kInvalidJobId;
    JobId tail = kInvalidJobId;
    std::size_t count = 0;
    JobListId id = JobListId::kNone;

    [[nodiscard]] bool empty() const { return count == 0; }
    [[nodiscard]] std::size_t size() const { return count; }
    void push_back(std::vector<JobRuntime>& rt, JobId job);
    void erase(std::vector<JobRuntime>& rt, JobId job);
    /// Collect ids head → tail (insertion order).
    [[nodiscard]] std::vector<JobId> to_vector(
        const std::vector<JobRuntime>& rt) const;
  };

  /// Delegated ctor: exactly one of trace/source is non-null.
  SchedulingSimulation(ClusterConfig config, const Trace* trace,
                       TraceSource* source,
                       std::unique_ptr<Scheduler> scheduler,
                       EngineOptions options);

  void handle_submit(JobId id);
  void handle_complete(JobId id);
  /// Periodic kMigration event: plan moves over the running list (insertion
  /// order — deterministic), dispatch each (delayed by the bandwidth knob or
  /// applied in place), then self-reschedule while jobs are live.
  void migration_check();
  /// Land one move: re-validate against the live ledger (the copy may have
  /// raced a completion), retier the draws, and re-price the job's slowdown
  /// — rescheduling its completion for the remaining work at the new rate.
  void apply_migration(const MigrationDecision& decision, bool delayed);
  void request_schedule_pass();
  /// The body of a kSchedule event: runs the scheduler, and — only when a
  /// sink or counter registry is attached — wraps it with span/gauge
  /// emission. The disabled path is the bare scheduler call.
  void run_scheduler_pass();
  /// End-of-run totals and envelopes into options_.counters.
  void fill_counters();
  void record_usage_change();
  void sample_series();

  /// Pull the next job from the trace/source, validate it, assign the next
  /// sequential id, and schedule its submission event. False when the input
  /// is exhausted.
  bool pull_one();
  /// Top up pending submission events to the look-ahead window (all of them
  /// when the window is unbounded).
  void refill_submissions();

  /// Fold a semantic transition into the event digest (FNV-1a style).
  void digest_fold(std::uint64_t v) {
    digest_ = (digest_ ^ v) * 1099511628211ULL;
  }

  // Windowed checkpoints (all no-ops when checkpoint_interval is 0):
  /// Integrate current system state over [from, to) into the open window.
  void window_integrate(SimTime from, SimTime to);
  /// Emit every window whose boundary is <= now, then integrate up to now.
  /// Must run before any state mutation at the current timestamp.
  void window_advance();
  /// After the run: emit remaining complete windows and the final partial.
  void flush_final_window();

  ClusterConfig config_;
  const Trace* trace_ = nullptr;     ///< eager mode (exactly one of these
  TraceSource* source_ = nullptr;    ///< streaming mode    two is set)
  std::unique_ptr<Scheduler> scheduler_;
  EngineOptions options_;

  sim::Engine engine_;
  Cluster cluster_;
  MigrationEngine migration_;
  Topology topology_;  ///< the machine's rack-scale memory model
  /// Persistent availability view, updated push-style on start/finish —
  /// the structure incremental scheduler passes key their caches on.
  AvailabilityTimeline timeline_;
  /// Lifetime log of queue appends (never shrinks); its size is the queue
  /// tail epoch, and suffixes of it answer queued_jobs_after.
  std::vector<JobId> queue_appends_;
  std::vector<JobRuntime> rt_;
  JobList queue_{.id = JobListId::kQueue};      // waiting, insertion order
  JobList running_{.id = JobListId::kRunning};  // running, insertion order
  std::size_t live_jobs_ = 0;   // not yet terminal
  bool pass_pending_ = false;
  bool run_called_ = false;
  std::uint64_t pass_seq_ = 0;  ///< scheduler passes run (one ++ per pass)

  /// Per-pass gauge slots resolved once from options_.counters (name lookup
  /// allocates; doing it every pass would dominate the observation cost —
  /// bench/sim_throughput's tracing-overhead table enforces the budget).
  struct GaugeRefs {
    obs::Gauge* queue_depth = nullptr;
    obs::Gauge* running_jobs = nullptr;
    obs::Gauge* event_queue_size = nullptr;
    obs::Gauge* event_id_window = nullptr;
    obs::Gauge* busy_nodes = nullptr;
    obs::Gauge* rack_pool_gib = nullptr;
    obs::Gauge* global_pool_gib = nullptr;
  };
  GaugeRefs gauges_;

  // --- lazy submission state ----------------------------------------------
  std::size_t next_pull_ = 0;       ///< trace mode: next trace index
  JobId next_pull_id_ = 0;          ///< ids are assigned in pull order
  SimTime last_pull_submit_{};      ///< monotonicity check across pulls
  bool pulled_any_ = false;
  bool source_dry_ = false;         ///< input exhausted
  std::size_t pending_submissions_ = 0;  ///< scheduled but un-fired
  SimTime first_submit_{};          ///< first pulled job's submit time
  /// Source mode only: records of jobs not yet terminal, erased on
  /// completion/rejection so memory is O(live jobs). Lookup-only (never
  /// iterated), so the unordered container cannot perturb determinism.
  std::unordered_map<JobId, Job> live_jobs_rec_;
  std::uint64_t digest_ = 1469598103934665603ULL;  ///< FNV-1a offset basis

  // --- windowed checkpoints -------------------------------------------------
  SimTime window_frontier_{};       ///< state integrated up to here
  std::int64_t window_index_ = 0;   ///< index of the open window
  MetricsWindow window_acc_;        ///< the open window's accumulator

  // --- migration totals (assembled into RunMetrics after the run) ----------
  std::uint64_t demotions_ = 0;
  std::uint64_t promotions_ = 0;
  Bytes demoted_bytes_{};
  Bytes promoted_bytes_{};

  RunMetrics metrics_;
  TimeWeightedMean busy_nodes_tw_;
  TimeWeightedMean rack_pool_tw_;
  TimeWeightedMean global_pool_tw_;
  TimeWeightedMean gpu_tw_;         ///< devices in use (GPU machines only)
  TimeWeightedMean bb_tw_;          ///< burst-buffer bytes reserved
  Bytes busiest_rack_pool_peak_{};  ///< max single-rack pool draw observed
  SimTime last_end_{};
};

}  // namespace dmsched
