// Chunked parallel loops on a persistent Executor.
//
// This is the primitive under `run_sweep*`: workers claim contiguous chunks
// of [0, count) from one atomic counter, so determinism never depends on
// which thread (or which steal) ran an index. The caller always participates
// in the drain, which bounds latency by the work itself — progress never
// requires a free pool worker, so nested parallel_for from inside a worker
// cannot deadlock and oversubscribed parallelism degrades gracefully.
//
// Exception contract (deterministic, pinned by tests/core/ and
// tests/runtime/): every worker exception is captured with the index that
// threw it, and the *lowest index* is rethrown — never first-in-time. A
// throwing worker abandons the rest of its own chunk and unclaimed chunks
// are abandoned, but chunk claims are monotonic, so a throw at index 0 (or
// the lowest throwing index of any claimed chunk) always wins regardless of
// thread timing.
#pragma once

#include <cstddef>
#include <functional>

#include "runtime/executor.hpp"

namespace dmsched {

/// How a parallel loop maps onto the shared pool.
struct ParallelForOptions {
  /// Upper bound on in-flight parallelism *within* the pool (the loop uses
  /// the caller plus up to parallelism-1 pool workers). 0 means hardware
  /// concurrency. May exceed the executor's worker count (oversubscription
  /// is harmless: surplus drain tasks find the counter exhausted).
  unsigned parallelism = 0;
  /// Indices claimed per atomic grab; 0 picks `auto_chunk_size`.
  std::size_t chunk = 0;
  /// Pool to run on; nullptr means Executor::global().
  Executor* executor = nullptr;
};

/// The chunk size used when `options.chunk == 0`: count / (8 × parallelism),
/// clamped to [1, 64]. Exposed so tests can pin the heuristic's invariants
/// (never 0, never starves a worker).
[[nodiscard]] std::size_t auto_chunk_size(std::size_t count,
                                          unsigned parallelism);

/// Visit every index in [0, count) exactly once, in chunks, with bounded
/// parallelism on the shared pool. Ordering between chunks is unspecified;
/// correctness must not depend on it. See the header comment for the
/// deterministic exception contract.
void parallel_for(std::size_t count, const ParallelForOptions& options,
                  const std::function<void(std::size_t)>& fn);

}  // namespace dmsched
