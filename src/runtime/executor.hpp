// Persistent work-stealing executor: the process-lifetime thread pool that
// powers every sweep and bench.
//
// Before this layer existed, `run_sweep` spawned and joined a fresh
// std::jthread team per call, so the many small sweeps the benches and
// golden suites issue paid thread-startup cost every time. The Executor
// starts its workers once and amortizes them across all subsequent sweeps
// (bench/sweep_throughput measures the difference).
//
// Shape:
//  - Each worker owns a deque of tasks guarded by its own mutex.
//    Submissions are distributed round-robin; an idle worker drains its own
//    deque LIFO, then steals FIFO from the others. Lock-protected stealing
//    is deliberate — stealing is rare (tasks are chunky drain loops) and a
//    mutex per deque keeps the code auditable under TSan.
//  - Determinism contract: *no result may depend on steal order.* Work
//    submitted through this layer writes only per-index result slots, so
//    which worker ran a task, in what order, and whether it was stolen are
//    all unobservable in the output. tests/golden/ enforces this end to end.
//  - TaskGroup is the structured-submission surface: `run` hands a task to
//    the pool, `wait` executes the group's own still-queued tasks inline
//    while blocking (so nested submission from inside a worker cannot
//    deadlock, and a waiter never inlines a foreign task that might block
//    on someone else's condition) and rethrows the first exception *by
//    submission index* — deterministic, unlike first-in-time.
//  - Shutdown: the destructor (or process exit, for `global()`) wakes every
//    worker and joins it; groups always wait before destruction, so no task
//    can outlive the state it references. Clean under ASan/UBSan/TSan.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace dmsched {

/// How an Executor is shaped at construction.
struct ExecutorOptions {
  /// Worker count. 0 means hardware concurrency (min 1).
  unsigned threads = 0;
};

/// Cumulative wall-clock profile of one worker thread. Pure telemetry
/// (surfaced on the obs/ wall-clock trace track): counters are maintained
/// with relaxed atomics off the task hot path, never read by any scheduling
/// decision, and nondeterministic by nature — two identical runs will
/// report different steals and waits while producing identical results
/// (the steal-order-unobservable contract above).
struct ExecutorWorkerStats {
  std::uint64_t tasks_run = 0;     ///< tasks this worker executed
  std::uint64_t tasks_stolen = 0;  ///< of those, taken from another deque
  std::uint64_t wait_ns = 0;       ///< total time blocked idle
};

/// A persistent pool of worker threads with per-worker work-stealing
/// deques. Construct once, submit through TaskGroup, reuse for the life of
/// the process. Thread-safe for concurrent submission.
class Executor {
 public:
  explicit Executor(ExecutorOptions options = {});
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Number of worker threads (fixed at construction).
  [[nodiscard]] unsigned worker_count() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Snapshot of every worker's cumulative profile (index = worker id).
  /// Safe to call at any time from any thread; values are monotone.
  [[nodiscard]] std::vector<ExecutorWorkerStats> worker_stats() const;

  /// Tasks executed inline by blocked TaskGroup waiters (not by a pool
  /// worker) — the "lend a hand" path in TaskGroup::wait.
  [[nodiscard]] std::uint64_t inline_runs() const {
    return inline_runs_.load(std::memory_order_relaxed);
  }

  /// The lazily-started process-lifetime default pool (hardware
  /// concurrency). First call starts the workers; they are joined at
  /// process exit. Sweeps use this unless SweepOptions injects another.
  static Executor& global();

 private:
  friend class TaskGroup;

  struct QueuedTask {
    /// Which TaskGroup submitted this (opaque tag). Waiters may only
    /// steal back *their own* group's tasks: inlining an arbitrary foreign
    /// task could block the waiter on that task's private conditions
    /// (the classic help-first stealing deadlock).
    const void* group = nullptr;
    std::function<void()> fn;
  };

  struct WorkerDeque {
    std::mutex mutex;
    std::deque<QueuedTask> tasks;
    // Telemetry (see ExecutorWorkerStats). Relaxed is enough: each counter
    // has one writer (its worker) and readers only want eventual totals.
    std::atomic<std::uint64_t> tasks_run{0};
    std::atomic<std::uint64_t> tasks_stolen{0};
    std::atomic<std::uint64_t> wait_ns{0};
  };

  /// Enqueue a task (round-robin across worker deques) and wake a worker.
  void submit(const void* group, std::function<void()> task);

  /// Run one queued task of `group` on the calling thread if one is still
  /// queued anywhere. Returns false when none is (they all finished or are
  /// running elsewhere). This is how blocked waiters lend a hand — a
  /// group's queued work never waits for a free pool worker to exist.
  bool try_run_one_from(const void* group);

  /// Pop a task: own deque back (LIFO) when `self` is a worker index,
  /// otherwise steal from deque fronts (FIFO) starting after `self`.
  /// `stolen` reports whether the task came from another worker's deque.
  std::function<void()> take(std::size_t self, bool& stolen);

  void worker_loop(std::size_t self);

  std::vector<std::unique_ptr<WorkerDeque>> workers_;
  // Guards sleep/wake and shutdown; queued_ counts tasks submitted but not
  // yet taken (the workers' sleep predicate).
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  std::size_t queued_ = 0;
  bool stopping_ = false;
  std::size_t submit_cursor_ = 0;
  std::atomic<std::uint64_t> inline_runs_{0};
  std::vector<std::jthread> threads_;  // last member: joins before the rest
};

/// A set of tasks submitted to an Executor and awaited together.
///
/// `wait()` blocks until every task has finished, executing queued pool
/// tasks inline while it waits, and rethrows the first exception by
/// submission index (all tasks still run; nothing is cancelled). The
/// destructor waits too (swallowing exceptions), so a TaskGroup can never
/// leak running tasks that reference dead stack frames.
class TaskGroup {
 public:
  explicit TaskGroup(Executor& executor);
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Submit one task to the pool.
  void run(std::function<void()> fn);

  /// Block until all submitted tasks finish; rethrow the lowest-submission-
  /// index exception if any task threw. May be called at most once per
  /// batch; after it returns the group can be reused.
  void wait();

 private:
  struct State {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t unfinished = 0;
    // (submission index, error), unordered; wait() picks the lowest index.
    std::vector<std::pair<std::size_t, std::exception_ptr>> errors;
  };

  Executor& executor_;
  std::shared_ptr<State> state_;
  std::size_t submitted_ = 0;
};

}  // namespace dmsched
