#include "runtime/parallel_for.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <utility>
#include <vector>

namespace dmsched {

namespace {

unsigned resolve_parallelism(unsigned parallelism) {
  if (parallelism == 0) parallelism = std::thread::hardware_concurrency();
  if (parallelism == 0) parallelism = 1;
  return parallelism;
}

}  // namespace

std::size_t auto_chunk_size(std::size_t count, unsigned parallelism) {
  parallelism = resolve_parallelism(parallelism);
  // Aim for ~8 chunks per worker: grabs stay rare (one atomic RMW per chunk
  // instead of per index) while stragglers can still be rebalanced.
  const std::size_t chunk = count / (std::size_t{8} * parallelism);
  return std::clamp<std::size_t>(chunk, 1, 64);
}

void parallel_for(std::size_t count, const ParallelForOptions& options,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const unsigned parallelism = resolve_parallelism(options.parallelism);
  if (parallelism == 1 || count == 1) {
    // Serial fast path: no pool involvement, exceptions propagate from the
    // lowest index reached — the contract the parallel path reproduces.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // Clamp to count so oversized chunk requests cannot overflow the
  // num_chunks arithmetic (and a single chunk is all they can mean anyway).
  const std::size_t chunk = std::min(
      count, options.chunk == 0 ? auto_chunk_size(count, parallelism)
                                : options.chunk);
  const std::size_t num_chunks = (count + chunk - 1) / chunk;

  std::atomic<std::size_t> next_chunk{0};
  // An exception escaping a pool task would be swallowed by the TaskGroup
  // wrapper with the wrong identity (submission order, not loop index), and
  // escaping a raw thread would std::terminate. Capture (index, error)
  // pairs instead; after the join the lowest index is rethrown, so which
  // worker reported first is unobservable.
  std::mutex error_mutex;
  std::vector<std::pair<std::size_t, std::exception_ptr>> errors;

  const auto drain = [&next_chunk, num_chunks, chunk, count, &fn,
                      &error_mutex, &errors] {
    for (;;) {
      const std::size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      const std::size_t begin = c * chunk;
      const std::size_t end = std::min(count, begin + chunk);
      for (std::size_t i = begin; i < end; ++i) {
        try {
          fn(i);
        } catch (...) {
          {
            const std::lock_guard<std::mutex> lock(error_mutex);
            errors.emplace_back(i, std::current_exception());
          }
          // Claim all remaining chunks so every worker winds down promptly
          // (in-flight chunks still finish or throw — and get recorded).
          next_chunk.store(num_chunks, std::memory_order_relaxed);
          return;
        }
      }
    }
  };

  Executor& executor = options.executor ? *options.executor
                                        : Executor::global();
  {
    TaskGroup group(executor);
    const std::size_t helpers =
        std::min<std::size_t>(parallelism, num_chunks) - 1;
    for (std::size_t w = 0; w < helpers; ++w) group.run(drain);
    drain();       // the caller is always one of the drain lanes
    group.wait();  // unstarted helpers run inline here and no-op
  }
  if (!errors.empty()) {
    const auto lowest = std::min_element(
        errors.begin(), errors.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    std::rethrow_exception(lowest->second);
  }
}

}  // namespace dmsched
