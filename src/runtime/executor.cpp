#include "runtime/executor.hpp"

#include <algorithm>
#include <chrono>

#include "common/assert.hpp"

namespace dmsched {

namespace {

unsigned resolve_worker_count(unsigned threads) {
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  return threads;
}

}  // namespace

Executor::Executor(ExecutorOptions options) {
  const unsigned n = resolve_worker_count(options.threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<WorkerDeque>());
  }
  threads_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

Executor::~Executor() {
  {
    const std::lock_guard<std::mutex> lock(idle_mutex_);
    stopping_ = true;
  }
  idle_cv_.notify_all();
  // jthread joins in threads_'s destructor. Every TaskGroup waits before it
  // is destroyed, so the deques are empty by the time anyone destroys the
  // executor; workers only exit once they have drained their deques anyway.
}

Executor& Executor::global() {
  // Function-local static: lazily started on first use, workers joined
  // during static destruction at process exit — no leaked threads under
  // the sanitizers.
  static Executor instance;
  return instance;
}

void Executor::submit(const void* group, std::function<void()> task) {
  std::size_t target;
  {
    const std::lock_guard<std::mutex> lock(idle_mutex_);
    DMSCHED_ASSERT(!stopping_, "submit() on a stopping Executor");
    target = submit_cursor_++ % workers_.size();
    ++queued_;
  }
  {
    const std::lock_guard<std::mutex> lock(workers_[target]->mutex);
    workers_[target]->tasks.push_back({group, std::move(task)});
  }
  idle_cv_.notify_one();
}

std::function<void()> Executor::take(std::size_t self, bool& stolen) {
  const std::size_t n = workers_.size();
  stolen = false;
  // Own deque back (LIFO — cache-warm continuation), then steal from the
  // other deques' fronts (FIFO — oldest work first). Steal order must not
  // matter to any result; it only affects which thread runs a task.
  if (self < n) {
    WorkerDeque& own = *workers_[self];
    const std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      auto task = std::move(own.tasks.back().fn);
      own.tasks.pop_back();
      return task;
    }
  }
  for (std::size_t off = 1; off <= n; ++off) {
    WorkerDeque& victim = *workers_[(self + off) % n];
    const std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      auto task = std::move(victim.tasks.front().fn);
      victim.tasks.pop_front();
      stolen = true;
      return task;
    }
  }
  return nullptr;
}

std::vector<ExecutorWorkerStats> Executor::worker_stats() const {
  std::vector<ExecutorWorkerStats> out;
  out.reserve(workers_.size());
  for (const auto& w : workers_) {
    out.push_back({w->tasks_run.load(std::memory_order_relaxed),
                   w->tasks_stolen.load(std::memory_order_relaxed),
                   w->wait_ns.load(std::memory_order_relaxed)});
  }
  return out;
}

bool Executor::try_run_one_from(const void* group) {
  // A waiter may only inline tasks it submitted itself (same group tag):
  // running a foreign task here could block this thread on a condition
  // only the foreign task's owner will signal. Extraction from the middle
  // of a victim deque is fine — no result depends on execution order.
  std::function<void()> task;
  for (std::size_t w = 0; w < workers_.size() && !task; ++w) {
    WorkerDeque& victim = *workers_[w];
    const std::lock_guard<std::mutex> lock(victim.mutex);
    for (auto it = victim.tasks.begin(); it != victim.tasks.end(); ++it) {
      if (it->group == group) {
        task = std::move(it->fn);
        victim.tasks.erase(it);
        break;
      }
    }
  }
  if (!task) return false;
  {
    const std::lock_guard<std::mutex> lock(idle_mutex_);
    --queued_;
  }
  inline_runs_.fetch_add(1, std::memory_order_relaxed);
  task();
  return true;
}

void Executor::worker_loop(std::size_t self) {
  WorkerDeque& me = *workers_[self];
  for (;;) {
    bool stolen = false;
    if (auto task = take(self, stolen)) {
      {
        const std::lock_guard<std::mutex> lock(idle_mutex_);
        --queued_;
      }
      me.tasks_run.fetch_add(1, std::memory_order_relaxed);
      if (stolen) me.tasks_stolen.fetch_add(1, std::memory_order_relaxed);
      task();  // task wrappers never throw (TaskGroup captures inside)
      continue;
    }
    std::unique_lock<std::mutex> lock(idle_mutex_);
    // Clock only the idle block (telemetry for the wall-clock trace track);
    // a satisfied predicate returns immediately and adds ~nothing.
    const auto idle0 = std::chrono::steady_clock::now();
    idle_cv_.wait(lock, [this] { return stopping_ || queued_ > 0; });
    me.wait_ns.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - idle0)
                .count()),
        std::memory_order_relaxed);
    if (stopping_ && queued_ == 0) return;
  }
}

TaskGroup::TaskGroup(Executor& executor)
    : executor_(executor), state_(std::make_shared<State>()) {}

TaskGroup::~TaskGroup() {
  // Never let tasks outlive the stack they might reference; swallow errors
  // (wait() is the throwing surface).
  try {
    wait();
  } catch (...) {
  }
}

void TaskGroup::run(std::function<void()> fn) {
  const std::size_t index = submitted_++;
  {
    const std::lock_guard<std::mutex> lock(state_->mutex);
    ++state_->unfinished;
  }
  executor_.submit(
      state_.get(),
      [state = state_, index, fn = std::move(fn)] {
        std::exception_ptr error;
        try {
          fn();
        } catch (...) {
          error = std::current_exception();
        }
        const std::lock_guard<std::mutex> lock(state->mutex);
        if (error) state->errors.emplace_back(index, error);
        if (--state->unfinished == 0) state->done.notify_all();
      });
}

void TaskGroup::wait() {
  for (;;) {
    {
      const std::lock_guard<std::mutex> lock(state_->mutex);
      if (state_->unfinished == 0) break;
    }
    // Lend a hand instead of idling: run this group's still-queued tasks
    // inline. This is what makes nested submission from inside a worker
    // deadlock-free — a blocked waiter is itself an execution resource.
    if (executor_.try_run_one_from(state_.get())) continue;
    // None of our tasks is queued anywhere, so all our unfinished tasks
    // have been taken and are running on some thread — each will notify
    // `done` when it finishes. (The predicate re-checks under the lock, so
    // a finish between the scan and the wait cannot be lost.)
    std::unique_lock<std::mutex> lock(state_->mutex);
    state_->done.wait(lock, [this] { return state_->unfinished == 0; });
    break;
  }
  std::vector<std::pair<std::size_t, std::exception_ptr>> errors;
  {
    const std::lock_guard<std::mutex> lock(state_->mutex);
    errors.swap(state_->errors);
  }
  submitted_ = 0;
  if (!errors.empty()) {
    // Deterministic choice: the lowest submission index wins, regardless of
    // which worker reported first. Every submitted task runs (nothing is
    // cancelled), so the winner does not depend on timing.
    const auto lowest = std::min_element(
        errors.begin(), errors.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    std::rethrow_exception(lowest->second);
  }
}

}  // namespace dmsched
