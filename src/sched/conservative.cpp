#include "sched/conservative.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace dmsched {

ConservativeScheduler::ConservativeScheduler(std::size_t window)
    : window_(window) {
  DMSCHED_ASSERT(window_ > 0, "conservative: zero window");
}

void ConservativeScheduler::schedule(SchedContext& ctx) {
  ++stats_.passes;
  const SimTime now = ctx.now();
  const bool clean = profile_.sync(ctx);

  // Fast pass: nothing moved since the last pass, so every retained
  // reservation is exactly what recomputing it would yield (its start time
  // is a breakpoint, none of which crossed now) — only arrivals since the
  // cached tail epoch still need a slot. Anything else (resource movement,
  // re-ranked queue order, a hand-built context) falls back to recomputing
  // every reservation against a freshly synced profile.
  std::vector<JobId> todo;
  const bool fast = clean && cache_valid_ && ctx.queue_order_stable() &&
                    now >= last_now_;
  if (fast) {
    ++stats_.fast_passes;
    todo = ctx.queued_jobs_after(tail_epoch_);
  } else {
    profile_.drop_holds();
    reserved_ = 0;
    todo = ctx.queued_jobs();
  }

  bool any_start = false;
  for (JobId id : todo) {
    if (reserved_ >= window_) break;
    ++reserved_;
    ++stats_.jobs_examined;
    ++stats_.plans_attempted;  // every examined job gets a window fit
    const Job& job = ctx.job(id);
    const auto walltime_bound = [&](const TakePlan& plan) {
      const double dilation = ctx.slowdown().dilation_bytes(
          plan.rack_pool_total(), plan.neighbor_pool_total(),
          plan.global_total(), job.total_mem(), job.sensitivity);
      return job.walltime.scaled(dilation);
    };
    // Window fitting: the reservation must be feasible for the job's whole
    // (dilated) walltime against every earlier reservation, not just at its
    // start instant — that is what makes this scheduler conservative.
    const auto fit =
        profile_.earliest_fit_window(job, ctx.placement(), walltime_bound);
    // Admitted jobs always fit once everything drains (final profile state
    // has every hold expired and every running job released).
    DMSCHED_ASSERT(fit.has_value(),
                   "conservative: admitted job has no reservation");

    if (fit->time <= now) {
      auto alloc = plan_start(ctx.cluster(), job, ctx.placement());
      DMSCHED_ASSERT(alloc.has_value(),
                     "conservative: profile said 'fits now' but the planner "
                     "disagrees");
      ctx.start_job(id, *alloc);
      any_start = true;
      // Hold the plan the job actually started with, not fit->plan: the live
      // planner may distribute racks differently (an overdue release makes
      // the profile more optimistic than the ledger), and a hold that
      // disagrees with the ledger mis-prices every later reservation in this
      // pass. The bound follows the started plan's dilation too, matching
      // the engine's expected release.
      const TakePlan started = take_from(*alloc, ctx.cluster().config());
      profile_.add_hold(now, now + walltime_bound(started), started);
    } else {
      profile_.add_hold(fit->time, fit->time + walltime_bound(fit->plan),
                        fit->plan);
    }
  }

  cache_valid_ = !any_start && ctx.timeline() != nullptr &&
                 ctx.queue_order_stable();
  tail_epoch_ = ctx.queue_tail_epoch();
  last_now_ = now;
}

}  // namespace dmsched
