#include "sched/conservative.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "sched/profile.hpp"

namespace dmsched {

ConservativeScheduler::ConservativeScheduler(std::size_t window)
    : window_(window) {
  DMSCHED_ASSERT(window_ > 0, "conservative: zero window");
}

void ConservativeScheduler::schedule(SchedContext& ctx) {
  const auto queue = ctx.queued_jobs();
  if (queue.empty()) return;

  FreeProfile profile = FreeProfile::from_context(ctx);
  const SimTime now = ctx.now();

  std::size_t reserved = 0;
  for (JobId id : queue) {
    if (reserved >= window_) break;
    ++reserved;
    const Job& job = ctx.job(id);
    const auto walltime_bound = [&](const TakePlan& plan) {
      const double dilation = ctx.slowdown().dilation_bytes(
          plan.rack_pool_total(), plan.global_total(), job.total_mem(),
          job.sensitivity);
      return job.walltime.scaled(dilation);
    };
    // Window fitting: the reservation must be feasible for the job's whole
    // (dilated) walltime against every earlier reservation, not just at its
    // start instant — that is what makes this scheduler conservative.
    const auto fit =
        profile.earliest_fit_window(job, ctx.placement(), walltime_bound);
    // Admitted jobs always fit once everything drains (final profile state
    // has every hold expired and every running job released).
    DMSCHED_ASSERT(fit.has_value(),
                   "conservative: admitted job has no reservation");
    const SimTime end_bound = fit->time + walltime_bound(fit->plan);

    if (fit->time <= now) {
      auto alloc = plan_start(ctx.cluster(), job, ctx.placement());
      DMSCHED_ASSERT(alloc.has_value(),
                     "conservative: profile said 'fits now' but the planner "
                     "disagrees");
      ctx.start_job(id, *alloc);
      // Resources leave the free pool immediately: rebuild the base by
      // holding them until the job's bound.
      profile.add_hold(now, end_bound, fit->plan);
    } else {
      profile.add_hold(fit->time, end_bound, fit->plan);
    }
  }
}

}  // namespace dmsched
