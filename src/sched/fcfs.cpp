#include "sched/fcfs.hpp"

namespace dmsched {

void FcfsScheduler::schedule(SchedContext& ctx) {
  for (JobId id : ctx.queued_jobs()) {
    auto alloc = plan_start(ctx.cluster(), ctx.job(id), ctx.placement());
    if (!alloc) break;  // head of queue blocks everyone behind it
    ctx.start_job(id, *alloc);
  }
}

}  // namespace dmsched
