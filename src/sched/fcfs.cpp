#include "sched/fcfs.hpp"

namespace dmsched {

void FcfsScheduler::schedule(SchedContext& ctx) {
  ++stats_.passes;
  for (JobId id : ctx.queued_jobs()) {
    ++stats_.jobs_examined;
    ++stats_.plans_attempted;
    auto alloc = plan_start(ctx.cluster(), ctx.job(id), ctx.placement());
    if (!alloc) break;  // head of queue blocks everyone behind it
    ctx.start_job(id, *alloc);
  }
}

}  // namespace dmsched
