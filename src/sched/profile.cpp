#include "sched/profile.hpp"

#include <algorithm>
#include <atomic>

#include "common/assert.hpp"

namespace dmsched {
namespace {

std::uint64_t next_timeline_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

void apply_signed(ResourceState& state, const TakePlan& take, bool adds) {
  if (adds) {
    release_take(state, take);
  } else {
    apply_take(state, take);
  }
}

}  // namespace

// --- AvailabilityTimeline ----------------------------------------------------

AvailabilityTimeline::AvailabilityTimeline(const ClusterConfig& config)
    : config_(&config),
      base_free_(empty_state(config)),
      id_(next_timeline_id()) {}

void AvailabilityTimeline::on_start(JobId id, SimTime release_at,
                                    const TakePlan& take) {
  apply_take(base_free_, take);
  // upper_bound keeps equal release times in start order — the order a
  // rebuild over the running list would see them in.
  const auto it = std::upper_bound(
      entries_.begin(), entries_.end(), release_at,
      [](SimTime t, const Entry& e) { return t < e.time; });
  entries_.insert(it, Entry{release_at, id, take});
  ++version_;
}

void AvailabilityTimeline::on_finish(JobId id, SimTime release_at) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), release_at,
      [](const Entry& e, SimTime t) { return e.time < t; });
  while (it != entries_.end() && it->time == release_at && it->job != id) ++it;
  DMSCHED_ASSERT(it != entries_.end() && it->time == release_at,
                 "AvailabilityTimeline: finish for untracked job");
  release_take(base_free_, it->take);
  entries_.erase(it);
  ++version_;
}

bool AvailabilityTimeline::has_release_in(SimTime after, SimTime upto) const {
  const auto it = std::upper_bound(
      entries_.begin(), entries_.end(), after,
      [](SimTime t, const Entry& e) { return t < e.time; });
  return it != entries_.end() && it->time <= upto;
}

// --- FreeProfile -------------------------------------------------------------

FreeProfile::FreeProfile(ResourceState base, SimTime now,
                         const ClusterConfig* config) {
  reset(std::move(base), now, config);
}

void FreeProfile::reset(ResourceState base, SimTime now,
                        const ClusterConfig* config) {
  DMSCHED_ASSERT(config != nullptr, "FreeProfile: null config");
  base_ = std::move(base);
  now_ = now;
  config_ = config;
  deltas_.clear();
  ordered_.clear();
  base_mark_ = 0;
  from_timeline_ = false;
  timeline_id_ = 0;
  timeline_version_ = 0;
  cache_times_.clear();
  cache_states_.clear();
  cache_consumed_.clear();
}

FreeProfile FreeProfile::from_context(const SchedContext& ctx) {
  FreeProfile profile;
  profile.sync(ctx);
  return profile;
}

bool FreeProfile::sync(const SchedContext& ctx) {
  const AvailabilityTimeline* tl = ctx.timeline();
  const SimTime now = ctx.now();
  if (tl != nullptr && from_timeline_ && timeline_id_ == tl->id() &&
      timeline_version_ == tl->version() && now >= now_ &&
      next_change_after(now_) > now) {
    // Clean: no resources moved and no delta (release or hold boundary)
    // crossed now since the last pass — the profile, its holds, and the
    // prefix-state cache all stay valid; only the clock advances.
    now_ = now;
    return true;
  }
  if (tl != nullptr) {
    reset(tl->free_now(), now, &tl->config());
    const auto& entries = tl->entries();
    deltas_.reserve(entries.size());
    ordered_.reserve(entries.size());
    for (const auto& e : entries) {
      // Timeline entries are already in delta_precedes order (all adds,
      // time-sorted), so ordered_ is just the identity — no sort.
      deltas_.push_back({e.time, e.take, /*adds=*/true});
      ordered_.push_back(static_cast<std::uint32_t>(ordered_.size()));
    }
    from_timeline_ = true;
    timeline_id_ = tl->id();
    timeline_version_ = tl->version();
  } else {
    reset(snapshot(ctx.cluster()), now, &ctx.cluster().config());
    for (const RunningJob& r : ctx.running_jobs()) {
      add_release(r.expected_end, r.take);
    }
  }
  base_mark_ = deltas_.size();
  return false;
}

void FreeProfile::drop_holds() { rollback(base_mark_); }

void FreeProfile::add_release(SimTime time, const TakePlan& take) {
  // An expected release in the past (a dilated job overrunning its walltime
  // bound) needs no clamp: every query instant is >= now(), so the delta is
  // folded into the sweep-start state either way.
  insert_delta({time, take, /*adds=*/true});
}

void FreeProfile::add_hold(SimTime start, SimTime end, const TakePlan& take) {
  DMSCHED_ASSERT(start >= now_, "add_hold: hold starts in the past");
  DMSCHED_ASSERT(end > start, "add_hold: empty hold");
  insert_delta({start, take, /*adds=*/false});
  insert_delta({end, take, /*adds=*/true});
}

void FreeProfile::insert_delta(ProfileDelta d) {
  invalidate_cache_from(d.time);
  const auto idx = static_cast<std::uint32_t>(deltas_.size());
  deltas_.push_back(std::move(d));
  const ProfileDelta& nd = deltas_.back();
  // upper_bound: equal deltas land after existing ones, so ties within one
  // (time, adds) class keep insertion order — exactly what stable_sort over
  // the insertion-ordered vector used to produce.
  const auto it = std::upper_bound(
      ordered_.begin(), ordered_.end(), nd,
      [this](const ProfileDelta& a, std::uint32_t bi) {
        return delta_precedes(a, deltas_[bi]);
      });
  ordered_.insert(it, idx);
}

void FreeProfile::rollback(Mark m) {
  DMSCHED_ASSERT(m <= deltas_.size(), "rollback: mark from the future");
  if (m == deltas_.size()) return;
  SimTime first_removed = kTimeInfinity;
  for (std::size_t i = m; i < deltas_.size(); ++i) {
    first_removed = std::min(first_removed, deltas_[i].time);
  }
  invalidate_cache_from(first_removed);
  ordered_.erase(std::remove_if(ordered_.begin(), ordered_.end(),
                                [m](std::uint32_t i) { return i >= m; }),
                 ordered_.end());
  deltas_.resize(m);
}

void FreeProfile::invalidate_cache_from(SimTime t) const {
  const auto it =
      std::lower_bound(cache_times_.begin(), cache_times_.end(), t);
  const auto keep = static_cast<std::size_t>(it - cache_times_.begin());
  // Surviving rows only fold deltas with time < t; a delta inserted or
  // removed at time >= t sits after that prefix in ordered_, so the rows'
  // consumed counts stay valid.
  cache_times_.resize(keep);
  cache_states_.resize(keep);
  cache_consumed_.resize(keep);
}

void FreeProfile::ensure_cached_to(SimTime t) const {
  if (!cache_times_.empty() && cache_times_.back() >= t) return;
  std::size_t i = cache_consumed_.empty() ? 0 : cache_consumed_.back();
  if (i >= ordered_.size() || deltas_[ordered_[i]].time > t) return;
  ResourceState state = cache_states_.empty() ? base_ : cache_states_.back();
  while (i < ordered_.size() && deltas_[ordered_[i]].time <= t) {
    const SimTime row_time = deltas_[ordered_[i]].time;
    // One row per distinct delta time, with every delta at that time folded
    // (adds before subtracts, per ordered_) — intermediate same-time states
    // are never observable, matching the "apply everything <= t" contract.
    while (i < ordered_.size() && deltas_[ordered_[i]].time == row_time) {
      const ProfileDelta& d = deltas_[ordered_[i]];
      apply_signed(state, d.take, d.adds);
      ++i;
    }
    cache_times_.push_back(row_time);
    cache_states_.push_back(state);
    cache_consumed_.push_back(i);
  }
}

const ResourceState& FreeProfile::state_covering(SimTime t) const {
  ensure_cached_to(t);
  const auto it =
      std::upper_bound(cache_times_.begin(), cache_times_.end(), t);
  if (it == cache_times_.begin()) return base_;
  return cache_states_[static_cast<std::size_t>(it - cache_times_.begin()) -
                       1];
}

ResourceState FreeProfile::state_at(SimTime time) const {
  DMSCHED_ASSERT(time >= now_, "state_at: time in the past");
  return state_covering(time);
}

SimTime FreeProfile::next_change_after(SimTime t) const {
  const auto it = std::upper_bound(
      ordered_.begin(), ordered_.end(), t,
      [this](SimTime v, std::uint32_t i) { return v < deltas_[i].time; });
  if (it == ordered_.end()) return kTimeInfinity;
  return deltas_[*it].time;
}

std::vector<SimTime> FreeProfile::breakpoints() const {
  std::vector<SimTime> times;
  times.reserve(ordered_.size() + 1);
  times.push_back(now_);
  for (const std::uint32_t i : ordered_) {
    if (deltas_[i].time >= now_) times.push_back(deltas_[i].time);
  }
  // ordered_ is time-sorted, so after the leading now_ the vector is
  // already sorted; only duplicates remain to strip.
  times.erase(std::unique(times.begin(), times.end()), times.end());
  return times;
}

std::optional<FreeProfile::Fit> FreeProfile::earliest_fit(
    const Job& job, PlacementPolicy policy) const {
  // Sweep the breakpoints in order against the cached prefix states. Holds
  // make availability non-monotone, so every breakpoint is tested — but a
  // repeated sweep over an unchanged prefix is pure cache hits.
  SimTime t = now_;
  for (;;) {
    if (auto plan = compute_take(state_covering(t), *config_, job, policy)) {
      return Fit{t, std::move(*plan)};
    }
    const SimTime next = next_change_after(t);
    if (next == kTimeInfinity) return std::nullopt;  // final state tested
    t = next;
  }
}

std::optional<FreeProfile::Fit> FreeProfile::earliest_fit_window(
    const Job& job, PlacementPolicy policy,
    const std::function<SimTime(const TakePlan&)>& duration_of) const {
  SimTime t = now_;
  for (;;) {
    auto plan = compute_take(state_covering(t), *config_, job, policy);
    if (plan) {
      const SimTime end = t + duration_of(*plan);
      bool continuous = true;
      for (SimTime u = next_change_after(t); u < end;
           u = next_change_after(u)) {
        if (!can_apply(state_covering(u), *plan)) {
          continuous = false;
          break;
        }
      }
      if (continuous) return Fit{t, std::move(*plan)};
    }
    const SimTime next = next_change_after(t);
    if (next == kTimeInfinity) return std::nullopt;
    t = next;
  }
}

}  // namespace dmsched
