#include "sched/profile.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace dmsched {

FreeProfile::FreeProfile(ResourceState base, SimTime now,
                         const ClusterConfig* config)
    : base_(std::move(base)), now_(now), config_(config) {
  DMSCHED_ASSERT(config_ != nullptr, "FreeProfile: null config");
}

FreeProfile FreeProfile::from_context(const SchedContext& ctx) {
  FreeProfile profile(snapshot(ctx.cluster()), ctx.now(),
                      &ctx.cluster().config());
  for (const RunningJob& r : ctx.running_jobs()) {
    profile.add_release(r.expected_end, r.take);
  }
  return profile;
}

void FreeProfile::add_release(SimTime time, const TakePlan& take) {
  // A release whose expected time already passed (dilated job overrunning
  // its walltime bound) is treated as "any moment now".
  deltas_.push_back({max(time, now_), take, /*adds=*/true});
}

void FreeProfile::add_hold(SimTime start, SimTime end, const TakePlan& take) {
  DMSCHED_ASSERT(start >= now_, "add_hold: hold starts in the past");
  DMSCHED_ASSERT(end > start, "add_hold: empty hold");
  deltas_.push_back({start, take, /*adds=*/false});
  deltas_.push_back({end, take, /*adds=*/true});
}

void FreeProfile::rollback(Mark m) {
  DMSCHED_ASSERT(m <= deltas_.size(), "rollback: mark from the future");
  deltas_.resize(m);
}

void FreeProfile::apply_signed(ResourceState& state, const TakePlan& take,
                               bool adds) {
  if (adds) {
    release_take(state, take);
  } else {
    apply_take(state, take);
  }
}

ResourceState FreeProfile::state_at(SimTime time) const {
  DMSCHED_ASSERT(time >= now_, "state_at: time in the past");
  ResourceState state = base_;
  // Apply additions before subtractions at equal timestamps so a hold that
  // begins exactly when a release lands is satisfiable.
  std::vector<const Delta*> applicable;
  for (const auto& d : deltas_) {
    if (d.time <= time) applicable.push_back(&d);
  }
  std::stable_sort(applicable.begin(), applicable.end(),
                   [](const Delta* a, const Delta* b) {
                     if (a->time != b->time) return a->time < b->time;
                     return a->adds && !b->adds;
                   });
  for (const Delta* d : applicable) apply_signed(state, d->take, d->adds);
  return state;
}

std::vector<SimTime> FreeProfile::breakpoints() const {
  std::vector<SimTime> times;
  times.push_back(now_);
  for (const auto& d : deltas_) {
    if (d.time >= now_) times.push_back(d.time);
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  return times;
}

std::optional<FreeProfile::Fit> FreeProfile::earliest_fit_window(
    const Job& job, PlacementPolicy policy,
    const std::function<SimTime(const TakePlan&)>& duration_of) const {
  // Precompute the state at every breakpoint (including now). Memory is
  // O(breakpoints × racks), which is small; it lets the window check below
  // probe arbitrary future instants cheaply.
  std::vector<const Delta*> ordered;
  ordered.reserve(deltas_.size());
  for (const auto& d : deltas_) ordered.push_back(&d);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Delta* a, const Delta* b) {
                     if (a->time != b->time) return a->time < b->time;
                     return a->adds && !b->adds;
                   });

  std::vector<SimTime> times;
  std::vector<ResourceState> states;
  ResourceState state = base_;
  std::size_t i = 0;
  SimTime t = now_;
  for (;;) {
    while (i < ordered.size() && ordered[i]->time <= t) {
      apply_signed(state, ordered[i]->take, ordered[i]->adds);
      ++i;
    }
    times.push_back(t);
    states.push_back(state);
    if (i >= ordered.size()) break;
    t = ordered[i]->time;
  }

  for (std::size_t start = 0; start < times.size(); ++start) {
    auto plan = compute_take(states[start], *config_, job, policy);
    if (!plan) continue;
    const SimTime end = times[start] + duration_of(*plan);
    bool continuous = true;
    for (std::size_t k = start + 1; k < times.size() && times[k] < end; ++k) {
      if (!can_apply(states[k], *plan)) {
        continuous = false;
        break;
      }
    }
    if (continuous) return Fit{times[start], std::move(*plan)};
  }
  return std::nullopt;
}

std::optional<FreeProfile::Fit> FreeProfile::earliest_fit(
    const Job& job, PlacementPolicy policy) const {
  // Sweep the breakpoints in order, maintaining the state incrementally.
  // Holds make availability non-monotone, so every breakpoint is tested.
  std::vector<const Delta*> ordered;
  ordered.reserve(deltas_.size());
  for (const auto& d : deltas_) ordered.push_back(&d);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Delta* a, const Delta* b) {
                     if (a->time != b->time) return a->time < b->time;
                     return a->adds && !b->adds;
                   });

  ResourceState state = base_;
  std::size_t i = 0;
  SimTime t = now_;
  for (;;) {
    // Apply every delta effective at or before t.
    while (i < ordered.size() && ordered[i]->time <= t) {
      apply_signed(state, ordered[i]->take, ordered[i]->adds);
      ++i;
    }
    if (auto plan = compute_take(state, *config_, job, policy)) {
      return Fit{t, std::move(*plan)};
    }
    if (i >= ordered.size()) return std::nullopt;  // final state tested
    t = ordered[i]->time;
  }
}

}  // namespace dmsched
