#include "sched/easy.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace dmsched {

void EasyScheduler::schedule(SchedContext& ctx) {
  const auto queue = ctx.queued_jobs();
  std::size_t qi = 0;

  // Phase 1: start in order while the head fits.
  while (qi < queue.size()) {
    auto alloc =
        plan_start(ctx.cluster(), ctx.job(queue[qi]), ctx.placement());
    if (!alloc) break;
    ctx.start_job(queue[qi], *alloc);
    ++qi;
  }
  if (qi >= queue.size()) return;

  // Phase 2: node-only shadow time for the blocked head. Walk expected
  // releases in time order accumulating freed nodes until the head fits.
  const Job& head = ctx.job(queue[qi]);
  auto running = ctx.running_jobs();
  std::sort(running.begin(), running.end(),
            [](const RunningJob& a, const RunningJob& b) {
              if (a.expected_end != b.expected_end) {
                return a.expected_end < b.expected_end;
              }
              return a.id < b.id;
            });
  std::int32_t avail = ctx.cluster().free_nodes_total();
  SimTime shadow = kTimeInfinity;
  std::int32_t extra = 0;
  if (avail >= head.nodes) {
    // Head has the nodes but not the memory: a node-only policy reserves
    // nothing and the whole queue is fair game for backfill. This is the
    // failure mode memory-aware scheduling fixes.
    shadow = ctx.now();
    extra = avail - head.nodes;
  } else {
    for (const RunningJob& r : running) {
      avail += r.take.node_total();
      if (avail >= head.nodes) {
        shadow = r.expected_end;
        extra = avail - head.nodes;
        break;
      }
    }
  }
  DMSCHED_ASSERT(shadow < kTimeInfinity,
                 "EASY: head job wider than the machine was not rejected");

  // Phase 3: backfill behind the head.
  for (std::size_t i = qi + 1; i < queue.size(); ++i) {
    const Job& cand = ctx.job(queue[i]);
    auto alloc = plan_start(ctx.cluster(), cand, ctx.placement());
    if (!alloc) continue;
    // Memory-unaware bound: the raw walltime request, no dilation.
    const bool ends_before_shadow = ctx.now() + cand.walltime <= shadow;
    const bool within_extra = cand.nodes <= extra;
    if (!ends_before_shadow && !within_extra) continue;
    ctx.start_job(queue[i], *alloc);
    if (!ends_before_shadow) extra -= cand.nodes;
  }
}

}  // namespace dmsched
