#include "sched/easy.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "sched/profile.hpp"

namespace dmsched {

bool EasyScheduler::try_fast_pass(SchedContext& ctx) {
  const AvailabilityTimeline* tl = ctx.timeline();
  if (tl == nullptr || !cache_valid_ || !ctx.queue_order_stable() ||
      tl->id() != timeline_id_ || tl->version() != timeline_version_ ||
      ctx.now() < cached_now_) {
    return false;
  }
  // Unchanged timeline version ⇒ no start or finish since the cached pass:
  // the cluster is byte-identical, the head is still blocked (plan_start is
  // a pure function of cluster state), and every candidate the cached pass
  // rejected stays rejected — both backfill rules only tighten as now
  // advances past a fixed shadow, and the stored extra_ only shrank. Only
  // jobs appended since need judging, with the same two-counter bookkeeping
  // as the full pass (see phase 3 there): `extra` drives decisions exactly
  // as a recompute's phase 3 would, `cache_extra` tracks the crossing
  // margin a recompute would find given the *dilated* release bounds.
  const SimTime now = ctx.now();
  const SimTime shadow = shadow_is_now_ ? now : shadow_;
  std::int32_t extra = extra_;
  std::int32_t cache_extra = extra_;
  bool cache_ok = true;
  for (const JobId id : ctx.queued_jobs_after(tail_epoch_)) {
    const Job& cand = ctx.job(id);
    ++stats_.jobs_examined;
    // Rules first: neither depends on the allocation, and planning is the
    // expensive step — skip it for candidates no plan could rescue.
    const bool ends_before_shadow = now + cand.walltime <= shadow;
    const bool within_extra = cand.nodes <= extra;
    if (!ends_before_shadow && !within_extra) continue;
    if (cand.nodes > ctx.cluster().free_nodes_total()) continue;
    ++stats_.plans_attempted;
    auto alloc = plan_start(ctx.cluster(), cand, ctx.placement());
    if (!alloc) continue;
    const SimTime bound =
        now + cand.walltime.scaled(ctx.slowdown().dilation_for(*alloc, cand));
    ctx.start_job(id, *alloc);
    if (!ends_before_shadow) extra -= cand.nodes;
    if (bound > shadow) {
      cache_extra -= cand.nodes;
      if (cache_extra < 0) cache_ok = false;
    } else if (bound == shadow) {
      // A release exactly at the shadow sits among the equal-end releases
      // of the crossing walk, where the id tie-break decides whether its
      // nodes count toward the recomputed extra. Not worth modelling.
      cache_ok = false;
    }
  }
  // Starts whose dilated bound lands by the shadow return their nodes in
  // time and leave the head's crossing point untouched; starts running past
  // it consumed crossing margin, tracked in cache_extra. Either way this
  // pass's decisions matched a recompute; the cache survives only while the
  // margin stays non-negative.
  if (!cache_ok) {
    cache_valid_ = false;
    return true;
  }
  timeline_version_ = tl->version();
  tail_epoch_ = ctx.queue_tail_epoch();
  cached_now_ = now;
  extra_ = cache_extra;
  return true;
}

void EasyScheduler::schedule(SchedContext& ctx) {
  ++stats_.passes;
  if (try_fast_pass(ctx)) {
    ++stats_.fast_passes;
    return;
  }
  cache_valid_ = false;

  const auto queue = ctx.queued_jobs();
  std::size_t qi = 0;

  // Phase 1: start in order while the head fits.
  while (qi < queue.size()) {
    ++stats_.jobs_examined;
    ++stats_.plans_attempted;
    auto alloc =
        plan_start(ctx.cluster(), ctx.job(queue[qi]), ctx.placement());
    if (!alloc) break;
    ctx.start_job(queue[qi], *alloc);
    ++qi;
  }
  if (qi >= queue.size()) return;

  // Phase 2: node-only shadow time for the blocked head. Walk expected
  // releases in time order accumulating freed nodes until the head fits.
  const Job& head = ctx.job(queue[qi]);
  auto running = ctx.running_jobs();
  std::sort(running.begin(), running.end(),
            [](const RunningJob& a, const RunningJob& b) {
              if (a.expected_end != b.expected_end) {
                return a.expected_end < b.expected_end;
              }
              return a.id < b.id;
            });
  std::int32_t avail = ctx.cluster().free_nodes_total();
  SimTime shadow = kTimeInfinity;
  bool shadow_is_now = false;
  std::int32_t extra = 0;
  if (avail >= head.nodes) {
    // Head has the nodes but not the memory: a node-only policy reserves
    // nothing and the whole queue is fair game for backfill. This is the
    // failure mode memory-aware scheduling fixes.
    shadow = ctx.now();
    shadow_is_now = true;
    extra = avail - head.nodes;
  } else {
    for (const RunningJob& r : running) {
      avail += r.take.node_total();
      if (avail >= head.nodes) {
        shadow = r.expected_end;
        extra = avail - head.nodes;
        break;
      }
    }
  }
  DMSCHED_ASSERT(shadow < kTimeInfinity,
                 "EASY: head job wider than the machine was not rejected");

  // Phase 3: backfill behind the head. Two counters: `extra` drives the
  // decisions (legacy semantics — raw-walltime shadow test, deduct only for
  // runs-past-shadow admissions), while `cache_extra` tracks the crossing
  // margin a *recompute* of phase 2 would find afterwards. They differ
  // because the engine's actual release bound is dilated: a start admitted
  // as "ends before shadow" on raw walltime can release after it, and then
  // its nodes are not back by the shadow — the recomputed extra shrinks,
  // and if it would go negative the shadow itself moves later.
  std::int32_t cache_extra = extra;
  bool cache_ok = true;
  for (std::size_t i = qi + 1; i < queue.size(); ++i) {
    const Job& cand = ctx.job(queue[i]);
    ++stats_.jobs_examined;
    // Rules first (memory-unaware bound: raw walltime, no dilation): they
    // do not depend on the allocation, and planning is the expensive step —
    // at saturation almost every candidate dies here, so the full pass is
    // an O(1) test per queued job plus a plan per plausible backfill.
    const bool ends_before_shadow = ctx.now() + cand.walltime <= shadow;
    const bool within_extra = cand.nodes <= extra;
    if (!ends_before_shadow && !within_extra) continue;
    // A plan needs cand.nodes free nodes somewhere; don't ask for one when
    // the machine provably lacks them.
    if (cand.nodes > ctx.cluster().free_nodes_total()) continue;
    ++stats_.plans_attempted;
    auto alloc = plan_start(ctx.cluster(), cand, ctx.placement());
    if (!alloc) continue;
    // The engine's release bound for this start (dilated walltime).
    const SimTime bound =
        ctx.now() +
        cand.walltime.scaled(ctx.slowdown().dilation_for(*alloc, cand));
    ctx.start_job(queue[i], *alloc);
    if (!ends_before_shadow) extra -= cand.nodes;
    if (bound > shadow) {
      cache_extra -= cand.nodes;
      if (cache_extra < 0) cache_ok = false;
    } else if (bound == shadow) {
      // A release exactly at the shadow sits among the equal-end releases
      // of the crossing walk, where the id tie-break decides whether its
      // nodes count toward the recomputed extra. Not worth modelling.
      cache_ok = false;
    }
  }

  // The pass converged with the head blocked: remember its shadow and the
  // recompute-equivalent extra budget so the next pass can skip straight to
  // new arrivals (a start releasing by the shadow leaves the crossing point
  // where it was; one running past it only consumed margin — unless the
  // margin ran out, in which case the shadow moved and the cache is dead).
  const AvailabilityTimeline* tl = ctx.timeline();
  if (cache_ok && tl != nullptr && ctx.queue_order_stable()) {
    cache_valid_ = true;
    timeline_id_ = tl->id();
    timeline_version_ = tl->version();
    tail_epoch_ = ctx.queue_tail_epoch();
    cached_now_ = ctx.now();
    shadow_is_now_ = shadow_is_now;
    shadow_ = shadow;
    extra_ = cache_extra;
  }
}

}  // namespace dmsched
