// FreeProfile: projected free resources over time.
//
// Built from the current cluster state plus the expected release times of
// running jobs, optionally extended with *holds* (tentative backfills,
// conservative reservations). Schedulers query it for the earliest time a
// job fits — in BOTH dimensions, nodes and pool bytes — which is what makes
// backfilling disaggregation-aware.
//
// Resources are counted (rack-granular) states; feasibility at a breakpoint
// reuses the placement kernel, so the profile can never disagree with the
// planner about whether a job fits.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "memory/placement.hpp"
#include "sched/scheduler.hpp"

namespace dmsched {

/// Piecewise-constant view of future free resources.
class FreeProfile {
 public:
  /// `base` is the free state at `now` (normally `snapshot(cluster)`).
  FreeProfile(ResourceState base, SimTime now, const ClusterConfig* config);

  /// Convenience: base state and releases of all running jobs.
  static FreeProfile from_context(const SchedContext& ctx);

  /// Resources return to the pool at `time` (a running job's expected end).
  void add_release(SimTime time, const TakePlan& take);

  /// Resources are held from `start` to `end` (reservation / tentative
  /// backfill). `start` may equal now() for jobs being started in this pass.
  void add_hold(SimTime start, SimTime end, const TakePlan& take);

  /// Free state as of `time` (>= now): base plus all releases/holds with
  /// effect time <= `time`.
  [[nodiscard]] ResourceState state_at(SimTime time) const;

  /// Earliest time >= now at which `job` fits *instantaneously*, with the
  /// plan it would get. Returns nullopt only if the job does not even fit
  /// with every tracked release applied.
  ///
  /// Correct for profiles whose deltas after now() only add resources
  /// (releases, plus holds that start at now) — then an instantaneous fit
  /// persists for the job's whole run. With future-start holds present
  /// (conservative reservations), use earliest_fit_window instead.
  struct Fit {
    SimTime time;
    TakePlan plan;
  };
  [[nodiscard]] std::optional<Fit> earliest_fit(const Job& job,
                                                PlacementPolicy policy) const;

  /// Earliest time t >= now at which `job` fits *continuously* over
  /// [t, t + duration_of(plan)): the plan chosen at t must remain
  /// subtractable at every later breakpoint inside the window. This is the
  /// reservation primitive for conservative backfilling, where future holds
  /// make availability non-monotone. `duration_of` maps the plan chosen at
  /// the candidate start to the job's walltime bound (dilation depends on
  /// where the memory comes from).
  [[nodiscard]] std::optional<Fit> earliest_fit_window(
      const Job& job, PlacementPolicy policy,
      const std::function<SimTime(const TakePlan&)>& duration_of) const;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Checkpoint for tentative holds: everything added after `mark()` can be
  /// dropped with `rollback(mark)`. Backfill uses this to test "what if I
  /// start candidate C now" without copying the profile.
  using Mark = std::size_t;
  [[nodiscard]] Mark mark() const { return deltas_.size(); }
  void rollback(Mark m);

  /// All change points (now plus every release/hold boundary), sorted and
  /// deduplicated. Exposed for tests and for schedulers that sweep manually.
  [[nodiscard]] std::vector<SimTime> breakpoints() const;

 private:
  struct Delta {
    SimTime time;
    TakePlan take;
    bool adds;  ///< true: resources become free; false: resources are taken
  };

  ResourceState base_;
  SimTime now_;
  const ClusterConfig* config_;
  std::vector<Delta> deltas_;

  static void apply_signed(ResourceState& state, const TakePlan& take,
                           bool adds);
};

}  // namespace dmsched
