// Incremental availability: projected free resources over time.
//
// Two pieces share one delta vocabulary:
//
//  - `AvailabilityTimeline` is the *persistent* structure, owned by the
//    engine across scheduler passes. It tracks the live free state plus one
//    sorted release breakpoint per running job, and is updated push-style by
//    the engine's job start/finish hooks (O(log n) locate per update)
//    instead of being rebuilt from a cluster snapshot every pass. Its
//    version counter is the scheduler-side dirty flag: an unchanged version
//    means no resources moved since the last pass.
//
//  - `FreeProfile` is the per-pass *working view*: the timeline's releases
//    plus tentative holds (reservations, what-if backfills). Schedulers keep
//    one FreeProfile alive across passes and `sync()` it: when the timeline
//    is unchanged and no breakpoint crossed `now`, the profile — including
//    its lazily built prefix-state cache — carries over verbatim, so a pass
//    sweeps only windows invalidated since the last one.
//
// Schedulers query the profile for the earliest time a job fits — in BOTH
// dimensions, nodes and pool bytes — which is what makes backfilling
// disaggregation-aware. Feasibility at a breakpoint reuses the placement
// kernel, so the profile can never disagree with the planner about whether
// a job fits.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "memory/placement.hpp"
#include "sched/scheduler.hpp"

namespace dmsched {

/// One change to projected availability: resources become free (`adds`,
/// a running job's expected release or a hold expiring) or are taken
/// (a hold beginning).
struct ProfileDelta {
  SimTime time;
  TakePlan take;
  bool adds = true;
};

/// THE delta ordering: time ascending, additions before subtractions at
/// equal timestamps — so a hold that begins exactly when a release lands is
/// satisfiable, and intermediate sweep states never go negative. Every
/// sweep, insertion, and cache in this file routes through this one helper;
/// the tie-break lives in exactly one place (it used to be copied into each
/// call site, where it could silently drift).
[[nodiscard]] inline bool delta_precedes(const ProfileDelta& a,
                                         const ProfileDelta& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.adds && !b.adds;
}

/// The persistent availability structure: the machine's free state *now*
/// plus the sorted timeline of expected releases of every running job.
///
/// Owned by the simulation engine (one per run) and mutated push-style:
/// `on_start` when a job's resources leave the free pool, `on_finish` when
/// they return (completions, walltime kills, and cancellations all land
/// here — the engine funnels every way a job stops through one completion
/// path). Entries are kept sorted by release time with ties in start order,
/// which is exactly the order a from-scratch rebuild over the running list
/// would produce — the property the golden byte-identity contract rests on.
class AvailabilityTimeline {
 public:
  explicit AvailabilityTimeline(const ClusterConfig& config);

  /// A job's resources left the free pool; they are expected back at
  /// `release_at` (its dilated walltime bound). O(log n) locate + insert.
  void on_start(JobId id, SimTime release_at, const TakePlan& take);

  /// The job stopped (completed, killed, or cancelled) and its resources
  /// are free again. `release_at` must be the bound passed to `on_start`.
  void on_finish(JobId id, SimTime release_at);

  struct Entry {
    SimTime time;  ///< expected release (walltime bound; may be overrun)
    JobId job = kInvalidJobId;
    TakePlan take;
  };

  [[nodiscard]] const ClusterConfig& config() const { return *config_; }
  /// Free state at the current instant (mirrors `snapshot(cluster)`).
  [[nodiscard]] const ResourceState& free_now() const { return base_free_; }
  /// Release breakpoints, sorted by time (ties: job start order).
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

  /// Process-unique identity (so a scheduler's cache can never confuse two
  /// timelines that happen to share an address across simulations).
  [[nodiscard]] std::uint64_t id() const { return id_; }
  /// Bumped on every mutation: the dirty flag scheduler passes key on.
  [[nodiscard]] std::uint64_t version() const { return version_; }

  /// True when any release breakpoint lies in (after, upto] — the "did a
  /// planning bound cross now since the last pass" staleness probe.
  [[nodiscard]] bool has_release_in(SimTime after, SimTime upto) const;

 private:
  const ClusterConfig* config_;
  ResourceState base_free_;
  std::vector<Entry> entries_;
  std::uint64_t id_;
  std::uint64_t version_ = 0;
};

/// Piecewise-constant view of future free resources: the timeline's
/// releases plus this pass's tentative holds, with a lazy prefix-state
/// cache over the merged breakpoint array.
class FreeProfile {
 public:
  /// Detached profile: unusable until `sync()` (or assignment) gives it a
  /// machine. Schedulers default-construct one member and sync per pass.
  FreeProfile() = default;

  /// `base` is the free state at `now` (normally `snapshot(cluster)`).
  FreeProfile(ResourceState base, SimTime now, const ClusterConfig* config);

  /// Convenience: base state and releases of all running jobs (via the
  /// context's timeline when it has one, else rebuilt from the running
  /// list — both produce identical profiles).
  static FreeProfile from_context(const SchedContext& ctx);

  /// Incremental re-sync against the context. Returns true on the *clean*
  /// path — the context's timeline is the one this profile was built from,
  /// its version is unchanged, and no delta (release or hold boundary) lies
  /// in (old now, new now] — in which case everything, including holds from
  /// the previous pass and the prefix-state cache, carries over and only
  /// now() advances. Otherwise rebuilds from scratch (holds dropped) and
  /// returns false.
  bool sync(const SchedContext& ctx);

  /// Drop every hold added since the last rebuild, keeping releases (and
  /// the release prefix of the state cache). The clean-sync caller's way to
  /// start a pass fresh without paying a rebuild.
  void drop_holds();

  /// Resources return to the pool at `time` (a running job's expected end).
  void add_release(SimTime time, const TakePlan& take);

  /// Resources are held from `start` to `end` (reservation / tentative
  /// backfill). `start` may equal now() for jobs being started in this pass.
  void add_hold(SimTime start, SimTime end, const TakePlan& take);

  /// Free state as of `time` (>= now): base plus all releases/holds with
  /// effect time <= `time`.
  [[nodiscard]] ResourceState state_at(SimTime time) const;

  /// Earliest time >= now at which `job` fits *instantaneously*, with the
  /// plan it would get. Returns nullopt only if the job does not even fit
  /// with every tracked release applied.
  ///
  /// Correct for profiles whose deltas after now() only add resources
  /// (releases, plus holds that start at now) — then an instantaneous fit
  /// persists for the job's whole run. With future-start holds present
  /// (conservative reservations), use earliest_fit_window instead.
  struct Fit {
    SimTime time;
    TakePlan plan;
  };
  [[nodiscard]] std::optional<Fit> earliest_fit(const Job& job,
                                                PlacementPolicy policy) const;

  /// Earliest time t >= now at which `job` fits *continuously* over
  /// [t, t + duration_of(plan)): the plan chosen at t must remain
  /// subtractable at every later breakpoint inside the window. This is the
  /// reservation primitive for conservative backfilling, where future holds
  /// make availability non-monotone. `duration_of` maps the plan chosen at
  /// the candidate start to the job's walltime bound (dilation depends on
  /// where the memory comes from).
  [[nodiscard]] std::optional<Fit> earliest_fit_window(
      const Job& job, PlacementPolicy policy,
      const std::function<SimTime(const TakePlan&)>& duration_of) const;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Checkpoint for tentative holds: everything added after `mark()` can be
  /// dropped with `rollback(mark)`. Backfill uses this to test "what if I
  /// start candidate C now" without copying the profile.
  using Mark = std::size_t;
  [[nodiscard]] Mark mark() const { return deltas_.size(); }
  void rollback(Mark m);

  /// All change points (now plus every release/hold boundary at or after
  /// now), sorted and deduplicated. Exposed for tests and for schedulers
  /// that sweep manually.
  [[nodiscard]] std::vector<SimTime> breakpoints() const;

  /// Earliest delta time strictly after `t` (kTimeInfinity if none) — the
  /// sweep's step function, also used by sync() to detect a breakpoint
  /// crossing now.
  [[nodiscard]] SimTime next_change_after(SimTime t) const;

 private:
  void reset(ResourceState base, SimTime now, const ClusterConfig* config);
  void insert_delta(ProfileDelta d);
  /// Drop cached prefix states at or after `t` (a delta at `t` changed).
  void invalidate_cache_from(SimTime t) const;
  /// Extend the prefix-state cache through every delta time <= `t`.
  void ensure_cached_to(SimTime t) const;
  /// State effective at `t`: the cached row for the greatest delta time
  /// <= `t`, or the base state. Reference dies at the next cache call.
  [[nodiscard]] const ResourceState& state_covering(SimTime t) const;

  ResourceState base_;
  SimTime now_{};
  const ClusterConfig* config_ = nullptr;
  /// Insertion-ordered deltas — the mark()/rollback() domain.
  std::vector<ProfileDelta> deltas_;
  /// Indices into deltas_ in delta_precedes order (ties: insertion order).
  std::vector<std::uint32_t> ordered_;
  /// Number of leading deltas_ that are timeline releases (drop_holds floor).
  Mark base_mark_ = 0;

  // sync() bookkeeping: which timeline state this profile mirrors.
  bool from_timeline_ = false;
  std::uint64_t timeline_id_ = 0;
  std::uint64_t timeline_version_ = 0;

  // Lazy prefix-state cache: row k holds the state after every delta with
  // time <= cache_times_[k] (one row per distinct delta time, ascending),
  // and cache_consumed_[k] counts the ordered_ entries folded in. Rows at
  // or after a mutated time are truncated; everything earlier survives
  // across queries, holds, rollbacks, and clean syncs.
  mutable std::vector<SimTime> cache_times_;
  mutable std::vector<ResourceState> cache_states_;
  mutable std::vector<std::size_t> cache_consumed_;
};

}  // namespace dmsched
