// The scheduler interface every policy implements.
//
// A scheduler is a pure decision procedure: given the queue, the running
// set, and the machine, it starts zero or more queued jobs by calling
// `start_job`. All bookkeeping (events, metrics, ledgers) lives in the
// simulation engine behind SchedContext, so policies stay small and testable
// against hand-built scenarios.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "memory/placement.hpp"
#include "memory/slowdown.hpp"
#include "migration/migration.hpp"
#include "topology/topology.hpp"
#include "workload/job.hpp"

namespace dmsched {

class AvailabilityTimeline;

/// Planning view of a running job.
struct RunningJob {
  JobId id = kInvalidJobId;
  /// Upper bound on when it releases resources: start + walltime × the
  /// dilation of its actual allocation. (Jobs usually finish earlier —
  /// walltimes are overestimates — which backfilling exploits implicitly.)
  SimTime expected_end{};
  /// Counted resources it holds (for reservation profiles).
  TakePlan take;
};

/// What the engine exposes to a scheduling pass.
class SchedContext {
 public:
  virtual ~SchedContext() = default;

  [[nodiscard]] virtual SimTime now() const = 0;
  [[nodiscard]] virtual const Cluster& cluster() const = 0;
  [[nodiscard]] virtual const Job& job(JobId id) const = 0;
  /// Waiting jobs, head first, in queue-policy order.
  [[nodiscard]] virtual std::vector<JobId> queued_jobs() const = 0;
  /// Running jobs with planning bounds (unordered).
  [[nodiscard]] virtual std::vector<RunningJob> running_jobs() const = 0;
  [[nodiscard]] virtual PlacementPolicy placement() const = 0;
  [[nodiscard]] virtual const SlowdownModel& slowdown() const = 0;
  /// The machine's rack-scale memory model (tier capacities, headroom).
  [[nodiscard]] virtual const Topology& topology() const = 0;
  /// The engine's live-migration policy. Policies may consult it to expect
  /// re-priced completions (a RunningJob's expected_end can move when the
  /// engine re-tiers its bytes). The default is the disabled sentinel, so
  /// hand-built contexts model the static world.
  [[nodiscard]] virtual MigrationPolicy migration() const { return {}; }

  // --- incremental-pass contract (push-based invalidation) ------------------
  // A context MAY expose the engine's persistent availability timeline plus
  // an append-only view of the queue. Schedulers use these to skip work that
  // a full pass would provably repeat: an unchanged timeline version means
  // no resources moved since the cached pass, and `queued_jobs_after` names
  // the only candidates a previously-converged pass has not yet judged. The
  // defaults (no timeline, unstable order, full queue) make every cached
  // fast path disable itself, so hand-rolled contexts stay correct unopted.

  /// The persistent release timeline, or nullptr when the context does not
  /// maintain one (schedulers then rebuild profiles from the running list).
  [[nodiscard]] virtual const AvailabilityTimeline* timeline() const {
    return nullptr;
  }

  /// True when queued_jobs() order is append-stable: new arrivals only ever
  /// append, and the relative order of already-queued jobs never changes
  /// between passes (FCFS). Priority/SJF orders re-rank on every pass, so
  /// incremental queue suffixes are meaningless there.
  [[nodiscard]] virtual bool queue_order_stable() const { return false; }

  /// Monotone counter of lifetime queue appends (not current length —
  /// starts do not decrease it). Epoch E captured after a pass means that
  /// pass saw every job appended before E.
  [[nodiscard]] virtual std::uint64_t queue_tail_epoch() const { return 0; }

  /// Still-queued jobs appended at or after `epoch`, in append order. The
  /// default returns the whole queue — always correct, never incremental.
  [[nodiscard]] virtual std::vector<JobId> queued_jobs_after(
      std::uint64_t epoch) const {
    (void)epoch;
    return queued_jobs();
  }

  /// Commit `alloc` for `job`, schedule its completion, remove it from the
  /// queue. The allocation must have been planned against the current
  /// cluster state (plan_start / materialize).
  virtual void start_job(JobId job, const Allocation& alloc) = 0;
};

/// Cumulative pass-instrumentation counters a policy may maintain. Strictly
/// write-only from the policy's perspective: nothing may ever *read* them on
/// a decision path (passivity contract — obs/trace_sink.hpp). The engine
/// snapshots them around each pass to annotate trace spans with per-pass
/// deltas, so the counts must only grow.
struct SchedulerStats {
  std::uint64_t passes = 0;        ///< schedule() invocations
  std::uint64_t fast_passes = 0;   ///< served entirely from a warm cache
  std::uint64_t jobs_examined = 0; ///< queue candidates judged
  std::uint64_t plans_attempted = 0;  ///< plan_start / fit probes
};

/// A scheduling policy. `schedule` is invoked by the engine after every
/// state change (submission or completion).
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  /// Pass-instrumentation counters, or nullptr when the policy keeps none.
  /// The pointer must stay valid for the scheduler's lifetime.
  [[nodiscard]] virtual const SchedulerStats* stats() const { return nullptr; }
  /// Scenario-metadata hook: does the policy consult memory/pool state when
  /// planning? The scenario library's expected-ordering claims (and the
  /// fig. 6 policy-discrimination suite) group policies by this, so a new
  /// memory-aware policy that forgets to override it will be tested against
  /// the wrong expectations.
  [[nodiscard]] virtual bool memory_aware() const { return false; }
  virtual void schedule(SchedContext& ctx) = 0;
};

}  // namespace dmsched
