// Queue ordering policies: who is at the head of the line.
#pragma once

#include <functional>
#include <vector>

#include "workload/job.hpp"

namespace dmsched {

/// How the waiting queue is ordered before each scheduling pass.
enum class QueueOrder {
  kFcfs,          ///< submission time (production default)
  kShortestFirst, ///< requested walltime ascending (SJF on estimates)
  kLargestFirst,  ///< node count descending (capability-center priority)
  kWfp,           ///< WFP utility: (wait/walltime)^3 · nodes, descending —
                  ///< the ALCF leadership-machine policy
};

[[nodiscard]] const char* to_string(QueueOrder order);

/// Sort job ids into queue order. `now` is needed for wait-dependent
/// policies (WFP). Ties always break on submission then id, so the order is
/// total and deterministic.
void order_queue(std::vector<JobId>& ids,
                 const std::vector<Job>& jobs, QueueOrder order, SimTime now);

/// Resolves a job id to its record for the lookup overload below.
using JobLookup = std::function<const Job&(JobId)>;

/// The same ordering with jobs resolved through a lookup: streaming runs
/// hold only their live jobs, not a dense id-indexed vector. Identical
/// results to the vector overload for the same jobs (pinned by
/// tests/sched/queue_policy_test.cpp).
void order_queue(std::vector<JobId>& ids, const JobLookup& lookup,
                 QueueOrder order, SimTime now);

}  // namespace dmsched
