// Queue ordering policies: who is at the head of the line.
#pragma once

#include <vector>

#include "workload/job.hpp"

namespace dmsched {

/// How the waiting queue is ordered before each scheduling pass.
enum class QueueOrder {
  kFcfs,          ///< submission time (production default)
  kShortestFirst, ///< requested walltime ascending (SJF on estimates)
  kLargestFirst,  ///< node count descending (capability-center priority)
  kWfp,           ///< WFP utility: (wait/walltime)^3 · nodes, descending —
                  ///< the ALCF leadership-machine policy
};

[[nodiscard]] const char* to_string(QueueOrder order);

/// Sort job ids into queue order. `now` is needed for wait-dependent
/// policies (WFP). Ties always break on submission then id, so the order is
/// total and deterministic.
void order_queue(std::vector<JobId>& ids,
                 const std::vector<Job>& jobs, QueueOrder order, SimTime now);

}  // namespace dmsched
