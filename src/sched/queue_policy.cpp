#include "sched/queue_policy.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace dmsched {

const char* to_string(QueueOrder order) {
  switch (order) {
    case QueueOrder::kFcfs: return "fcfs";
    case QueueOrder::kShortestFirst: return "sjf";
    case QueueOrder::kLargestFirst: return "largest";
    case QueueOrder::kWfp: return "wfp";
  }
  return "?";
}

namespace {

/// The one ordering implementation; `get` resolves JobId -> const Job&.
/// Both public overloads funnel here so they cannot drift apart.
template <typename Get>
void order_queue_impl(std::vector<JobId>& ids, const Get& get,
                      QueueOrder order, SimTime now) {
  auto tie = [&](JobId a, JobId b) {
    const Job& ja = get(a);
    const Job& jb = get(b);
    if (ja.submit != jb.submit) return ja.submit < jb.submit;
    return a < b;
  };
  switch (order) {
    case QueueOrder::kFcfs:
      std::sort(ids.begin(), ids.end(), tie);
      break;
    case QueueOrder::kShortestFirst:
      std::sort(ids.begin(), ids.end(), [&](JobId a, JobId b) {
        if (get(a).walltime != get(b).walltime) {
          return get(a).walltime < get(b).walltime;
        }
        return tie(a, b);
      });
      break;
    case QueueOrder::kLargestFirst:
      std::sort(ids.begin(), ids.end(), [&](JobId a, JobId b) {
        if (get(a).nodes != get(b).nodes) {
          return get(a).nodes > get(b).nodes;
        }
        return tie(a, b);
      });
      break;
    case QueueOrder::kWfp: {
      auto score = [&](JobId id) {
        const Job& j = get(id);
        const double wait = (now - j.submit).seconds();
        const double wall = std::max(j.walltime.seconds(), 1.0);
        const double r = wait / wall;
        return r * r * r * static_cast<double>(j.nodes);
      };
      std::sort(ids.begin(), ids.end(), [&](JobId a, JobId b) {
        const double sa = score(a);
        const double sb = score(b);
        if (sa != sb) return sa > sb;
        return tie(a, b);
      });
      break;
    }
  }
}

}  // namespace

void order_queue(std::vector<JobId>& ids, const std::vector<Job>& jobs,
                 QueueOrder order, SimTime now) {
  order_queue_impl(
      ids, [&](JobId id) -> const Job& { return jobs[id]; }, order, now);
}

void order_queue(std::vector<JobId>& ids, const JobLookup& lookup,
                 QueueOrder order, SimTime now) {
  DMSCHED_ASSERT(lookup != nullptr, "order_queue: null job lookup");
  order_queue_impl(ids, lookup, order, now);
}

}  // namespace dmsched
