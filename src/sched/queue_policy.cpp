#include "sched/queue_policy.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace dmsched {

const char* to_string(QueueOrder order) {
  switch (order) {
    case QueueOrder::kFcfs: return "fcfs";
    case QueueOrder::kShortestFirst: return "sjf";
    case QueueOrder::kLargestFirst: return "largest";
    case QueueOrder::kWfp: return "wfp";
  }
  return "?";
}

void order_queue(std::vector<JobId>& ids, const std::vector<Job>& jobs,
                 QueueOrder order, SimTime now) {
  auto tie = [&](JobId a, JobId b) {
    const Job& ja = jobs[a];
    const Job& jb = jobs[b];
    if (ja.submit != jb.submit) return ja.submit < jb.submit;
    return a < b;
  };
  switch (order) {
    case QueueOrder::kFcfs:
      std::sort(ids.begin(), ids.end(), tie);
      break;
    case QueueOrder::kShortestFirst:
      std::sort(ids.begin(), ids.end(), [&](JobId a, JobId b) {
        if (jobs[a].walltime != jobs[b].walltime) {
          return jobs[a].walltime < jobs[b].walltime;
        }
        return tie(a, b);
      });
      break;
    case QueueOrder::kLargestFirst:
      std::sort(ids.begin(), ids.end(), [&](JobId a, JobId b) {
        if (jobs[a].nodes != jobs[b].nodes) {
          return jobs[a].nodes > jobs[b].nodes;
        }
        return tie(a, b);
      });
      break;
    case QueueOrder::kWfp: {
      auto score = [&](JobId id) {
        const Job& j = jobs[id];
        const double wait = (now - j.submit).seconds();
        const double wall = std::max(j.walltime.seconds(), 1.0);
        const double r = wait / wall;
        return r * r * r * static_cast<double>(j.nodes);
      };
      std::sort(ids.begin(), ids.end(), [&](JobId a, JobId b) {
        const double sa = score(a);
        const double sb = score(b);
        if (sa != sb) return sa > sb;
        return tie(a, b);
      });
      break;
    }
  }
}

}  // namespace dmsched
