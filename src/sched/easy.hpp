// EASY backfilling, memory-unaware — the production baseline.
//
// The head job's reservation ("shadow time") is computed over *nodes only*,
// exactly as Slurm/Cobalt do today. On a disaggregated machine this is the
// paper's strawman: backfill decisions ignore pool capacity, so memory-heavy
// head jobs can be delayed by backfilled jobs that drain the pools.
#pragma once

#include <cstdint>

#include "sched/scheduler.hpp"

namespace dmsched {

/// Classic aggressive (EASY) backfilling:
///  1. start jobs from the head while they fit;
///  2. give the blocked head a node-count reservation at the shadow time;
///  3. backfill any later job that fits now and either finishes before the
///     shadow time or uses no more than the spare ("extra") nodes.
///
/// Incremental passes: once a pass leaves the head blocked, its shadow and
/// extra-node budget are cached. As long as the context's availability
/// timeline reports no resource movement and the queue order is
/// append-stable, the next pass only judges jobs that arrived since — every
/// already-rejected candidate would be rejected again (resources cannot
/// appear without a timeline version bump, and both rejection rules only
/// tighten as now advances), so re-walking the queue is pure waste.
class EasyScheduler final : public Scheduler {
 public:
  [[nodiscard]] const char* name() const override { return "easy"; }
  [[nodiscard]] const SchedulerStats* stats() const override {
    return &stats_;
  }
  void schedule(SchedContext& ctx) override;

 private:
  SchedulerStats stats_;
  /// Handle the pass from the cached shadow/extra state. Returns false when
  /// the cache is missing or stale and a full pass must run.
  bool try_fast_pass(SchedContext& ctx);

  bool cache_valid_ = false;
  std::uint64_t timeline_id_ = 0;
  std::uint64_t timeline_version_ = 0;
  std::uint64_t tail_epoch_ = 0;
  SimTime cached_now_{};
  /// The shadow was "now" (head has the nodes, not the memory): it slides
  /// forward with the clock instead of staying fixed.
  bool shadow_is_now_ = false;
  SimTime shadow_{};
  std::int32_t extra_ = 0;
};

}  // namespace dmsched
