// EASY backfilling, memory-unaware — the production baseline.
//
// The head job's reservation ("shadow time") is computed over *nodes only*,
// exactly as Slurm/Cobalt do today. On a disaggregated machine this is the
// paper's strawman: backfill decisions ignore pool capacity, so memory-heavy
// head jobs can be delayed by backfilled jobs that drain the pools.
#pragma once

#include "sched/scheduler.hpp"

namespace dmsched {

/// Classic aggressive (EASY) backfilling:
///  1. start jobs from the head while they fit;
///  2. give the blocked head a node-count reservation at the shadow time;
///  3. backfill any later job that fits now and either finishes before the
///     shadow time or uses no more than the spare ("extra") nodes.
class EasyScheduler final : public Scheduler {
 public:
  [[nodiscard]] const char* name() const override { return "easy"; }
  void schedule(SchedContext& ctx) override;
};

}  // namespace dmsched
