// First-come-first-served without backfilling: the strictest baseline.
#pragma once

#include "sched/scheduler.hpp"

namespace dmsched {

/// Starts jobs strictly in queue order; stops at the first job that does
/// not fit. Simple, fair, and the canonical low-utilization baseline.
class FcfsScheduler final : public Scheduler {
 public:
  [[nodiscard]] const char* name() const override { return "fcfs"; }
  void schedule(SchedContext& ctx) override;
};

}  // namespace dmsched
