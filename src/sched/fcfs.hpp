// First-come-first-served without backfilling: the strictest baseline.
#pragma once

#include "sched/scheduler.hpp"

namespace dmsched {

/// Starts jobs strictly in queue order; stops at the first job that does
/// not fit. Simple, fair, and the canonical low-utilization baseline.
class FcfsScheduler final : public Scheduler {
 public:
  [[nodiscard]] const char* name() const override { return "fcfs"; }
  [[nodiscard]] const SchedulerStats* stats() const override {
    return &stats_;
  }
  void schedule(SchedContext& ctx) override;

 private:
  SchedulerStats stats_;
};

}  // namespace dmsched
