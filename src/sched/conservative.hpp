// Conservative backfilling: every queued job gets a reservation.
#pragma once

#include <cstdint>

#include "sched/profile.hpp"
#include "sched/scheduler.hpp"

namespace dmsched {

/// Conservative backfilling over the full 2-D resource profile: each queued
/// job (up to a window) receives the earliest reservation that delays no
/// previously reserved job; jobs whose reservation is "now" start.
///
/// Reservations persist across passes as holds in an incrementally synced
/// FreeProfile. On a clean sync (timeline version unchanged, no breakpoint
/// crossed now) the previous pass's reservations are provably what a full
/// recompute would reproduce, so only jobs that arrived since are fitted —
/// each behind the retained holds. Any resource movement dirties the sync
/// and the pass recomputes every reservation from scratch (the no-compression
/// variant with implicit compression: a completion can only move
/// reservations earlier, and the rebuild discovers that).
class ConservativeScheduler final : public Scheduler {
 public:
  /// `window` caps how many queued jobs receive reservations per pass;
  /// beyond it the pass stops (O(window · breakpoints · racks) per pass).
  explicit ConservativeScheduler(std::size_t window = 128);

  [[nodiscard]] const char* name() const override { return "conservative"; }
  [[nodiscard]] const SchedulerStats* stats() const override {
    return &stats_;
  }
  void schedule(SchedContext& ctx) override;

 private:
  std::size_t window_;
  SchedulerStats stats_;

  /// Reservation profile carried across passes (holds = reservations).
  FreeProfile profile_;
  bool cache_valid_ = false;
  std::uint64_t tail_epoch_ = 0;
  SimTime last_now_{};
  /// Queued jobs holding a reservation (window slots consumed). Only
  /// meaningful while cache_valid_ — a start or completion forces a full
  /// recount anyway via the dirty sync.
  std::size_t reserved_ = 0;
};

}  // namespace dmsched
