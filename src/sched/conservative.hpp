// Conservative backfilling: every queued job gets a reservation.
#pragma once

#include "sched/scheduler.hpp"

namespace dmsched {

/// Conservative backfilling over the full 2-D resource profile: each queued
/// job (up to a window) receives the earliest reservation that delays no
/// previously reserved job; jobs whose reservation is "now" start.
///
/// Reservations are recomputed from scratch every pass (no-compression
/// variant with implicit compression: a completion can only move
/// reservations earlier, and the rebuild discovers that).
class ConservativeScheduler final : public Scheduler {
 public:
  /// `window` caps how many queued jobs receive reservations per pass;
  /// beyond it the pass stops (O(window · breakpoints · racks) per pass).
  explicit ConservativeScheduler(std::size_t window = 128);

  [[nodiscard]] const char* name() const override { return "conservative"; }
  void schedule(SchedContext& ctx) override;

 private:
  std::size_t window_;
};

}  // namespace dmsched
