// Always-on invariant checking.
//
// Simulator correctness depends on conservation invariants (no node double
// allocation, pool bytes never negative, ...). These are cheap relative to a
// scheduling pass, so they stay enabled in release builds: a violated
// invariant in a published experiment is far more expensive than the branch.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace dmsched::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "DMSCHED_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace dmsched::detail

/// Abort with a diagnostic if `expr` is false. Enabled in all build types.
#define DMSCHED_ASSERT(expr, msg)                                       \
  do {                                                                  \
    if (!(expr)) [[unlikely]] {                                         \
      ::dmsched::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                   \
  } while (false)

/// Marks unreachable control flow; aborts if reached.
#define DMSCHED_UNREACHABLE(msg) \
  ::dmsched::detail::assert_fail("unreachable", __FILE__, __LINE__, (msg))
