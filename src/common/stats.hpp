// Streaming and sample-based statistics used by the metrics pipeline.
#pragma once

#include <cstddef>
#include <vector>

namespace dmsched {

/// Welford online accumulator: count / mean / variance / min / max in O(1)
/// memory. Used for per-metric aggregation where percentiles are not needed.
class StreamingStats {
 public:
  /// Incorporate one observation.
  void add(double x);
  /// Merge another accumulator (parallel sweep reduction).
  void merge(const StreamingStats& other);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  /// Unbiased sample variance; 0 for fewer than two observations.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Stores every observation; provides exact percentiles.
///
/// Job-level metric distributions (wait, slowdown) are small enough —
/// O(#jobs) — that exact percentiles beat sketch approximations.
class SampleStats {
 public:
  void reserve(std::size_t n) { samples_.reserve(n); }
  void add(double x);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Exact percentile by linear interpolation, p in [0,100]. 0 when empty.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  /// All samples, unsorted, in insertion order.
  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;  // lazily maintained cache
  mutable bool sorted_valid_ = false;
  void ensure_sorted() const;
};

/// Time-weighted average of a piecewise-constant signal, e.g. "busy nodes".
///
/// Feed `(time, value)` change-points in nondecreasing time order; the value
/// holds until the next change-point. `finish(end)` closes the last segment.
class TimeWeightedMean {
 public:
  void record(double time, double value);
  /// Close the signal at `end_time` and return the weighted mean.
  [[nodiscard]] double finish(double end_time) const;
  /// Peak value observed.
  [[nodiscard]] double peak() const { return peak_; }

 private:
  double last_time_ = 0.0;
  double last_value_ = 0.0;
  double weighted_sum_ = 0.0;
  double peak_ = 0.0;
  bool started_ = false;
};

}  // namespace dmsched
