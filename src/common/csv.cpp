#include "common/csv.hpp"

#include "common/assert.hpp"
#include "common/str.hpp"

namespace dmsched {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {}

void CsvWriter::header(const std::vector<std::string>& columns) {
  DMSCHED_ASSERT(!header_written_, "CsvWriter: header written twice");
  header_written_ = true;
  write_row(columns);
}

CsvWriter& CsvWriter::add(std::string_view field) {
  row_.emplace_back(field);
  return *this;
}

CsvWriter& CsvWriter::add(double value) {
  row_.push_back(strformat("%.6g", value));
  return *this;
}

CsvWriter& CsvWriter::add(std::int64_t value) {
  row_.push_back(strformat("%lld", static_cast<long long>(value)));
  return *this;
}

CsvWriter& CsvWriter::add(std::size_t value) {
  row_.push_back(strformat("%llu", static_cast<unsigned long long>(value)));
  return *this;
}

void CsvWriter::end_row() {
  write_row(row_);
  row_.clear();
}

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string{field};
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

}  // namespace dmsched
