#include "common/units.hpp"

#include <array>
#include <cstdio>

namespace dmsched {

std::string format_bytes(Bytes b) {
  static constexpr std::array<const char*, 5> kSuffix = {"B", "KiB", "MiB",
                                                         "GiB", "TiB"};
  double value = static_cast<double>(b.count());
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < kSuffix.size()) {
    value /= 1024.0;
    ++unit;
  }
  char buf[48];
  if (unit == 0) {
    std::snprintf(buf, sizeof buf, "%lld B",
                  static_cast<long long>(b.count()));
  } else {
    std::snprintf(buf, sizeof buf, "%.1f %s", value, kSuffix[unit]);
  }
  return buf;
}

}  // namespace dmsched
