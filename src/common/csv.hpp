// Minimal RFC-4180-style CSV writer for experiment outputs.
//
// Every bench binary can mirror its printed table into a CSV file so plots
// can be regenerated without re-running the simulation.
#pragma once

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace dmsched {

/// Streams rows to a CSV file. Fields containing delimiters/quotes/newlines
/// are quoted and escaped. The file is flushed and closed on destruction.
class CsvWriter {
 public:
  /// Opens `path` for writing; `ok()` reports success.
  explicit CsvWriter(const std::string& path);

  [[nodiscard]] bool ok() const { return out_.good(); }

  /// Write the header row (callable once, before any data row).
  void header(const std::vector<std::string>& columns);

  /// Begin accumulating a row; fields are appended with add().
  CsvWriter& add(std::string_view field);
  CsvWriter& add(double value);
  CsvWriter& add(std::int64_t value);
  CsvWriter& add(std::size_t value);
  /// Terminate the current row.
  void end_row();

 private:
  std::ofstream out_;
  std::vector<std::string> row_;
  bool header_written_ = false;

  static std::string escape(std::string_view field);
  void write_row(const std::vector<std::string>& fields);
};

}  // namespace dmsched
