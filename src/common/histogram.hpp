// Histogram and empirical-CDF helpers for workload characterization and the
// figure-reproduction benches.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dmsched {

/// Fixed-width linear histogram over [lo, hi); out-of-range values clamp to
/// the edge bins so mass is never silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const;
  [[nodiscard]] std::size_t total() const { return total_; }
  /// Inclusive lower edge of bin `i`.
  [[nodiscard]] double bin_lo(std::size_t i) const;
  /// Exclusive upper edge of bin `i`.
  [[nodiscard]] double bin_hi(std::size_t i) const;
  /// Fraction of observations in bin `i` (0 when empty).
  [[nodiscard]] double fraction(std::size_t bin) const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// One (x, F(x)) point of an empirical CDF.
struct CdfPoint {
  double x;
  double cumulative_fraction;
};

/// Empirical CDF down-sampled to `points` evenly spaced quantiles —
/// exactly what a paper's CDF figure plots.
[[nodiscard]] std::vector<CdfPoint> empirical_cdf(std::vector<double> samples,
                                                  std::size_t points);

}  // namespace dmsched
