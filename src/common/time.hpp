// Simulation time: a strong int64 microsecond type.
//
// Integer time makes event ordering exact and runs bit-reproducible across
// platforms; microseconds give headroom for dilation arithmetic on traces
// whose native resolution is seconds (SWF).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace dmsched {

/// A point in simulation time or a duration, in microseconds.
///
/// The trace epoch (first submission) is time 0. Durations and time points
/// share the representation, mirroring how schedulers manipulate them.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t usec) : usec_(usec) {}

  [[nodiscard]] constexpr std::int64_t usec() const { return usec_; }
  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(usec_) / 1e6;
  }
  [[nodiscard]] constexpr double hours() const { return seconds() / 3600.0; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime& operator+=(SimTime d) {
    usec_ += d.usec_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime d) {
    usec_ -= d.usec_;
    return *this;
  }
  friend constexpr SimTime operator+(SimTime a, SimTime b) { return a += b; }
  friend constexpr SimTime operator-(SimTime a, SimTime b) { return a -= b; }

  /// Scale a duration by a dilation factor, rounding to nearest microsecond.
  [[nodiscard]] constexpr SimTime scaled(double factor) const {
    return SimTime{
        static_cast<std::int64_t>(static_cast<double>(usec_) * factor + 0.5)};
  }

 private:
  std::int64_t usec_ = 0;
};

/// Largest representable time; used as "never" in reservation profiles.
constexpr SimTime kTimeInfinity{INT64_MAX / 4};

[[nodiscard]] constexpr SimTime usec(std::int64_t n) { return SimTime{n}; }
[[nodiscard]] constexpr SimTime seconds(std::int64_t n) {
  return SimTime{n * 1'000'000};
}
[[nodiscard]] constexpr SimTime seconds(double x) {
  return SimTime{static_cast<std::int64_t>(x * 1e6 + 0.5)};
}
[[nodiscard]] constexpr SimTime minutes(std::int64_t n) {
  return seconds(n * 60);
}
[[nodiscard]] constexpr SimTime hours(std::int64_t n) {
  return seconds(n * 3600);
}
[[nodiscard]] constexpr SimTime days(std::int64_t n) { return hours(n * 24); }

[[nodiscard]] constexpr SimTime min(SimTime a, SimTime b) {
  return a < b ? a : b;
}
[[nodiscard]] constexpr SimTime max(SimTime a, SimTime b) {
  return a < b ? b : a;
}

/// Render as "[d-]hh:mm:ss" (walltime style), e.g. "1-02:33:07".
[[nodiscard]] std::string format_duration(SimTime t);

}  // namespace dmsched
