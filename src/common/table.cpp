#include "common/table.hpp"

#include <algorithm>
#include <cstdio>

#include "common/assert.hpp"

namespace dmsched {

ConsoleTable::ConsoleTable(std::string title) : title_(std::move(title)) {}

void ConsoleTable::columns(std::vector<std::string> headers) {
  DMSCHED_ASSERT(rows_.empty(), "ConsoleTable: set columns before rows");
  headers_ = std::move(headers);
}

void ConsoleTable::row(std::vector<std::string> cells) {
  DMSCHED_ASSERT(cells.size() == headers_.size(),
                 "ConsoleTable: row width != header width");
  rows_.push_back({std::move(cells), false});
}

void ConsoleTable::separator() { rows_.push_back({{}, true}); }

std::string ConsoleTable::str() const {
  std::vector<std::size_t> width(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& r : rows_) {
    if (r.is_separator) continue;
    for (std::size_t c = 0; c < r.cells.size(); ++c) {
      width[c] = std::max(width[c], r.cells[c].size());
    }
  }

  auto hline = [&] {
    std::string s = "+";
    for (std::size_t w : width) s += std::string(w + 2, '-') + "+";
    s += "\n";
    return s;
  };
  auto format_row = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      s += " " + cells[c] + std::string(width[c] - cells[c].size(), ' ') + " |";
    }
    s += "\n";
    return s;
  };

  std::string out;
  out += "=== " + title_ + " ===\n";
  out += hline();
  out += format_row(headers_);
  out += hline();
  for (const auto& r : rows_) {
    out += r.is_separator ? hline() : format_row(r.cells);
  }
  out += hline();
  return out;
}

void ConsoleTable::print() const { std::fputs(str().c_str(), stdout); }

}  // namespace dmsched
