#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace dmsched {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  DMSCHED_ASSERT(hi > lo, "Histogram: hi must exceed lo");
  DMSCHED_ASSERT(bins > 0, "Histogram: need at least one bin");
}

void Histogram::add(double x) {
  auto raw = static_cast<std::int64_t>(std::floor((x - lo_) / width_));
  raw = std::clamp<std::int64_t>(raw, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(raw)];
  ++total_;
}

std::size_t Histogram::count(std::size_t bin) const {
  DMSCHED_ASSERT(bin < counts_.size(), "Histogram: bin out of range");
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

std::vector<CdfPoint> empirical_cdf(std::vector<double> samples,
                                    std::size_t points) {
  DMSCHED_ASSERT(points >= 2, "empirical_cdf: need at least 2 points");
  if (samples.empty()) return {};
  std::sort(samples.begin(), samples.end());
  std::vector<CdfPoint> out;
  out.reserve(points);
  const std::size_t n = samples.size();
  for (std::size_t i = 0; i < points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points - 1);
    const auto idx = std::min(
        n - 1, static_cast<std::size_t>(q * static_cast<double>(n - 1) + 0.5));
    out.push_back({samples[idx],
                   static_cast<double>(idx + 1) / static_cast<double>(n)});
  }
  return out;
}

}  // namespace dmsched
