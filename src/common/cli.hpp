// Tiny command-line parser for examples and bench binaries.
//
// Supports `--key=value`, `--key value`, and boolean `--flag`. Unknown keys
// are an error (catches typos in sweep scripts). No external dependencies.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dmsched {

/// Declarative CLI: register options with defaults and help text, then
/// `parse(argc, argv)`. `--help` prints usage and returns false.
class Cli {
 public:
  Cli(std::string program, std::string description);

  /// Register a string option.
  void add_string(const std::string& key, std::string default_value,
                  std::string help);
  /// Register an integer option.
  void add_int(const std::string& key, std::int64_t default_value,
               std::string help);
  /// Register a floating-point option.
  void add_double(const std::string& key, double default_value,
                  std::string help);
  /// Register a boolean flag (default false; `--key` or `--key=true/false`).
  void add_flag(const std::string& key, std::string help);

  /// Parse; returns false if `--help` was requested or input was invalid
  /// (a diagnostic is printed to stderr in the invalid case).
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get_string(const std::string& key) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key) const;
  [[nodiscard]] double get_double(const std::string& key) const;
  [[nodiscard]] bool get_flag(const std::string& key) const;

  /// True if the user supplied the option on the command line (vs. the
  /// registered default). Lets composite options (e.g. --scenario) apply
  /// their own defaults without being overridden by unrelated ones.
  [[nodiscard]] bool provided(const std::string& key) const;

  /// Usage text.
  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { kString, kInt, kDouble, kFlag };
  struct Option {
    Kind kind;
    std::string value;  // canonical textual value
    std::string default_value;
    std::string help;
    bool provided = false;  // set during parse()
  };
  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;  // ordered for stable --help
  const Option* find(const std::string& key, Kind kind) const;
  bool assign(const std::string& key, const std::string& value);
};

}  // namespace dmsched
