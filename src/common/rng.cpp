#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/assert.hpp"

namespace dmsched {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits -> [0,1) with full double mantissa coverage.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  DMSCHED_ASSERT(lo <= hi, "uniform(): inverted range");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  DMSCHED_ASSERT(lo <= hi, "uniform_int(): inverted range");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t r = next_u64();
  while (r >= limit) r = next_u64();
  return lo + static_cast<std::int64_t>(r % span);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::normal() {
  // Box–Muller; u1 is nudged away from zero to keep log() finite.
  const double u1 = std::max(uniform(), 0x1.0p-53);
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) {
  DMSCHED_ASSERT(rate > 0.0, "exponential(): rate must be positive");
  const double u = std::max(uniform(), 0x1.0p-53);
  return -std::log(u) / rate;
}

double Rng::bounded_pareto(double alpha, double lo, double hi) {
  DMSCHED_ASSERT(alpha > 0.0 && lo > 0.0 && lo < hi,
                 "bounded_pareto(): bad parameters");
  const double u = uniform();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  DMSCHED_ASSERT(!weights.empty(), "weighted_index(): empty weights");
  double total = 0.0;
  for (double w : weights) {
    DMSCHED_ASSERT(w >= 0.0, "weighted_index(): negative weight");
    total += w;
  }
  DMSCHED_ASSERT(total > 0.0, "weighted_index(): all-zero weights");
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point edge: last bucket
}

Rng Rng::fork(std::uint64_t tag) const {
  // Mix the current state with the tag through SplitMix to derive a stream
  // that is independent for all practical purposes.
  std::uint64_t h = s_[0] ^ rotl(s_[2], 13) ^ (tag * 0x9E3779B97F4A7C15ULL);
  return Rng{splitmix64(h)};
}

}  // namespace dmsched
