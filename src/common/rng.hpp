// Deterministic random number generation.
//
// We intentionally avoid <random> engines/distributions: their sequences are
// implementation-defined, which would make "same seed, same schedule"
// unreproducible across standard libraries. Xoshiro256** plus hand-rolled
// distributions give bit-identical traces everywhere.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dmsched {

/// SplitMix64: seeds Xoshiro and hashes integers into well-mixed words.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Xoshiro256** PRNG with portable, documented output sequences.
///
/// Each simulation entity that needs randomness derives its own stream via
/// `fork(tag)` so the consumption order of one component cannot perturb
/// another (critical when comparing schedulers on "the same" workload).
class Rng {
 public:
  /// Seed the generator; any 64-bit value is acceptable (0 included).
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Bernoulli trial with success probability `p`.
  bool bernoulli(double p);

  /// Standard normal via Box–Muller (no cached spare: keeps state minimal).
  double normal();
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Lognormal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma);
  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate);
  /// Bounded Pareto on [lo, hi] with shape `alpha` (heavy-tailed sizes).
  double bounded_pareto(double alpha, double lo, double hi);

  /// Sample an index from unnormalized non-negative weights.
  std::size_t weighted_index(std::span<const double> weights);

  /// Derive an independent child stream; `tag` namespaces the purpose.
  [[nodiscard]] Rng fork(std::uint64_t tag) const;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace dmsched
