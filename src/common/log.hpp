// Leveled logging to stderr.
//
// The simulator itself never logs on hot paths; logging is for harness
// progress and diagnostics. Level is a process-wide atomic so the parallel
// sweep harness can log safely (writes go through a single fputs).
#pragma once

#include <string>

namespace dmsched {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Set the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
/// Current threshold.
[[nodiscard]] LogLevel log_level();

/// Emit a message at `level` (printf-style).
[[gnu::format(printf, 2, 3)]] void logf(LogLevel level, const char* fmt, ...);

}  // namespace dmsched

#define DMSCHED_LOG_DEBUG(...) \
  ::dmsched::logf(::dmsched::LogLevel::kDebug, __VA_ARGS__)
#define DMSCHED_LOG_INFO(...) \
  ::dmsched::logf(::dmsched::LogLevel::kInfo, __VA_ARGS__)
#define DMSCHED_LOG_WARN(...) \
  ::dmsched::logf(::dmsched::LogLevel::kWarn, __VA_ARGS__)
#define DMSCHED_LOG_ERROR(...) \
  ::dmsched::logf(::dmsched::LogLevel::kError, __VA_ARGS__)
