// Small string utilities (libstdc++ 12 lacks std::format, so formatting goes
// through a checked snprintf wrapper).
#pragma once

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace dmsched {

/// printf-style formatting into a std::string.
[[gnu::format(printf, 1, 2)]] std::string strformat(const char* fmt, ...);

/// Split on a delimiter; keeps empty fields (CSV/SWF semantics).
[[nodiscard]] std::vector<std::string_view> split(std::string_view s,
                                                  char delim);

/// Split on arbitrary whitespace runs; drops empty fields (SWF semantics).
[[nodiscard]] std::vector<std::string_view> split_ws(std::string_view s);

/// Strip leading/trailing whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Parse a signed integer; returns false on any malformed input.
[[nodiscard]] bool parse_i64(std::string_view s, std::int64_t& out);

/// Parse a double; returns false on any malformed input.
[[nodiscard]] bool parse_double(std::string_view s, double& out);

/// Join items with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& items,
                               std::string_view sep);

}  // namespace dmsched
