#include "common/time.hpp"

#include <cstdio>

namespace dmsched {

std::string format_duration(SimTime t) {
  std::int64_t total_sec = t.usec() / 1'000'000;
  const bool negative = total_sec < 0;
  if (negative) total_sec = -total_sec;
  const std::int64_t d = total_sec / 86'400;
  const std::int64_t h = (total_sec / 3'600) % 24;
  const std::int64_t m = (total_sec / 60) % 60;
  const std::int64_t s = total_sec % 60;
  char buf[48];
  if (d > 0) {
    std::snprintf(buf, sizeof buf, "%s%lld-%02lld:%02lld:%02lld",
                  negative ? "-" : "", static_cast<long long>(d),
                  static_cast<long long>(h), static_cast<long long>(m),
                  static_cast<long long>(s));
  } else {
    std::snprintf(buf, sizeof buf, "%s%02lld:%02lld:%02lld",
                  negative ? "-" : "", static_cast<long long>(h),
                  static_cast<long long>(m), static_cast<long long>(s));
  }
  return buf;
}

}  // namespace dmsched
