#include "common/cli.hpp"

#include <cstdio>

#include "common/assert.hpp"
#include "common/str.hpp"

namespace dmsched {

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void Cli::add_string(const std::string& key, std::string default_value,
                     std::string help) {
  options_[key] = {Kind::kString, default_value, std::move(default_value),
                   std::move(help)};
}

void Cli::add_int(const std::string& key, std::int64_t default_value,
                  std::string help) {
  auto text = strformat("%lld", static_cast<long long>(default_value));
  options_[key] = {Kind::kInt, text, text, std::move(help)};
}

void Cli::add_double(const std::string& key, double default_value,
                     std::string help) {
  auto text = strformat("%g", default_value);
  options_[key] = {Kind::kDouble, text, text, std::move(help)};
}

void Cli::add_flag(const std::string& key, std::string help) {
  options_[key] = {Kind::kFlag, "false", "false", std::move(help)};
}

bool Cli::assign(const std::string& key, const std::string& value) {
  auto it = options_.find(key);
  if (it == options_.end()) {
    std::fprintf(stderr, "%s: unknown option --%s\n", program_.c_str(),
                 key.c_str());
    return false;
  }
  // A repeated option is almost always an editing accident (a sweep script
  // overriding the wrong copy); silently letting the last one win buries
  // the mistake, so reject it loudly instead.
  if (it->second.provided) {
    std::fprintf(stderr, "%s: --%s given more than once\n", program_.c_str(),
                 key.c_str());
    return false;
  }
  switch (it->second.kind) {
    case Kind::kInt: {
      std::int64_t v{};
      if (!parse_i64(value, v)) {
        std::fprintf(stderr, "%s: --%s expects an integer, got '%s'\n",
                     program_.c_str(), key.c_str(), value.c_str());
        return false;
      }
      break;
    }
    case Kind::kDouble: {
      double v{};
      if (!parse_double(value, v)) {
        std::fprintf(stderr, "%s: --%s expects a number, got '%s'\n",
                     program_.c_str(), key.c_str(), value.c_str());
        return false;
      }
      break;
    }
    case Kind::kFlag:
      if (value != "true" && value != "false") {
        std::fprintf(stderr, "%s: --%s expects true/false, got '%s'\n",
                     program_.c_str(), key.c_str(), value.c_str());
        return false;
      }
      break;
    case Kind::kString:
      break;
  }
  it->second.value = value;
  it->second.provided = true;
  return true;
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (!arg.starts_with("--")) {
      std::fprintf(stderr, "%s: unexpected argument '%s'\n", program_.c_str(),
                   std::string(arg).c_str());
      return false;
    }
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      if (!assign(std::string(arg.substr(0, eq)),
                  std::string(arg.substr(eq + 1)))) {
        return false;
      }
      continue;
    }
    const std::string key{arg};
    auto it = options_.find(key);
    if (it != options_.end() && it->second.kind == Kind::kFlag) {
      if (it->second.provided) {
        std::fprintf(stderr, "%s: --%s given more than once\n",
                     program_.c_str(), key.c_str());
        return false;
      }
      it->second.value = "true";
      it->second.provided = true;
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: --%s requires a value\n", program_.c_str(),
                   key.c_str());
      return false;
    }
    if (!assign(key, argv[++i])) return false;
  }
  return true;
}

const Cli::Option* Cli::find(const std::string& key, Kind kind) const {
  auto it = options_.find(key);
  DMSCHED_ASSERT(it != options_.end(), "Cli: option was never registered");
  DMSCHED_ASSERT(it->second.kind == kind, "Cli: option kind mismatch");
  return &it->second;
}

std::string Cli::get_string(const std::string& key) const {
  return find(key, Kind::kString)->value;
}

std::int64_t Cli::get_int(const std::string& key) const {
  std::int64_t v{};
  DMSCHED_ASSERT(parse_i64(find(key, Kind::kInt)->value, v),
                 "Cli: stored int unparsable");
  return v;
}

double Cli::get_double(const std::string& key) const {
  double v{};
  DMSCHED_ASSERT(parse_double(find(key, Kind::kDouble)->value, v),
                 "Cli: stored double unparsable");
  return v;
}

bool Cli::get_flag(const std::string& key) const {
  return find(key, Kind::kFlag)->value == "true";
}

bool Cli::provided(const std::string& key) const {
  auto it = options_.find(key);
  DMSCHED_ASSERT(it != options_.end(), "Cli: option was never registered");
  return it->second.provided;
}

std::string Cli::usage() const {
  std::string out = program_ + " — " + description_ + "\n\nOptions:\n";
  for (const auto& [key, opt] : options_) {
    out += strformat("  --%-24s %s (default: %s)\n", key.c_str(),
                     opt.help.c_str(), opt.default_value.c_str());
  }
  return out;
}

}  // namespace dmsched
