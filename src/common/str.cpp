#include "common/str.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "common/assert.hpp"

namespace dmsched {

std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  DMSCHED_ASSERT(needed >= 0, "strformat: encoding error");
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  va_end(args);
  return out;
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  std::size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool parse_i64(std::string_view s, std::int64_t& out) {
  s = trim(s);
  if (s.empty()) return false;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

bool parse_double(std::string_view s, double& out) {
  s = trim(s);
  if (s.empty()) return false;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

}  // namespace dmsched
