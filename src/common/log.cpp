#include "common/log.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>

namespace dmsched {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void logf(LogLevel level, const char* fmt, ...) {
  if (level < log_level()) return;
  char message[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(message, sizeof message, fmt, args);
  va_end(args);
  char line[1100];
  std::snprintf(line, sizeof line, "[%s] %s\n", level_name(level), message);
  std::fputs(line, stderr);  // single write: safe under concurrency
}

}  // namespace dmsched
