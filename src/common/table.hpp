// ASCII table rendering for the bench harnesses.
//
// Each bench binary prints the rows/series its paper table or figure
// reports; this class keeps those outputs aligned and diff-friendly.
#pragma once

#include <string>
#include <vector>

namespace dmsched {

/// Column-aligned console table with a title, header, and optional
/// separator rows. Numeric cells should be pre-formatted by the caller so
/// the table stays agnostic of units.
class ConsoleTable {
 public:
  explicit ConsoleTable(std::string title);

  /// Set the column headers; must be called before any row.
  void columns(std::vector<std::string> headers);
  /// Append a data row; must have exactly as many cells as headers.
  void row(std::vector<std::string> cells);
  /// Append a horizontal separator (between sweep groups).
  void separator();

  /// Render to a string.
  [[nodiscard]] std::string str() const;
  /// Render to stdout.
  void print() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool is_separator = false;
  };
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<Row> rows_;
};

}  // namespace dmsched
