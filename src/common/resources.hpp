// The typed resource vector a job requests and a cluster provisions.
//
// The paper's core reasons about (nodes, memory-per-node); production HPC
// jobs also contend on GPUs and burst-buffer capacity (Fan & Lan,
// "Scheduling Beyond CPUs for HPC"). ResourceVector names the full axis set
// once so every layer — workload, cluster ledger, topology headroom,
// placement, metrics — speaks the same vocabulary. Axes default to zero:
// a default-constructed vector describes a legacy (nodes, memory)-only
// request, which keeps every existing trace and golden byte-identical.
//
// Arithmetic on Bytes-scale axes is overflow-checked: aggregate quantities
// (mem_per_node x nodes x jobs) can plausibly approach 2^63 in adversarial
// sweeps, and a silently wrapped capacity would corrupt the conservation
// invariants the cluster audit depends on. Checked ops die loudly via
// DMSCHED_ASSERT instead of wrapping.
#pragma once

#include <cstdint>
#include <string>

#include "common/assert.hpp"
#include "common/units.hpp"

namespace dmsched {

/// `a + b` on raw 64-bit counts; aborts on signed overflow.
[[nodiscard]] inline std::int64_t checked_add_i64(std::int64_t a,
                                                  std::int64_t b) {
  std::int64_t out = 0;
  DMSCHED_ASSERT(!__builtin_add_overflow(a, b, &out),
                 "64-bit addition overflowed");
  return out;
}

/// `a * b` on raw 64-bit counts; aborts on signed overflow.
[[nodiscard]] inline std::int64_t checked_mul_i64(std::int64_t a,
                                                  std::int64_t b) {
  std::int64_t out = 0;
  DMSCHED_ASSERT(!__builtin_mul_overflow(a, b, &out),
                 "64-bit multiplication overflowed");
  return out;
}

/// `a + b` as Bytes; aborts on overflow or a negative result.
[[nodiscard]] inline Bytes checked_add(Bytes a, Bytes b) {
  const Bytes out{checked_add_i64(a.count(), b.count())};
  DMSCHED_ASSERT(out.count() >= 0, "byte quantity went negative");
  return out;
}

/// `a * k` as Bytes (k is a node count or similar); aborts on overflow or a
/// negative result.
[[nodiscard]] inline Bytes checked_mul(Bytes a, std::int64_t k) {
  const Bytes out{checked_mul_i64(a.count(), k)};
  DMSCHED_ASSERT(out.count() >= 0, "byte quantity went negative");
  return out;
}

/// The typed request/capacity vector: every axis a job can contend on.
///
/// Per-node axes (mem_per_node, gpus_per_node) scale with the node count;
/// bb_bytes is a job-global staging reservation against the cluster-wide
/// burst buffer. A zero axis means "not requested" / "not provisioned".
struct ResourceVector {
  /// Node-exclusive allocation size.
  std::int32_t nodes = 0;
  /// Memory footprint per allocated node.
  Bytes mem_per_node{};
  /// Accelerators per allocated node.
  std::int32_t gpus_per_node = 0;
  /// Job-global burst-buffer reservation.
  Bytes bb_bytes{};

  /// Aggregate memory footprint across all nodes (overflow-checked).
  [[nodiscard]] Bytes total_mem() const {
    return checked_mul(mem_per_node, nodes);
  }
  /// Aggregate GPU count across all nodes (overflow-checked).
  [[nodiscard]] std::int64_t total_gpus() const {
    return checked_mul_i64(gpus_per_node, nodes);
  }
  /// True when every axis is zero (the empty request).
  [[nodiscard]] bool is_zero() const {
    return nodes == 0 && mem_per_node.is_zero() && gpus_per_node == 0 &&
           bb_bytes.is_zero();
  }
  /// Aborts unless every axis is non-negative. Jobs and capacities are
  /// validated at the boundary so the core never sees a negative axis.
  void validate() const {
    DMSCHED_ASSERT(nodes >= 0, "negative node count");
    DMSCHED_ASSERT(mem_per_node.count() >= 0, "negative memory request");
    DMSCHED_ASSERT(gpus_per_node >= 0, "negative GPU count");
    DMSCHED_ASSERT(bb_bytes.count() >= 0, "negative burst-buffer request");
  }

  [[nodiscard]] bool operator==(const ResourceVector&) const = default;
};

/// Which axes a placement policy enforces during planning.
///
/// Nodes and memory are always enforced — they are the paper's core pair and
/// no scheduler in this codebase is blind to them. The optional axes let
/// mem-aware-EASY (memory-only planning) and resource-aware-EASY (all axes)
/// share one template: the memory-only instantiation simply plans blind to
/// GPUs and burst buffer, while every actual start is still validated against
/// the full cluster ledger.
struct ResourceAxes {
  bool gpus = true;
  bool burst_buffer = true;

  /// The paper's original policy surface: plan on nodes + memory only.
  [[nodiscard]] static ResourceAxes memory_only() {
    return ResourceAxes{.gpus = false, .burst_buffer = false};
  }
  /// Plan on every axis.
  [[nodiscard]] static ResourceAxes all() { return ResourceAxes{}; }
  [[nodiscard]] bool all_on() const { return gpus && burst_buffer; }

  [[nodiscard]] bool operator==(const ResourceAxes&) const = default;
};

}  // namespace dmsched
