// Strong byte-quantity type and binary-unit helpers.
//
// Memory capacities appear in every scheduler decision; using a strong type
// prevents the classic bug of mixing per-node and aggregate quantities or
// bytes and GiB. Arithmetic is saturating-free (plain int64) — capacities in
// this domain are < 2^63 by many orders of magnitude.
#pragma once

#include <cstdint>
#include <string>

#include "common/assert.hpp"

namespace dmsched {

/// A non-negative quantity of bytes (memory capacity, allocation size).
///
/// Supports ordering, additive arithmetic, and scalar scaling. Subtraction
/// asserts non-negativity: a negative capacity is always a logic error in
/// this codebase.
class Bytes {
 public:
  constexpr Bytes() = default;
  constexpr explicit Bytes(std::int64_t count) : count_(count) {}

  /// Raw byte count.
  [[nodiscard]] constexpr std::int64_t count() const { return count_; }
  /// Value in GiB as a double (for reporting only).
  [[nodiscard]] constexpr double gib() const {
    return static_cast<double>(count_) / (1024.0 * 1024.0 * 1024.0);
  }
  [[nodiscard]] constexpr bool is_zero() const { return count_ == 0; }

  constexpr auto operator<=>(const Bytes&) const = default;

  constexpr Bytes& operator+=(Bytes other) {
    count_ += other.count_;
    return *this;
  }
  constexpr Bytes& operator-=(Bytes other) {
    count_ -= other.count_;
    DMSCHED_ASSERT(count_ >= 0, "Bytes arithmetic went negative");
    return *this;
  }
  friend constexpr Bytes operator+(Bytes a, Bytes b) { return a += b; }
  friend constexpr Bytes operator-(Bytes a, Bytes b) { return a -= b; }
  /// Scale by a job's node count or similar small integer factor.
  friend constexpr Bytes operator*(Bytes a, std::int64_t k) {
    return Bytes{a.count_ * k};
  }
  friend constexpr Bytes operator*(std::int64_t k, Bytes a) { return a * k; }
  /// Integer division by a small positive factor (e.g. per-node shares).
  friend constexpr Bytes operator/(Bytes a, std::int64_t k) {
    return Bytes{a.count_ / k};
  }

 private:
  std::int64_t count_ = 0;
};

/// The smaller of two byte quantities.
[[nodiscard]] constexpr Bytes min(Bytes a, Bytes b) { return a < b ? a : b; }
/// The larger of two byte quantities.
[[nodiscard]] constexpr Bytes max(Bytes a, Bytes b) { return a < b ? b : a; }

/// `a / b` as a double; 0 when `b` is zero (ratio of an empty capacity).
[[nodiscard]] constexpr double ratio(Bytes a, Bytes b) {
  return b.is_zero() ? 0.0
                     : static_cast<double>(a.count()) /
                           static_cast<double>(b.count());
}

constexpr Bytes kKiB{std::int64_t{1} << 10};
constexpr Bytes kMiB{std::int64_t{1} << 20};
constexpr Bytes kGiB{std::int64_t{1} << 30};
constexpr Bytes kTiB{std::int64_t{1} << 40};

/// `n` GiB as Bytes.
[[nodiscard]] constexpr Bytes gib(std::int64_t n) { return kGiB * n; }
/// `x` GiB (fractional) as Bytes, rounded down.
[[nodiscard]] constexpr Bytes gib(double x) {
  return Bytes{static_cast<std::int64_t>(x * static_cast<double>(kGiB.count()))};
}
/// `n` MiB as Bytes.
[[nodiscard]] constexpr Bytes mib(std::int64_t n) { return kMiB * n; }
/// `n` TiB as Bytes.
[[nodiscard]] constexpr Bytes tib(std::int64_t n) { return kTiB * n; }

/// Human-readable rendering, e.g. "128.0 GiB" or "512 B".
[[nodiscard]] std::string format_bytes(Bytes b);

}  // namespace dmsched
