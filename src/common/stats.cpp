#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace dmsched {

void StreamingStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void StreamingStats::merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double StreamingStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

double StreamingStats::min() const { return count_ == 0 ? 0.0 : min_; }

double StreamingStats::max() const { return count_ == 0 ? 0.0 : max_; }

void SampleStats::add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

double SampleStats::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleStats::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleStats::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

void SampleStats::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double SampleStats::percentile(double p) const {
  DMSCHED_ASSERT(p >= 0.0 && p <= 100.0, "percentile(): p outside [0,100]");
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_.front();
  const double rank =
      p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

void TimeWeightedMean::record(double time, double value) {
  if (started_) {
    DMSCHED_ASSERT(time >= last_time_,
                   "TimeWeightedMean: change-points must be time-ordered");
    weighted_sum_ += last_value_ * (time - last_time_);
  } else {
    started_ = true;
  }
  last_time_ = time;
  last_value_ = value;
  peak_ = std::max(peak_, value);
}

double TimeWeightedMean::finish(double end_time) const {
  if (!started_ || end_time <= 0.0) return 0.0;
  DMSCHED_ASSERT(end_time >= last_time_, "TimeWeightedMean: end before last");
  const double total = weighted_sum_ + last_value_ * (end_time - last_time_);
  return total / end_time;
}

}  // namespace dmsched
