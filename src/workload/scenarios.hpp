// The scenario library: named, deterministic Trace + ClusterConfig bundles.
//
// Every experiment surface (dmsched-sim, benches, examples, tests) selects
// standard scenarios from this registry by name, so "the memory-stressed
// scenario" means exactly the same jobs on exactly the same machine
// everywhere — the precondition for comparing policies across tools and for
// pinning golden metrics. docs/SCENARIOS.md documents each scenario's
// intent, parameters, the paper figure it backs, and the expected policy
// ordering.
//
// Layering note: this is the one workload/ file that sits *below* cluster/
// in the dependency order (it bundles machines with traces). It may include
// workload/ and cluster/ but nothing further down; see src/README.md.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/config.hpp"
#include "topology/topology.hpp"
#include "workload/trace.hpp"
#include "workload/trace_source.hpp"

namespace dmsched {

/// Tunable knobs accepted by every scenario factory. Zero/empty means "use
/// the scenario's published default", so default-constructed params always
/// reproduce the documented scenario bit-for-bit.
struct ScenarioParams {
  /// Job count (synthetic scenarios: generated count; trace-seeded
  /// scenarios: replicated-then-truncated count).
  std::size_t jobs = 0;
  /// Workload seed (ignored by trace-seeded scenarios with no randomness).
  std::uint64_t seed = 0;
  /// Offered-load target against the scenario machine.
  double load = 0.0;
  /// Machine-scale multiplier on the node count (capacity-planning studies:
  /// "the same regime, on a machine k× the size"). Applied *before* the
  /// workload is built, so job widths and offered load adapt to the scaled
  /// machine; the result is snapped to whole racks (min one rack). 0 means
  /// 1.0 — the published machine. Must be > 0 otherwise.
  double node_scale = 0.0;
  /// Machine-scale multiplier on disaggregated capacity (rack pools and the
  /// global tier together). 0 means 1.0; must be > 0 otherwise. A scenario
  /// with no pools stays poolless at any scale. Scaling a published tier to
  /// zero capacity throws (see topology/ `ensure_tiers_survive`).
  double pool_scale = 0.0;

  // --- topology knobs (see topology/topology.hpp) -------------------------
  /// Re-rack the machine into exactly this many racks, preserving the rack
  /// tier's total bytes. 0 = the published racking; must divide the (scaled)
  /// node count exactly otherwise.
  std::int32_t racks = 0;
  /// Re-split the machine's total disaggregated capacity: this fraction
  /// becomes rack-local pools, the rest the global tier. Negative (default)
  /// keeps the published split; otherwise must lie in [0, 1], and a split
  /// that rounds a requested tier to zero capacity throws.
  double rack_pool_frac = -1.0;
  /// Multiplier on the remote-tier slowdown coefficients (rack and global
  /// β together): distance penalties k× the published model. 0 means 1.0;
  /// must be > 0 otherwise. Resolved into Scenario::remote_penalty and
  /// applied to EngineOptions::slowdown by scenario_experiment().
  double remote_penalty = 0.0;

  // --- resource-vector knobs (see common/resources.hpp) -------------------
  /// Override the GPUs provisioned per node (rack-pooled devices; see
  /// ClusterConfig::gpus_per_node). 0 keeps the scenario's published
  /// provisioning — zero for every legacy scenario, so default params never
  /// grow a GPU axis under an existing workload. Must be >= 0.
  std::int32_t gpus_per_node = 0;
  /// Override the cluster-global burst-buffer capacity. Zero keeps the
  /// published capacity (no burst buffer for legacy scenarios). Must be
  /// >= 0 bytes.
  Bytes bb_capacity{};
};

/// Registry metadata: what a scenario is for, before paying to build it.
struct ScenarioInfo {
  std::string name;
  std::string summary;
  /// Which paper figure/table the scenario backs (e.g. "fig. 6 / table 3").
  std::string paper_figure;
  /// The policy ordering the scenario is designed to exhibit, as a
  /// human-readable claim (validated by tests/golden/).
  std::string expected_ordering;
  /// True for scale/throughput workloads (e.g. large-replay's 100k-job
  /// default) rather than paper-figure regimes. Consumers that loop
  /// scenario_names() and *run* every scenario (policy tables, sweeps)
  /// should skip infrastructure scenarios unless scale is the point.
  bool infrastructure = false;
};

/// A fully built scenario: the machine, the workload, and the reference
/// node size its footprints were scaled against.
struct Scenario {
  ScenarioInfo info;
  ClusterConfig cluster;
  /// Reference node-local memory the workload's footprints are expressed
  /// against (may exceed the machine's actual local memory — that gap is
  /// the memory pressure).
  Bytes workload_reference_mem{};
  /// Resolved remote-penalty multiplier for the slowdown model (1.0 = the
  /// published model; scenarios.* cannot name SlowdownModel itself — it
  /// lives a layer up — so core/scenario_experiment applies this).
  double remote_penalty = 1.0;
  Trace trace;
};

/// All registered scenario names, in registry (documentation) order.
[[nodiscard]] std::vector<std::string> scenario_names();

/// True if `name` is a registered scenario.
[[nodiscard]] bool scenario_exists(const std::string& name);

/// Metadata for one scenario without building its trace.
/// Throws std::invalid_argument for unknown names.
[[nodiscard]] const ScenarioInfo& scenario_info(const std::string& name);

/// Build a scenario by name. Deterministic: the same (name, params) always
/// produces byte-identical traces and configs.
/// Throws std::invalid_argument (listing the known names) for unknown names.
[[nodiscard]] Scenario make_scenario(const std::string& name,
                                     const ScenarioParams& params = {});

/// A scenario whose workload is a pull-based stream instead of a
/// materialized Trace: the same machine and metadata, jobs delivered
/// incrementally. For every registered scenario, draining `source` yields
/// exactly the jobs of `make_scenario(name, params).trace` — same order,
/// same ids — so streamed and eager runs are interchangeable (pinned by
/// tests/workload/trace_source_test.cpp). The replicated-SWF and synthetic
/// scenarios build genuinely incremental sources (O(1) workload memory at
/// any job count); that is what makes the million-job replays feasible.
struct ScenarioStream {
  ScenarioInfo info;
  ClusterConfig cluster;
  Bytes workload_reference_mem{};
  double remote_penalty = 1.0;
  std::unique_ptr<TraceSource> source;
};

/// Streaming counterpart of make_scenario. Deterministic in (name, params);
/// throws std::invalid_argument for unknown names.
[[nodiscard]] ScenarioStream make_scenario_stream(
    const std::string& name, const ScenarioParams& params = {});

}  // namespace dmsched
