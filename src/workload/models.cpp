#include "workload/models.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace dmsched {

std::vector<WorkloadModel> all_workload_models() {
  return {WorkloadModel::kCapability, WorkloadModel::kCapacity,
          WorkloadModel::kMixed};
}

const char* to_string(WorkloadModel m) {
  switch (m) {
    case WorkloadModel::kCapability: return "capability";
    case WorkloadModel::kCapacity: return "capacity";
    case WorkloadModel::kMixed: return "mixed";
  }
  return "?";
}

WorkloadModel workload_model_from_string(const std::string& s) {
  if (s == "capability") return WorkloadModel::kCapability;
  if (s == "capacity") return WorkloadModel::kCapacity;
  if (s == "mixed") return WorkloadModel::kMixed;
  DMSCHED_UNREACHABLE("unknown workload model name");
}

SyntheticSpec model_spec(WorkloadModel m, std::int32_t max_nodes,
                         Bytes reference_node_mem) {
  DMSCHED_ASSERT(max_nodes >= 8, "model_spec: machine too small");
  SyntheticSpec spec;
  spec.reference_node_mem = reference_node_mem;
  const auto frac_nodes = [&](double f) {
    return std::max<std::int32_t>(
        1, static_cast<std::int32_t>(f * static_cast<double>(max_nodes)));
  };

  switch (m) {
    case WorkloadModel::kCapability:
      spec.name = "capability";
      // Wide, long jobs; runtime median ~2.5h; weak memory pressure but a
      // visible >100% band (the "can't run today" population).
      spec.node_buckets = {{1, 1, 0.10},
                           {2, frac_nodes(0.02), 0.30},
                           {frac_nodes(0.02) + 1, frac_nodes(0.15), 0.40},
                           {frac_nodes(0.15) + 1, frac_nodes(0.50), 0.20}};
      spec.runtime_log_mean = 9.1;  // e^9.1 ≈ 2.5 h
      spec.runtime_log_sigma = 1.1;
      spec.runtime_max_sec = 36.0 * 3600.0;
      spec.mem_bands = {{0.02, 0.20, 0.60},
                        {0.20, 0.60, 0.28},
                        {0.60, 1.00, 0.09},
                        {1.00, 1.40, 0.03}};
      spec.sensitivity_weights = {0.50, 0.38, 0.12};
      spec.arrival_rate_per_hour = 25.0;
      break;

    case WorkloadModel::kCapacity:
      spec.name = "capacity";
      // Narrow, short, memory-hungry jobs; a fat >=75% band and a
      // significant population above node capacity.
      spec.node_buckets = {{1, 1, 0.45},
                           {2, 8, 0.35},
                           {9, frac_nodes(0.05), 0.15},
                           {frac_nodes(0.05) + 1, frac_nodes(0.20), 0.05}};
      spec.runtime_log_mean = 7.6;  // e^7.6 ≈ 33 min
      spec.runtime_log_sigma = 1.5;
      spec.runtime_max_sec = 12.0 * 3600.0;
      spec.mem_bands = {{0.05, 0.30, 0.30},
                        {0.30, 0.75, 0.30},
                        {0.75, 1.00, 0.25},
                        {1.00, 2.00, 0.15}};
      spec.sensitivity_weights = {0.15, 0.45, 0.40};
      spec.arrival_rate_per_hour = 90.0;
      break;

    case WorkloadModel::kMixed:
      spec.name = "mixed";
      spec.node_buckets = {{1, 1, 0.30},
                           {2, 16, 0.40},
                           {17, frac_nodes(0.12), 0.23},
                           {frac_nodes(0.12) + 1, frac_nodes(0.40), 0.07}};
      spec.runtime_log_mean = 8.4;  // e^8.4 ≈ 1.2 h
      spec.runtime_log_sigma = 1.4;
      spec.mem_bands = {{0.02, 0.25, 0.45},
                        {0.25, 0.75, 0.32},
                        {0.75, 1.00, 0.15},
                        {1.00, 1.75, 0.08}};
      spec.sensitivity_weights = {0.35, 0.45, 0.20};
      spec.arrival_rate_per_hour = 55.0;
      break;
  }
  // Normalize buckets for small machines: the fraction-derived bounds can
  // collapse or invert when max_nodes is tiny (test-scale clusters).
  for (auto& bucket : spec.node_buckets) {
    bucket.lo = std::clamp(bucket.lo, 1, max_nodes);
    bucket.hi = std::clamp(bucket.hi, bucket.lo, max_nodes);
  }
  return spec;
}

Trace make_model_trace(WorkloadModel m, std::size_t jobs, std::uint64_t seed,
                       std::int32_t machine_nodes, Bytes reference_node_mem,
                       double target_load) {
  SyntheticSpec spec = model_spec(m, machine_nodes, reference_node_mem);
  spec.job_count = jobs;
  return generate_trace_with_load(spec, seed, machine_nodes, target_load);
}

std::unique_ptr<TraceSource> make_model_source(WorkloadModel m,
                                               std::size_t jobs,
                                               std::uint64_t seed,
                                               std::int32_t machine_nodes,
                                               Bytes reference_node_mem,
                                               double target_load) {
  SyntheticSpec spec = model_spec(m, machine_nodes, reference_node_mem);
  spec.job_count = jobs;
  return make_synthetic_source(spec, seed, machine_nodes, target_load);
}

}  // namespace dmsched
