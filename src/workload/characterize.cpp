#include "workload/characterize.hpp"

#include <set>

#include "common/stats.hpp"

namespace dmsched {

TraceStats characterize(const Trace& trace, Bytes reference_node_mem,
                        std::int64_t machine_nodes) {
  TraceStats s;
  s.job_count = trace.size();
  if (trace.empty()) return s;
  s.span_hours = trace.span().hours();
  s.offered_load = trace.offered_load(machine_nodes);

  SampleStats nodes, runtime_h, mem_gib, accuracy;
  std::size_t above_half = 0;
  std::size_t above_full = 0;
  std::set<std::int32_t> users;
  for (const Job& j : trace.jobs()) {
    nodes.add(static_cast<double>(j.nodes));
    runtime_h.add(j.runtime.hours());
    mem_gib.add(j.mem_per_node.gib());
    accuracy.add(j.walltime > SimTime{0}
                     ? j.runtime.seconds() / j.walltime.seconds()
                     : 1.0);
    if (j.mem_per_node * 2 > reference_node_mem) ++above_half;
    if (j.mem_per_node > reference_node_mem) ++above_full;
    users.insert(j.user);
  }
  const auto n = static_cast<double>(trace.size());
  s.nodes_mean = nodes.mean();
  s.nodes_p50 = nodes.percentile(50);
  s.nodes_max = nodes.max();
  s.runtime_mean_hours = runtime_h.mean();
  s.runtime_p50_hours = runtime_h.percentile(50);
  s.estimate_accuracy_mean = accuracy.mean();
  s.mem_per_node_mean_gib = mem_gib.mean();
  s.mem_per_node_p50_gib = mem_gib.percentile(50);
  s.mem_per_node_p95_gib = mem_gib.percentile(95);
  s.frac_mem_above_half = static_cast<double>(above_half) / n;
  s.frac_mem_above_full = static_cast<double>(above_full) / n;
  s.distinct_users = static_cast<std::int32_t>(users.size());
  return s;
}

TraceStats characterize(TraceSource& source, Bytes reference_node_mem,
                        std::int64_t machine_nodes) {
  // Accumulates in pull order — the same order the eager overload walks the
  // trace — with the same formulas for span and offered load, so the two
  // overloads agree exactly on identical jobs.
  TraceStats s;
  SampleStats nodes, runtime_h, mem_gib, accuracy;
  std::size_t above_half = 0;
  std::size_t above_full = 0;
  std::set<std::int32_t> users;
  SimTime first{};
  SimTime last{};
  double node_seconds = 0.0;
  while (std::optional<Job> job = source.next()) {
    const Job& j = *job;
    if (s.job_count == 0) first = j.submit;
    last = j.submit;
    node_seconds += j.used_node_seconds();
    ++s.job_count;
    nodes.add(static_cast<double>(j.nodes));
    runtime_h.add(j.runtime.hours());
    mem_gib.add(j.mem_per_node.gib());
    accuracy.add(j.walltime > SimTime{0}
                     ? j.runtime.seconds() / j.walltime.seconds()
                     : 1.0);
    if (j.mem_per_node * 2 > reference_node_mem) ++above_half;
    if (j.mem_per_node > reference_node_mem) ++above_full;
    users.insert(j.user);
  }
  if (s.job_count == 0) return s;
  const SimTime span = s.job_count < 2 ? SimTime{0} : last - first;
  s.span_hours = span.hours();
  const double span_sec = span.seconds();
  if (span_sec > 0.0) {
    s.offered_load = node_seconds /
                     (static_cast<double>(machine_nodes) * span_sec);
  }
  const auto n = static_cast<double>(s.job_count);
  s.nodes_mean = nodes.mean();
  s.nodes_p50 = nodes.percentile(50);
  s.nodes_max = nodes.max();
  s.runtime_mean_hours = runtime_h.mean();
  s.runtime_p50_hours = runtime_h.percentile(50);
  s.estimate_accuracy_mean = accuracy.mean();
  s.mem_per_node_mean_gib = mem_gib.mean();
  s.mem_per_node_p50_gib = mem_gib.percentile(50);
  s.mem_per_node_p95_gib = mem_gib.percentile(95);
  s.frac_mem_above_half = static_cast<double>(above_half) / n;
  s.frac_mem_above_full = static_cast<double>(above_full) / n;
  s.distinct_users = static_cast<std::int32_t>(users.size());
  return s;
}

std::vector<double> memory_footprints_gib(const Trace& trace) {
  std::vector<double> v;
  v.reserve(trace.size());
  for (const Job& j : trace.jobs()) v.push_back(j.mem_per_node.gib());
  return v;
}

}  // namespace dmsched
