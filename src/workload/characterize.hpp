// Trace characterization: the statistics Table I of the evaluation reports.
#pragma once

#include <vector>

#include "common/histogram.hpp"
#include "workload/trace.hpp"
#include "workload/trace_source.hpp"

namespace dmsched {

/// Summary statistics of one trace, relative to a reference node size.
struct TraceStats {
  std::size_t job_count = 0;
  double span_hours = 0.0;

  double nodes_mean = 0.0;
  double nodes_p50 = 0.0;
  double nodes_max = 0.0;

  double runtime_mean_hours = 0.0;
  double runtime_p50_hours = 0.0;

  /// Mean walltime-request accuracy: runtime / walltime (1.0 = exact).
  double estimate_accuracy_mean = 0.0;

  double mem_per_node_mean_gib = 0.0;
  double mem_per_node_p50_gib = 0.0;
  double mem_per_node_p95_gib = 0.0;
  /// Fraction of jobs whose per-node footprint exceeds 50% of reference.
  double frac_mem_above_half = 0.0;
  /// Fraction of jobs that do not fit in reference local memory at all —
  /// the population that *requires* disaggregation.
  double frac_mem_above_full = 0.0;

  /// Offered load against the given machine size.
  double offered_load = 0.0;

  std::int32_t distinct_users = 0;
};

/// Compute Table-I statistics for a trace.
[[nodiscard]] TraceStats characterize(const Trace& trace,
                                      Bytes reference_node_mem,
                                      std::int64_t machine_nodes);

/// The same statistics from a pull-based source drain, without
/// materializing a Trace. Identical to the eager overload on the same jobs
/// (pinned by tests/workload/trace_source_test.cpp). Percentiles are exact,
/// so this holds O(jobs) *doubles* — sample arrays, not whole Jobs; it is
/// an analysis path, not a bounded-memory one.
[[nodiscard]] TraceStats characterize(TraceSource& source,
                                      Bytes reference_node_mem,
                                      std::int64_t machine_nodes);

/// Per-node memory footprints in GiB (input to CDF figures).
[[nodiscard]] std::vector<double> memory_footprints_gib(const Trace& trace);

}  // namespace dmsched
