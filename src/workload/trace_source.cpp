#include "workload/trace_source.hpp"

#include <fstream>
#include <istream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace dmsched {

GeneratorTraceSource::GeneratorTraceSource(
    std::string name, std::function<std::optional<Job>()> generate,
    std::optional<std::size_t> size_hint)
    : name_(std::move(name)),
      generate_(std::move(generate)),
      size_hint_(size_hint) {
  DMSCHED_ASSERT(generate_ != nullptr, "GeneratorTraceSource: null generator");
}

std::optional<Job> GeneratorTraceSource::next() {
  if (done_) return std::nullopt;
  std::optional<Job> j = generate_();
  if (!j) {
    done_ = true;
    return std::nullopt;
  }
  if (any_ && j->submit < last_submit_) {
    throw std::logic_error("GeneratorTraceSource \"" + name_ +
                           "\": generator yielded a decreasing submit time "
                           "(sources must be in submission order)");
  }
  any_ = true;
  last_submit_ = j->submit;
  return j;
}

MappedTraceSource::MappedTraceSource(std::unique_ptr<TraceSource> inner,
                                     std::function<Job(Job)> fn)
    : inner_(std::move(inner)), fn_(std::move(fn)) {
  DMSCHED_ASSERT(inner_ != nullptr, "MappedTraceSource: null inner source");
  DMSCHED_ASSERT(fn_ != nullptr, "MappedTraceSource: null rewrite");
}

std::optional<Job> MappedTraceSource::next() {
  std::optional<Job> j = inner_->next();
  if (!j) return std::nullopt;
  Job mapped = fn_(*j);
  if (any_ && mapped.submit < last_submit_) {
    throw std::logic_error(
        "MappedTraceSource \"" + name() +
        "\": rewrite broke submission order (map_trace re-sorts; a stream "
        "cannot — use an order-preserving rewrite or materialize first)");
  }
  any_ = true;
  last_submit_ = mapped.submit;
  return mapped;
}

StreamingSwfSource::StreamingSwfSource(std::unique_ptr<std::istream> in,
                                       SwfOptions options, std::string name)
    : in_(std::move(in)), options_(options), name_(std::move(name)) {
  DMSCHED_ASSERT(in_ != nullptr, "StreamingSwfSource: null stream");
  DMSCHED_ASSERT(options_.procs_per_node > 0, "SwfOptions: procs_per_node");
}

StreamingSwfSource::~StreamingSwfSource() = default;

std::optional<Job> StreamingSwfSource::next() {
  if (done_) return std::nullopt;
  std::string line;
  while (std::getline(*in_, line)) {
    ++lines_total_;
    const SwfParsedLine parsed = parse_swf_line(line, options_);
    switch (parsed.kind) {
      case SwfLineKind::kBlank:
        continue;
      case SwfLineKind::kMalformed:
        ++lines_malformed_;
        continue;
      case SwfLineKind::kFiltered:
        ++jobs_skipped_;
        continue;
      case SwfLineKind::kJob:
        break;
    }
    Job j = parsed.job;
    if (!any_) {
      // Rebase on the fly: read_swf applies .rebased() to the whole trace;
      // the first accepted job defines the same epoch here.
      epoch_ = j.submit;
      any_ = true;
    }
    if (j.submit < epoch_ + last_submit_) {
      done_ = true;
      throw std::runtime_error(
          "StreamingSwfSource \"" + name_ +
          "\": archive jobs are not in submission order (the eager reader "
          "sorts; a stream cannot — sort the archive or use read_swf)");
    }
    j.submit = j.submit - epoch_;
    last_submit_ = j.submit;
    ++jobs_accepted_;
    return j;
  }
  done_ = true;
  if (in_->bad()) {
    error_ = "I/O error while reading SWF stream";
  }
  return std::nullopt;
}

std::unique_ptr<StreamingSwfSource> open_swf_source(const std::string& path,
                                                    const SwfOptions& options) {
  auto in = std::make_unique<std::ifstream>(path);
  if (!*in) {
    throw std::runtime_error("cannot open SWF file: " + path);
  }
  auto slash = path.find_last_of('/');
  std::string name =
      slash == std::string::npos ? path : path.substr(slash + 1);
  return std::make_unique<StreamingSwfSource>(std::move(in), options,
                                              std::move(name));
}

Trace drain_to_trace(TraceSource& source, std::string name) {
  std::vector<Job> jobs;
  if (auto hint = source.size_hint()) jobs.reserve(*hint);
  while (std::optional<Job> j = source.next()) jobs.push_back(*j);
  // The source contract guarantees submission order, so the stable sort in
  // Trace::make is the identity and ids land in pull order.
  return Trace::make(std::move(jobs),
                     name.empty() ? source.name() : std::move(name));
}

}  // namespace dmsched
