// The static description of a batch job.
//
// This is the immutable submission record; all runtime state (queue
// position, start time, allocation) lives in the simulation engine so the
// same trace can be replayed under many schedulers.
#pragma once

#include <cstdint>

#include "common/resources.hpp"
#include "common/time.hpp"
#include "common/units.hpp"

namespace dmsched {

/// Index of a job within its trace.
using JobId = std::uint32_t;
constexpr JobId kInvalidJobId = UINT32_MAX;

/// How strongly a job's runtime reacts to far-memory placement.
///
/// Compute-bound codes touch memory rarely and barely notice extra latency;
/// bandwidth-bound codes stream through their footprint and feel the full
/// far-memory penalty. The multiplier scales the slowdown model's beta.
enum class MemSensitivity : std::uint8_t {
  kComputeBound = 0,
  kBalanced = 1,
  kBandwidthBound = 2,
};

/// Display name, e.g. for per-class breakdown tables.
[[nodiscard]] const char* to_string(MemSensitivity s);

/// One batch job as submitted.
struct Job {
  JobId id = kInvalidJobId;
  /// Submission time relative to the trace epoch.
  SimTime submit{};
  /// Number of nodes requested (node-exclusive allocation).
  std::int32_t nodes = 1;
  /// Memory footprint per allocated node.
  Bytes mem_per_node{};
  /// User-provided walltime request (upper bound; scheduler plans with it).
  SimTime walltime{};
  /// True runtime when served entirely from node-local memory.
  SimTime runtime{};
  /// Far-memory sensitivity class.
  MemSensitivity sensitivity = MemSensitivity::kBalanced;
  /// Originating user (trace statistics / fairness analyses).
  std::int32_t user = 0;
  /// Accelerators per allocated node. Zero (the default) means the job does
  /// not use GPUs — every legacy trace, SWF record, generator, and transform
  /// is untouched in meaning.
  std::int32_t gpus_per_node = 0;
  /// Job-global burst-buffer reservation. Zero means no staging.
  Bytes bb_bytes{};

  /// The full typed request this job makes of the cluster.
  [[nodiscard]] ResourceVector request() const {
    return ResourceVector{.nodes = nodes,
                          .mem_per_node = mem_per_node,
                          .gpus_per_node = gpus_per_node,
                          .bb_bytes = bb_bytes};
  }

  /// Aggregate footprint across all nodes.
  [[nodiscard]] Bytes total_mem() const {
    return mem_per_node * nodes;
  }
  /// Aggregate GPU count across all nodes.
  [[nodiscard]] std::int64_t total_gpus() const {
    return static_cast<std::int64_t>(gpus_per_node) * nodes;
  }
  /// Requested node-seconds (walltime-based; what the scheduler reserves).
  [[nodiscard]] double requested_node_seconds() const {
    return static_cast<double>(nodes) * walltime.seconds();
  }
  /// Consumed node-seconds (runtime-based, undilated).
  [[nodiscard]] double used_node_seconds() const {
    return static_cast<double>(nodes) * runtime.seconds();
  }
};

}  // namespace dmsched
