#include "workload/scenarios.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/resources.hpp"
#include "workload/models.hpp"
#include "workload/swf.hpp"
#include "workload/transform.hpp"

namespace dmsched {

namespace {

/// Per-scenario defaults, applied wherever ScenarioParams leaves a zero.
struct ScenarioDefaults {
  std::size_t jobs = 0;
  std::uint64_t seed = 0;
  double load = 0.0;
};

ScenarioParams resolve(const ScenarioParams& params,
                       const ScenarioDefaults& defaults) {
  ScenarioParams r = params;
  if (r.jobs == 0) r.jobs = defaults.jobs;
  if (r.seed == 0) r.seed = defaults.seed;
  if (r.load == 0.0) r.load = defaults.load;
  // The machine-scale knobs default to the published machine (1.0) for
  // every scenario; anything else non-positive is a caller error, not a
  // sentinel.
  if (r.node_scale == 0.0) r.node_scale = 1.0;
  if (r.pool_scale == 0.0) r.pool_scale = 1.0;
  if (r.node_scale <= 0.0 || r.pool_scale <= 0.0) {
    throw std::invalid_argument(
        "scenario machine-scale factors must be > 0 (node_scale=" +
        std::to_string(params.node_scale) +
        ", pool_scale=" + std::to_string(params.pool_scale) + ")");
  }
  // Topology knobs: 0/negative sentinels keep the published machine; the
  // structural validation (divisibility, zero-capacity tiers) happens in
  // topology/apply once the machine is known.
  if (r.remote_penalty == 0.0) r.remote_penalty = 1.0;
  if (r.remote_penalty <= 0.0) {
    throw std::invalid_argument(
        "scenario remote_penalty must be > 0 (got " +
        std::to_string(params.remote_penalty) + ")");
  }
  if (r.racks < 0) {
    throw std::invalid_argument(
        "scenario racks must be >= 0 (0 keeps the published racking), got " +
        std::to_string(params.racks));
  }
  if (r.rack_pool_frac > 1.0) {
    throw std::invalid_argument(
        "scenario rack_pool_frac must lie in [0, 1] (negative keeps the "
        "published split), got " + std::to_string(params.rack_pool_frac));
  }
  // Resource-vector knobs: 0 keeps the published provisioning; negative is
  // a caller error, never a sentinel.
  if (r.gpus_per_node < 0) {
    throw std::invalid_argument(
        "scenario gpus_per_node must be >= 0 (0 keeps the published "
        "provisioning), got " + std::to_string(params.gpus_per_node));
  }
  if (r.bb_capacity < Bytes{0}) {
    throw std::invalid_argument(
        "scenario bb_capacity must be >= 0 bytes (0 keeps the published "
        "capacity), got " + std::to_string(params.bb_capacity.count()));
  }
  return r;
}

/// Apply the resolved machine-scale multipliers to a scenario's published
/// cluster. Callers scale *before* building the workload so the trace
/// (job widths, offered load) adapts to the scaled machine — that is what
/// makes the knobs usable for capacity planning rather than just starving
/// or flooding the published workload.
ClusterConfig scale_cluster(ClusterConfig c, const ScenarioParams& p) {
  const ClusterConfig published = c;
  if (p.node_scale != 1.0) {
    // Snap to whole racks so rack-level pool accounting keeps its shape.
    const double scaled_racks =
        static_cast<double>(c.total_nodes) * p.node_scale /
        static_cast<double>(c.nodes_per_rack);
    const auto racks = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::llround(scaled_racks)));
    c.total_nodes = static_cast<std::int32_t>(
        racks * static_cast<std::int64_t>(c.nodes_per_rack));
  }
  if (p.pool_scale != 1.0) {
    c.pool_per_rack = Bytes{static_cast<std::int64_t>(std::llround(
        static_cast<double>(c.pool_per_rack.count()) * p.pool_scale))};
    c.global_pool = Bytes{static_cast<std::int64_t>(std::llround(
        static_cast<double>(c.global_pool.count()) * p.pool_scale))};
    // A pool_scale small enough to round a published tier to zero silently
    // turns a tiered study into a flat one — make it loud instead.
    ensure_tiers_survive(c, published, "scenario pool_scale");
  }
  // The topology knobs reshape the (scaled) machine last, so pool_scale and
  // rack_pool_frac compose: scale the total, then split it.
  const TopologySpec spec{p.racks, p.rack_pool_frac};
  if (!spec.is_default()) c = apply(spec, std::move(c));
  // Resource-vector knobs: non-zero overrides *replace* the published
  // provisioning outright (they don't scale it), so any scenario can be
  // re-run with GPUs or a burst buffer without a new registry entry.
  if (p.gpus_per_node > 0) c.gpus_per_node = p.gpus_per_node;
  if (!p.bb_capacity.is_zero()) c.bb_capacity = p.bb_capacity;
  return c;
}

ClusterConfig make_cluster(std::string name, std::int32_t nodes,
                           std::int32_t per_rack, std::int64_t local_gib,
                           std::int64_t pool_gib, std::int64_t global_gib) {
  ClusterConfig c;
  c.name = std::move(name);
  c.total_nodes = nodes;
  c.nodes_per_rack = per_rack;
  c.local_mem_per_node = gib(local_gib);
  c.pool_per_rack = gib(pool_gib);
  c.global_pool = gib(global_gib);
  return c;
}

/// The machine + workload-model recipe of one synthetic scenario. The eager
/// and streaming builders below both consume it, so a scenario's published
/// machine and model are defined in exactly one place.
struct ModelRecipe {
  ClusterConfig cluster;
  WorkloadModel model;
  Bytes reference_mem;
};

/// One synthetic-model scenario: the shared shape of most entries.
Scenario model_scenario(ModelRecipe r, const ScenarioParams& p) {
  Scenario s;
  s.cluster = scale_cluster(std::move(r.cluster), p);
  s.workload_reference_mem = r.reference_mem;
  s.trace = make_model_trace(r.model, p.jobs, p.seed, s.cluster.total_nodes,
                             r.reference_mem, p.load);
  return s;
}

/// Streaming shape of the same: the workload as a pull-based source.
ScenarioStream model_scenario_stream(ModelRecipe r, const ScenarioParams& p) {
  ScenarioStream s;
  s.cluster = scale_cluster(std::move(r.cluster), p);
  s.workload_reference_mem = r.reference_mem;
  s.source = make_model_source(r.model, p.jobs, p.seed, s.cluster.total_nodes,
                               r.reference_mem, p.load);
  return s;
}

// --- scenario factories -----------------------------------------------------
// Each factory receives already-resolved params and must be deterministic in
// them: identical params => byte-identical Trace and ClusterConfig.

/// The PR-1 golden scenario, unchanged: the machine/workload whose RunMetrics
/// are pinned in tests/golden/. Oversubscribed mixed workload on a tiny
/// pooled machine; exercises the pools but barely separates the policies.
ModelRecipe golden_baseline_recipe() {
  return {make_cluster("tiny", 16, 4, 64, 32, 128), WorkloadModel::kMixed,
          gib(std::int64_t{96})};
}
Scenario build_golden_baseline(const ScenarioParams& p) {
  return model_scenario(golden_baseline_recipe(), p);
}
ScenarioStream stream_golden_baseline(const ScenarioParams& p) {
  return model_scenario_stream(golden_baseline_recipe(), p);
}

/// Local memory scarce relative to footprints AND the pools under pressure —
/// the regime where the paper's fig. 6 separates memory-aware EASY from the
/// node-only baseline. Capacity workload (memory-hungry, narrow) whose
/// footprints were sized for 96 GiB nodes, run on 40 GiB nodes with modest
/// rack pools: most jobs overflow, backfills compete with the queue head for
/// pool bytes, and EASY's node-only shadow makes visibly different (worse)
/// decisions than the 2-D reservation.
ModelRecipe memory_stressed_recipe() {
  return {make_cluster("mem-stress", 32, 8, 40, 96, 128),
          WorkloadModel::kCapacity, gib(std::int64_t{96})};
}
Scenario build_memory_stressed(const ScenarioParams& p) {
  return model_scenario(memory_stressed_recipe(), p);
}
ScenarioStream stream_memory_stressed(const ScenarioParams& p) {
  return model_scenario_stream(memory_stressed_recipe(), p);
}

/// Ample local memory but deliberately small rack pools and no global tier:
/// the disaggregated pool itself is the bottleneck, so pool routing and
/// pool-aware reservations dominate. Backs the pool-size sweep (fig. 4).
ModelRecipe pool_contended_recipe() {
  return {make_cluster("pool-contended", 64, 16, 128, 192, 0),
          WorkloadModel::kCapacity, gib(std::int64_t{192})};
}
Scenario build_pool_contended(const ScenarioParams& p) {
  return model_scenario(pool_contended_recipe(), p);
}
ScenarioStream stream_pool_contended(const ScenarioParams& p) {
  return model_scenario_stream(pool_contended_recipe(), p);
}

/// Mixed workload with arrivals quantized into 2-hour waves: every job in a
/// window submits at the window start, so the queue fills in bursts and
/// drains between them. Stresses backfill depth and reservation churn the
/// way diurnal submission spikes do.
ModelRecipe bursty_arrivals_recipe() {
  return {make_cluster("bursty", 32, 8, 96, 96, 96), WorkloadModel::kMixed,
          gib(std::int64_t{96})};
}
/// Quantization is monotone in submit, so it preserves submission order:
/// the eager map_trace re-sort is the identity and the streaming
/// MappedTraceSource yields the identical job sequence.
Job quantize_to_burst(Job j) {
  constexpr double kBurstSec = 2.0 * 3600.0;
  j.submit = seconds(std::floor(j.submit.seconds() / kBurstSec) * kBurstSec);
  return j;
}
Scenario build_bursty_arrivals(const ScenarioParams& p) {
  Scenario s = model_scenario(bursty_arrivals_recipe(), p);
  s.trace = map_trace(s.trace, quantize_to_burst);
  return s;
}
ScenarioStream stream_bursty_arrivals(const ScenarioParams& p) {
  ScenarioStream s = model_scenario_stream(bursty_arrivals_recipe(), p);
  s.source = std::make_unique<MappedTraceSource>(std::move(s.source),
                                                 &quantize_to_burst);
  return s;
}

/// Capability-center workload: wide, long jobs whose aggregate footprints
/// land on many racks at once. Exercises multi-rack placement and the
/// global pool as overflow for jobs sized beyond 192 GiB nodes.
ModelRecipe wide_jobs_recipe() {
  return {make_cluster("wide-jobs", 128, 16, 192, 512, 1024),
          WorkloadModel::kCapability, gib(std::int64_t{256})};
}
Scenario build_wide_jobs(const ScenarioParams& p) {
  return model_scenario(wide_jobs_recipe(), p);
}
ScenarioStream stream_wide_jobs(const ScenarioParams& p) {
  return model_scenario_stream(wide_jobs_recipe(), p);
}

/// Rack-scale provisioning with no global safety net: every far byte is one
/// switch hop away, and a rack's pool exhaustion cannot be papered over by
/// a distant tier. The placement axis that matters here is node selection
/// (spreading vs packing vs pool-chasing); pool routing is moot. Backs the
/// rack-scale-vs-system-wide provisioning comparison.
ModelRecipe rack_local_recipe() {
  return {make_cluster("rack-local", 48, 8, 64, 128, 0),
          WorkloadModel::kCapacity, gib(std::int64_t{128})};
}
Scenario build_rack_local(const ScenarioParams& p) {
  return model_scenario(rack_local_recipe(), p);
}
ScenarioStream stream_rack_local(const ScenarioParams& p) {
  return model_scenario_stream(rack_local_recipe(), p);
}

/// The rack-local machine with a thin global tier bolted on: the same
/// 128 GiB rack pools and the same workload (seed and reference node
/// included), so the strict-locality rejection rate carries over verbatim —
/// and the distance-graded `shared-neighbors` strategy can be measured
/// recovering those rejections through neighbor-rack draws (one extra hop)
/// instead of shedding them. Backs tests/golden/shared_neighbors_test.cpp
/// and the migration knobs' demonstration scenario.
ModelRecipe shared_neighbors_recipe() {
  return {make_cluster("shared-neighbors", 48, 8, 64, 128, 96),
          WorkloadModel::kCapacity, gib(std::int64_t{128})};
}
Scenario build_shared_neighbors(const ScenarioParams& p) {
  return model_scenario(shared_neighbors_recipe(), p);
}
ScenarioStream stream_shared_neighbors(const ScenarioParams& p) {
  return model_scenario_stream(shared_neighbors_recipe(), p);
}

/// Both distance tiers present and under pressure: scarce local memory, a
/// modest rack tier, and a global tier big enough to start jobs early but
/// expensive enough to regret it. This is the scenario where the named
/// placement strategies genuinely diverge — local-first queues (and sheds
/// the jobs no rack pool can ever fund) while global-fallback starts and
/// dilates — pinned by tests/golden/topology_placement_test.cpp.
ModelRecipe tiered_contended_recipe() {
  return {make_cluster("tiered-contended", 64, 8, 48, 96, 192),
          WorkloadModel::kCapacity, gib(std::int64_t{96})};
}
Scenario build_tiered_contended(const ScenarioParams& p) {
  return model_scenario(tiered_contended_recipe(), p);
}
ScenarioStream stream_tiered_contended(const ScenarioParams& p) {
  return model_scenario_stream(tiered_contended_recipe(), p);
}

/// A mixed workload on a machine provisioning 4 rack-pooled GPUs per node
/// (32 devices per 8-node rack). Memory is comfortable (96 GiB footprints on
/// 96 GiB nodes plus pools), so the binding constraint is the device pool —
/// the regime that separates the full resource vector from the memory-only
/// view of the same scheduler.
ModelRecipe gpu_contended_recipe() {
  ClusterConfig c = make_cluster("gpu-contended", 32, 8, 96, 96, 96);
  c.gpus_per_node = 4;
  return {std::move(c), WorkloadModel::kMixed, gib(std::int64_t{96})};
}
/// Deterministic GPU decoration, keyed off static job fields (NOT the job
/// id, which the eager Trace::make assigns only after this map runs — the
/// streamed and eager constructions must agree field-for-field). Roughly
/// half the jobs become accelerator jobs at the provisioned 4 GPUs/node;
/// one in six of the narrow ones demands 8 GPUs/node — twice provisioning —
/// so a rack's pooled devices drain faster than its nodes. The 8-GPU class
/// is capped at 8 nodes (64 devices < the machine's 128) so no job is
/// infeasible-on-empty. Identity on submit: order is preserved.
Job decorate_gpu_contended(Job j) {
  const std::uint64_t key =
      static_cast<std::uint64_t>(j.user) * 2654435761ULL +
      static_cast<std::uint64_t>(j.nodes) * 40503ULL +
      static_cast<std::uint64_t>(j.mem_per_node.count() >> 20);
  if (key % 2 == 0) {
    j.gpus_per_node = (j.nodes <= 8 && key % 6 == 0) ? 8 : 4;
  }
  return j;
}
Scenario build_gpu_contended(const ScenarioParams& p) {
  Scenario s = model_scenario(gpu_contended_recipe(), p);
  s.trace = map_trace(s.trace, decorate_gpu_contended);
  return s;
}
ScenarioStream stream_gpu_contended(const ScenarioParams& p) {
  ScenarioStream s = model_scenario_stream(gpu_contended_recipe(), p);
  s.source = std::make_unique<MappedTraceSource>(std::move(s.source),
                                                 &decorate_gpu_contended);
  return s;
}

/// Capacity workload where a third of the jobs stage their footprint
/// through a 256 GiB cluster-global burst buffer before running. Staging
/// reservations (capped at 128 GiB per job, so only two of the largest can
/// stage at once) gate the queue where nodes and memory would not — the
/// cluster-global-axis counterpart of gpu-contended's rack-pooled axis.
ModelRecipe bb_staging_recipe() {
  ClusterConfig c = make_cluster("bb-staging", 32, 8, 96, 96, 96);
  c.bb_capacity = gib(std::int64_t{256});
  return {std::move(c), WorkloadModel::kCapacity, gib(std::int64_t{96})};
}
/// Deterministic BB decoration: every third job (by the same id-free static
/// key as gpu-contended) reserves min(total footprint, 128 GiB) of burst
/// buffer. 128 GiB < the 512 GiB capacity, so no job is rejected outright;
/// identity on submit, so eager and streamed constructions agree.
Job decorate_bb_staging(Job j) {
  const std::uint64_t key =
      static_cast<std::uint64_t>(j.user) * 2654435761ULL +
      static_cast<std::uint64_t>(j.nodes) * 40503ULL +
      static_cast<std::uint64_t>(j.mem_per_node.count() >> 20);
  if (key % 3 == 0) {
    const Bytes footprint = checked_mul(j.mem_per_node, j.nodes);
    j.bb_bytes = std::min(footprint, gib(std::int64_t{128}));
  }
  return j;
}
Scenario build_bb_staging(const ScenarioParams& p) {
  Scenario s = model_scenario(bb_staging_recipe(), p);
  s.trace = map_trace(s.trace, decorate_bb_staging);
  return s;
}
ScenarioStream stream_bb_staging(const ScenarioParams& p) {
  ScenarioStream s = model_scenario_stream(bb_staging_recipe(), p);
  s.source = std::make_unique<MappedTraceSource>(std::move(s.source),
                                                 &decorate_bb_staging);
  return s;
}

/// The bundled SWF fixture (tests/data/sample.swf), embedded so the scenario
/// needs no file path, replicated via `map_trace` into a longer trace on a
/// 12-node machine whose local memory is below the trace's largest
/// footprints. Demonstrates the SWF-to-scenario path end-to-end.
/// tests/workload/scenarios_test.cpp asserts this copy stays identical to
/// the on-disk fixture.
constexpr const char* kSampleSwf = R"(; Sample SWF trace bundled with the DMSched test suite.
; 30 completed jobs on a machine with 4-core nodes; submissions span
; 0..6300 s. Format: PWA SWF v2.2 (18 fields, see src/workload/swf.cpp).
; MaxProcs: 48
; Note: memory fields are KB per processor.
1 0 -1 3600 8 -1 4194304 8 4000 4194304 1 1 1 1 1 1 -1 -1
2 180 -1 1200 4 -1 1048576 4 1800 1048576 1 2 1 1 1 1 -1 -1
3 420 -1 7200 16 -1 2097152 16 7200 2097152 1 3 1 1 1 1 -1 -1
4 600 -1 300 1 -1 -1 1 600 -1 1 1 1 1 1 1 -1 -1
5 840 -1 5400 32 -1 1048576 32 7200 1048576 1 4 1 1 1 1 -1 -1
6 900 -1 900 12 -1 524288 12 1200 524288 1 2 1 1 1 1 -1 -1
7 1080 -1 10800 48 -1 2097152 48 14400 2097152 1 5 1 1 1 1 -1 -1
8 1260 -1 600 2 -1 -1 2 900 -1 1 1 1 1 1 1 -1 -1
9 1500 -1 4800 24 -1 1048576 24 6000 1048576 1 3 1 1 1 1 -1 -1
10 1620 -1 2400 8 -1 4194304 8 3600 4194304 1 2 1 1 1 1 -1 -1
11 1800 -1 1800 4 -1 524288 4 2400 524288 1 4 1 1 1 1 -1 -1
12 2040 -1 9000 40 -1 1048576 40 10800 1048576 1 5 1 1 1 1 -1 -1
13 2160 -1 3000 16 -1 2097152 16 3600 2097152 1 1 1 1 1 1 -1 -1
14 2400 -1 450 6 -1 -1 6 600 -1 1 2 1 1 1 1 -1 -1
15 2520 -1 6600 20 -1 1048576 20 7200 1048576 1 3 1 1 1 1 -1 -1
16 2700 -1 1500 8 -1 524288 8 1800 524288 1 4 1 1 1 1 -1 -1
17 2940 -1 8100 28 -1 2097152 28 9000 2097152 1 5 1 1 1 1 -1 -1
18 3120 -1 750 3 -1 -1 3 900 -1 1 1 1 1 1 1 -1 -1
19 3300 -1 7800 36 -1 1048576 36 9000 1048576 1 2 1 1 1 1 -1 -1
20 3480 -1 2100 10 -1 4194304 10 2400 4194304 1 3 1 1 1 1 -1 -1
21 3600 -1 3300 14 -1 524288 14 3600 524288 1 4 1 1 1 1 -1 -1
22 3840 -1 9600 44 -1 1048576 44 10800 1048576 1 5 1 1 1 1 -1 -1
23 4020 -1 1050 5 -1 -1 5 1200 -1 1 1 1 1 1 1 -1 -1
24 4200 -1 5100 18 -1 2097152 18 6000 2097152 1 2 1 1 1 1 -1 -1
25 4500 -1 2700 9 -1 1048576 9 3600 1048576 1 3 1 1 1 1 -1 -1
26 4740 -1 6900 26 -1 524288 26 7200 524288 1 4 1 1 1 1 -1 -1
27 4980 -1 1350 7 -1 -1 7 1800 -1 1 5 1 1 1 1 -1 -1
28 5280 -1 8400 30 -1 2097152 30 9000 2097152 1 1 1 1 1 1 -1 -1
29 5580 -1 1950 11 -1 1048576 11 2400 1048576 1 2 1 1 1 1 -1 -1
30 6300 -1 4200 22 -1 524288 22 4800 524288 1 3 1 1 1 1 -1 -1
)";

/// The replay machine: 48 processors at 4 per node => 12 nodes; per-node
/// footprints reach 16 GiB, above the 12 GiB of local memory, so the replay
/// needs the pools. Shared by the eager and streaming builders.
ClusterConfig swf_replay_cluster(const char* name) {
  return make_cluster(name, 12, 4, 12, 24, 32);
}

/// Parse the embedded day once (30 jobs; O(1) w.r.t. replay length).
SwfResult read_sample_day(const char* trace_name) {
  SwfOptions options;
  options.procs_per_node = 4;
  std::istringstream in(kSampleSwf);
  return read_swf(in, options, trace_name);
}

constexpr std::int64_t kSwfReplayPeriodSec = 7200;

Scenario swf_replay_scenario(const ScenarioParams& p,
                             const char* cluster_name) {
  Scenario s;
  s.cluster = scale_cluster(swf_replay_cluster(cluster_name), p);
  s.workload_reference_mem = s.cluster.local_mem_per_node;

  const SwfResult base = read_sample_day("sample.swf");

  // Replicate the 30-job day via map_trace: copy k is shifted by k periods
  // so replicas tile without overlapping bursts. (Div/mod ceil instead of
  // the add-then-divide idiom: huge job requests must not wrap to zero
  // replicas and an empty trace.)
  const std::size_t base_jobs = base.trace.size();
  const std::size_t replicas =
      p.jobs / base_jobs + (p.jobs % base_jobs != 0 ? 1 : 0);
  std::vector<Job> jobs;
  jobs.reserve(replicas * base.trace.size());
  for (std::size_t k = 0; k < replicas; ++k) {
    const SimTime shift =
        seconds(kSwfReplayPeriodSec * static_cast<std::int64_t>(k));
    const Trace copy = map_trace(base.trace, [shift](Job j) {
      j.submit = j.submit + shift;
      return j;
    });
    for (const Job& j : copy.jobs()) jobs.push_back(j);
  }
  Trace replicated = Trace::make(std::move(jobs), cluster_name);
  replicated = replicated.prefix(p.jobs);
  // Land the replay at the requested offered load by scaling arrival gaps.
  const double current = replicated.offered_load(s.cluster.total_nodes);
  if (current > 0.0 && p.load > 0.0) {
    replicated = replicated.scaled_arrivals(current / p.load);
  }
  s.trace = std::move(replicated);
  return s;
}

Scenario build_mixed_swf(const ScenarioParams& p) {
  return swf_replay_scenario(p, "mixed-swf");
}

/// The same replicated-SWF machinery at production scale: the bundled day
/// tiled to 10^5 jobs (~9 months of submissions) so the discrete-event core
/// is exercised at the trace sizes the related work replays (month-scale
/// production traces). The default load sits *below* saturation so the
/// queue stays bounded and throughput measures the event core, not a
/// scheduler walking an ever-growing backlog. bench/sim_throughput replays
/// prefixes of this scenario at 1k/10k/100k jobs.
Scenario build_large_replay(const ScenarioParams& p) {
  return swf_replay_scenario(p, "large-replay");
}

/// The streaming counterpart of swf_replay_scenario: tiles the embedded day
/// on the fly instead of materializing replicas × 30 jobs. Job i of the
/// replay is day job i%N shifted by i/N periods — the day spans less than
/// one period, so the tiling is already in submission order and matches the
/// eager Trace::make + prefix construction job-for-job. The offered-load
/// prepass walks the same p.jobs jobs with Trace::offered_load's summation
/// order and arithmetic, so the arrival-scaling factor is bit-identical too.
/// Workload memory is O(day), independent of p.jobs — this is what lets the
/// million-job replay run without a million-Job vector.
ScenarioStream swf_replay_stream(const ScenarioParams& p,
                                 const char* cluster_name) {
  ScenarioStream s;
  s.cluster = scale_cluster(swf_replay_cluster(cluster_name), p);
  s.workload_reference_mem = s.cluster.local_mem_per_node;

  auto day = std::make_shared<const Trace>(read_sample_day("sample.swf").trace);
  const std::size_t base_jobs = day->size();
  auto job_at = [day, base_jobs](std::size_t i) {
    Job j = day->jobs()[i % base_jobs];
    j.submit = j.submit + seconds(kSwfReplayPeriodSec *
                                  static_cast<std::int64_t>(i / base_jobs));
    return j;
  };

  bool scale = false;
  double factor = 1.0;
  if (p.jobs >= 2 && p.load > 0.0) {
    const double span_sec =
        (job_at(p.jobs - 1).submit - job_at(0).submit).seconds();
    if (span_sec > 0.0) {
      double node_seconds = 0.0;
      for (std::size_t i = 0; i < p.jobs; ++i) {
        node_seconds += job_at(i).used_node_seconds();
      }
      const double current =
          node_seconds /
          (static_cast<double>(s.cluster.total_nodes) * span_sec);
      if (current > 0.0) {
        scale = true;
        factor = current / p.load;
      }
    }
  }
  const SimTime epoch = p.jobs > 0 ? job_at(0).submit : SimTime{};
  const std::size_t total = p.jobs;
  auto next_i = std::make_shared<std::size_t>(0);
  s.source = std::make_unique<GeneratorTraceSource>(
      cluster_name,
      [job_at, next_i, total, scale, factor, epoch]() -> std::optional<Job> {
        if (*next_i >= total) return std::nullopt;
        Job j = job_at((*next_i)++);
        // Trace::scaled_arrivals' exact arithmetic.
        if (scale) j.submit = epoch + (j.submit - epoch).scaled(factor);
        return j;
      },
      total);
  return s;
}

ScenarioStream stream_mixed_swf(const ScenarioParams& p) {
  return swf_replay_stream(p, "mixed-swf");
}

ScenarioStream stream_large_replay(const ScenarioParams& p) {
  return swf_replay_stream(p, "large-replay");
}

/// The tiled day at 10^6 jobs (~7.6 years of submissions): the streaming-
/// ingestion scale target. Eager construction still works (the bench's
/// differential arm uses it) but costs a million-Job trace; the stream runs
/// the same replay at O(day) workload memory.
Scenario build_million_replay(const ScenarioParams& p) {
  return swf_replay_scenario(p, "million-replay");
}

ScenarioStream stream_million_replay(const ScenarioParams& p) {
  return swf_replay_stream(p, "million-replay");
}

// --- the registry -----------------------------------------------------------

struct ScenarioEntry {
  ScenarioInfo info;
  ScenarioDefaults defaults;
  Scenario (*build)(const ScenarioParams&);
  ScenarioStream (*stream)(const ScenarioParams&);
};

const std::vector<ScenarioEntry>& registry() {
  static const std::vector<ScenarioEntry> entries = {
      {{"golden-baseline",
        "the PR-1 golden scenario: oversubscribed mixed workload on the tiny "
        "pooled machine (pinned in tests/golden/)",
        "table 3 (regression baseline)",
        "FCFS worst; EASY/mem-easy/adaptive nearly tied (little pressure)"},
       {400, 20240726, 1.1},
       &build_golden_baseline, &stream_golden_baseline},
      {{"memory-stressed",
        "capacity workload sized for 96 GiB nodes on 40 GiB nodes with "
        "modest pools: local memory scarce, pools under pressure",
        "fig. 6 / table 3",
        "mem-easy and adaptive beat EASY (different makespans); FCFS worst"},
       {500, 7, 1.05},
       &build_memory_stressed, &stream_memory_stressed},
      {{"pool-contended",
        "ample local memory but small rack pools and no global tier: the "
        "disaggregated pool is the bottleneck",
        "fig. 4",
        "pool-aware policies ahead; EASY starves pool-blocked queue heads"},
       {600, 11, 1.0},
       &build_pool_contended, &stream_pool_contended},
      {{"bursty-arrivals",
        "mixed workload with arrivals quantized into 2-hour waves: queue "
        "fills in bursts and drains between them",
        "fig. 7 (pool timeline under spikes)",
        "backfilling policies (EASY family) far ahead of FCFS; memory-aware "
        "variants ahead on the burst peaks"},
       {500, 13, 0.9},
       &build_bursty_arrivals, &stream_bursty_arrivals},
      {{"wide-jobs",
        "capability workload: wide, long jobs spanning many racks, global "
        "pool as overflow",
        "fig. 8 (class breakdown, capability column)",
        "conservative close to EASY (few backfill holes); memory-awareness "
        "secondary"},
       {400, 17, 0.9},
       &build_wide_jobs, &stream_wide_jobs},
      {{"rack-local",
        "rack pools only, no global tier: every far byte is one hop away "
        "and rack exhaustion has no safety net (node-selection study)",
        "fig. 4 (rack-scale provisioning column)",
        "pool-aware/balanced selection ahead of first-fit; routing is moot "
        "without a global tier"},
       {500, 23, 1.0},
       &build_rack_local, &stream_rack_local},
      {{"shared-neighbors",
        "the rack-local machine plus a thin 96 GiB global tier, same "
        "workload seed: strict locality sheds the same jobs, while the "
        "rack-neighbor-global routing funds them from foreign rack pools "
        "one extra hop away (DOLMA-style distance-graded sharing)",
        "fig. 4 extension (tests/golden/shared_neighbors_test)",
        "shared-neighbors recovers most of local-first's rejections at a "
        "beta_neighbor-priced dilation; migration knobs re-tier the "
        "recovered bytes at runtime"},
       {500, 23, 1.0},
       &build_shared_neighbors, &stream_shared_neighbors},
      {{"tiered-contended",
        "scarce local memory with a contended rack tier AND a global tier: "
        "the regime where placement strategies diverge",
        "fig. 6 (topology variant; tests/golden/topology_placement_test)",
        "local-first trades queueing for locality (lower remote-access "
        "fraction, larger makespan); global-fallback the reverse"},
       {500, 29, 1.05},
       &build_tiered_contended, &stream_tiered_contended},
      {{"gpu-contended",
        "mixed workload on a 4-GPU-per-node machine (rack-pooled devices) "
        "where half the jobs are accelerator jobs and the narrow hungry ones "
        "demand 8 GPUs/node: rack device pools drain before nodes do",
        "sec. VI (multi-resource extension; tests/golden/multi_resource_test)",
        "resource-easy ahead of the GPU-blind mem-easy (blind backfill picks "
        "candidates whose starts then fail device revalidation)"},
       {500, 31, 1.0},
       &build_gpu_contended, &stream_gpu_contended},
      {{"bb-staging",
        "capacity workload where a third of the jobs reserve up to 128 GiB "
        "of a 256 GiB cluster-global burst buffer for staging: BB "
        "reservations, not nodes or memory, gate the queue",
        "sec. VI (multi-resource extension)",
        "resource-easy at or ahead of the BB-blind mem-easy; FCFS worst"},
       {500, 37, 1.1},
       &build_bb_staging, &stream_bb_staging},
      {{"mixed-swf",
        "the bundled 30-job SWF fixture replicated onto a 12-node machine "
        "with 12 GiB local memory (footprints reach 16 GiB)",
        "table 1 (trace-driven validation)",
        "mem-easy at or ahead of EASY; exercises the SWF import path"},
       {240, 1, 1.2},
       &build_mixed_swf, &stream_mixed_swf},
      {{"large-replay",
        "the mixed-swf day replicated to 100k jobs (~9 months of "
        "submissions) on the same 12-node machine: the sim-throughput "
        "workload for million-event traces",
        "sec. V scale claims (month-scale trace replay; bench/sim_throughput)",
        "same regime as mixed-swf; exists to measure events/sec and "
        "jobs/sec, not to separate policies",
        /*infrastructure=*/true},
       {100000, 1, 0.8},
       &build_large_replay, &stream_large_replay},
      {{"million-replay",
        "the mixed-swf day tiled to 10^6 jobs (~7.6 years of submissions) "
        "on the same 12-node machine: the streaming-ingestion scale target. "
        "Use make_scenario_stream — the eager build materializes a "
        "million-Job trace, the stream replays it at O(day) workload memory",
        "sec. V scale claims (month-scale replay at bounded memory; "
        "bench/sim_throughput)",
        "same regime as mixed-swf; exists to prove streamed ingestion, not "
        "to separate policies",
        /*infrastructure=*/true},
       {1000000, 1, 0.8},
       &build_million_replay, &stream_million_replay},
  };
  return entries;
}

const ScenarioEntry& find_entry(const std::string& name) {
  for (const ScenarioEntry& e : registry()) {
    if (e.info.name == name) return e;
  }
  std::string known;
  for (const ScenarioEntry& e : registry()) {
    if (!known.empty()) known += ", ";
    known += e.info.name;
  }
  throw std::invalid_argument("unknown scenario \"" + name +
                              "\" (known: " + known + ")");
}

}  // namespace

std::vector<std::string> scenario_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const ScenarioEntry& e : registry()) names.push_back(e.info.name);
  return names;
}

bool scenario_exists(const std::string& name) {
  for (const ScenarioEntry& e : registry()) {
    if (e.info.name == name) return true;
  }
  return false;
}

const ScenarioInfo& scenario_info(const std::string& name) {
  return find_entry(name).info;
}

Scenario make_scenario(const std::string& name, const ScenarioParams& params) {
  const ScenarioEntry& entry = find_entry(name);
  const ScenarioParams resolved = resolve(params, entry.defaults);
  Scenario s = entry.build(resolved);
  s.info = entry.info;
  s.remote_penalty = resolved.remote_penalty;
  return s;
}

ScenarioStream make_scenario_stream(const std::string& name,
                                    const ScenarioParams& params) {
  const ScenarioEntry& entry = find_entry(name);
  const ScenarioParams resolved = resolve(params, entry.defaults);
  ScenarioStream s = entry.stream(resolved);
  s.info = entry.info;
  s.remote_penalty = resolved.remote_penalty;
  return s;
}

}  // namespace dmsched
