// Pull-based trace ingestion: jobs delivered one at a time in submission
// order, so month-scale replays need not materialize O(trace) Jobs.
//
// The engine draws from a TraceSource lazily, keeping only its bounded
// look-ahead window of pending submissions live (EngineOptions::
// submit_lookahead); the differential harness in
// tests/workload/trace_source_test.cpp proves the streamed run is
// byte-identical to the eager one at any window size.
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

#include "workload/swf.hpp"
#include "workload/trace.hpp"

namespace dmsched {

/// A pull-based stream of jobs.
///
/// Contract:
///  - `next()` yields jobs with *nondecreasing* submit times; after the
///    first empty optional the source is exhausted and stays empty.
///  - Ids carried by yielded jobs are advisory. Consumers assign sequential
///    ids in pull order — exactly what `Trace::make` does for an
///    already-sorted vector, which is why draining a source and building
///    the equivalent Trace agree job-for-job.
///  - Sources are single-use: one drain per instance.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Display name (mirrors Trace::name()).
  [[nodiscard]] virtual const std::string& name() const = 0;

  /// The next job in submission order, or empty when exhausted.
  virtual std::optional<Job> next() = 0;

  /// Total job count when known up front (reservation hint only).
  [[nodiscard]] virtual std::optional<std::size_t> size_hint() const {
    return std::nullopt;
  }
};

/// The eager source: a view over an in-memory Trace, served by index. The
/// trace must outlive the source (traces are shared, not copied).
class EagerTraceSource final : public TraceSource {
 public:
  explicit EagerTraceSource(const Trace& trace) : trace_(trace) {}

  [[nodiscard]] const std::string& name() const override {
    return trace_.name();
  }
  std::optional<Job> next() override {
    if (next_ >= trace_.size()) return std::nullopt;
    return trace_.jobs()[next_++];
  }
  [[nodiscard]] std::optional<std::size_t> size_hint() const override {
    return trace_.size();
  }

 private:
  const Trace& trace_;
  std::size_t next_ = 0;
};

/// An eager source that owns its trace (scenario streams whose workload has
/// no streaming construction).
class OwningTraceSource final : public TraceSource {
 public:
  explicit OwningTraceSource(Trace trace) : trace_(std::move(trace)) {}

  [[nodiscard]] const std::string& name() const override {
    return trace_.name();
  }
  std::optional<Job> next() override {
    if (next_ >= trace_.size()) return std::nullopt;
    return trace_.jobs()[next_++];
  }
  [[nodiscard]] std::optional<std::size_t> size_hint() const override {
    return trace_.size();
  }

 private:
  Trace trace_;
  std::size_t next_ = 0;
};

/// A source backed by a generator callback (synthetic workloads, tiled
/// replays). The generator owns all its state; this class only enforces the
/// submit-order contract — a generator yielding a decreasing submit time is
/// a logic error and throws.
class GeneratorTraceSource final : public TraceSource {
 public:
  GeneratorTraceSource(std::string name,
                       std::function<std::optional<Job>()> generate,
                       std::optional<std::size_t> size_hint = std::nullopt);

  [[nodiscard]] const std::string& name() const override { return name_; }
  std::optional<Job> next() override;
  [[nodiscard]] std::optional<std::size_t> size_hint() const override {
    return size_hint_;
  }

 private:
  std::string name_;
  std::function<std::optional<Job>()> generate_;
  std::optional<std::size_t> size_hint_;
  bool any_ = false;
  SimTime last_submit_{};
  bool done_ = false;
};

/// A decorator applying a per-job rewrite to an inner source — the
/// streaming counterpart of `transform::map_trace`. map_trace re-sorts
/// after mapping; a stream cannot, so the rewrite must preserve submission
/// order (any monotone-nondecreasing transform of submit does, which covers
/// shifting, scaling, and quantization). A rewrite that reorders throws
/// std::logic_error — loudly, instead of silently diverging from map_trace.
class MappedTraceSource final : public TraceSource {
 public:
  MappedTraceSource(std::unique_ptr<TraceSource> inner,
                    std::function<Job(Job)> fn);

  [[nodiscard]] const std::string& name() const override {
    return inner_->name();
  }
  std::optional<Job> next() override;
  [[nodiscard]] std::optional<std::size_t> size_hint() const override {
    return inner_->size_hint();
  }

 private:
  std::unique_ptr<TraceSource> inner_;
  std::function<Job(Job)> fn_;
  bool any_ = false;
  SimTime last_submit_{};
};

/// Incremental SWF reader: one line parsed per pull via `parse_swf_line`
/// (the same line-level parser `read_swf` uses), submit times rebased on
/// the fly so the first accepted job submits at t=0 — month-scale archives
/// stream at O(1) memory.
///
/// Accounting (`lines_total`/`jobs_accepted`/`jobs_skipped`/
/// `lines_malformed`) matches read_swf's SwfResult for the same input and
/// keeps the same non-fatal contract: malformed or filtered lines are
/// counted and skipped, never thrown. Counts are cumulative up to the lines
/// consumed so far (final after the source is exhausted). Divergence from
/// the eager reader: read_swf sorts, a stream cannot — an archive whose
/// completed jobs are not in submission order throws std::runtime_error.
/// An I/O error (badbit) ends the stream early and sets error().
class StreamingSwfSource final : public TraceSource {
 public:
  /// Owns the stream. `name` mirrors read_swf's trace_name.
  StreamingSwfSource(std::unique_ptr<std::istream> in, SwfOptions options,
                     std::string name);
  ~StreamingSwfSource() override;

  [[nodiscard]] const std::string& name() const override { return name_; }
  std::optional<Job> next() override;

  [[nodiscard]] std::size_t lines_total() const { return lines_total_; }
  [[nodiscard]] std::size_t jobs_accepted() const { return jobs_accepted_; }
  [[nodiscard]] std::size_t jobs_skipped() const { return jobs_skipped_; }
  [[nodiscard]] std::size_t lines_malformed() const {
    return lines_malformed_;
  }
  /// Non-empty after a hard I/O failure (mirrors SwfResult::error).
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] bool ok() const { return error_.empty(); }

 private:
  std::unique_ptr<std::istream> in_;
  SwfOptions options_;
  std::string name_;
  std::size_t lines_total_ = 0;
  std::size_t jobs_accepted_ = 0;
  std::size_t jobs_skipped_ = 0;
  std::size_t lines_malformed_ = 0;
  std::string error_;
  bool any_ = false;
  SimTime epoch_{};        ///< first accepted submit (rebasing offset)
  SimTime last_submit_{};  ///< last rebased submit (order check)
  bool done_ = false;
};

/// Open an SWF file as a streaming source. Throws std::runtime_error when
/// the file cannot be opened (the streaming analogue of
/// read_swf_file's error result).
[[nodiscard]] std::unique_ptr<StreamingSwfSource> open_swf_source(
    const std::string& path, const SwfOptions& options);

/// Materialize a source into a Trace (tests, small workloads). The result's
/// ids/order match what any consumer of the source would assign.
/// `name` overrides the source's name when non-empty.
[[nodiscard]] Trace drain_to_trace(TraceSource& source, std::string name = {});

}  // namespace dmsched
