// Named workload models: the three archetypal centers the evaluation uses.
//
// Each model is a fully-specified SyntheticSpec tuned so its generated
// traces match the published summary statistics of the corresponding class
// of production systems (see DESIGN.md §Substitutions). The evaluation
// always refers to workloads by these names.
#pragma once

#include <string>
#include <vector>

#include "workload/synthetic.hpp"

namespace dmsched {

/// The evaluation's workload archetypes.
enum class WorkloadModel {
  /// Leadership/capability center: wide jobs, long runtimes, mostly
  /// compute-bound, modest memory pressure (think ALCF/OLCF-class).
  kCapability,
  /// Capacity/analytics center: many narrow jobs, short runtimes, heavy
  /// per-node memory footprints (genomics/data-analysis mix).
  kCapacity,
  /// Mid-size university center: broad mix of both populations.
  kMixed,
};

/// All models, in evaluation order.
[[nodiscard]] std::vector<WorkloadModel> all_workload_models();

/// Stable display name ("capability", "capacity", "mixed").
[[nodiscard]] const char* to_string(WorkloadModel m);

/// Parse a model name; aborts on unknown names (CLI validates earlier).
[[nodiscard]] WorkloadModel workload_model_from_string(const std::string& s);

/// The tuned spec for a model, scaled to a machine with `max_nodes` nodes
/// and `reference_node_mem` of local memory per node.
[[nodiscard]] SyntheticSpec model_spec(WorkloadModel m, std::int32_t max_nodes,
                                       Bytes reference_node_mem);

/// Convenience: generate `jobs` jobs of model `m` at `target_load` against a
/// `machine_nodes`-node machine. Deterministic in all arguments.
[[nodiscard]] Trace make_model_trace(WorkloadModel m, std::size_t jobs,
                                     std::uint64_t seed,
                                     std::int32_t machine_nodes,
                                     Bytes reference_node_mem,
                                     double target_load);

/// Streaming counterpart of make_model_trace: the identical jobs as a
/// pull-based source (see make_synthetic_source). Draining it equals the
/// eager trace job-for-job.
[[nodiscard]] std::unique_ptr<TraceSource> make_model_source(
    WorkloadModel m, std::size_t jobs, std::uint64_t seed,
    std::int32_t machine_nodes, Bytes reference_node_mem, double target_load);

}  // namespace dmsched
