// Trace transformations: filtering and job-level rewriting.
//
// Experiments often need controlled variants of one workload ("the same
// jobs but with exact walltime estimates", "only the narrow jobs", "the
// first day"). These helpers keep that logic out of the benches and make
// the variants deterministic and testable.
#pragma once

#include <functional>

#include "common/rng.hpp"
#include "workload/trace.hpp"

namespace dmsched {

/// Jobs satisfying `pred`, re-id'd into a new trace.
[[nodiscard]] Trace filter_trace(const Trace& trace,
                                 const std::function<bool(const Job&)>& pred);

/// Each job rewritten by `fn` (submit order re-established afterwards).
[[nodiscard]] Trace map_trace(const Trace& trace,
                              const std::function<Job(Job)>& fn);

/// Only jobs submitted in [from, to).
[[nodiscard]] Trace time_window(const Trace& trace, SimTime from, SimTime to);

/// The same jobs with perfectly accurate walltime requests (walltime =
/// runtime rounded up to `rounding`). Upper bound for what better user
/// estimates / runtime prediction could buy.
[[nodiscard]] Trace with_exact_walltimes(const Trace& trace,
                                         SimTime rounding = minutes(5));

/// The same jobs with walltime = runtime × U(lo, hi) (rounded up to
/// `rounding`), deterministically in `seed`. Models degraded estimates.
[[nodiscard]] Trace with_walltime_factor(const Trace& trace, double lo,
                                         double hi, std::uint64_t seed,
                                         SimTime rounding = minutes(15));

/// Mean walltime-request accuracy (runtime / walltime) of a trace.
[[nodiscard]] double mean_estimate_accuracy(const Trace& trace);

}  // namespace dmsched
