#include "workload/transform.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace dmsched {
namespace {

SimTime round_up(SimTime t, SimTime rounding) {
  DMSCHED_ASSERT(rounding > SimTime{0}, "round_up: zero rounding");
  const std::int64_t q = rounding.usec();
  return SimTime{(t.usec() + q - 1) / q * q};
}

}  // namespace

Trace filter_trace(const Trace& trace,
                   const std::function<bool(const Job&)>& pred) {
  std::vector<Job> kept;
  for (const Job& j : trace.jobs()) {
    if (pred(j)) kept.push_back(j);
  }
  return Trace::make(std::move(kept), trace.name());
}

Trace map_trace(const Trace& trace, const std::function<Job(Job)>& fn) {
  std::vector<Job> mapped;
  mapped.reserve(trace.size());
  for (const Job& j : trace.jobs()) mapped.push_back(fn(j));
  return Trace::make(std::move(mapped), trace.name());
}

Trace time_window(const Trace& trace, SimTime from, SimTime to) {
  DMSCHED_ASSERT(from <= to, "time_window: inverted window");
  return filter_trace(trace, [&](const Job& j) {
    return j.submit >= from && j.submit < to;
  });
}

Trace with_exact_walltimes(const Trace& trace, SimTime rounding) {
  return map_trace(trace, [&](Job j) {
    j.walltime = max(round_up(j.runtime, rounding), j.runtime);
    return j;
  });
}

Trace with_walltime_factor(const Trace& trace, double lo, double hi,
                           std::uint64_t seed, SimTime rounding) {
  DMSCHED_ASSERT(lo >= 1.0 && hi >= lo,
                 "with_walltime_factor: factors must be >= 1 (walltime is an "
                 "upper bound)");
  Rng rng(seed);
  return map_trace(trace, [&](Job j) {
    const double factor = rng.uniform(lo, hi);
    j.walltime = max(round_up(j.runtime.scaled(factor), rounding), j.runtime);
    return j;
  });
}

double mean_estimate_accuracy(const Trace& trace) {
  if (trace.empty()) return 1.0;
  double sum = 0.0;
  for (const Job& j : trace.jobs()) {
    sum += j.walltime > SimTime{0}
               ? j.runtime.seconds() / j.walltime.seconds()
               : 1.0;
  }
  return sum / static_cast<double>(trace.size());
}

}  // namespace dmsched
