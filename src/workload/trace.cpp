#include "workload/trace.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace dmsched {

const char* to_string(MemSensitivity s) {
  switch (s) {
    case MemSensitivity::kComputeBound: return "compute-bound";
    case MemSensitivity::kBalanced: return "balanced";
    case MemSensitivity::kBandwidthBound: return "bandwidth-bound";
  }
  return "?";
}

Trace Trace::make(std::vector<Job> jobs, std::string name) {
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const Job& a, const Job& b) { return a.submit < b.submit; });
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].id = static_cast<JobId>(i);
    DMSCHED_ASSERT(jobs[i].nodes > 0, "Trace: job with non-positive nodes");
    DMSCHED_ASSERT(jobs[i].runtime > SimTime{0},
                   "Trace: job with non-positive runtime");
    DMSCHED_ASSERT(jobs[i].walltime >= jobs[i].runtime,
                   "Trace: walltime below runtime (SWF semantics require "
                   "runtime <= request)");
    DMSCHED_ASSERT(jobs[i].mem_per_node >= Bytes{0},
                   "Trace: negative memory request");
  }
  Trace t;
  t.jobs_ = std::move(jobs);
  t.name_ = std::move(name);
  return t;
}

const Job& Trace::job(JobId id) const {
  DMSCHED_ASSERT(id < jobs_.size(), "Trace: job id out of range");
  return jobs_[id];
}

SimTime Trace::span() const {
  if (jobs_.size() < 2) return SimTime{0};
  return jobs_.back().submit - jobs_.front().submit;
}

Trace Trace::rebased() const {
  if (jobs_.empty()) return *this;
  const SimTime epoch = jobs_.front().submit;
  std::vector<Job> shifted = jobs_;
  for (auto& j : shifted) j.submit -= epoch;
  return make(std::move(shifted), name_);
}

Trace Trace::prefix(std::size_t n) const {
  std::vector<Job> head(jobs_.begin(),
                        jobs_.begin() + static_cast<std::ptrdiff_t>(
                                            std::min(n, jobs_.size())));
  return make(std::move(head), name_);
}

Trace Trace::scaled_arrivals(double factor) const {
  DMSCHED_ASSERT(factor > 0.0, "scaled_arrivals: factor must be positive");
  if (jobs_.empty()) return *this;
  const SimTime epoch = jobs_.front().submit;
  std::vector<Job> scaled = jobs_;
  for (auto& j : scaled) {
    j.submit = epoch + (j.submit - epoch).scaled(factor);
  }
  return make(std::move(scaled), name_);
}

double Trace::offered_load(std::int64_t total_nodes) const {
  DMSCHED_ASSERT(total_nodes > 0, "offered_load: machine has no nodes");
  const double span_sec = span().seconds();
  if (span_sec <= 0.0) return 0.0;
  double node_seconds = 0.0;
  for (const auto& j : jobs_) node_seconds += j.used_node_seconds();
  return node_seconds / (static_cast<double>(total_nodes) * span_sec);
}

}  // namespace dmsched
