// Standard Workload Format (SWF) import/export.
//
// SWF is the Parallel Workloads Archive interchange format: one job per
// line, 18 whitespace-separated fields, ';' comment headers. This reader
// accepts any archive trace; fields DMSched does not model are ignored.
// Reference: Feitelson's PWA format definition, version 2.2.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "common/units.hpp"
#include "workload/trace.hpp"

namespace dmsched {

/// Conversion knobs applied while importing an SWF trace.
struct SwfOptions {
  /// Processors per node: SWF counts processors, DMSched allocates nodes.
  /// Requested processor counts are divided by this (rounded up).
  std::int32_t procs_per_node = 1;
  /// SWF memory fields are KB *per processor*. Per-node memory becomes
  /// `per_proc_kb * procs_per_node * 1024` bytes. Jobs with no memory field
  /// (-1) get this default instead.
  Bytes default_mem_per_node = gib(std::int64_t{4});
  /// Walltime for jobs missing a requested-time field: runtime times this.
  double walltime_fallback_factor = 1.5;
  /// Drop jobs whose status is not "completed" (1). Archive traces flag
  /// cancelled/failed jobs; including them skews load.
  bool completed_only = true;
};

/// Import outcome: the trace plus per-line accounting.
struct SwfResult {
  Trace trace;
  std::size_t lines_total = 0;
  std::size_t jobs_accepted = 0;
  std::size_t jobs_skipped = 0;     ///< parseable but filtered (status, zero runtime)
  std::size_t lines_malformed = 0;  ///< unparseable lines (reported, not fatal)
  std::string error;                ///< non-empty => hard failure (I/O)

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Classification of one SWF line.
enum class SwfLineKind : std::uint8_t {
  kJob,        ///< parsed into SwfParsedLine::job
  kBlank,      ///< empty line or ';' comment (not an error)
  kMalformed,  ///< unparseable (too few fields, non-numeric field)
  kFiltered,   ///< parseable but filtered (status, zero runtime/procs, ...)
};

/// Outcome of parsing one SWF line.
struct SwfParsedLine {
  SwfLineKind kind = SwfLineKind::kBlank;
  /// Valid only when kind == kJob. The id is unset and the submit time is
  /// the archive's absolute time — callers rebase and assign ids (read_swf
  /// via Trace::make, StreamingSwfSource incrementally).
  Job job;
};

/// Parse one SWF line. This is the single line-level parser both the eager
/// reader and the streaming source are built on, so their acceptance and
/// accounting semantics cannot drift apart.
[[nodiscard]] SwfParsedLine parse_swf_line(std::string_view line,
                                           const SwfOptions& options);

/// Parse an SWF stream. Malformed lines are counted and skipped; only I/O
/// failure is a hard error.
[[nodiscard]] SwfResult read_swf(std::istream& in, const SwfOptions& options,
                                 std::string trace_name);

/// Parse an SWF file from disk.
[[nodiscard]] SwfResult read_swf_file(const std::string& path,
                                      const SwfOptions& options);

/// Serialize a trace to SWF (fields DMSched does not model are -1).
/// Memory is written as KB per processor, inverse of the reader mapping.
void write_swf(std::ostream& out, const Trace& trace,
               const SwfOptions& options);

}  // namespace dmsched
